// Package opprox is a from-scratch reproduction of OPPROX, the
// phase-aware optimizer for approximate programs from Mitra, Gupta,
// Misailovic and Bagchi, "Phase-Aware Optimization in Approximate
// Computing" (CGO 2017).
//
// Many iterative applications — timestep simulations, convergence solvers,
// streaming pipelines — pass through execution phases with very different
// sensitivity to approximation: an error injected while a shock is strong,
// a swarm is exploring, or a video encoder is establishing its reference
// frames costs far more final accuracy than the same error injected near
// the end. OPPROX exploits this: it learns per-phase models of speedup and
// quality-of-service degradation, splits a user's error budget across
// phases by return on investment, and emits a schedule that tells the
// application how aggressively to approximate each block in each phase.
//
// # Quick start
//
//	app := opprox.LULESH()
//	sys := opprox.New(app)
//	if err := sys.Train(opprox.DefaultOptions()); err != nil { ... }
//	sched, pred, err := sys.Optimize(opprox.DefaultParams(app), 10) // 10% budget
//	ev, err := sys.Evaluate(opprox.DefaultParams(app), sched)       // measure it
//
// The package re-exports the library's stable surface; the implementation
// lives in internal/ packages (approx, trace, qos, ml/*, apps/*, core).
package opprox

import (
	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/apps/comd"
	"opprox/internal/apps/lulesh"
	"opprox/internal/apps/pso"
	"opprox/internal/apps/tracker"
	"opprox/internal/apps/vidpipe"
	"opprox/internal/core"
	"opprox/internal/trace"
)

// Re-exported types: the application contract.
type (
	// App is the contract an application must satisfy to be optimized:
	// named approximable blocks, declared input parameters, a
	// phase-schedulable Run entry point and a QoS metric.
	App = apps.App
	// Params maps input-parameter names to values for one run.
	Params = apps.Params
	// ParamSpec declares one input parameter and its representative
	// training values.
	ParamSpec = apps.ParamSpec
	// Result is the observable outcome of one run.
	Result = apps.Result
	// Eval is a run scored against the golden (accurate) execution.
	Eval = apps.Eval
	// Runner caches golden runs and scores approximate runs against them.
	Runner = apps.Runner
)

// Re-exported types: approximation plumbing.
type (
	// Block describes one approximable block: name, technique, max level.
	Block = approx.Block
	// Config assigns an approximation level to every block.
	Config = approx.Config
	// Schedule is the phase-aware plan OPPROX produces: one Config per
	// execution phase.
	Schedule = approx.Schedule
	// Technique names one of the four approximation transformations.
	Technique = approx.Technique
)

// Re-exported types: the optimizer.
type (
	// Options configures training and optimization.
	Options = core.Options
	// Trained holds the per-phase models produced by Train.
	Trained = core.Trained
	// Prediction is the optimizer's expectation for a chosen schedule.
	Prediction = core.Prediction
	// OracleResult is the phase-agnostic exhaustive baseline's outcome.
	OracleResult = core.OracleResult
	// BudgetPolicy selects how the error budget is split across phases.
	BudgetPolicy = core.BudgetPolicy
)

// Approximation techniques (paper §3.2).
const (
	Perforation = approx.Perforation
	Truncation  = approx.Truncation
	Memoization = approx.Memoization
	ParamTuning = approx.ParamTuning
)

// Budget policies (paper §3.8 and the uniform ablation).
const (
	BudgetPolicyROI     = core.BudgetPolicyROI
	BudgetPolicyUniform = core.BudgetPolicyUniform
)

// DefaultOptions returns the configuration used throughout the paper's
// evaluation.
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultParams builds an application's default input parameters.
func DefaultParams(a App) Params { return apps.DefaultParams(a) }

// NewRunner wraps an application with golden-run caching and scoring.
func NewRunner(a App) *Runner { return apps.NewRunner(a) }

// Train runs OPPROX's offline pipeline: phase-granularity search, training
// sampling, control-flow classification, and per-phase model fitting.
func Train(r *Runner, opts Options) (*Trained, error) { return core.Train(r, opts) }

// LoadTrained reads a model set previously written with Trained.Save —
// the runtime half of the paper's train-once, optimize-per-job flow.
var LoadTrained = core.LoadTrained

// BlockProfile is one block's sensitivity sweep (paper §3.1).
type BlockProfile = core.BlockProfile

// SensitivityProfile sweeps every block's levels one at a time and reports
// which levels keep the output usable — the paper's §3.1 procedure for
// vetting approximable blocks.
var SensitivityProfile = core.SensitivityProfile

// PhaseAgnosticOracle exhaustively measures every whole-run configuration
// and returns the best one within the budget — the idealized baseline from
// prior work that the paper compares against.
func PhaseAgnosticOracle(r *Runner, p Params, budget float64) (OracleResult, error) {
	return core.PhaseAgnosticOracle(r, p, budget)
}

// Recorder is the work-accounting and call-context tracer a custom App's
// Run implementation reports into.
type Recorder = trace.Recorder

// Approximation executors for building custom applications: each is the
// identity at level 0 and sheds work monotonically as the level rises.
var (
	// PhaseOf maps an outer-loop iteration to its phase.
	PhaseOf = approx.PhaseOf
	// Perforate runs a loop with stride level+1.
	Perforate = approx.Perforate
	// PerforateRotating staggers the perforation offset across passes.
	PerforateRotating = approx.PerforateRotating
	// PerforateFraction skips an evenly spread fraction level/(max+1).
	PerforateFraction = approx.PerforateFraction
	// Truncate drops trailing iterations, up to half at the max level.
	Truncate = approx.Truncate
	// Memoize recomputes every level+1 iterations and reuses in between.
	Memoize = approx.Memoize
	// TunedValue interpolates an accuracy-controlling parameter.
	TunedValue = approx.TunedValue
	// ReducePrecision rounds a float64 to a level-controlled mantissa width.
	ReducePrecision = approx.ReducePrecision
)

// Schedule constructors.
var (
	// UniformSchedule applies one configuration to every phase.
	UniformSchedule = approx.UniformSchedule
	// AccurateSchedule is the all-zeros (exact) schedule.
	AccurateSchedule = approx.AccurateSchedule
	// SinglePhaseSchedule approximates only one phase.
	SinglePhaseSchedule = approx.SinglePhaseSchedule
)

// Benchmark applications from the paper's evaluation (§4.1), built as real
// numerical kernels on synthetic inputs.
func LULESH() App    { return lulesh.New() }
func CoMD() App      { return comd.New() }
func FFmpeg() App    { return vidpipe.New() } // the vidpipe video pipeline
func Bodytrack() App { return tracker.New() } // the tracker particle filter
func PSO() App       { return pso.New() }

// Benchmarks returns all five evaluation applications.
func Benchmarks() []App {
	return []App{LULESH(), CoMD(), FFmpeg(), Bodytrack(), PSO()}
}

// System bundles a runner and its trained models — the most convenient way
// to use the library.
type System struct {
	Runner *Runner
	Models *Trained
}

// New creates a System for an application.
func New(a App) *System {
	return &System{Runner: apps.NewRunner(a)}
}

// Train runs the offline pipeline and stores the models on the System.
func (s *System) Train(opts Options) error {
	tr, err := core.Train(s.Runner, opts)
	if err != nil {
		return err
	}
	s.Models = tr
	return nil
}

// Optimize picks the most profitable per-phase approximation settings for
// the given input parameters and QoS-degradation budget (percent).
func (s *System) Optimize(p Params, budget float64) (Schedule, Prediction, error) {
	if s.Models == nil {
		return Schedule{}, Prediction{}, errNotTrained
	}
	return s.Models.Optimize(p, budget)
}

// Evaluate measures a schedule for real against the golden run.
func (s *System) Evaluate(p Params, sched Schedule) (*Eval, error) {
	return s.Runner.Evaluate(p, sched)
}

type notTrainedError struct{}

func (notTrainedError) Error() string { return "opprox: System.Train must run before Optimize" }

var errNotTrained = notTrainedError{}
