package flight

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Batcher is the batched generalization of Group: like Group, concurrent
// Do calls for the same key share one computation and completed results
// (including errors) stay cached until Forget; unlike Group, concurrent
// calls for *distinct* keys are drained by a single leader goroutine
// that hands the whole pending set to one batch function. The serving
// layer uses this to turn a burst of concurrent dispatches into one
// batched Optimize pass over shared scratch: identical requests collapse
// to a single computation, distinct requests amortize setup.
//
// The batch function must compute each key independently — results[i]
// may depend only on keys[i]/payloads[i] — so that how a burst happened
// to be grouped into batches can never change any individual result
// (coalescing determinism; the serving conformance suite pins it).
// One asymmetry with Group: *transient* errors are never cached. A
// deadline-expired or canceled computation (or anything the optional
// SetTransient classifier matches) is delivered to the callers already
// blocked on it, but its slot is dropped immediately — the next Do for
// the same key starts fresh instead of replaying the stale error until
// someone calls Forget. Without this, one slow request poisons every
// later identical dispatch for the Forget-free window.
type Batcher[P, V any] struct {
	run       func(keys []string, payloads []P) ([]V, []error)
	transient func(error) bool

	mu      sync.Mutex
	slots   map[string]*bslot[V]
	queue   []batchItem[P, V]
	running bool
}

// bslot is one cached batched computation.
type bslot[V any] struct {
	done  chan struct{}
	ready atomic.Bool // set once v/err are final; lets Peek avoid blocking
	v     V
	err   error
}

// batchItem is one queued computation. It carries its slot so delivery
// still reaches waiters even if the key was Forgotten while queued —
// the same "callers already blocked on the old flight still receive its
// result" contract Group.Forget has.
type batchItem[P, V any] struct {
	key     string
	payload P
	slot    *bslot[V]
}

// NewBatcher builds a Batcher around a batch function. run receives the
// pending keys in submission order with their payloads and must return
// one result and one error per key (a short or nil errs slice means
// success for the missing entries; a short vs slice is reported as an
// error on the missing keys, never a zero-value success).
func NewBatcher[P, V any](run func(keys []string, payloads []P) ([]V, []error)) *Batcher[P, V] {
	return &Batcher[P, V]{run: run, transient: TransientContextError, slots: map[string]*bslot[V]{}}
}

// TransientContextError is the default transient-error classifier:
// context deadline expiry and cancellation, the errors a timed-out or
// abandoned computation surfaces.
func TransientContextError(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// SetTransient replaces the transient-error classifier (nil caches
// every error until Forget, the original Group semantics). Call before
// the batcher is in use; it is not synchronized against running
// batches.
func (b *Batcher[P, V]) SetTransient(f func(error) bool) { b.transient = f }

// Do returns the value for key, computing it through the batch function
// on first use. Concurrent callers for the same key block until the
// in-flight computation finishes and share its result; concurrent
// callers for distinct keys are computed together in one batch by
// whichever caller found the batcher idle. The third return reports
// whether the slot already existed before this call (a coalesced hit).
// Results and non-transient errors stay cached until Forget, like
// Group.Do; transient errors (see SetTransient) are delivered but not
// cached.
func (b *Batcher[P, V]) Do(key string, payload P) (V, error, bool) {
	b.mu.Lock()
	if s, ok := b.slots[key]; ok {
		b.mu.Unlock()
		<-s.done
		return s.v, s.err, true
	}
	s := &bslot[V]{done: make(chan struct{})}
	b.slots[key] = s
	b.queue = append(b.queue, batchItem[P, V]{key: key, payload: payload, slot: s})
	if b.running {
		// A leader is draining; it will pick this item up on its next
		// pass.
		b.mu.Unlock()
		<-s.done
		return s.v, s.err, false
	}
	// Become the leader: drain the queue (including items that arrive
	// while a batch is running) until it is empty.
	b.running = true
	for len(b.queue) > 0 {
		items := b.queue
		b.queue = nil
		b.mu.Unlock()
		b.runBatch(items)
		b.mu.Lock()
	}
	b.running = false
	b.mu.Unlock()
	// Our own item completed in the first batch this leader ran.
	<-s.done
	return s.v, s.err, false
}

// runBatch executes one batch and delivers each result to its slot.
func (b *Batcher[P, V]) runBatch(items []batchItem[P, V]) {
	keys := make([]string, len(items))
	payloads := make([]P, len(items))
	for i, it := range items {
		keys[i] = it.key
		payloads[i] = it.payload
	}
	vs, errs := b.run(keys, payloads)
	for i, it := range items {
		if i < len(vs) {
			it.slot.v = vs[i]
		}
		switch {
		case errs != nil && i < len(errs) && errs[i] != nil:
			it.slot.err = errs[i]
		case i >= len(vs):
			it.slot.err = fmt.Errorf("flight: batch returned %d results for %d keys", len(vs), len(items))
		}
		if it.slot.err != nil && b.transient != nil && b.transient(it.slot.err) {
			// Drop the slot before waiters wake: callers blocked on this
			// flight still get the error, but the next Do recomputes
			// instead of replaying it. Guard on identity — the key may
			// have been Forgotten and re-flown while this batch ran.
			b.mu.Lock()
			if b.slots[it.key] == it.slot {
				delete(b.slots, it.key)
			}
			b.mu.Unlock()
		}
		it.slot.ready.Store(true)
		close(it.slot.done)
	}
}

// Peek returns the completed, successful value for key without creating
// a slot, blocking on an in-flight batch, or resurrecting a cached
// error — the same semantics as Group.Peek.
func (b *Batcher[P, V]) Peek(key string) (V, bool) {
	b.mu.Lock()
	s := b.slots[key]
	b.mu.Unlock()
	if s == nil || !s.ready.Load() || s.err != nil {
		var zero V
		return zero, false
	}
	return s.v, true
}

// Forget drops key so the next Do recomputes it. Callers already blocked
// on the in-flight computation still receive its result; a key forgotten
// while queued is still computed and delivered to those callers, and the
// recomputation triggered by a later Do is a fresh, independent flight.
func (b *Batcher[P, V]) Forget(key string) {
	b.mu.Lock()
	delete(b.slots, key)
	b.mu.Unlock()
}

// Len reports the number of slots (completed or in flight).
func (b *Batcher[P, V]) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.slots)
}
