package flight

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// echoBatcher returns payload+1000 per key and counts batch invocations
// and total keys computed.
func echoBatcher(batches, computed *atomic.Int64) *Batcher[int, int] {
	return NewBatcher(func(keys []string, payloads []int) ([]int, []error) {
		batches.Add(1)
		computed.Add(int64(len(keys)))
		out := make([]int, len(payloads))
		for i, p := range payloads {
			out[i] = p + 1000
		}
		return out, nil
	})
}

func TestBatcherCollapsesIdenticalKeys(t *testing.T) {
	var batches, computed atomic.Int64
	b := echoBatcher(&batches, &computed)

	const callers = 16
	var wg sync.WaitGroup
	var hits atomic.Int64
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, hit := b.Do("k", 7)
			if err != nil || v != 1007 {
				t.Errorf("Do = (%d, %v)", v, err)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	wg.Wait()
	if computed.Load() != 1 {
		t.Fatalf("computed %d times for one key, want 1", computed.Load())
	}
	if hits.Load() != callers-1 {
		t.Fatalf("%d hits for %d callers, want %d", hits.Load(), callers, callers-1)
	}
	// The result stays cached until Forget.
	if v, err, hit := b.Do("k", 999); v != 1007 || err != nil || !hit {
		t.Fatalf("cached Do = (%d, %v, %v), want (1007, nil, true)", v, err, hit)
	}
	b.Forget("k")
	if v, _, hit := b.Do("k", 8); v != 1008 || hit {
		t.Fatalf("post-Forget Do = (%d, hit=%v), want fresh 1008", v, hit)
	}
}

// TestBatcherGroupsDistinctKeys forces the batching shape: while the
// leader is inside the batch function, distinct keys queue up and are
// delivered together in the leader's next pass.
func TestBatcherGroupsDistinctKeys(t *testing.T) {
	firstEntered := make(chan struct{})
	releaseFirst := make(chan struct{})
	var sizes []int
	var mu sync.Mutex
	var calls atomic.Int64

	b := NewBatcher(func(keys []string, payloads []int) ([]int, []error) {
		if calls.Add(1) == 1 {
			close(firstEntered)
			<-releaseFirst
		}
		mu.Lock()
		sizes = append(sizes, len(keys))
		mu.Unlock()
		out := make([]int, len(payloads))
		for i, p := range payloads {
			out[i] = p * 2
		}
		return out, nil
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if v, err, _ := b.Do("a", 1); v != 2 || err != nil {
			t.Errorf("a: (%d, %v)", v, err)
		}
	}()
	<-firstEntered

	// The leader is parked inside batch 1; these two enqueue behind it.
	wg.Add(2)
	started := make(chan struct{}, 2)
	for i, key := range []string{"b", "c"} {
		go func(key string, want int) {
			defer wg.Done()
			started <- struct{}{}
			if v, err, _ := b.Do(key, want); v != want*2 || err != nil {
				t.Errorf("%s: (%d, %v)", key, v, err)
			}
		}(key, i+2)
	}
	<-started
	<-started
	// Wait until both items are queued (Do enqueues before blocking, so
	// poll the queue length through the lock).
	for {
		b.mu.Lock()
		n := len(b.queue)
		b.mu.Unlock()
		if n == 2 {
			break
		}
	}
	close(releaseFirst)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 2 {
		t.Fatalf("batch sizes %v, want [1 2] (queued keys batched together)", sizes)
	}
}

func TestBatcherErrorsCachedUntilForget(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	b := NewBatcher(func(keys []string, payloads []int) ([]int, []error) {
		calls.Add(1)
		errs := make([]error, len(keys))
		for i := range errs {
			errs[i] = boom
		}
		return make([]int, len(keys)), errs
	})

	if _, err, hit := b.Do("k", 1); !errors.Is(err, boom) || hit {
		t.Fatalf("first Do: err=%v hit=%v", err, hit)
	}
	if _, err, hit := b.Do("k", 1); !errors.Is(err, boom) || !hit {
		t.Fatalf("cached error Do: err=%v hit=%v, want cached boom", err, hit)
	}
	if _, ok := b.Peek("k"); ok {
		t.Fatal("Peek resurrected an error slot")
	}
	if calls.Load() != 1 {
		t.Fatalf("error recomputed: %d calls", calls.Load())
	}
	b.Forget("k")
	if _, err, hit := b.Do("k", 1); !errors.Is(err, boom) || hit {
		t.Fatalf("post-Forget Do: err=%v hit=%v, want fresh flight", err, hit)
	}
	if calls.Load() != 2 {
		t.Fatalf("Forget did not trigger recompute: %d calls", calls.Load())
	}
}

// TestBatcherTransientErrorsNotCached pins the overload-path fix: a
// deadline/cancel error is delivered to the callers blocked on the
// flight but never cached, so a retry of the same key after a timeout
// recomputes (and succeeds) without anyone calling Forget.
func TestBatcherTransientErrorsNotCached(t *testing.T) {
	var calls atomic.Int64
	b := NewBatcher(func(keys []string, payloads []int) ([]int, []error) {
		n := calls.Add(1)
		out := make([]int, len(keys))
		errs := make([]error, len(keys))
		for i := range keys {
			if n == 1 {
				errs[i] = fmt.Errorf("reading store: %w", context.DeadlineExceeded)
			} else {
				out[i] = payloads[i]
			}
		}
		return out, errs
	})

	if _, err, _ := b.Do("k", 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("first Do err = %v, want DeadlineExceeded", err)
	}
	// No Forget: the retry must start a fresh flight and succeed.
	if v, err, hit := b.Do("k", 2); err != nil || v != 2 || hit {
		t.Fatalf("retry Do = (%d, %v, hit=%v), want fresh (2, nil, false)", v, err, hit)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (only the successful slot cached)", b.Len())
	}

	// A custom classifier widens what counts as transient.
	sentinel := errors.New("store wobble")
	b2 := NewBatcher(func(keys []string, payloads []int) ([]int, []error) {
		errs := make([]error, len(keys))
		if calls.Add(1)%2 == 1 {
			for i := range errs {
				errs[i] = sentinel
			}
		}
		return make([]int, len(keys)), errs
	})
	b2.SetTransient(func(err error) bool { return errors.Is(err, sentinel) })
	calls.Store(0)
	if _, err, _ := b2.Do("k", 1); !errors.Is(err, sentinel) {
		t.Fatalf("first Do err = %v, want sentinel", err)
	}
	if _, err, hit := b2.Do("k", 1); err != nil || hit {
		t.Fatalf("retry after classified-transient error: err=%v hit=%v", err, hit)
	}
}

// TestBatcherTransientErrorStress hammers the timeout/retry cycle: a
// batch function that fails with a context error whenever an "overload"
// flag is set must never poison the key — every retry after the flag
// clears succeeds immediately.
func TestBatcherTransientErrorStress(t *testing.T) {
	var overloaded atomic.Bool
	b := NewBatcher(func(keys []string, payloads []int) ([]int, []error) {
		out := make([]int, len(keys))
		errs := make([]error, len(keys))
		for i := range keys {
			if overloaded.Load() {
				errs[i] = context.DeadlineExceeded
			} else {
				out[i] = payloads[i] + 1
			}
		}
		return out, errs
	})

	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // flips overload on and off under the workers
		defer wg.Done()
		for i := 0; i < 100; i++ {
			overloaded.Store(i%2 == 0)
			select {
			case <-stop:
				return
			default:
			}
		}
		overloaded.Store(false)
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%4)
				v, err, _ := b.Do(key, i)
				if err != nil && !errors.Is(err, context.DeadlineExceeded) {
					t.Errorf("unexpected error: %v", err)
					return
				}
				if err == nil && v <= 0 {
					t.Errorf("Do returned zero-value success: %d", v)
					return
				}
				b.Forget(key) // values vary by payload; keep flights fresh
			}
		}(w)
	}
	wg.Wait()
	close(stop)

	// Steady state after the storm: same keys, no Forget needed even
	// though their last flight may have failed transiently.
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		if v, err, _ := b.Do(key, 10+i); err != nil || v != 11+i {
			t.Fatalf("post-storm Do(%s) = (%d, %v), want (%d, nil)", key, v, err, 11+i)
		}
	}
}

func TestBatcherShortResultSlice(t *testing.T) {
	b := NewBatcher(func(keys []string, payloads []int) ([]int, []error) {
		return nil, nil // defective batch function: no results at all
	})
	_, err, _ := b.Do("k", 1)
	if err == nil {
		t.Fatal("short result slice reported as success")
	}
	want := "flight: batch returned 0 results for 1 keys"
	if err.Error() != want {
		t.Fatalf("err = %q, want %q", err, want)
	}
}

func TestBatcherPeek(t *testing.T) {
	var batches, computed atomic.Int64
	b := echoBatcher(&batches, &computed)
	if _, ok := b.Peek("k"); ok {
		t.Fatal("Peek fabricated a slot")
	}
	b.Do("k", 5)
	if v, ok := b.Peek("k"); !ok || v != 1005 {
		t.Fatalf("Peek = (%d, %v), want (1005, true)", v, ok)
	}
	b.Forget("k")
	if _, ok := b.Peek("k"); ok {
		t.Fatal("Peek survived Forget")
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after Forget, want 0", b.Len())
	}
}

// TestBatcherForgetDuringFlight pins the Group-compatible Forget
// contract on the batch path: callers blocked on a computation still
// receive its result after the key is forgotten mid-flight.
func TestBatcherForgetDuringFlight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64
	b := NewBatcher(func(keys []string, payloads []int) ([]int, []error) {
		if calls.Add(1) == 1 {
			close(entered)
			<-release
		}
		out := make([]int, len(payloads))
		for i, p := range payloads {
			out[i] = p
		}
		return out, nil
	})

	done := make(chan int)
	go func() {
		v, err, _ := b.Do("k", 42)
		if err != nil {
			t.Error(err)
		}
		done <- v
	}()
	<-entered
	b.Forget("k") // the in-flight computation must still deliver
	close(release)
	if v := <-done; v != 42 {
		t.Fatalf("in-flight caller got %d after Forget, want 42", v)
	}
	// The key is gone: the next Do is an independent flight.
	if v, err, hit := b.Do("k", 43); v != 43 || err != nil || hit {
		t.Fatalf("post-Forget Do = (%d, %v, %v), want fresh (43, nil, false)", v, err, hit)
	}
}

// TestBatcherConcurrentStress mirrors the Group stress test across the
// batch path: Do/Peek/Forget hammered from many goroutines must never
// deadlock, race, or deliver a value no batch produced.
func TestBatcherConcurrentStress(t *testing.T) {
	b := NewBatcher(func(keys []string, payloads []int) ([]int, []error) {
		out := make([]int, len(payloads))
		for i, p := range payloads {
			out[i] = p
		}
		return out, nil
	})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%3)
				gen := w*1000 + i
				switch i % 3 {
				case 0:
					v, err, _ := b.Do(key, gen)
					if err != nil || v < 0 {
						t.Errorf("Do = (%d, %v)", v, err)
						return
					}
				case 1:
					if v, ok := b.Peek(key); ok && v < 0 {
						t.Errorf("Peek saw invalid value %d", v)
						return
					}
				case 2:
					b.Forget(key)
				}
			}
		}(w)
	}
	wg.Wait()
}
