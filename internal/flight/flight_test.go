package flight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoComputesOnce(t *testing.T) {
	var g Group[int]
	var calls atomic.Int32
	fn := func() (int, error) { calls.Add(1); return 42, nil }

	v, err, hit := g.Do("k", fn)
	if v != 42 || err != nil || hit {
		t.Fatalf("first Do = (%d, %v, hit=%v), want (42, nil, false)", v, err, hit)
	}
	v, err, hit = g.Do("k", fn)
	if v != 42 || err != nil || !hit {
		t.Fatalf("second Do = (%d, %v, hit=%v), want (42, nil, true)", v, err, hit)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
}

func TestDoConcurrentSharesOneFlight(t *testing.T) {
	var g Group[int]
	var calls atomic.Int32
	const workers = 32
	var wg sync.WaitGroup
	results := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := g.Do("k", func() (int, error) {
				calls.Add(1)
				return 7, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times under contention, want 1", n)
	}
	for i, v := range results {
		if v != 7 {
			t.Fatalf("worker %d got %d, want 7", i, v)
		}
	}
}

func TestErrorsStayCachedUntilForget(t *testing.T) {
	var g Group[int]
	boom := errors.New("boom")
	calls := 0
	fn := func() (int, error) { calls++; return 0, boom }

	if _, err, _ := g.Do("k", fn); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if _, err, hit := g.Do("k", fn); !errors.Is(err, boom) || !hit {
		t.Fatalf("cached error lost: (%v, hit=%v)", err, hit)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1 (errors cache)", calls)
	}
	g.Forget("k")
	if _, err, hit := g.Do("k", fn); !errors.Is(err, boom) || hit {
		t.Fatalf("after Forget: (%v, hit=%v), want fresh boom", err, hit)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times after Forget, want 2", calls)
	}
}

func TestReplaceInstallsWithoutRunning(t *testing.T) {
	var g Group[string]
	g.Replace("k", "swapped")
	v, err, hit := g.Do("k", func() (string, error) {
		t.Fatal("fn ran despite Replace")
		return "", nil
	})
	if v != "swapped" || err != nil || !hit {
		t.Fatalf("got (%q, %v, hit=%v), want (swapped, nil, true)", v, err, hit)
	}

	// Replace also overwrites an existing completed slot.
	g.Replace("k", "swapped2")
	v, _, _ = g.Do("k", func() (string, error) { return "", nil })
	if v != "swapped2" {
		t.Fatalf("got %q after second Replace, want swapped2", v)
	}
}

func TestPeekSemantics(t *testing.T) {
	var g Group[int]
	// No slot.
	if _, ok := g.Peek("k"); ok {
		t.Fatal("Peek invented a value")
	}
	// In-flight computation: Peek must not block or observe a partial
	// result.
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		g.Do("k", func() (int, error) {
			close(started)
			<-release
			return 42, nil
		})
	}()
	<-started
	if _, ok := g.Peek("k"); ok {
		t.Fatal("Peek returned an in-flight slot")
	}
	close(release)
	<-done
	if v, ok := g.Peek("k"); !ok || v != 42 {
		t.Fatalf("Peek after completion = (%d, %v), want (42, true)", v, ok)
	}
	// Cached errors stay invisible to Peek.
	g.Do("bad", func() (int, error) { return 0, errors.New("boom") })
	if _, ok := g.Peek("bad"); ok {
		t.Fatal("Peek resurrected a cached error")
	}
	// Replace is immediately visible.
	g.Replace("r", 7)
	if v, ok := g.Peek("r"); !ok || v != 7 {
		t.Fatalf("Peek after Replace = (%d, %v)", v, ok)
	}
	// Forget removes the slot from Peek's view.
	g.Forget("k")
	if _, ok := g.Peek("k"); ok {
		t.Fatal("Peek survived Forget")
	}
}

// TestConcurrentForgetPeekDo hammers the full surface concurrently: the
// promote path (Replace+Forget) racing readers (Do+Peek) must never
// yield a stale or partial value. The race detector plus the value
// invariant (only generations ever installed) are the assertions.
func TestConcurrentForgetPeekDo(t *testing.T) {
	var g Group[int]
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				gen := w*1000 + i
				switch i % 4 {
				case 0:
					v, err, _ := g.Do("k", func() (int, error) { return gen, nil })
					if err != nil || v < 0 {
						t.Errorf("Do = (%d, %v)", v, err)
						return
					}
				case 1:
					if v, ok := g.Peek("k"); ok && v < 0 {
						t.Errorf("Peek saw invalid value %d", v)
						return
					}
				case 2:
					g.Replace("k", gen)
				case 3:
					g.Forget("k")
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestKeysAndLen(t *testing.T) {
	var g Group[int]
	if g.Len() != 0 || len(g.Keys()) != 0 {
		t.Fatal("zero group not empty")
	}
	g.Do("a", func() (int, error) { return 1, nil })
	g.Replace("b", 2)
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	seen := map[string]bool{}
	for _, k := range g.Keys() {
		seen[k] = true
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("Keys = %v, want a and b", g.Keys())
	}
}
