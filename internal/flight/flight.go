// Package flight provides a minimal generic singleflight cache: the first
// caller for a key computes the value, every other caller — concurrent or
// later — reuses the result. It is the deduplication pattern the parallel
// experiment engine introduced for trained-model and golden-run caches
// (internal/experiments), extracted so the serving layer's model registry
// (internal/serve) can share it.
//
// Unlike golang.org/x/sync/singleflight, results (including errors) stay
// cached after the flight completes; callers that want failed keys retried
// call Forget, and callers that need atomic hot-swap call Replace.
package flight

import (
	"sort"
	"sync"
	"sync/atomic"
)

// slot is one cached computation.
type slot[V any] struct {
	once sync.Once
	done atomic.Bool // set once v/err are final; lets Peek avoid blocking
	v    V
	err  error
}

// Group deduplicates computations by string key. The zero value is ready
// to use. All methods are safe for concurrent use.
type Group[V any] struct {
	mu    sync.Mutex
	slots map[string]*slot[V]
}

// Do returns the cached value for key, computing it with fn on first use.
// Concurrent callers for the same key block until the one running fn
// finishes, then share its result. The third return reports whether the
// slot already existed before this call (a cache hit): errors are cached
// like values, so a caller that wants failures retried must Forget the
// key.
func (g *Group[V]) Do(key string, fn func() (V, error)) (V, error, bool) {
	g.mu.Lock()
	if g.slots == nil {
		g.slots = map[string]*slot[V]{}
	}
	s, hit := g.slots[key]
	if !hit {
		s = &slot[V]{}
		g.slots[key] = s
	}
	g.mu.Unlock()
	s.once.Do(func() {
		s.v, s.err = fn()
		s.done.Store(true)
	})
	return s.v, s.err, hit
}

// Peek returns the completed, successful value for key without creating
// a slot, blocking on an in-flight computation, or resurrecting a cached
// error. Lifecycle layers use it to consult state that must only exist
// if a load already succeeded.
func (g *Group[V]) Peek(key string) (V, bool) {
	g.mu.Lock()
	s := g.slots[key]
	g.mu.Unlock()
	if s == nil || !s.done.Load() || s.err != nil {
		var zero V
		return zero, false
	}
	return s.v, true
}

// Forget drops key so the next Do recomputes it. Callers already blocked
// on the old flight still receive its result.
func (g *Group[V]) Forget(key string) {
	g.mu.Lock()
	delete(g.slots, key)
	g.mu.Unlock()
}

// Replace atomically installs a completed value for key; subsequent Do
// calls return it without running their fn. This is the hot-reload
// primitive: compute the replacement outside the group, then swap it in
// only on success.
func (g *Group[V]) Replace(key string, v V) {
	s := &slot[V]{v: v}
	s.once.Do(func() {})
	s.done.Store(true)
	g.mu.Lock()
	if g.slots == nil {
		g.slots = map[string]*slot[V]{}
	}
	g.slots[key] = s
	g.mu.Unlock()
}

// Keys returns the keys with a slot (completed or in flight), sorted.
func (g *Group[V]) Keys() []string {
	g.mu.Lock()
	keys := make([]string, 0, len(g.slots))
	for k := range g.slots {
		keys = append(keys, k)
	}
	g.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Len reports the number of slots.
func (g *Group[V]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.slots)
}
