package feedback

import (
	"sync"

	"opprox/internal/apps"
	"opprox/internal/core"
)

// DispatchRecord is the model-side context the server keeps for one
// served dispatch so a later feedback report can be judged: which model
// and version produced it, the request that was optimized, the schedule
// that was served, and the raw predictions + confidence bands per phase
// (core.PhaseDiag). Params and Levels are retained so a shadow model
// created after the dispatch can still be evaluated against the same
// realized values.
type DispatchRecord struct {
	ID      string
	Model   string
	Version string
	App     string
	Budget  float64
	Params  apps.Params
	Phases  int
	Levels  [][]int
	Diags   []core.PhaseDiag
}

// DefaultRecordCap bounds the in-memory dispatch-record store.
const DefaultRecordCap = 4096

// Records is a bounded dispatch-record store with FIFO eviction: when
// the cap is reached the oldest record is dropped and feedback for it is
// answered with "unknown dispatch". Dispatch IDs are deterministic
// content hashes, so re-inserting an ID refreshes nothing — the record
// bytes are identical by construction — and the store simply keeps the
// existing entry (and its eviction slot).
type Records struct {
	mu    sync.Mutex
	cap   int
	byID  map[string]*DispatchRecord
	order []string // insertion order, oldest first
}

// NewRecords builds a record store; capacity <= 0 uses DefaultRecordCap.
func NewRecords(capacity int) *Records {
	if capacity <= 0 {
		capacity = DefaultRecordCap
	}
	return &Records{cap: capacity, byID: make(map[string]*DispatchRecord)}
}

// Put stores a record, evicting the oldest entry when full. A record
// whose ID is already present is ignored (identical by construction).
func (r *Records) Put(rec *DispatchRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[rec.ID]; ok {
		return
	}
	if len(r.order) >= r.cap {
		oldest := r.order[0]
		r.order = r.order[1:]
		delete(r.byID, oldest)
	}
	r.byID[rec.ID] = rec
	r.order = append(r.order, rec.ID)
}

// Get returns the record for a dispatch ID.
func (r *Records) Get(id string) (*DispatchRecord, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.byID[id]
	return rec, ok
}

// Len reports the number of stored records.
func (r *Records) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// Snapshot returns the stored records in insertion order (oldest first).
// Only the slice is built under the lock; the records themselves are
// shared, which is safe because a record is immutable once Put. This is
// the extractor-facing iteration API: the retrainer can walk thousands
// of records without holding the store lock across the walk, so
// dispatch/feedback traffic is never blocked behind an extraction.
func (r *Records) Snapshot() []*DispatchRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*DispatchRecord, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.byID[id])
	}
	return out
}
