package feedback

import (
	"fmt"
	"path/filepath"
	"testing"
)

// BenchmarkDetectorObserve is the drift-check hot path: one feedback
// report (four phases) folded into a warm detector.
func BenchmarkDetectorObserve(b *testing.B) {
	d := NewDetector(Options{Window: 32, CUSUMThreshold: 1e9, MinSamples: 1 << 30})
	samples := make([]Sample, 4)
	for ph := range samples {
		samples[ph] = Sample{Phase: ph, SpeedupResidual: 0.01, DegResidual: -0.01}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe("m", samples)
	}
}

// BenchmarkFeedbackIngest is the ingest hot path without the HTTP layer:
// record lookup, validation, and the unsynced telemetry append.
func BenchmarkFeedbackIngest(b *testing.B) {
	recs := NewRecords(1024)
	for i := 0; i < 512; i++ {
		recs.Put(&DispatchRecord{ID: fmt.Sprintf("d%03d", i), Model: "m", Phases: 4})
	}
	l, err := OpenLog(filepath.Join(b.TempDir(), "telemetry.jsonl"), false)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	report := Report{
		DispatchID: "d100",
		Observations: []PhaseObservation{
			{Phase: 0, Speedup: 1.2, Degradation: 3},
			{Phase: 1, Speedup: 1.1, Degradation: 2},
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, ok := recs.Get(report.DispatchID)
		if !ok {
			b.Fatal("record lost")
		}
		if err := report.Validate(rec.Phases); err != nil {
			b.Fatal(err)
		}
		for _, obs := range report.Observations {
			if err := l.Append(Entry{DispatchID: rec.ID, Model: rec.Model,
				Phase: obs.Phase, Speedup: obs.Speedup, Degradation: obs.Degradation}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLogAppendSync measures the fsync'd telemetry append — the
// durability cost a deployment pays per acknowledged report.
func BenchmarkLogAppendSync(b *testing.B) {
	l, err := OpenLog(filepath.Join(b.TempDir(), "telemetry.jsonl"), true)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	e := Entry{DispatchID: "d", Model: "m", Phase: 1, Speedup: 1.5, SpeedupRes: 0.1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(e); err != nil {
			b.Fatal(err)
		}
	}
}
