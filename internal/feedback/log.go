package feedback

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"opprox/internal/apps"
)

// Entry is one line of the telemetry log: a single phase observation
// joined with the residuals and exceedance flags computed against the
// dispatch's recorded predictions. Seq is a per-log monotonic sequence
// number — deliberately not a wall-clock timestamp, so the log bytes for
// a fixed feedback sequence are identical across runs (replaying a log
// reproduces the exact drift trajectory).
type Entry struct {
	Seq         uint64  `json:"seq"`
	DispatchID  string  `json:"dispatch_id"`
	Model       string  `json:"model"`
	Version     string  `json:"version"`
	Phase       int     `json:"phase"`
	Speedup     float64 `json:"realized_speedup"`
	Degradation float64 `json:"realized_degradation"`
	SpeedupRes  float64 `json:"speedup_residual"`
	DegRes      float64 `json:"deg_residual"`
	SpeedupEx   bool    `json:"speedup_exceeded,omitempty"`
	DegEx       bool    `json:"deg_exceeded,omitempty"`
	// App, Budget, Params and Levels carry the dispatch-side context the
	// retraining pipeline needs to rebuild a training row from the log
	// alone: the request that was optimized and the schedule this phase
	// ran under. All omitempty, so logs written by older builds still
	// decode — the extractor counts such entries as skipped instead of
	// failing the replay. encoding/json sorts Params keys, so the line
	// bytes stay deterministic.
	App    string      `json:"app,omitempty"`
	Budget float64     `json:"budget,omitempty"`
	Params apps.Params `json:"params,omitempty"`
	Levels []int       `json:"levels,omitempty"`
}

// LogOptions tunes a telemetry log. The zero value matches the historic
// OpenLog behavior: no fsync, no rotation.
type LogOptions struct {
	// Sync fsyncs every append — a crash never loses an acknowledged
	// feedback report.
	Sync bool
	// MaxBytes bounds the live file: when an append pushes it to this
	// size or beyond, the file is atomically renamed into the next
	// numbered segment ("<path>.000001", oldest first) and a fresh live
	// file is started. Rotation happens between appends, so every
	// segment ends on a line boundary and the concatenation of the
	// segments plus the live file is byte-identical to the stream an
	// unrotated log would have written. 0 disables rotation.
	MaxBytes int64
}

// Log is an append-only JSONL telemetry store. Every Append writes one
// line and, when opened with sync, fsyncs before returning — a crash
// never loses an acknowledged feedback report. The zero-value *Log (nil)
// is a valid no-op sink, so the server runs identically with telemetry
// persistence off.
type Log struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	sync     bool
	seq      uint64
	maxBytes int64
	size     int64
	segs     int // rotated segments already on disk
}

// OpenLog opens (creating if needed) an append-only telemetry log. With
// sync true every append is fsync'd. The sequence counter resumes past
// any existing entries so a reopened log stays strictly ordered.
func OpenLog(path string, sync bool) (*Log, error) {
	return OpenLogOptions(path, LogOptions{Sync: sync})
}

// OpenLogOptions is OpenLog with rotation control. The sequence counter
// resumes past every existing entry, rotated segments included.
func OpenLogOptions(path string, opts LogOptions) (*Log, error) {
	segs, err := logSegments(path)
	if err != nil {
		return nil, fmt.Errorf("feedback: listing log segments: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("feedback: opening log: %w", err)
	}
	l := &Log{path: path, f: f, sync: opts.Sync, maxBytes: opts.MaxBytes, segs: len(segs)}
	if st, err := f.Stat(); err == nil {
		l.size = st.Size()
	}
	// Resume the sequence counter from the existing tail: the live file's
	// last entry, or — when the live file is empty (e.g. right after a
	// rotation) — the newest segment's.
	for _, p := range append(segs, path) {
		if last, ok := lastSeq(p); ok && last > l.seq {
			l.seq = last
		}
	}
	return l, nil
}

// Path returns the live file's path (the retrainer reads the log the
// server writes). Empty for a nil log.
func (l *Log) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// Append assigns the next sequence number and writes the entry as one
// JSONL line, fsync'd when the log was opened with sync. When the write
// pushes the live file past MaxBytes the file is rotated into the next
// numbered segment.
func (l *Log) Append(e Entry) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("feedback: encoding log entry: %w", err)
	}
	b = append(b, '\n')
	n, err := l.f.Write(b)
	l.size += int64(n)
	if err != nil {
		return fmt.Errorf("feedback: appending log entry: %w", err)
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("feedback: fsync log: %w", err)
		}
	}
	if l.maxBytes > 0 && l.size >= l.maxBytes {
		if err := l.rotateLocked(); err != nil {
			return fmt.Errorf("feedback: rotating log: %w", err)
		}
	}
	return nil
}

// rotateLocked renames the live file into the next numbered segment and
// starts a fresh one. The rename is atomic and happens with the append
// lock held, so no entry is ever split across a rotation boundary.
func (l *Log) rotateLocked() error {
	if !l.sync {
		// A segment is immutable once renamed; make its bytes durable
		// before it stops being "the live file we still have open".
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.segs++
	if err := os.Rename(l.path, segmentName(l.path, l.segs)); err != nil {
		return err
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.size = 0
	return nil
}

// Close closes the underlying file.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// segmentName is the store name of rotated segment n (1-based; segment 1
// is the oldest).
func segmentName(path string, n int) string {
	return fmt.Sprintf("%s.%06d", path, n)
}

// logSegments lists the rotated segments of a log in replay order
// (ascending segment number). The live file is not included.
func logSegments(path string) ([]string, error) {
	dir, base := filepath.Dir(path), filepath.Base(path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	type seg struct {
		n int
		p string
	}
	var segs []seg
	prefix := base + "."
	for _, ent := range ents {
		name := ent.Name()
		if len(name) != len(prefix)+6 || name[:len(prefix)] != prefix {
			continue
		}
		n, err := strconv.Atoi(name[len(prefix):])
		if err != nil || n < 1 {
			continue
		}
		segs = append(segs, seg{n: n, p: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].n < segs[b].n })
	out := make([]string, len(segs))
	for i, s := range segs {
		out[i] = s.p
	}
	return out, nil
}

// SegmentPaths returns the on-disk pieces of a (possibly rotated)
// telemetry log in replay order: rotated segments ascending, then the
// live file. Concatenating the pieces in this order reproduces the
// byte stream an unrotated log would have written.
func SegmentPaths(path string) ([]string, error) {
	segs, err := logSegments(path)
	if err != nil {
		return nil, err
	}
	if _, err := os.Stat(path); err == nil {
		segs = append(segs, path)
	}
	return segs, nil
}

// ScanLog streams every entry of a possibly-rotated telemetry log in
// sequence order, calling fn per entry — bounded memory regardless of
// log size (one line at a time). It is safe against a concurrent
// writer: the live file is opened before the segment listing, so a
// rotation that lands in between is read through the already-open file
// handle (the rename does not invalidate it), and any entry visible
// through both is delivered once (sequence numbers are strictly
// increasing across segments). A torn final line of the live file — an
// append caught mid-write — ends the scan cleanly; torn or corrupt
// lines anywhere else are errors.
func ScanLog(path string, fn func(Entry) error) error {
	live, lerr := os.Open(path)
	if lerr != nil && !os.IsNotExist(lerr) {
		return fmt.Errorf("feedback: opening log: %w", lerr)
	}
	if live != nil {
		defer live.Close()
	}
	segs, err := logSegments(path)
	if err != nil {
		return fmt.Errorf("feedback: listing log segments: %w", err)
	}
	var last uint64
	deliver := func(e Entry) error {
		if e.Seq <= last && last != 0 {
			return nil // already seen through an earlier piece
		}
		last = e.Seq
		return fn(e)
	}
	for _, p := range segs {
		f, err := os.Open(p)
		if err != nil {
			if os.IsNotExist(err) {
				continue // raced a retention cleanup; later pieces re-anchor on seq
			}
			return fmt.Errorf("feedback: opening log segment: %w", err)
		}
		err = scanEntries(f, deliver, false)
		f.Close()
		if err != nil {
			return fmt.Errorf("feedback: segment %s: %w", p, err)
		}
	}
	if live == nil {
		return nil
	}
	if err := scanEntries(live, deliver, true); err != nil {
		return fmt.Errorf("feedback: log %s: %w", path, err)
	}
	return nil
}

// scanEntries decodes a JSONL stream line by line. With tolerateTail a
// decode failure on the final line is treated as EOF (an in-flight
// append caught mid-write), not an error.
func scanEntries(r io.Reader, fn func(Entry) error, tolerateTail bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		b := sc.Bytes()
		line++
		if len(b) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(b, &e); err != nil {
			if tolerateTail && !sc.Scan() {
				return nil
			}
			return fmt.Errorf("log line %d: %w", line, err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return sc.Err()
}

// lastSeq returns the final entry's sequence number in one log piece.
func lastSeq(path string) (uint64, bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	var last uint64
	found := false
	if err := scanEntries(f, func(e Entry) error {
		last, found = e.Seq, true
		return nil
	}, true); err != nil {
		return 0, false
	}
	return last, found
}

// ReadLog decodes a JSONL telemetry stream (tests, replay tooling).
func ReadLog(r io.Reader) ([]Entry, error) {
	var out []Entry
	err := scanEntries(r, func(e Entry) error {
		out = append(out, e)
		return nil
	}, false)
	if err != nil {
		return nil, fmt.Errorf("feedback: %w", err)
	}
	return out, nil
}

// ReadLogFile reads every entry of a possibly-rotated log (tests and
// small tools; production readers stream with ScanLog).
func ReadLogFile(path string) ([]Entry, error) {
	var out []Entry
	err := ScanLog(path, func(e Entry) error {
		out = append(out, e)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
