package feedback

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Entry is one line of the telemetry log: a single phase observation
// joined with the residuals and exceedance flags computed against the
// dispatch's recorded predictions. Seq is a per-log monotonic sequence
// number — deliberately not a wall-clock timestamp, so the log bytes for
// a fixed feedback sequence are identical across runs (replaying a log
// reproduces the exact drift trajectory).
type Entry struct {
	Seq         uint64  `json:"seq"`
	DispatchID  string  `json:"dispatch_id"`
	Model       string  `json:"model"`
	Version     string  `json:"version"`
	Phase       int     `json:"phase"`
	Speedup     float64 `json:"realized_speedup"`
	Degradation float64 `json:"realized_degradation"`
	SpeedupRes  float64 `json:"speedup_residual"`
	DegRes      float64 `json:"deg_residual"`
	SpeedupEx   bool    `json:"speedup_exceeded,omitempty"`
	DegEx       bool    `json:"deg_exceeded,omitempty"`
}

// Log is an append-only JSONL telemetry store. Every Append writes one
// line and, when opened with sync, fsyncs before returning — a crash
// never loses an acknowledged feedback report. The zero-value *Log (nil)
// is a valid no-op sink, so the server runs identically with telemetry
// persistence off.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	sync bool
	seq  uint64
}

// OpenLog opens (creating if needed) an append-only telemetry log. With
// sync true every append is fsync'd. The sequence counter resumes past
// any existing entries so a reopened log stays strictly ordered.
func OpenLog(path string, sync bool) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("feedback: opening log: %w", err)
	}
	l := &Log{f: f, sync: sync}
	// Resume the sequence counter from the existing tail.
	if prev, err := os.Open(path); err == nil {
		entries, rerr := ReadLog(prev)
		prev.Close()
		if rerr == nil && len(entries) > 0 {
			l.seq = entries[len(entries)-1].Seq
		}
	}
	return l, nil
}

// Append assigns the next sequence number and writes the entry as one
// JSONL line, fsync'd when the log was opened with sync.
func (l *Log) Append(e Entry) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("feedback: encoding log entry: %w", err)
	}
	b = append(b, '\n')
	if _, err := l.f.Write(b); err != nil {
		return fmt.Errorf("feedback: appending log entry: %w", err)
	}
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("feedback: fsync log: %w", err)
		}
	}
	return nil
}

// Close closes the underlying file.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// ReadLog decodes a JSONL telemetry stream (tests, replay tooling).
func ReadLog(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("feedback: log line %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
