// Package feedback is the ingestion half of the closed serving loop:
// clients that ran a dispatched schedule report the realized per-phase
// speedup and QoS degradation back, keyed by the dispatch ID the server
// minted, and the package turns those reports into the quantities the
// drift detector consumes — log-scale residuals against the raw model
// predictions recorded at dispatch time, and band-exceedance flags
// against the same confidence intervals the optimizer priced in.
//
// The package is deliberately free of wall-clock reads and map-order
// effects in anything that feeds results: for a fixed sequence of
// feedback reports the drift-state transitions, the recalibration
// medians and the telemetry log bytes are identical across runs. That is
// what lets the serving layer promise byte-deterministic closed-loop
// behavior end to end (DESIGN.md §11).
package feedback

import (
	"errors"
	"fmt"
	"math"
)

// Report is the body of POST /v1/feedback: realized values for one
// completed dispatch, identified by the dispatch ID the server returned.
type Report struct {
	DispatchID string `json:"dispatch_id"`
	// Observations carry one entry per phase the client measured; phases
	// are 0-based indices into the dispatched schedule.
	Observations []PhaseObservation `json:"observations"`
}

// PhaseObservation is one phase's realized outcome on the natural scale
// (speedup as a ratio, degradation in QoS points — the same units the
// dispatch response predicted them in).
type PhaseObservation struct {
	Phase       int     `json:"phase"`
	Speedup     float64 `json:"realized_speedup"`
	Degradation float64 `json:"realized_degradation"`
}

// ErrInvalidReport classifies structurally bad feedback — callers map it
// to a 400, distinct from an unknown dispatch ID.
var ErrInvalidReport = errors.New("feedback: invalid report")

// Validate checks a report against the dispatched phase count: at least
// one observation, phases in range and not repeated, and realized values
// finite and on the models' domains (speedup strictly positive for the
// log scale, degradation non-negative for the log1p scale).
func (r *Report) Validate(phases int) error {
	if r.DispatchID == "" {
		return fmt.Errorf("%w: missing dispatch_id", ErrInvalidReport)
	}
	if len(r.Observations) == 0 {
		return fmt.Errorf("%w: no observations", ErrInvalidReport)
	}
	seen := make([]bool, phases)
	for i, obs := range r.Observations {
		if obs.Phase < 0 || obs.Phase >= phases {
			return fmt.Errorf("%w: observation %d: phase %d out of range [0,%d)",
				ErrInvalidReport, i, obs.Phase, phases)
		}
		if seen[obs.Phase] {
			return fmt.Errorf("%w: phase %d reported twice", ErrInvalidReport, obs.Phase)
		}
		seen[obs.Phase] = true
		if math.IsNaN(obs.Speedup) || math.IsInf(obs.Speedup, 0) || obs.Speedup <= 0 {
			return fmt.Errorf("%w: observation %d: realized_speedup %g must be finite and > 0",
				ErrInvalidReport, i, obs.Speedup)
		}
		if math.IsNaN(obs.Degradation) || math.IsInf(obs.Degradation, 0) || obs.Degradation < 0 {
			return fmt.Errorf("%w: observation %d: realized_degradation %g must be finite and >= 0",
				ErrInvalidReport, i, obs.Degradation)
		}
	}
	return nil
}

// Sample is one phase's realized-vs-predicted observation after scaling:
// residuals live on the models' training scales (log for speedup, log1p
// for degradation), so they are directly comparable to the confidence
// bands and to the canary-calibration shifts.
type Sample struct {
	Phase int
	// SpeedupResidual is realized - predicted on the log-speedup scale;
	// DegResidual likewise on the log1p-degradation scale.
	SpeedupResidual float64
	DegResidual     float64
	// SpeedupExceeded / DegExceeded report whether the realized value
	// fell outside the confidence band the optimizer was told to trust.
	SpeedupExceeded bool
	DegExceeded     bool
}
