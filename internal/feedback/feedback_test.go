package feedback

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func TestReportValidate(t *testing.T) {
	good := Report{
		DispatchID: "d1",
		Observations: []PhaseObservation{
			{Phase: 0, Speedup: 1.2, Degradation: 3},
			{Phase: 1, Speedup: 0.9, Degradation: 0},
		},
	}
	if err := good.Validate(2); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	bad := []Report{
		{Observations: []PhaseObservation{{Phase: 0, Speedup: 1, Degradation: 0}}},
		{DispatchID: "d"},
		{DispatchID: "d", Observations: []PhaseObservation{{Phase: 2, Speedup: 1, Degradation: 0}}},
		{DispatchID: "d", Observations: []PhaseObservation{{Phase: -1, Speedup: 1, Degradation: 0}}},
		{DispatchID: "d", Observations: []PhaseObservation{
			{Phase: 0, Speedup: 1, Degradation: 0}, {Phase: 0, Speedup: 1, Degradation: 0}}},
		{DispatchID: "d", Observations: []PhaseObservation{{Phase: 0, Speedup: 0, Degradation: 0}}},
		{DispatchID: "d", Observations: []PhaseObservation{{Phase: 0, Speedup: -2, Degradation: 0}}},
		{DispatchID: "d", Observations: []PhaseObservation{{Phase: 0, Speedup: math.NaN(), Degradation: 0}}},
		{DispatchID: "d", Observations: []PhaseObservation{{Phase: 0, Speedup: math.Inf(1), Degradation: 0}}},
		{DispatchID: "d", Observations: []PhaseObservation{{Phase: 0, Speedup: 1, Degradation: -1}}},
		{DispatchID: "d", Observations: []PhaseObservation{{Phase: 0, Speedup: 1, Degradation: math.NaN()}}},
	}
	for i, r := range bad {
		if err := r.Validate(2); err == nil {
			t.Errorf("case %d: invalid report accepted: %+v", i, r)
		}
	}
}

func TestRecordsFIFOEviction(t *testing.T) {
	r := NewRecords(3)
	for _, id := range []string{"a", "b", "c"} {
		r.Put(&DispatchRecord{ID: id})
	}
	// Duplicate insert neither grows nor reorders.
	r.Put(&DispatchRecord{ID: "a"})
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	r.Put(&DispatchRecord{ID: "d"}) // evicts a
	if _, ok := r.Get("a"); ok {
		t.Fatal("oldest record survived eviction")
	}
	for _, id := range []string{"b", "c", "d"} {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("record %q lost", id)
		}
	}
}

func TestLogAppendReadAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	l, err := OpenLog(path, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(Entry{DispatchID: "d", Model: "m", Phase: i, Speedup: 1.5, SpeedupRes: 0.1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := ReadLog(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("read %d entries, want 3", len(entries))
	}
	for i, e := range entries {
		if e.Seq != uint64(i+1) || e.Phase != i {
			t.Fatalf("entry %d = %+v, want seq %d phase %d", i, e, i+1, i)
		}
	}

	// Reopening resumes the sequence past the existing tail.
	l2, err := OpenLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(Entry{DispatchID: "d2", Model: "m", Phase: 0}); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	f, err = os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	entries, err = ReadLog(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := entries[len(entries)-1].Seq; got != 4 {
		t.Fatalf("resumed seq = %d, want 4", got)
	}

	// A nil log is a valid no-op sink.
	var nilLog *Log
	if err := nilLog.Append(Entry{}); err != nil {
		t.Fatal(err)
	}
	if err := nilLog.Close(); err != nil {
		t.Fatal(err)
	}
}

// exceedSample builds a drifted observation outside the band.
func exceedSample(phase int, res float64) Sample {
	return Sample{Phase: phase, SpeedupResidual: res, DegResidual: res,
		SpeedupExceeded: true, DegExceeded: true}
}

func inBandSample(phase int) Sample {
	return Sample{Phase: phase}
}

func TestDetectorExceedanceTrigger(t *testing.T) {
	d := NewDetector(Options{Window: 4, MinSamples: 2, MaxExceedFrac: 0.5,
		CUSUMThreshold: 1e9, StaleAfter: 1000})
	if st := d.State("m"); st != Healthy {
		t.Fatalf("initial state %v", st)
	}
	st, trans := d.Observe("m", []Sample{inBandSample(0)})
	if st != Healthy || len(trans) != 0 {
		t.Fatalf("in-band sample moved state: %v %v", st, trans)
	}
	st, trans = d.Observe("m", []Sample{exceedSample(0, 0.5)})
	if st != Drifting || len(trans) != 1 || trans[0].From != Healthy || trans[0].To != Drifting {
		t.Fatalf("exceedance at 50%% of window did not drift: %v %v", st, trans)
	}
	// Recovery: in-band samples push the exceedances out of the window.
	for i := 0; i < 4; i++ {
		st, _ = d.Observe("m", []Sample{inBandSample(0)})
	}
	if st != Healthy {
		t.Fatalf("window refilled in-band but state = %v", st)
	}
}

func TestDetectorCUSUMTrigger(t *testing.T) {
	d := NewDetector(Options{Window: 100, MinSamples: 50, MaxExceedFrac: 0.99,
		CUSUMSlack: 0.05, CUSUMThreshold: 0.5, StaleAfter: 1000})
	// Small systematic bias, always inside the band: only CUSUM can see it.
	var st State
	for i := 0; i < 3; i++ {
		st, _ = d.Observe("m", []Sample{{Phase: 0, SpeedupResidual: 0.15}})
	}
	if st != Healthy {
		t.Fatalf("CUSUM fired early: %v", st)
	}
	for i := 0; i < 4; i++ {
		st, _ = d.Observe("m", []Sample{{Phase: 0, SpeedupResidual: 0.15}})
	}
	if st != Drifting {
		t.Fatalf("systematic in-band bias not detected: %v", st)
	}
	// Negative bias triggers the other side.
	d2 := NewDetector(Options{CUSUMSlack: 0.05, CUSUMThreshold: 0.5, MinSamples: 1000})
	for i := 0; i < 7; i++ {
		st, _ = d2.Observe("m", []Sample{{Phase: 0, DegResidual: -0.15}})
	}
	if st != Drifting {
		t.Fatalf("negative bias not detected: %v", st)
	}
}

func TestDetectorStaleAndReset(t *testing.T) {
	d := NewDetector(Options{Window: 4, MinSamples: 1, MaxExceedFrac: 0.5,
		CUSUMThreshold: 1e9, StaleAfter: 3})
	var st State
	for i := 0; i < 2; i++ {
		st, _ = d.Observe("m", []Sample{exceedSample(0, 1)})
	}
	if st != Drifting {
		t.Fatalf("state %v, want drifting", st)
	}
	for i := 0; i < 3; i++ {
		st, _ = d.Observe("m", []Sample{exceedSample(0, 1)})
	}
	if st != Stale {
		t.Fatalf("state %v after persistent drift, want stale", st)
	}
	// Stale is terminal: even a clean window does not rehabilitate.
	for i := 0; i < 8; i++ {
		st, _ = d.Observe("m", []Sample{inBandSample(0)})
	}
	if st != Stale {
		t.Fatalf("stale model recovered by itself: %v", st)
	}
	d.Reset("m")
	if got := d.State("m"); got != Healthy {
		t.Fatalf("Reset left state %v", got)
	}
}

// TestDetectorDeterministic pins the core closed-loop property: an
// identical feedback sequence produces identical transitions, states and
// medians across independent detectors.
func TestDetectorDeterministic(t *testing.T) {
	seq := make([][]Sample, 0, 64)
	for i := 0; i < 64; i++ {
		res := 0.01 * float64(i%7)
		s := Sample{Phase: i % 3, SpeedupResidual: res, DegResidual: -res,
			SpeedupExceeded: i%5 == 0, DegExceeded: i%4 == 0}
		seq = append(seq, []Sample{s})
	}
	run := func() ([]State, []Transition, []float64, []float64) {
		d := NewDetector(Options{Window: 8, MinSamples: 4, MaxExceedFrac: 0.4,
			CUSUMSlack: 0.01, CUSUMThreshold: 0.3, StaleAfter: 30})
		var states []State
		var trans []Transition
		for _, batch := range seq {
			st, tr := d.Observe("m", batch)
			states = append(states, st)
			trans = append(trans, tr...)
		}
		spd, deg := d.Medians("m", 3)
		return states, trans, spd, deg
	}
	s1, t1, spd1, deg1 := run()
	s2, t2, spd2, deg2 := run()
	if !reflect.DeepEqual(s1, s2) || !reflect.DeepEqual(t1, t2) {
		t.Fatalf("state trajectories differ:\n%v\n%v\ntransitions:\n%v\n%v", s1, s2, t1, t2)
	}
	if !reflect.DeepEqual(spd1, spd2) || !reflect.DeepEqual(deg1, deg2) {
		t.Fatal("medians differ across identical sequences")
	}
	if len(t1) == 0 {
		t.Fatal("sequence caused no transitions; test is vacuous")
	}
}

func TestDetectorMedians(t *testing.T) {
	d := NewDetector(Options{Window: 8, CUSUMThreshold: 1e9, MinSamples: 1000})
	for _, r := range []float64{0.3, 0.1, 0.2} {
		d.Observe("m", []Sample{{Phase: 0, SpeedupResidual: r, DegResidual: -r}})
	}
	spd, deg := d.Medians("m", 2)
	if spd[0] != 0.2 || deg[0] != -0.2 {
		t.Fatalf("phase-0 medians = (%g, %g), want (0.2, -0.2)", spd[0], deg[0])
	}
	if spd[1] != 0 || deg[1] != 0 {
		t.Fatalf("unobserved phase medians = (%g, %g), want zeros", spd[1], deg[1])
	}
	// Unknown model: zero shifts for every phase.
	spd, deg = d.Medians("nope", 2)
	for ph := range spd {
		if spd[ph] != 0 || deg[ph] != 0 {
			t.Fatal("unknown model produced non-zero medians")
		}
	}
}

// TestDetectorConcurrentModels exercises the lock under parallel
// reporters for distinct models (the race detector is the assertion).
func TestDetectorConcurrentModels(t *testing.T) {
	d := NewDetector(Options{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			model := string(rune('a' + w%4))
			for i := 0; i < 50; i++ {
				d.Observe(model, []Sample{exceedSample(i%2, 0.2)})
				d.State(model)
				d.Medians(model, 2)
			}
		}(w)
	}
	wg.Wait()
}
