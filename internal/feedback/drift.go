package feedback

import (
	"math"
	"sort"
	"sync"

	"opprox/internal/obs"
)

// State is a model's drift-health classification.
type State int

const (
	// Healthy: realized values track the confidence bands.
	Healthy State = iota
	// Drifting: a phase's realized values left the bands persistently
	// (exceedance fraction) or accumulated a systematic bias (CUSUM).
	// The lifecycle layer reacts by building a recalibrated shadow.
	Drifting
	// Stale: the drift persisted beyond Options.StaleAfter further
	// observations without recovery — the model should not be trusted
	// until replaced. Terminal until Reset.
	Stale
)

// String returns the state name used in API responses and metrics.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Drifting:
		return "drifting"
	case Stale:
		return "stale"
	default:
		return "unknown"
	}
}

// Options are the drift-detector thresholds. The zero value is usable:
// every field falls back to the documented default.
type Options struct {
	// Window is the per-phase sliding window of recent observations
	// (default 20).
	Window int
	// MinSamples is how many observations a phase needs before the
	// exceedance trigger may fire (default 8); the CUSUM trigger is
	// always armed.
	MinSamples int
	// MaxExceedFrac flips a phase to drifting when the fraction of
	// windowed observations outside the confidence band reaches it
	// (default 0.5 — the bands were built at p=0.95-ish levels, so even
	// 50% exceedance is far outside calibration).
	MaxExceedFrac float64
	// CUSUMSlack is the drift allowance k subtracted per step on the
	// log-residual scale (default 0.05).
	CUSUMSlack float64
	// CUSUMThreshold is the decision bound h on the accumulated one-sided
	// sums (default 1.0 — roughly twenty steps of 0.1 systematic bias).
	CUSUMThreshold float64
	// StaleAfter is how many further observations a model may spend in
	// Drifting before it is declared Stale (default 200).
	StaleAfter int
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 20
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 8
	}
	if o.MaxExceedFrac <= 0 {
		o.MaxExceedFrac = 0.5
	}
	if o.CUSUMSlack <= 0 {
		o.CUSUMSlack = 0.05
	}
	if o.CUSUMThreshold <= 0 {
		o.CUSUMThreshold = 1.0
	}
	if o.StaleAfter <= 0 {
		o.StaleAfter = 200
	}
	return o
}

// Transition is one recorded state change.
type Transition struct {
	Model string
	From  State
	To    State
}

// targetTrack follows one (phase, target) stream: a ring of residuals
// with parallel exceedance flags, plus two-sided CUSUM sums.
type targetTrack struct {
	resid  []float64
	exceed []bool
	next   int
	filled int

	exceedCount int // exceedances currently inside the ring

	cusumPos float64
	cusumNeg float64
}

func (t *targetTrack) observe(window int, res float64, ex bool, slack float64) {
	if t.resid == nil {
		t.resid = make([]float64, window)
		t.exceed = make([]bool, window)
	}
	if t.filled == window && t.exceed[t.next] {
		t.exceedCount--
	}
	t.resid[t.next] = res
	t.exceed[t.next] = ex
	if ex {
		t.exceedCount++
	}
	t.next = (t.next + 1) % window
	if t.filled < window {
		t.filled++
	}
	t.cusumPos = math.Max(0, t.cusumPos+res-slack)
	t.cusumNeg = math.Max(0, t.cusumNeg-res-slack)
}

func (t *targetTrack) triggered(o Options) bool {
	if t.filled >= o.MinSamples &&
		float64(t.exceedCount) >= o.MaxExceedFrac*float64(t.filled) {
		return true
	}
	return t.cusumPos > o.CUSUMThreshold || t.cusumNeg > o.CUSUMThreshold
}

// median over the residuals currently in the ring (0 when empty).
func (t *targetTrack) median() float64 {
	if t.filled == 0 {
		return 0
	}
	s := append([]float64(nil), t.resid[:t.filled]...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// phaseTrack pairs the two per-phase target streams.
type phaseTrack struct {
	spd targetTrack
	deg targetTrack
}

// tracker is one model's drift state.
type tracker struct {
	state    State
	driftAge int
	phases   []*phaseTrack // indexed by phase; grown on demand
}

// Detector folds feedback samples into per-model drift state. All state
// transitions are a pure function of the observation sequence: no clocks,
// no randomness, no map-order effects — an identical feedback sequence
// yields identical transitions (the golden determinism test pins this).
type Detector struct {
	mu     sync.Mutex
	opts   Options
	models map[string]*tracker
}

// NewDetector builds a detector with the given thresholds.
func NewDetector(opts Options) *Detector {
	return &Detector{opts: opts.withDefaults(), models: map[string]*tracker{}}
}

// Options returns the resolved (defaulted) thresholds.
func (d *Detector) Options() Options { return d.opts }

// Observe ingests one feedback report's samples for a model and returns
// the resulting state plus any transition this report caused. Samples
// are processed in slice order.
func (d *Detector) Observe(model string, samples []Sample) (State, []Transition) {
	d.mu.Lock()
	defer d.mu.Unlock()
	tr := d.models[model]
	if tr == nil {
		tr = &tracker{}
		d.models[model] = tr
	}
	for _, s := range samples {
		for s.Phase >= len(tr.phases) {
			tr.phases = append(tr.phases, &phaseTrack{})
		}
		pt := tr.phases[s.Phase]
		pt.spd.observe(d.opts.Window, s.SpeedupResidual, s.SpeedupExceeded, d.opts.CUSUMSlack)
		pt.deg.observe(d.opts.Window, s.DegResidual, s.DegExceeded, d.opts.CUSUMSlack)
		if s.SpeedupExceeded {
			obs.Inc("feedback.exceed.speedup")
		}
		if s.DegExceeded {
			obs.Inc("feedback.exceed.deg")
		}
	}

	trig := false
	for _, pt := range tr.phases {
		if pt.spd.triggered(d.opts) || pt.deg.triggered(d.opts) {
			trig = true
			break
		}
	}

	var trans []Transition
	move := func(to State, counter string) {
		trans = append(trans, Transition{Model: model, From: tr.state, To: to})
		tr.state = to
		obs.Inc(counter)
		obs.LogEvent("feedback.drift", "%s: %s -> %s", model, trans[len(trans)-1].From, to)
	}
	switch tr.state {
	case Healthy:
		if trig {
			tr.driftAge = 0
			move(Drifting, "feedback.drift.to_drifting")
		}
	case Drifting:
		if !trig {
			move(Healthy, "feedback.drift.recovered")
		} else {
			tr.driftAge += len(samples)
			if tr.driftAge >= d.opts.StaleAfter {
				move(Stale, "feedback.drift.to_stale")
			}
		}
	case Stale:
		// Terminal until Reset: a stale model must be replaced, not
		// quietly rehabilitated by a lucky window.
	}
	obs.Set("feedback.state."+model, float64(tr.state))
	return tr.state, trans
}

// State returns the model's current drift state (Healthy when never
// observed).
func (d *Detector) State(model string) State {
	d.mu.Lock()
	defer d.mu.Unlock()
	if tr := d.models[model]; tr != nil {
		return tr.state
	}
	return Healthy
}

// Medians returns the per-phase median residuals over the current
// windows, sized to phases — exactly the additive correction the canary
// calibration path applies, measured from production feedback instead of
// probe runs (core.SetCalibration consumes it).
func (d *Detector) Medians(model string, phases int) (spd, deg []float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	spd = make([]float64, phases)
	deg = make([]float64, phases)
	tr := d.models[model]
	if tr == nil {
		return spd, deg
	}
	for ph := 0; ph < phases && ph < len(tr.phases); ph++ {
		spd[ph] = tr.phases[ph].spd.median()
		deg[ph] = tr.phases[ph].deg.median()
	}
	return spd, deg
}

// Reset drops a model's tracker — used when a new live version is
// installed (promotion, rollback, reload): the fresh model starts with a
// clean healthy window.
func (d *Detector) Reset(model string) {
	d.mu.Lock()
	delete(d.models, model)
	d.mu.Unlock()
	obs.Set("feedback.state."+model, float64(Healthy))
}
