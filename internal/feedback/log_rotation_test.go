package feedback

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// appendN appends n entries with deterministic content and returns them
// as written (Seq filled in by the log).
func appendN(t *testing.T, l *Log, n, offset int) {
	t.Helper()
	for i := 0; i < n; i++ {
		err := l.Append(Entry{
			DispatchID: fmt.Sprintf("d%03d", offset+i),
			Model:      "m",
			Version:    "v1",
			App:        "pso",
			Budget:     10,
			Params:     map[string]float64{"swarm": 16},
			Levels:     []int{1, 0},
			Phase:      i % 2,
			Speedup:    1.5,
			SpeedupRes: 0.1,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestLogRotationByteIdentity pins the rotation contract: replaying a
// rotated log (segments + live file, in order) yields exactly the
// entries an unrotated log written from the same appends yields — and
// the concatenated segment bytes are byte-identical to the unrotated
// file.
func TestLogRotationByteIdentity(t *testing.T) {
	dir := t.TempDir()
	const n = 50

	plain, err := OpenLog(filepath.Join(dir, "plain.jsonl"), false)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, plain, n, 0)
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}

	// A tiny MaxBytes forces many rotations.
	rotPath := filepath.Join(dir, "rot.jsonl")
	rot, err := OpenLogOptions(rotPath, LogOptions{MaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, rot, n, 0)
	if err := rot.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := SegmentPaths(rotPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %v", segs)
	}
	var concat []byte
	for _, p := range segs {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		concat = append(concat, b...)
	}
	plainBytes, err := os.ReadFile(filepath.Join(dir, "plain.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(concat) != string(plainBytes) {
		t.Fatalf("rotated segments do not concatenate to the unrotated stream:\n%d vs %d bytes", len(concat), len(plainBytes))
	}

	want, err := ReadLogFile(filepath.Join(dir, "plain.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadLogFile(rotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rotated replay differs: %d vs %d entries", len(got), len(want))
	}
	if len(got) != n {
		t.Fatalf("replayed %d entries, want %d", len(got), n)
	}
}

// TestLogRotationSeqResume reopens a rotated log and checks the
// sequence resumes past the highest seq across ALL segments, not just
// the live file.
func TestLogRotationSeqResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	l, err := OpenLogOptions(path, LogOptions{MaxBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10, 0)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLogOptions(path, LogOptions{MaxBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l2, 5, 10)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	entries, err := ReadLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 15 {
		t.Fatalf("replayed %d entries, want 15", len(entries))
	}
	for i, e := range entries {
		if e.Seq != uint64(i)+1 {
			t.Fatalf("entry %d has seq %d: sequence broke across reopen/rotation", i, e.Seq)
		}
	}
}

// TestScanLogWhileAppending replays a rotating log while a writer keeps
// appending and rotating underneath it: the scan must deliver a
// consistent prefix (strictly increasing seq, no duplicates from the
// segment/live handoff).
func TestScanLogWhileAppending(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	l, err := OpenLogOptions(path, LogOptions{MaxBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 20, 0)

	done := make(chan struct{})
	go func() {
		defer close(done)
		appendN(t, l, 200, 20)
	}()
	for i := 0; i < 20; i++ {
		last := uint64(0)
		err := ScanLog(path, func(e Entry) error {
			if e.Seq <= last {
				t.Errorf("seq %d after %d: duplicate or reorder during concurrent scan", e.Seq, last)
			}
			last = e.Seq
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if last < 20 {
			t.Fatalf("scan lost the already-written prefix: saw up to seq %d", last)
		}
	}
	<-done
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecordsSnapshotChurn hammers Snapshot against Put eviction churn
// (run under -race): the snapshot must be taken copy-on-read — no
// torn state, every element non-nil, FIFO order preserved.
func TestRecordsSnapshotChurn(t *testing.T) {
	const cap, workers, iters = 32, 8, 300
	recs := NewRecords(cap)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				recs.Put(&DispatchRecord{
					ID: fmt.Sprintf("d-%d-%d", w, i), Model: "m",
					Phases: 1, Levels: [][]int{{0}},
				})
				snap := recs.Snapshot()
				if len(snap) > cap {
					t.Errorf("snapshot larger than cap: %d", len(snap))
					return
				}
				for _, rec := range snap {
					if rec == nil || rec.ID == "" {
						t.Error("snapshot contains torn record")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := recs.Len(); got != cap {
		t.Fatalf("records after churn: %d, want the cap %d", got, cap)
	}
	snap := recs.Snapshot()
	if len(snap) != cap {
		t.Fatalf("final snapshot: %d records, want %d", len(snap), cap)
	}
}
