package feedback

// Feedback-under-overload regression tests (ISSUE 9): the record store
// and the telemetry log are hammered concurrently by the serving layer
// during bursts — eviction churn in Records.Put races Log.Append from
// every dispatch and feedback goroutine. Run under -race.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestRecordsLogConcurrentChurn drives Records.Put eviction churn and
// Log.Append from many goroutines at once: no data race, the store
// stays at its cap, and the log comes back complete with a strictly
// increasing sequence.
func TestRecordsLogConcurrentChurn(t *testing.T) {
	const cap, workers, iters = 32, 8, 200

	recs := NewRecords(cap)
	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	l, err := OpenLog(path, false)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("d-%d-%d", w, i)
				recs.Put(&DispatchRecord{ID: id, Model: "m", Phases: 1, Levels: [][]int{{0}}})
				// Re-Put of a live ID must be a no-op, not a refresh.
				recs.Put(&DispatchRecord{ID: id, Model: "m", Phases: 1})
				recs.Get(id)
				recs.Len()
				if err := l.Append(Entry{DispatchID: id, Model: "m", Phase: 0, Speedup: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if got := recs.Len(); got != cap {
		t.Fatalf("records after churn: %d, want the cap %d", got, cap)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	entries, err := ReadLog(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != workers*iters {
		t.Fatalf("log entries: %d, want %d (lost appends under contention)", len(entries), workers*iters)
	}
	for i, e := range entries {
		if e.Seq != uint64(i)+1 {
			t.Fatalf("entry %d has seq %d: sequence not strictly increasing", i, e.Seq)
		}
	}
}
