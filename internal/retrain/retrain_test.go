package retrain

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/apps/vidpipe"
	"opprox/internal/core"
	"opprox/internal/feedback"
	"opprox/internal/launch"
	"opprox/internal/lifecycle"
)

// trainedModel trains one small vidpipe model set, cached across tests
// (vidpipe's trained predictions stay inside the invertible range of
// the natural scales for its own served schedules, so residual-exact
// synthetic telemetry is constructible).
var trainedOnce sync.Once
var trainedBytes []byte

func trainedModel(t testing.TB) []byte {
	t.Helper()
	trainedOnce.Do(func() {
		opts := core.DefaultOptions()
		opts.Phases = 2
		opts.JointSamplesPerPhase = 6
		opts.MaxParamCombos = 3
		opts.Folds = 5
		tr, err := core.Train(apps.NewRunner(vidpipe.New()), opts)
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			panic(err)
		}
		trainedBytes = buf.Bytes()
	})
	return trainedBytes
}

func loadModel(t testing.TB) *core.Trained {
	t.Helper()
	tr, err := core.LoadTrained(bytes.NewReader(trainedModel(t)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// servedSchedule plans one dispatch against the model, yielding valid
// (params, per-phase levels) context for synthetic telemetry.
func servedSchedule(t testing.TB, tr *core.Trained, budget float64) (apps.Params, [][]int) {
	t.Helper()
	app := vidpipe.New()
	params := apps.DefaultParams(app)
	plan, err := launch.DispatchTrained(&launch.JobConfig{
		App: app.Name(), Budget: budget, Params: params, ModelPath: "m.json",
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	levels := make([][]int, plan.Schedule.Phases)
	for ph, cfg := range plan.Schedule.Levels {
		levels[ph] = append([]int(nil), cfg...)
	}
	return params, levels
}

// writeTelemetry appends n reports (one entry per phase each) for the
// model: realized values equal the model's own predictions, with sShift
// added on the speedup log scale from report shiftAt onward (-1: never).
func writeTelemetry(t testing.TB, l *feedback.Log, tr *core.Trained, model string, n, shiftAt int, sShift float64) {
	t.Helper()
	params, levels := servedSchedule(t, tr, 10)
	for i := 0; i < n; i++ {
		for ph := range levels {
			diag, err := tr.DiagnosePhase(params, ph, approx.Config(levels[ph]))
			if err != nil {
				t.Fatal(err)
			}
			s := diag.SpeedupRaw
			if shiftAt >= 0 && i >= shiftAt {
				s += sShift
			}
			err = l.Append(feedback.Entry{
				DispatchID:  fmt.Sprintf("d%04d", i),
				Model:       model,
				Version:     "v0",
				App:         "vidpipe",
				Budget:      10,
				Params:      params,
				Levels:      levels[ph],
				Phase:       ph,
				Speedup:     core.SpeedupFromScale(s),
				Degradation: core.DegradationFromScale(diag.DegRaw),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestExtractOrderBoundingBackfill(t *testing.T) {
	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	l, err := feedback.OpenLogOptions(path, feedback.LogOptions{MaxBytes: 400})
	if err != nil {
		t.Fatal(err)
	}
	params := apps.Params{"x": 1}
	// Interleave: target-model entries with context, other-model noise,
	// context-free entries (half backfillable, half not).
	for i := 0; i < 40; i++ {
		e := feedback.Entry{
			DispatchID: fmt.Sprintf("z%02d", 40-i), // IDs descend as seq ascends
			Model:      "m",
			Phase:      i % 2,
			Speedup:    1.5,
		}
		switch {
		case i%4 == 1:
			e.Model = "other"
		case i%4 == 2:
			e.DispatchID = fmt.Sprintf("nf%02d", i) // context-free, backfillable
		case i%4 == 3:
			e.DispatchID = "gone" // context-free, no backfill record
		default:
			e.Params = params
			e.Levels = []int{1, 0}
		}
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	backfill := map[string]*feedback.DispatchRecord{}
	for i := 0; i < 40; i++ {
		if i%4 == 2 {
			backfill[fmt.Sprintf("nf%02d", i)] = &feedback.DispatchRecord{
				ID: fmt.Sprintf("nf%02d", i), Model: "m",
				Params: params, Levels: [][]int{{2, 2}, {1, 1}},
			}
		}
	}
	m, err := Extract(path, ExtractOptions{Model: "m", Backfill: backfill})
	if err != nil {
		t.Fatal(err)
	}
	if m.Total != 30 { // 40 minus the 10 "other" entries
		t.Fatalf("Total = %d, want 30", m.Total)
	}
	if m.Skipped != 10 { // the "gone" quarter
		t.Fatalf("Skipped = %d, want 10", m.Skipped)
	}
	if len(m.Rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(m.Rows))
	}
	for i := 1; i < len(m.Rows); i++ {
		a, b := m.Rows[i-1], m.Rows[i]
		if a.DispatchID > b.DispatchID ||
			(a.DispatchID == b.DispatchID && a.Phase > b.Phase) {
			t.Fatalf("rows not in dispatch order at %d: %+v then %+v", i, a, b)
		}
	}
	for _, r := range m.Rows {
		if len(r.Params) == 0 || len(r.Levels) == 0 {
			t.Fatalf("row without context survived extraction: %+v", r)
		}
		if r.DispatchID[:2] == "nf" && r.Levels[0] != backfill[r.DispatchID].Levels[r.Phase][0] {
			t.Fatalf("backfilled row has wrong levels: %+v", r)
		}
	}

	// Bounding keeps the most recent rows by seq regardless of ID order.
	bounded, err := Extract(path, ExtractOptions{Model: "m", MaxRows: 5, Backfill: backfill})
	if err != nil {
		t.Fatal(err)
	}
	if len(bounded.Rows) != 5 {
		t.Fatalf("bounded rows = %d, want 5", len(bounded.Rows))
	}
	minSeq := bounded.Rows[0].Seq
	for _, r := range bounded.Rows {
		if r.Seq < minSeq {
			minSeq = r.Seq
		}
	}
	for _, r := range m.Rows {
		keep := false
		for _, b := range bounded.Rows {
			if b.Seq == r.Seq {
				keep = true
			}
		}
		if r.Seq >= minSeq != keep {
			t.Fatalf("bounding did not keep the seq tail: seq %d keep=%v minSeq=%d", r.Seq, keep, minSeq)
		}
	}
}

func TestRedetectChangepointAndGrouping(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	tr := loadModel(t)
	dir := t.TempDir()

	// Faithful-only telemetry: no changepoint, no divergence, singleton
	// groups.
	cleanPath := filepath.Join(dir, "clean.jsonl")
	cl, err := feedback.OpenLog(cleanPath, false)
	if err != nil {
		t.Fatal(err)
	}
	writeTelemetry(t, cl, tr, "m", 30, -1, 0)
	cl.Close()
	m, err := Extract(cleanPath, ExtractOptions{Model: "m"})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := Redetect(tr, m.Rows, 0.15, 8)
	if err != nil {
		t.Fatal(err)
	}
	if seg.Diverged || seg.Changepoint != -1 {
		t.Fatalf("faithful telemetry flagged: %+v", seg)
	}
	if len(seg.Groups) != tr.Phases {
		t.Fatalf("faithful telemetry pooled phases: %v", seg.Groups)
	}

	// Mid-stream shift on every phase: the changepoint lands at the
	// shift, pre-shift rows are trimmed, and phases drifting together
	// merge into one pooled group.
	shiftPath := filepath.Join(dir, "shift.jsonl")
	sl, err := feedback.OpenLog(shiftPath, false)
	if err != nil {
		t.Fatal(err)
	}
	writeTelemetry(t, sl, tr, "m", 40, 20, 0.5)
	sl.Close()
	m2, err := Extract(shiftPath, ExtractOptions{Model: "m"})
	if err != nil {
		t.Fatal(err)
	}
	seg2, err := Redetect(tr, m2.Rows, 0.15, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantCP := 20 * tr.Phases // rows per report = phases
	if seg2.Changepoint != wantCP {
		t.Fatalf("changepoint = %d, want %d", seg2.Changepoint, wantCP)
	}
	if !seg2.Diverged {
		t.Fatal("uniform shift not flagged as divergence")
	}
	if len(seg2.Post) != 40*tr.Phases-wantCP {
		t.Fatalf("post-change rows = %d, want %d", len(seg2.Post), 40*tr.Phases-wantCP)
	}
	if len(seg2.Groups) != 1 || len(seg2.Groups[0]) != tr.Phases {
		t.Fatalf("phases drifting together not pooled: %v", seg2.Groups)
	}

	// Determinism: the same rows re-detect identically.
	seg3, err := Redetect(tr, m2.Rows, 0.15, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seg2, seg3) {
		t.Fatal("Redetect is not deterministic")
	}
}

// TestRetrainDeterminismD14 is the byte-determinism invariant: the same
// telemetry prefix yields byte-identical winning artifacts — across
// runs, and across a rotated vs unrotated log holding the same stream.
func TestRetrainDeterminismD14(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	tr := loadModel(t)
	dir := t.TempDir()

	write := func(name string, opts feedback.LogOptions) string {
		path := filepath.Join(dir, name)
		l, err := feedback.OpenLogOptions(path, opts)
		if err != nil {
			t.Fatal(err)
		}
		writeTelemetry(t, l, tr, "m", 40, 20, 0.5)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	plain := write("plain.jsonl", feedback.LogOptions{})
	rotated := write("rot.jsonl", feedback.LogOptions{MaxBytes: 1 << 10})

	run := func(path string) *Result {
		m, err := Extract(path, ExtractOptions{Model: "m"})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Retrain(trainedModel(t), m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner == "" || len(res.Raw) == 0 {
			t.Fatalf("no winner: %+v", res)
		}
		return res
	}
	a, b := run(plain), run(plain)
	if a.Version != b.Version || !bytes.Equal(a.Raw, b.Raw) {
		t.Fatal("identical telemetry produced different artifacts (D14 violated)")
	}
	c := run(rotated)
	if c.Version != a.Version || !bytes.Equal(c.Raw, a.Raw) {
		t.Fatal("rotated log produced a different artifact than the unrotated stream (D14 violated)")
	}
	if ver := lifecycle.Version(a.Raw); ver != a.Version {
		t.Fatalf("winner version %q is not the content hash %q", a.Version, ver)
	}
	// The winner must actually load and differ from live.
	if _, err := core.LoadTrained(bytes.NewReader(a.Raw)); err != nil {
		t.Fatalf("winner does not round-trip: %v", err)
	}
	if a.Version == a.LiveVersion {
		t.Fatal("winner is the live version")
	}
}

func TestRetrainInsufficientData(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	tr := loadModel(t)
	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	l, err := feedback.OpenLog(path, false)
	if err != nil {
		t.Fatal(err)
	}
	writeTelemetry(t, l, tr, "m", 3, -1, 0)
	l.Close()
	m, err := Extract(path, ExtractOptions{Model: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Retrain(trainedModel(t), m, Options{MinSamples: 32}); !errors.Is(err, ErrInsufficientData) {
		t.Fatalf("err = %v, want ErrInsufficientData", err)
	}
}

// fakeSource / fakePub satisfy the Retrainer's structural interfaces
// without a lifecycle manager.
type fakeSource struct{ raw []byte }

func (s fakeSource) LiveRaw(name string) ([]byte, string, bool) {
	if name != "m" {
		return nil, "", false
	}
	return s.raw, lifecycle.Version(s.raw), true
}

type fakePub struct {
	mu       sync.Mutex
	versions []string
}

func (p *fakePub) CreateShadowFromBytes(name string, raw []byte) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := lifecycle.Version(raw)
	p.versions = append(p.versions, v)
	return v, nil
}

func TestRetrainerRunAndCoalesce(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	tr := loadModel(t)
	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	l, err := feedback.OpenLogOptions(path, feedback.LogOptions{MaxBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	writeTelemetry(t, l, tr, "m", 40, 20, 0.5)
	l.Close()

	pub := &fakePub{}
	r, err := NewRetrainer(Config{LogPath: path, Source: fakeSource{raw: trainedModel(t)}, Pub: pub})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run("m")
	if err != nil {
		t.Fatal(err)
	}
	if res.ShadowVersion == "" || res.ShadowVersion != res.Version {
		t.Fatalf("shadow not dark-launched: %+v", res)
	}
	pub.mu.Lock()
	published := len(pub.versions)
	pub.mu.Unlock()
	if published != 1 {
		t.Fatalf("published %d shadows, want 1", published)
	}

	if _, err := r.Run("nope"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model: %v", err)
	}

	// Coalescing: with the model's run lock held, TryRun bails instead of
	// queueing.
	mr := r.run("m")
	mr.mu.Lock()
	if _, err := r.TryRun("m"); !errors.Is(err, ErrRetrainInFlight) {
		t.Fatalf("TryRun under an in-flight run: %v", err)
	}
	mr.mu.Unlock()
	if _, err := r.TryRun("m"); err != nil {
		t.Fatalf("TryRun after the run finished: %v", err)
	}
}
