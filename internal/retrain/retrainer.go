package retrain

import (
	"errors"
	"fmt"
	"sync"

	"opprox/internal/feedback"
	"opprox/internal/obs"
)

// ModelSource supplies a model's live serialized bytes —
// *lifecycle.Manager satisfies it structurally.
type ModelSource interface {
	LiveRaw(name string) ([]byte, string, bool)
}

// Publisher dark-launches a built candidate — *lifecycle.Manager
// satisfies it structurally.
type Publisher interface {
	CreateShadowFromBytes(name string, raw []byte) (string, error)
}

// ErrUnknownModel: the named model was never resolved by the source.
var ErrUnknownModel = errors.New("retrain: unknown model")

// ErrRetrainInFlight: a retrain for the model is already running
// (TryRun only; Run waits instead).
var ErrRetrainInFlight = errors.New("retrain: retrain already in flight")

// Config wires a Retrainer into a serving process.
type Config struct {
	// LogPath is the telemetry JSONL log (the serving layer's feedback
	// log; rotated segments are replayed automatically).
	LogPath string
	// Source and Pub are both satisfied by *lifecycle.Manager.
	Source ModelSource
	Pub    Publisher
	// Opts tunes every run; zero value uses the defaults.
	Opts Options
	// Backfill, when set, supplies a lock-free dispatch-record snapshot
	// for log entries written before the log carried dispatch context.
	Backfill func(model string) map[string]*feedback.DispatchRecord
}

// Retrainer runs the extract → redetect → retrain → shadow pipeline for
// a serving process. Runs for the same model are serialized (the log
// replay and CV fits are CPU-heavy; racing them buys nothing), while
// different models retrain independently.
type Retrainer struct {
	cfg Config

	mu      sync.Mutex
	byModel map[string]*modelRun
}

// modelRun is the per-model serialization state.
type modelRun struct {
	mu      sync.Mutex
	running bool
}

// NewRetrainer validates the wiring and builds a Retrainer.
func NewRetrainer(cfg Config) (*Retrainer, error) {
	if cfg.LogPath == "" {
		return nil, errors.New("retrain: Config.LogPath is required")
	}
	if cfg.Source == nil || cfg.Pub == nil {
		return nil, errors.New("retrain: Config.Source and Config.Pub are required")
	}
	return &Retrainer{cfg: cfg, byModel: make(map[string]*modelRun)}, nil
}

func (r *Retrainer) run(model string) *modelRun {
	r.mu.Lock()
	defer r.mu.Unlock()
	mr := r.byModel[model]
	if mr == nil {
		mr = &modelRun{}
		r.byModel[model] = mr
	}
	return mr
}

// Run executes one full retrain for a model, blocking until any
// in-flight run for the same model finishes first (POST /v1/retrain is
// synchronous: the caller gets the winner, the per-candidate holdout
// errors, and the dark-launched shadow version). On ErrNoImprovement
// the returned Result still carries the candidate diagnostics.
func (r *Retrainer) Run(model string) (*Result, error) {
	mr := r.run(model)
	mr.mu.Lock()
	defer mr.mu.Unlock()
	return r.runLocked(model)
}

// TryRun is Run unless a retrain for the model is already in flight, in
// which case it returns ErrRetrainInFlight immediately — the background
// trigger path, where a second drift signal during a long retrain
// should coalesce, not queue.
func (r *Retrainer) TryRun(model string) (*Result, error) {
	mr := r.run(model)
	if !mr.mu.TryLock() {
		obs.Inc("retrain.coalesced")
		return nil, fmt.Errorf("%w: %s", ErrRetrainInFlight, model)
	}
	defer mr.mu.Unlock()
	return r.runLocked(model)
}

func (r *Retrainer) runLocked(model string) (*Result, error) {
	raw, _, ok := r.cfg.Source.LiveRaw(model)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownModel, model)
	}
	var backfill map[string]*feedback.DispatchRecord
	if r.cfg.Backfill != nil {
		backfill = r.cfg.Backfill(model)
	}
	m, err := Extract(r.cfg.LogPath, ExtractOptions{
		Model:    model,
		MaxRows:  r.cfg.Opts.MaxRows,
		Backfill: backfill,
	})
	if err != nil {
		return nil, err
	}
	res, err := Retrain(raw, m, r.cfg.Opts)
	if err != nil {
		return res, err
	}
	ver, err := r.cfg.Pub.CreateShadowFromBytes(model, res.Raw)
	if err != nil {
		return res, fmt.Errorf("retrain: dark-launching %s: %w", res.Version, err)
	}
	res.ShadowVersion = ver
	obs.Inc("retrain.shadows")
	return res, nil
}
