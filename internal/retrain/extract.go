// Package retrain closes the telemetry → model loop (DESIGN.md §16):
// it replays the serving layer's feedback JSONL log into training
// matrices, re-detects phase boundaries from realized behavior, refits
// candidate models on the parallel CV engine, and packages the winner
// as a content-hash-versioned shadow for the lifecycle manager's
// dark-launch → auto-promote → rollback machinery.
//
// Every stage is deterministic for a given telemetry prefix: the same
// log bytes yield byte-identical model artifacts (invariant D14). That
// is what makes retraining testable — and shardable later, since any
// replica replaying the same prefix converges on the same shadow
// version.
//
// The package does not import internal/serve: like internal/lifecycle
// it talks to the serving stack through small structural interfaces
// (ModelSource, Publisher) that *lifecycle.Manager satisfies, so the
// import edges stay serve → retrain → {core, feedback, lifecycle}.
package retrain

import (
	"errors"
	"sort"

	"opprox/internal/apps"
	"opprox/internal/feedback"
)

// DefaultMaxRows bounds how many telemetry rows an extraction keeps
// (the most recent ones — drift recovery wants fresh behavior, and the
// bound is what keeps extraction memory independent of log size).
const DefaultMaxRows = 4096

// Row is one reconstructed training row: a realized phase observation
// joined with the dispatch context that produced it.
type Row struct {
	Seq        uint64
	DispatchID string
	Version    string
	Phase      int
	Params     apps.Params
	Levels     []int
	// Realized application-level outcomes on the natural scale.
	Speedup     float64
	Degradation float64
	// Residuals as logged — computed against the version that served the
	// dispatch. Re-detection recomputes residuals against the current
	// live model instead; these are kept for diagnostics.
	SpeedupRes float64
	DegRes     float64
}

// Matrix is the extractor's output: the training rows for one model,
// in deterministic order keyed by dispatch ID (then phase, then seq),
// plus replay accounting.
type Matrix struct {
	Model string
	Rows  []Row
	// Total counts every log entry seen for the model; Skipped counts
	// those that carried no dispatch context (written by an older build)
	// and had no backfill record.
	Total   int
	Skipped int
}

// ExtractOptions configures a telemetry extraction.
type ExtractOptions struct {
	// Model is the base model name whose entries are extracted (required).
	Model string
	// MaxRows keeps only the most recent rows (by log sequence);
	// 0 means DefaultMaxRows.
	MaxRows int
	// Backfill optionally maps dispatch IDs to their in-memory dispatch
	// records, so entries written before the log carried dispatch
	// context (params/levels) can still become rows. The caller passes a
	// lock-free snapshot (feedback.Records.Snapshot) — extraction never
	// holds the record store's lock.
	Backfill map[string]*feedback.DispatchRecord
}

// Extract replays a possibly-rotated telemetry log into a training
// matrix: streaming (one line in memory at a time), bounded (at most
// 2*MaxRows rows held during the replay), and deterministic (the row
// set is a pure function of the log bytes + backfill records, and the
// row order is keyed by dispatch ID). Entries for other models are
// ignored without counting.
func Extract(path string, opts ExtractOptions) (*Matrix, error) {
	if opts.Model == "" {
		return nil, errors.New("retrain: ExtractOptions.Model is required")
	}
	maxRows := opts.MaxRows
	if maxRows <= 0 {
		maxRows = DefaultMaxRows
	}
	m := &Matrix{Model: opts.Model}
	var rows []Row
	err := feedback.ScanLog(path, func(e feedback.Entry) error {
		if e.Model != opts.Model {
			return nil
		}
		m.Total++
		// Levels is the dispatch-context discriminator: every served phase
		// has at least one block, so empty levels means the entry predates
		// context-carrying telemetry. Params may legitimately be empty (a
		// dispatch that relied on the app's defaults).
		params, levels := e.Params, e.Levels
		if len(levels) == 0 {
			if rec := opts.Backfill[e.DispatchID]; rec != nil {
				params = rec.Params
				if e.Phase >= 0 && e.Phase < len(rec.Levels) {
					levels = rec.Levels[e.Phase]
				}
			}
		}
		if len(levels) == 0 {
			m.Skipped++
			return nil
		}
		rows = append(rows, Row{
			Seq:         e.Seq,
			DispatchID:  e.DispatchID,
			Version:     e.Version,
			Phase:       e.Phase,
			Params:      params,
			Levels:      levels,
			Speedup:     e.Speedup,
			Degradation: e.Degradation,
			SpeedupRes:  e.SpeedupRes,
			DegRes:      e.DegRes,
		})
		// ScanLog delivers in ascending sequence order, so "most recent"
		// is the tail; compacting at 2x keeps memory bounded.
		if len(rows) >= 2*maxRows {
			rows = append(rows[:0], rows[len(rows)-maxRows:]...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(rows) > maxRows {
		rows = append(rows[:0], rows[len(rows)-maxRows:]...)
	}
	sortByDispatch(rows)
	m.Rows = rows
	return m, nil
}

// sortByDispatch orders rows by (dispatch ID, phase, seq) — the
// deterministic training order. Dispatch IDs are content hashes, so
// this order is independent of arrival timing; seq breaks the tie for
// repeated feedback on the same dispatch.
func sortByDispatch(rows []Row) {
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].DispatchID != rows[b].DispatchID {
			return rows[a].DispatchID < rows[b].DispatchID
		}
		if rows[a].Phase != rows[b].Phase {
			return rows[a].Phase < rows[b].Phase
		}
		return rows[a].Seq < rows[b].Seq
	})
}

// sortBySeq orders rows by log sequence — arrival order, the series
// changepoint detection scans.
func sortBySeq(rows []Row) {
	sort.Slice(rows, func(a, b int) bool { return rows[a].Seq < rows[b].Seq })
}
