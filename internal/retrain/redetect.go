package retrain

import (
	"errors"

	"opprox/internal/approx"
	"opprox/internal/core"
)

// Online phase-boundary re-detection (DESIGN.md §16). The offline
// segmentation fixed the number of phases; what can change in
// production is whether those phases still BEHAVE distinctly. This
// file answers two questions from the realized-residual stream alone:
//
//  1. WHEN did behavior shift? A single-changepoint scan (binary
//     segmentation, one split) over the signed residual series in
//     arrival order. Rows before the changepoint describe the old
//     regime and are dropped from retraining when enough remain.
//  2. WHICH phases still differ? Per-phase mean-residual profiles on
//     the post-change rows. Adjacent phases whose profiles agree
//     within the threshold — and that both actually drifted — are
//     proposed as one pooled group: the observed evidence says the
//     model's segmentation splits them for no behavioral reason, so
//     their rows should pool into one refit.
//
// Everything is a pure function of the row sequence: ties in the
// changepoint scan resolve to the earliest index, and all means reduce
// in slice order.

// Segmentation is a proposed re-segmentation of a model's phases,
// derived from observed behavior.
type Segmentation struct {
	// Groups partitions the phase indices; a group with more than one
	// phase proposes pooling their rows into a single refit.
	Groups [][]int `json:"groups"`
	// Diverged reports that observed behavior diverges from the model's
	// current segmentation beyond the threshold — some phase's residual
	// profile shifted, or phases the model separates are behaviorally
	// indistinguishable while drifting together.
	Diverged bool `json:"diverged"`
	// Changepoint is the index (into the arrival-ordered rows) of the
	// detected behavior shift, -1 when none cleared the threshold;
	// ChangeDelta is the residual-mean jump across it.
	Changepoint int     `json:"changepoint"`
	ChangeDelta float64 `json:"change_delta,omitempty"`
	// SpeedupProfile and DegProfile are the per-phase mean signed
	// residuals (training scales) over the post-change rows; Counts is
	// the per-phase row count behind them.
	SpeedupProfile []float64 `json:"speedup_profile"`
	DegProfile     []float64 `json:"deg_profile"`
	Counts         []int     `json:"counts"`
	// Post holds the rows after the changepoint trim, in arrival order —
	// the rows retraining should fit. Excluded from API responses.
	Post []Row `json:"-"`
}

// Redetect scans the rows (any order; re-sorted by seq internally) for
// a behavior shift against the live model and proposes a
// re-segmentation. threshold is on the models' log scales — 0.15 means
// a ~16% systematic multiplicative misprediction. minSamples bounds
// the changepoint trim: the pre-change rows are only dropped when at
// least minSamples rows remain.
func Redetect(live *core.Trained, rows []Row, threshold float64, minSamples int) (*Segmentation, error) {
	if live == nil {
		return nil, errors.New("retrain: Redetect needs the live model")
	}
	if threshold <= 0 {
		threshold = DefaultRedetectThreshold
	}
	if minSamples < 4 {
		minSamples = 4
	}
	ordered := append([]Row(nil), rows...)
	sortBySeq(ordered)

	// Residuals against the CURRENT live model — the logged residuals
	// were computed against whichever version served each dispatch, so
	// they are not comparable across a promote.
	sres := make([]float64, 0, len(ordered))
	dres := make([]float64, 0, len(ordered))
	kept := ordered[:0]
	for _, r := range ordered {
		diag, err := live.DiagnosePhase(r.Params, r.Phase, approx.Config(r.Levels))
		if err != nil {
			// A row the live model cannot price (e.g. logged against an
			// incompatible historic version) is dropped, deterministically.
			continue
		}
		sres = append(sres, core.SpeedupScale(r.Speedup)-diag.SpeedupRaw)
		dres = append(dres, core.DegradationScale(r.Degradation)-diag.DegRaw)
		kept = append(kept, r)
	}
	ordered = kept

	seg := &Segmentation{Changepoint: -1, Post: ordered}
	n := len(ordered)
	if n > 0 {
		minSeg := n / 10
		if minSeg < 4 {
			minSeg = 4
		}
		kS, dS := bestSplit(sres, minSeg)
		kD, dD := bestSplit(dres, minSeg)
		k, delta := kS, dS
		if dD > delta {
			k, delta = kD, dD
		}
		if k >= 0 && delta > threshold {
			seg.Changepoint = k
			seg.ChangeDelta = delta
			if n-k >= minSamples {
				seg.Post = ordered[k:]
				sres = sres[k:]
				dres = dres[k:]
			}
		}
	}

	// Per-phase residual profiles on the post-change rows.
	phases := live.Phases
	sSum := make([]float64, phases)
	dSum := make([]float64, phases)
	seg.Counts = make([]int, phases)
	for i, r := range seg.Post {
		sSum[r.Phase] += sres[i]
		dSum[r.Phase] += dres[i]
		seg.Counts[r.Phase]++
	}
	seg.SpeedupProfile = make([]float64, phases)
	seg.DegProfile = make([]float64, phases)
	shifted := make([]bool, phases)
	for ph := 0; ph < phases; ph++ {
		if seg.Counts[ph] == 0 {
			continue
		}
		seg.SpeedupProfile[ph] = sSum[ph] / float64(seg.Counts[ph])
		seg.DegProfile[ph] = dSum[ph] / float64(seg.Counts[ph])
		// A phase needs at least two rows to call its mean a shift.
		if seg.Counts[ph] >= 2 &&
			(abs(seg.SpeedupProfile[ph]) > threshold || abs(seg.DegProfile[ph]) > threshold) {
			shifted[ph] = true
			seg.Diverged = true
		}
	}

	// Merge adjacent phases that drifted TOGETHER: both shifted, and
	// their post-change profiles agree within the threshold. Phases that
	// did not drift keep their own (still accurate) models, so they are
	// never pooled.
	for ph := 0; ph < phases; ph++ {
		g := []int{ph}
		for ph+1 < phases && shifted[ph] && shifted[ph+1] &&
			abs(seg.SpeedupProfile[ph]-seg.SpeedupProfile[ph+1]) <= threshold &&
			abs(seg.DegProfile[ph]-seg.DegProfile[ph+1]) <= threshold {
			ph++
			g = append(g, ph)
		}
		seg.Groups = append(seg.Groups, g)
	}
	return seg, nil
}

// bestSplit finds the single split maximizing the absolute difference
// of the two sides' means, with both sides at least minSeg long.
// Returns (-1, 0) when the series is too short. Ties resolve to the
// earliest split; the prefix-sum scan reduces in index order, so the
// answer is bit-stable.
func bestSplit(x []float64, minSeg int) (int, float64) {
	n := len(x)
	if n < 2*minSeg {
		return -1, 0
	}
	total := 0.0
	for _, v := range x {
		total += v
	}
	bestK, bestDelta := -1, 0.0
	left := 0.0
	for k := 1; k <= n-minSeg; k++ {
		left += x[k-1]
		if k < minSeg {
			continue
		}
		d := abs(left/float64(k) - (total-left)/float64(n-k))
		if d > bestDelta {
			bestDelta, bestK = d, k
		}
	}
	return bestK, bestDelta
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
