package retrain

import (
	"path/filepath"
	"testing"

	"opprox/internal/feedback"
)

// BenchmarkExtract replays a 512-report (1024-row) telemetry log into a
// training matrix — the streaming half of a retrain run.
func BenchmarkExtract(b *testing.B) {
	tr := loadModel(b)
	path := filepath.Join(b.TempDir(), "telemetry.jsonl")
	l, err := feedback.OpenLog(path, false)
	if err != nil {
		b.Fatal(err)
	}
	writeTelemetry(b, l, tr, "m.json", 512, 256, 0.4)
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := Extract(path, ExtractOptions{Model: "m.json"})
		if err != nil {
			b.Fatal(err)
		}
		if len(m.Rows) != 1024 {
			b.Fatalf("extracted %d rows", len(m.Rows))
		}
	}
}

// BenchmarkRedetect scans a 1024-row matrix for a changepoint and
// re-derives the phase grouping — the analysis half of a retrain run.
func BenchmarkRedetect(b *testing.B) {
	tr := loadModel(b)
	path := filepath.Join(b.TempDir(), "telemetry.jsonl")
	l, err := feedback.OpenLog(path, false)
	if err != nil {
		b.Fatal(err)
	}
	writeTelemetry(b, l, tr, "m.json", 512, 256, 0.4)
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	m, err := Extract(path, ExtractOptions{Model: "m.json"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg, err := Redetect(tr, m.Rows, 0.15, 32)
		if err != nil {
			b.Fatal(err)
		}
		if !seg.Diverged {
			b.Fatal("shifted telemetry not flagged")
		}
	}
}
