package retrain

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"sort"

	"opprox/internal/approx"
	"opprox/internal/core"
	"opprox/internal/lifecycle"
	"opprox/internal/obs"
)

// Defaults for Options; a zero Options retrains sensibly.
const (
	DefaultMinSamples        = 32
	DefaultRedetectThreshold = 0.15
	DefaultHoldoutFrac       = 0.25
	DefaultSeed              = 1
	// minGroupRows is the smallest per-(class, group) row count worth a
	// refit — below it the trained models stay (core.RetrainGlobal's
	// floor is the 4 rows two-fold CV needs; this is deliberately
	// higher, a refit on a handful of rows just chases noise).
	minGroupRows = 8
)

// Options tunes a retrain run.
type Options struct {
	// MinSamples is how many extracted rows a retrain needs; below it
	// Retrain returns ErrInsufficientData (default 32).
	MinSamples int
	// MaxRows bounds extraction (default DefaultMaxRows); plumbed by the
	// Retrainer, unused by Retrain itself.
	MaxRows int
	// RedetectThreshold is the phase re-detection divergence threshold
	// on the models' log scales (default 0.15).
	RedetectThreshold float64
	// HoldoutFrac is the fraction of rows (the most recent, by log
	// sequence) held out for candidate selection (default 0.25).
	HoldoutFrac float64
	// Seed drives every stochastic step (CV fold shuffles); fixed seed +
	// fixed telemetry prefix = byte-identical artifacts (default 1).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MinSamples <= 0 {
		o.MinSamples = DefaultMinSamples
	}
	if o.MaxRows <= 0 {
		o.MaxRows = DefaultMaxRows
	}
	if o.RedetectThreshold <= 0 {
		o.RedetectThreshold = DefaultRedetectThreshold
	}
	if o.HoldoutFrac <= 0 || o.HoldoutFrac >= 1 {
		o.HoldoutFrac = DefaultHoldoutFrac
	}
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
	return o
}

// Retrain errors; the serving layer maps them onto its HTTP taxonomy.
var (
	// ErrInsufficientData: the telemetry log has too few usable rows.
	ErrInsufficientData = errors.New("retrain: not enough telemetry rows")
	// ErrNoImprovement: no candidate beat the live model on the holdout.
	ErrNoImprovement = errors.New("retrain: no candidate beat the live model")
)

// Candidate records one retrain strategy's outcome: either a built
// model (Version + holdout error) or the reason it was infeasible.
type Candidate struct {
	// Name: "recalibrate" (fold median residual shifts into the
	// calibration), "refit" (refit each phase's global models from its
	// own rows), or "refit-pooled" (refit over the re-detected phase
	// groups — only attempted when re-detection diverged).
	Name       string  `json:"name"`
	Version    string  `json:"version,omitempty"`
	HoldoutErr float64 `json:"holdout_err,omitempty"`
	// Err is the infeasibility reason when the candidate was not built.
	Err string `json:"err,omitempty"`
	// RefitPhases lists the phases a refit candidate rebuilt.
	RefitPhases []int `json:"refit_phases,omitempty"`

	raw []byte
}

// Result is a completed retrain run. On ErrNoImprovement a non-nil
// Result still carries the per-candidate diagnostics.
type Result struct {
	Model       string        `json:"model"`
	LiveVersion string        `json:"live_version"`
	Rows        int           `json:"rows"`
	TrainRows   int           `json:"train_rows"`
	HoldoutRows int           `json:"holdout_rows"`
	Skipped     int           `json:"skipped,omitempty"`
	Seg         *Segmentation `json:"segmentation,omitempty"`
	Candidates  []Candidate   `json:"candidates"`
	// LiveHoldoutErr is the live model's mean holdout error — the bar
	// every candidate must clear.
	LiveHoldoutErr float64 `json:"live_holdout_err"`
	// Winner names the selected candidate; Version and Raw are its
	// content-hash version and serialized bytes.
	Winner  string `json:"winner,omitempty"`
	Version string `json:"version,omitempty"`
	Raw     []byte `json:"-"`
	// ShadowVersion is set by the Retrainer once the winner is
	// dark-launched.
	ShadowVersion string `json:"shadow_version,omitempty"`
}

// Retrain fits candidate models from an extracted telemetry matrix and
// selects the one with the lowest realized error on a held-out suffix
// of the telemetry. liveRaw is the live model's serialized form — every
// candidate starts from a clone of those exact bytes, so the run is a
// pure function of (liveRaw, matrix, opts): invariant D14.
//
// The holdout is the most RECENT HoldoutFrac of the rows (by log
// sequence): candidates train on the past and are judged on the
// present, which is the only honest split for drifted telemetry.
func Retrain(liveRaw []byte, m *Matrix, opts Options) (*Result, error) {
	stop := obs.Timer("retrain.duration")
	defer stop()
	opts = opts.withDefaults()
	res := &Result{Model: m.Model, LiveVersion: lifecycle.Version(liveRaw), Rows: len(m.Rows), Skipped: m.Skipped}
	if len(m.Rows) < opts.MinSamples {
		return nil, fmt.Errorf("%w: %d rows for model %q, need %d", ErrInsufficientData, len(m.Rows), m.Model, opts.MinSamples)
	}
	live, err := core.LoadTrained(bytes.NewReader(liveRaw))
	if err != nil {
		return nil, fmt.Errorf("retrain: live model: %w", err)
	}

	// Deterministic train/holdout split on the sequence axis.
	bySeq := append([]Row(nil), m.Rows...)
	sortBySeq(bySeq)
	nHold := int(math.Ceil(opts.HoldoutFrac * float64(len(bySeq))))
	if nHold < 1 {
		nHold = 1
	}
	if nHold >= len(bySeq) {
		nHold = len(bySeq) - 1
	}
	trainRows := bySeq[:len(bySeq)-nHold]
	holdout := append([]Row(nil), bySeq[len(bySeq)-nHold:]...)
	sortByDispatch(holdout)
	res.HoldoutRows = len(holdout)

	// Re-detect phase boundaries on the training rows only (the holdout
	// must not influence what it judges), trimming pre-changepoint rows
	// when enough remain.
	minPost := opts.MinSamples / 2
	if minPost < 8 {
		minPost = 8
	}
	seg, err := Redetect(live, trainRows, opts.RedetectThreshold, minPost)
	if err != nil {
		return nil, err
	}
	res.Seg = seg
	train := append([]Row(nil), seg.Post...)
	sortByDispatch(train)
	res.TrainRows = len(train)

	res.LiveHoldoutErr = holdoutErr(live, holdout)

	// Candidates in fixed order; ties in holdout error resolve to the
	// earlier (simpler) strategy.
	res.Candidates = append(res.Candidates, buildRecalibrate(liveRaw, live, train))
	res.Candidates = append(res.Candidates, buildRefit(liveRaw, "refit", nil, train, opts.Seed))
	if seg.Diverged && hasPooledGroup(seg.Groups) {
		res.Candidates = append(res.Candidates, buildRefit(liveRaw, "refit-pooled", seg.Groups, train, opts.Seed))
	}

	winner := -1
	for i := range res.Candidates {
		c := &res.Candidates[i]
		if c.raw == nil {
			continue
		}
		c.Version = lifecycle.Version(c.raw)
		if c.Version == res.LiveVersion {
			c.raw = nil
			c.Err = "identical to live version"
			continue
		}
		// Judge exactly the bytes that would be served.
		cand, err := core.LoadTrained(bytes.NewReader(c.raw))
		if err != nil {
			c.raw = nil
			c.Err = fmt.Sprintf("candidate does not round-trip: %v", err)
			continue
		}
		c.HoldoutErr = holdoutErr(cand, holdout)
		if winner < 0 || c.HoldoutErr < res.Candidates[winner].HoldoutErr {
			winner = i
		}
	}
	if winner < 0 || res.Candidates[winner].HoldoutErr >= res.LiveHoldoutErr {
		obs.Inc("retrain.no_improvement")
		return res, fmt.Errorf("%w: live holdout err %.4g over %d rows", ErrNoImprovement, res.LiveHoldoutErr, len(holdout))
	}
	res.Winner = res.Candidates[winner].Name
	res.Version = res.Candidates[winner].Version
	res.Raw = res.Candidates[winner].raw
	obs.Inc("retrain.runs")
	obs.LogEvent("retrain", "%s: %s wins (%.4g vs live %.4g over %d holdout rows)",
		m.Model, res.Winner, res.Candidates[winner].HoldoutErr, res.LiveHoldoutErr, len(holdout))
	return res, nil
}

// buildRecalibrate folds the training rows' median residuals (vs the
// live model) into the calibration shifts — the cheap candidate, the
// same correction the drift path applies, but measured over the whole
// training window.
func buildRecalibrate(liveRaw []byte, live *core.Trained, train []Row) Candidate {
	c := Candidate{Name: "recalibrate"}
	phases := live.Phases
	sres := make([][]float64, phases)
	dres := make([][]float64, phases)
	for _, r := range train {
		diag, err := live.DiagnosePhase(r.Params, r.Phase, approx.Config(r.Levels))
		if err != nil {
			continue
		}
		sres[r.Phase] = append(sres[r.Phase], core.SpeedupScale(r.Speedup)-diag.SpeedupRaw)
		dres[r.Phase] = append(dres[r.Phase], core.DegradationScale(r.Degradation)-diag.DegRaw)
	}
	addSpd := make([]float64, phases)
	addDeg := make([]float64, phases)
	zero := true
	for ph := 0; ph < phases; ph++ {
		addSpd[ph] = median(sres[ph])
		addDeg[ph] = median(dres[ph])
		zero = zero && addSpd[ph] == 0 && addDeg[ph] == 0
	}
	if zero {
		c.Err = "median residuals are zero"
		return c
	}
	clone, err := core.LoadTrained(bytes.NewReader(liveRaw))
	if err != nil {
		c.Err = err.Error()
		return c
	}
	spd, deg, ok := clone.CalibrationShifts()
	if !ok {
		spd = make([]float64, phases)
		deg = make([]float64, phases)
	}
	for ph := 0; ph < phases; ph++ {
		spd[ph] += addSpd[ph]
		deg[ph] += addDeg[ph]
	}
	if err := clone.SetCalibration(spd, deg); err != nil {
		c.Err = err.Error()
		return c
	}
	if _, err := clone.RefreshFrontLibrary(); err != nil {
		c.Err = err.Error()
		return c
	}
	c.raw = saveBytes(clone, &c)
	return c
}

// buildRefit clones the live bytes and refits the global models from
// the training rows, singleton phases (groups == nil) or the
// re-detected pooled groups.
func buildRefit(liveRaw []byte, name string, groups [][]int, train []Row, seed int64) Candidate {
	c := Candidate{Name: name}
	clone, err := core.LoadTrained(bytes.NewReader(liveRaw))
	if err != nil {
		c.Err = err.Error()
		return c
	}
	samples := make([]core.FeedbackSample, len(train))
	for i, r := range train {
		samples[i] = core.FeedbackSample{
			Params:      r.Params,
			Levels:      r.Levels,
			Phase:       r.Phase,
			Speedup:     r.Speedup,
			Degradation: r.Degradation,
		}
	}
	refit, err := clone.RetrainGlobal(samples, groups, minGroupRows, seed)
	if err != nil {
		c.Err = err.Error()
		return c
	}
	c.RefitPhases = refit
	c.raw = saveBytes(clone, &c)
	return c
}

// saveBytes serializes a candidate, recording a failure on it.
func saveBytes(tr *core.Trained, c *Candidate) []byte {
	var out bytes.Buffer
	if err := tr.Save(&out); err != nil {
		c.Err = err.Error()
		return nil
	}
	return out.Bytes()
}

// holdoutErr is the mean absolute residual of a model's raw predictions
// over the holdout rows, both targets on their training scales — the
// same realized-error quantity the lifecycle's live-vs-shadow windows
// compare, so candidate selection optimizes exactly the metric
// auto-promotion will later judge the shadow on. Rows the model cannot
// price are skipped (deterministically).
func holdoutErr(tr *core.Trained, holdout []Row) float64 {
	sum, n := 0.0, 0
	for _, r := range holdout {
		diag, err := tr.DiagnosePhase(r.Params, r.Phase, approx.Config(r.Levels))
		if err != nil {
			continue
		}
		sum += (abs(core.SpeedupScale(r.Speedup)-diag.SpeedupRaw) +
			abs(core.DegradationScale(r.Degradation)-diag.DegRaw)) / 2
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}

// hasPooledGroup reports whether any group pools more than one phase.
func hasPooledGroup(groups [][]int) bool {
	for _, g := range groups {
		if len(g) > 1 {
			return true
		}
	}
	return false
}

// median of a slice (0 for empty); sorts a copy.
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
