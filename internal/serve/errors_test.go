package serve

import (
	"context"
	"fmt"
	"net/http"
	"testing"
)

// TestErrorTaxonomy pins the full classification table, including the
// wrapped forms the handlers actually produce: a request-timeout error
// must map to 504 "timeout" whether it surfaces bare from ctx.Err() or
// wrapped with dispatch detail, and never fall through to "internal".
func TestErrorTaxonomy(t *testing.T) {
	cases := []struct {
		err    error
		code   string
		status int
	}{
		{ErrBadRequest, "bad_request", http.StatusBadRequest},
		{fmt.Errorf("%w: negative budget", ErrBadRequest), "bad_request", http.StatusBadRequest},
		{ErrModelUnavailable, "model_unavailable", http.StatusServiceUnavailable},
		{fmt.Errorf("%w: model %q", ErrModelUnavailable, "x.json"), "model_unavailable", http.StatusServiceUnavailable},
		{ErrOptimize, "optimize_failed", http.StatusUnprocessableEntity},
		{ErrNotFound, "not_found", http.StatusNotFound},
		{fmt.Errorf("%w: dispatch %q", ErrNotFound, "abc"), "not_found", http.StatusNotFound},
		{context.DeadlineExceeded, "timeout", http.StatusGatewayTimeout},
		{fmt.Errorf("dispatching job: %w", context.DeadlineExceeded), "timeout", http.StatusGatewayTimeout},
		{context.Canceled, "timeout", http.StatusGatewayTimeout},
		{fmt.Errorf("loading model: %w", context.Canceled), "timeout", http.StatusGatewayTimeout},
		{fmt.Errorf("disk on fire"), "internal", http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := errCode(c.err); got != c.code {
			t.Errorf("errCode(%v) = %q, want %q", c.err, got, c.code)
		}
		if got := httpStatus(c.err); got != c.status {
			t.Errorf("httpStatus(%v) = %d, want %d", c.err, got, c.status)
		}
	}
}
