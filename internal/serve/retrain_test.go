package serve

// Tests for the retraining endpoint (/v1/retrain), the stale-state
// trigger, the proactive controller, and the retrain-vs-lifecycle race
// (run under -race).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"opprox/internal/feedback"
	"opprox/internal/retrain"
)

// retrainServer starts a server with retraining enabled over a real
// (rotating) telemetry log and auto-recalibration off, so the only
// shadow source is the retrain pipeline itself.
func retrainServer(t *testing.T, store Store, mutate ...func(*Options)) *httptest.Server {
	t.Helper()
	flog, err := feedback.OpenLogOptions(
		filepath.Join(t.TempDir(), "telemetry.jsonl"),
		feedback.LogOptions{MaxBytes: 1 << 10}, // tiny: exercises rotation mid-flow
	)
	if err != nil {
		t.Fatal(err)
	}
	opts := pilotOptions(store)
	opts.FeedbackLog = flog
	opts.DisableAutoRecalibrate = true
	opts.Retrain = true
	opts.RetrainOpts = retrain.Options{MinSamples: 8}
	for _, f := range mutate {
		f(&opts)
	}
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { flog.Close() })
	return ts
}

// postHeaders is postJSON plus the response headers.
func postHeaders(t *testing.T, url, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// retrainResult is the client-side view of a /v1/retrain response.
type retrainResult struct {
	Status        string              `json:"status"`
	Rows          int                 `json:"rows"`
	Winner        string              `json:"winner"`
	ShadowVersion string              `json:"shadow_version"`
	Candidates    []retrain.Candidate `json:"candidates"`
}

// TestServeRetrainEndToEnd drives the full retraining loop over HTTP:
// dispatch -> drifted feedback accumulates telemetry -> POST /v1/retrain
// dark-launches a retrained shadow -> further feedback auto-promotes it.
// No request in the whole flow may see a 5xx (the serving path stays up
// through retrain and promote).
func TestServeRetrainEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	ts := retrainServer(t, store)

	post := func(path, body string) (int, []byte) {
		t.Helper()
		status, b := postJSON(t, ts.URL+path, body)
		if status >= 500 {
			t.Fatalf("POST %s returned %d during the retrain flow: %s", path, status, b)
		}
		return status, b
	}

	// A model the registry has never resolved is unknown to the
	// retrainer too.
	if status, body := post("/v1/retrain", `{"model": "nope.json"}`); status != http.StatusNotFound {
		t.Fatalf("retrain unknown model: %d %s", status, body)
	}
	if status, body := getJSON(t, ts.URL+"/v1/retrain"); status != http.StatusBadRequest {
		t.Fatalf("GET /v1/retrain: %d %s", status, body)
	}

	status, body := post("/v1/dispatch", dispatchBody)
	if status != http.StatusOK {
		t.Fatalf("dispatch: %d %s", status, body)
	}
	var d1 DispatchResponse
	if err := json.Unmarshal(body, &d1); err != nil {
		t.Fatal(err)
	}
	v0 := d1.ModelVersion

	// The model is live but no telemetry exists yet: nothing to fit.
	if status, body := post("/v1/retrain", `{"model": "pso.json"}`); status != http.StatusBadRequest {
		t.Fatalf("retrain on empty telemetry: %d %s", status, body)
	}

	// Drifted feedback: auto-recalibration is off, so the model sits in
	// "drifting" while telemetry accumulates — 5 reports x 2 phases
	// clears MinSamples 8.
	for i := 0; i < 5; i++ {
		if status, fb := post("/v1/feedback", driftedFeedback(d1.DispatchID)); status != http.StatusOK {
			t.Fatalf("feedback %d: %d %s", i, status, fb)
		}
	}
	if mr := modelsSnapshot(t, ts.URL); mr.Models[0].Shadow != nil {
		t.Fatalf("auto-recalibrate disabled but a shadow appeared: %+v", mr.Models[0])
	}

	// The retrain run replays the telemetry (across rotated segments),
	// fits candidates, and dark-launches the winner.
	status, body = post("/v1/retrain", `{"model": "pso.json"}`)
	if status != http.StatusOK {
		t.Fatalf("retrain: %d %s", status, body)
	}
	var rr retrainResult
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "shadow_created" || rr.ShadowVersion == "" || rr.Winner == "" {
		t.Fatalf("retrain response: %s", body)
	}
	if rr.Rows != 10 {
		t.Fatalf("retrain saw %d rows, want 10 (5 reports x 2 phases)", rr.Rows)
	}
	mr := modelsSnapshot(t, ts.URL)
	if mr.Models[0].Shadow == nil || mr.Models[0].Shadow.Version != rr.ShadowVersion {
		t.Fatalf("retrained shadow not dark-launched: %+v", mr.Models[0])
	}

	// A retrain with a shadow already active (and no new telemetry) must
	// not clobber it with a 5xx — the lifecycle layer rejects the
	// duplicate dark-launch cleanly.
	if status, body := post("/v1/retrain", `{"model": "pso.json"}`); status >= 500 {
		t.Fatalf("second retrain: %d %s", status, body)
	}

	// Further drifted feedback becomes comparison evidence; the
	// retrained shadow tracks the drifted reality better than the stale
	// live model and auto-promotes.
	promoted := false
	for i := 0; i < 6 && !promoted; i++ {
		status, fb := post("/v1/feedback", driftedFeedback(d1.DispatchID))
		if status != http.StatusOK {
			t.Fatalf("post-retrain feedback %d: %d %s", i, status, fb)
		}
		var fr feedbackResponse
		if err := json.Unmarshal(fb, &fr); err != nil {
			t.Fatal(err)
		}
		promoted = fr.Promoted
	}
	if !promoted {
		t.Fatal("retrained shadow never auto-promoted on drifted feedback")
	}
	mr = modelsSnapshot(t, ts.URL)
	if mr.Models[0].LiveVersion != rr.ShadowVersion || mr.Models[0].PreviousVersion != v0 {
		t.Fatalf("lifecycle view after retrain promote: %+v", mr.Models[0])
	}

	// The serving path is intact on the retrained model, and one-step
	// rollback still restores the original version.
	status, body = post("/v1/dispatch", dispatchBody)
	if status != http.StatusOK {
		t.Fatalf("dispatch after retrain promote: %d %s", status, body)
	}
	var d2 DispatchResponse
	if err := json.Unmarshal(body, &d2); err != nil {
		t.Fatal(err)
	}
	if d2.ModelVersion != rr.ShadowVersion {
		t.Fatalf("dispatch served %q after promoting retrained %q", d2.ModelVersion, rr.ShadowVersion)
	}
	if status, rb := post("/v1/rollback", `{"model": "pso.json"}`); status != http.StatusOK {
		t.Fatalf("rollback after retrain promote: %d %s", status, rb)
	}
	if mr := modelsSnapshot(t, ts.URL); mr.Models[0].LiveVersion != v0 {
		t.Fatalf("rollback did not restore %q: %+v", v0, mr.Models[0])
	}
}

// TestServeRetrainNotEnabled pins the taxonomy when the pipeline is off.
func TestServeRetrainNotEnabled(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	ts := newTestServer(t, store)
	status, body := postJSON(t, ts.URL+"/v1/retrain", `{"model": "pso.json"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("retrain without the pipeline: %d %s", status, body)
	}
}

// TestServeRetrainStaleTrigger drives a model into the terminal stale
// state with auto-recalibration off and checks the feedback response
// reports a background retrain start, and that the retrained shadow
// eventually appears without any further API call.
func TestServeRetrainStaleTrigger(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	ts := retrainServer(t, store, func(o *Options) {
		o.Drift.StaleAfter = 6 // drifting goes terminal quickly
	})

	status, body := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody)
	if status != http.StatusOK {
		t.Fatalf("dispatch: %d %s", status, body)
	}
	var d DispatchResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}

	started := false
	for i := 0; i < 10 && !started; i++ {
		status, fb := postJSON(t, ts.URL+"/v1/feedback", driftedFeedback(d.DispatchID))
		if status != http.StatusOK {
			t.Fatalf("feedback %d: %d %s", i, status, fb)
		}
		var fr feedbackResponse
		if err := json.Unmarshal(fb, &fr); err != nil {
			t.Fatal(err)
		}
		started = fr.RetrainStarted
	}
	if !started {
		t.Fatal("stale transition never reported retrain_started")
	}

	// The trigger runs in the background; poll the lifecycle view for
	// the dark-launched shadow.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mr := modelsSnapshot(t, ts.URL)
		if mr.Models[0].Shadow != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background retrain never dark-launched a shadow: %+v", mr.Models[0])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestProactiveControllerCorrection checks the Capri-style loop:
// degradation under-prediction feedback sets a quantized budget
// correction, the next dispatch carries the correction headers, its
// body is exactly the full body of the corrected request (served by an
// uncorrected server — the D13 idiom), and a promote resets the
// correction.
func TestProactiveControllerCorrection(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	ts := retrainServer(t, store, func(o *Options) {
		o.Proactive = true
	})

	status, hdr, body1 := postHeaders(t, ts.URL+"/v1/dispatch", dispatchBody)
	if status != http.StatusOK {
		t.Fatalf("dispatch: %d %s", status, body1)
	}
	if hdr.Get(correctionHeader) != "" {
		t.Fatalf("healthy dispatch carries a correction: %v", hdr)
	}
	var d DispatchResponse
	if err := json.Unmarshal(body1, &d); err != nil {
		t.Fatal(err)
	}

	// Drifted feedback (degradation far above prediction) fills the
	// median windows; every report refreshes the correction.
	for i := 0; i < 4; i++ {
		if status, fb := postJSON(t, ts.URL+"/v1/feedback", driftedFeedback(d.DispatchID)); status != http.StatusOK {
			t.Fatalf("feedback %d: %d %s", i, status, fb)
		}
	}

	// The corrected dispatch: headers report the correction and the
	// tightened budget. The drift here is enormous, so the correction
	// sits at the clamp — exactly CorrectionMax.
	status, hdr, corrected := postHeaders(t, ts.URL+"/v1/dispatch", dispatchBody)
	if status != http.StatusOK {
		t.Fatalf("corrected dispatch: %d %s", status, corrected)
	}
	corrHdr := hdr.Get(correctionHeader)
	budgetHdr := hdr.Get(correctedBudgetHeader)
	if corrHdr == "" || budgetHdr == "" {
		t.Fatalf("corrected dispatch missing controller headers: %v", hdr)
	}
	corr, err := strconv.ParseFloat(corrHdr, 64)
	if err != nil {
		t.Fatal(err)
	}
	if corr != DefaultCorrectionMax {
		t.Fatalf("correction %v, want the clamp %v", corr, DefaultCorrectionMax)
	}
	served, err := strconv.ParseFloat(budgetHdr, 64)
	if err != nil || served <= 0 || served >= 10 {
		t.Fatalf("corrected budget %q did not tighten the requested 10", budgetHdr)
	}
	if want := correctedBudget(10, corr); served != want {
		t.Fatalf("corrected budget %v, want %v", served, want)
	}

	// D13 idiom: the corrected body is exactly the full body an
	// UNCORRECTED server produces for the corrected budget.
	plain := newFakeStore()
	plain.files["pso.json"] = trainedModelJSON(t)
	plainTS := newTestServer(t, plain)
	plainBody := fmt.Sprintf(
		`{"app": "pso", "budget": %s, "params": {"swarm": 16, "dim": 4}, "model_path": "pso.json"}`,
		budgetHdr)
	status, want := postJSON(t, plainTS.URL+"/v1/dispatch", plainBody)
	if status != http.StatusOK {
		t.Fatalf("plain dispatch at corrected budget: %d %s", status, want)
	}
	if string(corrected) != string(want) {
		t.Fatalf("corrected body is not the full body of the corrected request:\n%s\n%s", corrected, want)
	}

	// Retrain a shadow from the accumulated telemetry (4 reports x 2
	// phases = 8 rows) and promote it manually: the promote resets the
	// detector AND the correction — the evidence referred to the old
	// live version.
	status, rb := postJSON(t, ts.URL+"/v1/retrain", `{"model": "pso.json"}`)
	if status != http.StatusOK {
		t.Fatalf("retrain: %d %s", status, rb)
	}
	var rr retrainResult
	if err := json.Unmarshal(rb, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "shadow_created" {
		t.Fatalf("retrain response: %s", rb)
	}
	if status, pb := postJSON(t, ts.URL+"/v1/promote", `{"model": "pso.json"}`); status != http.StatusOK {
		t.Fatalf("promote: %d %s", status, pb)
	}
	status, hdr, after := postHeaders(t, ts.URL+"/v1/dispatch", dispatchBody)
	if status != http.StatusOK {
		t.Fatalf("dispatch after promote: %d %s", status, after)
	}
	if hdr.Get(correctionHeader) != "" {
		t.Fatalf("correction survived the promote reset: %v", hdr)
	}
}

// TestControllerUnit pins the controller's quantization, clamping and
// budget arithmetic without a server.
func TestControllerUnit(t *testing.T) {
	c := newController(0.05, 0.5)

	// Over-prediction (negative medians) never loosens the budget.
	if got := c.update("m", []float64{-0.4, -0.1}); got != 0 {
		t.Fatalf("negative medians produced correction %v", got)
	}
	if c.correction("m") != 0 {
		t.Fatal("correction stored for a healthy model")
	}
	// The worst positive median is quantized UP onto the grid.
	got := c.update("m", []float64{0.11, 0.02})
	if got < 0.15-1e-12 || got > 0.15+1e-12 {
		t.Fatalf("correction %v, want 0.15 (ceil(0.11/0.05)*0.05)", got)
	}
	if c.correction("m") != got {
		t.Fatal("stored correction differs from the returned one")
	}
	// Clamp.
	if got := c.update("m", []float64{3}); got != 0.5 {
		t.Fatalf("correction %v, want the 0.5 clamp", got)
	}
	// A recovered model (all medians back under 0) drops its entry.
	if got := c.update("m", []float64{-0.01, 0}); got != 0 || c.correction("m") != 0 {
		t.Fatal("recovery did not clear the correction")
	}
	// Reset clears.
	c.update("m", []float64{1})
	c.reset("m")
	if c.correction("m") != 0 {
		t.Fatal("reset did not clear the correction")
	}
	// Budget arithmetic: tightening on log1p, clamped at exact.
	if got := correctedBudget(0.05, 10); got != 0 {
		t.Fatalf("over-corrected budget %v, want clamp at 0", got)
	}
	b := correctedBudget(10, 0.1)
	if b <= 0 || b >= 10 {
		t.Fatalf("corrected budget %v out of (0, 10)", b)
	}
	// Zero-valued knobs fall back to the defaults.
	cd := newController(0, 0)
	if cd.quantum != DefaultCorrectionQuantum || cd.max != DefaultCorrectionMax {
		t.Fatalf("default knobs: %+v", cd)
	}
}

// TestRetrainLifecycleRace hammers retrain, promote, rollback, dispatch
// and feedback concurrently (run under -race): no data race, and no
// request may see a 5xx — the serving path stays consistent while the
// lifecycle mutates underneath it.
func TestRetrainLifecycleRace(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	ts := retrainServer(t, store, func(o *Options) {
		o.Proactive = true
	})

	status, body := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody)
	if status != http.StatusOK {
		t.Fatalf("seed dispatch: %d %s", status, body)
	}
	var d DispatchResponse
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	// Seed enough telemetry that concurrent retrains can find rows.
	for i := 0; i < 5; i++ {
		if status, fb := postJSON(t, ts.URL+"/v1/feedback", driftedFeedback(d.DispatchID)); status != http.StatusOK {
			t.Fatalf("seed feedback: %d %s", status, fb)
		}
	}

	const workers, iters = 6, 12
	paths := []struct{ path, body string }{
		{"/v1/dispatch", dispatchBody},
		{"/v1/feedback", driftedFeedback(d.DispatchID)},
		{"/v1/retrain", `{"model": "pso.json"}`},
		{"/v1/promote", `{"model": "pso.json"}`},
		{"/v1/rollback", `{"model": "pso.json"}`},
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p := paths[(w+i)%len(paths)]
				resp, err := http.Post(ts.URL+p.path, "application/json", strings.NewReader(p.body))
				if err != nil {
					t.Errorf("%s: %v", p.path, err)
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					t.Errorf("%s returned %d under concurrent lifecycle churn: %s", p.path, resp.StatusCode, b)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// The loop must settle into a servable state.
	if status, b := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody); status != http.StatusOK {
		t.Fatalf("dispatch after churn: %d %s", status, b)
	}
}
