package serve

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Store abstracts where model files live. The registry only ever reads;
// publishing new models is the trainer's job (write to a temp file, then
// rename — the registry's hot reload picks the swap up atomically).
type Store interface {
	// Open returns the named model file's contents. Implementations
	// should return fs.ErrNotExist-wrapping errors for missing models so
	// the registry can classify them as permanent rather than retrying.
	Open(name string) (io.ReadCloser, error)
}

// FileStore serves model files from the local filesystem. With a Root it
// confines every name inside that directory — path traversal out of the
// model directory is rejected, not resolved.
type FileStore struct {
	// Root is the model directory; empty means names are used verbatim.
	Root string
}

// Open implements Store.
func (s FileStore) Open(name string) (io.ReadCloser, error) {
	path := name
	if s.Root != "" {
		// Reject rather than resolve: a name with "..", an absolute path
		// or an empty name never silently maps to some in-root file.
		if !filepath.IsLocal(name) {
			return nil, fmt.Errorf("serve: model name %q escapes the store root", name)
		}
		path = filepath.Join(s.Root, name)
	}
	return os.Open(path)
}
