package serve

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Store abstracts where model files live. The registry only ever reads.
// A store that can also write implements Put (see FileStore); the server
// detects that capability and uses it to persist lifecycle versions —
// a read-only store still serves, with shadow versions held in memory.
type Store interface {
	// Open returns the named model file's contents. Implementations
	// should return fs.ErrNotExist-wrapping errors for missing models so
	// the registry can classify them as permanent rather than retrying.
	Open(name string) (io.ReadCloser, error)
}

// FileStore serves model files from the local filesystem. With a Root it
// confines every name inside that directory — path traversal out of the
// model directory is rejected, not resolved.
type FileStore struct {
	// Root is the model directory; empty means names are used verbatim.
	Root string
}

// Open implements Store.
func (s FileStore) Open(name string) (io.ReadCloser, error) {
	path, err := s.resolve(name)
	if err != nil {
		return nil, err
	}
	return os.Open(path)
}

// Put atomically publishes model bytes under name: write to a temp file
// in the same directory, fsync, rename. A reader never observes a
// half-written model, and a crash mid-publish leaves the old file
// intact. This is the Publisher surface the lifecycle layer persists
// shadow and promoted versions through.
func (s FileStore) Put(name string, data []byte) error {
	path, err := s.resolve(name)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func (s FileStore) resolve(name string) (string, error) {
	if s.Root == "" {
		return name, nil
	}
	// Reject rather than resolve: a name with "..", an absolute path
	// or an empty name never silently maps to some in-root file.
	if !filepath.IsLocal(name) {
		return "", fmt.Errorf("serve: model name %q escapes the store root", name)
	}
	return filepath.Join(s.Root, name), nil
}
