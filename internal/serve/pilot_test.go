package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"opprox/internal/feedback"
	"opprox/internal/lifecycle"
)

// pilotOptions are tight closed-loop thresholds: large residuals flip a
// model to drifting on the first report, and two reports of comparison
// samples are enough evidence to auto-promote.
func pilotOptions(store Store) Options {
	return Options{
		Store:    store,
		Registry: RegistryOptions{RetryBase: time.Microsecond},
		Drift: feedback.Options{
			Window: 8, MinSamples: 4, MaxExceedFrac: 0.9,
			CUSUMSlack: 0.01, CUSUMThreshold: 0.2, StaleAfter: 1000,
		},
		Lifecycle: lifecycle.Options{ErrWindow: 8, MinShadowSamples: 4},
	}
}

// driftedFeedback reports realized values far above the predictions for
// both phases of a pso dispatch — the injected input drift.
func driftedFeedback(dispatchID string) string {
	return fmt.Sprintf(`{"dispatch_id": %q, "observations": [`+
		`{"phase": 0, "realized_speedup": 10, "realized_degradation": 5},`+
		`{"phase": 1, "realized_speedup": 10, "realized_degradation": 5}]}`, dispatchID)
}

func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func modelsSnapshot(t *testing.T, baseURL string) modelsResponse {
	t.Helper()
	status, body := getJSON(t, baseURL+"/v1/models")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/models: %d %s", status, body)
	}
	var mr modelsResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	return mr
}

// TestServeClosedLoopEndToEnd drives the full pilot loop over HTTP:
// dispatch -> drifted feedback -> drift detection -> shadow creation ->
// auto-promotion -> /v1/models flips -> a fresh server started on the
// promoted store serves a byte-identical dispatch -> rollback restores
// the original version in one step.
func TestServeClosedLoopEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	logPath := filepath.Join(t.TempDir(), "telemetry.jsonl")
	flog, err := feedback.OpenLog(logPath, false)
	if err != nil {
		t.Fatal(err)
	}
	opts := pilotOptions(store)
	opts.FeedbackLog = flog
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { flog.Close() })

	// Dispatch: the response carries the feedback key and model version.
	status, body1 := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody)
	if status != http.StatusOK {
		t.Fatalf("dispatch: %d %s", status, body1)
	}
	var resp1 DispatchResponse
	if err := json.Unmarshal(body1, &resp1); err != nil {
		t.Fatal(err)
	}
	if resp1.DispatchID == "" || resp1.ModelVersion == "" {
		t.Fatalf("dispatch response missing closed-loop fields: %s", body1)
	}
	v0 := resp1.ModelVersion
	if mr := modelsSnapshot(t, ts.URL); len(mr.Models) != 1 ||
		mr.Models[0].LiveVersion != v0 || mr.Models[0].Health != "healthy" {
		t.Fatalf("initial lifecycle view: %+v", mr)
	}

	// Report 1: large residuals -> CUSUM fires -> drifting -> a
	// recalibrated shadow is dark-launched in the same request.
	status, fb1 := postJSON(t, ts.URL+"/v1/feedback", driftedFeedback(resp1.DispatchID))
	if status != http.StatusOK {
		t.Fatalf("feedback 1: %d %s", status, fb1)
	}
	var fr1 feedbackResponse
	if err := json.Unmarshal(fb1, &fr1); err != nil {
		t.Fatal(err)
	}
	if fr1.State != "drifting" || fr1.ShadowCreated == "" || fr1.Promoted {
		t.Fatalf("feedback 1 response: %s", fb1)
	}
	shadowVer := fr1.ShadowCreated
	mr := modelsSnapshot(t, ts.URL)
	if mr.Models[0].Health != "drifting" || mr.Models[0].Shadow == nil ||
		mr.Models[0].Shadow.Version != shadowVer || mr.Models[0].Shadow.Samples != 2 {
		t.Fatalf("lifecycle view after drift: %+v", mr.Models[0])
	}
	if mr.Models[0].Shadow.ShadowWindowErr >= mr.Models[0].Shadow.LiveWindowErr {
		t.Fatalf("recalibrated shadow not better on the drifted feedback: %+v", mr.Models[0].Shadow)
	}

	// A dispatch under an active shadow is dark-launched: the live
	// schedule is returned unchanged.
	status, bodyDark := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody)
	if status != http.StatusOK || !bytes.Equal(bodyDark, body1) {
		t.Fatalf("dark-launch changed the served dispatch:\n%s\n%s", body1, bodyDark)
	}

	// Report 2 completes the evidence: both windows reach MinShadowSamples
	// and the shadow's realized error wins -> auto-promotion.
	status, fb2 := postJSON(t, ts.URL+"/v1/feedback", driftedFeedback(resp1.DispatchID))
	if status != http.StatusOK {
		t.Fatalf("feedback 2: %d %s", status, fb2)
	}
	var fr2 feedbackResponse
	if err := json.Unmarshal(fb2, &fr2); err != nil {
		t.Fatal(err)
	}
	if !fr2.Promoted || fr2.State != "healthy" {
		t.Fatalf("feedback 2 did not auto-promote: %s", fb2)
	}
	mr = modelsSnapshot(t, ts.URL)
	if mr.Models[0].LiveVersion != shadowVer || mr.Models[0].PreviousVersion != v0 ||
		mr.Models[0].Shadow != nil || mr.Models[0].Health != "healthy" {
		t.Fatalf("lifecycle view after promote: %+v", mr.Models[0])
	}

	// Feedback for the pre-promotion dispatch is now stale: logged, but
	// not evidence against the new live version.
	status, fb3 := postJSON(t, ts.URL+"/v1/feedback", driftedFeedback(resp1.DispatchID))
	if status != http.StatusOK {
		t.Fatalf("stale feedback: %d %s", status, fb3)
	}
	var fr3 feedbackResponse
	if err := json.Unmarshal(fb3, &fr3); err != nil {
		t.Fatal(err)
	}
	if fr3.Status != "stale_version" {
		t.Fatalf("stale feedback response: %s", fb3)
	}

	// The promoted model serves new dispatches...
	status, body2 := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody)
	if status != http.StatusOK {
		t.Fatalf("dispatch after promote: %d %s", status, body2)
	}
	var resp2 DispatchResponse
	if err := json.Unmarshal(body2, &resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.ModelVersion != shadowVer {
		t.Fatalf("dispatch after promote served version %q, want %q", resp2.ModelVersion, shadowVer)
	}

	// ...and the promotion was persisted: a FRESH server started on the
	// promoted store produces a byte-identical dispatch (determinism
	// across the promote + restart boundary).
	freshStore := newFakeStore()
	store.mu.Lock()
	for name, b := range store.files {
		freshStore.files[name] = append([]byte(nil), b...)
	}
	store.mu.Unlock()
	fresh := httptest.NewServer(New(pilotOptions(freshStore)).Handler())
	t.Cleanup(fresh.Close)
	status, freshBody := postJSON(t, fresh.URL+"/v1/dispatch", dispatchBody)
	if status != http.StatusOK {
		t.Fatalf("fresh dispatch: %d %s", status, freshBody)
	}
	if !bytes.Equal(freshBody, body2) {
		t.Fatalf("fresh server on promoted store differs:\n%s\n%s", body2, freshBody)
	}

	// One-step rollback restores the original version; the dispatch is
	// byte-identical to the very first response.
	status, rb := postJSON(t, ts.URL+"/v1/rollback", `{"model": "pso.json"}`)
	if status != http.StatusOK {
		t.Fatalf("rollback: %d %s", status, rb)
	}
	var lr lifecycleResult
	if err := json.Unmarshal(rb, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.LiveVersion != v0 || lr.PreviousVersion != shadowVer {
		t.Fatalf("rollback result: %s", rb)
	}
	status, body3 := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody)
	if status != http.StatusOK || !bytes.Equal(body3, body1) {
		t.Fatalf("dispatch after rollback differs from original:\n%s\n%s", body1, body3)
	}

	// Taxonomy on the lifecycle surface: promote without a shadow is a
	// 400, unknown models are 404s.
	if status, body := postJSON(t, ts.URL+"/v1/promote", `{"model": "pso.json"}`); status != http.StatusBadRequest {
		t.Fatalf("promote without shadow: %d %s", status, body)
	}
	if status, body := postJSON(t, ts.URL+"/v1/promote", `{"model": "nope.json"}`); status != http.StatusNotFound {
		t.Fatalf("promote unknown model: %d %s", status, body)
	}
	if status, body := postJSON(t, ts.URL+"/v1/rollback", `{"model": "nope.json"}`); status != http.StatusNotFound {
		t.Fatalf("rollback unknown model: %d %s", status, body)
	}

	// The telemetry log captured every accepted observation (3 reports x
	// 2 phases), with residuals filled in.
	if err := flog.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := feedback.ReadLog(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("telemetry log has %d entries, want 6", len(entries))
	}
	for _, e := range entries {
		if e.DispatchID != resp1.DispatchID || e.Model != "pso.json" || e.SpeedupRes == 0 {
			t.Fatalf("bad telemetry entry: %+v", e)
		}
	}
}

// TestServeFeedbackDeterministic is the golden determinism check: two
// independent servers fed the identical dispatch + feedback sequence
// produce byte-identical responses at every step, the same drift
// transitions, and the same lifecycle view.
func TestServeFeedbackDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	run := func() [][]byte {
		store := newFakeStore()
		store.files["pso.json"] = trainedModelJSON(t)
		ts := httptest.NewServer(New(pilotOptions(store)).Handler())
		defer ts.Close()
		var bodies [][]byte
		_, body := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody)
		bodies = append(bodies, body)
		var resp DispatchResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			_, fb := postJSON(t, ts.URL+"/v1/feedback", driftedFeedback(resp.DispatchID))
			bodies = append(bodies, fb)
		}
		_, models := getJSON(t, ts.URL+"/v1/models")
		bodies = append(bodies, models)
		return bodies
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("response counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("response %d differs across identical runs:\n%s\n%s", i, a[i], b[i])
		}
	}

	// The drift transitions surfaced through /metricsz.
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	ts := httptest.NewServer(New(pilotOptions(store)).Handler())
	defer ts.Close()
	_, body := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody)
	var resp DispatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	postJSON(t, ts.URL+"/v1/feedback", driftedFeedback(resp.DispatchID))
	_, metrics := getJSON(t, ts.URL+"/metricsz")
	for _, key := range []string{
		"feedback.drift.to_drifting", "serve.feedback.requests", "lifecycle.shadow.created",
	} {
		if !bytes.Contains(metrics, []byte(key)) {
			t.Fatalf("/metricsz missing %q", key)
		}
	}
}

// FuzzFeedbackDecode fuzzes the /v1/feedback body decoder: malformed
// JSON, NaN/Inf literals, unknown fields and unknown dispatch IDs must
// map onto the taxonomy (400/404) — never a panic, never a 5xx.
func FuzzFeedbackDecode(f *testing.F) {
	srv := New(Options{Store: newFakeStore()})
	h := srv.Handler()
	seeds := []string{
		``,
		`{}`,
		`not json`,
		`{"dispatch_id": "d"}`,
		`{"dispatch_id": "d", "observations": []}`,
		`{"dispatch_id": "d", "observations": [{"phase": 0, "realized_speedup": 1.2, "realized_degradation": 3}]}`,
		`{"dispatch_id": "d", "observations": [{"phase": 0, "realized_speedup": NaN}]}`,
		`{"dispatch_id": "d", "observations": [{"phase": 0, "realized_speedup": Infinity}]}`,
		`{"dispatch_id": "d", "observations": [{"phase": -1, "realized_speedup": 1e308, "realized_degradation": 1e308}]}`,
		`{"dispatch_id": "d", "unknown_field": 1}`,
		`{"dispatch_id": 4}`,
		`[1,2,3]`,
		`"string"`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/feedback", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		switch rr.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusNotFound:
		default:
			t.Fatalf("status %d for body %q", rr.Code, body)
		}
	})
}
