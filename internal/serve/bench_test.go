package serve

import (
	"context"
	"testing"

	"opprox/internal/apps"
)

// benchServer builds a server over a trained pso model, optionally with
// the plan cache disabled so every dispatch takes the full path.
func benchServer(b *testing.B, planCacheCap int) (*Server, *DispatchRequest) {
	b.Helper()
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(b)
	s := New(Options{Store: store, Registry: RegistryOptions{RetryBase: 0}, PlanCacheCap: planCacheCap})
	dreq := planRequest("pso.json", "pso", 10, apps.Params{"swarm": 16, "dim": 4})
	if _, degraded, err := s.dispatchBody(context.Background(), dreq); err != nil || degraded {
		b.Fatalf("warmup: degraded=%v err=%v", degraded, err)
	}
	return s, dreq
}

// BenchmarkDispatchPlanCacheHit is the steady-state serving hot path: a
// repeat dispatch answered from the plan cache. The acceptance bar is
// zero allocations and >= 5x faster than BenchmarkDispatchCold.
func BenchmarkDispatchPlanCacheHit(b *testing.B) {
	s, dreq := benchServer(b, 0)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, _, err := s.dispatchBody(ctx, dreq)
		if err != nil || body == nil {
			b.Fatal("hit path failed")
		}
	}
}

// BenchmarkDispatchCold is the uncached dispatch: full schedule
// optimization, diagnosis, recording and serialization on every request
// (plan cache disabled; the batcher runs a one-item batch each time).
func BenchmarkDispatchCold(b *testing.B) {
	s, dreq := benchServer(b, -1)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, _, err := s.dispatchBody(ctx, dreq)
		if err != nil || body == nil {
			b.Fatal("cold path failed")
		}
	}
}

// BenchmarkDispatchCoalesced is the concurrent uncached burst: parallel
// identical dispatches with the plan cache disabled, so the batcher's
// collapse-and-batch path carries all the load.
func BenchmarkDispatchCoalesced(b *testing.B) {
	s, dreq := benchServer(b, -1)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			body, _, err := s.dispatchBody(ctx, dreq)
			if err != nil || body == nil {
				b.Error("coalesced path failed")
				return
			}
		}
	})
}
