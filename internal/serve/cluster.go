package serve

// Sharded serving: a fleet of opprox-serve replicas splits the model
// namespace by rendezvous hashing (internal/shard), and every replica
// answers any request — for a model it owns by serving locally, for one
// it does not by proxying to the owner and relaying the owner's bytes
// verbatim.
//
// Ownership is per *model name*, which is what makes routing
// version-coherent (invariant D11): all lifecycle state for a model —
// live/previous/shadow versions, drift evidence, dispatch records —
// lives only on its owner, so a dispatch observes exactly one replica's
// live version, never a mix, even mid-promote. The proxy forwards the
// caller's raw body and relays the owner's raw response, so a proxied
// dispatch is byte-identical to one sent to the owner directly (the
// conformance suite pins this across 1- and 3-replica topologies).
//
// Loop safety: one hop, ever. A proxied request carries forwardHeader;
// a replica receiving a forwarded request always serves locally, so a
// topology disagreement between replicas degrades to one extra hop —
// never a cycle.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"opprox/internal/obs"
	"opprox/internal/shard"
)

// forwardHeader marks a request that already made its one proxy hop.
// The value is the forwarding replica's name (introspection only; the
// presence of the header is what stops re-forwarding).
const forwardHeader = "X-Opprox-Forwarded"

// maxPeerResponseBytes bounds a relayed peer response body.
const maxPeerResponseBytes = 4 << 20

// ClusterOptions configures one replica of a sharded fleet.
type ClusterOptions struct {
	// Self is this replica's name; it must appear in Replicas.
	Self string
	// Replicas maps every replica name (including Self) to its base URL
	// ("http://host:port"). All replicas must be configured with the same
	// set or requests may take an extra hop.
	Replicas map[string]string
	// Client issues proxy requests; nil uses a default with a timeout.
	Client *http.Client
}

// cluster is the sharding state of one replica.
type cluster struct {
	self   string
	table  *shard.Table
	urls   map[string]string
	client *http.Client
}

// ConfigureCluster makes this server one replica of a sharded fleet.
// Must be called before the handler serves traffic.
func (s *Server) ConfigureCluster(opts ClusterOptions) error {
	if opts.Self == "" {
		return fmt.Errorf("cluster: missing self name")
	}
	if _, ok := opts.Replicas[opts.Self]; !ok {
		return fmt.Errorf("cluster: self %q not in replica set", opts.Self)
	}
	names := make([]string, 0, len(opts.Replicas))
	for name := range opts.Replicas {
		names = append(names, name)
	}
	sort.Strings(names)
	table, err := shard.New(names...)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: s.timeout + 5*time.Second}
	}
	urls := make(map[string]string, len(opts.Replicas))
	for name, url := range opts.Replicas {
		urls[name] = url
	}
	s.cluster = &cluster{self: opts.Self, table: table, urls: urls, client: client}
	return nil
}

// proxyToOwner routes a model-keyed request to the replica that owns the
// model, relaying the owner's response verbatim. It reports whether the
// response was written. Requests are served locally when the server is
// standalone, when this replica owns the model, or when the request
// already made its one hop.
func (s *Server) proxyToOwner(w http.ResponseWriter, req *http.Request, model, path string, body []byte) bool {
	c := s.cluster
	if c == nil || model == "" {
		return false
	}
	owner, ok := c.table.Owner(model)
	if !ok || owner == c.self {
		return false
	}
	if req.Header.Get(forwardHeader) != "" {
		// A peer thought we own this model; our table disagrees. Serve
		// locally — one extra hop, never a loop.
		obs.Inc("serve.cluster.forward_disagreement")
		return false
	}
	obs.Inc("serve.cluster.proxied")
	status, hdr, respBody, err := c.post(owner, path, body, clientKey(req))
	if err != nil {
		writeError(w, err)
		return true
	}
	relay(w, status, hdr, respBody)
	return true
}

// forwardFeedback relays a feedback report whose dispatch record is not
// held locally. The record lives wherever the dispatch was served — its
// model's owner — but a report carries only the dispatch ID, so peers
// are tried in the deterministic shard.Rank order of that ID; the first
// peer that recognizes the dispatch answers. Reports whether the
// response was written.
func (s *Server) forwardFeedback(w http.ResponseWriter, req *http.Request, dispatchID string, body []byte) bool {
	c := s.cluster
	if c == nil || req.Header.Get(forwardHeader) != "" {
		return false
	}
	for _, peer := range c.table.Rank(dispatchID) {
		if peer == c.self {
			continue
		}
		status, hdr, respBody, err := c.post(peer, "/v1/feedback", body, clientKey(req))
		if err != nil {
			obs.Inc("serve.cluster.feedback_peer_error")
			continue
		}
		if status == http.StatusNotFound {
			continue
		}
		obs.Inc("serve.cluster.feedback_forwarded")
		relay(w, status, hdr, respBody)
		return true
	}
	return false
}

// post sends one proxy hop and returns the peer's raw response.
// Transport failures classify as ErrPeerUnavailable (502). The
// original client's identity travels in clientHeader so the owning
// replica accounts rate limits to the client, not to this proxy.
func (c *cluster) post(replica, path string, body []byte, client string) (status int, hdr http.Header, respBody []byte, err error) {
	url, ok := c.urls[replica]
	if !ok {
		return 0, nil, nil, fmt.Errorf("%w: no url for replica %q", ErrPeerUnavailable, replica)
	}
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, fmt.Errorf("%w: %s: %v", ErrPeerUnavailable, replica, err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardHeader, c.self)
	if client != "" {
		req.Header.Set(clientHeader, client)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("%w: %s: %v", ErrPeerUnavailable, replica, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponseBytes))
	if err != nil {
		return 0, nil, nil, fmt.Errorf("%w: %s: reading response: %v", ErrPeerUnavailable, replica, err)
	}
	return resp.StatusCode, resp.Header, b, nil
}

// relayHeaders are the owner's response headers a proxy hop preserves:
// the content type (body bytes relay verbatim) plus the admission
// metadata — which ladder rung served the dispatch, and when to retry
// a 429.
var relayHeaders = [...]string{"Content-Type", rungHeader, "Retry-After"}

// relay writes a peer's response verbatim — status, selected headers
// and body bytes unchanged, preserving byte identity across the hop.
func relay(w http.ResponseWriter, status int, hdr http.Header, body []byte) {
	for _, name := range relayHeaders {
		if v := hdr.Get(name); v != "" {
			w.Header().Set(name, v)
		}
	}
	w.WriteHeader(status)
	w.Write(body)
}

// clusterReplica is one replica in the GET /v1/cluster view.
type clusterReplica struct {
	Name string `json:"name"`
	URL  string `json:"url,omitempty"`
	Self bool   `json:"self,omitempty"`
}

// clusterModel reports which replica owns a model this replica knows of.
type clusterModel struct {
	Name  string `json:"name"`
	Owner string `json:"owner"`
	Local bool   `json:"local"`
}

// clusterResponse is the body of GET /v1/cluster.
type clusterResponse struct {
	Sharded  bool             `json:"sharded"`
	Self     string           `json:"self,omitempty"`
	Replicas []clusterReplica `json:"replicas,omitempty"`
	Models   []clusterModel   `json:"models,omitempty"`
}

func (s *Server) handleCluster(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(w, fmt.Errorf("%w: %s not allowed on /v1/cluster", ErrBadRequest, req.Method))
		return
	}
	c := s.cluster
	if c == nil {
		writeJSON(w, http.StatusOK, clusterResponse{Sharded: false})
		return
	}
	resp := clusterResponse{Sharded: true, Self: c.self}
	for _, name := range c.table.Replicas() {
		resp.Replicas = append(resp.Replicas, clusterReplica{
			Name: name,
			URL:  c.urls[name],
			Self: name == c.self,
		})
	}
	models := s.reg.Models()
	sort.Strings(models)
	for _, m := range models {
		owner, _ := c.table.Owner(m)
		resp.Models = append(resp.Models, clusterModel{Name: m, Owner: owner, Local: owner == c.self})
	}
	writeJSON(w, http.StatusOK, resp)
}
