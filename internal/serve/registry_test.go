package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"opprox/internal/apps"
	"opprox/internal/apps/pso"
	"opprox/internal/core"
)

// trainedModelJSON trains one small model set and returns its serialized
// form; cached across tests because training dominates test wall time.
var trainedModelOnce sync.Once
var trainedModelBytes []byte

func trainedModelJSON(t testing.TB) []byte {
	t.Helper()
	trainedModelOnce.Do(func() {
		opts := core.DefaultOptions()
		opts.Phases = 2
		opts.JointSamplesPerPhase = 6
		opts.MaxParamCombos = 3
		opts.Folds = 5
		tr, err := core.Train(apps.NewRunner(pso.New()), opts)
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			panic(err)
		}
		trainedModelBytes = buf.Bytes()
	})
	return trainedModelBytes
}

// fakeStore is a Store over an in-memory map with a programmable
// per-open failure sequence.
type fakeStore struct {
	mu    sync.Mutex
	files map[string][]byte
	// failures[name] errors are returned by successive Opens before the
	// content is served.
	failures map[string][]error
	opens    atomic.Int32
}

func newFakeStore() *fakeStore {
	return &fakeStore{files: map[string][]byte{}, failures: map[string][]error{}}
}

func (s *fakeStore) Open(name string) (io.ReadCloser, error) {
	s.opens.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if q := s.failures[name]; len(q) > 0 {
		err := q[0]
		s.failures[name] = q[1:]
		return nil, err
	}
	b, ok := s.files[name]
	if !ok {
		return nil, fmt.Errorf("fake: %q: %w", name, fs.ErrNotExist)
	}
	return io.NopCloser(bytes.NewReader(b)), nil
}

// Put makes fakeStore a lifecycle publisher, mirroring FileStore.
func (s *fakeStore) Put(name string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.files[name] = append([]byte(nil), data...)
	return nil
}

// instantSleep replaces the registry's backoff sleeper so retry tests
// don't wait.
func instantSleep(r *Registry) {
	r.sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
}

func TestRegistryLoadsOnceAndCaches(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	reg := NewRegistry(store, RegistryOptions{})

	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := reg.Get(context.Background(), "pso.json")
			if err != nil {
				t.Error(err)
			} else if tr == nil || tr.Phases != 2 {
				t.Errorf("bad model: %+v", tr)
			}
		}()
	}
	wg.Wait()
	if n := store.opens.Load(); n != 1 {
		t.Fatalf("store opened %d times for %d concurrent gets, want 1", n, workers)
	}
	if got := reg.Models(); len(got) != 1 || got[0] != "pso.json" {
		t.Fatalf("Models = %v", got)
	}
}

func TestRegistryRetriesTransientErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	store.failures["pso.json"] = []error{
		errors.New("transient: connection reset"),
		errors.New("transient: io timeout"),
	}
	reg := NewRegistry(store, RegistryOptions{Retries: 2})
	instantSleep(reg)

	if _, err := reg.Get(context.Background(), "pso.json"); err != nil {
		t.Fatalf("expected retries to recover, got %v", err)
	}
	if n := store.opens.Load(); n != 3 {
		t.Fatalf("store opened %d times, want 3 (2 failures + success)", n)
	}
}

func TestRegistryRetriesExhausted(t *testing.T) {
	store := newFakeStore()
	store.failures["m.json"] = []error{
		errors.New("transient 1"), errors.New("transient 2"), errors.New("transient 3"),
	}
	reg := NewRegistry(store, RegistryOptions{Retries: 1})
	instantSleep(reg)

	_, err := reg.Get(context.Background(), "m.json")
	if !errors.Is(err, ErrModelUnavailable) {
		t.Fatalf("exhausted retries should classify as ErrModelUnavailable, got %v", err)
	}
	if n := store.opens.Load(); n != 2 {
		t.Fatalf("store opened %d times, want 2 (first + 1 retry)", n)
	}
}

func TestRegistryMissingModelNoRetry(t *testing.T) {
	store := newFakeStore()
	reg := NewRegistry(store, RegistryOptions{Retries: 5})
	instantSleep(reg)

	_, err := reg.Get(context.Background(), "missing.json")
	if !errors.Is(err, ErrModelUnavailable) {
		t.Fatalf("got %v, want ErrModelUnavailable", err)
	}
	if n := store.opens.Load(); n != 1 {
		t.Fatalf("store opened %d times for a missing model, want 1 (no retry)", n)
	}
	if reg.Len() != 0 {
		t.Fatal("failed load left a cache entry")
	}
}

func TestRegistryCorruptModelNoRetryNoPanic(t *testing.T) {
	store := newFakeStore()
	store.files["bad.json"] = []byte(`{"version": 1, "phases":`)
	reg := NewRegistry(store, RegistryOptions{Retries: 3})
	instantSleep(reg)

	_, err := reg.Get(context.Background(), "bad.json")
	if !errors.Is(err, ErrModelUnavailable) {
		t.Fatalf("got %v, want ErrModelUnavailable", err)
	}
	if n := store.opens.Load(); n != 1 {
		t.Fatalf("store opened %d times for a corrupt model, want 1 (validation is permanent)", n)
	}
}

func TestRegistryErrorNotCached(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	reg := NewRegistry(store, RegistryOptions{})

	if _, err := reg.Get(context.Background(), "late.json"); !errors.Is(err, ErrModelUnavailable) {
		t.Fatalf("got %v, want ErrModelUnavailable", err)
	}
	// The model is published after the first failure; the next request
	// must see it rather than a cached error.
	store.mu.Lock()
	store.files["late.json"] = trainedModelJSON(t)
	store.mu.Unlock()
	if _, err := reg.Get(context.Background(), "late.json"); err != nil {
		t.Fatalf("store healed but Get still fails: %v", err)
	}
}

func TestRegistryReloadFallsBackToLastGood(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	reg := NewRegistry(store, RegistryOptions{})
	instantSleep(reg)

	good, err := reg.Get(context.Background(), "pso.json")
	if err != nil {
		t.Fatal(err)
	}

	// A bad publish lands: reload must fail but keep serving last-good.
	store.mu.Lock()
	store.files["pso.json"] = []byte(`{"version": 99}`)
	store.mu.Unlock()
	if err := reg.Reload(context.Background(), "pso.json"); err == nil {
		t.Fatal("reload of a corrupt file reported success")
	}
	cur, err := reg.Get(context.Background(), "pso.json")
	if err != nil {
		t.Fatalf("last-good model lost after failed reload: %v", err)
	}
	if cur != good {
		t.Fatal("failed reload swapped the model set")
	}

	// The good publish returns: reload must atomically install it.
	store.mu.Lock()
	store.files["pso.json"] = trainedModelJSON(t)
	store.mu.Unlock()
	if err := reg.Reload(context.Background(), "pso.json"); err != nil {
		t.Fatal(err)
	}
	cur2, err := reg.Get(context.Background(), "pso.json")
	if err != nil {
		t.Fatal(err)
	}
	if cur2 == good {
		t.Fatal("successful reload did not swap the model set")
	}
}

func TestRegistryContextCancellation(t *testing.T) {
	store := newFakeStore()
	store.failures["m.json"] = []error{errors.New("transient")}
	reg := NewRegistry(store, RegistryOptions{Retries: 3, RetryBase: time.Hour})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := reg.Get(ctx, "m.json")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled (backoff must respect ctx)", err)
	}
}

func TestFileStoreConfinesToRoot(t *testing.T) {
	root := t.TempDir()
	inside := filepath.Join(root, "ok.json")
	if err := os.WriteFile(inside, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	outside := filepath.Join(filepath.Dir(root), "secret.json")
	if err := os.WriteFile(outside, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	defer os.Remove(outside)

	store := FileStore{Root: root}
	if rc, err := store.Open("ok.json"); err != nil {
		t.Fatalf("in-root open failed: %v", err)
	} else {
		rc.Close()
	}
	for _, name := range []string{"../secret.json", "sub/../../secret.json"} {
		if rc, err := store.Open(name); err == nil {
			rc.Close()
			t.Fatalf("traversal %q escaped the store root", name)
		} else if !strings.Contains(err.Error(), "escapes") {
			// A cleaned path that stays inside the root is fine; one that
			// reaches the sibling file is not. Both names above resolve
			// outside root, so the rejection must be the containment check.
			t.Fatalf("traversal %q rejected for the wrong reason: %v", name, err)
		}
	}
	// Missing files keep their fs.ErrNotExist classification.
	if _, err := store.Open("absent.json"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file error = %v, want fs.ErrNotExist", err)
	}
}
