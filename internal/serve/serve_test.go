package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"opprox/internal/apps/pso"
	"opprox/internal/launch"
	"opprox/internal/obs"
)

func newTestServer(t *testing.T, store Store, opts ...func(*Options)) *httptest.Server {
	t.Helper()
	o := Options{Store: store, Registry: RegistryOptions{RetryBase: time.Microsecond}}
	for _, f := range opts {
		f(&o)
	}
	srv := New(o)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

const dispatchBody = `{"app": "pso", "budget": 10, "params": {"swarm": 16, "dim": 4}, "model_path": "pso.json"}`

func TestServeDispatchEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	ts := newTestServer(t, store)

	status, body := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp DispatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Fatalf("healthy dispatch marked degraded: %s", body)
	}
	if resp.App != "pso" || resp.Budget != 10 || resp.Phases != 2 {
		t.Fatalf("bad response: %s", body)
	}
	if resp.Degradation > 10 {
		t.Fatalf("plan predicts %.2f%% over the 10%% budget", resp.Degradation)
	}
	if len(resp.Levels) != resp.Phases {
		t.Fatalf("levels/phases mismatch: %s", body)
	}
	// The served environment must decode to the served schedule for the
	// real application block set — the same round-trip contract the
	// one-shot launcher has.
	sched, err := launch.DecodeEnv(resp.Env, pso.New().Blocks())
	if err != nil {
		t.Fatal(err)
	}
	for ph := range resp.Levels {
		for bi, lv := range resp.Levels[ph] {
			if sched.Levels[ph][bi] != lv {
				t.Fatalf("env decodes to level %d at (%d,%d), response says %d",
					sched.Levels[ph][bi], ph, bi, lv)
			}
		}
	}
}

// TestServeByteDeterministic is the serving-layer extension of PR 1's
// determinism suite: the same (model file, params, budget) must yield
// byte-identical bodies across repeated requests and concurrent clients.
func TestServeByteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	ts := newTestServer(t, store)

	_, want := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody)

	const clients, perClient = 8, 4
	bodies := make([][]byte, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(ts.URL+"/v1/dispatch", "application/json", strings.NewReader(dispatchBody))
				if err != nil {
					t.Error(err)
					return
				}
				b, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				bodies[c*perClient+i] = b
			}
		}(c)
	}
	wg.Wait()
	for i, b := range bodies {
		if !bytes.Equal(b, want) {
			t.Fatalf("response %d differs:\n got %s\nwant %s", i, b, want)
		}
	}
}

func TestServeDegradedOnMissingModel(t *testing.T) {
	store := newFakeStore()
	ts := newTestServer(t, store)
	before := obs.Default.Counter("serve.dispatch.degraded").Value()

	status, body := postJSON(t, ts.URL+"/v1/dispatch",
		`{"app": "pso", "budget": 10, "model_path": "absent.json"}`)
	if status != http.StatusOK {
		t.Fatalf("degraded dispatch must still succeed, got %d: %s", status, body)
	}
	var resp DispatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Reason == "" {
		t.Fatalf("missing model did not degrade: %s", body)
	}
	if resp.Speedup != 1 || resp.Degradation != 0 {
		t.Fatalf("degraded schedule must predict (1, 0): %s", body)
	}
	if len(resp.Env) != 1 || resp.Env[0] != "OPPROX_PHASES=1" {
		t.Fatalf("degraded env = %v, want the bare all-accurate encoding", resp.Env)
	}
	// The degraded env decodes to the all-accurate schedule for any
	// block set.
	sched, err := launch.DecodeEnv(resp.Env, pso.New().Blocks())
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range sched.Levels {
		if !cfg.IsAccurate() {
			t.Fatalf("degraded schedule is not all-accurate: %v", sched.Levels)
		}
	}
	if got := obs.Default.Counter("serve.dispatch.degraded").Value(); got != before+1 {
		t.Fatalf("degraded counter moved %d -> %d, want +1", before, got)
	}
}

func TestServeDegradedOnCorruptModel(t *testing.T) {
	store := newFakeStore()
	store.files["bad.json"] = []byte(`{"version": 1, "phases": -3, "blocks": []`)
	ts := newTestServer(t, store)

	status, body := postJSON(t, ts.URL+"/v1/dispatch",
		`{"app": "pso", "budget": 5, "model_path": "bad.json"}`)
	if status != http.StatusOK {
		t.Fatalf("corrupt model must degrade, not fail: %d %s", status, body)
	}
	var resp DispatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.Speedup != 1 || resp.Degradation != 0 {
		t.Fatalf("bad degraded response: %s", body)
	}
}

func TestServeStrictSurfacesModelErrors(t *testing.T) {
	store := newFakeStore()
	ts := newTestServer(t, store)

	status, body := postJSON(t, ts.URL+"/v1/dispatch",
		`{"app": "pso", "budget": 10, "model_path": "absent.json", "strict": true}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("strict dispatch got %d, want 503: %s", status, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error != "model_unavailable" {
		t.Fatalf("error code %q, want model_unavailable", eb.Error)
	}
}

func TestServeBadRequests(t *testing.T) {
	store := newFakeStore()
	ts := newTestServer(t, store)

	cases := []string{
		`not json`,
		`{"app": "", "budget": 1, "model_path": "m.json"}`,
		`{"app": "pso", "budget": -1, "model_path": "m.json"}`,
		`{"app": "pso", "budget": 1}`,
		`{"app": "pso", "budget": 1, "model_path": "m.json", "bogus_field": 1}`,
	}
	for _, body := range cases {
		status, rb := postJSON(t, ts.URL+"/v1/dispatch", body)
		if status != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400 (%s)", body, status, rb)
		}
		var eb errorBody
		if err := json.Unmarshal(rb, &eb); err != nil {
			t.Fatalf("body %q: non-JSON error response %s", body, rb)
		}
		if eb.Error != "bad_request" {
			t.Fatalf("body %q: code %q, want bad_request", body, eb.Error)
		}
	}

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/dispatch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET /v1/dispatch = %d, want 400", resp.StatusCode)
	}
}

func TestServeOptimizeErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	ts := newTestServer(t, store)

	// A model whose block names collide after env-key sanitization loads
	// fine (persist does not know the env contract) but cannot be encoded
	// at dispatch time: classified under ErrOptimize, not degraded —
	// degrading would hide a schedule the optimizer did produce.
	colliding := bytes.ReplaceAll(trainedModelJSON(t), []byte(`"velocity"`), []byte(`"posi-tion"`))
	colliding = bytes.ReplaceAll(colliding, []byte(`"position"`), []byte(`"posi_tion"`))
	store.mu.Lock()
	store.files["colliding.json"] = colliding
	store.mu.Unlock()
	status, body := postJSON(t, ts.URL+"/v1/dispatch",
		`{"app": "pso", "budget": 10, "model_path": "colliding.json"}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", status, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error != "optimize_failed" {
		t.Fatalf("error code %q, want optimize_failed", eb.Error)
	}
}

// blockingStore parks every Open until the test releases it.
type blockingStore struct{ release chan struct{} }

func (s blockingStore) Open(name string) (io.ReadCloser, error) {
	<-s.release
	return nil, fmt.Errorf("released")
}

func TestServeRequestTimeout(t *testing.T) {
	bs := blockingStore{release: make(chan struct{})}
	defer close(bs.release)
	ts := newTestServer(t, bs, func(o *Options) { o.Timeout = 20 * time.Millisecond })

	status, body := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", status, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error != "timeout" {
		t.Fatalf("error code %q, want timeout", eb.Error)
	}
}

func TestServeReloadEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	ts := newTestServer(t, store)

	// Warm the cache, then corrupt the published file: reload fails, the
	// last-good set keeps serving.
	if status, body := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody); status != http.StatusOK {
		t.Fatalf("warmup: %d %s", status, body)
	}
	store.mu.Lock()
	store.files["pso.json"] = []byte(`{"version": 1`)
	store.mu.Unlock()

	status, body := postJSON(t, ts.URL+"/v1/reload", `{}`)
	if status != http.StatusOK {
		t.Fatalf("reload: %d %s", status, body)
	}
	var rr reloadResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Reloaded) != 0 || rr.Failed["pso.json"] == "" {
		t.Fatalf("corrupt publish should fail reload: %s", body)
	}
	if status, body := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody); status != http.StatusOK {
		t.Fatalf("last-good model lost after failed reload: %d %s", status, body)
	} else {
		var resp DispatchResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Degraded {
			t.Fatalf("failed reload degraded a healthy model: %s", body)
		}
	}

	// Publish a good file again: reload succeeds.
	store.mu.Lock()
	store.files["pso.json"] = trainedModelJSON(t)
	store.mu.Unlock()
	status, body = postJSON(t, ts.URL+"/v1/reload", ``)
	if status != http.StatusOK {
		t.Fatalf("reload: %d %s", status, body)
	}
	rr = reloadResponse{}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Reloaded) != 1 || rr.Reloaded[0] != "pso.json" || len(rr.Failed) != 0 {
		t.Fatalf("reload after good publish: %s", body)
	}
}

func TestServeHealthAndMetrics(t *testing.T) {
	store := newFakeStore()
	ts := newTestServer(t, store)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d %s", resp.StatusCode, b)
	}
	var h map[string]any
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Fatalf("healthz body: %s", b)
	}

	resp, err = http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz: %d", resp.StatusCode)
	}
	var snap map[string]any
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("metricsz is not JSON: %v\n%s", err, b)
	}
}
