package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"testing"

	"opprox/internal/apps"
	"opprox/internal/feedback"
	"opprox/internal/launch"
	"opprox/internal/obs"
)

func planRequest(model, app string, budget float64, params apps.Params) *DispatchRequest {
	return &DispatchRequest{JobConfig: launch.JobConfig{
		App: app, Budget: budget, Params: params, ModelPath: model,
	}}
}

func buildKey(dreq *DispatchRequest, version string) []byte {
	kb := planKeyPool.Get().(*planKey)
	defer kb.release()
	appendPlanKey(kb, dreq, version)
	return append([]byte(nil), kb.buf...)
}

// FuzzPlanCacheKey proves the cache key is a canonical form of exactly
// the inputs a dispatch response depends on: two (model, version, app,
// budget, params) tuples produce the same key if and only if they are
// canonically equal — same strings, same budget rendering, same param
// set under strconv's shortest round-trip float form. Combined with the
// conformance suite (equal inputs ⇒ byte-identical responses, cached or
// not), key equality ⇔ response equality: the cache can neither serve a
// wrong plan (injectivity) nor miss a rephrased-but-identical request
// (canonicalization).
func FuzzPlanCacheKey(f *testing.F) {
	f.Add("pso.json", "v1", "pso", 10.0, "swarm", 16.0, "dim", 4.0,
		"pso.json", "v1", "pso", 10.0, "dim", 4.0, "swarm", 16.0)
	// Field-boundary attack: without length prefixes these would collide.
	f.Add("a", "bc", "d", 1.0, "k", 1.0, "k", 1.0,
		"ab", "c", "d", 1.0, "k", 1.0, "k", 1.0)
	// Signed zero: "-0" and "0" render differently and must key apart.
	f.Add("m", "v", "a", 0.0, "k", 0.0, "k", 0.0,
		"m", "v", "a", -0.0, "k", -0.0, "k", -0.0)
	// Param name vs value boundary.
	f.Add("m", "v", "a", 1.0, "x1", 2.0, "y", 3.0,
		"m", "v", "a", 1.0, "x", 12.0, "y", 3.0)
	f.Fuzz(func(t *testing.T,
		model1, ver1, app1 string, budget1 float64, k1a string, v1a float64, k1b string, v1b float64,
		model2, ver2, app2 string, budget2 float64, k2a string, v2a float64, k2b string, v2b float64,
	) {
		d1 := planRequest(model1, app1, budget1, apps.Params{k1a: v1a, k1b: v1b})
		d2 := planRequest(model2, app2, budget2, apps.Params{k2a: v2a, k2b: v2b})
		key1, key2 := buildKey(d1, ver1), buildKey(d2, ver2)

		same := model1 == model2 && ver1 == ver2 && app1 == app2 &&
			floatRepr(budget1) == floatRepr(budget2) &&
			paramsCanonicallyEqual(d1.Params, d2.Params)
		if got := bytes.Equal(key1, key2); got != same {
			t.Fatalf("key equality %v, canonical equality %v\n d1=%+v ver=%q key=%q\n d2=%+v ver=%q key=%q",
				got, same, d1.JobConfig, ver1, key1, d2.JobConfig, ver2, key2)
		}
		// The key must also be stable: rebuilding from the same request
		// (fresh pooled scratch, fresh map iteration order) is identical.
		if !bytes.Equal(key1, buildKey(d1, ver1)) {
			t.Fatalf("key not deterministic for %+v", d1.JobConfig)
		}
	})
}

func floatRepr(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func paramsCanonicallyEqual(a, b apps.Params) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || floatRepr(av) != floatRepr(bv) {
			return false
		}
	}
	return true
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := newPlanCache(2)
	put := func(key string) {
		c.put(key, "m.json", []byte(key), &feedback.DispatchRecord{ID: key})
	}
	put("a")
	put("b")
	if c.get([]byte("a")) == nil { // promotes a over b
		t.Fatal("a missing")
	}
	evicted := obs.Default.Counter("serve.plan.cache.evicted").Value()
	put("c") // must evict b, the LRU
	if got := obs.Default.Counter("serve.plan.cache.evicted").Value(); got != evicted+1 {
		t.Fatalf("evicted counter moved %d -> %d, want +1", evicted, got)
	}
	if c.get([]byte("b")) != nil {
		t.Fatal("LRU entry b survived eviction")
	}
	if c.get([]byte("a")) == nil || c.get([]byte("c")) == nil {
		t.Fatal("recently used entries evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestPlanCacheInvalidateModel(t *testing.T) {
	c := newPlanCache(8)
	c.put("p1", "pso.json", []byte("x"), nil)
	c.put("p2", "pso.json", []byte("y"), nil)
	c.put("l1", "lulesh.json", []byte("z"), nil)
	if n := c.invalidateModel("pso.json"); n != 2 {
		t.Fatalf("invalidated %d entries, want 2", n)
	}
	if c.get([]byte("p1")) != nil || c.get([]byte("p2")) != nil {
		t.Fatal("invalidated plan still served")
	}
	if c.get([]byte("l1")) == nil {
		t.Fatal("invalidation crossed model boundaries")
	}
	if n := c.invalidateModel("pso.json"); n != 0 {
		t.Fatalf("second invalidation dropped %d entries", n)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	c := newPlanCache(-1)
	c.put("k", "m", []byte("v"), nil)
	if c.get([]byte("k")) != nil {
		t.Fatal("disabled cache served an entry")
	}
	if c.len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

// TestPlanCacheNeverServesStaleVersion is the eviction/invalidation
// property test: across an arbitrary sequence of live-version swaps
// (reload with changed bytes — the same swap path promote and rollback
// share), a dispatch served through the cache always reports the
// current live version. The key's version field makes this hold even if
// invalidation were skipped entirely; the test also checks the swap
// hook actually dropped the model's plans.
func TestPlanCacheNeverServesStaleVersion(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	modelA := trainedModelJSON(t)
	// A byte-distinct but behaviorally identical publication: appended
	// whitespace changes the content hash, not the parsed model.
	modelB := append(append([]byte(nil), modelA...), '\n')
	store.files["pso.json"] = modelA

	s := New(Options{Store: store, Registry: RegistryOptions{RetryBase: 0}})
	ctx := context.Background()
	dreq := planRequest("pso.json", "pso", 10, apps.Params{"swarm": 16, "dim": 4})

	serve := func() string {
		t.Helper()
		body, degraded, err := s.dispatchBody(ctx, dreq)
		if err != nil || degraded {
			t.Fatalf("dispatch: degraded=%v err=%v", degraded, err)
		}
		var resp DispatchResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		return resp.ModelVersion
	}

	for cycle := 0; cycle < 4; cycle++ {
		publish := modelA
		if cycle%2 == 1 {
			publish = modelB
		}
		store.mu.Lock()
		store.files["pso.json"] = publish
		store.mu.Unlock()
		if _, err := s.mgr.Reload(ctx, "pso.json"); err != nil {
			t.Fatal(err)
		}
		if cycle > 0 && s.plans.len() != 0 {
			t.Fatalf("cycle %d: swap left %d cached plans for the swapped model", cycle, s.plans.len())
		}
		liveVer, _ := s.mgr.LiveVersion("pso.json")
		for i := 0; i < 3; i++ { // cold, then two cache hits
			if got := serve(); got != liveVer {
				t.Fatalf("cycle %d request %d: served version %s, live is %s", cycle, i, got, liveVer)
			}
		}
	}
}

// TestDispatchPlanCacheHitZeroAllocs pins the acceptance criterion that
// the steady-state hit path allocates nothing: after warmup, a repeat
// dispatch is pooled key build + map lookup + cached bytes.
func TestDispatchPlanCacheHitZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	s := New(Options{Store: store, Registry: RegistryOptions{RetryBase: 0}})
	ctx := context.Background()
	dreq := planRequest("pso.json", "pso", 10, apps.Params{"swarm": 16, "dim": 4})

	if _, degraded, err := s.dispatchBody(ctx, dreq); err != nil || degraded {
		t.Fatalf("warmup: degraded=%v err=%v", degraded, err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		body, _, err := s.dispatchBody(ctx, dreq)
		if err != nil || body == nil {
			t.Fatal("hit path failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("plan-cache hit allocates %.1f times per dispatch, want 0", allocs)
	}
}
