package serve

// The retraining endpoint and trigger wiring. The pipeline itself lives
// in internal/retrain; this file maps it onto the HTTP API and the
// serving error taxonomy, and fires it in the background when a model's
// drift state goes terminal (stale).

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"opprox/internal/lifecycle"
	"opprox/internal/obs"
	"opprox/internal/retrain"
)

// retrainResponse is the body of a successful POST /v1/retrain. Status
// is "shadow_created" when a winner was dark-launched, "no_improvement"
// when the pipeline ran to completion but no candidate beat the live
// model on the holdout (the per-candidate diagnostics say why).
type retrainResponse struct {
	Status string `json:"status"`
	*retrain.Result
}

func (s *Server) handleRetrain(w http.ResponseWriter, req *http.Request) {
	done := obs.Timer("serve.http.retrain")
	defer done()
	if req.Method != http.MethodPost {
		writeError(w, fmt.Errorf("%w: %s not allowed on /v1/retrain", ErrBadRequest, req.Method))
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxRequestBytes))
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading body: %v", ErrBadRequest, err))
		return
	}
	var mreq modelRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mreq); err != nil {
		writeError(w, fmt.Errorf("%w: decoding body: %v", ErrBadRequest, err))
		return
	}
	if mreq.Model == "" {
		writeError(w, fmt.Errorf("%w: missing model", ErrBadRequest))
		return
	}
	// Retraining reads the owner's telemetry log and record store and
	// dark-launches into the owner's lifecycle state — same routing as
	// promote/rollback.
	if s.proxyToOwner(w, req, mreq.Model, "/v1/retrain", raw) {
		return
	}
	if s.retrainer == nil {
		writeError(w, fmt.Errorf("%w: retraining is not enabled on this server", ErrBadRequest))
		return
	}
	res, err := s.retrainer.Run(mreq.Model)
	if err != nil {
		switch {
		case errors.Is(err, retrain.ErrNoImprovement):
			// Not a failure: the pipeline ran, the live model won. The
			// caller gets the full candidate diagnostics.
			writeJSON(w, http.StatusOK, retrainResponse{Status: "no_improvement", Result: res})
		case errors.Is(err, retrain.ErrUnknownModel):
			writeError(w, fmt.Errorf("%w: %v", ErrNotFound, err))
		case errors.Is(err, retrain.ErrInsufficientData):
			writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		case errors.Is(err, lifecycle.ErrIdenticalToLive):
			// A promote landed between candidate selection and the
			// dark-launch: the winner IS the live version now. Nothing to
			// evaluate — report the benign outcome.
			writeJSON(w, http.StatusOK, retrainResponse{Status: "already_live", Result: res})
		default:
			writeError(w, err)
		}
		return
	}
	writeJSON(w, http.StatusOK, retrainResponse{Status: "shadow_created", Result: res})
}

// maybeRetrain fires a background retrain when a feedback report flips
// a model's drift state to stale — calibration alone stopped tracking
// reality, which is exactly the regime retraining exists for. TryRun
// coalesces: further stale signals during a long retrain are dropped,
// not queued. Returns whether a run was started.
func (s *Server) maybeRetrain(model string) bool {
	if s.retrainer == nil {
		return false
	}
	obs.Inc("serve.retrain.triggered")
	go func() {
		res, err := s.retrainer.TryRun(model)
		switch {
		case err == nil:
			obs.LogEvent("serve.retrain", "%s: %s -> shadow %s", model, res.Winner, res.ShadowVersion)
		case errors.Is(err, retrain.ErrRetrainInFlight):
			// Coalesced; the in-flight run covers this signal.
		case errors.Is(err, lifecycle.ErrIdenticalToLive):
			// A raced promote already installed the winner.
		default:
			obs.Inc("serve.retrain.failed")
			obs.LogEvent("serve.retrain", "%s: %v", model, err)
		}
	}()
	return true
}
