package serve

// Overload-path regression tests (ISSUE 9): the in-flight gate's
// goroutine bound, the degradation ladder's byte-deterministic rungs
// (invariant D13), admission rate limiting and lockout over HTTP, and
// the rate-limited-feedback-leaves-no-trace property.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"opprox/internal/admission"
	"opprox/internal/feedback"
	"opprox/internal/qos"
)

// newAdmissionTestServer is newTestServer but also returns the Server,
// for tests that reach ladder or detector state directly.
func newAdmissionTestServer(t *testing.T, store Store, opts ...func(*Options)) (*Server, *httptest.Server) {
	t.Helper()
	o := Options{Store: store, Registry: RegistryOptions{RetryBase: time.Microsecond}}
	for _, f := range opts {
		f(&o)
	}
	srv := New(o)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// postAs posts a JSON body under an explicit client identity and
// returns the response headers too (rung and Retry-After checks).
func postAs(t *testing.T, url, client, body string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set(clientHeader, client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// forceStep pins the ladder over the ops endpoint and returns the
// reported state.
func forceStep(t *testing.T, baseURL string, step int) admissionState {
	t.Helper()
	status, body := postJSON(t, baseURL+"/v1/admission", fmt.Sprintf(`{"force_step": %d}`, step))
	if status != http.StatusOK {
		t.Fatalf("force step %d: %d %s", step, status, body)
	}
	var st admissionState
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func dispatchWithBudget(budget float64) string {
	return fmt.Sprintf(`{"app": "pso", "budget": %g, "params": {"swarm": 16, "dim": 4}, "model_path": "pso.json"}`, budget)
}

// TestGateBoundsAbandonedGoroutines is the abandoned-goroutine-leak
// regression: a burst of dispatches against a wedged model store, all
// timing out, must strand at most MaxInFlight computations — and zero
// once the store unwedges.
func TestGateBoundsAbandonedGoroutines(t *testing.T) {
	bs := blockingStore{release: make(chan struct{})}
	srv := New(Options{
		Store:       bs,
		Registry:    RegistryOptions{RetryBase: time.Microsecond},
		MaxInFlight: 4,
	})
	var dreq DispatchRequest
	if err := json.Unmarshal([]byte(dispatchBody), &dreq); err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	const burst = 48
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
			defer cancel()
			srv.dispatch(ctx, &dreq)
		}()
	}
	wg.Wait()

	// Every request has returned. Only computations that won a gate
	// slot may still be running (parked in the store); before the gate,
	// all 48 abandoned goroutines would still be alive here.
	const slack = 6
	if g := runtime.NumGoroutine(); g > base+4+slack {
		t.Fatalf("%d goroutines after timed-out burst (baseline %d, in-flight cap 4): abandoned computations leaked", g, base)
	}
	if got := srv.gate.InFlight(); got > 4 {
		t.Fatalf("in-flight %d exceeds cap 4", got)
	}

	close(bs.release)
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain after release: %d, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDispatchRateLimit pins the limiter's HTTP face: over-budget
// clients get 429 + Retry-After with the over_capacity code, and
// per-client buckets are keyed by the forwarded client identity.
func TestDispatchRateLimit(t *testing.T) {
	_, ts := newAdmissionTestServer(t, newFakeStore(), func(o *Options) {
		o.Admission = &admission.Options{ClientRate: 0.0001, ClientBurst: 2}
	})

	for i := 0; i < 2; i++ {
		status, _, body := postAs(t, ts.URL+"/v1/dispatch", "alice", dispatchBody)
		if status != http.StatusOK {
			t.Fatalf("dispatch %d: %d %s", i, status, body)
		}
	}
	status, hdr, body := postAs(t, ts.URL+"/v1/dispatch", "alice", dispatchBody)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-budget dispatch: %d %s, want 429", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After header")
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error != "over_capacity" {
		t.Fatalf("error code %q, want over_capacity", eb.Error)
	}

	// A different client identity has its own bucket.
	if status, _, body := postAs(t, ts.URL+"/v1/dispatch", "bob", dispatchBody); status != http.StatusOK {
		t.Fatalf("fresh client rejected: %d %s", status, body)
	}
}

// TestInvalidBodyLockout: repeated invalid bodies lock the client out
// of both dispatch and feedback, without any rate limit configured.
func TestInvalidBodyLockout(t *testing.T) {
	_, ts := newAdmissionTestServer(t, newFakeStore(), func(o *Options) {
		o.Admission = &admission.Options{
			FailureLimit:  2,
			FailureWindow: time.Minute,
			Lockout:       time.Minute,
		}
	})

	for i := 0; i < 2; i++ {
		status, _, body := postAs(t, ts.URL+"/v1/dispatch", "mallory", `{not json`)
		if status != http.StatusBadRequest {
			t.Fatalf("invalid body %d: %d %s, want 400", i, status, body)
		}
	}
	status, hdr, body := postAs(t, ts.URL+"/v1/dispatch", "mallory", dispatchBody)
	if status != http.StatusTooManyRequests || !strings.Contains(string(body), "locked_out") {
		t.Fatalf("locked-out dispatch: %d %s, want 429 locked_out", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatalf("lockout 429 without Retry-After header")
	}
	// The lockout covers feedback too.
	status, _, body = postAs(t, ts.URL+"/v1/feedback", "mallory", `{"dispatch_id": "d", "observations": []}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("locked-out feedback: %d %s, want 429", status, body)
	}
	// Well-behaved clients are untouched.
	if status, _, body := postAs(t, ts.URL+"/v1/dispatch", "alice", dispatchBody); status != http.StatusOK {
		t.Fatalf("clean client rejected during another's lockout: %d %s", status, body)
	}
}

// TestAdmissionEndpoint pins the /v1/admission contract: the snapshot
// shape, force-step validation, and method handling.
func TestAdmissionEndpoint(t *testing.T) {
	_, ts := newAdmissionTestServer(t, newFakeStore())

	status, body := getJSON(t, ts.URL+"/v1/admission")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/admission: %d %s", status, body)
	}
	var st admissionState
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.LadderStep != 0 || st.ForcedStep != -1 || st.InFlightCap != DefaultMaxInFlight || st.RateLimited {
		t.Fatalf("idle admission state: %+v", st)
	}

	if status, body := postJSON(t, ts.URL+"/v1/admission", `{"force_step": 7}`); status != http.StatusBadRequest {
		t.Fatalf("force_step 7: %d %s, want 400", status, body)
	}
	if status, body := postJSON(t, ts.URL+"/v1/admission", `{"bogus": 1}`); status != http.StatusBadRequest {
		t.Fatalf("unknown field: %d %s, want 400", status, body)
	}

	st = forceStep(t, ts.URL, 2)
	if st.LadderStep != 2 || st.ForcedStep != 2 {
		t.Fatalf("forced state: %+v", st)
	}
	st = forceStep(t, ts.URL, -1)
	if st.ForcedStep != -1 {
		t.Fatalf("restored state: %+v", st)
	}
}

// TestLadderRungByteDeterminism walks every rung of the degradation
// ladder and pins invariant D13: for a fixed (model version, request,
// rung) the body is byte-identical — and a coarse body is exactly the
// full body of the budget-quantized request.
func TestLadderRungByteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	_, ts := newAdmissionTestServer(t, store, func(o *Options) {
		o.Ladder = qos.LadderOptions{Dwell: 1}
	})

	// Step 0 baseline: budget 10 sits on the default coarse grid
	// (quantum 5), so it is exactly what budget 12 degrades to.
	status, hdr, bodyQ := postAs(t, ts.URL+"/v1/dispatch", "", dispatchWithBudget(10))
	if status != http.StatusOK {
		t.Fatalf("baseline dispatch: %d %s", status, bodyQ)
	}
	if got := hdr.Get(rungHeader); got != rungFull {
		t.Fatalf("baseline rung %q, want %q", got, rungFull)
	}

	// Step 1: a miss is served as the quantized request — here a cache
	// hit on the budget-10 plan, byte-identical to the full-path bytes.
	forceStep(t, ts.URL, 1)
	for i := 0; i < 2; i++ {
		status, hdr, body := postAs(t, ts.URL+"/v1/dispatch", "", dispatchWithBudget(12))
		if status != http.StatusOK {
			t.Fatalf("coarse dispatch %d: %d %s", i, status, body)
		}
		if got := hdr.Get(rungHeader); got != rungCoarse {
			t.Fatalf("coarse rung %q, want %q", got, rungCoarse)
		}
		if string(body) != string(bodyQ) {
			t.Fatalf("coarse body differs from the quantized request's full body:\n%s\n%s", body, bodyQ)
		}
	}

	// Step 1 compute path: an uncached quantum computes at the coarse
	// budget; the cached result must later be byte-identical to a plain
	// full dispatch at that budget.
	status, hdr, bodyC := postAs(t, ts.URL+"/v1/dispatch", "", dispatchWithBudget(17))
	if status != http.StatusOK || hdr.Get(rungHeader) != rungCoarse {
		t.Fatalf("coarse compute: %d rung %q %s", status, hdr.Get(rungHeader), bodyC)
	}

	// Step 2: misses get the deterministic all-accurate overload body
	// with a constant reason; cache hits still serve healthy bytes.
	forceStep(t, ts.URL, 2)
	status, hdr, bodyX := postAs(t, ts.URL+"/v1/dispatch", "", dispatchWithBudget(40))
	if status != http.StatusOK || hdr.Get(rungHeader) != rungExact {
		t.Fatalf("exact rung: %d rung %q %s", status, hdr.Get(rungHeader), bodyX)
	}
	var xr DispatchResponse
	if err := json.Unmarshal(bodyX, &xr); err != nil {
		t.Fatal(err)
	}
	if !xr.Degraded || xr.Reason != overloadReason || xr.DispatchID != "" {
		t.Fatalf("overload body: %s", bodyX)
	}
	if _, _, again := postAs(t, ts.URL+"/v1/dispatch", "", dispatchWithBudget(40)); string(again) != string(bodyX) {
		t.Fatalf("overload body not deterministic:\n%s\n%s", bodyX, again)
	}
	status, hdr, body := postAs(t, ts.URL+"/v1/dispatch", "", dispatchWithBudget(10))
	if status != http.StatusOK || hdr.Get(rungHeader) != rungCached || string(body) != string(bodyQ) {
		t.Fatalf("cached rung at step 2: %d rung %q", status, hdr.Get(rungHeader))
	}

	// Step 3: misses are shed with 429 + Retry-After; hits still serve.
	forceStep(t, ts.URL, 3)
	status, hdr, body = postAs(t, ts.URL+"/v1/dispatch", "", dispatchWithBudget(50))
	if status != http.StatusTooManyRequests || hdr.Get(rungHeader) != rungReject {
		t.Fatalf("reject rung: %d rung %q %s", status, hdr.Get(rungHeader), body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatalf("ladder 429 without Retry-After header")
	}
	status, hdr, body = postAs(t, ts.URL+"/v1/dispatch", "", dispatchWithBudget(10))
	if status != http.StatusOK || hdr.Get(rungHeader) != rungCached || string(body) != string(bodyQ) {
		t.Fatalf("cached rung at step 3: %d rung %q", status, hdr.Get(rungHeader))
	}

	// Recovery: control returns to the load controller and the idle
	// server steps down one rung per dispatch (Dwell 1). The overload
	// body served for budget 40 must NOT have been cached — its healthy
	// recomputation is a real plan, and the coarse budget-15 plan is
	// byte-identical to a plain budget-15 dispatch (D13 transparency).
	forceStep(t, ts.URL, -1)
	var last []byte
	var lastHdr http.Header
	for i := 0; i < 2*qos.LadderSteps; i++ {
		status, lastHdr, last = postAs(t, ts.URL+"/v1/dispatch", "", dispatchWithBudget(40))
		if status == http.StatusOK && lastHdr.Get(rungHeader) == rungFull {
			break
		}
	}
	if lastHdr.Get(rungHeader) != rungFull {
		t.Fatalf("ladder did not recover to full service: rung %q %s", lastHdr.Get(rungHeader), last)
	}
	var hr DispatchResponse
	if err := json.Unmarshal(last, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Degraded || string(last) == string(bodyX) {
		t.Fatalf("overload fallback leaked into the healthy plan cache: %s", last)
	}
	status, _, body15 := postAs(t, ts.URL+"/v1/dispatch", "", dispatchWithBudget(15))
	if status != http.StatusOK || string(body15) != string(bodyC) {
		t.Fatalf("coarse body differs from the plain body at the quantized budget:\n%s\n%s", bodyC, body15)
	}
}

// TestDegradeRecoverPlanCache is the degrade->recover regression: a
// degraded (model unavailable) body must never be stored under — or
// later served from — the healthy plan key.
func TestDegradeRecoverPlanCache(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore() // pso.json missing: dispatch degrades
	_, ts := newAdmissionTestServer(t, store)

	status, degradedBody := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody)
	if status != http.StatusOK {
		t.Fatalf("degraded dispatch: %d %s", status, degradedBody)
	}
	var dr DispatchResponse
	if err := json.Unmarshal(degradedBody, &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Degraded {
		t.Fatalf("missing model did not degrade: %s", degradedBody)
	}

	// The model appears; the same request must now serve healthily —
	// not replay the degraded bytes from any cache layer.
	store.Put("pso.json", trainedModelJSON(t))
	status, healthy := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody)
	if status != http.StatusOK {
		t.Fatalf("recovered dispatch: %d %s", status, healthy)
	}
	var hr DispatchResponse
	if err := json.Unmarshal(healthy, &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Degraded || hr.DispatchID == "" {
		t.Fatalf("dispatch after recovery still degraded: %s", healthy)
	}
	// And the now-cached healthy plan replays byte-identically.
	if _, cached := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody); string(cached) != string(healthy) {
		t.Fatalf("cached replay differs after recovery:\n%s\n%s", healthy, cached)
	}
}

// TestLadderStateSurvivesPromoteRollback: promote and rollback swap
// model versions, not load state — a forced ladder step (and the
// degradation it implies) must hold across both.
func TestLadderStateSurvivesPromoteRollback(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	opts := pilotOptions(store)
	opts.Ladder = qos.LadderOptions{Dwell: 1}
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	status, body1 := postJSON(t, ts.URL+"/v1/dispatch", dispatchBody)
	if status != http.StatusOK {
		t.Fatalf("dispatch: %d %s", status, body1)
	}
	var resp1 DispatchResponse
	if err := json.Unmarshal(body1, &resp1); err != nil {
		t.Fatal(err)
	}

	forceStep(t, ts.URL, 2)

	// Drifted feedback flips the model to drifting, dark-launches a
	// shadow and auto-promotes it — all while the ladder is pinned.
	for i := 0; i < 2; i++ {
		if status, fb := postJSON(t, ts.URL+"/v1/feedback", driftedFeedback(resp1.DispatchID)); status != http.StatusOK {
			t.Fatalf("feedback %d: %d %s", i, status, fb)
		}
	}
	st := forceStep(t, ts.URL, 2) // re-read state (POST is idempotent here)
	if st.ForcedStep != 2 || st.LadderStep != 2 {
		t.Fatalf("ladder state after auto-promote: %+v", st)
	}
	// Promote invalidated the old version's plans: a fresh budget at
	// step 2 is a miss and serves the overload fallback.
	status, hdr, body := postAs(t, ts.URL+"/v1/dispatch", "", dispatchWithBudget(12))
	if status != http.StatusOK || hdr.Get(rungHeader) != rungExact {
		t.Fatalf("post-promote dispatch: %d rung %q %s", status, hdr.Get(rungHeader), body)
	}

	if status, rb := postJSON(t, ts.URL+"/v1/rollback", `{"model": "pso.json"}`); status != http.StatusOK {
		t.Fatalf("rollback: %d %s", status, rb)
	}
	status, body = getJSON(t, ts.URL+"/v1/admission")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/admission: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ForcedStep != 2 || st.LadderStep != 2 {
		t.Fatalf("ladder state after rollback: %+v", st)
	}
	status, hdr, body = postAs(t, ts.URL+"/v1/dispatch", "", dispatchWithBudget(13))
	if status != http.StatusOK || hdr.Get(rungHeader) != rungExact {
		t.Fatalf("post-rollback dispatch: %d rung %q %s", status, hdr.Get(rungHeader), body)
	}
}

// TestRateLimitedFeedbackNeverAdvancesCUSUM is the property test for
// the feedback overload path: a rate-limited drifted report — one that
// would flip the detector on acceptance — must leave zero trace in the
// drift state, however many times it is retried.
func TestRateLimitedFeedbackNeverAdvancesCUSUM(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	opts := pilotOptions(store)
	opts.Admission = &admission.Options{ClientRate: 1e-9, ClientBurst: 1}
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	status, _, body1 := postAs(t, ts.URL+"/v1/dispatch", "dispatcher", dispatchBody)
	if status != http.StatusOK {
		t.Fatalf("dispatch: %d %s", status, body1)
	}
	var resp1 DispatchResponse
	if err := json.Unmarshal(body1, &resp1); err != nil {
		t.Fatal(err)
	}

	// Burn the attacker's single token on a harmless unknown-dispatch
	// report, then hammer with drift evidence: every attempt must be
	// rejected before the body is even read.
	if status, _, body := postAs(t, ts.URL+"/v1/feedback", "attacker", `{"dispatch_id": "nope", "observations": []}`); status != http.StatusNotFound {
		t.Fatalf("token-burning feedback: %d %s, want 404", status, body)
	}
	for i := 0; i < 10; i++ {
		status, _, body := postAs(t, ts.URL+"/v1/feedback", "attacker", driftedFeedback(resp1.DispatchID))
		if status != http.StatusTooManyRequests {
			t.Fatalf("rate-limited feedback %d: %d %s, want 429", i, status, body)
		}
		if st := srv.detector.State("pso.json"); st != feedback.Healthy {
			t.Fatalf("rejected feedback advanced drift state to %v after %d attempts", st, i+1)
		}
	}

	// The identical payload from an admitted client flips the detector
	// immediately — proof the rejected copies carried real evidence.
	status, _, fb := postAs(t, ts.URL+"/v1/feedback", "reporter", driftedFeedback(resp1.DispatchID))
	if status != http.StatusOK {
		t.Fatalf("admitted feedback: %d %s", status, fb)
	}
	if st := srv.detector.State("pso.json"); st != feedback.Drifting {
		t.Fatalf("admitted drifted feedback left state %v, want drifting", st)
	}
}
