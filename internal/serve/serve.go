// Package serve is the long-running half of the paper's deployment flow
// (§4.2): where cmd/opprox-launch is the one-shot "runtime script" that
// loads models and prints environment assignments for a single job,
// opprox-serve keeps the models resident and answers dispatch requests
// over HTTP/JSON.
//
// The serving contract, in order of importance:
//
//  1. Never corrupt a job. Malformed requests, missing models and
//     corrupt model files produce classified errors or an explicitly
//     degraded all-accurate schedule — never a panic, never a silently
//     wrong schedule (the launch-layer env-key collision check and the
//     persist-layer band validation run on every load).
//  2. Degrade, don't fail. When the models for a job cannot be loaded,
//     a non-strict dispatch returns the all-accurate schedule (speedup
//     1, degradation 0) with "degraded": true, so the job still runs —
//     exactly, just without approximation. Strict requests surface the
//     error instead.
//  3. Stay deterministic. For a given (model file, params, budget) the
//     response body is byte-identical across requests, concurrent
//     clients and server restarts. Anything that varies run to run
//     (optimization wall time, cache state) is excluded from response
//     bodies and reported through /metricsz instead.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"opprox/internal/admission"
	"opprox/internal/approx"
	"opprox/internal/core"
	"opprox/internal/feedback"
	"opprox/internal/flight"
	"opprox/internal/launch"
	"opprox/internal/lifecycle"
	"opprox/internal/obs"
	"opprox/internal/qos"
	"opprox/internal/retrain"
)

// DefaultTimeout bounds one dispatch request end to end (model load,
// including retries, plus optimization).
const DefaultTimeout = 10 * time.Second

// maxRequestBytes bounds a request body; job configurations are small.
const maxRequestBytes = 1 << 20

// Options configures a Server.
type Options struct {
	// Store is where model files are read from. A store that also
	// implements Put (FileStore does) lets the lifecycle layer persist
	// shadow and promoted versions; a read-only store keeps them in
	// memory only.
	Store Store
	// Timeout is the per-request budget (default DefaultTimeout).
	Timeout time.Duration
	// Registry tunes model loading (retry count, backoff base).
	Registry RegistryOptions
	// Drift tunes the feedback drift detector (window sizes, exceedance
	// fraction, CUSUM thresholds).
	Drift feedback.Options
	// Lifecycle tunes the shadow/promotion manager (error windows,
	// auto-promotion).
	Lifecycle lifecycle.Options
	// FeedbackLog, when non-nil, receives every accepted feedback
	// observation as an append-only JSONL entry (see feedback.OpenLog).
	FeedbackLog *feedback.Log
	// RecordCap bounds the in-memory dispatch-record store feedback
	// reports are matched against (default feedback.DefaultRecordCap).
	RecordCap int
	// DisableAutoRecalibrate turns off the drift response: models still
	// flip to drifting/stale, but no shadow is created automatically.
	DisableAutoRecalibrate bool
	// PlanCacheCap bounds the dispatch-plan cache (0: DefaultPlanCacheCap;
	// negative: disable caching — every dispatch recomputes).
	PlanCacheCap int
	// FrontLibrary switches every model this server loads onto the
	// Pareto-front plan library (core.Trained.EnableFrontLibrary):
	// models persisted without a library build one at load time, before
	// the version starts serving. Applies across the whole lifecycle —
	// first load, hot reload, shadow recalibration, promote, rollback.
	FrontLibrary bool
	// Admission configures ingress rate limiting (per-client and global
	// token buckets, invalid-body lockout) on /v1/dispatch and
	// /v1/feedback. Nil disables rate limiting entirely; the in-flight
	// gate and degradation ladder run regardless.
	Admission *admission.Options
	// MaxInFlight caps concurrent dispatch computations (the abandoned-
	// goroutine bound after timeouts, and the ladder's load gauge).
	// 0: DefaultMaxInFlight; negative: uncapped (no gate).
	MaxInFlight int
	// Ladder tunes the degradation ladder's thresholds and dwell (zero
	// value: qos defaults). Invalid thresholds panic in New — they are
	// a programming error, not runtime input.
	Ladder qos.LadderOptions
	// CoarseQuantum is the budget grid of ladder step 1 (0:
	// DefaultCoarseQuantum; negative: no quantization — step 1 computes
	// misses at their exact budget).
	CoarseQuantum float64
	// Retrain enables the online retraining pipeline: POST /v1/retrain
	// runs it synchronously, and a model flipping to stale triggers a
	// background run. Requires FeedbackLog (the pipeline replays it).
	Retrain bool
	// RetrainOpts tunes retrain runs (min samples, redetect threshold,
	// holdout fraction, seed); zero value uses retrain defaults.
	RetrainOpts retrain.Options
	// Proactive enables the Capri-style proactive controller: between
	// retrains the confidence-banded model runs open-loop, and observed
	// degradation residuals feed back as a budget correction on
	// subsequent dispatches (see controller.go, DESIGN.md §16).
	Proactive bool
	// CorrectionQuantum is the grid the budget correction is quantized
	// onto (0: DefaultCorrectionQuantum) — quantization bounds how many
	// distinct corrected budgets one client budget can map to, which is
	// what keeps the plan cache effective under correction.
	CorrectionQuantum float64
	// CorrectionMax clamps the correction on the log1p-degradation scale
	// (0: DefaultCorrectionMax).
	CorrectionMax float64
}

// Server answers dispatch requests against a model registry. Create with
// New; serve its Handler.
type Server struct {
	reg     *Registry
	timeout time.Duration

	// Closed-loop state: dispatch records awaiting feedback, the drift
	// detector, the telemetry log and the model-lifecycle manager.
	records   *feedback.Records
	detector  *feedback.Detector
	flog      *feedback.Log
	mgr       *lifecycle.Manager
	autoRecal bool
	retrainer *retrain.Retrainer
	ctrl      *controller

	// Dispatch acceleration: the plan cache answers repeat dispatches
	// from cached bytes; the batcher coalesces concurrent misses into one
	// batched Optimize pass. Both are transparent — see DESIGN.md §12.
	plans *planCache
	batch *flight.Batcher[planWork, []byte]

	// Admission control: the rate limiter (nil when disabled), the
	// in-flight computation gate (nil when uncapped), the degradation
	// ladder, and the recent-timeout window feeding its pressure
	// signal. See admission.go and DESIGN.md §15.
	limiter       *admission.Limiter
	gate          *admission.Gate
	ladder        *qos.Ladder
	timeouts      *qos.RateWindow
	coarseQuantum float64

	// cluster is non-nil when this server is one replica of a sharded
	// fleet (ConfigureCluster); nil serves standalone.
	cluster *cluster
}

// New builds a Server over a model store.
func New(opts Options) *Server {
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.Store == nil {
		opts.Store = FileStore{}
	}
	regOpts := opts.Registry
	if opts.FrontLibrary {
		// Chain rather than replace: a caller-provided hook still runs,
		// after the library is in place.
		callerLoad := regOpts.OnLoad
		regOpts.OnLoad = func(tr *core.Trained) error {
			if err := tr.EnableFrontLibrary(); err != nil {
				return err
			}
			if callerLoad != nil {
				return callerLoad(tr)
			}
			return nil
		}
	}
	reg := NewRegistry(opts.Store, regOpts)
	var pub lifecycle.Publisher
	if p, ok := opts.Store.(lifecycle.Publisher); ok {
		pub = p
	}
	ladder, err := qos.NewLadder(opts.Ladder)
	if err != nil {
		panic(err) // misconfigured thresholds are a programming error
	}
	s := &Server{
		reg:           reg,
		timeout:       opts.Timeout,
		records:       feedback.NewRecords(opts.RecordCap),
		detector:      feedback.NewDetector(opts.Drift),
		flog:          opts.FeedbackLog,
		autoRecal:     !opts.DisableAutoRecalibrate,
		plans:         newPlanCache(opts.PlanCacheCap),
		ladder:        ladder,
		timeouts:      qos.NewRateWindow(0, 0),
		coarseQuantum: opts.CoarseQuantum,
	}
	if s.coarseQuantum == 0 {
		s.coarseQuantum = DefaultCoarseQuantum
	}
	if opts.MaxInFlight >= 0 {
		n := opts.MaxInFlight
		if n == 0 {
			n = DefaultMaxInFlight
		}
		s.gate = admission.NewGate(n)
	}
	if opts.Admission != nil {
		s.limiter = admission.NewLimiter(*opts.Admission)
	}
	s.batch = flight.NewBatcher(s.runPlanBatch)
	// Every live-version swap (promote/rollback/reload) drops the old
	// version's cached plans; a caller-provided hook still runs after.
	lcOpts := opts.Lifecycle
	callerSwap := lcOpts.OnSwap
	lcOpts.OnSwap = func(name string) {
		s.plans.invalidateModel(name)
		if callerSwap != nil {
			callerSwap(name)
		}
	}
	if opts.FrontLibrary {
		// The lifecycle manager loads models outside the registry (first
		// resolve, reload, recalibration clone), so the hook rides both
		// paths.
		callerLoad := lcOpts.OnLoad
		lcOpts.OnLoad = func(tr *core.Trained) error {
			if err := tr.EnableFrontLibrary(); err != nil {
				return err
			}
			if callerLoad != nil {
				return callerLoad(tr)
			}
			return nil
		}
	}
	s.mgr = lifecycle.NewManager(reg, pub, lcOpts)
	if opts.Proactive {
		s.ctrl = newController(opts.CorrectionQuantum, opts.CorrectionMax)
	}
	if opts.Retrain && opts.FeedbackLog != nil {
		rt, err := retrain.NewRetrainer(retrain.Config{
			LogPath: opts.FeedbackLog.Path(),
			Source:  s.mgr,
			Pub:     s.mgr,
			Opts:    opts.RetrainOpts,
			// The extractor backfills dispatch context for log entries
			// written by older builds from the in-memory record store —
			// via a copy-on-read snapshot, never under the store's lock.
			Backfill: func(model string) map[string]*feedback.DispatchRecord {
				byID := make(map[string]*feedback.DispatchRecord)
				for _, rec := range s.records.Snapshot() {
					if rec.Model == model {
						byID[rec.ID] = rec
					}
				}
				return byID
			},
		})
		if err != nil {
			panic(err) // both halves are wired above; failure is a programming error
		}
		s.retrainer = rt
	}
	return s
}

// Registry exposes the model registry (tests and the reload endpoint).
func (s *Server) Registry() *Registry { return s.reg }

// Lifecycle exposes the model-lifecycle manager (tests, opprox-pilot).
func (s *Server) Lifecycle() *lifecycle.Manager { return s.mgr }

// Handler returns the HTTP API:
//
//	POST /v1/dispatch  one job dispatch (DispatchRequest -> DispatchResponse)
//	POST /v1/feedback  realized per-phase QoS for a served dispatch
//	GET  /v1/models    lifecycle view: versions, health, shadow telemetry
//	POST /v1/promote   make a model's shadow version live
//	POST /v1/rollback  restore a model's previous live version
//	POST /v1/retrain   synchronous telemetry retrain; winner dark-launched as shadow
//	POST /v1/reload    hot-reload cached models, last-good on failure
//	GET  /v1/cluster   shard topology: replicas + model ownership
//	GET  /v1/admission admission/ladder state (POST {"force_step": N} pins it)
//	GET  /healthz      liveness + cached-model count
//	GET  /metricsz     obs.Default JSON snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/dispatch", s.handleDispatch)
	mux.HandleFunc("/v1/feedback", s.handleFeedback)
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/promote", s.handlePromote)
	mux.HandleFunc("/v1/rollback", s.handleRollback)
	mux.HandleFunc("/v1/retrain", s.handleRetrain)
	mux.HandleFunc("/v1/reload", s.handleReload)
	mux.HandleFunc("/v1/cluster", s.handleCluster)
	mux.HandleFunc("/v1/admission", s.handleAdmission)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metricsz", s.handleMetrics)
	return mux
}

// DispatchRequest is the body of POST /v1/dispatch. It embeds the job
// configuration file format (launch.JobConfig) unchanged — "model_path"
// names a file inside the server's store — plus serving-only fields.
type DispatchRequest struct {
	launch.JobConfig
	// Strict surfaces model-unavailable errors instead of degrading to
	// the all-accurate schedule.
	Strict bool `json:"strict,omitempty"`
}

// DispatchResponse is the body of a successful dispatch. It contains no
// wall-clock or cache-state fields: the same (model file, params,
// budget) must produce byte-identical bodies on every request.
type DispatchResponse struct {
	App    string  `json:"app"`
	Budget float64 `json:"budget"`
	// Phases and Levels are the chosen schedule; Levels[p][b] is block
	// b's approximation level during phase p.
	Phases int     `json:"phases"`
	Levels [][]int `json:"levels"`
	// Env is the schedule rendered as the environment assignments the
	// job should be launched with.
	Env []string `json:"env"`
	// Speedup and Degradation are the model's conservative predictions
	// (1 and 0 on the degraded path: the job runs exactly).
	Speedup     float64 `json:"predicted_speedup"`
	Degradation float64 `json:"predicted_degradation"`
	// Degraded marks an all-accurate fallback schedule returned because
	// the models were unavailable; Reason says why.
	Degraded bool   `json:"degraded"`
	Reason   string `json:"degraded_reason,omitempty"`
	// DispatchID keys later feedback (POST /v1/feedback) back to this
	// dispatch. It is a content hash of (model, version, request,
	// schedule) — deterministic, no clocks or randomness — so identical
	// requests share an ID by construction. Empty on the degraded path:
	// there is no model prediction to give feedback on.
	DispatchID string `json:"dispatch_id,omitempty"`
	// ModelVersion is the content-hash version of the model file that
	// produced the schedule.
	ModelVersion string `json:"model_version,omitempty"`
	// PhasePredictions mirror Levels phase by phase: the model's
	// predicted speedup and degradation for each served phase — the
	// baseline a client's realized per-phase feedback is judged against.
	PhasePredictions []PhasePrediction `json:"phase_predictions,omitempty"`
}

// PhasePrediction is one phase's predicted speedup and QoS degradation.
type PhasePrediction struct {
	Speedup     float64 `json:"speedup"`
	Degradation float64 `json:"degradation"`
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error  string `json:"error"`
	Detail string `json:"detail"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := marshalBody(v)
	if err != nil {
		http.Error(w, `{"error":"internal","detail":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	writeBody(w, status, b)
}

// marshalBody renders the canonical wire form of a response value — the
// same bytes whether they are written directly, cached, or replayed.
func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("encoding response: %w", err)
	}
	return append(b, '\n'), nil
}

func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, err error) {
	obs.Inc("serve.http.error." + errCode(err))
	writeJSON(w, httpStatus(err), errorBody{Error: errCode(err), Detail: err.Error()})
}

func (s *Server) handleDispatch(w http.ResponseWriter, req *http.Request) {
	done := obs.Timer("serve.http.dispatch")
	defer done()
	obs.Inc("serve.dispatch.requests")
	if req.Method != http.MethodPost {
		writeError(w, fmt.Errorf("%w: %s not allowed on /v1/dispatch", ErrBadRequest, req.Method))
		return
	}
	// Locked-out clients are rejected at the ingress replica, before
	// any body work or proxy hop; the lockout check charges no tokens,
	// so it cannot double-count with the owner's Allow below.
	client := clientKey(req)
	if !forwarded(req) && s.rejectLockedOut(w, client) {
		return
	}
	// The raw body is retained so a sharded proxy hop forwards it
	// verbatim — re-marshaling could reorder fields and break the
	// byte-identity contract across replicas.
	raw, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxRequestBytes))
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading body: %v", ErrBadRequest, err))
		return
	}
	var dreq DispatchRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&dreq); err != nil {
		s.noteFailure(req)
		writeError(w, fmt.Errorf("%w: decoding body: %v", ErrBadRequest, err))
		return
	}
	if err := dreq.Validate(); err != nil {
		s.noteFailure(req)
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	if s.proxyToOwner(w, req, dreq.ModelPath, "/v1/dispatch", raw) {
		return
	}
	// Rate limits are charged here, at the replica that owns the model
	// (the ingress forwards the client identity in clientHeader), so a
	// proxied request is counted exactly once.
	if !s.admit(w, client, "/v1/dispatch") {
		return
	}
	// Proactive correction (controller.go): the request proceeds with a
	// tightened budget, and the response body is exactly the full body of
	// the corrected request — the same idiom as the coarse ladder rung.
	if s.ctrl != nil {
		if corr := s.ctrl.correction(dreq.ModelPath); corr > 0 {
			obs.Inc("serve.controller.corrected")
			w.Header().Set(correctionHeader, formatCorrection(corr))
			dreq.Budget = correctedBudget(dreq.Budget, corr)
			w.Header().Set(correctedBudgetHeader, formatCorrection(dreq.Budget))
		}
	}

	ctx, cancel := context.WithTimeout(req.Context(), s.timeout)
	defer cancel()
	body, degraded, rung, err := s.dispatch(ctx, &dreq)
	if rung != "" {
		w.Header().Set(rungHeader, rung)
	}
	if err != nil {
		if errors.Is(err, ErrOverCapacity) {
			setRetryAfter(w, rejectRetryAfter)
		}
		writeError(w, err)
		return
	}
	if degraded {
		obs.Inc("serve.dispatch.degraded")
	}
	writeBody(w, http.StatusOK, body)
}

// dispatch serves one request at the degradation ladder's current step
// (admission.go has the rung taxonomy; DESIGN.md §15 the invariants).
// Plan-cache hits are served at every step — they are the cheapest
// possible answer and already byte-identical to fresh computation
// (D10) — so degradation only changes what happens on a miss.
func (s *Server) dispatch(ctx context.Context, dreq *DispatchRequest) (body []byte, degraded bool, rung string, err error) {
	step := s.ladderStep()
	if step == 0 {
		body, degraded, err = s.computeDispatch(ctx, dreq)
		return body, degraded, rungFull, err
	}

	obs.Inc("serve.ladder.degraded")
	if body := s.cachedBody(dreq); body != nil {
		obs.Inc("serve.ladder.rung.cached")
		return body, false, rungCached, nil
	}
	// Coarse fallback: the same request with its budget quantized down
	// onto the coarse grid. The coarse body is exactly the full body of
	// the quantized request — deterministic (D13) and shared across
	// every budget in the same quantum, which is what sheds load.
	coarse := *dreq
	coarse.Budget = quantizeBudget(dreq.Budget, s.coarseQuantum)
	if coarse.Budget != dreq.Budget {
		if body := s.cachedBody(&coarse); body != nil {
			obs.Inc("serve.ladder.rung.coarse")
			return body, false, rungCoarse, nil
		}
	}
	switch step {
	case 1:
		obs.Inc("serve.ladder.rung.coarse")
		body, degraded, err = s.computeDispatch(ctx, &coarse)
		return body, degraded, rungCoarse, err
	case 2:
		obs.Inc("serve.ladder.rung.exact")
		body, err = overloadBody(dreq)
		return body, err == nil, rungExact, err
	default:
		obs.Inc("serve.ladder.rung.reject")
		return nil, false, rungReject,
			fmt.Errorf("%w: degradation ladder step %d sheds uncached dispatches", ErrOverCapacity, step)
	}
}

// cachedBody returns the cached response bytes for dreq against the
// current live version (re-arming the feedback loop exactly like the
// dispatchBody fast path), or nil on a miss.
func (s *Server) cachedBody(dreq *DispatchRequest) []byte {
	ver, ok := s.mgr.LiveVersion(dreq.ModelPath)
	if !ok {
		return nil
	}
	kb := planKeyPool.Get().(*planKey)
	appendPlanKey(kb, dreq, ver)
	e := s.plans.get(kb.buf)
	kb.release()
	if e == nil {
		return nil
	}
	s.records.Put(e.rec)
	s.evalShadow(dreq, e.rec.Levels)
	return e.body
}

// computeDispatch runs dispatchBody under the in-flight gate and the
// request's context: the optimizer is not context-aware, so the work
// runs in a goroutine and the request gives up (504) when the deadline
// fires first. The gate slot is taken *before* the goroutine is
// spawned and released by the goroutine itself, so a burst of
// timed-out requests abandons at most Cap running computations — the
// rest fail their Acquire and never start (the goroutine-leak fix).
// Timed-out and completed requests feed the timeout window the ladder
// reads as pressure.
func (s *Server) computeDispatch(ctx context.Context, dreq *DispatchRequest) ([]byte, bool, error) {
	type result struct {
		body     []byte
		degraded bool
		err      error
	}
	if s.gate != nil {
		if err := s.gate.Acquire(ctx); err != nil {
			obs.Inc("serve.dispatch.queue_timeout")
			obs.Inc("serve.dispatch.timeout")
			s.timeouts.Observe(true)
			return nil, false, err
		}
	}
	ch := make(chan result, 1)
	go func() {
		if s.gate != nil {
			defer s.gate.Release()
		}
		body, degraded, err := s.dispatchBody(ctx, dreq)
		ch <- result{body, degraded, err}
	}()
	select {
	case r := <-ch:
		s.timeouts.Observe(false)
		return r.body, r.degraded, r.err
	case <-ctx.Done():
		obs.Inc("serve.dispatch.timeout")
		s.timeouts.Observe(true)
		return nil, false, ctx.Err()
	}
}

// planWork is one queued dispatch computation: the request plus the
// live model pinned at resolution time, so every member of a batch is
// computed against exactly the version its cache key names. ctx is the
// submitting request's context — the batch pass sheds items whose
// caller already gave up instead of optimizing for nobody.
type planWork struct {
	ctx  context.Context
	dreq *DispatchRequest
	tr   *core.Trained
	ver  string
}

// dispatchBody produces the serialized response for one dispatch.
//
// Fast path: if the model is already resolved, the plan-cache key is
// built into pooled scratch and looked up — a hit returns the cached
// bytes with zero heap allocations (a test pins this). Miss path: the
// live model is resolved (possibly degrading), then the computation is
// coalesced through the batcher — concurrent identical dispatches
// collapse onto one slot, concurrent distinct dispatches run as one
// batched pass — and the result lands in the plan cache.
func (s *Server) dispatchBody(ctx context.Context, dreq *DispatchRequest) (body []byte, degraded bool, err error) {
	// Re-arming the feedback loop on a hit (records.Put, evalShadow)
	// happens inside cachedBody: the record may have been evicted from
	// the FIFO store since the plan was cached, and a dark-launched
	// shadow still sees every dispatch, cached or not.
	if body := s.cachedBody(dreq); body != nil {
		return body, false, nil
	}

	tr, ver, err := s.liveModel(ctx, dreq.ModelPath)
	if err != nil {
		if dreq.Strict || !errors.Is(err, ErrModelUnavailable) {
			return nil, false, err
		}
		// Degradation contract: the job still launches, with the
		// all-accurate schedule. OPPROX_PHASES=1 and no per-block
		// variables decodes (launch.DecodeEnv) to level 0 everywhere for
		// any block set, so the fallback needs no model knowledge. Never
		// cached: the degraded body embeds the failure reason, and the
		// path does no optimization worth saving.
		body, merr := marshalBody(&DispatchResponse{
			App:      dreq.App,
			Budget:   dreq.Budget,
			Phases:   1,
			Levels:   [][]int{{}},
			Env:      []string{"OPPROX_PHASES=1"},
			Speedup:  1,
			Degraded: true,
			Reason:   err.Error(),
		})
		if merr != nil {
			return nil, false, merr
		}
		return body, true, nil
	}

	// Coalesce the computation under the same key the plan cache uses —
	// with the version pinned here, so a promote landing mid-batch can
	// never mix versions within one response. Forget after Do keeps the
	// batcher bounded (the plan cache is the durable layer) and makes
	// errors retryable.
	kb := planKeyPool.Get().(*planKey)
	appendPlanKey(kb, dreq, ver)
	key := string(kb.buf)
	kb.release()
	wk := planWork{ctx: ctx, dreq: dreq, tr: tr, ver: ver}
	body, err, _ = s.batch.Do(key, wk)
	s.batch.Forget(key)
	if err != nil && flight.TransientContextError(err) && ctx.Err() == nil {
		// A coalesced flight was shed on *another* caller's expired
		// deadline; ours is alive, so retry as a fresh flight (the
		// batcher did not cache the transient error).
		obs.Inc("serve.batch.shed_retry")
		body, err, _ = s.batch.Do(key, wk)
		s.batch.Forget(key)
	}
	if err != nil {
		return nil, false, err
	}
	return body, false, nil
}

// runPlanBatch is the batcher's batch function: one pass computing every
// pending dispatch. The computations run sequentially in the leader
// goroutine, so the optimizer's pooled arena scratch is reused across
// the whole batch instead of contended across goroutines. Each result
// depends only on its own (request, pinned model) — grouping can never
// change a body (invariant D12).
func (s *Server) runPlanBatch(keys []string, works []planWork) ([][]byte, []error) {
	bodies := make([][]byte, len(works))
	errs := make([]error, len(works))
	for i, wk := range works {
		bodies[i], errs[i] = s.computePlan(keys[i], wk)
	}
	return bodies, errs
}

// computePlan optimizes one dispatch against its pinned model version,
// records it for the feedback loop, dark-launch-evaluates any shadow,
// serializes the response, and installs the bytes in the plan cache.
func (s *Server) computePlan(key string, wk planWork) ([]byte, error) {
	dreq, tr, ver := wk.dreq, wk.tr, wk.ver
	if wk.ctx != nil {
		if err := wk.ctx.Err(); err != nil {
			// The submitting request already timed out or hung up:
			// shed the work instead of optimizing for nobody. The
			// context error is transient to the batcher, so a later
			// identical dispatch recomputes instead of inheriting it.
			obs.Inc("serve.batch.shed")
			return nil, err
		}
	}
	plan, err := launch.DispatchTrained(&dreq.JobConfig, tr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrOptimize, err)
	}
	levels := make([][]int, plan.Schedule.Phases)
	for ph, cfg := range plan.Schedule.Levels {
		levels[ph] = append([]int{}, cfg...)
	}

	// Record the dispatch for the feedback loop: its deterministic ID
	// plus the raw predictions and confidence bands each phase was served
	// under (the exceedance baseline for the drift detector).
	diags := make([]core.PhaseDiag, len(levels))
	preds := make([]PhasePrediction, len(levels))
	for ph := range levels {
		diags[ph], err = tr.DiagnosePhase(dreq.Params, ph, approx.Config(levels[ph]))
		if err != nil {
			return nil, fmt.Errorf("%w: diagnosing served schedule: %v", ErrOptimize, err)
		}
		preds[ph] = PhasePrediction{
			Speedup:     core.SpeedupFromScale(diags[ph].SpeedupRaw),
			Degradation: core.DegradationFromScale(diags[ph].DegRaw),
		}
	}
	id := dispatchID(dreq, ver, levels)
	rec := &feedback.DispatchRecord{
		ID:      id,
		Model:   dreq.ModelPath,
		Version: ver,
		App:     dreq.App,
		Budget:  dreq.Budget,
		Params:  dreq.Params,
		Phases:  len(levels),
		Levels:  levels,
		Diags:   diags,
	}
	s.records.Put(rec)
	s.evalShadow(dreq, levels)

	body, err := marshalBody(&DispatchResponse{
		App:              dreq.App,
		Budget:           dreq.Budget,
		Phases:           plan.Schedule.Phases,
		Levels:           levels,
		Env:              plan.Env,
		Speedup:          plan.Pred.Speedup,
		Degradation:      plan.Pred.Degradation,
		DispatchID:       id,
		ModelVersion:     ver,
		PhasePredictions: preds,
	})
	if err != nil {
		return nil, err
	}
	// Only now, with the exact bytes a cold request just received, does
	// the plan enter the cache — a hit replays these bytes verbatim, so
	// cache transparency (invariant D10) holds by construction.
	s.plans.put(key, dreq.ModelPath, body, rec)
	return body, nil
}

// liveModel resolves the live version of a model through the lifecycle
// manager (which installs it into the registry cache). Load and
// validation failures classify as ErrModelUnavailable — same contract as
// the registry — while context errors pass through for the 504 path.
func (s *Server) liveModel(ctx context.Context, name string) (*core.Trained, string, error) {
	tr, ver, err := s.mgr.Live(ctx, name)
	if err != nil {
		if errors.Is(err, ErrModelUnavailable) ||
			errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return nil, "", err
		}
		return nil, "", fmt.Errorf("%w: %v", ErrModelUnavailable, err)
	}
	return tr, ver, nil
}

// reloadRequest is the body of POST /v1/reload. An empty body (or empty
// model) reloads every cached model.
type reloadRequest struct {
	Model string `json:"model,omitempty"`
}

// reloadResponse reports per-model reload outcomes. Failed models keep
// serving their last-good set.
type reloadResponse struct {
	Reloaded []string          `json:"reloaded"`
	Failed   map[string]string `json:"failed,omitempty"`
}

func (s *Server) handleReload(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, fmt.Errorf("%w: %s not allowed on /v1/reload", ErrBadRequest, req.Method))
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxRequestBytes))
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading body: %v", ErrBadRequest, err))
		return
	}
	var rreq reloadRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rreq); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, fmt.Errorf("%w: decoding body: %v", ErrBadRequest, err))
		return
	}
	// A model-specific reload routes to the model's owner; an empty
	// reload is per-replica (each replica refreshes its own shard).
	if s.proxyToOwner(w, req, rreq.Model, "/v1/reload", raw) {
		return
	}
	names := s.reg.Models()
	if rreq.Model != "" {
		names = []string{rreq.Model}
	}
	ctx, cancel := context.WithTimeout(req.Context(), s.timeout)
	defer cancel()
	resp := reloadResponse{Reloaded: []string{}}
	for _, name := range names {
		changed, err := s.mgr.Reload(ctx, name)
		if err != nil {
			if resp.Failed == nil {
				resp.Failed = map[string]string{}
			}
			resp.Failed[name] = err.Error()
			continue
		}
		if changed {
			// A new live version invalidates the drift evidence gathered
			// against the old one.
			s.detector.Reset(name)
			if s.ctrl != nil {
				s.ctrl.reset(name)
			}
		}
		resp.Reloaded = append(resp.Reloaded, name)
	}
	sort.Strings(resp.Reloaded)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"models": s.reg.Len(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := obs.Default.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
