// Package serve is the long-running half of the paper's deployment flow
// (§4.2): where cmd/opprox-launch is the one-shot "runtime script" that
// loads models and prints environment assignments for a single job,
// opprox-serve keeps the models resident and answers dispatch requests
// over HTTP/JSON.
//
// The serving contract, in order of importance:
//
//  1. Never corrupt a job. Malformed requests, missing models and
//     corrupt model files produce classified errors or an explicitly
//     degraded all-accurate schedule — never a panic, never a silently
//     wrong schedule (the launch-layer env-key collision check and the
//     persist-layer band validation run on every load).
//  2. Degrade, don't fail. When the models for a job cannot be loaded,
//     a non-strict dispatch returns the all-accurate schedule (speedup
//     1, degradation 0) with "degraded": true, so the job still runs —
//     exactly, just without approximation. Strict requests surface the
//     error instead.
//  3. Stay deterministic. For a given (model file, params, budget) the
//     response body is byte-identical across requests, concurrent
//     clients and server restarts. Anything that varies run to run
//     (optimization wall time, cache state) is excluded from response
//     bodies and reported through /metricsz instead.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"opprox/internal/launch"
	"opprox/internal/obs"
)

// DefaultTimeout bounds one dispatch request end to end (model load,
// including retries, plus optimization).
const DefaultTimeout = 10 * time.Second

// maxRequestBytes bounds a request body; job configurations are small.
const maxRequestBytes = 1 << 20

// Options configures a Server.
type Options struct {
	// Store is where model files are read from.
	Store Store
	// Timeout is the per-request budget (default DefaultTimeout).
	Timeout time.Duration
	// Registry tunes model loading (retry count, backoff base).
	Registry RegistryOptions
}

// Server answers dispatch requests against a model registry. Create with
// New; serve its Handler.
type Server struct {
	reg     *Registry
	timeout time.Duration
}

// New builds a Server over a model store.
func New(opts Options) *Server {
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.Store == nil {
		opts.Store = FileStore{}
	}
	return &Server{
		reg:     NewRegistry(opts.Store, opts.Registry),
		timeout: opts.Timeout,
	}
}

// Registry exposes the model registry (tests and the reload endpoint).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the HTTP API:
//
//	POST /v1/dispatch  one job dispatch (DispatchRequest -> DispatchResponse)
//	POST /v1/reload    hot-reload cached models, last-good on failure
//	GET  /healthz      liveness + cached-model count
//	GET  /metricsz     obs.Default JSON snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/dispatch", s.handleDispatch)
	mux.HandleFunc("/v1/reload", s.handleReload)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metricsz", s.handleMetrics)
	return mux
}

// DispatchRequest is the body of POST /v1/dispatch. It embeds the job
// configuration file format (launch.JobConfig) unchanged — "model_path"
// names a file inside the server's store — plus serving-only fields.
type DispatchRequest struct {
	launch.JobConfig
	// Strict surfaces model-unavailable errors instead of degrading to
	// the all-accurate schedule.
	Strict bool `json:"strict,omitempty"`
}

// DispatchResponse is the body of a successful dispatch. It contains no
// wall-clock or cache-state fields: the same (model file, params,
// budget) must produce byte-identical bodies on every request.
type DispatchResponse struct {
	App    string  `json:"app"`
	Budget float64 `json:"budget"`
	// Phases and Levels are the chosen schedule; Levels[p][b] is block
	// b's approximation level during phase p.
	Phases int     `json:"phases"`
	Levels [][]int `json:"levels"`
	// Env is the schedule rendered as the environment assignments the
	// job should be launched with.
	Env []string `json:"env"`
	// Speedup and Degradation are the model's conservative predictions
	// (1 and 0 on the degraded path: the job runs exactly).
	Speedup     float64 `json:"predicted_speedup"`
	Degradation float64 `json:"predicted_degradation"`
	// Degraded marks an all-accurate fallback schedule returned because
	// the models were unavailable; Reason says why.
	Degraded bool   `json:"degraded"`
	Reason   string `json:"degraded_reason,omitempty"`
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error  string `json:"error"`
	Detail string `json:"detail"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"internal","detail":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

func writeError(w http.ResponseWriter, err error) {
	obs.Inc("serve.http.error." + errCode(err))
	writeJSON(w, httpStatus(err), errorBody{Error: errCode(err), Detail: err.Error()})
}

func (s *Server) handleDispatch(w http.ResponseWriter, req *http.Request) {
	done := obs.Timer("serve.http.dispatch")
	defer done()
	obs.Inc("serve.dispatch.requests")
	if req.Method != http.MethodPost {
		writeError(w, fmt.Errorf("%w: %s not allowed on /v1/dispatch", ErrBadRequest, req.Method))
		return
	}
	var dreq DispatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&dreq); err != nil {
		writeError(w, fmt.Errorf("%w: decoding body: %v", ErrBadRequest, err))
		return
	}
	if err := dreq.Validate(); err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}

	ctx, cancel := context.WithTimeout(req.Context(), s.timeout)
	defer cancel()
	resp, err := s.dispatch(ctx, &dreq)
	if err != nil {
		writeError(w, err)
		return
	}
	if resp.Degraded {
		obs.Inc("serve.dispatch.degraded")
	}
	writeJSON(w, http.StatusOK, resp)
}

// dispatch runs one request under its context: the optimizer is not
// context-aware, so the work runs in a goroutine and the request gives
// up (504) when the deadline fires first. The goroutine finishes its
// (bounded) optimization and parks its result in the buffered channel.
func (s *Server) dispatch(ctx context.Context, dreq *DispatchRequest) (*DispatchResponse, error) {
	type result struct {
		resp *DispatchResponse
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		resp, err := s.dispatchSync(ctx, dreq)
		ch <- result{resp, err}
	}()
	select {
	case r := <-ch:
		return r.resp, r.err
	case <-ctx.Done():
		obs.Inc("serve.dispatch.timeout")
		return nil, ctx.Err()
	}
}

func (s *Server) dispatchSync(ctx context.Context, dreq *DispatchRequest) (*DispatchResponse, error) {
	tr, err := s.reg.Get(ctx, dreq.ModelPath)
	if err != nil {
		if dreq.Strict || !errors.Is(err, ErrModelUnavailable) {
			return nil, err
		}
		// Degradation contract: the job still launches, with the
		// all-accurate schedule. OPPROX_PHASES=1 and no per-block
		// variables decodes (launch.DecodeEnv) to level 0 everywhere for
		// any block set, so the fallback needs no model knowledge.
		return &DispatchResponse{
			App:      dreq.App,
			Budget:   dreq.Budget,
			Phases:   1,
			Levels:   [][]int{{}},
			Env:      []string{"OPPROX_PHASES=1"},
			Speedup:  1,
			Degraded: true,
			Reason:   err.Error(),
		}, nil
	}
	plan, err := launch.DispatchTrained(&dreq.JobConfig, tr)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrOptimize, err)
	}
	levels := make([][]int, plan.Schedule.Phases)
	for ph, cfg := range plan.Schedule.Levels {
		levels[ph] = append([]int{}, cfg...)
	}
	return &DispatchResponse{
		App:         dreq.App,
		Budget:      dreq.Budget,
		Phases:      plan.Schedule.Phases,
		Levels:      levels,
		Env:         plan.Env,
		Speedup:     plan.Pred.Speedup,
		Degradation: plan.Pred.Degradation,
	}, nil
}

// reloadRequest is the body of POST /v1/reload. An empty body (or empty
// model) reloads every cached model.
type reloadRequest struct {
	Model string `json:"model,omitempty"`
}

// reloadResponse reports per-model reload outcomes. Failed models keep
// serving their last-good set.
type reloadResponse struct {
	Reloaded []string          `json:"reloaded"`
	Failed   map[string]string `json:"failed,omitempty"`
}

func (s *Server) handleReload(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, fmt.Errorf("%w: %s not allowed on /v1/reload", ErrBadRequest, req.Method))
		return
	}
	var rreq reloadRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rreq); err != nil && !errors.Is(err, io.EOF) {
		writeError(w, fmt.Errorf("%w: decoding body: %v", ErrBadRequest, err))
		return
	}
	names := s.reg.Models()
	if rreq.Model != "" {
		names = []string{rreq.Model}
	}
	ctx, cancel := context.WithTimeout(req.Context(), s.timeout)
	defer cancel()
	resp := reloadResponse{Reloaded: []string{}}
	for _, name := range names {
		if err := s.reg.Reload(ctx, name); err != nil {
			if resp.Failed == nil {
				resp.Failed = map[string]string{}
			}
			resp.Failed[name] = err.Error()
			continue
		}
		resp.Reloaded = append(resp.Reloaded, name)
	}
	sort.Strings(resp.Reloaded)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"models": s.reg.Len(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := obs.Default.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
