package serve

// The dispatch-plan cache. PR 4/5 made dispatch responses a pure
// function of (model content-hash version, canonicalized params,
// budget); this file exploits that: the serialized response body of a
// successful, non-degraded dispatch is cached under exactly that tuple,
// so a repeat dispatch is a map lookup instead of an Optimize pass.
//
// The contract (invariant D10 in DESIGN.md §12):
//
//   - Transparency. A cached body is the byte-identical serialized form
//     a fresh Optimize would produce — guaranteed structurally, because
//     the cache stores the bytes the cold path just served, and the key
//     pins every input the body depends on (model identity AND version,
//     canonicalized params, budget, app). The conformance suite pins
//     this black-box.
//   - Version safety. The key includes the live content-hash version, so
//     a promote/rollback/reload can never serve a stale plan even if
//     invalidation raced; invalidation (wired through
//     lifecycle.Options.OnSwap) exists to release memory promptly, not
//     for correctness.
//   - Bounded. LRU eviction caps memory; hit/miss/eviction/invalidation
//     counters live in obs under serve.plan.cache.*.
//   - Allocation-free hits. The key is built into pooled scratch and
//     looked up without materializing a string, so the steady-state hit
//     path performs zero heap allocations (pinned by a test and tracked
//     by BenchmarkDispatchPlanCacheHit).

import (
	"encoding/binary"
	"slices"
	"strconv"
	"sync"

	"opprox/internal/feedback"
	"opprox/internal/obs"
)

// DefaultPlanCacheCap bounds the plan cache when Options.PlanCacheCap is
// zero. Entries are small (one serialized response plus its dispatch
// record), so the default is generous.
const DefaultPlanCacheCap = 1024

// planEntry is one cached dispatch plan: the exact response bytes the
// cold path served (including the trailing newline) plus the dispatch
// record that keeps the feedback loop alive across record-store
// eviction. Entries are immutable after insertion; the intrusive
// prev/next links implement the LRU list.
type planEntry struct {
	key   string
	model string // base model name, for per-model invalidation
	body  []byte
	rec   *feedback.DispatchRecord

	prev, next *planEntry
}

// planCache is a bounded LRU over plan entries. A capacity < 0 disables
// the cache entirely (every lookup misses, nothing is stored) — the
// coalescing and conformance tests use that to force the batch path.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*planEntry
	head    *planEntry // most recently used
	tail    *planEntry // least recently used
}

func newPlanCache(capacity int) *planCache {
	if capacity == 0 {
		capacity = DefaultPlanCacheCap
	}
	return &planCache{cap: capacity, entries: map[string]*planEntry{}}
}

// get returns the entry for the key bytes, promoting it to most recently
// used. The []byte-keyed map lookup compiles without a string
// allocation, which is what keeps the hit path allocation-free.
func (c *planCache) get(key []byte) *planEntry {
	if c.cap < 0 {
		return nil
	}
	c.mu.Lock()
	e, ok := c.entries[string(key)]
	if !ok {
		c.mu.Unlock()
		obs.Inc("serve.plan.cache.miss")
		return nil
	}
	c.moveToFront(e)
	c.mu.Unlock()
	obs.Inc("serve.plan.cache.hit")
	return e
}

// put inserts a computed plan, evicting the least recently used entry
// when full. Re-inserting an existing key refreshes recency only: the
// body is identical by construction (the key pins every input).
func (c *planCache) put(key, model string, body []byte, rec *feedback.DispatchRecord) {
	if c.cap < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.moveToFront(e)
		return
	}
	if len(c.entries) >= c.cap {
		if lru := c.tail; lru != nil {
			c.unlink(lru)
			delete(c.entries, lru.key)
			obs.Inc("serve.plan.cache.evicted")
		}
	}
	e := &planEntry{key: key, model: model, body: body, rec: rec}
	c.entries[key] = e
	c.pushFront(e)
}

// invalidateModel drops every entry for a base model name — the
// lifecycle layer calls this (via Options.OnSwap) whenever the live
// version changes, so a retired version's plans release their memory
// immediately. Returns the number of entries dropped.
func (c *planCache) invalidateModel(model string) int {
	if c.cap < 0 {
		return 0
	}
	c.mu.Lock()
	dropped := 0
	for e := c.head; e != nil; {
		next := e.next
		if e.model == model {
			c.unlink(e)
			delete(c.entries, e.key)
			dropped++
		}
		e = next
	}
	c.mu.Unlock()
	if dropped > 0 {
		obs.Add("serve.plan.cache.invalidated", int64(dropped))
	}
	return dropped
}

// len reports the number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// moveToFront promotes e to most recently used (c.mu held).
func (c *planCache) moveToFront(e *planEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *planCache) pushFront(e *planEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *planCache) unlink(e *planEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// planKey is pooled scratch for building cache keys without allocating.
type planKey struct {
	buf  []byte
	keys []string
}

var planKeyPool = sync.Pool{
	New: func() any {
		return &planKey{buf: make([]byte, 0, 256), keys: make([]string, 0, 16)}
	},
}

func (kb *planKey) release() {
	kb.buf = kb.buf[:0]
	kb.keys = kb.keys[:0]
	planKeyPool.Put(kb)
}

// appendPlanKey builds the canonical cache key for (request, model
// version) into kb.buf. Every field is length-prefixed (uvarint), so the
// encoding is injective — no two distinct (model, version, app, budget,
// params) tuples share a key. Params are canonicalized by sorting the
// names and rendering each value with strconv's shortest round-trip
// float format, so two requests with the same parameter set produce the
// same key regardless of JSON field order, and any two distinct float64
// values produce distinct keys.
func appendPlanKey(kb *planKey, dreq *DispatchRequest, version string) {
	kb.buf = appendKeyField(kb.buf, dreq.ModelPath)
	kb.buf = appendKeyField(kb.buf, version)
	kb.buf = appendKeyField(kb.buf, dreq.App)
	kb.buf = appendKeyFloat(kb.buf, dreq.Budget)
	kb.buf = binary.AppendUvarint(kb.buf, uint64(len(dreq.Params)))
	for name := range dreq.Params {
		kb.keys = append(kb.keys, name)
	}
	slices.Sort(kb.keys)
	for _, name := range kb.keys {
		kb.buf = appendKeyField(kb.buf, name)
		kb.buf = appendKeyFloat(kb.buf, dreq.Params[name])
	}
}

func appendKeyField(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendKeyFloat(buf []byte, v float64) []byte {
	// Render into stack scratch first so the length prefix can precede
	// the digits without shifting them (the shortest float64 form never
	// exceeds 24 bytes, so one prefix byte always suffices — and the
	// scratch never escapes, keeping the key build allocation-free).
	var tmp [32]byte
	s := strconv.AppendFloat(tmp[:0], v, 'g', -1, 64)
	buf = append(buf, byte(len(s)))
	return append(buf, s...)
}
