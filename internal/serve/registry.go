package serve

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"time"

	"opprox/internal/core"
	"opprox/internal/flight"
	"opprox/internal/obs"
)

// Registry is the model cache behind the serving layer. Each model file
// is read and validated once (LoadTrained runs the full structural
// checks, including the confidence-band validation), then served from
// memory behind a singleflight group: concurrent first requests for the
// same model share one load, and every later request is a cache hit.
//
// Failure policy:
//
//   - Transient store reads (I/O errors other than fs.ErrNotExist) are
//     retried with exponential backoff, bounded by Retries and the
//     request context.
//   - Missing files and validation failures are permanent for this
//     attempt: they are classified as ErrModelUnavailable immediately.
//   - Load errors are never cached. The failed key is forgotten so the
//     next request retries once the store heals; until then callers
//     degrade (see Server).
//   - Reload loads the replacement off to the side and installs it
//     atomically only on success; a failed reload keeps serving the
//     last-good model set.
type Registry struct {
	store     Store
	retries   int
	retryBase time.Duration
	onLoad    func(tr *core.Trained) error

	// sleep waits for d or until ctx is done; tests stub it to keep the
	// backoff path instant.
	sleep func(ctx context.Context, d time.Duration) error

	group flight.Group[*core.Trained]
}

// RegistryOptions configures a Registry.
type RegistryOptions struct {
	// Retries is the number of additional attempts after the first for
	// transient store errors. Zero means no retry.
	Retries int
	// RetryBase is the first backoff delay; attempt k waits
	// RetryBase << (k-1). Defaults to 25ms.
	RetryBase time.Duration
	// OnLoad, when set, runs on every model the registry loads before it
	// is cached or returned — the per-model setup hook (-front-library
	// builds the Pareto-front plan library here). An error fails the
	// load and is classified like any validation failure.
	OnLoad func(tr *core.Trained) error
}

// NewRegistry builds a registry over a model store.
func NewRegistry(store Store, opts RegistryOptions) *Registry {
	if opts.RetryBase <= 0 {
		opts.RetryBase = 25 * time.Millisecond
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	return &Registry{
		store:     store,
		retries:   opts.Retries,
		retryBase: opts.RetryBase,
		onLoad:    opts.OnLoad,
		sleep:     sleepCtx,
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Get returns the cached models for name, loading them on first use.
// Concurrent callers share one load. Errors are returned but not cached:
// the next Get retries the store.
func (r *Registry) Get(ctx context.Context, name string) (*core.Trained, error) {
	tr, err, hit := r.group.Do(name, func() (*core.Trained, error) {
		return r.load(ctx, name)
	})
	if err != nil {
		// Do not let a failed load poison the cache; the store may heal
		// (model published, NFS back) and the next request should see it.
		r.group.Forget(name)
		obs.Inc("serve.model.load.failed")
		return nil, err
	}
	if hit {
		obs.Inc("serve.model.cache.hit")
	} else {
		obs.Inc("serve.model.cache.miss")
	}
	return tr, nil
}

// load is one full read+validate attempt chain against the store.
func (r *Registry) load(ctx context.Context, name string) (*core.Trained, error) {
	done := obs.Timer("serve.model.load")
	defer done()
	raw, err := r.ReadAll(ctx, name)
	if err != nil {
		return nil, err
	}
	tr, err := core.LoadTrained(bytes.NewReader(raw))
	if err != nil {
		// The file exists but fails structural validation (truncated,
		// corrupt bands, version skew): retrying the same bytes cannot
		// help.
		return nil, fmt.Errorf("%w: model %q: %v", ErrModelUnavailable, name, err)
	}
	if r.onLoad != nil {
		if err := r.onLoad(tr); err != nil {
			return nil, fmt.Errorf("%w: model %q: %v", ErrModelUnavailable, name, err)
		}
	}
	return tr, nil
}

// ReadAll returns the raw bytes of a model file under the registry's
// retry/backoff policy — the byte-level primitive the lifecycle layer
// version-hashes before deciding whether to re-validate and swap.
func (r *Registry) ReadAll(ctx context.Context, name string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt <= r.retries; attempt++ {
		if attempt > 0 {
			obs.Inc("serve.model.load.retry")
			if err := r.sleep(ctx, r.retryBase<<(attempt-1)); err != nil {
				return nil, err
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rc, err := r.store.Open(name)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				// A missing model is not transient on the timescale of one
				// request: fail now, let the caller degrade.
				return nil, fmt.Errorf("%w: model %q: %v", ErrModelUnavailable, name, err)
			}
			lastErr = err
			continue
		}
		raw, err := io.ReadAll(bufio.NewReader(rc))
		rc.Close()
		if err != nil {
			lastErr = err
			continue
		}
		return raw, nil
	}
	return nil, fmt.Errorf("%w: model %q after %d attempts: %v",
		ErrModelUnavailable, name, r.retries+1, lastErr)
}

// Install atomically places already-validated models into the cache under
// name — the lifecycle layer's promote/rollback primitive. Subsequent
// Gets are hits; an in-flight load's callers still receive its result.
func (r *Registry) Install(name string, tr *core.Trained) {
	r.group.Replace(name, tr)
}

// Forget drops the cached models for name so the next Get reloads from
// the store (used when a versioned alias is retired).
func (r *Registry) Forget(name string) {
	r.group.Forget(name)
}

// Reload atomically replaces the cached models for name with a freshly
// loaded copy. On failure the cached (last-good) models keep serving and
// the error is returned — a bad publish never takes down a model that
// was healthy.
func (r *Registry) Reload(ctx context.Context, name string) error {
	tr, err := r.load(ctx, name)
	if err != nil {
		obs.Inc("serve.model.reload.failed")
		return err
	}
	r.group.Replace(name, tr)
	obs.Inc("serve.model.reload.ok")
	return nil
}

// Models returns the names currently cached, sorted.
func (r *Registry) Models() []string { return r.group.Keys() }

// Len reports the number of cached model sets.
func (r *Registry) Len() int { return r.group.Len() }
