package serve

import (
	"context"
	"errors"
	"net/http"
)

// The serving layer's error taxonomy. Every failure a dispatch request
// can hit is classified into one of these sentinels (wrapped with
// detail), so HTTP status mapping, metrics and client handling stay
// mechanical. The contract:
//
//   - ErrBadRequest: the request itself is malformed — wrong shape,
//     missing fields, negative budget. Retrying unchanged cannot succeed.
//   - ErrModelUnavailable: the model file is missing, unreadable or fails
//     validation and no last-good model is cached. Retrying may succeed
//     once the model store heals; non-strict requests degrade to the
//     all-accurate schedule instead of surfacing this.
//   - ErrOptimize: the models loaded but optimization or schedule
//     encoding failed (unknown parameters, colliding block names).
//   - ErrNotFound: the request names an entity the server does not have —
//     an unknown dispatch ID on /v1/feedback, an unresolved model on
//     /v1/promote or /v1/rollback. Distinct from ErrModelUnavailable:
//     nothing is expected to heal; the client sent a stale or wrong name.
//   - ErrPeerUnavailable: a sharded deployment routed the request to the
//     replica that owns its model, and that replica could not be reached.
//     The request itself is fine; retrying may succeed once the peer
//     heals or the topology is rebuilt without it.
//   - ErrOverCapacity: admission control rejected the request — the
//     client is rate-limited or locked out, or the degradation ladder
//     reached its reject step. Maps to 429 with a Retry-After header;
//     retrying after the indicated delay may succeed.
//   - Request timeouts (context.DeadlineExceeded/Canceled, wrapped or
//     bare) map to 504 "timeout": the request was fine, the server ran
//     out of budget.
var (
	ErrBadRequest       = errors.New("serve: bad request")
	ErrModelUnavailable = errors.New("serve: model unavailable")
	ErrOptimize         = errors.New("serve: optimization failed")
	ErrNotFound         = errors.New("serve: not found")
	ErrPeerUnavailable  = errors.New("serve: peer unavailable")
	ErrOverCapacity     = errors.New("serve: over capacity")
)

// errCode is the machine-readable code clients switch on.
func errCode(err error) string {
	switch {
	case errors.Is(err, ErrBadRequest):
		return "bad_request"
	case errors.Is(err, ErrModelUnavailable):
		return "model_unavailable"
	case errors.Is(err, ErrOptimize):
		return "optimize_failed"
	case errors.Is(err, ErrNotFound):
		return "not_found"
	case errors.Is(err, ErrPeerUnavailable):
		return "peer_unavailable"
	case errors.Is(err, ErrOverCapacity):
		return "over_capacity"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "timeout"
	default:
		return "internal"
	}
}

// httpStatus maps the taxonomy onto HTTP statuses.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrModelUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrOptimize):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrPeerUnavailable):
		return http.StatusBadGateway
	case errors.Is(err, ErrOverCapacity):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}
