package serve

// The black-box serving conformance suite: for a fixed (model version,
// params, budget), every serving path must return byte-identical
// response bodies — cold, plan-cache hit, coalesced under concurrency,
// sharded behind one replica, and sharded across three replicas with
// proxy hops — and the identity must survive promote -> rollback cycles.
// The suite only speaks HTTP (plus one ConfigureCluster call per
// server), so any future cache, coalescing or routing change that skews
// a single byte fails here regardless of which internal layer caused it.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"opprox/internal/shard"
)

// conformanceDispatch posts the canonical dispatch request and returns
// the raw body after asserting a non-degraded 200.
func conformanceDispatch(t *testing.T, baseURL string) []byte {
	t.Helper()
	status, body := postJSON(t, baseURL+"/v1/dispatch", dispatchBody)
	if status != http.StatusOK {
		t.Fatalf("dispatch: %d %s", status, body)
	}
	var resp DispatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Fatalf("dispatch degraded: %s", body)
	}
	return body
}

func assertSameBody(t *testing.T, path string, got, want []byte) {
	t.Helper()
	if !bytes.Equal(got, want) {
		t.Fatalf("%s response differs from cold baseline:\n got %s\nwant %s", path, got, want)
	}
}

// newShardedFleet builds n in-process replicas over one shared store,
// wires them into a cluster, and returns their names and base URLs.
// Replica names are deliberately unequal to the smoke script's so the
// routing is exercised under more than one topology.
func newShardedFleet(t *testing.T, store Store, n int, opt ...func(*Options)) (names []string, urls map[string]string) {
	t.Helper()
	all := []string{"alpha", "beta", "gamma", "delta"}
	names = all[:n]
	servers := make([]*Server, n)
	urls = make(map[string]string, n)
	for i, name := range names {
		o := Options{Store: store, Registry: RegistryOptions{RetryBase: time.Microsecond}}
		for _, f := range opt {
			f(&o)
		}
		servers[i] = New(o)
		ts := httptest.NewServer(servers[i].Handler())
		t.Cleanup(ts.Close)
		urls[name] = ts.URL
	}
	for i, name := range names {
		err := servers[i].ConfigureCluster(ClusterOptions{Self: name, Replicas: urls})
		if err != nil {
			t.Fatal(err)
		}
	}
	return names, urls
}

// TestServingConformance is the five-path byte-identity matrix.
func TestServingConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)

	// Path 1+2: cold, then plan-cache hit, on a fresh standalone server.
	coldSrv := newTestServer(t, store)
	want := conformanceDispatch(t, coldSrv.URL)
	hit := conformanceDispatch(t, coldSrv.URL)
	assertSameBody(t, "plan-cache-hit", hit, want)

	// Path 3: coalesced — plan cache disabled so every request takes the
	// batcher, and a concurrent burst forces identical-key collapsing
	// and distinct-arrival batching to actually happen.
	coalSrv := newTestServer(t, store, func(o *Options) { o.PlanCacheCap = -1 })
	const burst = 16
	bodies := make([][]byte, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(coalSrv.URL+"/v1/dispatch", "application/json", strings.NewReader(dispatchBody))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Error(err)
				return
			}
			bodies[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i, b := range bodies {
		assertSameBody(t, "coalesced", b, want)
		_ = i
	}

	// Path 4: sharded, one replica — the proxy-or-serve decision always
	// lands on serve.
	_, urls1 := newShardedFleet(t, store, 1)
	for _, u := range urls1 {
		assertSameBody(t, "sharded-1-replica", conformanceDispatch(t, u), want)
	}

	// Path 5: sharded, three replicas — the dispatch reaches the owner
	// directly on one URL and via a proxy hop on the other two, and all
	// three relay identical bytes.
	names3, urls3 := newShardedFleet(t, store, 3)
	for _, name := range names3 {
		assertSameBody(t, "sharded-3-replica via "+name, conformanceDispatch(t, urls3[name]), want)
	}
}

// TestServingConformanceAcrossPromoteRollback drives a real shadow
// promote and a rollback on a standalone server: post-promote bodies
// must match a fresh server started on the promoted store (no cached
// leftovers of the old version), and post-rollback bodies must be
// byte-identical to the original cold baseline again (no cached
// leftovers of the promoted version).
func TestServingConformanceAcrossPromoteRollback(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	opts := pilotOptions(store)
	opts.Lifecycle.DisableAutoPromote = true
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	original := conformanceDispatch(t, ts.URL)
	var dr DispatchResponse
	if err := json.Unmarshal(original, &dr); err != nil {
		t.Fatal(err)
	}

	// Drive drifted feedback until a recalibrated shadow dark-launches.
	shadowed := false
	for i := 0; i < 50 && !shadowed; i++ {
		status, body := postJSON(t, ts.URL+"/v1/feedback", driftedFeedback(dr.DispatchID))
		if status != http.StatusOK {
			t.Fatalf("feedback: %d %s", status, body)
		}
		var fr feedbackResponse
		if err := json.Unmarshal(body, &fr); err != nil {
			t.Fatal(err)
		}
		shadowed = fr.ShadowCreated != ""
	}
	if !shadowed {
		t.Fatal("drift feedback never created a shadow")
	}

	if status, body := postJSON(t, ts.URL+"/v1/promote", `{"model": "pso.json"}`); status != http.StatusOK {
		t.Fatalf("promote: %d %s", status, body)
	}
	promoted := conformanceDispatch(t, ts.URL)
	if bytes.Equal(promoted, original) {
		t.Fatal("promote did not change the served plan (shadow identical to live?)")
	}
	// Cache transparency across the swap: a cached repeat and a fresh
	// server on the promoted store agree byte for byte.
	assertSameBody(t, "post-promote cache hit", conformanceDispatch(t, ts.URL), promoted)
	fresh := newTestServer(t, store)
	assertSameBody(t, "fresh server on promoted store", conformanceDispatch(t, fresh.URL), promoted)

	if status, body := postJSON(t, ts.URL+"/v1/rollback", `{"model": "pso.json"}`); status != http.StatusOK {
		t.Fatalf("rollback: %d %s", status, body)
	}
	assertSameBody(t, "post-rollback cold", conformanceDispatch(t, ts.URL), original)
	assertSameBody(t, "post-rollback cache hit", conformanceDispatch(t, ts.URL), original)
}

// TestShardedPromoteRollbackCoherence runs the lifecycle drill across a
// 3-replica fleet through a non-owner replica: dispatch, feedback,
// promote and rollback all route to the model's owner, so every replica
// serves the same version at every step (invariant D11) and the bodies
// track the standalone baseline byte for byte.
func TestShardedPromoteRollbackCoherence(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)
	names, urls := newShardedFleet(t, store, 3, func(o *Options) {
		po := pilotOptions(store)
		o.Drift = po.Drift
		o.Lifecycle = po.Lifecycle
		o.Lifecycle.DisableAutoPromote = true
	})

	tbl, err := shard.New(names...)
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := tbl.Owner("pso.json")
	client := ""
	for _, n := range names {
		if n != owner {
			client = n
			break
		}
	}
	t.Logf("owner=%s, driving everything through non-owner %s", owner, client)

	original := conformanceDispatch(t, urls[client])
	var dr DispatchResponse
	if err := json.Unmarshal(original, &dr); err != nil {
		t.Fatal(err)
	}

	// Feedback lands on the client replica, which holds no record for
	// the dispatch (the owner served it) and must forward the report.
	shadowed := false
	for i := 0; i < 50 && !shadowed; i++ {
		status, body := postJSON(t, urls[client]+"/v1/feedback", driftedFeedback(dr.DispatchID))
		if status != http.StatusOK {
			t.Fatalf("forwarded feedback: %d %s", status, body)
		}
		var fr feedbackResponse
		if err := json.Unmarshal(body, &fr); err != nil {
			t.Fatal(err)
		}
		shadowed = fr.ShadowCreated != ""
	}
	if !shadowed {
		t.Fatal("forwarded drift feedback never created a shadow on the owner")
	}

	if status, body := postJSON(t, urls[client]+"/v1/promote", `{"model": "pso.json"}`); status != http.StatusOK {
		t.Fatalf("proxied promote: %d %s", status, body)
	}
	promoted := conformanceDispatch(t, urls[client])
	if bytes.Equal(promoted, original) {
		t.Fatal("proxied promote did not change the served plan")
	}
	for _, n := range names {
		assertSameBody(t, "post-promote via "+n, conformanceDispatch(t, urls[n]), promoted)
	}

	if status, body := postJSON(t, urls[client]+"/v1/rollback", `{"model": "pso.json"}`); status != http.StatusOK {
		t.Fatalf("proxied rollback: %d %s", status, body)
	}
	for _, n := range names {
		assertSameBody(t, "post-rollback via "+n, conformanceDispatch(t, urls[n]), original)
	}
}

// TestServingConformanceFrontLibrary extends the byte-identity matrix
// with a sixth path: a server running with the Pareto-front plan library
// (-front-library) must serve bodies byte-identical to the menu-path
// baseline — cold, cached, and across a full promote -> rollback cycle,
// where the OnLoad hook has to rebuild the library for the recalibrated
// shadow and again for the restored original.
func TestServingConformanceFrontLibrary(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	store := newFakeStore()
	store.files["pso.json"] = trainedModelJSON(t)

	menuSrv := newTestServer(t, store)
	want := conformanceDispatch(t, menuSrv.URL)

	withFront := func(o *Options) { o.FrontLibrary = true }
	frontSrv := newTestServer(t, store, withFront)
	assertSameBody(t, "front-library cold", conformanceDispatch(t, frontSrv.URL), want)
	assertSameBody(t, "front-library cache hit", conformanceDispatch(t, frontSrv.URL), want)

	// Promote -> rollback on a front-library server: the shadow version is
	// recalibrated and re-loaded through the OnLoad hook, so every step
	// must still track the menu path byte for byte.
	opts := pilotOptions(store)
	opts.Lifecycle.DisableAutoPromote = true
	opts.FrontLibrary = true
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	original := conformanceDispatch(t, ts.URL)
	assertSameBody(t, "front-library pilot cold", original, want)
	var dr DispatchResponse
	if err := json.Unmarshal(original, &dr); err != nil {
		t.Fatal(err)
	}
	shadowed := false
	for i := 0; i < 50 && !shadowed; i++ {
		status, body := postJSON(t, ts.URL+"/v1/feedback", driftedFeedback(dr.DispatchID))
		if status != http.StatusOK {
			t.Fatalf("feedback: %d %s", status, body)
		}
		var fr feedbackResponse
		if err := json.Unmarshal(body, &fr); err != nil {
			t.Fatal(err)
		}
		shadowed = fr.ShadowCreated != ""
	}
	if !shadowed {
		t.Fatal("drift feedback never created a shadow")
	}
	if status, body := postJSON(t, ts.URL+"/v1/promote", `{"model": "pso.json"}`); status != http.StatusOK {
		t.Fatalf("promote: %d %s", status, body)
	}
	promoted := conformanceDispatch(t, ts.URL)
	if bytes.Equal(promoted, original) {
		t.Fatal("promote did not change the served plan")
	}
	// Menu path and front path agree on the promoted version too: a fresh
	// menu-only server over the promoted store serves the same bytes.
	menuPromoted := newTestServer(t, store)
	assertSameBody(t, "menu server on promoted store", conformanceDispatch(t, menuPromoted.URL), promoted)
	frontPromoted := newTestServer(t, store, withFront)
	assertSameBody(t, "front server on promoted store", conformanceDispatch(t, frontPromoted.URL), promoted)

	if status, body := postJSON(t, ts.URL+"/v1/rollback", `{"model": "pso.json"}`); status != http.StatusOK {
		t.Fatalf("rollback: %d %s", status, body)
	}
	assertSameBody(t, "front-library post-rollback", conformanceDispatch(t, ts.URL), original)
}

// TestClusterEndpoint checks the introspection view from both a
// standalone server and each member of a sharded fleet.
func TestClusterEndpoint(t *testing.T) {
	store := newFakeStore()
	ts := newTestServer(t, store)
	status, body := getJSON(t, ts.URL+"/v1/cluster")
	if status != http.StatusOK {
		t.Fatalf("standalone /v1/cluster: %d %s", status, body)
	}
	var cr clusterResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Sharded {
		t.Fatalf("standalone server claims sharding: %s", body)
	}

	names, urls := newShardedFleet(t, store, 3)
	for _, name := range names {
		status, body := getJSON(t, urls[name]+"/v1/cluster")
		if status != http.StatusOK {
			t.Fatalf("%s /v1/cluster: %d %s", name, status, body)
		}
		cr = clusterResponse{}
		if err := json.Unmarshal(body, &cr); err != nil {
			t.Fatal(err)
		}
		if !cr.Sharded || cr.Self != name || len(cr.Replicas) != 3 {
			t.Fatalf("%s cluster view: %s", name, body)
		}
		selfSeen := false
		for _, r := range cr.Replicas {
			if r.Self {
				if r.Name != name {
					t.Fatalf("%s marks %s as self", name, r.Name)
				}
				selfSeen = true
			}
			if r.URL == "" {
				t.Fatalf("replica %s has no url: %s", r.Name, body)
			}
		}
		if !selfSeen {
			t.Fatalf("%s cluster view has no self marker: %s", name, body)
		}
	}
}
