package serve

// Admission control and load-adaptive degradation (ISSUE 9, DESIGN.md
// §15). Two layers front the dispatch and feedback endpoints:
//
//   - The admission.Limiter decides *whether* a request is served at
//     all: per-client and global token buckets plus a failure lockout
//     for clients that keep sending invalid bodies. In a sharded fleet
//     the token charge happens exactly once, at the replica that owns
//     the request's model: the ingress hop checks only the (free)
//     lockout and forwards the client identity in clientHeader, so a
//     proxied request is never double-counted.
//
//   - The qos.Ladder decides *how* a request is served: under load
//     pressure — in-flight and queued computations against the
//     admission gate, plus the recent timeout fraction — dispatch
//     falls down a degradation ladder instead of timing out:
//
//       step 0  rung "full"/"cached": compute fresh plans (cache hits
//               served as always)
//       step 1  rung "coarse": serve cache hits; compute misses with
//               the budget quantized down onto the CoarseQuantum grid,
//               so distinct budgets collapse onto shared plans
//       step 2  rung "exact": serve cache hits; answer misses with
//               the deterministic all-accurate overload schedule
//       step 3  rung "reject": serve cache hits; 429 + Retry-After
//               for everything else
//
//     Every rung's body is byte-deterministic for a given (model
//     version, request, rung) — invariant D13: cached bytes are the
//     full path's bytes (D10), a coarse body is exactly the full body
//     of the quantized request, and the overload fallback is a
//     constant-reason all-accurate schedule. The rung is reported in
//     the rungHeader response header, never in the body, so cache
//     entries stay shared between rungs.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"opprox/internal/obs"
)

// clientHeader names the real client across the shard proxy hop (and
// lets a trusted fronting proxy forward the original client identity).
// Absent, the remote address's host identifies the client.
const clientHeader = "X-Opprox-Client"

// rungHeader reports which ladder rung served a dispatch. A header —
// not a body field — so response bodies stay byte-identical across
// rungs that serve the same bytes.
const rungHeader = "X-Opprox-Rung"

// Ladder rungs (rungHeader values).
const (
	rungFull   = "full"
	rungCached = "cached"
	rungCoarse = "coarse"
	rungExact  = "exact"
	rungReject = "reject"
)

// DefaultMaxInFlight caps concurrent dispatch computations when
// Options.MaxInFlight is zero. Generous: the default ladder engages at
// half occupancy, and the cap's job is bounding abandoned work after
// timeouts, not steady-state throughput.
const DefaultMaxInFlight = 256

// DefaultCoarseQuantum is the budget grid of ladder step 1: budgets
// are rounded *down* to a multiple of this (never spending more error
// budget than the client allowed), so a continuum of client budgets
// collapses onto a few shared plan-cache entries.
const DefaultCoarseQuantum = 5.0

// timeoutPressureWeight scales the recent timeout fraction into the
// pressure signal: at 2/3 of requests timing out, pressure saturates
// the top ladder threshold even if the gate looks idle.
const timeoutPressureWeight = 1.5

// rejectRetryAfter is the Retry-After hint on ladder-reject (step 3)
// responses; limiter rejections carry the limiter's own estimate.
const rejectRetryAfter = time.Second

// overloadReason is the constant degraded_reason of the ladder's
// "exact" rung. Constant by design: the step-2 fallback body must be a
// pure function of the request (invariant D13), unlike the
// model-unavailable degraded path whose reason carries the load error.
const overloadReason = "overload: all-accurate schedule served at ladder step 2"

// ForceLadderStep pins the degradation ladder to a step (the
// -force-ladder-step flag and tests); a negative step returns control
// to the load controller. See qos.Ladder.Force.
func (s *Server) ForceLadderStep(step int) error { return s.ladder.Force(step) }

// clientKey identifies the client a request should be accounted to.
func clientKey(req *http.Request) string {
	if c := req.Header.Get(clientHeader); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(req.RemoteAddr)
	if err != nil {
		return req.RemoteAddr
	}
	return host
}

// forwarded reports whether the request already made its one shard
// proxy hop (admission was decided at the ingress replica).
func forwarded(req *http.Request) bool {
	return req.Header.Get(forwardHeader) != ""
}

// setRetryAfter sets the Retry-After header (whole seconds, rounded
// up, minimum 1).
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// admit charges the limiter for one request from client and writes the
// 429 when it is rejected. Reports whether the request may proceed.
func (s *Server) admit(w http.ResponseWriter, client, endpoint string) bool {
	if s.limiter == nil {
		return true
	}
	d := s.limiter.Allow(client)
	if d.OK {
		return true
	}
	obs.Inc("serve.admission.rejected." + d.Reason)
	setRetryAfter(w, d.RetryAfter)
	writeError(w, fmt.Errorf("%w: %s (%s)", ErrOverCapacity, d.Reason, endpoint))
	return false
}

// rejectLockedOut rejects a locked-out client at the ingress replica
// before the proxy hop — a lockout check is free (no token charge), so
// it cannot double-count against the owner's Allow. Reports whether
// the rejection was written.
func (s *Server) rejectLockedOut(w http.ResponseWriter, client string) bool {
	if s.limiter == nil {
		return false
	}
	locked, left := s.limiter.LockedOut(client)
	if !locked {
		return false
	}
	obs.Inc("serve.admission.rejected.locked_out")
	setRetryAfter(w, left)
	writeError(w, fmt.Errorf("%w: locked_out", ErrOverCapacity))
	return true
}

// noteFailure charges one invalid-body strike against the client.
// Ingress-only: a forwarded request was already validated (and, if
// invalid, charged) at the replica the client actually contacted.
func (s *Server) noteFailure(req *http.Request) {
	if s.limiter == nil || forwarded(req) {
		return
	}
	obs.Inc("serve.admission.failure_noted")
	s.limiter.NoteFailure(clientKey(req))
}

// pressure is the load scalar the ladder steers by: the worst of gate
// occupancy, gate queue occupancy, and the (weighted) recent timeout
// fraction. In [0, ~1.5]; the default ladder enters step 1 at 0.5.
func (s *Server) pressure() float64 {
	p := s.timeouts.Rate() * timeoutPressureWeight
	if g := s.gate; g != nil {
		c := float64(g.Cap())
		if u := float64(g.InFlight()) / c; u > p {
			p = u
		}
		if qw := float64(g.Waiting()) / c; qw > p {
			p = qw
		}
	}
	return p
}

// ladderStep feeds one pressure observation and returns the step this
// request serves at.
func (s *Server) ladderStep() int {
	return s.ladder.Update(s.pressure())
}

// quantizeBudget rounds budget down onto the quantum grid. Down, never
// up: a coarse plan may be more conservative than asked, never spend
// more error budget than the client allowed.
func quantizeBudget(budget, quantum float64) float64 {
	if quantum <= 0 || budget <= 0 {
		return budget
	}
	return math.Floor(budget/quantum) * quantum
}

// overloadBody is the step-2 fallback: the all-accurate schedule with
// a constant reason. Same shape as the model-unavailable degraded body
// (OPPROX_PHASES=1 decodes to level 0 everywhere for any block set),
// and like it never cached and never recorded for feedback.
func overloadBody(dreq *DispatchRequest) ([]byte, error) {
	return marshalBody(&DispatchResponse{
		App:      dreq.App,
		Budget:   dreq.Budget,
		Phases:   1,
		Levels:   [][]int{{}},
		Env:      []string{"OPPROX_PHASES=1"},
		Speedup:  1,
		Degraded: true,
		Reason:   overloadReason,
	})
}

// admissionState is the body of GET/POST /v1/admission: the live
// admission-control and ladder view of *this* replica (degradation is
// per-replica load state; it deliberately survives promote/rollback,
// which swap model versions, not load).
type admissionState struct {
	LadderStep int `json:"ladder_step"`
	// ForcedStep is the operator override, -1 when the controller is
	// in charge.
	ForcedStep  int     `json:"forced_step"`
	Pressure    float64 `json:"pressure"`
	InFlight    int     `json:"in_flight"`
	Waiting     int     `json:"waiting"`
	InFlightCap int     `json:"in_flight_cap"`
	TimeoutRate float64 `json:"timeout_rate"`
	RateLimited bool    `json:"rate_limited"`
	Clients     int     `json:"clients"`
}

// admissionRequest is the body of POST /v1/admission.
type admissionRequest struct {
	// ForceStep pins the ladder to a step (0..qos.LadderSteps); -1
	// returns control to the load controller. The ops override, and
	// the hook the overload smoke drill walks the rungs with.
	ForceStep int `json:"force_step"`
}

func (s *Server) handleAdmission(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodGet:
		// fallthrough to the state snapshot below
	case http.MethodPost:
		raw, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxRequestBytes))
		if err != nil {
			writeError(w, fmt.Errorf("%w: reading body: %v", ErrBadRequest, err))
			return
		}
		areq := admissionRequest{ForceStep: -1}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&areq); err != nil && !errors.Is(err, io.EOF) {
			writeError(w, fmt.Errorf("%w: decoding body: %v", ErrBadRequest, err))
			return
		}
		if err := s.ladder.Force(areq.ForceStep); err != nil {
			writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
			return
		}
		obs.Inc("serve.ladder.forced")
	default:
		writeError(w, fmt.Errorf("%w: %s not allowed on /v1/admission", ErrBadRequest, req.Method))
		return
	}
	st := admissionState{
		LadderStep:  s.ladder.Step(),
		ForcedStep:  s.ladder.Forced(),
		Pressure:    s.pressure(),
		TimeoutRate: s.timeouts.Rate(),
		RateLimited: s.limiter != nil,
	}
	if s.gate != nil {
		st.InFlight = s.gate.InFlight()
		st.Waiting = s.gate.Waiting()
		st.InFlightCap = s.gate.Cap()
	}
	if s.limiter != nil {
		st.Clients = s.limiter.Clients()
	}
	writeJSON(w, http.StatusOK, st)
}
