package serve

// The closed-loop ("pilot") endpoints: feedback ingestion, drift-driven
// recalibration, and the model-lifecycle API. The dispatch path records
// what was served (pilot-side state lives on Server: records, detector,
// flog, mgr); these handlers close the loop from realized QoS back to
// the models.
//
// Determinism contract: for a fixed dispatch + feedback sequence the
// drift states, transitions, shadow versions and every response body are
// identical across runs and restarts. Nothing in this file consults a
// clock, a random source, or map iteration order on a decision path.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"opprox/internal/approx"
	"opprox/internal/core"
	"opprox/internal/feedback"
	"opprox/internal/launch"
	"opprox/internal/lifecycle"
	"opprox/internal/obs"
)

// dispatchID is the deterministic key feedback reports use to refer to a
// served dispatch: a content hash of the model identity, the request,
// and the schedule that was returned. encoding/json sorts map keys, so
// the params marshal canonically.
func dispatchID(dreq *DispatchRequest, version string, levels [][]int) string {
	payload, err := json.Marshal(struct {
		Model   string         `json:"model"`
		Version string         `json:"version"`
		App     string         `json:"app"`
		Budget  float64        `json:"budget"`
		Params  map[string]any `json:"params"`
		Levels  [][]int        `json:"levels"`
	}{
		Model:   dreq.ModelPath,
		Version: version,
		App:     dreq.App,
		Budget:  dreq.Budget,
		Params:  paramsCanonical(dreq),
		Levels:  levels,
	})
	if err != nil {
		// Unreachable for the field types above; a stable sentinel beats
		// a panic on a serving path.
		return "unhashable"
	}
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:8])
}

func paramsCanonical(dreq *DispatchRequest) map[string]any {
	m := make(map[string]any, len(dreq.Params))
	for k, v := range dreq.Params {
		m[k] = v
	}
	return m
}

// evalShadow dark-launches the shadow version against a live dispatch:
// the shadow plans the same request, the schedules are compared, and a
// disagreement is recorded — but only the live schedule was returned.
func (s *Server) evalShadow(dreq *DispatchRequest, liveLevels [][]int) {
	sh, _, ok := s.mgr.Shadow(dreq.ModelPath)
	if !ok {
		return
	}
	plan, err := launch.DispatchTrained(&dreq.JobConfig, sh)
	if err != nil {
		obs.Inc("serve.shadow.error")
		return
	}
	obs.Inc("serve.shadow.evaluated")
	if !levelsEqual(liveLevels, plan.Schedule.Levels) {
		s.mgr.NoteDisagreement(dreq.ModelPath)
	}
}

func levelsEqual(a [][]int, b []approx.Config) bool {
	if len(a) != len(b) {
		return false
	}
	for ph := range a {
		if len(a[ph]) != len(b[ph]) {
			return false
		}
		for i := range a[ph] {
			if a[ph][i] != b[ph][i] {
				return false
			}
		}
	}
	return true
}

// feedbackResponse is the body of a successful POST /v1/feedback.
type feedbackResponse struct {
	// Status is "ok", or "stale_version" when the dispatch predates the
	// current live version (logged, but not drift evidence).
	Status string `json:"status"`
	Model  string `json:"model"`
	// State is the model's drift state after this report.
	State string `json:"state"`
	// ShadowCreated is the version of a shadow dark-launched in response
	// to this report flipping the model to drifting.
	ShadowCreated string `json:"shadow_created,omitempty"`
	// Promoted reports that this feedback completed the evidence for an
	// automatic shadow promotion.
	Promoted bool `json:"promoted,omitempty"`
	// RetrainStarted reports that this feedback flipped the model to
	// stale and a background retrain was kicked off.
	RetrainStarted bool `json:"retrain_started,omitempty"`
}

func (s *Server) handleFeedback(w http.ResponseWriter, req *http.Request) {
	done := obs.Timer("serve.http.feedback")
	defer done()
	obs.Inc("serve.feedback.requests")
	if req.Method != http.MethodPost {
		writeError(w, fmt.Errorf("%w: %s not allowed on /v1/feedback", ErrBadRequest, req.Method))
		return
	}
	// Admission runs before the body is even read: a rate-limited
	// report must leave no trace — in particular it can never advance
	// the drift detector's CUSUM state (a property test pins this).
	// Feedback is charged at the ingress replica only; a forwarded
	// report was already admitted where the client sent it.
	if !forwarded(req) && !s.admit(w, clientKey(req), "/v1/feedback") {
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxRequestBytes))
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading body: %v", ErrBadRequest, err))
		return
	}
	var report feedback.Report
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&report); err != nil {
		s.noteFailure(req)
		writeError(w, fmt.Errorf("%w: decoding body: %v", ErrBadRequest, err))
		return
	}
	rec, ok := s.records.Get(report.DispatchID)
	if !ok {
		// In a sharded fleet the record lives on the replica that served
		// the dispatch; relay the report there before declaring it unknown.
		if s.forwardFeedback(w, req, report.DispatchID, raw) {
			return
		}
		obs.Inc("serve.feedback.unknown_dispatch")
		writeError(w, fmt.Errorf("%w: dispatch %q", ErrNotFound, report.DispatchID))
		return
	}
	if err := report.Validate(rec.Phases); err != nil {
		s.noteFailure(req)
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}

	samples := buildSamples(rec, report.Observations)
	s.logFeedback(rec, report.Observations, samples)

	resp := feedbackResponse{Status: "ok", Model: rec.Model}
	liveVer, _ := s.mgr.LiveVersion(rec.Model)
	if rec.Version != liveVer {
		// The dispatch predates a promote/rollback/reload: its residuals
		// say nothing about the current live version. Telemetry keeps the
		// entries; the detector and the shadow comparison skip them.
		obs.Inc("serve.feedback.stale_version")
		resp.Status = "stale_version"
		resp.State = s.detector.State(rec.Model).String()
		writeJSON(w, http.StatusOK, resp)
		return
	}

	state, transitions := s.detector.Observe(rec.Model, samples)
	if s.ctrl != nil {
		// Proactive control: fold the updated residual evidence into the
		// model's budget correction (controller.go).
		_, deg := s.detector.Medians(rec.Model, rec.Phases)
		s.ctrl.update(rec.Model, deg)
	}
	for _, tr := range transitions {
		if tr.To == feedback.Stale {
			// Calibration stopped tracking reality: escalate from the drift
			// response to a full retrain (retrain.go).
			resp.RetrainStarted = s.maybeRetrain(rec.Model)
		}
		if tr.To != feedback.Drifting || !s.autoRecal {
			continue
		}
		// Drift response: fold the observed median log-residuals into the
		// calibration — the canary correction, measured from production
		// feedback instead of probe runs — and dark-launch the result.
		spd, deg := s.detector.Medians(rec.Model, rec.Phases)
		ver, err := s.mgr.CreateShadow(rec.Model, spd, deg)
		if err != nil {
			obs.Inc("serve.shadow.create_failed")
			obs.LogEvent("serve.shadow", "%s: drift response failed: %v", rec.Model, err)
			continue
		}
		resp.ShadowCreated = ver
	}

	promoted, err := s.mgr.Feedback(rec, report.Observations)
	if err != nil {
		writeError(w, err)
		return
	}
	if promoted {
		// The evidence windows referred to the now-previous version.
		s.detector.Reset(rec.Model)
		if s.ctrl != nil {
			s.ctrl.reset(rec.Model)
		}
		state = s.detector.State(rec.Model)
	}
	resp.State = state.String()
	resp.Promoted = promoted
	writeJSON(w, http.StatusOK, resp)
}

// buildSamples turns realized observations into detector samples:
// residuals on the training scales and band-exceedance flags, judged
// against the predictions this dispatch was actually served under.
func buildSamples(rec *feedback.DispatchRecord, observations []feedback.PhaseObservation) []feedback.Sample {
	samples := make([]feedback.Sample, 0, len(observations))
	for _, o := range observations {
		if o.Phase < 0 || o.Phase >= len(rec.Diags) {
			continue
		}
		d := rec.Diags[o.Phase]
		realS := core.SpeedupScale(o.Speedup)
		realD := core.DegradationScale(o.Degradation)
		samples = append(samples, feedback.Sample{
			Phase:           o.Phase,
			SpeedupResidual: realS - d.SpeedupRaw,
			DegResidual:     realD - d.DegRaw,
			SpeedupExceeded: !d.SpeedupBand.Contains(d.SpeedupRaw, realS),
			DegExceeded:     !d.DegBand.Contains(d.DegRaw, realD),
		})
	}
	return samples
}

// logFeedback appends one telemetry entry per observation; a nil log is
// a no-op. Log failures are counted, never surfaced to the reporter —
// telemetry must not fail feedback.
func (s *Server) logFeedback(rec *feedback.DispatchRecord, observations []feedback.PhaseObservation, samples []feedback.Sample) {
	if s.flog == nil {
		return
	}
	byPhase := make(map[int]feedback.Sample, len(samples))
	for _, smp := range samples {
		byPhase[smp.Phase] = smp
	}
	for _, o := range observations {
		smp := byPhase[o.Phase]
		// Dispatch context rides along so the retrain extractor can
		// reconstruct training rows from the log alone, long after the
		// in-memory record is evicted.
		var levels []int
		if o.Phase >= 0 && o.Phase < len(rec.Levels) {
			levels = rec.Levels[o.Phase]
		}
		err := s.flog.Append(feedback.Entry{
			DispatchID:  rec.ID,
			Model:       rec.Model,
			Version:     rec.Version,
			App:         rec.App,
			Budget:      rec.Budget,
			Params:      rec.Params,
			Levels:      levels,
			Phase:       o.Phase,
			Speedup:     o.Speedup,
			Degradation: o.Degradation,
			SpeedupRes:  smp.SpeedupResidual,
			DegRes:      smp.DegResidual,
			SpeedupEx:   smp.SpeedupExceeded,
			DegEx:       smp.DegExceeded,
		})
		if err != nil {
			obs.Inc("serve.feedback.log_failed")
			return
		}
	}
}

// modelsResponse is the body of GET /v1/models.
type modelsResponse struct {
	Models []lifecycle.ModelStatus `json:"models"`
}

func (s *Server) handleModels(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(w, fmt.Errorf("%w: %s not allowed on /v1/models", ErrBadRequest, req.Method))
		return
	}
	snap := s.mgr.Snapshot()
	for i := range snap {
		snap[i].Health = s.detector.State(snap[i].Name).String()
	}
	writeJSON(w, http.StatusOK, modelsResponse{Models: snap})
}

// modelRequest is the body of POST /v1/promote and POST /v1/rollback.
type modelRequest struct {
	Model string `json:"model"`
}

// lifecycleResult reports the versions after a promote or rollback.
type lifecycleResult struct {
	Model           string `json:"model"`
	LiveVersion     string `json:"live_version"`
	PreviousVersion string `json:"previous_version,omitempty"`
}

func (s *Server) handlePromote(w http.ResponseWriter, req *http.Request) {
	s.handleLifecycleSwap(w, req, "/v1/promote", s.mgr.Promote)
}

func (s *Server) handleRollback(w http.ResponseWriter, req *http.Request) {
	s.handleLifecycleSwap(w, req, "/v1/rollback", s.mgr.Rollback)
}

func (s *Server) handleLifecycleSwap(w http.ResponseWriter, req *http.Request, path string, op func(string) error) {
	if req.Method != http.MethodPost {
		writeError(w, fmt.Errorf("%w: %s not allowed on %s", ErrBadRequest, req.Method, path))
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxRequestBytes))
	if err != nil {
		writeError(w, fmt.Errorf("%w: reading body: %v", ErrBadRequest, err))
		return
	}
	var mreq modelRequest
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mreq); err != nil {
		writeError(w, fmt.Errorf("%w: decoding body: %v", ErrBadRequest, err))
		return
	}
	if mreq.Model == "" {
		writeError(w, fmt.Errorf("%w: missing model", ErrBadRequest))
		return
	}
	// Lifecycle state lives on the model's owner (version-coherent
	// routing): a promote or rollback anywhere in the fleet lands on the
	// same replica every dispatch for that model is served from.
	if s.proxyToOwner(w, req, mreq.Model, path, raw) {
		return
	}
	if err := op(mreq.Model); err != nil {
		writeError(w, classifyLifecycleErr(err))
		return
	}
	// The evidence gathered so far judged the previous live version.
	s.detector.Reset(mreq.Model)
	if s.ctrl != nil {
		s.ctrl.reset(mreq.Model)
	}
	res := lifecycleResult{Model: mreq.Model}
	for _, st := range s.mgr.Snapshot() {
		if st.Name == mreq.Model {
			res.LiveVersion = st.LiveVersion
			res.PreviousVersion = st.PreviousVersion
		}
	}
	writeJSON(w, http.StatusOK, res)
}

// classifyLifecycleErr maps lifecycle errors onto the serving taxonomy:
// an unknown model is a 404 (the client named something the server never
// resolved); a missing shadow/previous version is a 400 (the operation
// cannot apply to the current state); everything else is internal.
func classifyLifecycleErr(err error) error {
	switch {
	case errors.Is(err, lifecycle.ErrUnknownModel):
		return fmt.Errorf("%w: %v", ErrNotFound, err)
	case errors.Is(err, lifecycle.ErrNoShadow), errors.Is(err, lifecycle.ErrNoPrevious):
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	default:
		return err
	}
}
