package serve

// The proactive phase controller (DESIGN.md §16). Between retrains the
// confidence-banded model runs open-loop: dispatch picks a schedule the
// model predicts will meet the QoS budget, with the conservative band
// upper bounds already folded into that choice. What open-loop control
// cannot absorb is a systematic shift — the model consistently
// under-predicting degradation after a phase change. The controller
// closes that gap Capri-style, with feedback correction instead of
// per-job measurement: the drift detector's median degradation
// residuals (realized minus predicted, on the log1p training scale)
// become a correction c, and every subsequent dispatch of the model is
// served at the tightened budget log1p(B) - c. When the retrain
// pipeline ships a fixed model the detector resets and the correction
// falls back to zero.
//
// Determinism: the correction is a pure function of the feedback
// sequence (the detector's windows), quantized onto a fixed grid, and
// the corrected response body is exactly the full body of the corrected
// request — the same idiom as the coarse degradation rung (D13). The
// grid also bounds plan-cache fragmentation: one client budget maps to
// at most CorrectionMax/CorrectionQuantum distinct corrected budgets.

import (
	"math"
	"strconv"
	"sync"
)

const (
	// correctionHeader reports the active correction on a corrected
	// dispatch response; correctedBudgetHeader the budget actually served.
	correctionHeader      = "X-Opprox-Correction"
	correctedBudgetHeader = "X-Opprox-Corrected-Budget"

	// DefaultCorrectionQuantum is the correction grid (log1p scale).
	DefaultCorrectionQuantum = 0.05
	// DefaultCorrectionMax clamps the correction: proactive control
	// absorbs modest drift; larger shifts are the retrainer's job.
	DefaultCorrectionMax = 0.5
)

// controller holds the per-model budget corrections.
type controller struct {
	quantum float64
	max     float64

	mu   sync.Mutex
	corr map[string]float64
}

func newController(quantum, max float64) *controller {
	if quantum <= 0 {
		quantum = DefaultCorrectionQuantum
	}
	if max <= 0 {
		max = DefaultCorrectionMax
	}
	return &controller{quantum: quantum, max: max, corr: make(map[string]float64)}
}

// update recomputes a model's correction from the detector's current
// per-phase median degradation residuals: the worst under-prediction,
// quantized UP onto the grid (conservative — never under-correct), and
// clamped. Negative medians (over-prediction) never loosen the budget:
// the client's budget is a ceiling, not a target.
func (c *controller) update(model string, degMedians []float64) float64 {
	worst := 0.0
	for _, m := range degMedians {
		if m > worst {
			worst = m
		}
	}
	corr := 0.0
	if worst > 0 {
		corr = math.Ceil(worst/c.quantum) * c.quantum
		if corr > c.max {
			corr = c.max
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if corr == 0 {
		delete(c.corr, model)
	} else {
		c.corr[model] = corr
	}
	return corr
}

// correction returns the model's active correction (0 when none).
func (c *controller) correction(model string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.corr[model]
}

// reset drops a model's correction — called alongside every
// detector.Reset: a new live version invalidates the evidence the
// correction was measured from.
func (c *controller) reset(model string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.corr, model)
}

// correctedBudget tightens a degradation budget by corr on the
// training (log1p) scale, clamped at exact execution.
func correctedBudget(budget, corr float64) float64 {
	b := math.Expm1(math.Log1p(budget) - corr)
	if b < 0 {
		b = 0
	}
	return b
}

func formatCorrection(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
