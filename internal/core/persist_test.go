package core

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"opprox/internal/approx"
	"opprox/internal/apps"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	_, tr := trainToy(t)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrained(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Phases != tr.Phases || len(loaded.Blocks) != len(tr.Blocks) {
		t.Fatalf("metadata changed: %d/%d vs %d/%d", loaded.Phases, len(loaded.Blocks), tr.Phases, len(tr.Blocks))
	}
	p := apps.DefaultParams(toyApp{})
	for ph := 0; ph < tr.Phases; ph++ {
		for _, cfg := range []approx.Config{{1, 0}, {3, 2}, {0, 1}} {
			s1, d1, err := tr.PredictPhase(p, ph, cfg, true)
			if err != nil {
				t.Fatal(err)
			}
			s2, d2, err := loaded.PredictPhase(p, ph, cfg, true)
			if err != nil {
				t.Fatal(err)
			}
			if s1 != s2 || d1 != d2 {
				t.Fatalf("phase %d cfg %v: predictions differ after reload: (%g,%g) vs (%g,%g)",
					ph, cfg, s1, d1, s2, d2)
			}
		}
	}
	// The optimizer must produce the identical schedule from the loaded
	// models.
	sched1, _, err := tr.Optimize(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	sched2, _, err := loaded.Optimize(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sched1.String() != sched2.String() {
		t.Fatalf("schedules differ after reload:\n%s\n%s", sched1, sched2)
	}
	if len(loaded.Records) != 0 {
		t.Fatal("records should not be persisted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "hello",
		"wrong version": `{"version": 99}`,
		"empty":         `{"version": 1, "phases": 0, "blocks": [], "classes": {}}`,
		"unknown field": `{"version": 1, "bogus": 1}`,
	}
	for name, body := range cases {
		if _, err := LoadTrained(strings.NewReader(body)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestLoadRejectsInconsistentPhases(t *testing.T) {
	_, tr := trainToy(t)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the phase count.
	body := strings.Replace(buf.String(), `"phases": 4`, `"phases": 3`, 1)
	if _, err := LoadTrained(strings.NewReader(body)); err == nil {
		t.Fatal("accepted model file with mismatched phase count")
	}
}

// TestLoadCorruptModelCorpus drives LoadTrained over a corpus of
// systematically corrupted model files: every case must produce an error
// — never a panic, and never a silently loaded model. The confidence-band
// cases are the regression for the Banded.Validate fix: empty bands or
// mismatched edges used to pass loading and panic with an index
// out-of-range inside conf.Banded.band during Optimize.
func TestLoadCorruptModelCorpus(t *testing.T) {
	_, tr := trainToy(t)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// mutate decodes the valid file into generic JSON, applies f, and
	// re-encodes — structural corruption without string surgery.
	mutate := func(f func(m map[string]any)) string {
		var m map[string]any
		if err := json.Unmarshal(valid, &m); err != nil {
			t.Fatal(err)
		}
		f(m)
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	// firstPhase returns phases[0] of the lexicographically first class.
	firstPhase := func(m map[string]any) map[string]any {
		classes := m["classes"].(map[string]any)
		sigs := make([]string, 0, len(classes))
		for sig := range classes {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		return classes[sigs[0]].(map[string]any)["phases"].([]any)[0].(map[string]any)
	}

	cases := map[string]string{
		"truncated json":  string(valid[:len(valid)/2]),
		"truncated early": string(valid[:40]),
		"version skew": mutate(func(m map[string]any) {
			m["version"] = 99.0
		}),
		"wrong phase count": mutate(func(m map[string]any) {
			m["phases"] = float64(tr.Phases + 1)
		}),
		"no blocks": mutate(func(m map[string]any) {
			m["blocks"] = []any{}
		}),
		"empty speedup bands": mutate(func(m map[string]any) {
			firstPhase(m)["speedup_ci"] = map[string]any{"Edges": []any{}, "Bands": []any{}, "P": 0.95}
		}),
		"empty degradation bands": mutate(func(m map[string]any) {
			firstPhase(m)["degradation_ci"] = map[string]any{"Edges": []any{}, "Bands": []any{}, "P": 0.95}
		}),
		"edge count mismatch": mutate(func(m map[string]any) {
			ci := firstPhase(m)["speedup_ci"].(map[string]any)
			ci["Edges"] = []any{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}
		}),
		"unsorted edges": mutate(func(m map[string]any) {
			firstPhase(m)["degradation_ci"] = map[string]any{
				"Edges": []any{2.0, 1.0},
				"Bands": []any{
					map[string]any{"HalfWidth": 0.1, "P": 0.95},
					map[string]any{"HalfWidth": 0.2, "P": 0.95},
					map[string]any{"HalfWidth": 0.3, "P": 0.95},
				},
				"P": 0.95,
			}
		}),
		"negative half-width": mutate(func(m map[string]any) {
			firstPhase(m)["speedup_ci"] = map[string]any{
				"Bands": []any{map[string]any{"HalfWidth": -1.0, "P": 0.95}},
				"P":     0.95,
			}
		}),
	}
	for name, body := range cases {
		loaded, err := LoadTrained(strings.NewReader(body))
		if err == nil {
			t.Fatalf("%s: corrupt model file loaded without error", name)
		}
		if loaded != nil {
			t.Fatalf("%s: corrupt load returned a model alongside the error", name)
		}
	}

	// The unmodified file still loads, and its bands pass validation.
	if _, err := LoadTrained(bytes.NewReader(valid)); err != nil {
		t.Fatalf("valid file rejected: %v", err)
	}
}

func TestSaveLoadWithControlFlowTree(t *testing.T) {
	// The vidpipe-style two-class case exercises the tree export path.
	runner := apps.NewRunner(twoPathApp{})
	opts := fastOptions()
	tr, err := Train(runner, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ControlFlow == nil {
		t.Fatal("expected a control-flow classifier for a two-path app")
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrained(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ControlFlow == nil {
		t.Fatal("control-flow classifier lost in round trip")
	}
	for _, mode := range []float64{0, 1} {
		p := apps.Params{"size": 10, "mode": mode}
		s1, d1, err := tr.PredictPhase(p, 0, approx.Config{2, 1}, false)
		if err != nil {
			t.Fatal(err)
		}
		s2, d2, err := loaded.PredictPhase(p, 0, approx.Config{2, 1}, false)
		if err != nil {
			t.Fatal(err)
		}
		if s1 != s2 || d1 != d2 {
			t.Fatalf("mode %v: predictions differ after reload", mode)
		}
	}
}

// TestSaveLoadCalibrationRoundTrip pins the calibration persistence the
// closed-loop serving layer depends on: a model recalibrated from
// feedback must predict identically after a save/load round trip, so a
// promoted shadow version reproduces byte-identical dispatches on a
// fresh server started from its serialized form.
func TestSaveLoadCalibrationRoundTrip(t *testing.T) {
	_, tr := trainToy(t)
	spd := make([]float64, tr.Phases)
	deg := make([]float64, tr.Phases)
	for ph := range spd {
		spd[ph] = 0.05 * float64(ph+1)
		deg[ph] = -0.02 * float64(ph+1)
	}
	if err := tr.SetCalibration(spd, deg); err != nil {
		t.Fatal(err)
	}
	if !tr.Calibrated() {
		t.Fatal("SetCalibration did not install shifts")
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrained(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Calibrated() {
		t.Fatal("calibration lost in round trip")
	}
	gotSpd, gotDeg, ok := loaded.CalibrationShifts()
	if !ok {
		t.Fatal("CalibrationShifts reports uncalibrated after load")
	}
	for ph := range spd {
		if gotSpd[ph] != spd[ph] || gotDeg[ph] != deg[ph] {
			t.Fatalf("phase %d shifts changed: (%g,%g) vs (%g,%g)", ph, gotSpd[ph], gotDeg[ph], spd[ph], deg[ph])
		}
	}
	p := apps.DefaultParams(toyApp{})
	for ph := 0; ph < tr.Phases; ph++ {
		s1, d1, err := tr.PredictPhase(p, ph, approx.Config{2, 1}, true)
		if err != nil {
			t.Fatal(err)
		}
		s2, d2, err := loaded.PredictPhase(p, ph, approx.Config{2, 1}, true)
		if err != nil {
			t.Fatal(err)
		}
		if s1 != s2 || d1 != d2 {
			t.Fatalf("phase %d: calibrated predictions differ after reload", ph)
		}
	}
	// A second round trip is byte-stable: the serialized promoted model is
	// the canonical form the lifecycle layer content-hashes.
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("save/load/save is not byte-stable for a calibrated model")
	}

	// Corrupt calibration blocks must fail at load, not serve skewed
	// predictions.
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	m["calibration"].(map[string]any)["speedup"] = []any{1.0}
	bad, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrained(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted calibration block with wrong phase count")
	}
}

// TestDiagnosePhaseMatchesPrediction pins DiagnosePhase to the live
// prediction path: applying the band's pessimistic edges to the raw
// predictions must reproduce PredictPhase's conservative output (up to
// the final clamp), since the feedback loop's exceedance test assumes the
// diag values are exactly what the optimizer saw.
func TestDiagnosePhaseMatchesPrediction(t *testing.T) {
	_, tr := trainToy(t)
	p := apps.DefaultParams(toyApp{})
	for ph := 0; ph < tr.Phases; ph++ {
		for _, cfg := range []approx.Config{{1, 0}, {3, 2}, {0, 1}} {
			diag, err := tr.DiagnosePhase(p, ph, cfg)
			if err != nil {
				t.Fatal(err)
			}
			s, d, err := tr.PredictPhase(p, ph, cfg, true)
			if err != nil {
				t.Fatal(err)
			}
			wantS := clampF(SpeedupFromScale(diag.SpeedupBand.Lower(diag.SpeedupRaw)), 0.02, 50)
			wantD := clampF(DegradationFromScale(diag.DegBand.Upper(diag.DegRaw)), 0, apps.MaxDegradation)
			if s != wantS || d != wantD {
				t.Fatalf("phase %d cfg %v: diag-reconstructed (%g,%g) != conservative prediction (%g,%g)",
					ph, cfg, wantS, wantD, s, d)
			}
		}
	}
	if _, err := tr.DiagnosePhase(p, tr.Phases, approx.Config{0, 0}); err == nil {
		t.Fatal("accepted out-of-range phase")
	}
}
