package core

import (
	"bytes"
	"strings"
	"testing"

	"opprox/internal/approx"
	"opprox/internal/apps"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	_, tr := trainToy(t)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrained(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Phases != tr.Phases || len(loaded.Blocks) != len(tr.Blocks) {
		t.Fatalf("metadata changed: %d/%d vs %d/%d", loaded.Phases, len(loaded.Blocks), tr.Phases, len(tr.Blocks))
	}
	p := apps.DefaultParams(toyApp{})
	for ph := 0; ph < tr.Phases; ph++ {
		for _, cfg := range []approx.Config{{1, 0}, {3, 2}, {0, 1}} {
			s1, d1, err := tr.PredictPhase(p, ph, cfg, true)
			if err != nil {
				t.Fatal(err)
			}
			s2, d2, err := loaded.PredictPhase(p, ph, cfg, true)
			if err != nil {
				t.Fatal(err)
			}
			if s1 != s2 || d1 != d2 {
				t.Fatalf("phase %d cfg %v: predictions differ after reload: (%g,%g) vs (%g,%g)",
					ph, cfg, s1, d1, s2, d2)
			}
		}
	}
	// The optimizer must produce the identical schedule from the loaded
	// models.
	sched1, _, err := tr.Optimize(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	sched2, _, err := loaded.Optimize(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sched1.String() != sched2.String() {
		t.Fatalf("schedules differ after reload:\n%s\n%s", sched1, sched2)
	}
	if len(loaded.Records) != 0 {
		t.Fatal("records should not be persisted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "hello",
		"wrong version": `{"version": 99}`,
		"empty":         `{"version": 1, "phases": 0, "blocks": [], "classes": {}}`,
		"unknown field": `{"version": 1, "bogus": 1}`,
	}
	for name, body := range cases {
		if _, err := LoadTrained(strings.NewReader(body)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestLoadRejectsInconsistentPhases(t *testing.T) {
	_, tr := trainToy(t)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the phase count.
	body := strings.Replace(buf.String(), `"phases": 4`, `"phases": 3`, 1)
	if _, err := LoadTrained(strings.NewReader(body)); err == nil {
		t.Fatal("accepted model file with mismatched phase count")
	}
}

func TestSaveLoadWithControlFlowTree(t *testing.T) {
	// The vidpipe-style two-class case exercises the tree export path.
	runner := apps.NewRunner(twoPathApp{})
	opts := fastOptions()
	tr, err := Train(runner, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ControlFlow == nil {
		t.Fatal("expected a control-flow classifier for a two-path app")
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrained(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ControlFlow == nil {
		t.Fatal("control-flow classifier lost in round trip")
	}
	for _, mode := range []float64{0, 1} {
		p := apps.Params{"size": 10, "mode": mode}
		s1, d1, err := tr.PredictPhase(p, 0, approx.Config{2, 1}, false)
		if err != nil {
			t.Fatal(err)
		}
		s2, d2, err := loaded.PredictPhase(p, 0, approx.Config{2, 1}, false)
		if err != nil {
			t.Fatal(err)
		}
		if s1 != s2 || d1 != d2 {
			t.Fatalf("mode %v: predictions differ after reload", mode)
		}
	}
}
