package core

import (
	"strings"
	"testing"

	"opprox/internal/apps"
)

func TestValidateModelsOnToy(t *testing.T) {
	runner, tr := trainToy(t)
	cal, err := ValidateModels(runner, tr, apps.DefaultParams(toyApp{}), 60, 42)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Probes != 60 {
		t.Fatalf("probes = %d", cal.Probes)
	}
	// toyApp is polynomial, so models are near-perfect and the p=0.99
	// conservative bounds should essentially always hold.
	if cal.DegCoverage < 0.9 {
		t.Fatalf("degradation coverage %.2f, want >= 0.9", cal.DegCoverage)
	}
	if cal.SpeedupCoverage < 0.9 {
		t.Fatalf("speedup coverage %.2f, want >= 0.9", cal.SpeedupCoverage)
	}
	if cal.DegMAE > 6 {
		t.Fatalf("degradation MAE %.3f too large for a polynomial app", cal.DegMAE)
	}
	out := cal.String()
	for _, want := range []string{"60 fresh probes", "degradation", "speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String missing %q:\n%s", want, out)
		}
	}
}

func TestValidateModelsArgs(t *testing.T) {
	runner, tr := trainToy(t)
	if _, err := ValidateModels(runner, tr, apps.DefaultParams(toyApp{}), 0, 1); err == nil {
		t.Fatal("want error for zero probes")
	}
}

func TestValidateModelsDeterministic(t *testing.T) {
	runner, tr := trainToy(t)
	p := apps.DefaultParams(toyApp{})
	a, err := ValidateModels(runner, tr, p, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ValidateModels(runner, tr, p, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("not deterministic:\n%+v\n%+v", a, b)
	}
}
