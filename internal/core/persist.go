package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/ml/conf"
	"opprox/internal/ml/poly"
	"opprox/internal/ml/tree"
)

// The paper's deployment flow (§4.2) trains once, stores the models
// ("as Python's serialized pickle format in designated locations"), and
// has a runtime script load them when a job is submitted. This file is the
// Go equivalent: a versioned JSON encoding of a Trained model set.
//
// Training records are deliberately not persisted — the runtime only needs
// the models; experiments that want records retrain.

// modelFileVersion guards against loading files written by an incompatible
// build.
const modelFileVersion = 1

type filteredDTO struct {
	Model   *poly.Model `json:"model,omitempty"`
	Keep    []int       `json:"keep,omitempty"`
	Scale   int         `json:"scale"`
	Degree  int         `json:"degree,omitempty"`
	CVScore float64     `json:"cv_score,omitempty"`
	TrainR2 float64     `json:"train_r2,omitempty"`
	// ExpandN is the raw feature count of a space-expanded model
	// (Options.ExpandFeatures); 0 means the model reads raw features.
	// Like Calibration, older builds reject files that carry it — the
	// right failure mode, since ignoring it would feed raw features to a
	// model fitted on the derived basis.
	ExpandN int `json:"expand_n,omitempty"`
	// Sub-model split (paper §3.7).
	SplitFeat int          `json:"split_feature,omitempty"`
	SplitVal  float64      `json:"split_value,omitempty"`
	Lo        *filteredDTO `json:"lo,omitempty"`
	Hi        *filteredDTO `json:"hi,omitempty"`
}

func exportFiltered(fm *filteredModel) filteredDTO {
	d := filteredDTO{Model: fm.model, Keep: fm.keep, Scale: int(fm.scale), Degree: fm.degree, CVScore: fm.cvScore, TrainR2: fm.trainR2, ExpandN: fm.expandN}
	if fm.lo != nil && fm.hi != nil {
		d.SplitFeat = fm.splitFeat
		d.SplitVal = fm.splitVal
		lo := exportFiltered(fm.lo)
		hi := exportFiltered(fm.hi)
		d.Lo, d.Hi = &lo, &hi
	}
	return d
}

func importFiltered(d filteredDTO) (*filteredModel, error) {
	if d.Scale < int(scaleLinear) || d.Scale > int(scaleLog1p) {
		return nil, fmt.Errorf("core: unknown target scale %d", d.Scale)
	}
	if d.Lo != nil || d.Hi != nil {
		if d.Lo == nil || d.Hi == nil {
			return nil, fmt.Errorf("core: split model missing a half")
		}
		lo, err := importFiltered(*d.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := importFiltered(*d.Hi)
		if err != nil {
			return nil, err
		}
		return &filteredModel{
			scale:     targetScale(d.Scale),
			trainR2:   d.TrainR2,
			splitFeat: d.SplitFeat,
			splitVal:  d.SplitVal,
			lo:        lo,
			hi:        hi,
		}, nil
	}
	if d.Model == nil || d.Model.Expansion == nil {
		return nil, fmt.Errorf("core: model file is missing a polynomial model")
	}
	if d.ExpandN < 0 {
		return nil, fmt.Errorf("core: negative space-expansion width %d", d.ExpandN)
	}
	return &filteredModel{
		model:   d.Model,
		keep:    d.Keep,
		scale:   targetScale(d.Scale),
		degree:  d.Degree,
		cvScore: d.CVScore,
		trainR2: d.TrainR2,
		expandN: d.ExpandN,
	}, nil
}

type phaseDTO struct {
	Phase         int           `json:"phase"`
	LocalSpeedup  []filteredDTO `json:"local_speedup"`
	LocalDeg      []filteredDTO `json:"local_degradation"`
	Iter          filteredDTO   `json:"iterations"`
	GlobalSpeedup filteredDTO   `json:"global_speedup"`
	GlobalDeg     filteredDTO   `json:"global_degradation"`
	SpeedupCI     conf.Banded   `json:"speedup_ci"`
	DegCI         conf.Banded   `json:"degradation_ci"`
	ROI           float64       `json:"roi"`
	SpeedupR2     float64       `json:"speedup_r2"`
	DegR2         float64       `json:"degradation_r2"`
}

type classDTO struct {
	CtxSig string     `json:"ctx_sig"`
	Phase  []phaseDTO `json:"phases"`
}

// calibDTO persists the optional canary/feedback calibration shifts.
// Older builds reject files that carry it (DisallowUnknownFields), which
// is the correct failure mode: silently dropping a correction would serve
// the uncalibrated predictions under a calibrated model's name.
type calibDTO struct {
	Speedup     []float64 `json:"speedup"`
	Degradation []float64 `json:"degradation"`
}

// libraryDTO persists the Pareto-front plan library's survivor sets
// (DESIGN.md §14): per class, per phase, the strictly increasing
// enumeration indices of the surviving configurations over the
// non-accurate configuration space. Indices rather than level vectors
// keep the encoding compact and make corruption detectable — every
// index must round-trip through the block descriptors' enumeration.
type libraryDTO struct {
	// Classes maps control-flow signature to per-phase survivor indices.
	Classes map[string][][]int `json:"classes"`
}

type modelFile struct {
	Version     int                 `json:"version"`
	Opts        Options             `json:"options"`
	Phases      int                 `json:"phases"`
	Specs       []apps.ParamSpec    `json:"params"`
	Blocks      []approx.Block      `json:"blocks"`
	ControlFlow *tree.ClassifierDTO `json:"control_flow,omitempty"`
	Classes     map[string]classDTO `json:"classes"`
	Calibration *calibDTO           `json:"calibration,omitempty"`
	// Library carries the front library's survivor sets; like
	// Calibration, older builds reject files that include it.
	Library *libraryDTO `json:"front_library,omitempty"`
}

// Save writes the trained models as versioned JSON. Training records are
// not included.
func (t *Trained) Save(w io.Writer) error {
	mf := modelFile{
		Version: modelFileVersion,
		Opts:    t.Opts,
		Phases:  t.Phases,
		Specs:   t.Specs,
		Blocks:  t.Blocks,
		Classes: make(map[string]classDTO, len(t.Classes)),
	}
	if t.ControlFlow != nil {
		mf.ControlFlow = t.ControlFlow.Export()
	}
	if t.calib != nil {
		mf.Calibration = &calibDTO{
			Speedup:     append([]float64(nil), t.calib.spd...),
			Degradation: append([]float64(nil), t.calib.deg...),
		}
	}
	if t.library != nil {
		ld := &libraryDTO{Classes: make(map[string][][]int, len(t.library.classes))}
		for sig, cf := range t.library.classes {
			phases := make([][]int, len(cf.phase))
			for ph, pf := range cf.phase {
				phases[ph] = append([]int{}, pf.idx...)
			}
			ld.Classes[sig] = phases
		}
		mf.Library = ld
	}
	for sig, cm := range t.Classes {
		cd := classDTO{CtxSig: cm.CtxSig}
		for _, pm := range cm.Phase {
			pd := phaseDTO{
				Phase:         pm.Phase,
				Iter:          exportFiltered(pm.iter),
				GlobalSpeedup: exportFiltered(pm.globalSpeedup),
				GlobalDeg:     exportFiltered(pm.globalDeg),
				SpeedupCI:     pm.SpeedupCI,
				DegCI:         pm.DegCI,
				ROI:           pm.ROI,
				SpeedupR2:     pm.SpeedupR2,
				DegR2:         pm.DegR2,
			}
			for _, fm := range pm.localSpeedup {
				pd.LocalSpeedup = append(pd.LocalSpeedup, exportFiltered(fm))
			}
			for _, fm := range pm.localDeg {
				pd.LocalDeg = append(pd.LocalDeg, exportFiltered(fm))
			}
			cd.Phase = append(cd.Phase, pd)
		}
		mf.Classes[sig] = cd
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(mf)
}

// LoadTrained reads a model set previously written by Save. The result
// supports PredictPhase, PhaseROI and Optimize; the Records field is
// empty.
func LoadTrained(r io.Reader) (*Trained, error) {
	var mf modelFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&mf); err != nil {
		return nil, fmt.Errorf("core: decoding model file: %w", err)
	}
	if mf.Version != modelFileVersion {
		return nil, fmt.Errorf("core: model file version %d, this build reads %d", mf.Version, modelFileVersion)
	}
	if mf.Phases < 1 || len(mf.Blocks) == 0 || len(mf.Classes) == 0 {
		return nil, fmt.Errorf("core: model file is incomplete (phases=%d blocks=%d classes=%d)",
			mf.Phases, len(mf.Blocks), len(mf.Classes))
	}
	t := &Trained{
		Opts:    mf.Opts,
		Phases:  mf.Phases,
		Specs:   mf.Specs,
		Blocks:  mf.Blocks,
		Classes: make(map[string]*ClassModels, len(mf.Classes)),
	}
	if mf.ControlFlow != nil {
		clf, err := tree.FromDTO(mf.ControlFlow)
		if err != nil {
			return nil, err
		}
		t.ControlFlow = clf
	}
	if mf.Calibration != nil {
		// SetCalibration validates length and finiteness, so a truncated
		// or hand-edited calibration block fails at load time.
		if err := t.SetCalibration(mf.Calibration.Speedup, mf.Calibration.Degradation); err != nil {
			return nil, fmt.Errorf("core: model file calibration: %w", err)
		}
	}
	// Validate classes in sorted order so a corrupt file reports the same
	// error no matter the map iteration order.
	sigs := make([]string, 0, len(mf.Classes))
	for sig := range mf.Classes {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		cd := mf.Classes[sig]
		cm := &ClassModels{CtxSig: cd.CtxSig}
		if len(cd.Phase) != mf.Phases {
			return nil, fmt.Errorf("core: class %q has %d phase models for %d phases", sig, len(cd.Phase), mf.Phases)
		}
		for _, pd := range cd.Phase {
			// The optimizer indexes straight into the confidence bands
			// (conf.Banded.band), so a truncated or hand-edited file with
			// empty bands or mismatched edges must be rejected here, not
			// panic later inside Optimize.
			if err := pd.SpeedupCI.Validate(); err != nil {
				return nil, fmt.Errorf("core: class %q phase %d speedup CI: %w", sig, pd.Phase, err)
			}
			if err := pd.DegCI.Validate(); err != nil {
				return nil, fmt.Errorf("core: class %q phase %d degradation CI: %w", sig, pd.Phase, err)
			}
			pm := &PhaseModel{
				Phase:     pd.Phase,
				SpeedupCI: pd.SpeedupCI,
				DegCI:     pd.DegCI,
				ROI:       pd.ROI,
				SpeedupR2: pd.SpeedupR2,
				DegR2:     pd.DegR2,
			}
			if len(pd.LocalSpeedup) != len(mf.Blocks) || len(pd.LocalDeg) != len(mf.Blocks) {
				return nil, fmt.Errorf("core: class %q phase %d has local models for %d/%d blocks, want %d",
					sig, pd.Phase, len(pd.LocalSpeedup), len(pd.LocalDeg), len(mf.Blocks))
			}
			var err error
			for _, fd := range pd.LocalSpeedup {
				fm, e := importFiltered(fd)
				if e != nil {
					return nil, e
				}
				pm.localSpeedup = append(pm.localSpeedup, fm)
			}
			for _, fd := range pd.LocalDeg {
				fm, e := importFiltered(fd)
				if e != nil {
					return nil, e
				}
				pm.localDeg = append(pm.localDeg, fm)
			}
			if pm.iter, err = importFiltered(pd.Iter); err != nil {
				return nil, err
			}
			if pm.globalSpeedup, err = importFiltered(pd.GlobalSpeedup); err != nil {
				return nil, err
			}
			if pm.globalDeg, err = importFiltered(pd.GlobalDeg); err != nil {
				return nil, err
			}
			cm.Phase = append(cm.Phase, pm)
		}
		t.Classes[sig] = cm
	}
	if mf.Library != nil {
		if err := t.importLibrary(mf.Library); err != nil {
			return nil, fmt.Errorf("core: model file front library: %w", err)
		}
	}
	return t, nil
}

// importLibrary reconstructs the Pareto-front plan library from its
// persisted survivor indices and switches the optimizer onto it. Every
// index is validated against the enumeration of the block descriptors in
// the same file, so a truncated or hand-edited library fails at load
// time instead of producing silently wrong plans.
func (t *Trained) importLibrary(ld *libraryDTO) error {
	if len(ld.Classes) == 0 {
		return fmt.Errorf("library block has no classes")
	}
	space := enumerateSpace(t.Blocks)
	lib := &planLibrary{classes: make(map[string]*classFronts, len(ld.Classes))}
	sigs := make([]string, 0, len(ld.Classes))
	for sig := range ld.Classes {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		if _, ok := t.Classes[sig]; !ok {
			return fmt.Errorf("library covers unknown class %q", sig)
		}
		phases := ld.Classes[sig]
		if len(phases) != t.Phases {
			return fmt.Errorf("library class %q has %d phases, model has %d", sig, len(phases), t.Phases)
		}
		cf := &classFronts{phase: make([]*phaseFront, len(phases))}
		for ph, idx := range phases {
			pf := &phaseFront{}
			prev := -1
			for _, j := range idx {
				if j <= prev || j >= len(space) {
					return fmt.Errorf("library class %q phase %d: survivor index %d invalid (previous %d, space %d)",
						sig, ph, j, prev, len(space))
				}
				prev = j
				pf.idx = append(pf.idx, j)
				pf.cfgs = append(pf.cfgs, space[j])
			}
			cf.phase[ph] = pf
		}
		lib.classes[sig] = cf
	}
	for _, sig := range t.classSigs() {
		if _, ok := lib.classes[sig]; !ok {
			return fmt.Errorf("library is missing class %q", sig)
		}
	}
	// The persisted survivor sets were pruned under the calibration
	// persisted in the same file (Save runs them through the same
	// predictConfigsBatch), which LoadTrained installed before calling
	// here — record it so a later recalibration re-prunes only phases
	// whose shifts move.
	lib.calSpd, lib.calDeg = t.calibVectors()
	t.library = lib
	t.frontOn = true
	return nil
}
