package core

import (
	"math"
	"math/rand"
	"testing"
)

// cliffTarget is a piecewise response no low-degree polynomial can fit
// globally: flat at 1 below the cliff, steep quadratic above it.
func cliffTarget(x []float64) float64 {
	if x[0] <= 2 {
		return 1
	}
	return 40 + 25*(x[0]-2)*(x[0]-2) + 3*x[1]
}

func cliffData(n int, rng *rand.Rand) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 4, rng.Float64() * 2}
		xs[i] = x
		ys[i] = cliffTarget(x)
	}
	return xs, ys
}

func splitTrained() *Trained {
	opts := DefaultOptions()
	opts.TargetR2 = 0.97
	opts.MaxPolyDegree = 2
	opts.Folds = 5
	return &Trained{Opts: opts}
}

func TestFitTargetSplitsOnCliff(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs, ys := cliffData(240, rng)
	tr := splitTrained()
	fm, err := tr.fitTarget(xs, ys, scaleLinear, rng)
	if err != nil {
		t.Fatal(err)
	}
	if fm.lo == nil || fm.hi == nil {
		// A degree-2 global fit of this cliff caps out well below the
		// target; the split must fire.
		t.Fatalf("expected a sub-model split, got degree-%d single model (trainR2=%.3f)",
			fm.degree, fm.model.TrainR2)
	}
	if fm.splitFeat != 0 {
		t.Fatalf("split on feature %d, want 0 (the cliff axis)", fm.splitFeat)
	}
	// Routed predictions should be accurate on both sides of the cliff.
	for _, probe := range [][]float64{{0.5, 1}, {1.5, 0.2}, {3, 1}, {3.8, 1.7}} {
		got := fm.predictRaw(probe)
		want := cliffTarget(probe)
		if math.Abs(got-want) > 0.15*math.Abs(want)+1 {
			t.Fatalf("probe %v: predicted %.2f, want %.2f", probe, got, want)
		}
	}
}

func TestFitTargetNoSplitWhenTargetMet(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([][]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		x := []float64{rng.Float64() * 4, rng.Float64() * 2}
		xs[i] = x
		ys[i] = 2 + 3*x[0] + x[1] // exactly linear
	}
	tr := splitTrained()
	fm, err := tr.fitTarget(xs, ys, scaleLinear, rng)
	if err != nil {
		t.Fatal(err)
	}
	if fm.lo != nil {
		t.Fatal("split fired on data a linear model fits perfectly")
	}
}

func TestSplitModelSurvivesPersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs, ys := cliffData(240, rng)
	tr := splitTrained()
	fm, err := tr.fitTarget(xs, ys, scaleLinear, rng)
	if err != nil {
		t.Fatal(err)
	}
	if fm.lo == nil {
		t.Skip("split did not fire with this seed; covered by TestFitTargetSplitsOnCliff")
	}
	back, err := importFiltered(exportFiltered(fm))
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range [][]float64{{1, 1}, {3, 0.5}} {
		if got, want := back.predictRaw(probe), fm.predictRaw(probe); got != want {
			t.Fatalf("probe %v: %.6f after round trip, want %.6f", probe, got, want)
		}
	}
}

func TestImportFilteredRejectsHalfSplit(t *testing.T) {
	d := filteredDTO{Scale: 0, Lo: &filteredDTO{Scale: 0}}
	if _, err := importFiltered(d); err == nil {
		t.Fatal("accepted a split with a missing half")
	}
}

func TestSplitModelConfidenceBands(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs, ys := cliffData(260, rng)
	tr := splitTrained()
	fm, err := tr.fitTarget(xs, ys, scaleLinear, rng)
	if err != nil {
		t.Fatal(err)
	}
	if fm.lo == nil {
		t.Skip("split did not fire")
	}
	band, err := tr.confFromResiduals(xs, ys, fm, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(band.Bands) == 0 {
		t.Fatal("no confidence bands for split model")
	}
	// The band must be finite and usable for conservative bounds.
	if up := band.Upper(1.0); math.IsNaN(up) || up < 1.0 {
		t.Fatalf("Upper(1.0) = %g", up)
	}
}
