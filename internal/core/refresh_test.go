package core

// Tests for the incremental Pareto-front refresh (RefreshFrontLibrary)
// and the feedback-driven global refit (RetrainGlobal) — the two core
// entry points the online retraining pipeline drives.

import (
	"bytes"
	"reflect"
	"testing"

	"opprox/internal/approx"
	"opprox/internal/apps"
)

// TestRefreshFrontLibraryMatchesFullRebuild pins the incremental
// refresh's exactness: after a calibration change touching one phase,
// re-pruning only that phase must produce a model bitwise identical to
// a full library rebuild — calibration enters pruning strictly
// per-phase, so the shortcut is lossless.
func TestRefreshFrontLibraryMatchesFullRebuild(t *testing.T) {
	opts := fastOptions()
	opts.FrontLibrary = true
	tr, err := Train(apps.NewRunner(toyApp{}), opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	load := func() *Trained {
		m, err := LoadTrained(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	incr, full := load(), load()

	// Shift a single phase's calibration; every other phase stays at 0.
	spd := make([]float64, tr.Phases)
	deg := make([]float64, tr.Phases)
	spd[1], deg[1] = 0.25, 0.1
	if err := incr.SetCalibration(spd, deg); err != nil {
		t.Fatal(err)
	}
	changed, err := incr.RefreshFrontLibrary()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(changed, []int{1}) {
		t.Fatalf("refresh re-pruned phases %v, want [1]", changed)
	}

	if err := full.SetCalibration(spd, deg); err != nil {
		t.Fatal(err)
	}
	if err := full.BuildFrontLibrary(); err != nil {
		t.Fatal(err)
	}

	var ib, fb bytes.Buffer
	if err := incr.Save(&ib); err != nil {
		t.Fatal(err)
	}
	if err := full.Save(&fb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ib.Bytes(), fb.Bytes()) {
		t.Fatal("incremental refresh diverges bitwise from a full rebuild")
	}

	// Idempotence: nothing shifted since the refresh, so a second call
	// re-prunes nothing.
	again, err := incr.RefreshFrontLibrary()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("no-op refresh re-pruned phases %v", again)
	}
}

// shiftedSamples builds feedback rows from the model's own predictions
// with a constant shift on the training scales — realizable telemetry
// whose best global fit is known to exist.
func shiftedSamples(t *testing.T, tr *Trained, sShift, dShift float64) []FeedbackSample {
	t.Helper()
	cfgs := enumerateSpace(tr.Blocks)
	var samples []FeedbackSample
	for _, size := range []float64{10, 20} {
		p := apps.Params{"size": size}
		for ph := 0; ph < tr.Phases; ph++ {
			for i, cfg := range cfgs {
				if i%2 == 1 { // every other config: enough rows, some variety
					continue
				}
				diag, err := tr.DiagnosePhase(p, ph, cfg)
				if err != nil {
					t.Fatal(err)
				}
				samples = append(samples, FeedbackSample{
					Params:      p,
					Levels:      append([]int(nil), cfg...),
					Phase:       ph,
					Speedup:     SpeedupFromScale(diag.SpeedupRaw + sShift),
					Degradation: DegradationFromScale(diag.DegRaw + dShift),
				})
			}
		}
	}
	return samples
}

// TestRetrainGlobalDeterministicRoundTrip refits the global models from
// feedback rows on two clones of the same bytes and requires bitwise
// identical artifacts (the core half of invariant D14), plus a clean
// save/load round trip of the refit model.
func TestRetrainGlobalDeterministicRoundTrip(t *testing.T) {
	opts := fastOptions()
	opts.FrontLibrary = true
	tr, err := Train(apps.NewRunner(toyApp{}), opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	samples := shiftedSamples(t, tr, 0.3, 0.05)

	run := func() []byte {
		clone, err := LoadTrained(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		refit, err := clone.RetrainGlobal(samples, nil, 4, 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(refit) != tr.Phases {
			t.Fatalf("refit phases %v, want all %d", refit, tr.Phases)
		}
		var out bytes.Buffer
		if err := clone.Save(&out); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("RetrainGlobal is not deterministic for identical inputs")
	}

	refitted, err := LoadTrained(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("refit model does not round-trip: %v", err)
	}
	// The refit must have absorbed the injected shift: predictions move
	// toward the shifted observations.
	p := apps.Params{"size": 10}
	cfg := approx.Config{1, 1}
	before, err := tr.DiagnosePhase(p, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	after, err := refitted.DiagnosePhase(p, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if after.SpeedupRaw <= before.SpeedupRaw {
		t.Fatalf("refit did not absorb the +0.3 speedup shift: %.4f -> %.4f",
			before.SpeedupRaw, after.SpeedupRaw)
	}

	// Pooled groups: refitting phases {0,1} as one group and {2,3} as
	// another still succeeds and reports every phase refit.
	clone, err := LoadTrained(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	refit, err := clone.RetrainGlobal(samples, [][]int{{0, 1}, {2, 3}}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(refit) != tr.Phases {
		t.Fatalf("pooled refit phases %v, want all %d", refit, tr.Phases)
	}

	// No rows at all: ErrNoRefit, model untouched.
	clone2, err := LoadTrained(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clone2.RetrainGlobal(nil, nil, 4, 7); err == nil {
		t.Fatal("RetrainGlobal with no samples must fail")
	}
}
