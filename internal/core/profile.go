package core

import (
	"fmt"
	"sort"
	"strings"

	"opprox/internal/approx"
	"opprox/internal/apps"
)

// LevelResult is one measured point of a block's sensitivity sweep.
type LevelResult struct {
	Level       int
	Speedup     float64
	Degradation float64
	Iters       int
}

// BlockProfile is the sensitivity profile of one approximable block
// (paper §3.1): the whole-run effect of each of its levels with every
// other block accurate, and the largest level whose output quality is
// still usable.
type BlockProfile struct {
	Block  approx.Block
	Levels []LevelResult
	// MaxUsableLevel is the largest contiguous level (starting from 0)
	// whose degradation stays within the usable threshold. A value of 0
	// means the block cannot be approximated at all at whole-run scope.
	MaxUsableLevel int
}

// SensitivityProfile sweeps each block's levels one block at a time on the
// given input — the paper's §3.1 procedure for deciding which blocks can
// withstand approximation. usableDeg is the degradation beyond which the
// output counts as unusable (Options.UsableDegradation is the natural
// choice).
func SensitivityProfile(runner *apps.Runner, p apps.Params, usableDeg float64) ([]BlockProfile, error) {
	blocks := runner.App.Blocks()
	profiles := make([]BlockProfile, len(blocks))
	for bi, b := range blocks {
		prof := BlockProfile{Block: b}
		usable := b.MaxLevel
		for lv := 0; lv <= b.MaxLevel; lv++ {
			cfg := make(approx.Config, len(blocks))
			cfg[bi] = lv
			ev, err := runner.Evaluate(p, approx.UniformSchedule(1, cfg))
			if err != nil {
				return nil, fmt.Errorf("profiling %s level %d: %w", b.Name, lv, err)
			}
			prof.Levels = append(prof.Levels, LevelResult{
				Level:       lv,
				Speedup:     ev.Speedup,
				Degradation: ev.Degradation,
				Iters:       ev.OuterIters,
			})
			if ev.Degradation > usableDeg && lv <= usable {
				usable = lv - 1
			}
		}
		if usable < 0 {
			usable = 0
		}
		prof.MaxUsableLevel = usable
		profiles[bi] = prof
	}
	return profiles, nil
}

// describeModel names a model's shape for Explain: its polynomial degree,
// or the sub-model split it routes through.
func describeModel(fm *filteredModel) string {
	if fm.lo != nil {
		return fmt.Sprintf("split@x%d", fm.splitFeat)
	}
	return fmt.Sprintf("%d", fm.degree)
}

// Explain renders a human-readable report of what training produced:
// per-class, per-phase ROI, model quality, chosen polynomial degrees, and
// confidence-band widths. It is what an operator reads before trusting a
// model file.
func (t *Trained) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "OPPROX models: %d phases, %d blocks, %d input parameters\n",
		t.Phases, len(t.Blocks), len(t.Specs))
	var names []string
	for _, b := range t.Blocks {
		names = append(names, fmt.Sprintf("%s (%s, levels 0..%d)", b.Name, b.Technique, b.MaxLevel))
	}
	fmt.Fprintf(&sb, "blocks: %s\n", strings.Join(names, "; "))
	if t.ControlFlow != nil {
		fmt.Fprintf(&sb, "control flow: decision tree over %d classes (depth %d)\n",
			len(t.ControlFlow.Classes()), t.ControlFlow.Depth())
	} else {
		sb.WriteString("control flow: single path\n")
	}

	sigs := make([]string, 0, len(t.Classes))
	for sig := range t.Classes {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		cm := t.Classes[sig]
		fmt.Fprintf(&sb, "\nclass %q:\n", sig)
		fmt.Fprintf(&sb, "  %-6s  %-8s  %-12s  %-12s  %-10s  %-10s\n",
			"phase", "ROI", "speedup R2", "deg R2", "spd degree", "deg degree")
		for _, pm := range cm.Phase {
			fmt.Fprintf(&sb, "  %-6d  %-8.3f  %-12.3f  %-12.3f  %-10s  %-10s\n",
				pm.Phase+1, pm.ROI, pm.SpeedupR2, pm.DegR2,
				describeModel(pm.globalSpeedup), describeModel(pm.globalDeg))
		}
	}
	if len(t.Records) > 0 {
		fmt.Fprintf(&sb, "\ntrained from %d records in %s\n", len(t.Records), t.TrainTime.Round(1e6))
	}
	return sb.String()
}
