package core

import (
	"bytes"
	"testing"

	"opprox/internal/apps"
)

// trainBytes trains an app from a fresh runner and returns the
// persist-serialized model bytes. A fresh runner per call guarantees the
// golden cache state cannot mask order dependence.
func trainBytes(t *testing.T, app apps.App, opts Options) []byte {
	t.Helper()
	tr, err := Train(apps.NewRunner(app), opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTrainDeterministic locks in bit-for-bit reproducible training: the
// same seed must produce byte-identical serialized models across runs.
// twoPathApp matters here — its input-dependent control flow produces
// multiple context classes, so FitRecords must iterate the class map in
// a deterministic order while consuming the shared RNG; iterating in Go's
// randomized map order used to make multi-class models nondeterministic.
func TestTrainDeterministic(t *testing.T) {
	for _, app := range []apps.App{toyApp{}, twoPathApp{}} {
		opts := fastOptions()
		a := trainBytes(t, app, opts)
		b := trainBytes(t, app, opts)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: same seed produced different serialized models (%d vs %d bytes)",
				app.Name(), len(a), len(b))
		}
	}
}

// TestTrainSeedSensitivity is the complement: a different seed should
// draw different training samples, so the records (and almost surely the
// bytes) differ. Guards against the seed being silently ignored.
func TestTrainSeedSensitivity(t *testing.T) {
	opts := fastOptions()
	a := trainBytes(t, toyApp{}, opts)
	opts.Seed += 1
	b := trainBytes(t, toyApp{}, opts)
	if bytes.Equal(a, b) {
		t.Fatal("changing the training seed did not change the serialized model")
	}
}

// TestOptimizeBudgetMonotoneProperty is the optimizer's contract as a
// property over a fine budget ladder: predicted degradation never
// exceeds the budget, and predicted speedup is nondecreasing in budget
// (a larger feasible region can never make the best choice worse). The
// ladder covers the paper's operating range (budgets 2-25) with margin;
// the two-start local search in Optimize is a greedy heuristic, so
// monotonicity far outside that range is not guaranteed.
func TestOptimizeBudgetMonotoneProperty(t *testing.T) {
	for _, app := range []apps.App{toyApp{}, twoPathApp{}} {
		runner := apps.NewRunner(app)
		tr, err := Train(runner, fastOptions())
		if err != nil {
			t.Fatal(err)
		}
		p := apps.DefaultParams(app)
		prevSpeedup := 0.0
		for budget := 0.0; budget <= 30; budget += 0.5 {
			_, pred, err := tr.Optimize(p, budget)
			if err != nil {
				t.Fatalf("budget %g: %v", budget, err)
			}
			if pred.Degradation > budget+1e-9 {
				t.Fatalf("budget %g: predicted degradation %.6f exceeds budget", budget, pred.Degradation)
			}
			if pred.Speedup < 1 {
				t.Fatalf("budget %g: predicted speedup %.6f below 1 (accurate schedule is always available)",
					budget, pred.Speedup)
			}
			if pred.Speedup+1e-9 < prevSpeedup {
				t.Fatalf("predicted speedup fell from %.6f to %.6f when budget rose to %g",
					prevSpeedup, pred.Speedup, budget)
			}
			prevSpeedup = pred.Speedup
		}
	}
}
