package core

import (
	"math"
	"testing"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/qos"
	"opprox/internal/trace"
)

// sizeBiasedApp's degradation grows super-linearly in the input size, so
// models trained only on the small canary size are systematically biased
// low at the production size — the situation canary calibration exists
// for.
type sizeBiasedApp struct{}

func (sizeBiasedApp) Name() string { return "sizebiased" }

func (sizeBiasedApp) Blocks() []approx.Block {
	return []approx.Block{
		{Name: "kernel", Technique: approx.Perforation, MaxLevel: 3},
	}
}

func (sizeBiasedApp) Params() []apps.ParamSpec {
	// The representative (training) values are canary-sized; production
	// runs at size 40.
	return []apps.ParamSpec{
		{Name: "size", Values: []float64{8, 12}, Default: 40},
	}
}

func (sizeBiasedApp) QoS(exact, approximate []float64) (float64, error) {
	return qos.Distortion(exact, approximate)
}

func (a sizeBiasedApp) Run(p apps.Params, sched approx.Schedule, baselineIters int) (apps.Result, error) {
	if err := sched.Validate(a.Blocks()); err != nil {
		return apps.Result{}, err
	}
	size := p.Vector(a.Params())[0]
	var rec trace.Recorder
	damage := 0.0
	for iter := 0; iter < toyIters; iter++ {
		rec.BeginIteration()
		lv := sched.LevelsAt(approx.PhaseOf(iter, baselineIters, sched.Phases))[0]
		rec.Call("kernel", uint64((8-2*lv)*int(size)))
		rec.Overhead(uint64(8 * size))
		// Quadratic size coupling: the canary sizes underestimate it.
		// Scaled so the production-size degradation stays below the
		// 200% reporting cap (predictions clamp there).
		damage += float64(lv) * (size / 40) * (size / 40)
	}
	return apps.Result{
		Output:     []float64{100 + damage, 50},
		Work:       rec.TotalWork(),
		OuterIters: rec.Iterations(),
		CtxSig:     "kernel",
	}, nil
}

var _ apps.App = sizeBiasedApp{}

func TestCanaryCalibrationReducesBias(t *testing.T) {
	runner := apps.NewRunner(sizeBiasedApp{})
	opts := fastOptions()
	opts.Phases = 2
	tr, err := Train(runner, opts) // trains on canary sizes 8 and 12 only
	if err != nil {
		t.Fatal(err)
	}
	production := apps.Params{"size": 40}

	biasBefore, err := meanAbsDegError(runner, tr, production)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Calibrated() {
		t.Fatal("models should start uncalibrated")
	}
	if err := tr.CalibrateCanary(runner, production, 4, 99); err != nil {
		t.Fatal(err)
	}
	if !tr.Calibrated() {
		t.Fatal("calibration did not install")
	}
	biasAfter, err := meanAbsDegError(runner, tr, production)
	if err != nil {
		t.Fatal(err)
	}
	if biasAfter >= biasBefore {
		t.Fatalf("calibration did not reduce degradation bias: %.3f -> %.3f", biasBefore, biasAfter)
	}

	tr.ClearCalibration()
	if tr.Calibrated() {
		t.Fatal("ClearCalibration did not clear")
	}
	biasCleared, err := meanAbsDegError(runner, tr, production)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(biasCleared-biasBefore) > 1e-9 {
		t.Fatalf("clearing calibration did not restore the original predictions: %.6f vs %.6f",
			biasCleared, biasBefore)
	}
}

func TestCanaryCalibrationArgs(t *testing.T) {
	runner := apps.NewRunner(sizeBiasedApp{})
	opts := fastOptions()
	opts.Phases = 2
	tr, err := Train(runner, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CalibrateCanary(runner, apps.Params{"size": 40}, 0, 1); err == nil {
		t.Fatal("want error for zero probes")
	}
}

// meanAbsDegError measures the models' degradation error over every level
// of the single block in each phase.
func meanAbsDegError(runner *apps.Runner, tr *Trained, p apps.Params) (float64, error) {
	sum, n := 0.0, 0
	for ph := 0; ph < tr.Phases; ph++ {
		for lv := 1; lv <= tr.Blocks[0].MaxLevel; lv++ {
			cfg := approx.Config{lv}
			_, pred, err := tr.PredictPhase(p, ph, cfg, false)
			if err != nil {
				return 0, err
			}
			ev, err := runner.Evaluate(p, approx.SinglePhaseSchedule(tr.Phases, ph, cfg))
			if err != nil {
				return 0, err
			}
			sum += math.Abs(pred - ev.Degradation)
			n++
		}
	}
	return sum / float64(n), nil
}

func TestMedian(t *testing.T) {
	if median(nil) != 0 {
		t.Fatal("empty median should be 0")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median wrong")
	}
}
