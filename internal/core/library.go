package core

import (
	"fmt"
	"math/rand"
	"sort"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/ml/arena"
	"opprox/internal/ml/poly"
	"opprox/internal/obs"
)

// This file implements the two-tier Pareto-front plan library
// (DESIGN.md §14). Tier 1 runs once per model version: for every
// (control-flow class, phase) the full configuration space is evaluated
// through one batched predict pass per sampled training parameter vector,
// and every configuration that some earlier-enumerated configuration
// weakly dominates at ALL sampled vectors is pruned. Tier 2 runs per
// dispatch: the phase's exact upgrade ladder is rebuilt over the
// survivors only — again batched — so Optimize's menus cost
// O(survivors) predictions instead of O(config space).
//
// Pruning is exact at the sampled parameter vectors: buildPhaseMenu's
// ladder keeps a configuration only when it beats every cheaper one, so
// a configuration with an earlier-enumerated weak dominator (spd >= its
// spd AND deg <= its deg) can never be on the ladder — the stable
// degradation sort places the dominator first and the strictly-
// increasing-speedup filter then rejects the dominated entry. Dropping
// never-kept entries leaves ladder construction untouched, and weak
// dominance restricted to earlier indices is transitive, so checking
// candidates against current survivors suffices. Plans built from the
// front are therefore bitwise-identical to menu-path plans at the
// sampled vectors; at other inputs they remain valid ladders over a
// model-identical prediction surface, just over fewer rungs.

// maxLibraryPVs caps how many training parameter vectors dominance
// pruning samples per phase. Tier-1 cost is O(configs² · pvs) per phase,
// so the cap keeps library builds cheap while still anchoring pruning at
// a spread of real training inputs.
const maxLibraryPVs = 16

// phaseFront is one phase's pruned configuration set: the survivors of
// dominance pruning in ascending enumeration order, with their indices
// into the non-accurate enumeration of the configuration space (the
// persisted representation).
type phaseFront struct {
	cfgs []approx.Config
	idx  []int
}

// classFronts holds the per-phase fronts of one control-flow class.
type classFronts struct {
	phase []*phaseFront
}

// planLibrary is the tier-1 artifact: per-class, per-phase survivor sets.
// calSpd/calDeg record the per-phase calibration shifts the fronts were
// pruned under (zeros when uncalibrated), so a later recalibration can
// re-prune only the phases whose shifts actually moved.
type planLibrary struct {
	classes map[string]*classFronts
	calSpd  []float64
	calDeg  []float64
}

// EnableFrontLibrary switches Optimize onto the Pareto-front plan
// library, building it first when the model was trained or loaded
// without one. Serving calls it from the model-load hook, so the switch
// always happens before a version is published — never on a model that
// is already serving dispatches.
func (t *Trained) EnableFrontLibrary() error {
	if t.library == nil {
		return t.BuildFrontLibrary()
	}
	t.frontOn = true
	return nil
}

// BuildFrontLibrary constructs the tier-1 library and switches Optimize
// onto it. The parameter vectors anchoring the dominance pruning come
// from the training records when present, and are otherwise reproduced
// from (Specs, Seed, MaxParamCombos) — ParamCombos is the first rng
// consumer in Train, so a loaded model (which carries no records)
// samples exactly the combos training saw.
func (t *Trained) BuildFrontLibrary() error {
	stop := obs.Timer("core.library.build_duration")
	defer stop()
	space := enumerateSpace(t.Blocks)
	pvs := t.libraryParamVecs()
	if len(pvs) == 0 {
		return fmt.Errorf("core: no parameter vectors to anchor the front library")
	}
	lib := &planLibrary{classes: make(map[string]*classFronts, len(t.Classes))}
	for _, sig := range t.classSigs() {
		cm := t.Classes[sig]
		cf := &classFronts{phase: make([]*phaseFront, len(cm.Phase))}
		for ph, pm := range cm.Phase {
			pf, err := t.prunePhase(pm, space, pvs)
			if err != nil {
				return fmt.Errorf("core: front library class %q phase %d: %w", sig, ph, err)
			}
			cf.phase[ph] = pf
			obs.Add("core.library.survivors", int64(len(pf.cfgs)))
			obs.Add("core.library.pruned", int64(len(space)-len(pf.cfgs)))
		}
		lib.classes[sig] = cf
	}
	lib.calSpd, lib.calDeg = t.calibVectors()
	t.library = lib
	t.frontOn = true
	obs.Inc("core.library.builds")
	return nil
}

// calibVectors returns the current per-phase calibration shifts as
// length-Phases slices (all zeros when the models are uncalibrated) —
// the representation the library uses to detect shift changes.
func (t *Trained) calibVectors() (spd, deg []float64) {
	spd = make([]float64, t.Phases)
	deg = make([]float64, t.Phases)
	if t.calib != nil {
		copy(spd, t.calib.spd)
		copy(deg, t.calib.deg)
	}
	return spd, deg
}

// RefreshFrontLibrary incrementally updates the plan library after a
// calibration change: only phases whose shifts differ from the ones the
// fronts were pruned under are re-pruned (calibration enters pruning
// through predictConfigsBatch, so an unchanged shift leaves a phase's
// predictions — and therefore its survivor set — bit-for-bit identical
// to a full rebuild's). Returns the re-pruned phase indices; a no-op
// when no library is built or nothing shifted. Callers that change a
// phase's models themselves (RetrainGlobal) rebuild those phases
// directly instead.
func (t *Trained) RefreshFrontLibrary() ([]int, error) {
	if t.library == nil {
		return nil, nil
	}
	curSpd, curDeg := t.calibVectors()
	var changed []int
	for ph := 0; ph < t.Phases; ph++ {
		oldS, oldD := 0.0, 0.0
		if ph < len(t.library.calSpd) {
			oldS, oldD = t.library.calSpd[ph], t.library.calDeg[ph]
		}
		if curSpd[ph] != oldS || curDeg[ph] != oldD {
			changed = append(changed, ph)
		}
	}
	if len(changed) == 0 {
		return nil, nil
	}
	if err := t.rebuildFrontPhases(changed); err != nil {
		return nil, err
	}
	return changed, nil
}

// rebuildFrontPhases re-runs dominance pruning for the given phases in
// every class and records the calibration the new fronts were pruned
// under. The untouched phases keep their survivor sets.
func (t *Trained) rebuildFrontPhases(phases []int) error {
	stop := obs.Timer("core.library.refresh_duration")
	defer stop()
	space := enumerateSpace(t.Blocks)
	pvs := t.libraryParamVecs()
	if len(pvs) == 0 {
		return fmt.Errorf("core: no parameter vectors to anchor the front library")
	}
	for _, sig := range t.classSigs() {
		cf := t.library.classes[sig]
		if cf == nil {
			return fmt.Errorf("core: front library is missing class %q", sig)
		}
		cm := t.Classes[sig]
		for _, ph := range phases {
			if ph < 0 || ph >= len(cf.phase) {
				return fmt.Errorf("core: front refresh phase %d out of range", ph)
			}
			pf, err := t.prunePhase(cm.Phase[ph], space, pvs)
			if err != nil {
				return fmt.Errorf("core: front refresh class %q phase %d: %w", sig, ph, err)
			}
			cf.phase[ph] = pf
		}
	}
	curSpd, curDeg := t.calibVectors()
	if len(t.library.calSpd) != t.Phases {
		t.library.calSpd = make([]float64, t.Phases)
		t.library.calDeg = make([]float64, t.Phases)
	}
	for _, ph := range phases {
		t.library.calSpd[ph] = curSpd[ph]
		t.library.calDeg[ph] = curDeg[ph]
	}
	obs.Inc("core.library.refreshes")
	return nil
}

// enumerateSpace collects the non-accurate configuration space in
// enumeration order. A configuration's position in the returned slice is
// its enumeration index — the identity the persisted library stores.
func enumerateSpace(blocks []approx.Block) []approx.Config {
	space := make([]approx.Config, 0, approx.NumConfigs(blocks)-1)
	approx.EnumerateConfigs(blocks, func(cfg approx.Config) bool {
		if cfg.IsAccurate() {
			return true
		}
		space = append(space, cfg.Clone())
		return true
	})
	return space
}

// libraryParamVecs returns the deduplicated, lexicographically sorted
// parameter vectors dominance pruning samples, capped at maxLibraryPVs
// by even striding (first and last always kept).
func (t *Trained) libraryParamVecs() [][]float64 {
	var vecs [][]float64
	if len(t.Records) > 0 {
		for _, r := range t.Records {
			vecs = append(vecs, r.ParamVec)
		}
	} else {
		rng := rand.New(rand.NewSource(t.Opts.Seed))
		for _, p := range ParamCombos(t.Specs, t.Opts.MaxParamCombos, rng) {
			vecs = append(vecs, p.Vector(t.Specs))
		}
	}
	sort.SliceStable(vecs, func(a, b int) bool { return lexLess(vecs[a], vecs[b]) })
	uniq := vecs[:0:0]
	for _, v := range vecs {
		if len(uniq) > 0 && lexEqual(uniq[len(uniq)-1], v) {
			continue
		}
		uniq = append(uniq, v)
	}
	if len(uniq) > maxLibraryPVs {
		out := make([][]float64, maxLibraryPVs)
		for k := range out {
			// Strictly increasing positions: the stride is >= 1 whenever
			// len(uniq) > maxLibraryPVs.
			out[k] = uniq[k*(len(uniq)-1)/(maxLibraryPVs-1)]
		}
		uniq = out
	}
	return uniq
}

func lexLess(a, b []float64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func lexEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// prunePhase batch-evaluates the whole configuration space at every
// sampled parameter vector and keeps only configurations that (a) beat
// the accurate floor somewhere and (b) have no earlier-enumerated weak
// dominator across all sampled vectors.
func (t *Trained) prunePhase(pm *PhaseModel, space []approx.Config, pvs [][]float64) (*phaseFront, error) {
	n := len(space)
	pf := &phaseFront{}
	if n == 0 {
		return pf, nil
	}
	npv := len(pvs)
	spd := make([]float64, npv*n)
	deg := make([]float64, npv*n)
	for p, pv := range pvs {
		if err := pm.predictConfigsBatch(t, pv, space, spd[p*n:(p+1)*n], deg[p*n:(p+1)*n]); err != nil {
			return nil, err
		}
	}
	return pruneDominated(space, spd, deg, npv), nil
}

// pruneDominated is the pure dominance filter over pre-computed
// prediction matrices (spd and deg hold npv stacked rows of
// len(space) predictions each).
func pruneDominated(space []approx.Config, spd, deg []float64, npv int) *phaseFront {
	n := len(space)
	pf := &phaseFront{}
	for j := 0; j < n; j++ {
		// A configuration that never beats the accurate floor (speedup 1,
		// degradation 0) is never on any sampled ladder.
		useful := false
		for p := 0; p < npv; p++ {
			if spd[p*n+j] > 1 {
				useful = true
				break
			}
		}
		if !useful {
			continue
		}
		dominated := false
		for _, i := range pf.idx {
			domAll := true
			for p := 0; p < npv; p++ {
				if spd[p*n+i] < spd[p*n+j] || deg[p*n+i] > deg[p*n+j] {
					domAll = false
					break
				}
			}
			if domAll {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		pf.cfgs = append(pf.cfgs, space[j])
		pf.idx = append(pf.idx, j)
	}
	return pf
}

// frontMenus builds every phase's menu from the library, or returns nil
// menus (no error) when the library is off or does not cover the class —
// the caller then falls back to full enumeration.
func (t *Trained) frontMenus(cm *ClassModels, paramVec []float64) ([]phaseMenu, error) {
	if !t.frontOn || t.library == nil {
		return nil, nil
	}
	cf := t.library.classes[cm.CtxSig]
	if cf == nil || len(cf.phase) != len(cm.Phase) {
		return nil, nil
	}
	stop := obs.Timer("core.library.front_duration")
	defer stop()
	menus := make([]phaseMenu, len(cm.Phase))
	for ph, pm := range cm.Phase {
		m, err := t.buildPhaseFront(pm, cf.phase[ph], paramVec)
		if err != nil {
			return nil, err
		}
		menus[ph] = m
	}
	obs.Inc("core.library.front_builds")
	return menus, nil
}

// buildPhaseFront is buildPhaseMenu restricted to a phase's survivors:
// one batched prediction pass over the pruned set, then the identical
// stable degradation sort and strictly-increasing-speedup filter. The
// survivors are stored in ascending enumeration order, so the stable
// sort resolves degradation ties exactly as the full enumeration would.
func (t *Trained) buildPhaseFront(pm *PhaseModel, pf *phaseFront, paramVec []float64) (phaseMenu, error) {
	m := phaseMenu{accurate: make(approx.Config, len(t.Blocks))}
	n := len(pf.cfgs)
	if n == 0 {
		return m, nil
	}
	slab := arena.NewSlab(2 * n)
	defer slab.Release()
	spd := slab.Floats(n)
	deg := slab.Floats(n)
	if err := pm.predictConfigsBatch(t, paramVec, pf.cfgs, spd, deg); err != nil {
		return m, err
	}
	obs.Add("core.optimize.configs_scanned", int64(n))
	orderp := arena.Ints(n)
	defer arena.PutInts(orderp)
	order := *orderp
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return deg[order[a]] < deg[order[b]] })
	bestSpd := 1.0
	for _, i := range order {
		if spd[i] > bestSpd {
			m.ladder = append(m.ladder, phaseChoice{cfg: pf.cfgs[i], spd: spd[i], deg: deg[i]})
			bestSpd = spd[i]
		}
	}
	return m, nil
}

// predictConfigsBatch is the menu predictor over a batch of
// configurations: it writes, per configuration, the expected speedup
// (no confidence band — buildPhaseMenu ranks on the expectation) and
// the conservative degradation (upper confidence edge when
// Opts.UseConfidence). Every model family evaluation runs through
// predictRawBatch, whose per-row arithmetic is exactly the scalar
// path's, so the results are bit-for-bit those of predictConfig.
func (pm *PhaseModel) predictConfigsBatch(t *Trained, paramVec []float64, cfgs []approx.Config, spd, deg []float64) error {
	n := len(cfgs)
	if len(spd) != n || len(deg) != n {
		return fmt.Errorf("core: predictConfigsBatch outputs %d/%d for %d configs", len(spd), len(deg), n)
	}
	if n == 0 {
		return nil
	}
	np := len(paramVec)
	nb := len(t.Blocks)
	gw := nb // global feature width
	if t.Opts.UseIterFeature {
		gw++
	}
	slab := arena.NewSlab(n*(np+1) + 2*n*gw + n*(np+nb) + n)
	defer slab.Release()
	lxFlat := slab.Floats(n * (np + 1))
	sfFlat := slab.Floats(n * gw)
	dfFlat := slab.Floats(n * gw)
	iterFlat := slab.Floats(n * (np + nb))
	col := slab.Floats(n)

	rowsp := arena.Rows(n)
	defer arena.PutRows(rowsp)
	rows := *rowsp

	// Local models: one shared [params..., level] matrix, re-stamping the
	// level column per block.
	for i := range cfgs {
		row := lxFlat[i*(np+1) : (i+1)*(np+1)]
		copy(row, paramVec)
		rows[i] = row
	}
	for b := 0; b < nb; b++ {
		for i, cfg := range cfgs {
			rows[i][np] = float64(cfg[b])
		}
		if err := pm.localSpeedup[b].predictRawBatch(rows, col); err != nil {
			return err
		}
		for i := range cfgs {
			sfFlat[i*gw+b] = col[i]
		}
		if err := pm.localDeg[b].predictRawBatch(rows, col); err != nil {
			return err
		}
		for i := range cfgs {
			dfFlat[i*gw+b] = col[i]
		}
	}
	if t.Opts.UseIterFeature {
		for i, cfg := range cfgs {
			row := iterFlat[i*(np+nb) : (i+1)*(np+nb)]
			copy(row, paramVec)
			for b, l := range cfg {
				row[np+b] = float64(l)
			}
			rows[i] = row
		}
		if err := pm.iter.predictRawBatch(rows, col); err != nil {
			return err
		}
		for i := range cfgs {
			est := pm.iter.fromRaw(col[i])
			sfFlat[i*gw+nb] = est
			dfFlat[i*gw+nb] = est
		}
	}

	// Global models over the assembled feature rows, straight into the
	// output slices (they hold raw values until the final transform).
	for i := range cfgs {
		rows[i] = sfFlat[i*gw : (i+1)*gw]
	}
	if err := pm.globalSpeedup.predictRawBatch(rows, spd); err != nil {
		return err
	}
	for i := range cfgs {
		rows[i] = dfFlat[i*gw : (i+1)*gw]
	}
	if err := pm.globalDeg.predictRawBatch(rows, deg); err != nil {
		return err
	}
	for i := range cfgs {
		sRaw, dRaw := spd[i], deg[i]
		if t.calib != nil && pm.Phase < len(t.calib.spd) {
			sRaw += t.calib.spd[pm.Phase]
			dRaw += t.calib.deg[pm.Phase]
		}
		if t.Opts.UseConfidence {
			dRaw = pm.DegCI.Upper(dRaw)
		}
		spd[i] = clampF(pm.globalSpeedup.fromRaw(sRaw), 0.02, 50)
		deg[i] = clampF(pm.globalDeg.fromRaw(dRaw), 0, apps.MaxDegradation)
	}
	return nil
}

// predictRawBatch evaluates the model on every row of full into out
// (len(out) must equal len(full)), on the training scale with no band or
// clamp — the batched predictRawScratch. Split models partition the rows
// on the raw split feature and recurse; space-expanded models widen
// every row first; the leaf gathers the keep mask and runs one
// poly.Model.PredictBatch, which is bit-for-bit the scalar PredictScratch
// per row. Equivalence tests pin batch == scalar exactly.
func (fm *filteredModel) predictRawBatch(full [][]float64, out []float64) error {
	if len(out) != len(full) {
		return fmt.Errorf("core: predictRawBatch out length %d for %d rows", len(out), len(full))
	}
	if len(full) == 0 {
		return nil
	}
	if fm.lo != nil && fm.hi != nil {
		loRowsp, hiRowsp := arena.Rows(len(full)), arena.Rows(len(full))
		defer arena.PutRows(loRowsp)
		defer arena.PutRows(hiRowsp)
		loIdxp, hiIdxp := arena.Ints(len(full)), arena.Ints(len(full))
		defer arena.PutInts(loIdxp)
		defer arena.PutInts(hiIdxp)
		subp := arena.Floats(len(full))
		defer arena.PutFloats(subp)
		loRows, hiRows := (*loRowsp)[:0], (*hiRowsp)[:0]
		loIdx, hiIdx := (*loIdxp)[:0], (*hiIdxp)[:0]
		for i, x := range full {
			if x[fm.splitFeat] <= fm.splitVal {
				loRows = append(loRows, x)
				loIdx = append(loIdx, i)
			} else {
				hiRows = append(hiRows, x)
				hiIdx = append(hiIdx, i)
			}
		}
		sub := *subp
		if err := fm.lo.predictRawBatch(loRows, sub[:len(loRows)]); err != nil {
			return err
		}
		for k, i := range loIdx {
			out[i] = sub[k]
		}
		if err := fm.hi.predictRawBatch(hiRows, sub[:len(hiRows)]); err != nil {
			return err
		}
		for k, i := range hiIdx {
			out[i] = sub[k]
		}
		return nil
	}
	rows := full
	if fm.expandN > 0 {
		se := poly.SpaceExpansion{NRaw: fm.expandN}
		nd := se.Dim()
		slab := arena.NewSlab(len(full) * nd)
		defer slab.Release()
		viewsp := arena.Rows(len(full))
		defer arena.PutRows(viewsp)
		views := *viewsp
		for i, x := range full {
			buf := slab.Floats(nd)
			views[i] = se.ExpandInto(buf[:0], x)
		}
		rows = views
	}
	if len(fm.keep) != len(rows[0]) {
		gslab := arena.NewSlab(len(full) * len(fm.keep))
		defer gslab.Release()
		gatherp := arena.Rows(len(full))
		defer arena.PutRows(gatherp)
		gather := *gatherp
		for i, x := range rows {
			sel := gslab.Floats(len(fm.keep))
			for k, j := range fm.keep {
				sel[k] = x[j]
			}
			gather[i] = sel
		}
		rows = gather
	}
	return fm.model.PredictBatch(out, rows)
}
