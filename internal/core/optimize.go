package core

import (
	"fmt"
	"sort"
	"time"

	"opprox/internal/approx"
	"opprox/internal/apps"
)

// Prediction is what the optimizer believes the chosen schedule will do.
type Prediction struct {
	// Speedup is the composed application speedup estimate.
	Speedup float64
	// Degradation is the total predicted QoS degradation.
	Degradation float64
	// PerPhase breaks the plan down.
	PerPhase []PhasePlan
	// OptimizeTime is the wall-clock duration of the optimization.
	OptimizeTime time.Duration
}

// PhasePlan is one phase's slice of the plan.
type PhasePlan struct {
	Phase       int
	Levels      approx.Config
	Budget      float64 // sub-budget this phase was given
	Speedup     float64 // predicted (conservative) speedup
	Degradation float64 // predicted (conservative) degradation
}

// Optimize implements the paper's Algorithm 2: split the QoS-degradation
// budget across phases in proportion to their ROI, visit phases in
// decreasing ROI order, pick the configuration with the best predicted
// speedup whose conservative predicted degradation fits the phase budget,
// and hand any unused budget to the remaining phases.
func (t *Trained) Optimize(p apps.Params, budget float64) (approx.Schedule, Prediction, error) {
	start := time.Now()
	if budget < 0 {
		return approx.Schedule{}, Prediction{}, fmt.Errorf("core: negative budget %g", budget)
	}
	pv := p.Vector(t.Specs)
	cm, err := t.classFor(pv)
	if err != nil {
		return approx.Schedule{}, Prediction{}, err
	}

	// Normalized budget shares (paper: normROI · QoSb).
	shares := make([]float64, t.Phases)
	switch t.Opts.BudgetPolicy {
	case BudgetPolicyUniform:
		for ph := range shares {
			shares[ph] = 1 / float64(t.Phases)
		}
	default: // BudgetPolicyROI
		total := 0.0
		for _, pm := range cm.Phase {
			total += pm.ROI
		}
		if total <= 0 {
			for ph := range shares {
				shares[ph] = 1 / float64(t.Phases)
			}
		} else {
			for ph, pm := range cm.Phase {
				shares[ph] = pm.ROI / total
			}
		}
	}

	// Visit phases in decreasing ROI order (paper §3.8).
	order := make([]int, t.Phases)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := cm.Phase[order[a]].ROI, cm.Phase[order[b]].ROI
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})

	sched := approx.UniformSchedule(t.Phases, make(approx.Config, len(t.Blocks)))
	plans := make([]PhasePlan, t.Phases)
	// Shares sum to 1, so walking the phases in ROI order and carrying any
	// unused sub-budget forward redistributes leftovers exactly as the
	// paper describes.
	leftover := 0.0
	for _, ph := range order {
		phaseBudget := budget*shares[ph] + leftover
		best, bestSpd, bestDeg := t.optimizePhase(cm.Phase[ph], pv, phaseBudget)
		sched.Levels[ph] = best
		plans[ph] = PhasePlan{Phase: ph, Levels: best, Budget: phaseBudget, Speedup: bestSpd, Degradation: bestDeg}
		leftover = phaseBudget - bestDeg
		if leftover < 0 {
			leftover = 0
		}
	}
	// Refill passes: conservative predictions typically consume less than
	// the share a phase was given, so keep offering the pooled remainder
	// to each phase (best ROI first) until no phase can upgrade — the
	// paper's leftover reallocation, iterated to a fixed point.
	for pass := 0; pass < 4 && leftover > 1e-9; pass++ {
		improved := false
		for _, ph := range order {
			phaseBudget := plans[ph].Degradation + leftover
			best, bestSpd, bestDeg := t.optimizePhase(cm.Phase[ph], pv, phaseBudget)
			if bestSpd > plans[ph].Speedup+1e-12 {
				leftover = phaseBudget - bestDeg
				if leftover < 0 {
					leftover = 0
				}
				sched.Levels[ph] = best
				plans[ph] = PhasePlan{Phase: ph, Levels: best, Budget: phaseBudget, Speedup: bestSpd, Degradation: bestDeg}
				improved = true
			}
		}
		if !improved {
			break
		}
	}

	pred := Prediction{PerPhase: plans}
	savings := 0.0
	for _, pl := range plans {
		pred.Degradation += pl.Degradation
		if pl.Speedup > 0 {
			savings += 1 - 1/pl.Speedup
		}
	}
	// Per-phase models predict full-app speedup with only that phase
	// approximated; the savings compose additively, the speedups do not.
	if savings > 0.95 {
		savings = 0.95
	}
	if savings < -4 {
		savings = -4
	}
	pred.Speedup = 1 / (1 - savings)
	pred.OptimizeTime = time.Since(start)
	return sched, pred, nil
}

// optimizePhase enumerates the phase's configuration space under the
// trained models and returns the configuration with the highest predicted
// speedup whose conservative degradation fits the budget. The accurate
// configuration (speedup 1, degradation 0) is always feasible.
func (t *Trained) optimizePhase(pm *PhaseModel, paramVec []float64, budget float64) (approx.Config, float64, float64) {
	best := make(approx.Config, len(t.Blocks))
	bestSpd, bestDeg := 1.0, 0.0
	approx.EnumerateConfigs(t.Blocks, func(cfg approx.Config) bool {
		if cfg.IsAccurate() {
			return true
		}
		// Feasibility is judged conservatively — the upper confidence edge
		// of the degradation must fit the budget (paper §3.6) — but the
		// objective ranks on the model's expected speedup: the confidence
		// band's half-width is a per-phase constant on the log scale, so
		// the pessimistic lower edge would preserve the ranking among
		// configurations while spuriously rejecting every modest speedup
		// against the accurate default.
		spd, _ := pm.predictConfig(t, paramVec, cfg, false)
		_, deg := pm.predictConfig(t, paramVec, cfg, t.Opts.UseConfidence)
		if deg <= budget && spd > bestSpd {
			best = cfg
			bestSpd, bestDeg = spd, deg
		}
		return true
	})
	return best, bestSpd, bestDeg
}

// OracleResult is the outcome of the phase-agnostic exhaustive search.
type OracleResult struct {
	Config approx.Config
	// Speedup and Degradation are measured, not predicted: the oracle
	// actually runs every configuration (paper §5.3 calls this the
	// idealized best achievable phase-agnostic result).
	Speedup     float64
	Degradation float64
	// Evaluated is the number of configurations run.
	Evaluated int
}

// PhaseAgnosticOracle exhaustively measures every uniform (whole-run)
// configuration and returns the one with the highest measured speedup
// whose measured degradation fits the budget — the paper's baseline from
// prior work (Sidiroglou et al., Sui et al.).
func PhaseAgnosticOracle(runner *apps.Runner, p apps.Params, budget float64) (OracleResult, error) {
	res := OracleResult{Config: make(approx.Config, len(runner.App.Blocks())), Speedup: 1}
	var firstErr error
	approx.EnumerateConfigs(runner.App.Blocks(), func(cfg approx.Config) bool {
		if cfg.IsAccurate() {
			return true
		}
		ev, err := runner.Evaluate(p, approx.UniformSchedule(1, cfg))
		if err != nil {
			firstErr = err
			return false
		}
		res.Evaluated++
		if ev.Degradation <= budget && ev.Speedup > res.Speedup {
			res.Config = cfg
			res.Speedup = ev.Speedup
			res.Degradation = ev.Degradation
		}
		return true
	})
	if firstErr != nil {
		return OracleResult{}, firstErr
	}
	return res, nil
}

// Evaluate measures a schedule for real and reports measured speedup,
// degradation and work saved — used to score OPPROX's chosen schedule the
// same way the oracle is scored.
func Evaluate(runner *apps.Runner, p apps.Params, sched approx.Schedule) (*apps.Eval, error) {
	return runner.Evaluate(p, sched)
}

// WorkSaved converts a speedup into the "% less work" the abstract quotes.
func WorkSaved(speedup float64) float64 {
	if speedup <= 0 {
		return 0
	}
	return 100 * (1 - 1/speedup)
}
