package core

import (
	"fmt"
	"sort"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/obs"
)

// Prediction is what the optimizer believes the chosen schedule will do.
// It deliberately carries no wall-clock measurement: predictions flow
// into serialized dispatch bodies and determinism goldens, so timing
// lives in obs (core.optimize.duration) where the vet walltime analyzer
// can see it is observability-only.
type Prediction struct {
	// Speedup is the composed application speedup estimate.
	Speedup float64
	// Degradation is the total predicted QoS degradation.
	Degradation float64
	// PerPhase breaks the plan down.
	PerPhase []PhasePlan
}

// PhasePlan is one phase's slice of the plan.
type PhasePlan struct {
	Phase       int
	Levels      approx.Config
	Budget      float64 // sub-budget this phase was given
	Speedup     float64 // predicted (conservative) speedup
	Degradation float64 // predicted (conservative) degradation
}

// Optimize implements the paper's Algorithm 2: split the QoS-degradation
// budget across phases in proportion to their ROI, visit phases in
// decreasing ROI order, pick the configuration with the best predicted
// speedup whose conservative predicted degradation fits the phase budget,
// and hand any unused budget to the remaining phases.
func (t *Trained) Optimize(p apps.Params, budget float64) (approx.Schedule, Prediction, error) {
	stop := obs.Timer("core.optimize.duration")
	if budget < 0 {
		return approx.Schedule{}, Prediction{}, fmt.Errorf("core: negative budget %g", budget)
	}
	pv := p.Vector(t.Specs)
	cm, err := t.classFor(pv)
	if err != nil {
		return approx.Schedule{}, Prediction{}, err
	}

	// Normalized budget shares (paper: normROI · QoSb).
	shares := make([]float64, t.Phases)
	switch t.Opts.BudgetPolicy {
	case BudgetPolicyUniform:
		for ph := range shares {
			shares[ph] = 1 / float64(t.Phases)
		}
	default: // BudgetPolicyROI
		total := 0.0
		for _, pm := range cm.Phase {
			total += pm.ROI
		}
		if total <= 0 {
			for ph := range shares {
				shares[ph] = 1 / float64(t.Phases)
			}
		} else {
			for ph, pm := range cm.Phase {
				shares[ph] = pm.ROI / total
			}
		}
	}

	// Visit phases in decreasing ROI order (paper §3.8).
	order := make([]int, t.Phases)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := cm.Phase[order[a]].ROI, cm.Phase[order[b]].ROI
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})

	// Each phase's configuration space is collapsed exactly once into an
	// upgrade ladder; every budget query afterwards is a binary search, so
	// the reallocation passes below cost O(log configs) instead of a full
	// re-enumeration each. With the Pareto-front library enabled the
	// ladder is built over the pruned survivor set in one batched predict
	// pass (library.go); otherwise the full space is enumerated.
	menus, err := t.frontMenus(cm, pv)
	if err != nil {
		return approx.Schedule{}, Prediction{}, err
	}
	if menus == nil {
		menus = make([]phaseMenu, t.Phases)
		for ph := range menus {
			menus[ph] = t.buildPhaseMenu(cm.Phase[ph], pv)
		}
	}

	// refill offers the pooled remainder to each phase (best ROI first)
	// until no phase can upgrade — the paper's leftover reallocation,
	// iterated to a fixed point. A phase index passed as pinned is held at
	// its current configuration (used by the downgrade moves below; -1
	// pins nothing).
	refill := func(plans []PhasePlan, levels []approx.Config, leftover float64, pinned int) {
		for pass := 0; pass < 2*t.Phases && leftover > 1e-9; pass++ {
			improved := false
			for _, ph := range order {
				if ph == pinned {
					continue
				}
				phaseBudget := plans[ph].Degradation + leftover
				c := menus[ph].query(phaseBudget)
				if c.spd > plans[ph].Speedup+1e-12 {
					leftover = phaseBudget - c.deg
					if leftover < 0 {
						leftover = 0
					}
					levels[ph] = c.cfg
					plans[ph] = PhasePlan{Phase: ph, Levels: c.cfg, Budget: phaseBudget, Speedup: c.spd, Degradation: c.deg}
					improved = true
					obs.Inc("core.optimize.reallocations")
				}
			}
			if !improved {
				break
			}
		}
	}
	totalSavings := func(plans []PhasePlan) float64 {
		s := 0.0
		for _, pl := range plans {
			if pl.Speedup > 0 {
				s += 1 - 1/pl.Speedup
			}
		}
		return s
	}
	totalDeg := func(plans []PhasePlan) float64 {
		d := 0.0
		for _, pl := range plans {
			d += pl.Degradation
		}
		return d
	}

	// localSearch is the downgrade-and-reallocate escape: greedy refill
	// can trap the plan — a phase grabs a configuration that marginally
	// improves its own speedup while consuming budget that, pooled, would
	// have bought better upgrades elsewhere. Tentatively pin one phase at
	// each cheaper rung of its ladder (down to accurate), refill the
	// others from the pooled remainder, and keep the candidate when the
	// total predicted savings improve. Acceptance is strict-improvement
	// only, so the search is a monotone descent and terminates. Without
	// this escape, raising the budget can lower the predicted speedup.
	localSearch := func(plans []PhasePlan, levels []approx.Config) ([]PhasePlan, []approx.Config) {
		for pass := 0; pass < t.Phases+1; pass++ {
			improved := false
			for _, ph := range order {
				cur := plans[ph].Degradation
				if cur == 0 {
					continue
				}
				// Candidate rungs strictly cheaper than the current one,
				// plus the accurate floor.
				rungs := []phaseChoice{{cfg: menus[ph].accurate, spd: 1, deg: 0}}
				for _, r := range menus[ph].ladder {
					if r.deg < cur {
						rungs = append(rungs, r)
					}
				}
				for _, r := range rungs {
					cand := make([]PhasePlan, len(plans))
					copy(cand, plans)
					candLevels := make([]approx.Config, len(levels))
					copy(candLevels, levels)
					cand[ph] = PhasePlan{Phase: ph, Levels: r.cfg, Budget: r.deg, Speedup: r.spd, Degradation: r.deg}
					candLevels[ph] = r.cfg
					candLeft := budget - totalDeg(cand)
					if candLeft < 0 {
						continue
					}
					refill(cand, candLevels, candLeft, ph)
					// The pin kept the downgraded phase from instantly
					// reverting; once the other phases have drawn from the
					// pool, the remainder is offered to every phase — the
					// pinned one included — so no candidate ships dominated
					// (stuck below a rung it can still afford).
					if rem := budget - totalDeg(cand); rem > 1e-9 {
						refill(cand, candLevels, rem, -1)
					}
					if totalSavings(cand) > totalSavings(plans)+1e-12 {
						plans = cand
						levels = candLevels
						improved = true
						obs.Inc("core.optimize.reallocations")
						// plans changed: the remaining rungs were computed
						// against the old plan, so restart this phase's
						// moves on the next pass.
						break
					}
				}
			}
			if !improved {
				break
			}
		}
		// Leave at an unpinned refill fixpoint: every phase has been
		// offered the final leftover, so the returned plan is never
		// dominated by a pure upgrade.
		if rem := budget - totalDeg(plans); rem > 1e-9 {
			refill(plans, levels, rem, -1)
		}
		return plans, levels
	}

	// Start 1 — the paper's share-based allocation: walk the phases in
	// ROI order handing each its normROI·budget share plus any carried
	// leftover (shares sum to 1, so carrying unused sub-budget forward
	// redistributes leftovers exactly as the paper describes).
	sharePlans := make([]PhasePlan, t.Phases)
	shareLevels := make([]approx.Config, t.Phases)
	leftover := 0.0
	for _, ph := range order {
		phaseBudget := budget*shares[ph] + leftover
		c := menus[ph].query(phaseBudget)
		shareLevels[ph] = c.cfg
		sharePlans[ph] = PhasePlan{Phase: ph, Levels: c.cfg, Budget: phaseBudget, Speedup: c.spd, Degradation: c.deg}
		leftover = phaseBudget - c.deg
		if leftover < 0 {
			leftover = 0
		}
	}
	refill(sharePlans, shareLevels, leftover, -1)
	sharePlans, shareLevels = localSearch(sharePlans, shareLevels)

	// Start 2 — pooled: begin all-accurate and let refill hand the whole
	// budget out in ROI order. The two starts reach different local
	// optima; keep the better plan.
	poolPlans := make([]PhasePlan, t.Phases)
	poolLevels := make([]approx.Config, t.Phases)
	for ph := range poolPlans {
		poolPlans[ph] = PhasePlan{Phase: ph, Levels: menus[ph].accurate, Speedup: 1}
		poolLevels[ph] = menus[ph].accurate
	}
	refill(poolPlans, poolLevels, budget, -1)
	poolPlans, poolLevels = localSearch(poolPlans, poolLevels)

	plans, levels := sharePlans, shareLevels
	if totalSavings(poolPlans) > totalSavings(plans)+1e-12 {
		plans, levels = poolPlans, poolLevels
	}
	// The winning level rows alias menu internals (phaseMenu.accurate and
	// ladder cfg slices) and are shared between the schedule and the
	// per-phase plans. Clone each row for each artifact so a caller
	// mutating sched.Levels cannot corrupt Prediction.PerPhase (or vice
	// versa).
	sched := approx.UniformSchedule(t.Phases, make(approx.Config, len(t.Blocks)))
	sched.Levels = make([]approx.Config, t.Phases)
	for ph, lv := range levels {
		sched.Levels[ph] = lv.Clone()
		plans[ph].Levels = plans[ph].Levels.Clone()
	}

	pred := Prediction{PerPhase: plans}
	savings := totalSavings(plans)
	pred.Degradation = totalDeg(plans)
	// Per-phase models predict full-app speedup with only that phase
	// approximated; the savings compose additively, the speedups do not.
	if savings > 0.95 {
		savings = 0.95
	}
	if savings < -4 {
		savings = -4
	}
	pred.Speedup = 1 / (1 - savings)
	stop()
	obs.Inc("core.optimize.runs")
	return sched, pred, nil
}

// phaseChoice is one rung of a phase's upgrade ladder: the best predicted
// configuration affordable at degradation deg.
type phaseChoice struct {
	cfg approx.Config
	spd float64
	deg float64
}

// phaseMenu is a phase's configuration space collapsed into an upgrade
// ladder: entries have strictly increasing degradation AND strictly
// increasing speedup, so "the best configuration whose conservative
// degradation fits budget b" is the last entry with deg <= b.
type phaseMenu struct {
	ladder []phaseChoice
	// accurate is the all-zero configuration, the ladder's implicit floor.
	accurate approx.Config
}

// buildPhaseMenu enumerates the phase's configuration space once under the
// trained models. Feasibility is judged conservatively — the upper
// confidence edge of the degradation must fit the budget (paper §3.6) —
// but the objective ranks on the model's expected speedup: the confidence
// band's half-width is a per-phase constant on the log scale, so the
// pessimistic lower edge would preserve the ranking among configurations
// while spuriously rejecting every modest speedup against the accurate
// default.
func (t *Trained) buildPhaseMenu(pm *PhaseModel, paramVec []float64) phaseMenu {
	type entry struct {
		cfg approx.Config
		spd float64
		deg float64
	}
	var all []entry
	scanned := int64(0)
	approx.EnumerateConfigs(t.Blocks, func(cfg approx.Config) bool {
		if cfg.IsAccurate() {
			return true
		}
		scanned++
		spd, _ := pm.predictConfig(t, paramVec, cfg, false)
		_, deg := pm.predictConfig(t, paramVec, cfg, t.Opts.UseConfidence)
		c := make(approx.Config, len(cfg))
		copy(c, cfg)
		all = append(all, entry{cfg: c, spd: spd, deg: deg})
		return true
	})
	obs.Add("core.optimize.configs_scanned", scanned)
	// Sort by degradation; SliceStable keeps enumeration order among equal
	// degradations, so the ladder (and hence every optimization result) is
	// deterministic.
	sort.SliceStable(all, func(a, b int) bool { return all[a].deg < all[b].deg })
	m := phaseMenu{accurate: make(approx.Config, len(t.Blocks))}
	bestSpd := 1.0 // the accurate configuration is always feasible
	for _, e := range all {
		if e.spd > bestSpd {
			m.ladder = append(m.ladder, phaseChoice{cfg: e.cfg, spd: e.spd, deg: e.deg})
			bestSpd = e.spd
		}
	}
	return m
}

// query returns the best configuration affordable at the given budget; the
// accurate configuration (speedup 1, degradation 0) is the floor.
func (m phaseMenu) query(budget float64) phaseChoice {
	lo, hi := 0, len(m.ladder) // first ladder index with deg > budget
	for lo < hi {
		mid := (lo + hi) / 2
		if m.ladder[mid].deg <= budget {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return phaseChoice{cfg: m.accurate, spd: 1, deg: 0}
	}
	return m.ladder[lo-1]
}

// OracleResult is the outcome of the phase-agnostic exhaustive search.
type OracleResult struct {
	Config approx.Config
	// Speedup and Degradation are measured, not predicted: the oracle
	// actually runs every configuration (paper §5.3 calls this the
	// idealized best achievable phase-agnostic result).
	Speedup     float64
	Degradation float64
	// Evaluated is the number of configurations run.
	Evaluated int
}

// PhaseAgnosticOracle exhaustively measures every uniform (whole-run)
// configuration and returns the one with the highest measured speedup
// whose measured degradation fits the budget — the paper's baseline from
// prior work (Sidiroglou et al., Sui et al.).
func PhaseAgnosticOracle(runner *apps.Runner, p apps.Params, budget float64) (OracleResult, error) {
	res := OracleResult{Config: make(approx.Config, len(runner.App.Blocks())), Speedup: 1}
	var firstErr error
	approx.EnumerateConfigs(runner.App.Blocks(), func(cfg approx.Config) bool {
		if cfg.IsAccurate() {
			return true
		}
		ev, err := runner.Evaluate(p, approx.UniformSchedule(1, cfg))
		if err != nil {
			firstErr = err
			return false
		}
		res.Evaluated++
		if ev.Degradation <= budget && ev.Speedup > res.Speedup {
			res.Config = cfg
			res.Speedup = ev.Speedup
			res.Degradation = ev.Degradation
		}
		return true
	})
	if firstErr != nil {
		return OracleResult{}, firstErr
	}
	return res, nil
}

// Evaluate measures a schedule for real and reports measured speedup,
// degradation and work saved — used to score OPPROX's chosen schedule the
// same way the oracle is scored.
func Evaluate(runner *apps.Runner, p apps.Params, sched approx.Schedule) (*apps.Eval, error) {
	return runner.Evaluate(p, sched)
}

// WorkSaved converts a speedup into the "% less work" the abstract quotes.
func WorkSaved(speedup float64) float64 {
	if speedup <= 0 {
		return 0
	}
	return 100 * (1 - 1/speedup)
}
