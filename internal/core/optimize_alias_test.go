package core

import (
	"testing"

	"opprox/internal/apps"
)

// Regression: Optimize used to return level rows that aliased internal
// menu state (phaseMenu.accurate, ladder cfg slices) and were shared
// between the Schedule and Prediction.PerPhase. A caller mutating
// sched.Levels then silently corrupted the plan's recorded levels.
func TestOptimizeScheduleDoesNotAliasPlan(t *testing.T) {
	_, tr := trainToy(t)
	p := apps.DefaultParams(toyApp{})

	sched, pred, err := tr.Optimize(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.PerPhase) != sched.Phases {
		t.Fatalf("plan has %d phases for a %d-phase schedule", len(pred.PerPhase), sched.Phases)
	}
	want := make([][]int, sched.Phases)
	for ph := range pred.PerPhase {
		want[ph] = append([]int(nil), pred.PerPhase[ph].Levels...)
	}

	// Scribble over the returned schedule.
	for ph := range sched.Levels {
		for bi := range sched.Levels[ph] {
			sched.Levels[ph][bi] = 99
		}
	}
	for ph := range pred.PerPhase {
		for bi, lv := range pred.PerPhase[ph].Levels {
			if lv != want[ph][bi] {
				t.Fatalf("phase %d: mutating sched.Levels changed PerPhase[%d].Levels[%d] from %d to %d",
					ph, ph, bi, want[ph][bi], lv)
			}
		}
	}

	// And the mutation must not leak into a fresh optimization either: the
	// same inputs must reproduce the original schedule byte for byte.
	sched2, pred2, err := tr.Optimize(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	for ph := range pred2.PerPhase {
		for bi, lv := range sched2.Levels[ph] {
			if lv != want[ph][bi] {
				t.Fatalf("phase %d block %d: re-optimize returned level %d, want %d (internal state corrupted)",
					ph, bi, lv, want[ph][bi])
			}
		}
		// The plan rows and schedule rows agree but do not share storage.
		sched2.Levels[ph][0] = -1
		if pred2.PerPhase[ph].Levels[0] == -1 {
			t.Fatalf("phase %d: schedule and plan share a level row", ph)
		}
		sched2.Levels[ph][0] = want[ph][0]
	}
}
