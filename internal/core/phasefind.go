package core

import (
	"math"
	"math/rand"

	"opprox/internal/approx"
	"opprox/internal/apps"
)

// FindPhaseGranularity implements the paper's Algorithm 1: starting from
// N=2, keep doubling the number of phases while doing so still changes the
// observed phase-to-phase QoS structure by more than the threshold.
//
// The helper statistic (getMaxQoSDiff in the paper) runs the application
// with a set of probe approximation settings applied to one phase at a
// time and returns the maximum difference between the mean QoS
// degradations of consecutive phases. When doubling N no longer moves that
// statistic, finer phases are not revealing new structure and the search
// stops (paper §3.5).
func FindPhaseGranularity(runner *apps.Runner, p apps.Params, thresh float64, maxPhases int, rng *rand.Rand) (int, error) {
	if maxPhases < 2 {
		return 2, nil
	}
	n := 2
	prev, err := maxQoSDiff(runner, p, n, rng)
	if err != nil {
		return 0, err
	}
	for n*2 <= maxPhases {
		next := n * 2
		cur, err := maxQoSDiff(runner, p, next, rng)
		if err != nil {
			return 0, err
		}
		if math.Abs(prev-cur) <= thresh {
			break
		}
		n = next
		prev = cur
	}
	return n, nil
}

// probeConfigs builds the approximation settings getMaxQoSDiff probes
// with: a mid-level and max-level uniform config plus a few deterministic
// random ones.
func probeConfigs(blocks []approx.Block, rng *rand.Rand) []approx.Config {
	mid := make(approx.Config, len(blocks))
	maxc := make(approx.Config, len(blocks))
	for i, b := range blocks {
		mid[i] = (b.MaxLevel + 1) / 2
		maxc[i] = b.MaxLevel
	}
	cfgs := []approx.Config{mid, maxc}
	for j := 0; j < 3; j++ {
		c := make(approx.Config, len(blocks))
		for i, b := range blocks {
			c[i] = rng.Intn(b.MaxLevel + 1)
		}
		cfgs = append(cfgs, c)
	}
	return cfgs
}

// maxQoSDiff is the paper's getMaxQoSDiff: with the execution divided into
// n phases, approximate one phase at a time under several settings and
// return the maximum |mean QoS(ph) - mean QoS(ph+1)| over consecutive
// phase pairs.
func maxQoSDiff(runner *apps.Runner, p apps.Params, n int, rng *rand.Rand) (float64, error) {
	cfgs := probeConfigs(runner.App.Blocks(), rng)
	means := make([]float64, n)
	for ph := 0; ph < n; ph++ {
		sum := 0.0
		for _, cfg := range cfgs {
			ev, err := runner.Evaluate(p, approx.SinglePhaseSchedule(n, ph, cfg))
			if err != nil {
				return 0, err
			}
			sum += ev.Degradation
		}
		means[ph] = sum / float64(len(cfgs))
	}
	maxDiff := 0.0
	for ph := 0; ph+1 < n; ph++ {
		if d := math.Abs(means[ph] - means[ph+1]); d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff, nil
}
