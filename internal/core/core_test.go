package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/qos"
	"opprox/internal/trace"
)

// toyApp is an analytically controlled application: 20 fixed outer
// iterations, two blocks, degradation that is linear in the level and
// strongly weighted toward early phases, work savings linear in the level.
// Its clean polynomial structure lets the tests assert that the whole
// train→model→optimize pipeline recovers the right decisions.
type toyApp struct{}

func (toyApp) Name() string { return "toy" }

func (toyApp) Blocks() []approx.Block {
	return []approx.Block{
		{Name: "alpha", Technique: approx.Perforation, MaxLevel: 3},
		{Name: "beta", Technique: approx.Memoization, MaxLevel: 2},
	}
}

func (toyApp) Params() []apps.ParamSpec {
	return []apps.ParamSpec{
		{Name: "size", Values: []float64{10, 20}, Default: 10},
	}
}

const toyIters = 20

// phaseWeight makes early iterations 6x as damaging as late ones.
func toyPhaseWeight(iter int) float64 {
	return 6 - 5*float64(iter)/float64(toyIters-1)
}

func (a toyApp) Run(p apps.Params, sched approx.Schedule, baselineIters int) (apps.Result, error) {
	if err := sched.Validate(a.Blocks()); err != nil {
		return apps.Result{}, err
	}
	size := p.Vector(a.Params())[0]
	var rec trace.Recorder
	damage := 0.0
	for iter := 0; iter < toyIters; iter++ {
		rec.BeginIteration()
		ph := approx.PhaseOf(iter, baselineIters, sched.Phases)
		lv := sched.LevelsAt(ph)
		rec.Call("alpha", uint64((8-2*lv[0])*int(size)))
		rec.Call("beta", uint64((6-2*lv[1])*int(size)))
		rec.Overhead(uint64(14 * size))
		damage += toyPhaseWeight(iter) * (float64(lv[0]) + 1.5*float64(lv[1]))
	}
	return apps.Result{
		Output:     []float64{100 + damage, 50},
		Work:       rec.TotalWork(),
		OuterIters: rec.Iterations(),
		CtxSig:     "alpha>beta",
	}, nil
}

func (toyApp) QoS(exact, approximate []float64) (float64, error) {
	return qos.Distortion(exact, approximate)
}

var _ apps.App = toyApp{}

func fastOptions() Options {
	o := DefaultOptions()
	o.Phases = 4
	o.JointSamplesPerPhase = 10
	o.Folds = 5
	o.MaxPolyDegree = 3
	return o
}

func trainToy(t *testing.T) (*apps.Runner, *Trained) {
	t.Helper()
	runner := apps.NewRunner(toyApp{})
	tr, err := Train(runner, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	return runner, tr
}

func TestTrainToyModelsAccurate(t *testing.T) {
	_, tr := trainToy(t)
	if tr.Phases != 4 {
		t.Fatalf("phases = %d, want 4", tr.Phases)
	}
	if len(tr.Records) == 0 {
		t.Fatal("no training records")
	}
	sR2, dR2 := tr.ModelQuality()
	if sR2 < 0.95 || dR2 < 0.95 {
		t.Fatalf("toy models should be near-perfect: speedup R²=%.3f deg R²=%.3f", sR2, dR2)
	}
}

func TestPredictPhaseMatchesMeasurement(t *testing.T) {
	runner, tr := trainToy(t)
	p := apps.DefaultParams(toyApp{})
	for ph := 0; ph < 4; ph++ {
		cfg := approx.Config{2, 1}
		spd, deg, err := tr.PredictPhase(p, ph, cfg, false)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := runner.Evaluate(p, approx.SinglePhaseSchedule(4, ph, cfg))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(spd-ev.Speedup) > 0.05*ev.Speedup {
			t.Fatalf("phase %d speedup pred %.3f vs actual %.3f", ph, spd, ev.Speedup)
		}
		if math.Abs(deg-ev.Degradation) > 0.35*ev.Degradation+0.4 {
			t.Fatalf("phase %d deg pred %.3f vs actual %.3f", ph, deg, ev.Degradation)
		}
	}
}

func TestPredictPhaseValidation(t *testing.T) {
	_, tr := trainToy(t)
	p := apps.DefaultParams(toyApp{})
	if _, _, err := tr.PredictPhase(p, 9, approx.Config{0, 0}, false); err == nil {
		t.Fatal("want phase range error")
	}
	if _, _, err := tr.PredictPhase(p, 0, approx.Config{9, 0}, false); err == nil {
		t.Fatal("want config validation error")
	}
}

func TestOptimizePrefersLatePhases(t *testing.T) {
	_, tr := trainToy(t)
	p := apps.DefaultParams(toyApp{})
	sched, pred, err := tr.Optimize(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(tr.Blocks); err != nil {
		t.Fatal(err)
	}
	if pred.Degradation > 10 {
		t.Fatalf("predicted degradation %.2f exceeds budget 10", pred.Degradation)
	}
	// Damage per level is 6x higher in phase 0 than phase 3, so the total
	// approximation weight must lean late.
	early := sched.Levels[0][0] + sched.Levels[0][1]
	late := sched.Levels[3][0] + sched.Levels[3][1]
	if late < early {
		t.Fatalf("optimizer put more approximation early (%d) than late (%d): %s", early, late, sched)
	}
	if late == 0 {
		t.Fatalf("optimizer found nothing despite clean models: %s", sched)
	}
}

func TestOptimizeBudgetMonotone(t *testing.T) {
	runner, tr := trainToy(t)
	p := apps.DefaultParams(toyApp{})
	prev := 0.0
	for _, budget := range []float64{2, 5, 10, 25} {
		sched, _, err := tr.Optimize(p, budget)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := runner.Evaluate(p, sched)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Degradation > budget {
			t.Fatalf("budget %g violated: measured %.2f", budget, ev.Degradation)
		}
		if ev.Speedup+1e-9 < prev {
			t.Fatalf("speedup not monotone in budget: %.3f after %.3f", ev.Speedup, prev)
		}
		prev = ev.Speedup
	}
}

func TestOptimizeZeroBudget(t *testing.T) {
	_, tr := trainToy(t)
	sched, pred, err := tr.Optimize(apps.DefaultParams(toyApp{}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.IsAccurate() {
		t.Fatalf("zero budget must yield the accurate schedule, got %s", sched)
	}
	if pred.Speedup != 1 || pred.Degradation != 0 {
		t.Fatalf("zero-budget prediction %+v", pred)
	}
}

func TestOptimizeNegativeBudget(t *testing.T) {
	_, tr := trainToy(t)
	if _, _, err := tr.Optimize(apps.DefaultParams(toyApp{}), -1); err == nil {
		t.Fatal("want error for negative budget")
	}
}

func TestBudgetPolicies(t *testing.T) {
	runner := apps.NewRunner(toyApp{})
	for _, policy := range []BudgetPolicy{BudgetPolicyROI, BudgetPolicyUniform} {
		opts := fastOptions()
		opts.BudgetPolicy = policy
		tr, err := Train(runner, opts)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		sched, _, err := tr.Optimize(apps.DefaultParams(toyApp{}), 8)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if err := sched.Validate(tr.Blocks); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
	}
	if BudgetPolicyROI.String() != "roi" || BudgetPolicyUniform.String() != "uniform" {
		t.Fatal("policy names wrong")
	}
	if BudgetPolicy(9).String() == "" {
		t.Fatal("unknown policy should still render")
	}
}

func TestPhaseAgnosticOracleToy(t *testing.T) {
	runner := apps.NewRunner(toyApp{})
	p := apps.DefaultParams(toyApp{})
	res, err := PhaseAgnosticOracle(runner, p, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != approx.NumConfigs(toyApp{}.Blocks())-1 {
		t.Fatalf("oracle evaluated %d configs, want %d", res.Evaluated, approx.NumConfigs(toyApp{}.Blocks())-1)
	}
	if res.Degradation > 15 {
		t.Fatalf("oracle exceeded budget: %.2f", res.Degradation)
	}
	if res.Speedup < 1 {
		t.Fatalf("oracle speedup %.3f < 1", res.Speedup)
	}
	// With budget 0 only the accurate config fits.
	res0, err := PhaseAgnosticOracle(runner, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res0.Config.IsAccurate() || res0.Speedup != 1 {
		t.Fatalf("zero-budget oracle picked %v", res0.Config)
	}
}

func TestParamCombos(t *testing.T) {
	specs := []apps.ParamSpec{
		{Name: "a", Values: []float64{1, 2}},
		{Name: "b", Values: []float64{3, 4, 5}},
	}
	rng := rand.New(rand.NewSource(1))
	combos := ParamCombos(specs, 0, rng)
	if len(combos) != 6 {
		t.Fatalf("combos = %d, want 6", len(combos))
	}
	seen := map[string]bool{}
	for _, c := range combos {
		if seen[c.Key()] {
			t.Fatalf("duplicate combo %s", c.Key())
		}
		seen[c.Key()] = true
	}
	capped := ParamCombos(specs, 4, rng)
	if len(capped) != 4 {
		t.Fatalf("capped combos = %d, want 4", len(capped))
	}
}

func TestFindPhaseGranularity(t *testing.T) {
	runner := apps.NewRunner(toyApp{})
	rng := rand.New(rand.NewSource(1))
	n, err := FindPhaseGranularity(runner, apps.DefaultParams(toyApp{}), 2.0, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 || n > 8 || n&(n-1) != 0 {
		t.Fatalf("phase count %d not a power of two in [2,8]", n)
	}
	// A huge threshold stops immediately at 2.
	n2, err := FindPhaseGranularity(runner, apps.DefaultParams(toyApp{}), 1e9, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 2 {
		t.Fatalf("huge threshold should settle at 2 phases, got %d", n2)
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []func(*Options){
		func(o *Options) { o.Phases = -1 },
		func(o *Options) { o.JointSamplesPerPhase = 0 },
		func(o *Options) { o.TargetR2 = 0 },
		func(o *Options) { o.TargetR2 = 1.5 },
		func(o *Options) { o.MaxPolyDegree = 0 },
		func(o *Options) { o.Folds = 1 },
		func(o *Options) { o.ConfidenceP = 0 },
	}
	for i, mutate := range bad {
		o := DefaultOptions()
		mutate(&o)
		if err := o.validate(); err == nil {
			t.Fatalf("case %d: invalid options accepted", i)
		}
	}
	good := DefaultOptions()
	if err := good.validate(); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}
}

func TestPhaseROI(t *testing.T) {
	_, tr := trainToy(t)
	rois, err := tr.PhaseROI(apps.DefaultParams(toyApp{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rois) != 4 {
		t.Fatalf("rois = %v", rois)
	}
	// Later phases give the same speedup for much less damage → higher ROI.
	if rois[3] <= rois[0] {
		t.Fatalf("late-phase ROI %.3f should beat early %.3f", rois[3], rois[0])
	}
}

func TestWorkSaved(t *testing.T) {
	if got := WorkSaved(1.25); math.Abs(got-20) > 1e-9 {
		t.Fatalf("WorkSaved(1.25) = %g, want 20", got)
	}
	if WorkSaved(0) != 0 {
		t.Fatal("WorkSaved(0) should be 0")
	}
	if WorkSaved(0.5) >= 0 {
		t.Fatal("slowdown should report negative saved work")
	}
}

func TestTrainSeedsDeterministic(t *testing.T) {
	runner := apps.NewRunner(toyApp{})
	opts := fastOptions()
	t1, err := Train(runner, opts)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Train(apps.NewRunner(toyApp{}), opts)
	if err != nil {
		t.Fatal(err)
	}
	s1, _, _ := t1.PredictPhase(apps.DefaultParams(toyApp{}), 1, approx.Config{1, 1}, false)
	s2, _, _ := t2.PredictPhase(apps.DefaultParams(toyApp{}), 1, approx.Config{1, 1}, false)
	if s1 != s2 {
		t.Fatalf("training not deterministic: %.9f vs %.9f", s1, s2)
	}
}

// errApp fails on every run, to exercise error propagation.
type errApp struct{ toyApp }

func (errApp) Run(apps.Params, approx.Schedule, int) (apps.Result, error) {
	return apps.Result{}, fmt.Errorf("boom")
}

func TestTrainPropagatesRunErrors(t *testing.T) {
	if _, err := Train(apps.NewRunner(errApp{}), fastOptions()); err == nil {
		t.Fatal("want error from failing app")
	}
}

// twoPathApp is toyApp with input-dependent control flow: the "mode"
// parameter swaps the block order (and their damage weights), like
// vidpipe's filter-order input. It exercises the decision-tree path.
type twoPathApp struct{ toyApp }

func (twoPathApp) Params() []apps.ParamSpec {
	return []apps.ParamSpec{
		{Name: "size", Values: []float64{10, 20}, Default: 10},
		{Name: "mode", Values: []float64{0, 1}, Default: 0},
	}
}

func (a twoPathApp) Run(p apps.Params, sched approx.Schedule, baselineIters int) (apps.Result, error) {
	if err := sched.Validate(a.Blocks()); err != nil {
		return apps.Result{}, err
	}
	pv := p.Vector(a.Params())
	size, mode := pv[0], pv[1]
	var rec trace.Recorder
	damage := 0.0
	for iter := 0; iter < toyIters; iter++ {
		rec.BeginIteration()
		ph := approx.PhaseOf(iter, baselineIters, sched.Phases)
		lv := sched.LevelsAt(ph)
		rec.Call("alpha", uint64((8-2*lv[0])*int(size)))
		rec.Call("beta", uint64((6-2*lv[1])*int(size)))
		rec.Overhead(uint64(14 * size))
		if mode < 0.5 {
			damage += toyPhaseWeight(iter) * (float64(lv[0]) + 1.5*float64(lv[1]))
		} else {
			damage += toyPhaseWeight(iter) * (2.5*float64(lv[0]) + 0.5*float64(lv[1]))
		}
	}
	sig := "alpha>beta"
	if mode >= 0.5 {
		sig = "beta>alpha"
	}
	return apps.Result{
		Output:     []float64{100 + damage, 50},
		Work:       rec.TotalWork(),
		OuterIters: rec.Iterations(),
		CtxSig:     sig,
	}, nil
}

func TestControlFlowClassification(t *testing.T) {
	runner := apps.NewRunner(twoPathApp{})
	tr, err := Train(runner, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tr.ControlFlow == nil {
		t.Fatal("no control-flow classifier for a two-path app")
	}
	// The tree should classify both modes correctly from the raw params.
	for _, mode := range []float64{0, 1} {
		p := apps.Params{"size": 10, "mode": mode}
		sig, err := tr.ControlFlow.Predict(p.Vector(tr.Specs))
		if err != nil {
			t.Fatal(err)
		}
		want := "alpha>beta"
		if mode == 1 {
			want = "beta>alpha"
		}
		if sig != want {
			t.Fatalf("mode %v classified as %q, want %q", mode, sig, want)
		}
	}
	// Per-class models must reflect the different damage profiles: in
	// mode 0 block beta is the damaging one, in mode 1 block alpha.
	p0 := apps.Params{"size": 10, "mode": 0}
	p1 := apps.Params{"size": 10, "mode": 1}
	_, degBeta0, err := tr.PredictPhase(p0, 0, approx.Config{0, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	_, degAlpha0, err := tr.PredictPhase(p0, 0, approx.Config{2, 0}, false)
	if err != nil {
		t.Fatal(err)
	}
	if degBeta0 <= degAlpha0 {
		t.Fatalf("mode 0: beta (%g) should out-damage alpha (%g)", degBeta0, degAlpha0)
	}
	_, degAlpha1, err := tr.PredictPhase(p1, 0, approx.Config{2, 0}, false)
	if err != nil {
		t.Fatal(err)
	}
	_, degBeta1, err := tr.PredictPhase(p1, 0, approx.Config{0, 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	if degAlpha1 <= degBeta1 {
		t.Fatalf("mode 1: alpha (%g) should out-damage beta (%g)", degAlpha1, degBeta1)
	}
}
