package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/ml/arena"
	"opprox/internal/ml/conf"
	"opprox/internal/ml/mic"
	"opprox/internal/ml/poly"
	"opprox/internal/ml/tree"
	"opprox/internal/obs"
)

// pooledClass is the control-flow class identifier for the fallback models
// trained on all records regardless of control flow.
const pooledClass = "*"

// maxExpandedKeep caps how many columns of the space-expanded basis the
// MIC filter may keep (Options.ExpandFeatures). The quadratic derived
// basis can clear a fixed threshold wholesale; an uncapped keep set would
// push the polynomial degree search past the sample budget.
const maxExpandedKeep = 12

// filteredModel is a polynomial model plus the MIC feature mask that was
// applied before fitting (paper §3.7).
// targetScale selects the response transformation a model is fitted on.
// Speedups and QoS degradations both have heavy multiplicative tails;
// fitting them on a log scale keeps the residual band tight where it
// matters (the low-degradation region the optimizer searches) instead of
// letting a few blown-up runs widen the confidence interval everywhere.
// It also linearizes composition: speedups of independent blocks compose
// multiplicatively, which is additive — degree-1 — in log space.
type targetScale int

const (
	scaleLinear targetScale = iota // y
	scaleLog                       // log(y), for strictly positive targets
	scaleLog1p                     // log(1+y), for non-negative targets
)

func (sc targetScale) to(y float64) float64 {
	switch sc {
	case scaleLog:
		return math.Log(math.Max(y, 1e-9))
	case scaleLog1p:
		return math.Log1p(math.Max(y, 0))
	default:
		return y
	}
}

func (sc targetScale) from(v float64) float64 {
	switch sc {
	case scaleLog:
		return math.Exp(v)
	case scaleLog1p:
		return math.Expm1(v)
	default:
		return v
	}
}

type filteredModel struct {
	model *poly.Model
	keep  []int // indices into the (possibly expanded) feature vector
	scale targetScale
	// expandN, when non-zero, is the raw feature count the model's
	// space-expanded basis derives from (Options.ExpandFeatures): inputs
	// are widened by poly.SpaceExpansion{NRaw: expandN} before the keep
	// mask applies. Zero means the model reads raw features directly.
	expandN int
	// degree and cvScore document what the degree search chose; trainR2
	// is the model's fit quality on its training data (routed fit for
	// split models).
	degree  int
	cvScore float64
	trainR2 float64
	// Sub-model split (paper §3.7): when the degree search cannot reach
	// the target R² over the whole training set, the data is split at the
	// median of the most informative feature and a separate model is fit
	// per half. lo/hi are nil for an unsplit model.
	splitFeat int
	splitVal  float64
	lo, hi    *filteredModel
}

// predictRaw evaluates the model on the (possibly log) training scale,
// routing through the sub-model split when present.
func (fm *filteredModel) predictRaw(full []float64) float64 {
	scratchp := arena.Floats(2 * len(full))
	v := fm.predictRawScratch(full, *scratchp)
	arena.PutFloats(scratchp)
	return v
}

// predictRawScratch is predictRaw with caller-provided scratch of length
// >= 2*len(full), covering the MIC remap buffer and the model's
// standardization buffer. The prediction hot path carves one arena buffer
// per configuration and threads it here, so evaluating a full model family
// costs a single pool round-trip.
func (fm *filteredModel) predictRawScratch(full, scratch []float64) float64 {
	if fm.lo != nil && fm.hi != nil {
		// The split always routes on the raw feature vector, expansion or
		// not: splitFeat was chosen by MIC over the raw inputs.
		if full[fm.splitFeat] <= fm.splitVal {
			return fm.lo.predictRawScratch(full, scratch)
		}
		return fm.hi.predictRawScratch(full, scratch)
	}
	if fm.expandN > 0 {
		// Space-expanded model: the derived vector and its own gather +
		// standardization scratch are carved from one arena buffer — the
		// caller's scratch was sized for the raw width.
		se := poly.SpaceExpansion{NRaw: fm.expandN}
		nd := se.Dim()
		bufp := arena.Floats(3 * nd)
		buf := *bufp
		derived := se.ExpandInto(buf[:0:nd], full)
		v := fm.leafPredict(derived, buf[nd:])
		arena.PutFloats(bufp)
		return v
	}
	return fm.leafPredict(full, scratch)
}

// leafPredict applies the keep mask and evaluates the fitted model on a
// feature vector already in the model's input space (raw, or derived
// when expandN > 0). scratch must hold 2*len(x) floats.
func (fm *filteredModel) leafPredict(x, scratch []float64) float64 {
	if len(fm.keep) != len(x) {
		sel := scratch[:len(fm.keep)]
		scratch = scratch[len(fm.keep):]
		for i, j := range fm.keep {
			sel[i] = x[j]
		}
		x = sel
	}
	return fm.model.PredictScratch(x, scratch)
}

// fromRaw maps a value on the model's training scale back to the natural
// scale.
func (fm *filteredModel) fromRaw(v float64) float64 { return fm.scale.from(v) }

// predict evaluates the model and maps back to the natural scale.
func (fm *filteredModel) predict(full []float64) float64 {
	return fm.fromRaw(fm.predictRaw(full))
}

// PhaseModel holds every model OPPROX builds for one execution phase of
// one control-flow class (paper §3.6).
type PhaseModel struct {
	Phase int
	// localSpeedup[b] and localDeg[b] model the effect of approximating
	// only block b in this phase: features [params..., level].
	localSpeedup []*filteredModel
	localDeg     []*filteredModel
	// iter estimates the outer-loop iteration count:
	// features [params..., levels...].
	iter *filteredModel
	// globalSpeedup and globalDeg combine the local predictions:
	// features [localPred_1..M, iterEstimate?].
	globalSpeedup *filteredModel
	globalDeg     *filteredModel
	// Confidence bands from out-of-fold residuals of the global models,
	// expressed on the models' (log) training scale and conditioned on the
	// predicted value (banded).
	SpeedupCI conf.Banded
	DegCI     conf.Banded
	// ROI is the phase's mean speedup-per-degradation (paper Eq. 1).
	ROI float64
	// R2 scores of the global models on their training data (reported in
	// the paper's Fig. 12/13 discussion).
	SpeedupR2 float64
	DegR2     float64
}

// ClassModels is the per-control-flow-class model set (paper §3.4: one
// model family per distinct control flow).
type ClassModels struct {
	CtxSig string
	Phase  []*PhaseModel
}

// Trained is the result of OPPROX's offline training.
type Trained struct {
	Opts   Options
	Phases int
	Specs  []apps.ParamSpec
	Blocks []approx.Block
	// ControlFlow predicts the control-flow class from input parameters
	// (nil when every training input took the same path).
	ControlFlow *tree.Classifier
	Classes     map[string]*ClassModels
	// Records is the full training set (kept for ROI, experiments, and
	// model evaluation).
	Records []Record
	// TrainTime is the wall-clock duration of Train.
	TrainTime time.Duration

	// calib holds optional canary-input calibration shifts (see
	// CalibrateCanary); nil when the models are used as trained.
	calib *canaryShift

	// library holds the Pareto-front plan library (DESIGN.md §14): per
	// (class, phase) the configurations that survive dominance pruning
	// over a sample of training parameter vectors. Built at train time
	// when Options.FrontLibrary is set, reconstructed by LoadTrained from
	// the persisted survivor sets, or built on demand by
	// EnableFrontLibrary. frontOn gates whether Optimize consults it.
	library *planLibrary
	frontOn bool
}

// Train runs OPPROX's offline pipeline for an application: phase search,
// sampling, control-flow classification, and model fitting.
func Train(runner *apps.Runner, opts Options) (*Trained, error) {
	stop := obs.Timer("core.train.duration")
	if err := opts.validate(); err != nil {
		return nil, err
	}
	app := runner.App
	rng := rand.New(rand.NewSource(opts.Seed))
	combos := ParamCombos(app.Params(), opts.MaxParamCombos, rng)
	if len(combos) == 0 {
		return nil, errors.New("core: application declares no parameters")
	}

	phases := opts.Phases
	if phases == 0 {
		var err error
		phases, err = FindPhaseGranularity(runner, apps.DefaultParams(app), opts.PhaseThreshold, opts.MaxPhases, rng)
		if err != nil {
			return nil, fmt.Errorf("phase search: %w", err)
		}
	}

	s := &sampler{runner: runner, rng: rng, workers: opts.Parallelism}
	records, err := s.collectAll(combos, phases, opts.JointSamplesPerPhase)
	if err != nil {
		return nil, err
	}
	t, err := FitRecords(app, phases, records, opts, rng)
	if err != nil {
		return nil, err
	}
	t.TrainTime = stop()
	obs.Inc("core.train.runs")
	obs.LogEvent("core.train", "%s: %d phases, %d records in %s", app.Name(), phases, len(records), t.TrainTime.Round(time.Millisecond))
	return t, nil
}

// FitRecords builds the model families from pre-collected training
// records, without sampling. Train uses it after sampling; experiments use
// it directly for held-out model evaluation.
func FitRecords(app apps.App, phases int, records []Record, opts Options, rng *rand.Rand) (*Trained, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	t := &Trained{
		Opts:    opts,
		Phases:  phases,
		Specs:   app.Params(),
		Blocks:  app.Blocks(),
		Classes: make(map[string]*ClassModels),
		Records: records,
	}

	// Control-flow classifier (paper §3.4): predict the AB sequence from
	// the input parameters.
	classes := map[string][]Record{}
	for _, r := range records {
		classes[r.CtxSig] = append(classes[r.CtxSig], r)
	}
	if len(classes) > 1 {
		var xs [][]float64
		var labels []string
		for _, r := range records {
			xs = append(xs, r.ParamVec)
			labels = append(labels, r.CtxSig)
		}
		clf, err := tree.Fit(xs, labels, tree.Options{MinLeafSize: 2})
		if err != nil {
			return nil, fmt.Errorf("control-flow tree: %w", err)
		}
		t.ControlFlow = clf
	}

	// Per-class models, plus a pooled fallback when there are multiple
	// classes. Classes are fitted in sorted-signature order: fitting
	// consumes the shared rng, so map-iteration order would make the
	// models differ from run to run whenever an app has more than one
	// control-flow class.
	for _, sig := range sortedClassKeys(classes) {
		cm, err := t.fitClass(sig, classes[sig], rng)
		if err != nil {
			return nil, fmt.Errorf("class %q: %w", sig, err)
		}
		t.Classes[sig] = cm
	}
	if len(classes) > 1 {
		cm, err := t.fitClass(pooledClass, records, rng)
		if err != nil {
			return nil, fmt.Errorf("pooled class: %w", err)
		}
		t.Classes[pooledClass] = cm
	}
	if opts.FrontLibrary {
		if err := t.BuildFrontLibrary(); err != nil {
			return nil, fmt.Errorf("front library: %w", err)
		}
	}
	return t, nil
}

// sortedClassKeys returns the control-flow signatures in sorted order.
func sortedClassKeys(classes map[string][]Record) []string {
	keys := make([]string, 0, len(classes))
	for sig := range classes {
		keys = append(keys, sig)
	}
	sort.Strings(keys)
	return keys
}

// fitClass builds the per-phase model family for one control-flow class.
func (t *Trained) fitClass(sig string, recs []Record, rng *rand.Rand) (*ClassModels, error) {
	cm := &ClassModels{CtxSig: sig, Phase: make([]*PhaseModel, t.Phases)}
	for ph := 0; ph < t.Phases; ph++ {
		var phaseRecs []Record
		for _, r := range recs {
			if r.Phase == ph {
				phaseRecs = append(phaseRecs, r)
			}
		}
		pm, err := t.fitPhase(ph, phaseRecs, rng)
		if err != nil {
			return nil, fmt.Errorf("phase %d: %w", ph, err)
		}
		cm.Phase[ph] = pm
	}
	return cm, nil
}

func (t *Trained) fitPhase(ph int, recs []Record, rng *rand.Rand) (*PhaseModel, error) {
	if len(recs) == 0 {
		return nil, errors.New("no training records")
	}
	// Settings whose output is unusable are excluded from model fitting
	// and ROI, mirroring the paper's sensitivity profiling, which filters
	// out blocks/settings with unacceptable-quality output (§3.1). They
	// stay in Records for the characterization figures.
	usable := recs[:0:0]
	for _, r := range recs {
		if r.Degradation <= t.Opts.UsableDegradation {
			usable = append(usable, r)
		}
	}
	if len(usable) >= len(recs)/4 && len(usable) > 0 {
		recs = usable
	}
	nb := len(t.Blocks)
	pm := &PhaseModel{
		Phase:        ph,
		localSpeedup: make([]*filteredModel, nb),
		localDeg:     make([]*filteredModel, nb),
	}

	// Step 1: local models from the exhaustive single-block sweeps
	// (paper §3.6 "the first step builds local models").
	for b := 0; b < nb; b++ {
		var xs [][]float64
		var spd, deg []float64
		for _, r := range recs {
			if !singleBlock(r.Levels, b) {
				continue
			}
			xs = append(xs, append(append([]float64{}, r.ParamVec...), float64(r.Levels[b])))
			spd = append(spd, r.Speedup)
			deg = append(deg, r.Degradation)
		}
		var err error
		if pm.localSpeedup[b], err = t.fitTarget(xs, spd, scaleLog, rng); err != nil {
			return nil, fmt.Errorf("local speedup block %d: %w", b, err)
		}
		if pm.localDeg[b], err = t.fitTarget(xs, deg, scaleLog1p, rng); err != nil {
			return nil, fmt.Errorf("local degradation block %d: %w", b, err)
		}
	}

	// Iteration-count estimator over all records of the phase
	// (paper §3.6 "estimating iteration counts").
	var iterXs [][]float64
	var iterYs []float64
	for _, r := range recs {
		iterXs = append(iterXs, t.rawFeatures(r.ParamVec, r.Levels))
		iterYs = append(iterYs, float64(r.Iters))
	}
	var err error
	if pm.iter, err = t.fitTarget(iterXs, iterYs, scaleLinear, rng); err != nil {
		return nil, fmt.Errorf("iteration model: %w", err)
	}

	// Step 2: global models over the local predictions (+ the iteration
	// estimate as an explicit feature).
	var gSpdXs, gDegXs [][]float64
	var gSpd, gDeg []float64
	for _, r := range recs {
		sf, df := pm.globalFeatures(t, r.ParamVec, r.Levels)
		gSpdXs = append(gSpdXs, sf)
		gDegXs = append(gDegXs, df)
		gSpd = append(gSpd, r.Speedup)
		gDeg = append(gDeg, r.Degradation)
	}
	if pm.globalSpeedup, err = t.fitTarget(gSpdXs, gSpd, scaleLog, rng); err != nil {
		return nil, fmt.Errorf("global speedup: %w", err)
	}
	if pm.globalDeg, err = t.fitTarget(gDegXs, gDeg, scaleLog1p, rng); err != nil {
		return nil, fmt.Errorf("global degradation: %w", err)
	}
	pm.SpeedupR2 = pm.globalSpeedup.trainR2
	pm.DegR2 = pm.globalDeg.trainR2

	// Confidence intervals from out-of-fold residuals (paper §3.6).
	pm.SpeedupCI, err = t.confFromResiduals(gSpdXs, gSpd, pm.globalSpeedup, rng)
	if err != nil {
		return nil, fmt.Errorf("speedup CI: %w", err)
	}
	pm.DegCI, err = t.confFromResiduals(gDegXs, gDeg, pm.globalDeg, rng)
	if err != nil {
		return nil, fmt.Errorf("degradation CI: %w", err)
	}

	// ROI (paper Eq. 1). Degradations below degFloor count as degFloor so
	// a lucky zero-error sample does not produce an infinite ROI.
	const degFloor = 0.25
	sum := 0.0
	n := 0
	for _, r := range recs {
		if r.Levels.IsAccurate() {
			continue
		}
		sum += r.Speedup / math.Max(r.Degradation, degFloor)
		n++
	}
	if n > 0 {
		pm.ROI = sum / float64(n)
	}
	return pm, nil
}

// fitTarget runs MIC feature filtering then the auto-degree polynomial
// fit, on the requested target scale.
func (t *Trained) fitTarget(xs [][]float64, ys []float64, scale targetScale, rng *rand.Rand) (*filteredModel, error) {
	if len(xs) == 0 {
		return nil, errors.New("no samples")
	}
	stop := obs.Timer("core.fit.duration")
	defer func() {
		obs.Inc("core.fit.models")
		stop()
	}()
	if scale != scaleLinear {
		ly := make([]float64, len(ys))
		for i, y := range ys {
			ly[i] = scale.to(y)
		}
		ys = ly
	}
	fm, achieved, err := t.fitLeaf(xs, ys, rng)
	if err != nil {
		return nil, err
	}
	fm.scale = scale
	if !achieved {
		// Paper §3.7: if the model cannot reach the target accuracy over
		// the whole set, split the inputs into magnitude-ordered halves on
		// the most informative feature and fit a model per half. Keep the
		// split only when it actually improves the training fit.
		if split := t.trySplit(xs, ys, scale, rng); split != nil {
			if r2 := splitR2(split, xs, ys); r2 > fm.trainR2 {
				split.trainR2 = r2
				return split, nil
			}
		}
	}
	return fm, nil
}

// fitLeaf runs the optional space expansion, MIC feature filtering, and
// the auto-degree polynomial fit on already-transformed targets. It is
// the shared leaf of fitTarget and fitHalf; the caller stamps the target
// scale and handles the split fallback. trySplit always receives the RAW
// rows — split routing happens before expansion in predictRawScratch.
func (t *Trained) fitLeaf(xs [][]float64, ys []float64, rng *rand.Rand) (*filteredModel, bool, error) {
	expandN := 0
	if t.Opts.ExpandFeatures {
		se := poly.SpaceExpansion{NRaw: len(xs[0])}
		// Widen only when the sample budget can support the derived basis;
		// tiny local sweeps keep the raw features.
		if len(xs) >= 2*(se.Dim()+1) {
			expandN = len(xs[0])
			xs = se.ExpandRows(xs)
		}
	}
	keep := make([]int, len(xs[0]))
	for i := range keep {
		keep[i] = i
	}
	if t.Opts.UseMIC && len(xs) >= 4 {
		k, _, err := mic.FilterFeaturesTop(xs, ys, t.Opts.MICThreshold, expandedKeepCap(expandN))
		if err == nil && len(k) > 0 {
			keep = k
		}
	}
	sel := xs
	if len(keep) != len(xs[0]) {
		sel = make([][]float64, len(xs))
		for i, x := range xs {
			row := make([]float64, len(keep))
			for j, idx := range keep {
				row[j] = x[idx]
			}
			sel[i] = row
		}
	}
	folds := t.Opts.Folds
	if folds > len(sel) {
		folds = len(sel) / 2
	}
	if folds < 2 {
		return nil, false, fmt.Errorf("%d samples are too few to cross-validate", len(sel))
	}
	res, err := poly.AutoFit(sel, ys, t.Opts.TargetR2, t.Opts.MaxPolyDegree, folds, rng)
	if err != nil {
		return nil, false, err
	}
	fm := &filteredModel{model: res.Model, keep: keep, expandN: expandN, degree: res.Degree, cvScore: res.CVScore, trainR2: res.Model.TrainR2}
	return fm, res.Achieved, nil
}

// expandedKeepCap returns the MIC keep cap: unlimited for the raw basis
// (preserving the pre-expansion behavior bit for bit), maxExpandedKeep for
// a space-expanded one.
func expandedKeepCap(expandN int) int {
	if expandN > 0 {
		return maxExpandedKeep
	}
	return 0
}

// trySplit builds a depth-1 sub-model split on the feature with the
// highest MIC against the (already transformed) target. Returns nil when a
// split is infeasible.
func (t *Trained) trySplit(xs [][]float64, ys []float64, scale targetScale, rng *rand.Rand) *filteredModel {
	const minHalf = 30
	if len(xs) < 2*minHalf {
		return nil
	}
	_, scores, err := mic.FilterFeatures(xs, ys, 0)
	if err != nil {
		return nil
	}
	feat, best := -1, 0.0
	for j, sc := range scores {
		if sc > best {
			best, feat = sc, j
		}
	}
	if feat < 0 {
		return nil
	}
	// Median split on the chosen feature.
	vals := make([]float64, len(xs))
	for i, x := range xs {
		vals[i] = x[feat]
	}
	sort.Float64s(vals)
	median := vals[len(vals)/2]
	var loX, hiX [][]float64
	var loY, hiY []float64
	for i, x := range xs {
		if x[feat] <= median {
			loX = append(loX, x)
			loY = append(loY, ys[i])
		} else {
			hiX = append(hiX, x)
			hiY = append(hiY, ys[i])
		}
	}
	if len(loX) < minHalf || len(hiX) < minHalf {
		return nil
	}
	// Fit the halves without further recursion: fitHalf never re-splits.
	lo, err := t.fitHalf(loX, loY, scale, rng)
	if err != nil {
		return nil
	}
	hi, err := t.fitHalf(hiX, hiY, scale, rng)
	if err != nil {
		return nil
	}
	return &filteredModel{scale: scale, splitFeat: feat, splitVal: median, lo: lo, hi: hi}
}

// fitHalf is fitTarget without the split fallback (so splits never nest).
// trySplit hands it the already-transformed ys, so the fit runs directly
// on them and the real scale is stamped afterward for fromRaw symmetry.
func (t *Trained) fitHalf(xs [][]float64, ys []float64, scale targetScale, rng *rand.Rand) (*filteredModel, error) {
	fm, _, err := t.fitLeaf(xs, ys, rng)
	if err != nil {
		return nil, err
	}
	fm.scale = scale
	return fm, nil
}

// splitR2 scores a split model's routed predictions on its training data
// (both on the transformed scale).
func splitR2(fm *filteredModel, xs [][]float64, ys []float64) float64 {
	preds := make([]float64, len(xs))
	for i, x := range xs {
		preds[i] = fm.predictRaw(x)
	}
	return poly.R2(ys, preds)
}

// confFromResiduals builds the p-level banded confidence interval for a
// fitted model using out-of-fold residuals at the model's chosen degree,
// conditioned on the predicted value.
func (t *Trained) confFromResiduals(xs [][]float64, ys []float64, fm *filteredModel, rng *rand.Rand) (conf.Banded, error) {
	if fm.scale != scaleLinear {
		ty := make([]float64, len(ys))
		for i, y := range ys {
			ty[i] = fm.scale.to(y)
		}
		ys = ty
	}
	if fm.lo != nil && fm.hi != nil {
		// Split models: band their routed training residuals. (The halves
		// were accepted precisely because this fit is tighter than the
		// single model's, so these residuals are the honest basis.)
		preds := make([]float64, len(xs))
		residuals := make([]float64, len(xs))
		for i, x := range xs {
			preds[i] = fm.predictRaw(x)
			residuals[i] = ys[i] - preds[i]
		}
		return conf.BandedFromResiduals(preds, residuals, t.Opts.ConfidenceP, 4)
	}
	if fm.expandN > 0 {
		// The keep mask indexes the space-expanded basis, so the residual
		// refit must see the same derived rows the model was trained on.
		xs = poly.SpaceExpansion{NRaw: fm.expandN}.ExpandRows(xs)
	}
	sel := xs
	if len(xs) > 0 && len(fm.keep) != len(xs[0]) {
		sel = make([][]float64, len(xs))
		for i, x := range xs {
			row := make([]float64, len(fm.keep))
			for j, idx := range fm.keep {
				row[j] = x[idx]
			}
			sel[i] = row
		}
	}
	folds := t.Opts.Folds
	if folds > len(sel) {
		folds = len(sel) / 2
	}
	residuals, err := poly.OutOfFoldResiduals(sel, ys, fm.degree, folds, rng)
	if err != nil {
		// Fall back to training residuals when folds are infeasible.
		residuals = fm.model.Residuals(sel, ys)
	}
	preds := make([]float64, len(sel))
	fm.model.PredictInto(preds, sel)
	return conf.BandedFromResiduals(preds, residuals, t.Opts.ConfidenceP, 4)
}

// rawFeatures builds the iteration model's feature vector.
func (t *Trained) rawFeatures(paramVec []float64, cfg approx.Config) []float64 {
	return t.rawFeaturesInto(make([]float64, 0, len(paramVec)+len(cfg)), paramVec, cfg)
}

// rawFeaturesInto appends the iteration model's feature vector to dst
// (normally dst[:0] of a reused buffer).
func (t *Trained) rawFeaturesInto(dst, paramVec []float64, cfg approx.Config) []float64 {
	dst = append(dst, paramVec...)
	for _, l := range cfg {
		dst = append(dst, float64(l))
	}
	return dst
}

// rawPredict evaluates the two global models for one configuration in
// this phase on their (log) training scales, with the canary-calibration
// shift applied but no confidence band and no clamping. predictConfig
// builds on it for the optimizer; Trained.DiagnosePhase exposes it to the
// serving feedback loop, whose drift detector compares realized values
// against the same raw predictions the confidence bands are keyed on.
func (pm *PhaseModel) rawPredict(t *Trained, paramVec []float64, cfg approx.Config) (sRaw, dRaw float64) {
	// Optimizer hot path: every scratch vector — both global feature rows,
	// the per-block local-model input, and the iteration features — is
	// carved from one arena buffer. Nothing below retains them.
	np := len(paramVec)
	w := len(t.Blocks) + 1
	prsLen := 2 * max(w, np+1, np+len(cfg))
	scratchp := arena.Floats(2*w + np + 1 + np + len(cfg) + prsLen)
	defer arena.PutFloats(scratchp)
	buf := *scratchp
	prs := buf[len(buf)-prsLen:]
	sf, df := pm.globalFeaturesInto(t, paramVec, cfg,
		buf[0:0:w], buf[w:w:2*w],
		buf[2*w:2*w:2*w+np+1], buf[2*w+np+1:2*w+np+1:len(buf)-prsLen], prs)
	sRaw = pm.globalSpeedup.predictRawScratch(sf, prs)
	dRaw = pm.globalDeg.predictRawScratch(df, prs)
	if t.calib != nil && pm.Phase < len(t.calib.spd) {
		// Canary calibration: per-phase log-scale bias correction.
		sRaw += t.calib.spd[pm.Phase]
		dRaw += t.calib.deg[pm.Phase]
	}
	return sRaw, dRaw
}

// predictConfig predicts (speedup, degradation) for one configuration in
// this phase. The confidence band is applied on the models' log scale —
// pessimistic edge in both cases (paper §3.6).
func (pm *PhaseModel) predictConfig(t *Trained, paramVec []float64, cfg approx.Config, conservative bool) (speedup, deg float64) {
	sRaw, dRaw := pm.rawPredict(t, paramVec, cfg)
	if conservative {
		sRaw = pm.SpeedupCI.Lower(sRaw)
		dRaw = pm.DegCI.Upper(dRaw)
	}
	// Clamp to the physically plausible envelope: measured degradations
	// are capped at apps.MaxDegradation and no setting changes work by
	// more than ~50x, so predictions outside that range are extrapolation
	// artifacts, not information.
	speedup = clampF(pm.globalSpeedup.fromRaw(sRaw), 0.02, 50)
	deg = clampF(pm.globalDeg.fromRaw(dRaw), 0, apps.MaxDegradation)
	return speedup, deg
}

func clampF(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

// globalFeatures assembles the feature vectors of the two global models
// for one (params, config) point: the per-block local predictions plus
// (optionally) the iteration estimate.
func (pm *PhaseModel) globalFeatures(t *Trained, paramVec []float64, cfg approx.Config) (speedupF, degF []float64) {
	nb := len(t.Blocks)
	np := len(paramVec)
	// Fresh slices: the training path retains the returned rows in its
	// design matrices, so they must not come from the arena.
	return pm.globalFeaturesInto(t, paramVec, cfg,
		make([]float64, 0, nb+1), make([]float64, 0, nb+1),
		make([]float64, 0, np+1), make([]float64, 0, np+len(cfg)),
		make([]float64, 2*max(nb+1, np+1, np+len(cfg))))
}

// globalFeaturesInto is globalFeatures with caller-provided storage:
// sfBuf/dfBuf receive the two feature rows, lxBuf holds the local models'
// input, rawBuf the iteration model's (all appended from length 0), and
// prs is the per-prediction scratch for predictRawScratch. The prediction
// hot path passes arena buffers; values are identical to globalFeatures'.
func (pm *PhaseModel) globalFeaturesInto(t *Trained, paramVec []float64, cfg approx.Config, sfBuf, dfBuf, lxBuf, rawBuf, prs []float64) (speedupF, degF []float64) {
	nb := len(t.Blocks)
	speedupF, degF = sfBuf, dfBuf
	// Local predictions feed the global models on their log training
	// scale: bounded, smooth features that compose additively.
	lx := append(lxBuf, paramVec...)
	lx = append(lx, 0)
	for b := 0; b < nb; b++ {
		lx[len(paramVec)] = float64(cfg[b])
		speedupF = append(speedupF, pm.localSpeedup[b].predictRawScratch(lx, prs))
		degF = append(degF, pm.localDeg[b].predictRawScratch(lx, prs))
	}
	if t.Opts.UseIterFeature {
		raw := t.rawFeaturesInto(rawBuf, paramVec, cfg)
		iterEst := pm.iter.fromRaw(pm.iter.predictRawScratch(raw, prs))
		speedupF = append(speedupF, iterEst)
		degF = append(degF, iterEst)
	}
	return speedupF, degF
}

// singleBlock reports whether cfg approximates only block b (or nothing).
func singleBlock(cfg approx.Config, b int) bool {
	for i, l := range cfg {
		if i != b && l != 0 {
			return false
		}
	}
	return true
}

// classFor returns the model family for the given input parameters,
// falling back to the pooled class when the control-flow prediction has no
// dedicated models.
func (t *Trained) classFor(paramVec []float64) (*ClassModels, error) {
	if t.ControlFlow == nil {
		for _, cm := range t.Classes {
			return cm, nil
		}
		return nil, errors.New("core: no trained classes")
	}
	sig, err := t.ControlFlow.Predict(paramVec)
	if err != nil {
		return nil, err
	}
	if cm, ok := t.Classes[sig]; ok {
		return cm, nil
	}
	if cm, ok := t.Classes[pooledClass]; ok {
		return cm, nil
	}
	return nil, fmt.Errorf("core: no models for control flow %q", sig)
}

// PredictPhase predicts the application-level speedup and QoS degradation
// of approximating one phase with cfg, on the given input. When
// conservative is true the confidence band is applied pessimistically
// (paper §3.6): lower bound for speedup, upper for degradation.
func (t *Trained) PredictPhase(p apps.Params, phase int, cfg approx.Config, conservative bool) (speedup, deg float64, err error) {
	if err := cfg.Validate(t.Blocks); err != nil {
		return 0, 0, err
	}
	if phase < 0 || phase >= t.Phases {
		return 0, 0, fmt.Errorf("core: phase %d out of range [0,%d)", phase, t.Phases)
	}
	pv := p.Vector(t.Specs)
	cm, err := t.classFor(pv)
	if err != nil {
		return 0, 0, err
	}
	pm := cm.Phase[phase]
	speedup, deg = pm.predictConfig(t, pv, cfg, conservative)
	return speedup, deg, nil
}

// PhaseROI returns the trained ROI of each phase for the model family the
// given input maps to.
func (t *Trained) PhaseROI(p apps.Params) ([]float64, error) {
	cm, err := t.classFor(p.Vector(t.Specs))
	if err != nil {
		return nil, err
	}
	out := make([]float64, t.Phases)
	for ph, pm := range cm.Phase {
		out[ph] = pm.ROI
	}
	return out, nil
}

// ModelQuality summarizes the global-model R² scores per phase (averaged
// over classes) — the quantity the paper reports as modeling accuracy.
func (t *Trained) ModelQuality() (speedupR2, degR2 float64) {
	// Reduce in sorted class order: float addition is not associative, so
	// map-order accumulation would change the low bits run to run.
	n := 0
	for _, sig := range t.classSigs() {
		for _, pm := range t.Classes[sig].Phase {
			speedupR2 += pm.SpeedupR2
			degR2 += pm.DegR2
			n++
		}
	}
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	return speedupR2 / float64(n), degR2 / float64(n)
}

// DebugCI renders the per-phase confidence half-widths (log scale) — a
// development aid.
func (t *Trained) DebugCI() string {
	out := ""
	for _, sig := range t.classSigs() {
		for _, pm := range t.Classes[sig].Phase {
			out += fmt.Sprintf("class %q phase %d: spdBands=%v degBands=%v spdR2=%.3f degR2=%.3f ROI=%.3f\n",
				sig, pm.Phase, pm.SpeedupCI.Bands, pm.DegCI.Bands, pm.SpeedupR2, pm.DegR2, pm.ROI)
		}
	}
	return out
}

// classSigs returns the trained control-flow class signatures in sorted
// order, so every per-class reduction and rendering is deterministic.
func (t *Trained) classSigs() []string {
	sigs := make([]string, 0, len(t.Classes))
	for sig := range t.Classes {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	return sigs
}
