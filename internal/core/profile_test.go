package core

import (
	"strings"
	"testing"

	"opprox/internal/apps"
)

func TestSensitivityProfile(t *testing.T) {
	runner := apps.NewRunner(toyApp{})
	p := apps.DefaultParams(toyApp{})
	profiles, err := SensitivityProfile(runner, p, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d, want 2", len(profiles))
	}
	for _, prof := range profiles {
		if len(prof.Levels) != prof.Block.MaxLevel+1 {
			t.Fatalf("%s: %d level rows, want %d", prof.Block.Name, len(prof.Levels), prof.Block.MaxLevel+1)
		}
		if prof.Levels[0].Degradation != 0 || prof.Levels[0].Speedup != 1 {
			t.Fatalf("%s: level 0 should be neutral, got %+v", prof.Block.Name, prof.Levels[0])
		}
		// toyApp degradation grows monotonically in the level.
		for i := 1; i < len(prof.Levels); i++ {
			if prof.Levels[i].Degradation < prof.Levels[i-1].Degradation {
				t.Fatalf("%s: degradation not monotone: %+v", prof.Block.Name, prof.Levels)
			}
		}
		if prof.MaxUsableLevel < 1 {
			t.Fatalf("%s: level 1 should be usable at threshold 80", prof.Block.Name)
		}
		// Every level at or below the usable bound must respect the
		// threshold; the first level above it must exceed it.
		for _, lr := range prof.Levels {
			if lr.Level <= prof.MaxUsableLevel && lr.Degradation > 80 {
				t.Fatalf("%s: level %d marked usable at %.1f%%", prof.Block.Name, lr.Level, lr.Degradation)
			}
			if lr.Level == prof.MaxUsableLevel+1 && lr.Degradation <= 80 {
				t.Fatalf("%s: level %d under threshold but marked unusable", prof.Block.Name, lr.Level)
			}
		}
	}
}

func TestSensitivityProfileTightThreshold(t *testing.T) {
	runner := apps.NewRunner(toyApp{})
	p := apps.DefaultParams(toyApp{})
	// toyApp's beta block at level 1 already costs several percent; a
	// near-zero threshold should mark high levels unusable.
	profiles, err := SensitivityProfile(runner, p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, prof := range profiles {
		if prof.MaxUsableLevel == prof.Block.MaxLevel {
			t.Fatalf("%s: every level usable under a 0.5%% threshold?", prof.Block.Name)
		}
	}
}

func TestExplain(t *testing.T) {
	_, tr := trainToy(t)
	out := tr.Explain()
	for _, want := range []string{"4 phases", "alpha", "beta", "ROI", "single path", "records"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestExplainWithControlFlow(t *testing.T) {
	runner := apps.NewRunner(twoPathApp{})
	tr, err := Train(runner, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := tr.Explain()
	if !strings.Contains(out, "decision tree over") {
		t.Fatalf("Explain should mention the control-flow tree:\n%s", out)
	}
	if !strings.Contains(out, "beta>alpha") {
		t.Fatalf("Explain should list both classes:\n%s", out)
	}
}
