package core

import (
	"testing"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/qos"
	"opprox/internal/trace"
)

// benchApp sizes the optimizer benchmarks: three blocks at five levels
// each give 215 non-accurate configurations, and approximating gamma
// costs work instead of saving it (a memoization whose bookkeeping
// outweighs the reuse), so every configuration with gamma > 0 is
// dominated by its gamma = 0 counterpart — the shape the Pareto-front
// library prunes.
type benchApp struct{}

func (benchApp) Name() string { return "bench" }

func (benchApp) Blocks() []approx.Block {
	return []approx.Block{
		{Name: "alpha", Technique: approx.Perforation, MaxLevel: 5},
		{Name: "beta", Technique: approx.Memoization, MaxLevel: 5},
		{Name: "gamma", Technique: approx.Memoization, MaxLevel: 5},
	}
}

func (benchApp) Params() []apps.ParamSpec {
	return []apps.ParamSpec{
		{Name: "size", Values: []float64{10, 20}, Default: 10},
	}
}

func (a benchApp) Run(p apps.Params, sched approx.Schedule, baselineIters int) (apps.Result, error) {
	if err := sched.Validate(a.Blocks()); err != nil {
		return apps.Result{}, err
	}
	size := p.Vector(a.Params())[0]
	var rec trace.Recorder
	damage := 0.0
	for iter := 0; iter < toyIters; iter++ {
		rec.BeginIteration()
		ph := approx.PhaseOf(iter, baselineIters, sched.Phases)
		lv := sched.LevelsAt(ph)
		rec.Call("alpha", uint64((12-2*lv[0])*int(size)))
		rec.Call("beta", uint64((10-lv[1])*int(size)))
		rec.Call("gamma", uint64((8+2*lv[2])*int(size)))
		rec.Overhead(uint64(10 * size))
		damage += toyPhaseWeight(iter) * (0.4*float64(lv[0]) + 0.6*float64(lv[1]) + 1.0*float64(lv[2]))
	}
	return apps.Result{
		Output:     []float64{100 + damage, 50},
		Work:       rec.TotalWork(),
		OuterIters: rec.Iterations(),
		CtxSig:     "alpha>beta>gamma",
	}, nil
}

func (benchApp) QoS(exact, approximate []float64) (float64, error) {
	return qos.Distortion(exact, approximate)
}

var _ apps.App = benchApp{}

func benchOptions() Options {
	o := DefaultOptions()
	o.Phases = 2
	o.JointSamplesPerPhase = 10
	o.Folds = 5
	o.MaxPolyDegree = 3
	return o
}

func trainBench(tb testing.TB) *Trained {
	tb.Helper()
	tr, err := Train(apps.NewRunner(benchApp{}), benchOptions())
	if err != nil {
		tb.Fatal(err)
	}
	return tr
}

func BenchmarkTrainToy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Train(apps.NewRunner(toyApp{}), fastOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeToy(b *testing.B) {
	tr, err := Train(apps.NewRunner(toyApp{}), fastOptions())
	if err != nil {
		b.Fatal(err)
	}
	p := apps.DefaultParams(toyApp{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Optimize(p, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeColdMenu is the retained full-enumeration baseline a
// cold dispatch pays without the library: every phase menu re-enumerates
// all 215 configurations through the scalar predictor.
func BenchmarkOptimizeColdMenu(b *testing.B) {
	tr := trainBench(b)
	p := apps.DefaultParams(benchApp{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Optimize(p, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeColdLibrary is the same cold dispatch with the
// Pareto-front library warm: menus are built over the pruned survivors
// in one batched predict pass per phase.
func BenchmarkOptimizeColdLibrary(b *testing.B) {
	tr := trainBench(b)
	if err := tr.EnableFrontLibrary(); err != nil {
		b.Fatal(err)
	}
	p := apps.DefaultParams(benchApp{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Optimize(p, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrontBuild prices tier 1: the once-per-model-version batched
// evaluation and dominance pruning of the whole configuration space.
func BenchmarkFrontBuild(b *testing.B) {
	tr := trainBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.BuildFrontLibrary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictPhase(b *testing.B) {
	tr, err := Train(apps.NewRunner(toyApp{}), fastOptions())
	if err != nil {
		b.Fatal(err)
	}
	p := apps.DefaultParams(toyApp{})
	cfg := toyApp{}.Blocks()
	_ = cfg
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.PredictPhase(p, i%4, []int{2, 1}, true); err != nil {
			b.Fatal(err)
		}
	}
}
