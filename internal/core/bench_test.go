package core

import (
	"testing"

	"opprox/internal/apps"
)

func BenchmarkTrainToy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Train(apps.NewRunner(toyApp{}), fastOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeToy(b *testing.B) {
	tr, err := Train(apps.NewRunner(toyApp{}), fastOptions())
	if err != nil {
		b.Fatal(err)
	}
	p := apps.DefaultParams(toyApp{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Optimize(p, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictPhase(b *testing.B) {
	tr, err := Train(apps.NewRunner(toyApp{}), fastOptions())
	if err != nil {
		b.Fatal(err)
	}
	p := apps.DefaultParams(toyApp{})
	cfg := toyApp{}.Blocks()
	_ = cfg
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.PredictPhase(p, i%4, []int{2, 1}, true); err != nil {
			b.Fatal(err)
		}
	}
}
