package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"opprox/internal/approx"
	"opprox/internal/apps"
)

// Calibration reports how well the trained models' predictions and
// confidence bounds hold up against fresh measurements the trainer never
// saw — the empirical check behind the paper's claim that conservative
// intervals keep the optimizer from overshooting the budget.
type Calibration struct {
	// Probes is the number of fresh (input, phase, config) measurements.
	Probes int
	// DegCoverage is the fraction of probes whose measured degradation
	// stayed at or below the conservative (upper-bound) prediction. The
	// nominal target is Options.ConfidenceP.
	DegCoverage float64
	// SpeedupCoverage is the fraction whose measured speedup stayed at or
	// above the conservative (lower-bound) prediction.
	SpeedupCoverage float64
	// DegMAE and SpeedupMAE are mean absolute errors of the raw (centered)
	// predictions.
	DegMAE, SpeedupMAE float64
	// WorstDegMiss is the largest amount by which a measured degradation
	// exceeded its conservative bound (0 when coverage is perfect).
	WorstDegMiss float64
}

// String summarizes the calibration for reports.
func (c Calibration) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "calibration over %d fresh probes:\n", c.Probes)
	fmt.Fprintf(&sb, "  degradation: conservative bound held %.1f%% of the time (worst miss %.2f); raw MAE %.2f\n",
		100*c.DegCoverage, c.WorstDegMiss, c.DegMAE)
	fmt.Fprintf(&sb, "  speedup:     conservative bound held %.1f%% of the time; raw MAE %.3f\n",
		100*c.SpeedupCoverage, c.SpeedupMAE)
	return sb.String()
}

// ValidateModels measures nProbes fresh random (phase, configuration)
// points on the given input and scores the trained models against them.
// The probes use a seed stream disjoint from training, so none of them
// appeared in the training set except by coincidence.
func ValidateModels(runner *apps.Runner, t *Trained, p apps.Params, nProbes int, seed int64) (Calibration, error) {
	if nProbes < 1 {
		return Calibration{}, fmt.Errorf("core: need at least 1 probe, got %d", nProbes)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed0fca11b))
	cal := Calibration{Probes: nProbes}
	for i := 0; i < nProbes; i++ {
		phase := rng.Intn(t.Phases)
		cfg := make(approx.Config, len(t.Blocks))
		nonzero := false
		for bi, b := range t.Blocks {
			cfg[bi] = rng.Intn(b.MaxLevel + 1)
			nonzero = nonzero || cfg[bi] > 0
		}
		if !nonzero {
			cfg[rng.Intn(len(cfg))] = 1
		}
		spdRaw, degRaw, err := t.PredictPhase(p, phase, cfg, false)
		if err != nil {
			return Calibration{}, err
		}
		spdCon, degCon, err := t.PredictPhase(p, phase, cfg, true)
		if err != nil {
			return Calibration{}, err
		}
		ev, err := runner.Evaluate(p, approx.SinglePhaseSchedule(t.Phases, phase, cfg))
		if err != nil {
			return Calibration{}, err
		}
		if ev.Degradation <= degCon {
			cal.DegCoverage++
		} else if miss := ev.Degradation - degCon; miss > cal.WorstDegMiss {
			cal.WorstDegMiss = miss
		}
		if ev.Speedup >= spdCon {
			cal.SpeedupCoverage++
		}
		cal.DegMAE += math.Abs(ev.Degradation - degRaw)
		cal.SpeedupMAE += math.Abs(ev.Speedup - spdRaw)
	}
	n := float64(nProbes)
	cal.DegCoverage /= n
	cal.SpeedupCoverage /= n
	cal.DegMAE /= n
	cal.SpeedupMAE /= n
	return cal, nil
}
