package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/obs"
)

// This file is the model half of the online retraining pipeline
// (DESIGN.md §16): refitting a trained model set's GLOBAL models from
// realized production feedback, without rerunning the offline sampling.
// The local models, iteration estimators, and control-flow classifier
// stay as trained — they encode the sensitivity structure of the
// application, which feedback (one realized outcome per served phase,
// never a single-block sweep) cannot re-estimate. What feedback can
// re-estimate, with exactly the right distribution, is the mapping from
// local predictions to realized application-level outcomes — which is
// precisely the global models' job, and where phase-behavior drift
// shows up.

// FeedbackSample is one realized phase observation joined with the
// dispatch context that produced it — the training row the telemetry
// extractor reconstructs from the feedback log.
type FeedbackSample struct {
	Params apps.Params
	Levels []int // the phase's served configuration
	Phase  int
	// Realized application-level outcomes on the natural scale.
	Speedup     float64
	Degradation float64
}

// ErrNoRefit reports that no phase group had enough feedback rows to
// refit — the retrain driver treats the candidate as infeasible.
var ErrNoRefit = errors.New("core: no phase group had enough feedback rows to refit")

// RetrainGlobal refits the global speedup/degradation models (and their
// confidence bands) from realized feedback, mutating the receiver — the
// caller clones first (LoadTrained over the live bytes) and packages
// the result as a shadow version.
//
// groups is a proposed phase segmentation: each group's phases share
// one refit (the online re-detection's claim is exactly that those
// phases now behave alike, so their rows pool). nil means every phase
// refits alone. Groups with fewer than minRows rows keep their trained
// models. Calibration shifts of refit phases are zeroed — the refit
// absorbed the drift the shifts were correcting — and, when a front
// library is built, the refit phases are re-pruned in place.
//
// Determinism: classes refit in sorted-signature order, groups in the
// given order, rows in the caller's order, all sharing one seeded rng —
// identical samples, groups and seed yield bit-identical models.
func (t *Trained) RetrainGlobal(samples []FeedbackSample, groups [][]int, minRows int, seed int64) ([]int, error) {
	stop := obs.Timer("core.refit.duration")
	defer stop()
	if len(samples) == 0 {
		return nil, errors.New("core: no feedback samples to refit from")
	}
	if minRows < 4 {
		// fitLeaf needs >= 4 rows for 2-fold cross-validation.
		minRows = 4
	}
	if groups == nil {
		for ph := 0; ph < t.Phases; ph++ {
			groups = append(groups, []int{ph})
		}
	}
	seen := make([]bool, t.Phases)
	for _, g := range groups {
		for _, ph := range g {
			if ph < 0 || ph >= t.Phases {
				return nil, fmt.Errorf("core: refit group phase %d out of range [0,%d)", ph, t.Phases)
			}
			if seen[ph] {
				return nil, fmt.Errorf("core: refit groups repeat phase %d", ph)
			}
			seen[ph] = true
		}
	}

	// Route every row to its control-flow class once, preserving order.
	type row struct {
		pv  []float64
		cfg approx.Config
		s   FeedbackSample
	}
	byClass := make(map[string][]row, len(t.Classes))
	for i, s := range samples {
		if s.Phase < 0 || s.Phase >= t.Phases {
			return nil, fmt.Errorf("core: feedback sample %d phase %d out of range [0,%d)", i, s.Phase, t.Phases)
		}
		cfg := approx.Config(s.Levels)
		if err := cfg.Validate(t.Blocks); err != nil {
			return nil, fmt.Errorf("core: feedback sample %d: %w", i, err)
		}
		pv := s.Params.Vector(t.Specs)
		cm, err := t.classFor(pv)
		if err != nil {
			return nil, fmt.Errorf("core: feedback sample %d: %w", i, err)
		}
		r := row{pv: pv, cfg: cfg, s: s}
		byClass[cm.CtxSig] = append(byClass[cm.CtxSig], r)
		if cm.CtxSig != pooledClass {
			// The pooled fallback was trained on all records; refit it the
			// same way.
			if _, ok := t.Classes[pooledClass]; ok {
				byClass[pooledClass] = append(byClass[pooledClass], r)
			}
		}
	}

	rng := rand.New(rand.NewSource(seed ^ 0x5e7a11))
	refit := make([]bool, t.Phases)
	refitAny := false
	for _, sig := range t.classSigs() {
		cm := t.Classes[sig]
		rows := byClass[sig]
		for _, g := range groups {
			inGroup := make([]bool, t.Phases)
			for _, ph := range g {
				inGroup[ph] = true
			}
			var xsS, xsD [][]float64
			var ysS, ysD []float64
			for _, r := range rows {
				if !inGroup[r.s.Phase] {
					continue
				}
				// Features come from the row's own phase's local models —
				// calibration-free, exactly the recipe training used.
				sf, df := cm.Phase[r.s.Phase].globalFeatures(t, r.pv, r.cfg)
				xsS = append(xsS, sf)
				xsD = append(xsD, df)
				ysS = append(ysS, r.s.Speedup)
				ysD = append(ysD, r.s.Degradation)
			}
			if len(xsS) < minRows {
				continue
			}
			gs, err := t.fitTarget(xsS, ysS, scaleLog, rng)
			if err != nil {
				return nil, fmt.Errorf("core: refit class %q speedup: %w", sig, err)
			}
			gd, err := t.fitTarget(xsD, ysD, scaleLog1p, rng)
			if err != nil {
				return nil, fmt.Errorf("core: refit class %q degradation: %w", sig, err)
			}
			sci, err := t.confFromResiduals(xsS, ysS, gs, rng)
			if err != nil {
				return nil, fmt.Errorf("core: refit class %q speedup CI: %w", sig, err)
			}
			dci, err := t.confFromResiduals(xsD, ysD, gd, rng)
			if err != nil {
				return nil, fmt.Errorf("core: refit class %q degradation CI: %w", sig, err)
			}
			for _, ph := range g {
				pm := cm.Phase[ph]
				pm.globalSpeedup = gs
				pm.globalDeg = gd
				pm.SpeedupCI = sci
				pm.DegCI = dci
				pm.SpeedupR2 = gs.trainR2
				pm.DegR2 = gd.trainR2
				refit[ph] = true
			}
			refitAny = true
		}
	}
	if !refitAny {
		return nil, ErrNoRefit
	}
	var phases []int
	for ph, ok := range refit {
		if ok {
			phases = append(phases, ph)
		}
	}
	sort.Ints(phases)

	// A refit phase's new global model absorbed whatever systematic bias
	// the calibration shift was correcting; keeping the shift would
	// double-apply it.
	if t.calib != nil {
		allZero := true
		for ph := 0; ph < t.Phases; ph++ {
			if refit[ph] {
				t.calib.spd[ph], t.calib.deg[ph] = 0, 0
			}
			if t.calib.spd[ph] != 0 || t.calib.deg[ph] != 0 {
				allZero = false
			}
		}
		if allZero {
			t.calib = nil
		}
	}
	if t.library != nil {
		if err := t.rebuildFrontPhases(phases); err != nil {
			return nil, err
		}
		// Non-refit phases may also have changed shifts (zeroing above
		// only touches refit phases, but the caller may have folded new
		// shifts in first) — bring the rest of the library current too.
		if _, err := t.RefreshFrontLibrary(); err != nil {
			return nil, err
		}
	}
	obs.Inc("core.refit.runs")
	return phases, nil
}
