package core

import (
	"math/rand"
	"testing"

	"opprox/internal/apps"
)

func TestSamplerCollectStructure(t *testing.T) {
	runner := apps.NewRunner(toyApp{})
	s := &sampler{runner: runner, rng: rand.New(rand.NewSource(1))}
	p := apps.DefaultParams(toyApp{})
	all, err := s.collectAll([]apps.Params{p}, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for _, r := range all {
		if r.Phase == 2 {
			recs = append(recs, r)
		}
	}
	blocks := toyApp{}.Blocks()
	// 1 accurate + exhaustive locals (3 + 2) + pairwise (1 pair x 2) +
	// 5 joints.
	wantLocal := 0
	for _, b := range blocks {
		wantLocal += b.MaxLevel
	}
	pairs := len(blocks) * (len(blocks) - 1) / 2
	want := 1 + wantLocal + 2*pairs + 5
	if len(recs) != want {
		t.Fatalf("collected %d records, want %d", len(recs), want)
	}

	accurate, local, pairwise := 0, 0, 0
	for _, r := range recs {
		if r.CtxSig == "" || r.BaselineIters == 0 {
			t.Fatalf("incomplete record %+v", r)
		}
		nonzero := 0
		for _, lv := range r.Levels {
			if lv > 0 {
				nonzero++
			}
		}
		switch nonzero {
		case 0:
			accurate++
		case 1:
			local++
		case 2:
			pairwise++
		}
	}
	if accurate < 1 {
		t.Fatal("missing the accurate anchor sample")
	}
	if local < wantLocal {
		t.Fatalf("local samples = %d, want >= %d (exhaustive per-block sweep)", local, wantLocal)
	}
	if pairwise < 2*pairs {
		t.Fatalf("pairwise samples = %d, want >= %d", pairwise, 2*pairs)
	}
}

func TestSamplerAccurateAnchorIsNeutral(t *testing.T) {
	runner := apps.NewRunner(toyApp{})
	s := &sampler{runner: runner, rng: rand.New(rand.NewSource(2))}
	recs, err := s.collectAll([]apps.Params{apps.DefaultParams(toyApp{})}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Levels.IsAccurate() {
			if r.Degradation != 0 || r.Speedup != 1 {
				t.Fatalf("accurate anchor not neutral: %+v", r)
			}
			return
		}
	}
	t.Fatal("no accurate anchor found")
}

func TestCollectAllCoversAllPhasesAndCombos(t *testing.T) {
	runner := apps.NewRunner(toyApp{})
	s := &sampler{runner: runner, rng: rand.New(rand.NewSource(3))}
	combos := ParamCombos(toyApp{}.Params(), 0, s.rng)
	recs, err := s.collectAll(combos, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{} // (combo size value, phase)
	for _, r := range recs {
		seen[[2]int{int(r.Params["size"]), r.Phase}] = true
	}
	for _, c := range combos {
		for ph := 0; ph < 3; ph++ {
			if !seen[[2]int{int(c["size"]), ph}] {
				t.Fatalf("no records for size=%v phase=%d", c["size"], ph)
			}
		}
	}
}

func TestParallelSamplingMatchesSequential(t *testing.T) {
	combos := []apps.Params{{"size": 10}, {"size": 20}}
	seq := &sampler{runner: apps.NewRunner(toyApp{}), rng: rand.New(rand.NewSource(9)), workers: 1}
	par := &sampler{runner: apps.NewRunner(toyApp{}), rng: rand.New(rand.NewSource(9)), workers: 8}
	a, err := seq.collectAll(combos, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.collectAll(combos, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Degradation != b[i].Degradation || a[i].Speedup != b[i].Speedup ||
			a[i].Phase != b[i].Phase || a[i].Levels.String() != b[i].Levels.String() {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestParallelSamplingPropagatesErrors(t *testing.T) {
	s := &sampler{runner: apps.NewRunner(errApp{}), rng: rand.New(rand.NewSource(1)), workers: 4}
	if _, err := s.collectAll([]apps.Params{apps.DefaultParams(toyApp{})}, 2, 2); err == nil {
		t.Fatal("want error from failing app")
	}
}
