package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/obs"
)

// Record is one training observation: the application ran with `Levels`
// applied during phase `Phase` (all other phases accurate), on input
// `Params`, and produced the recorded degradation, speedup and outer-loop
// iteration count (paper §3.3).
type Record struct {
	Params   apps.Params
	ParamVec []float64
	CtxSig   string
	Phase    int
	Levels   approx.Config
	// Degradation is the final-output QoS degradation (percent-like).
	Degradation float64
	// Speedup is goldenWork / work.
	Speedup float64
	// Iters is the outer-loop iteration count of the approximate run.
	Iters int
	// BaselineIters is the accurate run's iteration count for this input.
	BaselineIters int
}

// ParamCombos expands the cartesian product of every parameter's
// representative values. With maxCombos > 0 a deterministic random subset
// is returned.
func ParamCombos(specs []apps.ParamSpec, maxCombos int, rng *rand.Rand) []apps.Params {
	combos := []apps.Params{{}}
	for _, spec := range specs {
		var next []apps.Params
		for _, base := range combos {
			for _, v := range spec.Values {
				p := base.Clone()
				p[spec.Name] = v
				next = append(next, p)
			}
		}
		combos = next
	}
	if maxCombos > 0 && len(combos) > maxCombos {
		rng.Shuffle(len(combos), func(i, j int) { combos[i], combos[j] = combos[j], combos[i] })
		combos = combos[:maxCombos]
	}
	return combos
}

// sampler collects training records for one application.
type sampler struct {
	runner *apps.Runner
	rng    *rand.Rand
	// workers bounds the parallel run pool; 0 means runtime.NumCPU.
	workers int
}

// task is one planned training run.
type task struct {
	params apps.Params
	phase  int
	cfg    approx.Config
}

// planConfigs enumerates, for one (combo, phase), the configurations the
// paper's §3.3 sampling visits: the accurate anchor, exhaustive
// single-block sweeps ("for each AB it exhaustively covers the
// corresponding AL-space"), two random level pairs per block pair (the
// settings where unmodeled two-way interactions bite the confidence
// intervals), and random sparse joint samples over all blocks.
func (s *sampler) planConfigs(blocks []approx.Block, jointSamples int) []approx.Config {
	var cfgs []approx.Config
	// The accurate point anchors every model at (level 0 → speedup 1,
	// degradation 0).
	cfgs = append(cfgs, make(approx.Config, len(blocks)))
	for bi, b := range blocks {
		for lv := 1; lv <= b.MaxLevel; lv++ {
			cfg := make(approx.Config, len(blocks))
			cfg[bi] = lv
			cfgs = append(cfgs, cfg)
		}
	}
	for i := 0; i < len(blocks); i++ {
		for j := i + 1; j < len(blocks); j++ {
			for k := 0; k < 2; k++ {
				cfg := make(approx.Config, len(blocks))
				cfg[i] = 1 + s.rng.Intn(blocks[i].MaxLevel)
				cfg[j] = 1 + s.rng.Intn(blocks[j].MaxLevel)
				cfgs = append(cfgs, cfg)
			}
		}
	}
	for j := 0; j < jointSamples; j++ {
		cfg := make(approx.Config, len(blocks))
		for bi, b := range blocks {
			cfg[bi] = s.rng.Intn(b.MaxLevel + 1)
		}
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// collectAll plans every training run deterministically (all randomness is
// drawn sequentially from the sampler's rng) and then executes the runs on
// a worker pool — each run is an independent pure function of its task, so
// parallel execution preserves bit-for-bit reproducibility.
func (s *sampler) collectAll(combos []apps.Params, phases, jointSamples int) ([]Record, error) {
	app := s.runner.App
	blocks := app.Blocks()
	specs := app.Params()

	// Golden runs first (sequentially): they seed the cache every worker
	// reads, and each downstream record needs its combo's baseline.
	goldens := make(map[string]*apps.Result, len(combos))
	for _, p := range combos {
		g, err := s.runner.Golden(p)
		if err != nil {
			return nil, err
		}
		goldens[p.Key()] = g
	}

	// Deterministic plan: the rng is consumed in a fixed order.
	var tasks []task
	for _, p := range combos {
		for ph := 0; ph < phases; ph++ {
			for _, cfg := range s.planConfigs(blocks, jointSamples) {
				tasks = append(tasks, task{params: p, phase: ph, cfg: cfg})
			}
		}
	}

	workers := s.workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	// Sampling throughput: how many training runs this Train planned, and
	// how long the whole pool took to drain them.
	appName := app.Name()
	obs.Add("core.sample.tasks", int64(len(tasks)))
	obs.Add("core.sample."+appName+".tasks", int64(len(tasks)))
	defer obs.Timer("core.sample.pool.duration")()

	records := make([]Record, len(tasks))
	errs := make([]error, workers)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				tk := tasks[i]
				golden := goldens[tk.params.Key()]
				sched := approx.SinglePhaseSchedule(phases, tk.phase, tk.cfg)
				ev, err := s.runner.Evaluate(tk.params, sched)
				if err != nil {
					if errs[w] == nil {
						errs[w] = fmt.Errorf("sample %s phase %d cfg %s: %w", app.Name(), tk.phase, tk.cfg, err)
					}
					continue
				}
				records[i] = Record{
					Params:        tk.params,
					ParamVec:      tk.params.Vector(specs),
					CtxSig:        golden.CtxSig,
					Phase:         tk.phase,
					Levels:        tk.cfg.Clone(),
					Degradation:   ev.Degradation,
					Speedup:       ev.Speedup,
					Iters:         ev.OuterIters,
					BaselineIters: golden.OuterIters,
				}
			}
		}(w)
	}
	for i := range tasks {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return records, nil
}
