package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"opprox/internal/approx"
	"opprox/internal/apps"
)

// Canary-input calibration is the extension the paper sketches in its
// related-work discussion (§6, after Laurenzano et al., PLDI'16): train
// the models on cheap, down-scaled "canary" inputs, then correct their
// systematic bias at the expensive production input with a handful of
// full-size probe runs.
//
// The correction is a per-phase additive shift on each model's log scale
// (i.e. a multiplicative correction on the natural scale): the median
// log-residual of the probe runs. A median over a few probes is robust to
// one unlucky configuration, and a log-scale shift preserves the models'
// ranking of configurations — calibration moves predictions, not the
// optimizer's ordering.

// canaryShift is the per-phase calibration state stored on Trained.
type canaryShift struct {
	spd []float64 // per-phase log-speedup shifts
	deg []float64 // per-phase log1p-degradation shifts
}

// Calibrated reports whether canary calibration has been applied.
func (t *Trained) Calibrated() bool { return t.calib != nil }

// CalibrateCanary measures probesPerPhase fresh runs of the production
// input p in every phase and installs per-phase correction shifts on the
// trained models. Call it on models trained from down-scaled canary
// inputs before optimizing for the production input.
func (t *Trained) CalibrateCanary(runner *apps.Runner, p apps.Params, probesPerPhase int, seed int64) error {
	if probesPerPhase < 1 {
		return fmt.Errorf("core: need at least 1 probe per phase, got %d", probesPerPhase)
	}
	rng := rand.New(rand.NewSource(seed ^ 0xca11ab1e))
	shift := &canaryShift{
		spd: make([]float64, t.Phases),
		deg: make([]float64, t.Phases),
	}
	t.calib = nil // measure against the uncalibrated models
	for ph := 0; ph < t.Phases; ph++ {
		var spdRes, degRes []float64
		for k := 0; k < probesPerPhase; k++ {
			cfg := make(approx.Config, len(t.Blocks))
			nonzero := false
			for bi, b := range t.Blocks {
				cfg[bi] = rng.Intn(b.MaxLevel + 1)
				nonzero = nonzero || cfg[bi] > 0
			}
			if !nonzero {
				cfg[rng.Intn(len(cfg))] = 1
			}
			spdPred, degPred, err := t.PredictPhase(p, ph, cfg, false)
			if err != nil {
				return err
			}
			ev, err := runner.Evaluate(p, approx.SinglePhaseSchedule(t.Phases, ph, cfg))
			if err != nil {
				return fmt.Errorf("canary probe phase %d: %w", ph, err)
			}
			spdRes = append(spdRes, math.Log(math.Max(ev.Speedup, 1e-9))-math.Log(math.Max(spdPred, 1e-9)))
			degRes = append(degRes, math.Log1p(math.Max(ev.Degradation, 0))-math.Log1p(math.Max(degPred, 0)))
		}
		shift.spd[ph] = median(spdRes)
		shift.deg[ph] = median(degRes)
	}
	t.calib = shift
	return nil
}

// ClearCalibration removes a previously installed canary calibration.
func (t *Trained) ClearCalibration() { t.calib = nil }

// SetCalibration installs per-phase log-scale correction shifts directly —
// the same correction CalibrateCanary measures with probe runs, for
// callers that obtain the residuals elsewhere. The serving feedback loop
// uses it to recalibrate a drifting model from realized production
// feedback instead of fresh probe runs: the median log-residual of the
// feedback window is exactly the canary shift, measured for free.
func (t *Trained) SetCalibration(spd, deg []float64) error {
	if len(spd) != t.Phases || len(deg) != t.Phases {
		return fmt.Errorf("core: calibration shifts for %d/%d phases, model has %d",
			len(spd), len(deg), t.Phases)
	}
	for ph := 0; ph < t.Phases; ph++ {
		if math.IsNaN(spd[ph]) || math.IsInf(spd[ph], 0) || math.IsNaN(deg[ph]) || math.IsInf(deg[ph], 0) {
			return fmt.Errorf("core: calibration shift for phase %d is not finite", ph)
		}
	}
	t.calib = &canaryShift{
		spd: append([]float64(nil), spd...),
		deg: append([]float64(nil), deg...),
	}
	return nil
}

// CalibrationShifts returns copies of the installed per-phase shifts
// (speedup log scale, degradation log1p scale), or ok=false when the
// models are uncalibrated.
func (t *Trained) CalibrationShifts() (spd, deg []float64, ok bool) {
	if t.calib == nil {
		return nil, nil, false
	}
	return append([]float64(nil), t.calib.spd...), append([]float64(nil), t.calib.deg...), true
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}
