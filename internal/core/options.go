// Package core implements OPPROX itself (paper §3): offline training —
// sampling the application on representative inputs, identifying the phase
// granularity (Algorithm 1), and building per-phase speedup/QoS/iteration
// models — plus the runtime optimizer that splits a user's QoS-degradation
// budget across phases by return-on-investment and picks the most
// profitable approximation levels per phase (Algorithm 2). The
// phase-agnostic exhaustive oracle the paper compares against (§5.3) is
// also here.
package core

import "fmt"

// BudgetPolicy selects how the optimizer splits the overall QoS budget
// across phases.
type BudgetPolicy int

const (
	// BudgetPolicyROI allocates each phase a share proportional to its
	// normalized return on investment (paper §3.8, Eq. 1).
	BudgetPolicyROI BudgetPolicy = iota
	// BudgetPolicyUniform splits the budget evenly — the ablation
	// baseline for the ROI policy.
	BudgetPolicyUniform
)

// String names the policy in reports.
func (p BudgetPolicy) String() string {
	switch p {
	case BudgetPolicyROI:
		return "roi"
	case BudgetPolicyUniform:
		return "uniform"
	default:
		return fmt.Sprintf("BudgetPolicy(%d)", int(p))
	}
}

// Options configures training and optimization. The zero value is not
// usable; start from DefaultOptions.
type Options struct {
	// Seed drives every random choice during training.
	Seed int64

	// Phases fixes the phase count; 0 means run Algorithm 1 to find it.
	Phases int
	// MaxPhases bounds Algorithm 1's doubling search.
	MaxPhases int
	// PhaseThreshold is Algorithm 1's sensitivity threshold: doubling
	// stops when the max consecutive-phase QoS difference changes by less
	// than this many percentage points.
	PhaseThreshold float64

	// JointSamplesPerPhase is the number of random sparse multi-block
	// configurations sampled per (input combo, phase) (paper §3.3).
	JointSamplesPerPhase int
	// MaxParamCombos caps the cartesian product of representative input
	// values used for training; 0 means use all combos.
	MaxParamCombos int

	// TargetR2 is the cross-validated R² at which the degree search stops
	// (paper §3.7).
	TargetR2 float64
	// MaxPolyDegree bounds the polynomial degree search.
	MaxPolyDegree int
	// Folds is the k of k-fold cross validation.
	Folds int

	// UseMIC enables MIC-based feature filtering (paper §3.7).
	UseMIC bool
	// MICThreshold drops features whose MIC with the target is below it.
	MICThreshold float64

	// UseConfidence enables conservative confidence-interval predictions
	// (paper §3.6): upper bound for QoS degradation, lower for speedup.
	UseConfidence bool
	// ConfidenceP is the confidence level (paper uses p=0.99).
	ConfidenceP float64

	// UseIterFeature feeds the estimated outer-loop iteration count into
	// the global models as an explicit feature (paper §3.6).
	UseIterFeature bool

	// BudgetPolicy selects the per-phase budget split.
	BudgetPolicy BudgetPolicy

	// UsableDegradation is the QoS degradation above which a sampled
	// setting is considered unusable and excluded from model fitting and
	// ROI, mirroring the paper's sensitivity profiling (§3.1).
	UsableDegradation float64

	// FrontLibrary builds the two-tier Pareto-front plan library at train
	// time (autoAx-style, DESIGN.md §14): per (class, phase), the
	// configuration space is batch-evaluated over a sample of training
	// parameter vectors and configurations dominated everywhere are pruned;
	// Optimize then builds each phase's exact front over the survivors
	// instead of re-enumerating the full space. The survivor sets are
	// persisted with the model. Off by default; a loaded model can also be
	// switched on at runtime with EnableFrontLibrary.
	FrontLibrary bool

	// ExpandFeatures widens every model's raw feature vector with derived
	// terms (log-compressed magnitudes and pairwise products,
	// poly.SpaceExpansion) before MIC filtering and fitting — the
	// space-expanded feature set of Nikkhah et al. (PAPERS.md). The MIC
	// filter prunes the widened basis back down (capped at
	// maxExpandedKeep), so the models earn tighter confidence bands
	// without the degree search exploding.
	ExpandFeatures bool

	// Parallelism bounds the worker pool that executes training runs;
	// 0 uses all CPUs. Sampling dominates training time and every run is
	// an independent pure function, so parallel execution is bit-for-bit
	// identical to sequential.
	Parallelism int
}

// DefaultOptions returns the configuration used throughout the paper's
// evaluation: auto phase search up to 8 phases, p=0.99 confidence, R²
// target 0.9, 10-fold cross validation.
func DefaultOptions() Options {
	return Options{
		Seed:                 1,
		Phases:               0,
		MaxPhases:            8,
		PhaseThreshold:       2.0,
		JointSamplesPerPhase: 24,
		MaxParamCombos:       0,
		TargetR2:             0.9,
		MaxPolyDegree:        4,
		Folds:                10,
		UseMIC:               true,
		MICThreshold:         0.08,
		UseConfidence:        true,
		ConfidenceP:          0.99,
		UseIterFeature:       true,
		BudgetPolicy:         BudgetPolicyROI,
		UsableDegradation:    80,
	}
}

// validate normalizes and checks option values.
func (o *Options) validate() error {
	if o.MaxPhases < 2 {
		o.MaxPhases = 2
	}
	if o.Phases < 0 {
		return fmt.Errorf("core: negative phase count %d", o.Phases)
	}
	if o.JointSamplesPerPhase < 1 {
		return fmt.Errorf("core: JointSamplesPerPhase must be >= 1, got %d", o.JointSamplesPerPhase)
	}
	if o.TargetR2 <= 0 || o.TargetR2 > 1 {
		return fmt.Errorf("core: TargetR2 must be in (0,1], got %g", o.TargetR2)
	}
	if o.MaxPolyDegree < 1 {
		return fmt.Errorf("core: MaxPolyDegree must be >= 1, got %d", o.MaxPolyDegree)
	}
	if o.Folds < 2 {
		return fmt.Errorf("core: Folds must be >= 2, got %d", o.Folds)
	}
	if o.ConfidenceP <= 0 || o.ConfidenceP > 1 {
		return fmt.Errorf("core: ConfidenceP must be in (0,1], got %g", o.ConfidenceP)
	}
	return nil
}
