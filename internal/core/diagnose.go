package core

import (
	"fmt"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/ml/conf"
)

// PhaseDiag is the model-side context a served dispatch carries for one
// phase so that realized feedback can later be judged against it: the raw
// (log-scale, calibrated, unclamped) predictions of the two global models
// and the confidence band each prediction falls in. Residuals computed on
// these scales are exactly the quantity the bands were calibrated on, so
// "realized value outside the band" is a like-for-like exceedance test.
type PhaseDiag struct {
	// SpeedupRaw is the global speedup model's prediction on its log
	// scale; DegRaw is the degradation model's on its log1p scale.
	SpeedupRaw float64
	DegRaw     float64
	// SpeedupBand and DegBand are the confidence intervals at those
	// predictions (banded lookup, paper §3.6).
	SpeedupBand conf.Interval
	DegBand     conf.Interval
}

// DiagnosePhase returns the raw predictions and confidence bands for one
// phase of a schedule. The serving layer records this per dispatched
// phase; the feedback path turns (diag, realized value) into band
// exceedances and log-residuals for the drift detector.
func (t *Trained) DiagnosePhase(p apps.Params, phase int, cfg approx.Config) (PhaseDiag, error) {
	if err := cfg.Validate(t.Blocks); err != nil {
		return PhaseDiag{}, err
	}
	if phase < 0 || phase >= t.Phases {
		return PhaseDiag{}, fmt.Errorf("core: phase %d out of range [0,%d)", phase, t.Phases)
	}
	pv := p.Vector(t.Specs)
	cm, err := t.classFor(pv)
	if err != nil {
		return PhaseDiag{}, err
	}
	pm := cm.Phase[phase]
	sRaw, dRaw := pm.rawPredict(t, pv, cfg)
	return PhaseDiag{
		SpeedupRaw:  sRaw,
		DegRaw:      dRaw,
		SpeedupBand: pm.SpeedupCI.Band(sRaw),
		DegBand:     pm.DegCI.Band(dRaw),
	}, nil
}

// SpeedupScale and DegradationScale expose the transformations the global
// models are fitted on, so feedback producers can put realized values on
// the same scale as PhaseDiag's raw predictions.
func SpeedupScale(speedup float64) float64     { return scaleLog.to(speedup) }
func DegradationScale(deg float64) float64     { return scaleLog1p.to(deg) }
func SpeedupFromScale(raw float64) float64     { return scaleLog.from(raw) }
func DegradationFromScale(raw float64) float64 { return scaleLog1p.from(raw) }
