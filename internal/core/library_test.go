package core

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"testing"

	"opprox/internal/approx"
	"opprox/internal/apps"
)

// planResult bundles one Optimize outcome for byte-level comparison
// between the menu path and the front-library path.
type planResult struct {
	sched approx.Schedule
	pred  Prediction
}

// optimizeGrid runs Optimize over every (size, budget) pair in order.
func optimizeGrid(t *testing.T, tr *Trained, params []apps.Params, budgets []float64) []planResult {
	t.Helper()
	var out []planResult
	for _, p := range params {
		for _, b := range budgets {
			sched, pred, err := tr.Optimize(p, b)
			if err != nil {
				t.Fatalf("Optimize(%v, %g): %v", p, b, err)
			}
			out = append(out, planResult{sched: sched, pred: pred})
		}
	}
	return out
}

var (
	libGridParams  = []apps.Params{{"size": 10}, {"size": 20}}
	libGridBudgets = []float64{0, 1, 2.5, 5, 10, 25, 60}
)

// TestFrontPlansMatchMenuPlans is the tentpole's headline property: with
// the library built from the training records, front-path plans are
// bitwise-identical to menu-path plans at the training parameter vectors
// for every budget — the dominance pruning never removes a ladder rung.
func TestFrontPlansMatchMenuPlans(t *testing.T) {
	_, tr := trainToy(t)
	menu := optimizeGrid(t, tr, libGridParams, libGridBudgets)
	if err := tr.EnableFrontLibrary(); err != nil {
		t.Fatal(err)
	}
	if !tr.frontOn || tr.library == nil {
		t.Fatal("EnableFrontLibrary did not switch the optimizer onto the library")
	}
	front := optimizeGrid(t, tr, libGridParams, libGridBudgets)
	for i := range menu {
		if !reflect.DeepEqual(menu[i].sched, front[i].sched) {
			t.Fatalf("plan %d: schedules diverge\nmenu:  %v\nfront: %v", i, menu[i].sched, front[i].sched)
		}
		if !reflect.DeepEqual(menu[i].pred, front[i].pred) {
			t.Fatalf("plan %d: predictions diverge\nmenu:  %+v\nfront: %+v", i, menu[i].pred, front[i].pred)
		}
	}
}

// TestFrontMenusMatchFullMenus pins the stronger per-phase claim behind
// the plan equality: at every sampled parameter vector, the ladder built
// over the survivors equals the ladder built over the full enumeration.
func TestFrontMenusMatchFullMenus(t *testing.T) {
	_, tr := trainToy(t)
	if err := tr.EnableFrontLibrary(); err != nil {
		t.Fatal(err)
	}
	for _, pv := range tr.libraryParamVecs() {
		cm, err := tr.classFor(pv)
		if err != nil {
			t.Fatal(err)
		}
		menus, err := tr.frontMenus(cm, pv)
		if err != nil {
			t.Fatal(err)
		}
		if menus == nil {
			t.Fatalf("library does not cover class %q", cm.CtxSig)
		}
		for ph, pm := range cm.Phase {
			full := tr.buildPhaseMenu(pm, pv)
			if !reflect.DeepEqual(full.ladder, menus[ph].ladder) {
				t.Fatalf("pv %v phase %d: front ladder %+v != full ladder %+v",
					pv, ph, menus[ph].ladder, full.ladder)
			}
		}
	}
}

// checkBatchMatchesScalar asserts predictConfigsBatch returns exactly
// (==, not approximately) what the scalar predictConfig path returns for
// every configuration, class, phase and parameter vector.
func checkBatchMatchesScalar(t *testing.T, tr *Trained) {
	t.Helper()
	space := enumerateSpace(tr.Blocks)
	spd := make([]float64, len(space))
	deg := make([]float64, len(space))
	for _, sig := range tr.classSigs() {
		cm := tr.Classes[sig]
		for _, pv := range tr.libraryParamVecs() {
			for ph, pm := range cm.Phase {
				if err := pm.predictConfigsBatch(tr, pv, space, spd, deg); err != nil {
					t.Fatal(err)
				}
				for j, cfg := range space {
					sWant, _ := pm.predictConfig(tr, pv, cfg, false)
					_, dWant := pm.predictConfig(tr, pv, cfg, tr.Opts.UseConfidence)
					if spd[j] != sWant || deg[j] != dWant {
						t.Fatalf("class %q phase %d pv %v cfg %v: batch (%.17g, %.17g) != scalar (%.17g, %.17g)",
							sig, ph, pv, cfg, spd[j], deg[j], sWant, dWant)
					}
				}
			}
		}
	}
}

func TestPredictConfigsBatchMatchesScalar(t *testing.T) {
	_, tr := trainToy(t)
	checkBatchMatchesScalar(t, tr)
}

// TestFrontLibraryInvariants checks the structural shape of the built
// library on the toy app. (The toy's config space is all-Pareto —
// speedup depends only on the total level sum while damage grows with
// every level — so pruning correctly removes nothing here; the filter
// itself is pinned by TestPruneDominated.)
func TestFrontLibraryInvariants(t *testing.T) {
	_, tr := trainToy(t)
	if err := tr.BuildFrontLibrary(); err != nil {
		t.Fatal(err)
	}
	space := len(enumerateSpace(tr.Blocks))
	for sig, cf := range tr.library.classes {
		if len(cf.phase) != tr.Phases {
			t.Fatalf("class %q: %d phase fronts for %d phases", sig, len(cf.phase), tr.Phases)
		}
		for ph, pf := range cf.phase {
			if len(pf.cfgs) == 0 || len(pf.cfgs) > space {
				t.Fatalf("class %q phase %d: %d survivors out of %d configs", sig, ph, len(pf.cfgs), space)
			}
			for k := 1; k < len(pf.idx); k++ {
				if pf.idx[k] <= pf.idx[k-1] {
					t.Fatalf("class %q phase %d: indices not strictly increasing: %v", sig, ph, pf.idx)
				}
			}
		}
	}
}

// TestFrontLibraryPrunesBenchApp checks tier 1 does real work on a space
// with dominated configurations: on benchApp every gamma > 0 setting is
// dominated, so well over half of the 215 configurations must be pruned
// — and the surviving front must still produce menu-identical plans.
func TestFrontLibraryPrunesBenchApp(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a 3-block model; skipped with -short")
	}
	tr := trainBench(t)
	params := []apps.Params{{"size": 10}, {"size": 20}}
	menu := optimizeGrid(t, tr, params, libGridBudgets)
	if err := tr.EnableFrontLibrary(); err != nil {
		t.Fatal(err)
	}
	space := len(enumerateSpace(tr.Blocks))
	for sig, cf := range tr.library.classes {
		for ph, pf := range cf.phase {
			if len(pf.cfgs) > space/2 {
				t.Fatalf("class %q phase %d: only %d of %d configs pruned",
					sig, ph, space-len(pf.cfgs), space)
			}
		}
	}
	front := optimizeGrid(t, tr, params, libGridBudgets)
	if !reflect.DeepEqual(menu, front) {
		t.Fatal("front-path plans diverge from menu-path plans on benchApp")
	}
}

// TestPruneDominated pins the dominance filter on controlled prediction
// matrices: dominated configurations are removed, equal-prediction ties
// keep the earlier enumeration index, disagreement across parameter
// vectors blocks pruning, and floor-bound configurations drop out.
func TestPruneDominated(t *testing.T) {
	space := []approx.Config{{1, 0}, {0, 1}, {2, 0}, {0, 2}, {3, 0}}
	// Two sampled parameter vectors (rows), five configs (columns):
	//   cfg0 dominates cfg1 at both pvs (equal speedup, less degradation).
	//   cfg2 beats cfg3 at pv0 but not at pv1 -> cfg3 must survive.
	//   cfg4 never beats the accurate floor (speedup <= 1 everywhere).
	spd := []float64{
		1.5, 1.5, 2.0, 1.9, 1.0,
		1.4, 1.4, 1.8, 1.9, 0.9,
	}
	deg := []float64{
		1.0, 2.0, 3.0, 4.0, 0.5,
		1.0, 2.0, 3.0, 4.0, 0.5,
	}
	pf := pruneDominated(space, spd, deg, 2)
	if want := []int{0, 2, 3}; !reflect.DeepEqual(pf.idx, want) {
		t.Fatalf("survivors %v, want %v", pf.idx, want)
	}
	// With only pv0 sampled, cfg3 is dominated by cfg2 too.
	pf = pruneDominated(space, spd[:5], deg[:5], 1)
	if want := []int{0, 2}; !reflect.DeepEqual(pf.idx, want) {
		t.Fatalf("single-pv survivors %v, want %v", pf.idx, want)
	}
}

// TestOptimizeBudgetMonotoneFront re-runs the budget monotonicity
// property on the front path.
func TestOptimizeBudgetMonotoneFront(t *testing.T) {
	runner, tr := trainToy(t)
	if err := tr.EnableFrontLibrary(); err != nil {
		t.Fatal(err)
	}
	p := apps.DefaultParams(toyApp{})
	prev := 0.0
	for _, budget := range []float64{2, 5, 10, 25} {
		sched, _, err := tr.Optimize(p, budget)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := runner.Evaluate(p, sched)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Degradation > budget {
			t.Fatalf("budget %g violated: measured %.2f", budget, ev.Degradation)
		}
		if ev.Speedup+1e-9 < prev {
			t.Fatalf("speedup not monotone in budget: %.3f after %.3f", ev.Speedup, prev)
		}
		prev = ev.Speedup
	}
}

// TestLibraryPersistRoundTrip trains with the library on, saves, reloads,
// and requires the loaded model to serve identical front-path plans with
// an identical survivor set — no records travel with the file, so this
// also pins the ParamCombos reproduction path.
func TestLibraryPersistRoundTrip(t *testing.T) {
	opts := fastOptions()
	opts.FrontLibrary = true
	tr, err := Train(apps.NewRunner(toyApp{}), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.frontOn || tr.library == nil {
		t.Fatal("Options.FrontLibrary did not build the library at train time")
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrained(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.frontOn || loaded.library == nil {
		t.Fatal("loading a model with a persisted library must re-arm the front path")
	}
	for sig, cf := range tr.library.classes {
		lcf := loaded.library.classes[sig]
		if lcf == nil {
			t.Fatalf("class %q missing from loaded library", sig)
		}
		for ph := range cf.phase {
			if !reflect.DeepEqual(cf.phase[ph].idx, lcf.phase[ph].idx) {
				t.Fatalf("class %q phase %d: survivors %v != loaded %v",
					sig, ph, cf.phase[ph].idx, lcf.phase[ph].idx)
			}
			if !reflect.DeepEqual(cf.phase[ph].cfgs, lcf.phase[ph].cfgs) {
				t.Fatalf("class %q phase %d: configs diverge after reload", sig, ph)
			}
		}
	}
	want := optimizeGrid(t, tr, libGridParams, libGridBudgets)
	got := optimizeGrid(t, loaded, libGridParams, libGridBudgets)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("front-path plans diverge across a save/load round trip")
	}
}

// TestImportLibraryRejectsCorrupt exercises the structural validation on
// the persisted survivor sets: a corrupt library must fail the load, not
// produce a silently wrong fast path.
func TestImportLibraryRejectsCorrupt(t *testing.T) {
	opts := fastOptions()
	opts.FrontLibrary = true
	tr, err := Train(apps.NewRunner(toyApp{}), opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	sig := tr.classSigs()[0]
	nspace := len(enumerateSpace(tr.Blocks))

	cases := []struct {
		name   string
		mutate func(classes map[string]any)
	}{
		{"non-increasing indices", func(classes map[string]any) {
			classes[sig].([]any)[0] = []any{1.0, 1.0}
		}},
		{"index out of range", func(classes map[string]any) {
			classes[sig].([]any)[0] = []any{float64(nspace)}
		}},
		{"negative index", func(classes map[string]any) {
			classes[sig].([]any)[0] = []any{-1.0}
		}},
		{"unknown class", func(classes map[string]any) {
			classes["no>such>class"] = classes[sig]
		}},
		{"wrong phase count", func(classes map[string]any) {
			classes[sig] = classes[sig].([]any)[:1]
		}},
		{"missing class", func(classes map[string]any) {
			delete(classes, sig)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var mf map[string]any
			if err := json.Unmarshal(buf.Bytes(), &mf); err != nil {
				t.Fatal(err)
			}
			lib, ok := mf["front_library"].(map[string]any)
			if !ok {
				t.Fatal("saved model has no front_library field")
			}
			tc.mutate(lib["classes"].(map[string]any))
			raw, err := json.Marshal(mf)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := LoadTrained(bytes.NewReader(raw)); err == nil {
				t.Fatal("corrupt library accepted")
			}
		})
	}
}

// TestLibraryParamVecsDedupeAndCap checks the pruning anchor set: sorted,
// deduplicated, and capped with the first and last vectors always kept.
func TestLibraryParamVecsDedupeAndCap(t *testing.T) {
	var recs []Record
	for i := 40; i >= 0; i-- {
		pv := []float64{float64(i % 21), float64(i % 3)}
		recs = append(recs, Record{ParamVec: pv}, Record{ParamVec: pv})
	}
	tr := &Trained{Records: recs}
	got := tr.libraryParamVecs()
	if len(got) > maxLibraryPVs {
		t.Fatalf("%d vectors exceed the %d cap", len(got), maxLibraryPVs)
	}
	for i := 1; i < len(got); i++ {
		if !lexLess(got[i-1], got[i]) {
			t.Fatalf("vectors not strictly increasing at %d: %v then %v", i, got[i-1], got[i])
		}
	}
	if got[0][0] != 0 || got[len(got)-1][0] != 20 {
		t.Fatalf("extremes not kept: first %v last %v", got[0], got[len(got)-1])
	}
}

// TestFrontLibraryMultiClass builds the library on the two-class
// control-flow app and requires per-class coverage plus plan equality on
// both paths through the program.
func TestFrontLibraryMultiClass(t *testing.T) {
	tr, err := Train(apps.NewRunner(twoPathApp{}), fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	params := []apps.Params{
		{"size": 10, "mode": 0},
		{"size": 10, "mode": 1},
		{"size": 20, "mode": 0},
		{"size": 20, "mode": 1},
	}
	menu := optimizeGrid(t, tr, params, libGridBudgets)
	if err := tr.EnableFrontLibrary(); err != nil {
		t.Fatal(err)
	}
	if len(tr.library.classes) != len(tr.Classes) {
		t.Fatalf("library covers %d of %d classes", len(tr.library.classes), len(tr.Classes))
	}
	front := optimizeGrid(t, tr, params, libGridBudgets)
	if !reflect.DeepEqual(menu, front) {
		t.Fatal("front-path plans diverge from menu-path plans on the two-class app")
	}
	checkBatchMatchesScalar(t, tr)
}

// TestExpandFeaturesTraining turns on the space-expanded feature set and
// checks training still converges, at least one fitted model actually
// uses the widened basis, the batch path stays bit-exact, and the
// expansion survives a save/load round trip (front path included).
func TestExpandFeaturesTraining(t *testing.T) {
	opts := fastOptions()
	opts.ExpandFeatures = true
	opts.FrontLibrary = true
	tr, err := Train(apps.NewRunner(toyApp{}), opts)
	if err != nil {
		t.Fatal(err)
	}
	expanded := false
	for _, sig := range tr.classSigs() {
		for _, pm := range tr.Classes[sig].Phase {
			for _, fm := range []*filteredModel{pm.globalSpeedup, pm.globalDeg, pm.iter} {
				if anyExpanded(fm) {
					expanded = true
				}
			}
			for b := range pm.localSpeedup {
				if anyExpanded(pm.localSpeedup[b]) || anyExpanded(pm.localDeg[b]) {
					expanded = true
				}
			}
		}
	}
	if !expanded {
		t.Fatal("ExpandFeatures trained no model on the widened basis")
	}
	sR2, dR2 := tr.ModelQuality()
	if sR2 < 0.8 || dR2 < 0.8 {
		t.Fatalf("expanded toy models degraded: speedup R²=%.3f deg R²=%.3f", sR2, dR2)
	}
	checkBatchMatchesScalar(t, tr)

	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTrained(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := optimizeGrid(t, tr, libGridParams, libGridBudgets)
	got := optimizeGrid(t, loaded, libGridParams, libGridBudgets)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("expanded-model plans diverge across a save/load round trip")
	}
}

// anyExpanded reports whether the model or any split child fits on the
// space-expanded basis.
func anyExpanded(fm *filteredModel) bool {
	if fm == nil {
		return false
	}
	if fm.expandN > 0 {
		return true
	}
	return anyExpanded(fm.lo) || anyExpanded(fm.hi)
}

// fuzzMenus trains the toy model once per fuzz process and caches both
// menu sets at the default parameter vector.
var fuzzMenus struct {
	once  sync.Once
	err   error
	front []phaseMenu
	full  []phaseMenu
}

func initFuzzMenus() {
	tr, err := Train(apps.NewRunner(toyApp{}), fastOptions())
	if err != nil {
		fuzzMenus.err = err
		return
	}
	if err := tr.EnableFrontLibrary(); err != nil {
		fuzzMenus.err = err
		return
	}
	pv := apps.DefaultParams(toyApp{}).Vector(tr.Specs)
	cm, err := tr.classFor(pv)
	if err != nil {
		fuzzMenus.err = err
		return
	}
	fuzzMenus.front, fuzzMenus.err = tr.frontMenus(cm, pv)
	if fuzzMenus.err != nil {
		return
	}
	fuzzMenus.full = make([]phaseMenu, len(cm.Phase))
	for ph, pm := range cm.Phase {
		fuzzMenus.full[ph] = tr.buildPhaseMenu(pm, pv)
	}
}

// FuzzFrontQueryMatchesLadder asserts the front-library ladder answers
// every budget query exactly like the full-enumeration ladder.
func FuzzFrontQueryMatchesLadder(f *testing.F) {
	for _, b := range []float64{0, 1e-9, 0.5, 1, 3, 7.5, 25, 1e6, -1, math.Inf(1)} {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, budget float64) {
		if math.IsNaN(budget) {
			t.Skip("NaN budgets trivially return the accurate floor on both paths")
		}
		fuzzMenus.once.Do(initFuzzMenus)
		if fuzzMenus.err != nil {
			t.Fatal(fuzzMenus.err)
		}
		for ph := range fuzzMenus.full {
			got := fuzzMenus.front[ph].query(budget)
			want := fuzzMenus.full[ph].query(budget)
			if got.spd != want.spd || got.deg != want.deg || !reflect.DeepEqual(got.cfg, want.cfg) {
				t.Fatalf("phase %d budget %g: front %+v != ladder %+v", ph, budget, got, want)
			}
		}
	})
}
