package apps_test

import (
	"testing"

	"opprox/internal/approx"
	"opprox/internal/apps"
)

// One accurate-run benchmark per application: the cost of a golden run is
// the unit every training budget is denominated in.
func BenchmarkGoldenRuns(b *testing.B) {
	for _, a := range allApps() {
		a := a
		b.Run(a.Name(), func(b *testing.B) {
			p := apps.DefaultParams(a)
			sched := approx.AccurateSchedule(len(a.Blocks()))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := a.Run(p, sched, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The max-approximation runs bound the cheap end of the spectrum.
func BenchmarkMaxApproxRuns(b *testing.B) {
	for _, a := range allApps() {
		a := a
		b.Run(a.Name(), func(b *testing.B) {
			p := apps.DefaultParams(a)
			cfg := make(approx.Config, len(a.Blocks()))
			for i, blk := range a.Blocks() {
				cfg[i] = blk.MaxLevel
			}
			g, err := a.Run(p, approx.AccurateSchedule(len(a.Blocks())), 0)
			if err != nil {
				b.Fatal(err)
			}
			sched := approx.UniformSchedule(1, cfg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := a.Run(p, sched, g.OuterIters); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
