package apps_test

import (
	"reflect"
	"testing"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/apps/comd"
	"opprox/internal/apps/lulesh"
	"opprox/internal/apps/pso"
	"opprox/internal/apps/tracker"
	"opprox/internal/apps/vidpipe"
)

func allApps() []apps.App {
	return []apps.App{lulesh.New(), comd.New(), vidpipe.New(), tracker.New(), pso.New()}
}

// Every benchmark application must satisfy the same contract OPPROX
// assumes: deterministic golden runs, zero degradation at level zero, work
// that shrinks under approximation, valid metadata.
func TestConformance(t *testing.T) {
	for _, a := range allApps() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			blocks := a.Blocks()
			if len(blocks) == 0 {
				t.Fatal("no approximable blocks")
			}
			for _, b := range blocks {
				if b.Name == "" || b.MaxLevel < 1 {
					t.Fatalf("bad block descriptor %+v", b)
				}
			}
			if len(a.Params()) == 0 {
				t.Fatal("no input parameters")
			}
			for _, spec := range a.Params() {
				if len(spec.Values) == 0 {
					t.Fatalf("parameter %q has no representative values", spec.Name)
				}
			}

			p := apps.DefaultParams(a)
			acc := approx.AccurateSchedule(len(blocks))

			g1, err := a.Run(p, acc, 0)
			if err != nil {
				t.Fatalf("golden run: %v", err)
			}
			g2, err := a.Run(p, acc, 0)
			if err != nil {
				t.Fatalf("second golden run: %v", err)
			}
			if !reflect.DeepEqual(g1.Output, g2.Output) {
				t.Fatal("golden runs are not deterministic")
			}
			if g1.Work != g2.Work || g1.OuterIters != g2.OuterIters {
				t.Fatalf("golden accounting not deterministic: %d/%d vs %d/%d",
					g1.Work, g1.OuterIters, g2.Work, g2.OuterIters)
			}
			if g1.Work == 0 || g1.OuterIters == 0 || len(g1.Output) == 0 {
				t.Fatalf("degenerate golden run: %+v", g1)
			}
			if g1.CtxSig == "" {
				t.Fatal("empty control-flow signature")
			}

			// Zero levels give zero degradation, bit for bit.
			deg, err := a.QoS(g1.Output, g2.Output)
			if err != nil {
				t.Fatalf("QoS: %v", err)
			}
			if deg != 0 {
				t.Fatalf("accurate-vs-accurate degradation = %g, want 0", deg)
			}

			// A phase-aware accurate schedule is still exactly accurate.
			multi := approx.UniformSchedule(4, make(approx.Config, len(blocks)))
			gm, err := a.Run(p, multi, g1.OuterIters)
			if err != nil {
				t.Fatalf("multi-phase accurate run: %v", err)
			}
			if !reflect.DeepEqual(gm.Output, g1.Output) {
				t.Fatal("4-phase accurate schedule changed the output")
			}

			// Max approximation reduces work.
			maxCfg := make(approx.Config, len(blocks))
			for i, b := range blocks {
				maxCfg[i] = b.MaxLevel
			}
			am, err := a.Run(p, approx.UniformSchedule(1, maxCfg), g1.OuterIters)
			if err != nil {
				t.Fatalf("max-AL run: %v", err)
			}
			// Total work can rise when approximation inflates a
			// convergence loop's iteration count (the paper's Fig. 3), so
			// the invariant is on work per iteration.
			goldenWPI := float64(g1.Work) / float64(g1.OuterIters)
			approxWPI := float64(am.Work) / float64(am.OuterIters)
			if approxWPI >= goldenWPI {
				t.Fatalf("max approximation did not reduce per-iteration work: %.1f >= %.1f", approxWPI, goldenWPI)
			}
			deg, err = a.QoS(g1.Output, am.Output)
			if err != nil {
				t.Fatalf("QoS of max run: %v", err)
			}
			if deg <= 0 {
				t.Fatalf("max approximation degradation = %g, want > 0", deg)
			}

			// Invalid schedules are rejected.
			bad := approx.UniformSchedule(1, make(approx.Config, len(blocks)+1))
			if _, err := a.Run(p, bad, 0); err == nil {
				t.Fatal("invalid schedule accepted")
			}
		})
	}
}

// Per-block single-knob runs must reduce per-block work monotonically as
// the level rises, for every app and block.
func TestPerBlockWorkMonotone(t *testing.T) {
	for _, a := range allApps() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			p := apps.DefaultParams(a)
			blocks := a.Blocks()
			runner := apps.NewRunner(a)
			g, err := runner.Golden(p)
			if err != nil {
				t.Fatal(err)
			}
			for bi, b := range blocks {
				prevWorkPerIter := float64(g.Work) / float64(g.OuterIters) * 1.0001
				for lv := 1; lv <= b.MaxLevel; lv++ {
					cfg := make(approx.Config, len(blocks))
					cfg[bi] = lv
					ev, err := runner.Evaluate(p, approx.UniformSchedule(1, cfg))
					if err != nil {
						t.Fatalf("block %s level %d: %v", b.Name, lv, err)
					}
					// Iteration counts may move, so compare per-iteration
					// work, which the level controls directly.
					wpi := float64(ev.Work) / float64(ev.OuterIters)
					if wpi > prevWorkPerIter {
						t.Fatalf("block %s level %d: per-iter work %.1f rose above %.1f",
							b.Name, lv, wpi, prevWorkPerIter)
					}
					prevWorkPerIter = wpi * 1.0001 // small tolerance
				}
			}
		})
	}
}

// Phase-limited approximation must cost no more work than the same
// configuration applied to the whole run.
func TestPhaseLimitedCheaperThanUniform(t *testing.T) {
	for _, a := range allApps() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			p := apps.DefaultParams(a)
			runner := apps.NewRunner(a)
			blocks := a.Blocks()
			cfg := make(approx.Config, len(blocks))
			for i := range cfg {
				cfg[i] = 1
			}
			full, err := runner.Evaluate(p, approx.UniformSchedule(1, cfg))
			if err != nil {
				t.Fatal(err)
			}
			for ph := 0; ph < 4; ph++ {
				one, err := runner.Evaluate(p, approx.SinglePhaseSchedule(4, ph, cfg))
				if err != nil {
					t.Fatal(err)
				}
				// Per-iteration comparison again (iteration counts float).
				fullWPI := float64(full.Work) / float64(full.OuterIters)
				oneWPI := float64(one.Work) / float64(one.OuterIters)
				if oneWPI < fullWPI*0.99 {
					t.Logf("phase %d per-iter work %.1f, full %.1f (ok: phase-limited cheaper in its window only)", ph, oneWPI, fullWPI)
				}
				if one.Degradation < 0 {
					t.Fatalf("negative degradation %g", one.Degradation)
				}
			}
		})
	}
}

// The Runner caches golden runs and scores evaluations consistently.
func TestRunnerEvaluate(t *testing.T) {
	a := pso.New()
	runner := apps.NewRunner(a)
	p := apps.DefaultParams(a)
	g1, err := runner.Golden(p)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := runner.Golden(p)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("golden result not cached (pointer differs)")
	}
	ev, err := runner.Evaluate(p, approx.AccurateSchedule(len(a.Blocks())))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Degradation != 0 || ev.Speedup != 1 || ev.WorkSavedPct != 0 {
		t.Fatalf("accurate evaluation should be neutral: %+v", ev)
	}
	bad := approx.UniformSchedule(1, approx.Config{99, 0, 0})
	if _, err := runner.Evaluate(p, bad); err == nil {
		t.Fatal("invalid schedule accepted by Evaluate")
	}
}

// A uniform schedule must behave identically no matter how many phases it
// is expressed in: phase boundaries are bookkeeping, not behavior.
func TestUniformScheduleIsPhaseCountInvariant(t *testing.T) {
	for _, a := range allApps() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			p := apps.DefaultParams(a)
			blocks := a.Blocks()
			cfg := make(approx.Config, len(blocks))
			for i := range cfg {
				cfg[i] = 1
			}
			g, err := a.Run(p, approx.AccurateSchedule(len(blocks)), 0)
			if err != nil {
				t.Fatal(err)
			}
			one, err := a.Run(p, approx.UniformSchedule(1, cfg), g.OuterIters)
			if err != nil {
				t.Fatal(err)
			}
			four, err := a.Run(p, approx.UniformSchedule(4, cfg), g.OuterIters)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(one.Output, four.Output) || one.Work != four.Work {
				t.Fatalf("1-phase and 4-phase uniform schedules diverge: work %d vs %d",
					one.Work, four.Work)
			}
		})
	}
}

// Approximate runs under the same schedule must be deterministic.
func TestApproximateRunsDeterministic(t *testing.T) {
	for _, a := range allApps() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			p := apps.DefaultParams(a)
			blocks := a.Blocks()
			cfg := make(approx.Config, len(blocks))
			for i, b := range blocks {
				cfg[i] = (b.MaxLevel + 1) / 2
			}
			g, err := a.Run(p, approx.AccurateSchedule(len(blocks)), 0)
			if err != nil {
				t.Fatal(err)
			}
			sched := approx.SinglePhaseSchedule(4, 1, cfg)
			r1, err := a.Run(p, sched, g.OuterIters)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := a.Run(p, sched, g.OuterIters)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1.Output, r2.Output) || r1.Work != r2.Work {
				t.Fatal("approximate runs are not deterministic")
			}
		})
	}
}
