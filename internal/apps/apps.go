// Package apps defines the contract between OPPROX and an application
// under optimization, plus the run harness (golden-run caching, QoS and
// speedup evaluation) shared by the five benchmark applications from the
// paper's evaluation (§4.1): LULESH, CoMD, FFmpeg (vidpipe), Bodytrack
// (tracker), and PSO.
package apps

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"opprox/internal/approx"
	"opprox/internal/obs"
	"opprox/internal/trace"
)

// ParamSpec describes one application input parameter and the
// representative values the training inputs draw from (paper §3.1: the
// user provides representative inputs that exercise the desired
// functionality).
type ParamSpec struct {
	Name string
	// Values are the representative settings used for training.
	Values []float64
	// Default is the target production setting experiments report on.
	Default float64
}

// Params maps parameter names to concrete values for one run.
type Params map[string]float64

// Clone returns a copy of p.
func (p Params) Clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Key returns a canonical string form of p, usable as a cache key.
func (p Params) Key() string {
	names := make([]string, 0, len(p))
	for k := range p {
		names = append(names, k)
	}
	sort.Strings(names)
	s := ""
	for _, k := range names {
		s += fmt.Sprintf("%s=%g;", k, p[k])
	}
	return s
}

// Vector flattens p into a feature vector following the order of specs.
func (p Params) Vector(specs []ParamSpec) []float64 {
	out := make([]float64, len(specs))
	for i, s := range specs {
		if v, ok := p[s.Name]; ok {
			out[i] = v
		} else {
			out[i] = s.Default
		}
	}
	return out
}

// DefaultParams builds the default parameter set for an app.
func DefaultParams(a App) Params {
	p := make(Params)
	for _, s := range a.Params() {
		p[s.Name] = s.Default
	}
	return p
}

// Result is the observable outcome of one application run.
type Result struct {
	// Output is the application's final answer, in a fixed layout the
	// app's QoS metric understands.
	Output []float64
	// Work is the abstract instruction count of the run.
	Work uint64
	// OuterIters is the number of outer-loop iterations executed.
	OuterIters int
	// CtxSig is the control-flow signature (ordered AB sequence of the
	// first outer iteration).
	CtxSig string
}

// App is the contract OPPROX requires from an application: named
// approximable blocks with discrete levels, declared input parameters, a
// phase-schedulable run entry point, and a QoS metric.
type App interface {
	// Name identifies the application in reports.
	Name() string
	// Blocks lists the approximable blocks in a fixed order.
	Blocks() []approx.Block
	// Params lists the input parameters and their representative values.
	Params() []ParamSpec
	// Run executes the application. sched supplies the per-phase AL
	// configuration; baselineIters is the accurate-run outer-loop
	// iteration count used to lay phases out (pass 0 when unknown, e.g.
	// for the golden run itself — with an accurate schedule the phase
	// layout is irrelevant).
	Run(p Params, sched approx.Schedule, baselineIters int) (Result, error)
	// QoS returns the degradation (percent-like, 0 = identical, larger =
	// worse) of an approximate output versus the exact output.
	QoS(exact, approximate []float64) (float64, error)
}

// Seed derives a deterministic RNG seed from an app name and parameters,
// so the golden run and every approximate run of the same input see
// identical synthetic data.
func Seed(appName string, p Params) int64 {
	h := fnv.New64a()
	h.Write([]byte(appName))
	h.Write([]byte(p.Key()))
	return int64(h.Sum64() & math.MaxInt64)
}

// Noise returns a deterministic pseudo-random value in [-1, 1) keyed by a
// seed and a tuple of indices (splitmix64 finalizer). Apps use it to
// synthesize observation noise that is a pure function of the input — the
// same for the golden run and every approximate run, no matter how many
// draws each consumed from its algorithmic RNG stream.
func Noise(seed int64, idx ...int64) float64 {
	x := uint64(seed)
	for _, v := range idx {
		x ^= uint64(v) + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	// Map the top 53 bits to [0,1), then shift to [-1,1).
	return float64(x>>11)/float64(1<<53)*2 - 1
}

// Eval is a fully scored run: the raw result plus its comparison against
// the golden (accurate) run of the same parameters.
type Eval struct {
	Result
	Golden *Result
	// Degradation is the QoS degradation versus the golden run.
	Degradation float64
	// Speedup is goldenWork/work (>1 is faster, <1 backfired).
	Speedup float64
	// WorkSavedPct is 100·(1-work/goldenWork).
	WorkSavedPct float64
}

// goldenEntry is one singleflight slot of the golden cache: the first
// caller computes the run inside the sync.Once, every concurrent caller
// for the same parameters blocks on that same Once instead of repeating
// the (expensive, deterministic) accurate run.
type goldenEntry struct {
	once sync.Once
	res  *Result
	err  error
}

// Runner caches golden runs per parameter set and scores approximate runs
// against them. It is safe for concurrent use: concurrent golden misses
// for the same parameters are deduplicated to a single run.
type Runner struct {
	App App

	mu     sync.Mutex
	golden map[string]*goldenEntry
}

// NewRunner returns a Runner for app.
func NewRunner(app App) *Runner {
	return &Runner{App: app, golden: make(map[string]*goldenEntry)}
}

// Golden returns the accurate run for p, computing and caching it on first
// use. Errors are cached too: the apps are deterministic, so a failing
// golden run would fail identically on every retry.
func (r *Runner) Golden(p Params) (*Result, error) {
	key := p.Key()
	r.mu.Lock()
	e, ok := r.golden[key]
	if !ok {
		e = &goldenEntry{}
		r.golden[key] = e
	}
	r.mu.Unlock()
	if ok {
		obs.Inc("apps." + r.App.Name() + ".golden.hit")
	} else {
		obs.Inc("apps." + r.App.Name() + ".golden.miss")
	}
	e.once.Do(func() {
		res, err := r.App.Run(p, approx.AccurateSchedule(len(r.App.Blocks())), 0)
		if err != nil {
			e.err = fmt.Errorf("golden run of %s: %w", r.App.Name(), err)
			return
		}
		e.res = &res
	})
	return e.res, e.err
}

// Evaluate runs the app under sched and scores it against the golden run.
func (r *Runner) Evaluate(p Params, sched approx.Schedule) (*Eval, error) {
	if err := sched.Validate(r.App.Blocks()); err != nil {
		return nil, err
	}
	obs.Inc("apps." + r.App.Name() + ".evaluate")
	g, err := r.Golden(p)
	if err != nil {
		return nil, err
	}
	res, err := r.App.Run(p, sched, g.OuterIters)
	if err != nil {
		return nil, fmt.Errorf("run of %s under %s: %w", r.App.Name(), sched, err)
	}
	deg, err := r.App.QoS(g.Output, res.Output)
	if err != nil {
		return nil, fmt.Errorf("qos of %s: %w", r.App.Name(), err)
	}
	// Guard the models against pathological blowups (NaN from an unstable
	// approximate run): report a large-but-finite degradation instead.
	if math.IsNaN(deg) || deg > MaxDegradation {
		deg = MaxDegradation
	}
	return &Eval{
		Result:       res,
		Golden:       g,
		Degradation:  deg,
		Speedup:      trace.Speedup(g.Work, res.Work),
		WorkSavedPct: trace.WorkSavedPercent(g.Work, res.Work),
	}, nil
}

// MaxDegradation caps reported QoS degradation; beyond this the output is
// unusable anyway and unbounded values would destabilize regression.
const MaxDegradation = 200.0
