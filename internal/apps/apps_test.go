package apps

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParamsCloneIndependent(t *testing.T) {
	p := Params{"a": 1, "b": 2}
	q := p.Clone()
	q["a"] = 9
	if p["a"] != 1 {
		t.Fatal("Clone must copy")
	}
}

func TestParamsKeyCanonical(t *testing.T) {
	p := Params{"b": 2, "a": 1}
	q := Params{"a": 1, "b": 2}
	if p.Key() != q.Key() {
		t.Fatalf("keys differ: %q vs %q", p.Key(), q.Key())
	}
	r := Params{"a": 1, "b": 3}
	if p.Key() == r.Key() {
		t.Fatal("different values share a key")
	}
}

func TestParamsVector(t *testing.T) {
	specs := []ParamSpec{
		{Name: "x", Default: 10},
		{Name: "y", Default: 20},
	}
	v := Params{"x": 1}.Vector(specs)
	if v[0] != 1 || v[1] != 20 {
		t.Fatalf("Vector = %v, want [1 20] (missing param falls back to default)", v)
	}
}

func TestSeedDeterministicAndDistinct(t *testing.T) {
	p := Params{"a": 1}
	if Seed("app", p) != Seed("app", p) {
		t.Fatal("Seed not deterministic")
	}
	if Seed("app", p) == Seed("other", p) {
		t.Fatal("Seed ignores app name")
	}
	if Seed("app", p) == Seed("app", Params{"a": 2}) {
		t.Fatal("Seed ignores params")
	}
	if Seed("app", p) < 0 {
		t.Fatal("Seed must be non-negative")
	}
}

func TestNoiseProperties(t *testing.T) {
	f := func(seed, a, b int64) bool {
		v := Noise(seed, a, b)
		if v < -1 || v >= 1 || math.IsNaN(v) {
			return false
		}
		// Deterministic.
		return v == Noise(seed, a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseIsRoughlyUniform(t *testing.T) {
	neg, pos := 0, 0
	for i := int64(0); i < 2000; i++ {
		if Noise(42, i) < 0 {
			neg++
		} else {
			pos++
		}
	}
	if neg < 800 || pos < 800 {
		t.Fatalf("noise badly skewed: %d negative, %d positive", neg, pos)
	}
}

func TestNoiseIndexSensitivity(t *testing.T) {
	if Noise(1, 2, 3) == Noise(1, 3, 2) {
		t.Fatal("noise should depend on index order")
	}
	if Noise(1, 2) == Noise(2, 2) {
		t.Fatal("noise should depend on seed")
	}
}
