// Package comd implements the molecular-dynamics benchmark modeled on the
// CoMD proxy application (paper §4.1): Lennard-Jones atoms on an FCC
// lattice integrated with velocity Verlet inside a classic timestep loop.
// The outer loop runs for an input-given number of timesteps — its
// iteration count depends on neither the other inputs nor the
// approximation levels, exactly the behavior the paper calls out for
// CoMD. Errors injected early ripple through atom positions and energies
// for the rest of the simulation, so early phases are far more sensitive
// than late ones.
//
// Approximable blocks (paper Table 1: loop perforation, loop truncation):
//
//	force    — loop perforation over atoms: skipped atoms keep the force
//	           from the previous step.
//	velocity — loop truncation over atoms: trailing atoms miss the second
//	           Verlet half-kick, degrading them to Euler integration.
//	position — loop perforation over atoms: skipped atoms do not move.
package comd

import (
	"fmt"
	"math"
	"math/rand"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/qos"
	"opprox/internal/trace"
)

// Block indices in the order reported by Blocks.
const (
	BlockForce = iota
	BlockVelocity
	BlockPosition
)

const (
	dt        = 0.0045
	mass      = 1.0
	ljEpsilon = 1.0
	ljSigma   = 1.0
	initTemp  = 0.08 // background temperature; the hot spot is 20x hotter
	maxSpeed  = 25.0

	costPair     = 6
	costPosition = 3
	costVelocity = 3
	costRest     = 7
)

// App is the CoMD benchmark.
type App struct{}

// New returns the CoMD benchmark application.
func New() *App { return &App{} }

// Name implements apps.App.
func (*App) Name() string { return "comd" }

// Blocks implements apps.App.
func (*App) Blocks() []approx.Block {
	return []approx.Block{
		{Name: "force", Technique: approx.Perforation, MaxLevel: 5},
		{Name: "velocity", Technique: approx.Truncation, MaxLevel: 4},
		{Name: "position", Technique: approx.Perforation, MaxLevel: 3},
	}
}

// Params implements apps.App. The paper's CoMD inputs are the number of
// unit cells, the lattice parameter, and the number of timesteps.
func (*App) Params() []apps.ParamSpec {
	return []apps.ParamSpec{
		{Name: "cells", Values: []float64{2, 3}, Default: 2},
		{Name: "lattice", Values: []float64{1.55, 1.65}, Default: 1.6},
		{Name: "timesteps", Values: []float64{80, 160}, Default: 120},
	}
}

// qosGain calibrates the state-distortion metric to the dynamic range the
// paper's CoMD exhibits (a few percent for mild settings).
const qosGain = 2.5

// QoS implements apps.App: the difference in the final per-atom state
// (positions and energies) versus the accurate execution, averaged across
// atoms (paper §4.1).
func (*App) QoS(exact, approximate []float64) (float64, error) {
	d, err := qos.Distortion(exact, approximate)
	return qosGain * d, err
}

type vec3 struct{ x, y, z float64 }

func (v vec3) add(o vec3) vec3      { return vec3{v.x + o.x, v.y + o.y, v.z + o.z} }
func (v vec3) scale(s float64) vec3 { return vec3{v.x * s, v.y * s, v.z * s} }

// Run implements apps.App.
func (a *App) Run(p apps.Params, sched approx.Schedule, baselineIters int) (apps.Result, error) {
	if err := sched.Validate(a.Blocks()); err != nil {
		return apps.Result{}, err
	}
	pv := p.Vector(a.Params())
	cells := int(pv[0])
	lat := pv[1]
	steps := int(pv[2])
	if cells < 1 || lat <= 0 || steps < 1 {
		return apps.Result{}, fmt.Errorf("comd: invalid parameters cells=%d lattice=%g timesteps=%d", cells, lat, steps)
	}
	rng := rand.New(rand.NewSource(apps.Seed(a.Name(), p)))

	// FCC lattice: 4 atoms per unit cell.
	basis := []vec3{{0, 0, 0}, {0.5, 0.5, 0}, {0.5, 0, 0.5}, {0, 0.5, 0.5}}
	n := 4 * cells * cells * cells
	box := float64(cells) * lat
	cutoff := 2.5 * ljSigma
	if half := box / 2; cutoff > half {
		cutoff = half
	}
	cutoff2 := cutoff * cutoff

	// Jittered lattice: small random displacements model point defects and
	// make the dynamics anharmonic enough that perturbations grow instead
	// of ringing forever in a perfect crystal.
	const jitter = 0.04
	pos := make([]vec3, 0, n)
	for ix := 0; ix < cells; ix++ {
		for iy := 0; iy < cells; iy++ {
			for iz := 0; iz < cells; iz++ {
				for _, b := range basis {
					pos = append(pos, vec3{
						(float64(ix)+b.x)*lat + rng.NormFloat64()*jitter,
						(float64(iy)+b.y)*lat + rng.NormFloat64()*jitter,
						(float64(iz)+b.z)*lat + rng.NormFloat64()*jitter,
					})
				}
			}
		}
	}
	posU := make([]vec3, n) // unwrapped positions (diagnostic output)
	copy(posU, pos)
	vel := make([]vec3, n)
	var mom vec3
	// Hot-spot quench: atoms in one corner start much hotter, so the run
	// opens with violent non-equilibrium heat flow and gradually
	// equilibrates. Approximation errors couple to the strong early
	// gradients far more than to the near-equilibrated late state — the
	// source of CoMD's phase sensitivity.
	for i := range vel {
		temp := initTemp
		if pos[i].x < box/3 && pos[i].y < box/3 {
			temp *= 20
		}
		sigma := math.Sqrt(temp / mass)
		vel[i] = vec3{rng.NormFloat64() * sigma, rng.NormFloat64() * sigma, rng.NormFloat64() * sigma}
		mom = mom.add(vel[i])
	}
	mom = mom.scale(1 / float64(n)) // remove net drift
	for i := range vel {
		vel[i] = vel[i].add(mom.scale(-1))
	}

	force := make([]vec3, n)
	peAtom := make([]float64, n)
	computeForces := func(active func(i int) bool) int {
		evaluated := 0
		for i := 0; i < n; i++ {
			if !active(i) {
				continue // perforated: keep previous force and PE share
			}
			var f vec3
			pe := 0.0
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				dx := minImage(pos[i].x-pos[j].x, box)
				dy := minImage(pos[i].y-pos[j].y, box)
				dz := minImage(pos[i].z-pos[j].z, box)
				r2 := dx*dx + dy*dy + dz*dz
				if r2 > cutoff2 || r2 < 1e-12 {
					continue
				}
				inv2 := ljSigma * ljSigma / r2
				inv6 := inv2 * inv2 * inv2
				// LJ: U = 4ε(r⁻¹² - r⁻⁶); F = 24ε(2r⁻¹² - r⁻⁶)/r².
				fmag := 24 * ljEpsilon * (2*inv6*inv6 - inv6) / r2
				f = f.add(vec3{fmag * dx, fmag * dy, fmag * dz})
				pe += 2 * ljEpsilon * (inv6*inv6 - inv6) // half of 4ε(...): pair shared
			}
			force[i] = f
			peAtom[i] = pe
			evaluated++
		}
		return evaluated
	}
	computeForces(func(int) bool { return true }) // initial forces (exact)

	var rec trace.Recorder
	for step := 0; step < steps; step++ {
		rec.BeginIteration()
		phase := approx.PhaseOf(step, baselineIters, sched.Phases)
		levels := sched.LevelsAt(phase)

		// AB: first velocity half-kick (always runs for every atom).
		for i := 0; i < n; i++ {
			vel[i] = clampSpeed(vel[i].add(force[i].scale(0.5 * dt / mass)))
		}

		// AB: position update. The full velocity-Verlet update advances
		// r += v·dt + ½(f/m)·dt²; perforated atoms drop the acceleration
		// term (first-order drift) — a tiny per-step error that trajectory
		// divergence amplifies over the remaining run.
		posStride := levels[BlockPosition] + 1
		full := 0
		for i := 0; i < n; i++ {
			d := vel[i].scale(dt)
			if (i+step)%posStride == 0 {
				d = d.add(force[i].scale(0.5 * dt * dt / mass))
				full++
			}
			pos[i] = wrap(pos[i].add(d), box)
			posU[i] = posU[i].add(d)
		}
		rec.Call("position", uint64((n+full)*costPosition))

		// AB: force computation (rotating perforation over atoms): a
		// skipped atom coasts on its previous force until its next turn.
		stride := levels[BlockForce] + 1
		evaluated := computeForces(func(i int) bool { return (i+step)%stride == 0 })
		rec.Call("force", uint64(evaluated*n*costPair))

		// AB: second velocity half-kick (truncation over atoms). Trailing
		// atoms skip it, degrading them from velocity Verlet to plain
		// Euler integration — a small per-step error that trajectory
		// divergence amplifies over the remaining timesteps.
		kicked := approx.Truncate(n, levels[BlockVelocity], a.Blocks()[BlockVelocity].MaxLevel, func(i int) {
			vel[i] = clampSpeed(vel[i].add(force[i].scale(0.5 * dt / mass)))
		})
		rec.Call("velocity", uint64((n+kicked)*costVelocity))

		// Neighbor-list maintenance, PBC bookkeeping, reductions and halo
		// exchange stand-ins: exact work every step.
		rec.Overhead(uint64(n * n * costRest))
	}

	// Output: the final per-atom state — unwrapped positions plus potential
	// and kinetic energies, evaluated exactly from the final configuration
	// (output assembly, not part of any AB). Early approximation lets
	// trajectories diverge for the rest of the run, so the final state
	// carries the full ripple effect the paper describes for CoMD.
	computeForces(func(int) bool { return true })
	out := make([]float64, 0, 5*n)
	for i := 0; i < n; i++ {
		out = append(out, posU[i].x, posU[i].y, posU[i].z)
	}
	out = append(out, peAtom...)
	for i := 0; i < n; i++ {
		v := vel[i]
		out = append(out, 0.5*mass*(v.x*v.x+v.y*v.y+v.z*v.z))
	}
	return apps.Result{
		Output:     out,
		Work:       rec.TotalWork(),
		OuterIters: rec.Iterations(),
		CtxSig:     rec.ContextSignature(),
	}, nil
}

func minImage(d, box float64) float64 {
	for d > box/2 {
		d -= box
	}
	for d < -box/2 {
		d += box
	}
	return d
}

func wrap(v vec3, box float64) vec3 {
	return vec3{wrap1(v.x, box), wrap1(v.y, box), wrap1(v.z, box)}
}

func wrap1(x, box float64) float64 {
	for x >= box {
		x -= box
	}
	for x < 0 {
		x += box
	}
	return x
}

// clampSpeed bounds atom speed so an approximate run that destabilizes the
// integrator degrades gracefully instead of producing NaN energies.
func clampSpeed(v vec3) vec3 {
	s2 := v.x*v.x + v.y*v.y + v.z*v.z
	if s2 <= maxSpeed*maxSpeed {
		return v
	}
	return v.scale(maxSpeed / math.Sqrt(s2))
}

var _ apps.App = (*App)(nil)
