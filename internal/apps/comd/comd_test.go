package comd

import (
	"math"
	"testing"

	"opprox/internal/approx"
	"opprox/internal/apps"
)

func golden(t *testing.T, p apps.Params) apps.Result {
	t.Helper()
	a := New()
	res, err := a.Run(p, approx.AccurateSchedule(len(a.Blocks())), 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOutputLayout(t *testing.T) {
	p := apps.Params{"cells": 2, "lattice": 1.6, "timesteps": 20}
	res := golden(t, p)
	n := 4 * 2 * 2 * 2
	if len(res.Output) != 5*n {
		t.Fatalf("output length = %d, want %d (3N positions + N PE + N KE)", len(res.Output), 5*n)
	}
	if res.OuterIters != 20 {
		t.Fatalf("iterations = %d, want the input timestep count 20", res.OuterIters)
	}
}

func TestIterationCountIndependentOfLevels(t *testing.T) {
	// The paper: CoMD's outer loop is a classic timestep loop whose trip
	// count depends only on the input.
	a := New()
	p := apps.DefaultParams(a)
	g := golden(t, p)
	for _, cfg := range []approx.Config{{5, 0, 0}, {0, 4, 0}, {0, 0, 3}, {5, 4, 3}} {
		res, err := a.Run(p, approx.UniformSchedule(1, cfg), g.OuterIters)
		if err != nil {
			t.Fatal(err)
		}
		if res.OuterIters != g.OuterIters {
			t.Fatalf("cfg %v changed iterations: %d != %d", cfg, res.OuterIters, g.OuterIters)
		}
	}
}

func TestEnergiesFinite(t *testing.T) {
	res := golden(t, apps.DefaultParams(New()))
	for i, v := range res.Output {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("output[%d] = %g", i, v)
		}
	}
}

func TestKineticEnergyPositive(t *testing.T) {
	res := golden(t, apps.DefaultParams(New()))
	n := len(res.Output) / 5
	ke := res.Output[4*n:]
	total := 0.0
	for _, v := range ke {
		if v < 0 {
			t.Fatalf("negative kinetic energy %g", v)
		}
		total += v
	}
	if total <= 0 {
		t.Fatal("system has no kinetic energy")
	}
}

func TestTimestepsScaleWork(t *testing.T) {
	short := golden(t, apps.Params{"cells": 2, "lattice": 1.6, "timesteps": 20})
	long := golden(t, apps.Params{"cells": 2, "lattice": 1.6, "timesteps": 40})
	if long.Work <= short.Work {
		t.Fatalf("doubling timesteps did not increase work: %d vs %d", long.Work, short.Work)
	}
}

func TestInvalidParams(t *testing.T) {
	a := New()
	if _, err := a.Run(apps.Params{"cells": 0, "lattice": 1.6, "timesteps": 20}, approx.AccurateSchedule(3), 0); err == nil {
		t.Fatal("want error for zero cells")
	}
	if _, err := a.Run(apps.Params{"cells": 2, "lattice": -1, "timesteps": 20}, approx.AccurateSchedule(3), 0); err == nil {
		t.Fatal("want error for negative lattice parameter")
	}
}

func TestMinImage(t *testing.T) {
	if got := minImage(4.5, 5); math.Abs(got+0.5) > 1e-12 {
		t.Fatalf("minImage(4.5, 5) = %g, want -0.5", got)
	}
	if got := minImage(-4.5, 5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("minImage(-4.5, 5) = %g, want 0.5", got)
	}
	if got := minImage(1, 5); got != 1 {
		t.Fatalf("minImage(1, 5) = %g, want 1", got)
	}
}

func TestWrapStaysInBox(t *testing.T) {
	v := wrap(vec3{-0.1, 5.2, 2.5}, 5)
	for _, c := range []float64{v.x, v.y, v.z} {
		if c < 0 || c >= 5 {
			t.Fatalf("wrapped coordinate %g outside [0,5)", c)
		}
	}
}

func TestClampSpeed(t *testing.T) {
	v := clampSpeed(vec3{1000, 0, 0})
	s := math.Sqrt(v.x*v.x + v.y*v.y + v.z*v.z)
	if s > maxSpeed*1.0001 {
		t.Fatalf("speed %g exceeds clamp %g", s, maxSpeed)
	}
	small := clampSpeed(vec3{1, 2, 3})
	if small != (vec3{1, 2, 3}) {
		t.Fatal("clamp altered a slow velocity")
	}
}
