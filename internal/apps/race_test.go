package apps

import (
	"sync"
	"sync/atomic"
	"testing"

	"opprox/internal/approx"
)

// countingApp is a trivially cheap deterministic app that counts how many
// times Run was invoked, so the tests can assert the golden cache's
// singleflight semantics: N concurrent misses for the same parameters
// must collapse into exactly one accurate run.
type countingApp struct {
	runs atomic.Int64
}

func (a *countingApp) Name() string { return "counting" }

func (a *countingApp) Blocks() []approx.Block {
	return []approx.Block{{Name: "blk", Technique: approx.Perforation, MaxLevel: 3}}
}

func (a *countingApp) Params() []ParamSpec {
	return []ParamSpec{{Name: "n", Values: []float64{1, 2}, Default: 1}}
}

func (a *countingApp) Run(p Params, sched approx.Schedule, baselineIters int) (Result, error) {
	a.runs.Add(1)
	n := p.Vector(a.Params())[0]
	lv := sched.LevelsAt(0)[0]
	return Result{
		Output:     []float64{n * 10, float64(lv)},
		Work:       uint64(100 - 10*lv),
		OuterIters: 4,
		CtxSig:     "blk",
	}, nil
}

func (a *countingApp) QoS(exact, approximate []float64) (float64, error) {
	d := approximate[1] - exact[1]
	if d < 0 {
		d = -d
	}
	return d, nil
}

// TestGoldenSingleflight floods the golden cache with concurrent misses
// for the same two parameter sets and asserts each golden ran exactly
// once and every caller saw the same cached result.
func TestGoldenSingleflight(t *testing.T) {
	app := &countingApp{}
	r := NewRunner(app)
	params := []Params{{"n": 1}, {"n": 2}}

	const goroutines = 32
	goldens := make([]*Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := r.Golden(params[g%len(params)])
			if err != nil {
				t.Error(err)
				return
			}
			goldens[g] = res
		}(g)
	}
	wg.Wait()
	if got := app.runs.Load(); got != int64(len(params)) {
		t.Fatalf("golden ran %d times for %d parameter sets — singleflight failed", got, len(params))
	}
	for g := 2; g < goroutines; g++ {
		if goldens[g] != goldens[g%len(params)] {
			t.Fatalf("goroutine %d saw a different golden pointer", g)
		}
	}
}

// TestEvaluateConcurrent runs Evaluate from many goroutines across
// overlapping schedules and inputs; every goroutine must score against
// the same golden and produce identical Evals for identical work. Run
// under `go test -race ./...` this is the Runner's race regression test.
func TestEvaluateConcurrent(t *testing.T) {
	app := &countingApp{}
	r := NewRunner(app)
	blocks := app.Blocks()
	p := Params{"n": 1}

	type key struct{ level int }
	var mu sync.Mutex
	seen := map[key]*Eval{}

	const goroutines = 24
	const itersPer = 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < itersPer; i++ {
				lv := (g + i) % (blocks[0].MaxLevel + 1)
				cfg := approx.Config{lv}
				ev, err := r.Evaluate(p, approx.UniformSchedule(1, cfg))
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if prev, ok := seen[key{lv}]; ok {
					if prev.Speedup != ev.Speedup || prev.Degradation != ev.Degradation {
						t.Errorf("level %d: eval diverged across goroutines: %+v vs %+v", lv, prev, ev)
					}
				} else {
					seen[key{lv}] = ev
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	// One golden for the single parameter set, plus one approximate run
	// per Evaluate call.
	want := int64(1 + goroutines*itersPer)
	if got := app.runs.Load(); got != want {
		t.Fatalf("app ran %d times, want %d (exactly one golden)", got, want)
	}
}

// TestGoldenCachesErrors verifies a failing golden run is cached like a
// successful one: deterministic apps fail identically every time, so
// retrying would only burn cycles.
func TestGoldenCachesErrors(t *testing.T) {
	app := &failingApp{}
	r := NewRunner(app)
	p := Params{"n": 1}
	if _, err := r.Golden(p); err == nil {
		t.Fatal("want error")
	}
	if _, err := r.Golden(p); err == nil {
		t.Fatal("want cached error")
	}
	if got := app.runs.Load(); got != 1 {
		t.Fatalf("failing golden ran %d times, want 1", got)
	}
}

type failingApp struct{ countingApp }

func (a *failingApp) Run(Params, approx.Schedule, int) (Result, error) {
	a.runs.Add(1)
	return Result{}, errTest
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "boom" }
