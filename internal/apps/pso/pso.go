// Package pso implements the particle-swarm-optimization benchmark
// (paper §4.1): a population-based stochastic optimizer for continuous
// objective functions whose main computation sits inside an outer
// convergence loop. The loop iterates until the global best solution
// stops improving, so — like the paper observes — the outer-loop
// iteration count depends on the internal approximation levels:
// perforating fitness evaluations early can stall apparent progress and
// terminate the search prematurely (big speedup, big error), while the
// same approximation near convergence changes almost nothing.
//
// Approximable blocks (paper Table 1: loop perforation, memoization):
//
//	fitness  — loop perforation over particles: skipped particles keep a
//	           stale fitness and cannot improve their personal best.
//	velocity — memoization: a particle's velocity is recomputed only every
//	           level+1 iterations and reused in between.
//	position — loop perforation over particles: skipped particles do not
//	           move this iteration.
package pso

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/qos"
	"opprox/internal/trace"
)

// Block indices in the order reported by Blocks.
const (
	BlockFitness = iota
	BlockVelocity
	BlockPosition
)

// Algorithm constants (standard constricted PSO).
const (
	inertia   = 0.72
	cognitive = 1.49
	social    = 1.49
	bound     = 5.12 // Rastrigin domain half-width

	maxIters    = 500
	patience    = 30   // stop after this many non-improving iterations
	improveEps  = 1e-4 // relative improvement threshold
	warmupIters = 30   // convergence checking starts after warm-up
)

// Work-unit costs per inner operation.
const (
	costFitness  = 10
	costVelocity = 6
	costPosition = 2
	costRest     = 18
)

// App is the PSO benchmark. The zero value is not usable; call New.
type App struct{}

// New returns the PSO benchmark application.
func New() *App { return &App{} }

// Name implements apps.App.
func (*App) Name() string { return "pso" }

// Blocks implements apps.App.
func (*App) Blocks() []approx.Block {
	return []approx.Block{
		{Name: "fitness", Technique: approx.Perforation, MaxLevel: 5},
		{Name: "velocity", Technique: approx.Memoization, MaxLevel: 5},
		{Name: "position", Technique: approx.Perforation, MaxLevel: 3},
	}
}

// Params implements apps.App. The paper's PSO inputs are swarm size and
// dimension.
func (*App) Params() []apps.ParamSpec {
	return []apps.ParamSpec{
		{Name: "swarm", Values: []float64{8, 16, 24}, Default: 16},
		{Name: "dim", Values: []float64{2, 4, 6}, Default: 4},
	}
}

// QoS implements apps.App: the average difference of the best fitness
// values calculated for each particle in the swarm (paper §4.1). Because
// an exponentially converging optimizer spreads fitness values across
// many orders of magnitude, the distortion is computed on log10(1+f) —
// "how many digits of convergence were lost", averaged over the swarm.
func (*App) QoS(exact, approximate []float64) (float64, error) {
	if len(exact) != len(approximate) {
		return 0, qos.ErrLengthMismatch
	}
	if len(exact) == 0 {
		return 0, qos.ErrEmptyOutput
	}
	sum := 0.0
	for i, v := range exact {
		le := math.Log10(1 + math.Max(v, 0))
		la := math.Log10(1 + math.Max(approximate[i], 0))
		sum += math.Abs(la - le)
	}
	// logRange is the dynamic range of the search: how many decades a
	// swarm descends from random initialization to convergence. The
	// degradation is the fraction of that progress lost, in percent.
	return qosGain * 100 * sum / float64(len(exact)) / logRange, nil
}

// logRange is log10 of the typical fitness at random initialization — the
// denominator that turns "decades of convergence lost" into a percentage.
const logRange = 4.0

// qosGain calibrates the metric to the paper's PSO dynamic range.
const qosGain = 4.0

// rosenbrock is the objective: a curved narrow valley with a single global
// minimum of 0 at (1,...,1). The unique attractor makes the benchmark's
// QoS graded — approximation slows or stalls progress down the valley
// rather than scattering runs across unrelated local minima.
func rosenbrock(x []float64) float64 {
	s := 0.0
	for i := 0; i+1 < len(x); i++ {
		a := x[i+1] - x[i]*x[i]
		b := 1 - x[i]
		s += 100*a*a + b*b
	}
	return s
}

// Run implements apps.App.
func (a *App) Run(p apps.Params, sched approx.Schedule, baselineIters int) (apps.Result, error) {
	if err := sched.Validate(a.Blocks()); err != nil {
		return apps.Result{}, err
	}
	swarm := int(p.Vector(a.Params())[0])
	dim := int(p.Vector(a.Params())[1])
	if swarm < 2 || dim < 1 {
		return apps.Result{}, fmt.Errorf("pso: invalid parameters swarm=%d dim=%d", swarm, dim)
	}
	rng := rand.New(rand.NewSource(apps.Seed(a.Name(), p)))

	pos := make([][]float64, swarm)
	vel := make([][]float64, swarm)
	cachedVel := make([][]float64, swarm)
	fit := make([]float64, swarm)
	pbest := make([][]float64, swarm)
	pbestFit := make([]float64, swarm)
	var gbest []float64
	gbestFit := math.Inf(1)
	for i := 0; i < swarm; i++ {
		pos[i] = make([]float64, dim)
		vel[i] = make([]float64, dim)
		cachedVel[i] = make([]float64, dim)
		for d := 0; d < dim; d++ {
			pos[i][d] = rng.Float64()*2*bound - bound
			vel[i][d] = (rng.Float64()*2 - 1) * bound / 4
		}
		fit[i] = rosenbrock(pos[i])
		pbest[i] = append([]float64(nil), pos[i]...)
		pbestFit[i] = fit[i]
		if fit[i] < gbestFit {
			gbestFit = fit[i]
			gbest = append([]float64(nil), pos[i]...)
		}
	}

	var rec trace.Recorder
	stale := 0
	for iter := 0; iter < maxIters; iter++ {
		rec.BeginIteration()
		phase := approx.PhaseOf(iter, baselineIters, sched.Phases)
		levels := sched.LevelsAt(phase)

		// AB: velocity update (memoization across iterations, staggered by
		// particle index so the whole swarm never coasts simultaneously).
		velPeriod := levels[BlockVelocity] + 1
		computedVel := 0
		for i := 0; i < swarm; i++ {
			if (iter+i)%velPeriod == 0 {
				for d := 0; d < dim; d++ {
					r1, r2 := rng.Float64(), rng.Float64()
					v := inertia*vel[i][d] +
						cognitive*r1*(pbest[i][d]-pos[i][d]) +
						social*r2*(gbest[d]-pos[i][d])
					if v > bound/2 {
						v = bound / 2
					} else if v < -bound/2 {
						v = -bound / 2
					}
					vel[i][d] = v
					cachedVel[i][d] = v
				}
				computedVel++
			} else {
				copy(vel[i], cachedVel[i]) // reuse cached velocity
			}
		}
		rec.Call("velocity", uint64(computedVel*dim*costVelocity))

		// AB: position update (rotating perforation over particles).
		moved := approx.PerforateRotating(swarm, levels[BlockPosition], iter, func(i int) {
			for d := 0; d < dim; d++ {
				pos[i][d] += vel[i][d]
				if pos[i][d] > bound {
					pos[i][d] = bound
				} else if pos[i][d] < -bound {
					pos[i][d] = -bound
				}
			}
		})
		rec.Call("position", uint64(moved*dim*costPosition))

		// AB: fitness evaluation (rotating perforation over particles).
		// Skipped particles keep a stale fitness until their next turn.
		evaluated := approx.PerforateRotating(swarm, levels[BlockFitness], iter, func(i int) {
			fit[i] = rosenbrock(pos[i])
			if fit[i] < pbestFit[i] {
				pbestFit[i] = fit[i]
				copy(pbest[i], pos[i])
			}
		})
		rec.Call("fitness", uint64(evaluated*dim*costFitness))

		// Convergence bookkeeping (exact, outside the ABs).
		improved := false
		for i := 0; i < swarm; i++ {
			if pbestFit[i] < gbestFit*(1-improveEps) {
				improved = true
			}
			if pbestFit[i] < gbestFit {
				gbestFit = pbestFit[i]
				copy(gbest, pbest[i])
			}
		}
		// Convergence bookkeeping, topology maintenance and logging:
		// exact work every iteration.
		rec.Overhead(uint64(swarm * dim * costRest))
		if improved {
			stale = 0
		} else {
			stale++
		}
		if iter >= warmupIters && stale >= patience {
			break
		}
	}

	// Output: the per-particle best fitness values, in sorted order.
	// Sorting reports the swarm's fitness distribution rather than an
	// arbitrary particle labelling, so the QoS metric compares like with
	// like even when approximation reshuffles which particle found what.
	out := make([]float64, swarm)
	copy(out, pbestFit)
	sort.Float64s(out)
	return apps.Result{
		Output:     out,
		Work:       rec.TotalWork(),
		OuterIters: rec.Iterations(),
		CtxSig:     rec.ContextSignature(),
	}, nil
}

var _ apps.App = (*App)(nil)
