package pso

import (
	"math"
	"sort"
	"testing"

	"opprox/internal/approx"
	"opprox/internal/apps"
)

func golden(t *testing.T, p apps.Params) apps.Result {
	t.Helper()
	a := New()
	res, err := a.Run(p, approx.AccurateSchedule(len(a.Blocks())), 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRosenbrock(t *testing.T) {
	if got := rosenbrock([]float64{1, 1, 1}); got != 0 {
		t.Fatalf("rosenbrock at optimum = %g, want 0", got)
	}
	if got := rosenbrock([]float64{0, 0}); got != 1 {
		t.Fatalf("rosenbrock(0,0) = %g, want 1", got)
	}
	if rosenbrock([]float64{3, -2}) <= 0 {
		t.Fatal("rosenbrock should be positive away from the optimum")
	}
}

func TestConvergesTowardOptimum(t *testing.T) {
	p := apps.DefaultParams(New())
	res := golden(t, p)
	// Output is sorted per-particle best fitness; the best particle should
	// get well below the typical random-initialization fitness (~1e4).
	best := res.Output[0]
	if best > 100 {
		t.Fatalf("best fitness %g after convergence, want < 100", best)
	}
}

func TestOutputSorted(t *testing.T) {
	res := golden(t, apps.DefaultParams(New()))
	if !sort.Float64sAreSorted(res.Output) {
		t.Fatal("output must be the sorted fitness distribution")
	}
	if len(res.Output) != 16 {
		t.Fatalf("output length = %d, want swarm size 16", len(res.Output))
	}
}

func TestQoSLogScale(t *testing.T) {
	a := New()
	exact := []float64{0.001, 0.01}
	// One decade of convergence lost on each particle → 2 decades / 2
	// particles / logRange decades → 100/logRange percent.
	approxOut := []float64{0.01 * 10, 0.1 * 10}
	deg, err := a.QoS(exact, approxOut)
	if err != nil {
		t.Fatal(err)
	}
	if deg <= 0 || math.IsNaN(deg) {
		t.Fatalf("deg = %g", deg)
	}
	same, err := a.QoS(exact, exact)
	if err != nil || same != 0 {
		t.Fatalf("identical outputs deg = %g err = %v", same, err)
	}
	// Negative fitness values are clamped, not NaN.
	if _, err := a.QoS([]float64{-1}, []float64{-2}); err != nil {
		t.Fatalf("negative fitness: %v", err)
	}
}

func TestApproximationCanTerminateEarly(t *testing.T) {
	// Aggressive velocity memoization stalls improvement and triggers the
	// convergence exit — the iteration-count dependence the paper
	// highlights for convergence loops.
	a := New()
	p := apps.DefaultParams(a)
	g := golden(t, p)
	res, err := a.Run(p, approx.UniformSchedule(1, approx.Config{0, 5, 0}), g.OuterIters)
	if err != nil {
		t.Fatal(err)
	}
	if res.OuterIters >= g.OuterIters {
		t.Fatalf("aggressive memoization did not shorten the run: %d >= %d", res.OuterIters, g.OuterIters)
	}
}

func TestSwarmSizeScalesOutput(t *testing.T) {
	res := golden(t, apps.Params{"swarm": 8, "dim": 2})
	if len(res.Output) != 8 {
		t.Fatalf("output length = %d, want 8", len(res.Output))
	}
}

func TestInvalidParams(t *testing.T) {
	a := New()
	if _, err := a.Run(apps.Params{"swarm": 1, "dim": 2}, approx.AccurateSchedule(3), 0); err == nil {
		t.Fatal("want error for swarm of 1")
	}
	if _, err := a.Run(apps.Params{"swarm": 8, "dim": 0}, approx.AccurateSchedule(3), 0); err == nil {
		t.Fatal("want error for zero dimensions")
	}
}

func TestLatePhaseGentler(t *testing.T) {
	a := New()
	runner := apps.NewRunner(a)
	p := apps.DefaultParams(a)
	cfg := approx.Config{5, 5, 3}
	early, err := runner.Evaluate(p, approx.SinglePhaseSchedule(4, 0, cfg))
	if err != nil {
		t.Fatal(err)
	}
	late, err := runner.Evaluate(p, approx.SinglePhaseSchedule(4, 3, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if late.Degradation >= early.Degradation {
		t.Fatalf("late (%.2f%%) not gentler than early (%.2f%%)", late.Degradation, early.Degradation)
	}
	if late.Speedup >= early.Speedup {
		t.Fatalf("PSO speedup should drop in later phases (paper Fig. 10b): late %.2f >= early %.2f",
			late.Speedup, early.Speedup)
	}
}
