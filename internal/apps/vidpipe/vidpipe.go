// Package vidpipe implements the video-processing benchmark modeled on
// the paper's FFmpeg pipeline (§4.1): a stream of synthetic frames flows
// through a configurable chain of filters and is then delta-encoded with
// dead-zone quantization. The outer loop enumerates frames, so its
// iteration count depends only on the input parameters (fps × duration),
// never on the approximation levels — the classic streaming-analytics
// loop. Because each encoded frame stores only its change against the
// previous reconstruction and small corrections are dropped by the
// quantizer dead zone, an error introduced in an early frame persists
// through the rest of the stream: exactly the inter-frame error
// propagation the paper uses to explain FFmpeg's phase sensitivity
// (§5.1.1).
//
// The filter chain order is an input parameter. Running edge detection
// before or after the deflate (erosion) filter changes the output
// drastically (paper Fig. 7) and changes the control-flow signature, which
// is what OPPROX's decision tree learns to predict (§3.4).
//
// Approximable blocks (paper Table 1: loop perforation, memoization):
//
//	edge    — rate-parameterized loop perforation over rows of the
//	          edge-detection convolution; skipped rows reuse the previous
//	          frame's filtered row.
//	deflate — memoization over frames: the filter output is recomputed
//	          every level+1-th frame and the cached output stands in for
//	          the frames in between.
//	encode  — rate-parameterized loop perforation over rows of the delta
//	          encoder; skipped rows reuse the previous reconstruction's row
//	          unchanged.
package vidpipe

import (
	"fmt"
	"math"
	"math/rand"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/qos"
	"opprox/internal/trace"
)

// Block indices in the order reported by Blocks.
const (
	BlockEdge = iota
	BlockDeflate
	BlockEncode
)

// Frame geometry: small enough to keep training runs fast, large enough
// for the filters to be meaningful.
const (
	frameW = 48
	frameH = 32

	// PSNRCap is the PSNR (dB) treated as "no degradation" when the metric
	// is converted to the optimizer's uniform degradation scale.
	PSNRCap = 50.0

	costConv   = 9 // 3×3 convolution per pixel
	costErode  = 5
	costEncode = 3
	costRest   = 17
)

// App is the video-pipeline benchmark.
type App struct{}

// New returns the vidpipe benchmark application.
func New() *App { return &App{} }

// Name implements apps.App.
func (*App) Name() string { return "vidpipe" }

// Blocks implements apps.App.
func (*App) Blocks() []approx.Block {
	return []approx.Block{
		{Name: "edge", Technique: approx.Perforation, MaxLevel: 5},
		{Name: "deflate", Technique: approx.Memoization, MaxLevel: 5},
		{Name: "encode", Technique: approx.Perforation, MaxLevel: 3},
	}
}

// Params implements apps.App. The paper's FFmpeg inputs are frames per
// second, video duration, bitrate, and the filter chain.
func (*App) Params() []apps.ParamSpec {
	return []apps.ParamSpec{
		{Name: "fps", Values: []float64{12, 24}, Default: 24},
		{Name: "duration", Values: []float64{2, 4}, Default: 3},
		{Name: "bitrate", Values: []float64{2, 6}, Default: 4},
		// filterorder 0: deflate → edge; 1: edge → deflate.
		{Name: "filterorder", Values: []float64{0, 1}, Default: 0},
	}
}

// QoS implements apps.App. The natural FFmpeg metric is PSNR (higher is
// better); it is converted onto the uniform degradation scale as
// PSNRCap - psnr so the optimizer can treat every app identically.
func (*App) QoS(exact, approximate []float64) (float64, error) {
	p, err := qos.PSNR(exact, approximate, 255)
	if err != nil {
		return 0, err
	}
	return qos.PSNRToDegradation(p, PSNRCap), nil
}

// PSNR reports the raw peak signal-to-noise ratio between two outputs —
// the metric the paper's FFmpeg figures use directly.
func (*App) PSNR(exact, approximate []float64) (float64, error) {
	return qos.PSNR(exact, approximate, 255)
}

type frame []float64 // frameH*frameW, row-major, 0..255

func at(f frame, y, x int) float64 { return f[y*frameW+x] }

// synthFrame renders frame t of a clip whose motion settles over time: a
// bright blob swings across a static textured background with an amplitude
// that decays through the clip (an opening pan that comes to rest — the
// common structure of surveillance and interview footage). Early frames
// carry most of the motion, so they are both the hardest to encode and the
// most damaged by temporal-reuse approximation; late frames are nearly
// static.
func synthFrame(t, frames int, texture []float64) frame {
	f := make(frame, frameH*frameW)
	decay := math.Exp(-7 * float64(t) / float64(frames))
	cx := float64(frameW)/2 + float64(frameW)/2.2*decay*math.Sin(float64(t)*0.9)
	cy := float64(frameH)/2 + float64(frameH)/2.5*decay*math.Cos(float64(t)*0.7)
	for y := 0; y < frameH; y++ {
		for x := 0; x < frameW; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			blob := 180 * math.Exp(-(dx*dx+dy*dy)/30)
			grad := 40 * float64(x) / frameW
			v := blob + grad + texture[y*frameW+x]
			if v > 255 {
				v = 255
			}
			f[y*frameW+x] = v
		}
	}
	return f
}

// edgeFilter runs a 3×3 Sobel-magnitude edge detector with row
// perforation; a skipped row reuses the previous frame's filtered row
// (temporal reuse — consecutive frames are similar, so the error is small
// but systematic), or passes through unfiltered on the first frame.
func edgeFilter(src, prevOut frame, level, offset int, rec *trace.Recorder) frame {
	dst := make(frame, len(src))
	if prevOut != nil {
		copy(dst, prevOut)
	} else {
		copy(dst, src)
	}
	// Nonzero levels start at a 2/7 skip rate and climb to 6/7: the first
	// knob notch is a real approximation, not a rounding error.
	if level > 0 {
		level++
	}
	rows := approx.PerforateFraction(frameH, level, 6, offset, func(y int) {
		if y == 0 || y == frameH-1 {
			return
		}
		for x := 1; x < frameW-1; x++ {
			gx := at(src, y-1, x+1) + 2*at(src, y, x+1) + at(src, y+1, x+1) -
				at(src, y-1, x-1) - 2*at(src, y, x-1) - at(src, y+1, x-1)
			gy := at(src, y+1, x-1) + 2*at(src, y+1, x) + at(src, y+1, x+1) -
				at(src, y-1, x-1) - 2*at(src, y-1, x) - at(src, y-1, x+1)
			v := math.Sqrt(gx*gx+gy*gy) / 4
			if v > 255 {
				v = 255
			}
			dst[y*frameW+x] = v
		}
	})
	rec.Call("edge", uint64(rows*frameW*costConv))
	return dst
}

// deflateFilter is a 3×1 horizontal erosion (min filter) memoized across
// frames: the filter output is recomputed every level+1 frames and the
// cached previous output stands in for the frames in between — cheap when
// the content is static, wrong when it moves.
func deflateFilter(src, prevOut frame, level, frameIdx int, rec *trace.Recorder) frame {
	period := level + 1
	if level > 0 && frameIdx%period != 0 && prevOut != nil {
		dst := make(frame, len(src))
		copy(dst, prevOut)
		rec.Call("deflate", uint64(frameH*frameW)) // cache copy only
		return dst
	}
	dst := make(frame, len(src))
	for y := 0; y < frameH; y++ {
		for x := 0; x < frameW; x++ {
			v := at(src, y, x)
			if x > 0 && at(src, y, x-1) < v {
				v = at(src, y, x-1)
			}
			if x < frameW-1 && at(src, y, x+1) < v {
				v = at(src, y, x+1)
			}
			dst[y*frameW+x] = v
		}
	}
	rec.Call("deflate", uint64(frameH*frameW*costErode))
	return dst
}

// Run implements apps.App.
func (a *App) Run(p apps.Params, sched approx.Schedule, baselineIters int) (apps.Result, error) {
	if err := sched.Validate(a.Blocks()); err != nil {
		return apps.Result{}, err
	}
	pv := p.Vector(a.Params())
	fps, duration, bitrate := pv[0], pv[1], pv[2]
	edgeFirst := pv[3] >= 0.5
	frames := int(fps * duration)
	if frames < 2 || bitrate <= 0 {
		return apps.Result{}, fmt.Errorf("vidpipe: invalid parameters fps=%g duration=%g bitrate=%g", fps, duration, bitrate)
	}
	rng := rand.New(rand.NewSource(apps.Seed(a.Name(), p)))
	// Static background texture: fixed per input, so frame-to-frame deltas
	// come from motion, not from churning noise.
	texture := make([]float64, frameH*frameW)
	for i := range texture {
		texture[i] = rng.Float64() * 18
	}

	// Quantizer: higher bitrate → finer base step → smaller dead zone.
	qstep := 16.0 / bitrate
	deadzone := qstep * 0.9
	// Rate control: each frame may spend at most coeffBudget nonzero
	// quantized coefficients (that is what "bitrate" buys). A corrupted
	// reference frame makes every subsequent delta large, so later frames
	// exhaust their budget repairing old damage instead of encoding their
	// own content — early-frame errors therefore cost PSNR across the rest
	// of the stream (paper §5.1.1: "any error introduced in the first few
	// frames propagated throughout the remaining frames").
	coeffBudget := int(float64(frameH*frameW) * 0.04 * (bitrate / 4))

	var rec trace.Recorder
	prevRecon := make(frame, frameH*frameW) // reference frame starts black
	var prevEdge, prevDeflate frame
	out := make([]float64, 0, frames*frameH*frameW)
	for t := 0; t < frames; t++ {
		rec.BeginIteration()
		phase := approx.PhaseOf(t, baselineIters, sched.Phases)
		levels := sched.LevelsAt(phase)

		raw := synthFrame(t, frames, texture)

		// Filter chain order is input-dependent (paper Fig. 7 / Fig. 8).
		var filtered frame
		if edgeFirst {
			edged := edgeFilter(raw, prevEdge, levels[BlockEdge], t, &rec)
			prevEdge = edged
			filtered = deflateFilter(edged, prevDeflate, levels[BlockDeflate], t, &rec)
			prevDeflate = filtered
		} else {
			deflated := deflateFilter(raw, prevDeflate, levels[BlockDeflate], t, &rec)
			prevDeflate = deflated
			filtered = edgeFilter(deflated, prevEdge, levels[BlockEdge], t, &rec)
			prevEdge = filtered
		}

		// AB: delta encoder with dead-zone quantization and a hard
		// per-frame coefficient budget (perforation over rows; skipped
		// rows keep the previous reconstruction's content, i.e. their
		// delta is silently dropped). Once the budget is spent, remaining
		// deltas are dropped and must wait for a later frame's budget.
		recon := make(frame, frameH*frameW)
		copy(recon, prevRecon)
		coeffsLeft := coeffBudget
		encLevel := levels[BlockEncode]
		if encLevel > 0 {
			encLevel++
		}
		rows := approx.PerforateFraction(frameH, encLevel, 4, t, func(y int) {
			for x := 0; x < frameW; x++ {
				idx := y*frameW + x
				delta := filtered[idx] - prevRecon[idx]
				var qd float64
				if math.Abs(delta) >= deadzone && coeffsLeft > 0 {
					qd = math.Round(delta/qstep) * qstep
					coeffsLeft--
				}
				recon[idx] = prevRecon[idx] + qd
			}
		})
		rec.Call("encode", uint64(rows*frameW*costEncode))
		// Demux, decode, color conversion, and mux: exact per-frame work
		// the pipeline always pays.
		rec.Overhead(uint64(frameH * frameW * costRest))

		prevRecon = recon
		out = append(out, recon...)
	}
	return apps.Result{
		Output:     out,
		Work:       rec.TotalWork(),
		OuterIters: rec.Iterations(),
		CtxSig:     rec.ContextSignature(),
	}, nil
}

var _ apps.App = (*App)(nil)
