package vidpipe

import (
	"math"
	"testing"

	"opprox/internal/approx"
	"opprox/internal/apps"
)

func golden(t *testing.T, p apps.Params) apps.Result {
	t.Helper()
	a := New()
	res, err := a.Run(p, approx.AccurateSchedule(len(a.Blocks())), 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFrameCountFromParams(t *testing.T) {
	p := apps.Params{"fps": 12, "duration": 2, "bitrate": 4, "filterorder": 0}
	res := golden(t, p)
	if res.OuterIters != 24 {
		t.Fatalf("iterations = %d, want fps*duration = 24", res.OuterIters)
	}
	if len(res.Output) != 24*frameH*frameW {
		t.Fatalf("output length = %d, want %d", len(res.Output), 24*frameH*frameW)
	}
}

func TestFilterOrderChangesControlFlowAndOutput(t *testing.T) {
	// Paper Fig. 7: swapping deflate and edge detection drastically
	// changes the result; Fig. 8: the AB sequence is input-dependent.
	base := apps.Params{"fps": 12, "duration": 2, "bitrate": 4}
	p0 := base.Clone()
	p0["filterorder"] = 0
	p1 := base.Clone()
	p1["filterorder"] = 1
	r0 := golden(t, p0)
	r1 := golden(t, p1)
	if r0.CtxSig == r1.CtxSig {
		t.Fatalf("filter order did not change the control-flow signature: %q", r0.CtxSig)
	}
	same := true
	for i := range r0.Output {
		if r0.Output[i] != r1.Output[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("filter order did not change the output")
	}
}

func TestPixelRangeValid(t *testing.T) {
	res := golden(t, apps.DefaultParams(New()))
	for i, v := range res.Output {
		if math.IsNaN(v) || v < -300 || v > 600 {
			t.Fatalf("output[%d] = %g outside plausible pixel range", i, v)
		}
	}
}

func TestPSNRMethod(t *testing.T) {
	a := New()
	res := golden(t, apps.DefaultParams(a))
	p, err := a.PSNR(res.Output, res.Output)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p, 1) {
		t.Fatalf("self-PSNR = %g, want +Inf", p)
	}
}

func TestQoSIsCapMinusPSNR(t *testing.T) {
	a := New()
	g := golden(t, apps.DefaultParams(a))
	approxRun, err := a.Run(apps.DefaultParams(a), approx.UniformSchedule(1, approx.Config{3, 0, 0}), g.OuterIters)
	if err != nil {
		t.Fatal(err)
	}
	psnr, err := a.PSNR(g.Output, approxRun.Output)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := a.QoS(g.Output, approxRun.Output)
	if err != nil {
		t.Fatal(err)
	}
	if want := PSNRCap - psnr; math.Abs(deg-want) > 1e-9 && !(psnr >= PSNRCap && deg == 0) {
		t.Fatalf("deg = %g, want %g", deg, want)
	}
}

func TestLatePhaseNearlyFree(t *testing.T) {
	// The clip settles, so even aggressive approximation of the final
	// quarter barely moves PSNR (paper §5.1.1 behavior).
	a := New()
	runner := apps.NewRunner(a)
	p := apps.DefaultParams(a)
	cfg := approx.Config{5, 5, 3}
	early, err := runner.Evaluate(p, approx.SinglePhaseSchedule(4, 0, cfg))
	if err != nil {
		t.Fatal(err)
	}
	late, err := runner.Evaluate(p, approx.SinglePhaseSchedule(4, 3, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if late.Degradation >= early.Degradation/2 {
		t.Fatalf("late phase (%.2f) not far gentler than early (%.2f)",
			late.Degradation, early.Degradation)
	}
}

func TestInvalidParams(t *testing.T) {
	a := New()
	if _, err := a.Run(apps.Params{"fps": 0, "duration": 2, "bitrate": 4}, approx.AccurateSchedule(3), 0); err == nil {
		t.Fatal("want error for zero fps")
	}
	if _, err := a.Run(apps.Params{"fps": 12, "duration": 2, "bitrate": 0}, approx.AccurateSchedule(3), 0); err == nil {
		t.Fatal("want error for zero bitrate")
	}
}

func TestBitrateControlsQuality(t *testing.T) {
	// Lower bitrate → coarser quantizer → golden reconstruction farther
	// from an infinite-bitrate reference. Compare the reconstructions of
	// two bitrates against the same filtered source by proxy: the higher
	// bitrate must produce at least as much encoder work (more nonzero
	// coefficients surviving).
	lo := golden(t, apps.Params{"fps": 12, "duration": 2, "bitrate": 2, "filterorder": 0})
	hi := golden(t, apps.Params{"fps": 12, "duration": 2, "bitrate": 6, "filterorder": 0})
	if lo.Work != hi.Work {
		// Work is identical by construction (same rows processed) — this
		// guards the invariant.
		t.Fatalf("bitrate changed abstract work: %d vs %d", lo.Work, hi.Work)
	}
	diff := 0.0
	for i := range lo.Output {
		diff += math.Abs(lo.Output[i] - hi.Output[i])
	}
	if diff == 0 {
		t.Fatal("bitrate has no effect on reconstruction")
	}
}
