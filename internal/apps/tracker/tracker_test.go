package tracker

import (
	"math"
	"math/rand"
	"testing"

	"opprox/internal/approx"
	"opprox/internal/apps"
)

func golden(t *testing.T, p apps.Params) apps.Result {
	t.Helper()
	a := New()
	res, err := a.Run(p, approx.AccurateSchedule(len(a.Blocks())), 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOutputLayout(t *testing.T) {
	p := apps.Params{"layers": 3, "particles": 60, "frames": 5}
	res := golden(t, p)
	if len(res.Output) != 5*numJoints {
		t.Fatalf("output length = %d, want %d", len(res.Output), 5*numJoints)
	}
	// Iterations = frames × layers plus possible refinement repeats.
	if res.OuterIters < 15 || res.OuterIters > 30 {
		t.Fatalf("iterations = %d, want within [15, 30]", res.OuterIters)
	}
}

func TestTracksTheTruth(t *testing.T) {
	p := apps.DefaultParams(New())
	res := golden(t, p)
	frames := int(p["frames"])
	// The accurate filter should track each frame's pose within a few
	// noise standard deviations, relative to pose magnitude.
	var sumErr, sumMag float64
	for f := 0; f < frames; f++ {
		truth := truePose(f)
		for j := 0; j < numJoints; j++ {
			sumErr += math.Abs(res.Output[f*numJoints+j] - truth[j])
			sumMag += math.Abs(truth[j])
		}
	}
	if rel := sumErr / sumMag; rel > 0.25 {
		t.Fatalf("accurate tracking error %.1f%% of pose magnitude, want < 25%%", rel*100)
	}
}

func TestLayersTuningReducesIterations(t *testing.T) {
	a := New()
	p := apps.DefaultParams(a)
	g := golden(t, p)
	cfg := approx.Config{0, 0, 0, 2} // max layers tuning
	res, err := a.Run(p, approx.UniformSchedule(1, cfg), g.OuterIters)
	if err != nil {
		t.Fatal(err)
	}
	if res.OuterIters >= g.OuterIters {
		t.Fatalf("layers tuning did not reduce iterations: %d >= %d", res.OuterIters, g.OuterIters)
	}
}

func TestMinParticlesTuningReducesRepeats(t *testing.T) {
	a := New()
	p := apps.DefaultParams(a)
	g := golden(t, p)
	cfg := approx.Config{0, 0, 3, 0} // most aggressive min-particles
	res, err := a.Run(p, approx.UniformSchedule(1, cfg), g.OuterIters)
	if err != nil {
		t.Fatal(err)
	}
	if res.OuterIters > g.OuterIters {
		t.Fatalf("lowering min-particles increased iterations: %d > %d", res.OuterIters, g.OuterIters)
	}
}

func TestLikelihoodPerforationCanAddRepeats(t *testing.T) {
	// Degenerate weights from perforated likelihoods can trigger
	// refinement repeats — the paper's observation that with small
	// min-particles the iteration count depends on the ALs.
	a := New()
	p := apps.DefaultParams(a)
	g := golden(t, p)
	res, err := a.Run(p, approx.UniformSchedule(1, approx.Config{5, 0, 0, 0}), g.OuterIters)
	if err != nil {
		t.Fatal(err)
	}
	if res.OuterIters == g.OuterIters {
		t.Logf("iterations unchanged (%d); acceptable but unusual", res.OuterIters)
	}
}

func TestPoseMagnitudesVary(t *testing.T) {
	pose := truePose(3)
	min, max := pose[0], pose[0]
	for _, v := range pose {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	if max < 4*min {
		t.Fatalf("pose components too uniform (min %g, max %g) for the weighted metric to matter", min, max)
	}
}

func TestInvalidParams(t *testing.T) {
	a := New()
	if _, err := a.Run(apps.Params{"layers": 0, "particles": 60, "frames": 5}, approx.AccurateSchedule(4), 0); err == nil {
		t.Fatal("want error for zero layers")
	}
	if _, err := a.Run(apps.Params{"layers": 3, "particles": 2, "frames": 5}, approx.AccurateSchedule(4), 0); err == nil {
		t.Fatal("want error for too few particles")
	}
}

func TestResampleDistribution(t *testing.T) {
	// A particle with all the weight should dominate the resampled set.
	pts := [][]float64{{1}, {2}, {3}, {4}}
	weights := []float64{0, 1, 0, 0}
	rng := newTestRNG()
	out := resample(pts, weights, rng)
	for _, p := range out {
		if p[0] != 2 {
			t.Fatalf("resample leaked a zero-weight particle: %v", p)
		}
	}
	if &out[0][0] == &pts[1][0] {
		t.Fatal("resample must copy particle storage")
	}
}

func TestEarlyPhasesMoreSensitive(t *testing.T) {
	a := New()
	runner := apps.NewRunner(a)
	p := apps.DefaultParams(a)
	cfg := approx.Config{4, 3, 2, 1}
	early, err := runner.Evaluate(p, approx.SinglePhaseSchedule(4, 0, cfg))
	if err != nil {
		t.Fatal(err)
	}
	late, err := runner.Evaluate(p, approx.SinglePhaseSchedule(4, 3, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if late.Degradation >= early.Degradation {
		t.Fatalf("late (%.2f%%) not gentler than early (%.2f%%)", late.Degradation, early.Degradation)
	}
}

// newTestRNG returns a deterministic RNG for resampling tests.
func newTestRNG() *rand.Rand { return rand.New(rand.NewSource(7)) }
