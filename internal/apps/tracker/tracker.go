// Package tracker implements the computer-vision benchmark modeled on
// PARSEC's Bodytrack (paper §4.1): an annealed particle filter tracks an
// articulated pose through a sequence of video frames. The outer loop
// enumerates (frame, annealing-layer) pairs; its iteration count is set by
// the frame count and the number of annealing layers, but — as the paper
// notes — when the min-particles threshold is small, the iteration count
// also starts to depend on the approximation levels, because degenerate
// particle weights trigger refinement repeats.
//
// Approximable blocks (paper Table 1: loop perforation, input tuning):
//
//	likelihood  — loop perforation over particles: skipped particles keep
//	              their previous weight.
//	features    — loop perforation over image rows during feature
//	              extraction: the estimate is rescaled from the sampled
//	              rows, trading noise for work.
//	minparticles — parameter tuning of the min-particles threshold: lower
//	              thresholds accept more degenerate layers without repeats.
//	layers      — parameter tuning of the effective annealing-layer count:
//	              higher levels run fewer layers per frame.
package tracker

import (
	"fmt"
	"math"
	"math/rand"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/qos"
	"opprox/internal/trace"
)

// Block indices in the order reported by Blocks.
const (
	BlockLikelihood = iota
	BlockFeatures
	BlockMinParticles
	BlockLayers
)

const (
	numJoints   = 8
	imageRows   = 24
	baseNoise   = 0.35
	layerBeta   = 1.2
	annealRatio = 0.55
	featureSD   = 0.08
	maxRepeats  = 1 // at most one refinement repeat per (frame, layer)

	costLikelihood = 6
	costFeatureRow = 4
	costResample   = 2
	costRest       = 7
)

// App is the Bodytrack-style benchmark.
type App struct{}

// New returns the tracker benchmark application.
func New() *App { return &App{} }

// Name implements apps.App.
func (*App) Name() string { return "tracker" }

// Blocks implements apps.App.
func (*App) Blocks() []approx.Block {
	return []approx.Block{
		{Name: "likelihood", Technique: approx.Perforation, MaxLevel: 5},
		{Name: "features", Technique: approx.Perforation, MaxLevel: 4},
		{Name: "minparticles", Technique: approx.ParamTuning, MaxLevel: 3},
		{Name: "layers", Technique: approx.ParamTuning, MaxLevel: 2},
	}
}

// Params implements apps.App. The paper's Bodytrack inputs are the number
// of annealing layers, particles, and frames.
func (*App) Params() []apps.ParamSpec {
	return []apps.ParamSpec{
		{Name: "layers", Values: []float64{3, 5}, Default: 4},
		{Name: "particles", Values: []float64{60, 120}, Default: 100},
		{Name: "frames", Values: []float64{8, 16}, Default: 12},
	}
}

// qosGain calibrates the pose-distortion metric to the paper's Bodytrack
// dynamic range.
const qosGain = 2.0

// QoS implements apps.App (see package comment).
func (*App) QoS(exact, approximate []float64) (float64, error) {
	d, err := qos.WeightedVectorDistortion(exact, approximate)
	return qosGain * d, err
}

// truePose returns the ground-truth articulated pose at frame t: each
// joint follows a smooth periodic trajectory with a distinct amplitude, so
// pose components have very different magnitudes (the QoS metric's
// weighting matters).
func truePose(t int) []float64 {
	pose := make([]float64, numJoints)
	for j := 0; j < numJoints; j++ {
		amp := 0.5 + 1.5*float64(j)      // small fingers → large torso
		freq := 0.15 + 0.04*float64(j%3) // distinct joint dynamics
		phase := 0.7 * float64(j)        //
		pose[j] = amp * (1.2 + math.Sin(freq*float64(t)+phase))
	}
	return pose
}

// Run implements apps.App.
func (a *App) Run(p apps.Params, sched approx.Schedule, baselineIters int) (apps.Result, error) {
	if err := sched.Validate(a.Blocks()); err != nil {
		return apps.Result{}, err
	}
	pv := p.Vector(a.Params())
	layersIn := int(pv[0])
	particles := int(pv[1])
	frames := int(pv[2])
	if layersIn < 1 || particles < 4 || frames < 1 {
		return apps.Result{}, fmt.Errorf("tracker: invalid parameters layers=%d particles=%d frames=%d", layersIn, particles, frames)
	}
	seed := apps.Seed(a.Name(), p)
	rng := rand.New(rand.NewSource(seed))

	// Particle state: each particle is a pose hypothesis.
	pts := make([][]float64, particles)
	weights := make([]float64, particles)
	init := truePose(0)
	for i := range pts {
		pts[i] = make([]float64, numJoints)
		for j := range pts[i] {
			pts[i][j] = init[j] + rng.NormFloat64()*baseNoise
		}
		weights[i] = 1 / float64(particles)
	}

	var rec trace.Recorder
	out := make([]float64, 0, frames*numJoints)
	iterIdx := 0
	for f := 0; f < frames; f++ {
		truth := truePose(f)

		// The effective layer count is phase-tunable; sample the level
		// from the phase this frame's first layer lands in.
		firstPhase := approx.PhaseOf(iterIdx, baselineIters, sched.Phases)
		layerLevel := sched.LevelsAt(firstPhase)[BlockLayers]
		layers := int(math.Round(approx.TunedValue(float64(layersIn), math.Max(1, float64(layersIn)/2), layerLevel, a.Blocks()[BlockLayers].MaxLevel)))
		if layers < 1 {
			layers = 1
		}

		for l := 0; l < layers; l++ {
			repeats := 0
		layerLoop:
			rec.BeginIteration()
			phase := approx.PhaseOf(iterIdx, baselineIters, sched.Phases)
			levels := sched.LevelsAt(phase)
			iterIdx++

			// AB: feature extraction (perforation over image rows). Each
			// row contributes an independently noisy partial estimate of
			// the observed pose — the per-row noise is a pure function of
			// (input seed, frame, row, joint), so the synthetic image is
			// identical across runs. Sampling fewer rows loses averaging
			// and yields a noisier feature vector.
			features := make([]float64, numJoints)
			rows := approx.Perforate(imageRows, levels[BlockFeatures], func(y int) {
				for j := 0; j < numJoints; j++ {
					noise := apps.Noise(seed, int64(f), int64(y), int64(j))
					features[j] += truth[j] * (1 + noise*featureSD)
				}
			})
			rec.Call("features", uint64(rows*numJoints*costFeatureRow))
			for j := range features {
				features[j] /= float64(rows)
			}

			// AB: likelihood weighting (perforation over particles). A
			// skipped particle borrows the weight of the most recently
			// evaluated particle — cheap, and increasingly wrong as the
			// stride grows.
			beta := layerBeta * float64(l+1) / float64(layers)
			weighted := approx.Perforate(particles, levels[BlockLikelihood], func(i int) {
				d2 := 0.0
				for j := 0; j < numJoints; j++ {
					d := pts[i][j] - features[j]
					d2 += d * d / (0.05 + features[j]*features[j]*0.01)
				}
				weights[i] = math.Exp(-beta * d2)
			})
			rec.Call("likelihood", uint64(weighted*numJoints*costLikelihood))
			if stride := levels[BlockLikelihood] + 1; stride > 1 {
				for i := 0; i < particles; i++ {
					if i%stride != 0 {
						weights[i] = weights[i-i%stride]
					}
				}
			}

			// Normalize; measure effective sample size.
			sumW := 0.0
			for _, w := range weights {
				sumW += w
			}
			if sumW < 1e-300 {
				for i := range weights {
					weights[i] = 1 / float64(particles)
				}
				sumW = 1
			} else {
				for i := range weights {
					weights[i] /= sumW
				}
			}
			ess := 0.0
			for _, w := range weights {
				ess += w * w
			}
			ess = 1 / ess

			// AB: min-particles (parameter tuning). The accurate threshold
			// demands a healthy particle set; tuning lowers the bar.
			minParticles := approx.TunedValue(float64(particles)/3, 2, levels[BlockMinParticles], a.Blocks()[BlockMinParticles].MaxLevel)

			// Systematic resampling.
			pts = resample(pts, weights, rng)
			for i := range weights {
				weights[i] = 1 / float64(particles)
			}
			rec.Call("minparticles", uint64(particles*costResample))

			// Perturb with geometrically annealed noise: each layer
			// shrinks the search radius by a fixed factor, so dropping a
			// layer directly coarsens the final estimate.
			shrink := baseNoise * math.Pow(annealRatio, float64(l))
			for i := range pts {
				for j := range pts[i] {
					pts[i][j] += rng.NormFloat64() * shrink
				}
			}
			// Image loading, projection math and model bookkeeping: exact
			// work on every (frame, layer) iteration.
			rec.Overhead(uint64(particles * numJoints * costRest))

			// Degenerate layer: repeat once to recover diversity. This is
			// where the iteration count couples to the approximation
			// levels when min-particles is left strict.
			if ess < minParticles && repeats < maxRepeats {
				repeats++
				goto layerLoop
			}
		}

		// Frame estimate: mean pose after the final layer.
		est := make([]float64, numJoints)
		for i := range pts {
			for j := range est {
				est[j] += pts[i][j]
			}
		}
		for j := range est {
			est[j] /= float64(particles)
		}
		out = append(out, est...)
	}

	return apps.Result{
		Output:     out,
		Work:       rec.TotalWork(),
		OuterIters: rec.Iterations(),
		CtxSig:     rec.ContextSignature(),
	}, nil
}

// resample draws a new particle set with systematic resampling.
func resample(pts [][]float64, weights []float64, rng *rand.Rand) [][]float64 {
	n := len(pts)
	out := make([][]float64, n)
	u := rng.Float64() / float64(n)
	cum := 0.0
	k := 0
	for i := 0; i < n; i++ {
		target := u + float64(i)/float64(n)
		for cum+weights[k] < target && k < n-1 {
			cum += weights[k]
			k++
		}
		out[i] = append([]float64(nil), pts[k]...)
	}
	return out
}

var _ apps.App = (*App)(nil)
