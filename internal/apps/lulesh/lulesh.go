// Package lulesh implements the hydrodynamics benchmark modeled on
// LULESH (paper §2): a Lagrangian explicit shock-hydro simulation of a
// Sedov-style blast. A staggered-grid gamma-law gas with artificial
// viscosity is integrated on a 1D Lagrangian mesh; the energy deposited in
// the first element drives a shock through the domain.
//
// The property that makes LULESH the paper's running example is preserved:
// the outer loop advances simulated time with a Courant-limited timestep
// computed *from the evolving solution*, so the total number of outer-loop
// iterations depends on the internal approximation levels (paper Fig. 3 —
// approximation can both shrink and grow the iteration count, sometimes
// slowing the program down). Early-phase approximation corrupts the shock
// while it is strong and self-amplifies; late-phase approximation perturbs
// an almost-settled flow (paper Fig. 4/5).
//
// Approximable blocks (paper §2: loop perforation, loop truncation,
// memoization over the four surviving kernels):
//
//	forces          — staggered loop perforation over nodes: a skipped node
//	                  coasts on the force from its last computed step.
//	positions       — memoization over steps: a node's displacement u·dt is
//	                  recomputed every level+1 steps and reused in between.
//	strain          — loop perforation over elements: perforated elements
//	                  fall back to a cheap isentropic update (density from
//	                  the mesh, pressure along the isentrope, stale energy)
//	                  instead of the full pdV + EOS + viscosity update.
//	timeconstraints — loop truncation over elements: the Courant scan
//	                  inspects only a prefix of the mesh, so the limiting
//	                  element can be missed and the timestep overshoots.
package lulesh

import (
	"fmt"
	"math"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/qos"
	"opprox/internal/trace"
)

// Block indices in the order reported by Blocks.
const (
	BlockForces = iota
	BlockPositions
	BlockStrain
	BlockTimeConstraints
)

const (
	domainLen = 1.0
	tEnd      = 1.0
	blastE    = 1.0 // total deposited energy
	cflFactor = 0.35
	dtMax     = 2.5e-3
	dtMin     = 1e-7
	dtGrowth  = 1.08
	maxSteps  = 2500
	damping   = 0.99
	qLinear   = 0.5 // linear artificial-viscosity coefficient
	qQuad     = 1.2 // quadratic artificial-viscosity coefficient
	eFloor    = 1e-12
	eCap      = 1e3
	uMax      = 60.0

	costForce       = 5
	costPosFull     = 6
	costPosReuse    = 2
	costStrain      = 9
	costStrainCheap = 4
	costCourant     = 4
	costRest        = 26
)

// App is the LULESH benchmark.
type App struct{}

// New returns the LULESH benchmark application.
func New() *App { return &App{} }

// Name implements apps.App.
func (*App) Name() string { return "lulesh" }

// Blocks implements apps.App. The four kernels match the paper's four
// surviving approximable blocks for LULESH.
func (*App) Blocks() []approx.Block {
	return []approx.Block{
		{Name: "forces", Technique: approx.Perforation, MaxLevel: 5},
		{Name: "positions", Technique: approx.Memoization, MaxLevel: 5},
		{Name: "strain", Technique: approx.Perforation, MaxLevel: 5},
		{Name: "timeconstraints", Technique: approx.Truncation, MaxLevel: 5},
	}
}

// Params implements apps.App. The paper's LULESH inputs are the length of
// the cube mesh and the number of regions.
func (*App) Params() []apps.ParamSpec {
	return []apps.ParamSpec{
		{Name: "mesh", Values: []float64{32, 48, 64}, Default: 48},
		{Name: "regions", Values: []float64{2, 4}, Default: 2},
	}
}

// qosGain calibrates the energy-distortion metric: the blast concentrates
// the interesting energy in a thin shell around the shock front, so a
// mean-relative distortion understates localized damage. The gain restores
// the dynamic range the paper's 3D code exhibits (errors of a few percent
// for mild settings, tens of percent for aggressive ones).
const qosGain = 4

// QoS implements apps.App: the difference in final per-element energy
// versus the accurate execution, averaged across elements (paper §2).
func (*App) QoS(exact, approximate []float64) (float64, error) {
	d, err := qos.Distortion(exact, approximate)
	return qosGain * d, err
}

// Run implements apps.App.
func (a *App) Run(p apps.Params, sched approx.Schedule, baselineIters int) (apps.Result, error) {
	if err := sched.Validate(a.Blocks()); err != nil {
		return apps.Result{}, err
	}
	pv := p.Vector(a.Params())
	ne := int(pv[0]) // elements
	regions := int(pv[1])
	if ne < 4 || regions < 1 {
		return apps.Result{}, fmt.Errorf("lulesh: invalid parameters mesh=%d regions=%d", ne, regions)
	}
	nn := ne + 1 // nodes

	// Region-dependent material: alternating gamma and initial density, a
	// 1D stand-in for LULESH's multi-region meshes.
	gamma := make([]float64, ne)
	rho := make([]float64, ne)
	for i := 0; i < ne; i++ {
		reg := i * regions / ne
		gamma[i] = 1.4 + 0.05*float64(reg%2)
		rho[i] = 1.0 + 0.08*float64(reg%2)
	}

	dx0 := domainLen / float64(ne)
	r := make([]float64, nn)    // node positions
	u := make([]float64, nn)    // node velocities
	disp := make([]float64, nn) // cached per-step displacements (memoization)
	for i := range r {
		r[i] = float64(i) * dx0
	}
	m := make([]float64, ne)  // element mass (Lagrangian: constant)
	e := make([]float64, ne)  // specific internal energy
	pr := make([]float64, ne) // pressure
	qv := make([]float64, ne) // artificial viscosity
	vol := make([]float64, ne)
	for i := 0; i < ne; i++ {
		vol[i] = dx0
		m[i] = rho[i] * dx0
		e[i] = 1e-6
	}
	// Sedov-style deposit: all blast energy in the central element, so the
	// shock runs both ways and the truncated Courant scan genuinely risks
	// missing the limiting element on the right.
	e[ne/2] = blastE / m[ne/2]
	for i := 0; i < ne; i++ {
		pr[i] = (gamma[i] - 1) * rho[i] * e[i]
	}
	mn := make([]float64, nn) // nodal mass: half of each adjacent element
	for i := 0; i < ne; i++ {
		mn[i] += m[i] / 2
		mn[i+1] += m[i] / 2
	}
	force := make([]float64, nn)

	courantDT := func(scan int) float64 {
		dt := dtMax
		for i := 0; i < scan; i++ {
			c := math.Sqrt(gamma[i] * math.Max(pr[i], 0) / math.Max(rho[i], 1e-9))
			du := u[i+1] - u[i]
			dx := math.Max(r[i+1]-r[i], 1e-9)
			denom := c + 4*math.Abs(du) + 1e-9
			if cand := cflFactor * dx / denom; cand < dt {
				dt = cand
			}
		}
		if dt < dtMin {
			dt = dtMin
		}
		return dt
	}
	dt := courantDT(ne)

	var rec trace.Recorder
	t := 0.0
	for step := 0; t < tEnd && step < maxSteps; step++ {
		rec.BeginIteration()
		phase := approx.PhaseOf(step, baselineIters, sched.Phases)
		levels := sched.LevelsAt(phase)

		// AB: forces_on_elements (staggered perforation over nodes).
		// Interior force is the pressure+viscosity jump across the node; a
		// skipped node coasts on the force from its last computed step.
		// Staggering the stride by the step index keeps the shock front
		// from permanently losing the same nodes.
		stride := levels[BlockForces] + 1
		computed := 0
		for i := 1; i < nn-1; i++ {
			if (i+step)%stride != 0 {
				continue
			}
			force[i] = (pr[i-1] + qv[i-1]) - (pr[i] + qv[i])
			computed++
		}
		force[0], force[nn-1] = 0, 0 // rigid walls
		rec.Call("forces", uint64(computed*costForce))

		// AB: position_of_elements (memoization over steps, staggered per
		// node). Velocities always integrate the current force, but a
		// node's displacement u·dt is recomputed only every level+1 steps;
		// in between the cached displacement is reused — the mesh coasts
		// on slightly stale motion.
		period := levels[BlockPositions] + 1
		posCost := 0
		for i := 0; i < nn; i++ {
			u[i] += force[i] / mn[i] * dt
		}
		u[0], u[nn-1] = 0, 0
		for i := 1; i < nn-1; i++ {
			if (i+step)%period == 0 {
				disp[i] = u[i] * dt
				posCost += costPosFull
			} else {
				posCost += costPosReuse
			}
			r[i] += disp[i]
		}
		// Settling flow: mild velocity damping drives the post-shock gas
		// toward the stable state the outer loop is waiting for. The speed
		// clamp keeps approximate runs that destabilize the integrator
		// finite instead of NaN.
		for i := 1; i < nn-1; i++ {
			u[i] *= damping
			if u[i] > uMax {
				u[i] = uMax
			} else if u[i] < -uMax {
				u[i] = -uMax
			}
		}
		// Keep the Lagrangian mesh untangled even under aggressive
		// approximation: enforce a minimal element width.
		for i := 1; i < nn; i++ {
			if r[i] < r[i-1]+1e-6 {
				r[i] = r[i-1] + 1e-6
			}
		}
		rec.Call("positions", uint64(posCost))

		// AB: strain_of_elements (perforation over elements): the full
		// update does volume change, pdV energy update, EOS, and
		// artificial viscosity. Perforated elements fall back to a cheap
		// isentropic update (density from the mesh, pressure along the
		// isentrope, stale energy and viscosity) — they stay consistent
		// with the moving mesh but skip the expensive thermodynamics.
		strainStride := levels[BlockStrain] + 1
		updated := 0
		for i := 0; i < ne; i++ {
			newVol := r[i+1] - r[i]
			if (i+step)%strainStride == 0 {
				dVol := newVol - vol[i]
				e[i] -= (pr[i] + qv[i]) * dVol / m[i]
				if e[i] < eFloor {
					e[i] = eFloor
				} else if e[i] > eCap {
					e[i] = eCap // unphysical blowup: degrade gracefully
				}
				vol[i] = newVol
				rho[i] = m[i] / newVol
				pr[i] = (gamma[i] - 1) * rho[i] * e[i]
				du := u[i+1] - u[i]
				if du < 0 { // compression: shock-capturing viscosity
					c := math.Sqrt(gamma[i] * pr[i] / rho[i])
					qv[i] = rho[i] * (qLinear*c*(-du) + qQuad*du*du)
				} else {
					qv[i] = 0
				}
				updated++
			} else {
				// Cheap path: density from the mesh, pressure along the
				// isentrope, stale energy. Artificial viscosity is always
				// refreshed — it is the term that keeps the explicit
				// scheme stable, and it is cheap.
				newRho := m[i] / newVol
				pr[i] *= math.Pow(newRho/rho[i], gamma[i])
				rho[i] = newRho
				vol[i] = newVol
				du := u[i+1] - u[i]
				if du < 0 {
					c := math.Sqrt(gamma[i] * pr[i] / rho[i])
					qv[i] = rho[i] * (qLinear*c*(-du) + qQuad*du*du)
				} else {
					qv[i] = 0
				}
			}
		}
		rec.Call("strain", uint64(updated*costStrain+(ne-updated)*costStrainCheap))

		// AB: calculate_timeconstraints (truncation over elements). A
		// truncated Courant scan can miss the limiting element; growth is
		// capped like LULESH's dtfixed logic.
		scan := approx.TruncatedCount(ne, levels[BlockTimeConstraints], a.Blocks()[BlockTimeConstraints].MaxLevel)
		newDT := courantDT(scan)
		if newDT > dt*dtGrowth {
			newDT = dt * dtGrowth
		}
		dt = newDT
		if t+dt > tEnd {
			dt = tEnd - t
		}
		rec.Call("timeconstraints", uint64(scan*costCourant))

		// The rest of the timestep — boundary handling, reductions, I/O
		// staging, and the many small kernels the sensitivity profiling
		// rejected as non-approximable — is exact work on every iteration.
		rec.Overhead(uint64(ne * costRest))
		t += dt
	}

	out := make([]float64, ne)
	for i := range out {
		v := e[i]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 1e9 // unusable output, but keep the metric finite
		}
		out[i] = v
	}
	return apps.Result{
		Output:     out,
		Work:       rec.TotalWork(),
		OuterIters: rec.Iterations(),
		CtxSig:     rec.ContextSignature(),
	}, nil
}

var _ apps.App = (*App)(nil)
