package lulesh

import (
	"testing"

	"opprox/internal/approx"
	"opprox/internal/apps"
)

func golden(t *testing.T, p apps.Params) apps.Result {
	t.Helper()
	a := New()
	res, err := a.Run(p, approx.AccurateSchedule(len(a.Blocks())), 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestOutputLengthMatchesMesh(t *testing.T) {
	p := apps.Params{"mesh": 32, "regions": 2}
	res := golden(t, p)
	if len(res.Output) != 32 {
		t.Fatalf("output length = %d, want 32", len(res.Output))
	}
}

func TestBlastSpreadsEnergy(t *testing.T) {
	p := apps.DefaultParams(New())
	res := golden(t, p)
	ne := len(res.Output)
	// Energy was deposited in the central element; by the end the shock
	// must have carried energy well away from the center.
	var off float64
	for i, e := range res.Output {
		if i < ne/4 || i > 3*ne/4 {
			off += e
		}
	}
	if off <= 0.01 {
		t.Fatalf("no energy reached the outer quarters: %g", off)
	}
	for i, e := range res.Output {
		if e <= 0 {
			t.Fatalf("non-positive energy at element %d: %g", i, e)
		}
	}
}

func TestIterationCountVariesWithApproximation(t *testing.T) {
	// The paper's Fig. 3 phenomenon: the timestep loop's trip count
	// depends on internal approximation.
	a := New()
	p := apps.DefaultParams(a)
	g := golden(t, p)
	seen := map[int]bool{g.OuterIters: true}
	for _, cfg := range []approx.Config{
		{0, 0, 0, 5},
		{3, 0, 0, 0},
		{0, 0, 3, 0},
	} {
		res, err := a.Run(p, approx.UniformSchedule(1, cfg), g.OuterIters)
		if err != nil {
			t.Fatal(err)
		}
		seen[res.OuterIters] = true
	}
	if len(seen) < 2 {
		t.Fatalf("iteration count never moved: %v", seen)
	}
}

func TestRegionsChangeSolution(t *testing.T) {
	r2 := golden(t, apps.Params{"mesh": 48, "regions": 2})
	r4 := golden(t, apps.Params{"mesh": 48, "regions": 4})
	same := true
	for i := range r2.Output {
		if r2.Output[i] != r4.Output[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("region count has no effect on the solution")
	}
}

func TestInvalidParams(t *testing.T) {
	a := New()
	if _, err := a.Run(apps.Params{"mesh": 1, "regions": 2}, approx.AccurateSchedule(4), 0); err == nil {
		t.Fatal("want error for tiny mesh")
	}
	if _, err := a.Run(apps.Params{"mesh": 48, "regions": 0}, approx.AccurateSchedule(4), 0); err == nil {
		t.Fatal("want error for zero regions")
	}
}

func TestLatePhaseGentlerThanEarly(t *testing.T) {
	// The headline property for LULESH (paper Fig. 4): approximating the
	// last phase degrades QoS far less than the first.
	a := New()
	runner := apps.NewRunner(a)
	p := apps.DefaultParams(a)
	cfg := approx.Config{3, 3, 3, 3}
	early, err := runner.Evaluate(p, approx.SinglePhaseSchedule(4, 0, cfg))
	if err != nil {
		t.Fatal(err)
	}
	late, err := runner.Evaluate(p, approx.SinglePhaseSchedule(4, 3, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if late.Degradation >= early.Degradation {
		t.Fatalf("late phase (%.2f%%) not gentler than early (%.2f%%)",
			late.Degradation, early.Degradation)
	}
}

func TestOutputsAlwaysFinite(t *testing.T) {
	// Even the most aggressive schedule must produce finite output.
	a := New()
	p := apps.DefaultParams(a)
	cfg := approx.Config{5, 5, 5, 5}
	res, err := a.Run(p, approx.UniformSchedule(1, cfg), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Output {
		if v != v || v > 1e30 {
			t.Fatalf("output[%d] = %g", i, v)
		}
	}
}
