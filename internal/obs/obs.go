// Package obs is the observability layer for the OPPROX pipeline: a
// lightweight, dependency-free metrics registry (counters, gauges,
// duration histograms) plus a bounded run-event log, exportable as a JSON
// snapshot.
//
// The hot paths of the system — golden-run caching, training sampling,
// model fitting, schedule optimization, experiment regeneration — report
// through a process-wide Default registry, so `opprox-experiments
// -metrics out.json` (and any future service wrapper) can answer "where
// did the time go, and how often did each cache save us a run" without a
// profiler.
//
// Metrics must never feed back into results: instrumentation observes the
// pipeline, it does not steer it. That rule is what lets the parallel
// experiment engine stay byte-identical to the serial one while still
// being measured.
//
// All types are safe for concurrent use.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be any non-negative amount; negative deltas are
// clamped to zero to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value-wins float metric.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// histBounds are the upper edges of the duration histogram buckets, a
// 1-2-5 ladder from 10µs to 1 minute. Observations above the last edge
// land in the implicit overflow bucket.
var histBounds = []time.Duration{
	10 * time.Microsecond,
	50 * time.Microsecond,
	200 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	20 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	2 * time.Second,
	10 * time.Second,
	time.Minute,
}

// Histogram accumulates a duration distribution: fixed log-scaled buckets
// plus count, sum, min and max.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [numBuckets]int64 // last slot is the overflow bucket
}

// numBuckets is len(histBounds) plus the overflow bucket.
const numBuckets = 12

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(histBounds), func(i int) bool { return d <= histBounds[i] })
	h.mu.Lock()
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[i]++
	h.mu.Unlock()
}

// Time runs fn and observes its wall-clock duration.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.Observe(time.Since(start))
}

// Event is one entry of the run-event log.
type Event struct {
	// Time is the wall-clock moment the event was recorded.
	Time time.Time `json:"time"`
	// Name identifies the event kind, e.g. "experiment.done".
	Name string `json:"name"`
	// Detail is free-form context, e.g. the experiment ID and duration.
	Detail string `json:"detail,omitempty"`
}

// DefaultEventCap bounds the event log; older events are dropped first.
const DefaultEventCap = 512

// Registry owns a namespace of metrics and an event log.
// The zero value is not usable; call New (or use Default).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	events   []Event // ring buffer, oldest at eventHead
	eventCap int
	head     int
	dropped  int64
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		eventCap:   DefaultEventCap,
	}
}

// Default is the process-wide registry the pipeline's built-in
// instrumentation reports to.
var Default = New()

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Event appends a formatted entry to the run-event log. When the log is
// full the oldest entry is evicted (and counted in the snapshot's
// events_dropped).
func (r *Registry) Event(name, format string, args ...interface{}) {
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	ev := Event{Time: time.Now(), Name: name, Detail: detail}
	r.mu.Lock()
	if len(r.events) < r.eventCap {
		r.events = append(r.events, ev)
	} else {
		r.events[r.head] = ev
		r.head = (r.head + 1) % r.eventCap
		r.dropped++
	}
	r.mu.Unlock()
}

// Reset drops every metric and event. Intended for tests and for
// isolating one run's snapshot from the previous one.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.histograms = map[string]*Histogram{}
	r.events = nil
	r.head = 0
	r.dropped = 0
	r.mu.Unlock()
}

// HistogramSnapshot is the exported form of one histogram.
type HistogramSnapshot struct {
	Count      int64   `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	MinSeconds float64 `json:"min_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
	// Buckets[i].Count observations fell at or below Buckets[i].LeSeconds;
	// the final bucket (le_seconds = +inf, encoded as 0 with "overflow")
	// holds the rest.
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one non-empty histogram bucket.
type BucketSnapshot struct {
	// LeSeconds is the bucket's inclusive upper edge; 0 with Overflow set
	// means "beyond the last edge".
	LeSeconds float64 `json:"le_seconds,omitempty"`
	Overflow  bool    `json:"overflow,omitempty"`
	Count     int64   `json:"count"`
}

// Snapshot is a point-in-time JSON-marshalable export of a registry.
type Snapshot struct {
	Counters      map[string]int64             `json:"counters,omitempty"`
	Gauges        map[string]float64           `json:"gauges,omitempty"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Events        []Event                      `json:"events,omitempty"`
	EventsDropped int64                        `json:"events_dropped,omitempty"`
}

// Snapshot exports the registry's current state. Maps marshal with sorted
// keys under encoding/json, so two identical registries produce identical
// bytes.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	events := make([]Event, 0, len(r.events))
	for i := 0; i < len(r.events); i++ {
		events = append(events, r.events[(r.head+i)%len(r.events)])
	}
	dropped := r.dropped
	r.mu.Unlock()

	snap := Snapshot{Events: events, EventsDropped: dropped}
	if len(counters) > 0 {
		snap.Counters = make(map[string]int64, len(counters))
		for k, c := range counters {
			snap.Counters[k] = c.Value()
		}
	}
	if len(gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(gauges))
		for k, g := range gauges {
			snap.Gauges[k] = g.Value()
		}
	}
	if len(hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, h := range hists {
			snap.Histograms[k] = h.snapshot()
		}
	}
	return snap
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	hs := HistogramSnapshot{
		Count:      h.count,
		SumSeconds: h.sum.Seconds(),
		MinSeconds: h.min.Seconds(),
		MaxSeconds: h.max.Seconds(),
	}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		b := BucketSnapshot{Count: n}
		if i < len(histBounds) {
			b.LeSeconds = histBounds[i].Seconds()
		} else {
			b.Overflow = true
		}
		hs.Buckets = append(hs.Buckets, b)
	}
	return hs
}

// WriteJSON writes an indented JSON snapshot of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Snapshot())
}

// Package-level helpers against the Default registry, so instrumented
// code reads as a single call.

// Timer starts a wall-clock timer against a Default-registry histogram.
// The returned stop function observes the elapsed duration under name and
// returns it. Timer is the only sanctioned way for the modeling path
// (internal/core, internal/ml, internal/apps) to measure wall time: the
// clock reads stay inside obs, where they cannot feed back into results
// (invariant D3 in DESIGN.md §8; enforced by the walltime analyzer).
func Timer(name string) func() time.Duration {
	start := time.Now()
	return func() time.Duration {
		d := time.Since(start)
		Default.Histogram(name).Observe(d)
		return d
	}
}

// Inc increments a Default-registry counter.
func Inc(name string) { Default.Counter(name).Inc() }

// Add adds n to a Default-registry counter.
func Add(name string, n int64) { Default.Counter(name).Add(n) }

// Set stores v in a Default-registry gauge.
func Set(name string, v float64) { Default.Gauge(name).Set(v) }

// Observe records a duration in a Default-registry histogram.
func Observe(name string, d time.Duration) { Default.Histogram(name).Observe(d) }

// LogEvent appends to the Default registry's event log.
func LogEvent(name, format string, args ...interface{}) { Default.Event(name, format, args...) }
