package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// keysOf returns the sorted key set of a counters/gauges/histograms map.
func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestSnapshotStableUnderConcurrentLoad takes two JSON snapshots while
// goroutines hammer a fixed metric set, and asserts both unmarshal to the
// same counter (and gauge, and histogram) name set: concurrent load may
// move values but must never make metrics flicker in and out of the
// export.
func TestSnapshotStableUnderConcurrentLoad(t *testing.T) {
	r := New()
	names := []string{"load.a", "load.b", "load.c", "load.d"}
	for _, n := range names {
		r.Counter(n).Inc()
		r.Gauge(n).Set(1)
		r.Histogram(n).Observe(time.Millisecond)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n := names[(w+i)%len(names)]
				r.Counter(n).Inc()
				r.Gauge(n).Add(0.5)
				r.Histogram(n).Observe(time.Duration(i%7) * time.Millisecond)
				r.Event("load.tick", "w%d i%d", w, i)
			}
		}(w)
	}

	takeJSON := func() []byte {
		var b bytes.Buffer
		if err := r.WriteJSON(&b); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return b.Bytes()
	}
	first := takeJSON()
	second := takeJSON()
	close(stop)
	wg.Wait()

	var s1, s2 Snapshot
	if err := json.Unmarshal(first, &s1); err != nil {
		t.Fatalf("unmarshal first: %v", err)
	}
	if err := json.Unmarshal(second, &s2); err != nil {
		t.Fatalf("unmarshal second: %v", err)
	}
	if got, want := keysOf(s1.Counters), keysOf(s2.Counters); !reflect.DeepEqual(got, want) {
		t.Errorf("counter sets differ under load: %v vs %v", got, want)
	}
	if got, want := keysOf(s1.Gauges), keysOf(s2.Gauges); !reflect.DeepEqual(got, want) {
		t.Errorf("gauge sets differ under load: %v vs %v", got, want)
	}
	if got, want := keysOf(s1.Histograms), keysOf(s2.Histograms); !reflect.DeepEqual(got, want) {
		t.Errorf("histogram sets differ under load: %v vs %v", got, want)
	}
	for _, s := range []Snapshot{s1, s2} {
		if !reflect.DeepEqual(keysOf(s.Counters), names) {
			t.Errorf("counter set = %v, want %v", keysOf(s.Counters), names)
		}
	}
}

// TestSnapshotBytesDeterministicWhenQuiescent asserts a quiescent
// registry snapshots to byte-identical JSON on repeated export — the
// property `opprox-experiments -metrics` relies on for diffable output.
func TestSnapshotBytesDeterministicWhenQuiescent(t *testing.T) {
	r := New()
	r.Counter("q.hits").Add(41)
	r.Gauge("q.ratio").Set(0.75)
	r.Histogram("q.dur").Observe(3 * time.Millisecond)

	var first bytes.Buffer
	if err := r.WriteJSON(&first); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	for i := 0; i < 10; i++ {
		var again bytes.Buffer
		if err := r.WriteJSON(&again); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("quiescent snapshots differ:\n%s\n%s", first.String(), again.String())
		}
	}
}

// TestTimer covers the obs.Timer helper the modeling path uses instead of
// reading the wall clock directly (walltime analyzer, invariant D3).
func TestTimer(t *testing.T) {
	Default.Reset()
	defer Default.Reset()

	stop := Timer("timer.test")
	d := stop()
	if d < 0 {
		t.Errorf("Timer returned negative duration %v", d)
	}
	snap := Default.Snapshot()
	h, ok := snap.Histograms["timer.test"]
	if !ok {
		t.Fatal("Timer did not register histogram timer.test")
	}
	if h.Count != 1 {
		t.Errorf("histogram count = %d, want 1", h.Count)
	}
}
