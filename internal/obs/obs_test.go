package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("runs")
	c.Inc()
	c.Add(4)
	c.Add(-7) // negative deltas must not unwind a monotone counter
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("runs") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("fit")
	h.Observe(3 * time.Microsecond)  // first bucket
	h.Observe(40 * time.Millisecond) // mid bucket
	h.Observe(2 * time.Hour)         // overflow
	h.Observe(-time.Second)          // clamped to 0
	hs := h.snapshot()
	if hs.Count != 4 {
		t.Fatalf("count = %d, want 4", hs.Count)
	}
	if hs.MinSeconds != 0 {
		t.Fatalf("min = %g, want 0 (clamped)", hs.MinSeconds)
	}
	if hs.MaxSeconds != (2 * time.Hour).Seconds() {
		t.Fatalf("max = %g", hs.MaxSeconds)
	}
	var overflow, total int64
	for _, b := range hs.Buckets {
		total += b.Count
		if b.Overflow {
			overflow += b.Count
		}
	}
	if total != 4 || overflow != 1 {
		t.Fatalf("buckets total=%d overflow=%d, want 4/1", total, overflow)
	}
}

func TestHistogramTime(t *testing.T) {
	r := New()
	h := r.Histogram("timed")
	h.Time(func() { time.Sleep(time.Millisecond) })
	if hs := h.snapshot(); hs.Count != 1 || hs.SumSeconds <= 0 {
		t.Fatalf("Time did not record: %+v", hs)
	}
}

func TestEventLogEviction(t *testing.T) {
	r := New()
	r.eventCap = 4
	for i := 0; i < 10; i++ {
		r.Event("tick", "n=%d", i)
	}
	snap := r.Snapshot()
	if len(snap.Events) != 4 {
		t.Fatalf("event log holds %d, want 4", len(snap.Events))
	}
	if snap.EventsDropped != 6 {
		t.Fatalf("dropped = %d, want 6", snap.EventsDropped)
	}
	// Oldest-first order, holding the most recent entries.
	for i, ev := range snap.Events {
		want := fmt.Sprintf("n=%d", 6+i)
		if ev.Detail != want {
			t.Fatalf("event %d detail = %q, want %q", i, ev.Detail, want)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("a.hit").Add(3)
	r.Gauge("b.depth").Set(7)
	r.Histogram("c.fit").Observe(2 * time.Millisecond)
	r.Event("start", "experiment %s", "fig2")

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Counters["a.hit"] != 3 {
		t.Fatalf("counter lost: %+v", decoded.Counters)
	}
	if decoded.Gauges["b.depth"] != 7 {
		t.Fatalf("gauge lost: %+v", decoded.Gauges)
	}
	if decoded.Histograms["c.fit"].Count != 1 {
		t.Fatalf("histogram lost: %+v", decoded.Histograms)
	}
	if len(decoded.Events) != 1 || decoded.Events[0].Detail != "experiment fig2" {
		t.Fatalf("events lost: %+v", decoded.Events)
	}
	// Two identical registries must snapshot to identical bytes (map keys
	// are sorted by encoding/json) so metrics never break artifact diffs.
	var buf2 bytes.Buffer
	if err := r.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("same registry snapshots to different bytes")
	}
	if !strings.Contains(buf.String(), "a.hit") {
		t.Fatalf("snapshot missing counter name:\n%s", buf.String())
	}
}

func TestReset(t *testing.T) {
	r := New()
	r.Counter("x").Inc()
	r.Event("e", "detail")
	r.Reset()
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Events) != 0 {
		t.Fatalf("reset left state: %+v", snap)
	}
}

// TestRegistryRace hammers every registry surface from many goroutines;
// it exists to fail under `go test -race` if any path loses its lock.
func TestRegistryRace(t *testing.T) {
	r := New()
	const goroutines = 16
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("m%d", g%4) // contend on shared names
			for i := 0; i < iters; i++ {
				r.Counter(name).Inc()
				r.Gauge(name).Add(1)
				r.Histogram(name).Observe(time.Duration(i) * time.Microsecond)
				r.Event(name, "i=%d", i)
				if i%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := r.Snapshot()
	var total int64
	for _, v := range snap.Counters {
		total += v
	}
	if total != goroutines*iters {
		t.Fatalf("lost increments: %d, want %d", total, goroutines*iters)
	}
	for _, hs := range snap.Histograms {
		var bucketed int64
		for _, b := range hs.Buckets {
			bucketed += b.Count
		}
		if bucketed != hs.Count {
			t.Fatalf("histogram bucket counts %d != count %d", bucketed, hs.Count)
		}
	}
	if int64(len(snap.Events))+snap.EventsDropped != goroutines*iters {
		t.Fatalf("events accounted %d+%d, want %d", len(snap.Events), snap.EventsDropped, goroutines*iters)
	}
}

// TestDefaultHelpers exercises the package-level convenience functions.
func TestDefaultHelpers(t *testing.T) {
	Default.Reset()
	defer Default.Reset()
	Inc("h.count")
	Add("h.count", 2)
	Set("h.gauge", 4)
	Observe("h.dur", time.Millisecond)
	LogEvent("h.ev", "plain")
	snap := Default.Snapshot()
	if snap.Counters["h.count"] != 3 || snap.Gauges["h.gauge"] != 4 {
		t.Fatalf("helpers did not hit Default: %+v", snap)
	}
	if snap.Histograms["h.dur"].Count != 1 || len(snap.Events) != 1 {
		t.Fatalf("helpers did not hit Default: %+v", snap)
	}
}
