// Package arena provides sync.Pool-backed scratch buffers for the model
// kernels (poly, linalg, mic) and the core prediction hot path. Training
// and inference run the same small handful of buffer shapes millions of
// times — standardization rows, residual vectors, fold index sets — and
// allocating them per call is what pushed Train to O(rows·terms)
// allocations. The arena turns those into O(1) pool hits.
//
// Buffers are bucketed by capacity class (next power of two), so a Get for
// any length up to the bucket's capacity reuses the same backing array.
// Contents are NOT zeroed on Get: callers own initialization, which every
// kernel does anyway by construction (full overwrite before first read).
// Put recycles a buffer for any future Get; the caller must not retain or
// alias the slice after Put. Pools are safe for concurrent use, so the
// parallel cross-validation workers share them freely.
package arena

import (
	"math/bits"
	"sync"
)

// maxBucket bounds the pooled capacity classes at 1<<maxBucket elements
// (~8 MiB of float64s). Larger requests are allocated directly and dropped
// on Put, so one huge transient cannot pin memory in the pool forever.
const maxBucket = 20

var (
	floatPools [maxBucket + 1]sync.Pool
	intPools   [maxBucket + 1]sync.Pool
	rowPools   [maxBucket + 1]sync.Pool
)

// bucketFor returns the capacity class for a request of n elements:
// the smallest b with 1<<b >= n.
func bucketFor(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Floats returns a pooled []float64 of length n (uninitialized). Release
// it with PutFloats when done.
func Floats(n int) *[]float64 {
	b := bucketFor(n)
	if b > maxBucket {
		s := make([]float64, n)
		return &s
	}
	if v := floatPools[b].Get(); v != nil {
		s := v.(*[]float64)
		*s = (*s)[:n]
		return s
	}
	s := make([]float64, n, 1<<b)
	return &s
}

// PutFloats returns a buffer obtained from Floats to its pool.
func PutFloats(s *[]float64) {
	if s == nil {
		return
	}
	b := bucketFor(cap(*s))
	if b > maxBucket || cap(*s) != 1<<b {
		return // oversized or foreign buffer: let the GC have it
	}
	floatPools[b].Put(s)
}

// Ints returns a pooled []int of length n (uninitialized).
func Ints(n int) *[]int {
	b := bucketFor(n)
	if b > maxBucket {
		s := make([]int, n)
		return &s
	}
	if v := intPools[b].Get(); v != nil {
		s := v.(*[]int)
		*s = (*s)[:n]
		return s
	}
	s := make([]int, n, 1<<b)
	return &s
}

// PutInts returns a buffer obtained from Ints to its pool.
func PutInts(s *[]int) {
	if s == nil {
		return
	}
	b := bucketFor(cap(*s))
	if b > maxBucket || cap(*s) != 1<<b {
		return
	}
	intPools[b].Put(s)
}

// Slab carves many float buffers out of one pooled allocation. Callers
// that need a handful of related scratch vectors (the batched
// prediction passes of the Pareto-front library carve a dozen) take one
// Slab sized for the sum instead of a pool round-trip per vector, and
// release everything with a single Release. Carved slices follow arena
// rules: uninitialized on Floats, invalid after Release.
type Slab struct {
	buf  *[]float64
	next int
}

// NewSlab returns a slab with capacity for n float64s in total.
func NewSlab(n int) *Slab {
	return &Slab{buf: Floats(n)}
}

// Floats carves the next n float64s from the slab (uninitialized).
// Carved slices have exact capacity, so appends cannot silently bleed
// into a neighbouring carve. Carving past the backing buffer panics:
// sizes are static at every call site, so an overrun is a programming
// error, not a runtime condition.
func (s *Slab) Floats(n int) []float64 {
	out := (*s.buf)[s.next : s.next+n : s.next+n]
	s.next += n
	return out
}

// Release returns the slab's backing buffer to the pool. The slab and
// every slice carved from it are invalid afterwards.
func (s *Slab) Release() {
	PutFloats(s.buf)
	s.buf = nil
}

// Rows returns a pooled [][]float64 of length n with every element nil.
// Cross-validation uses these for fold splits: the elements alias caller
// rows, so Rows clears them on Get rather than trusting the previous user.
func Rows(n int) *[][]float64 {
	b := bucketFor(n)
	if b > maxBucket {
		s := make([][]float64, n)
		return &s
	}
	if v := rowPools[b].Get(); v != nil {
		s := v.(*[][]float64)
		*s = (*s)[:n]
		for i := range *s {
			(*s)[i] = nil
		}
		return s
	}
	s := make([][]float64, n, 1<<b)
	return &s
}

// PutRows returns a buffer obtained from Rows to its pool. The row
// pointers are dropped eagerly so the pool never keeps caller data alive.
func PutRows(s *[][]float64) {
	if s == nil {
		return
	}
	for i := range *s {
		(*s)[i] = nil
	}
	b := bucketFor(cap(*s))
	if b > maxBucket || cap(*s) != 1<<b {
		return
	}
	rowPools[b].Put(s)
}
