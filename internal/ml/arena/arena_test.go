package arena

import "testing"

func TestBucketFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10},
	}
	for _, c := range cases {
		if got := bucketFor(c.n); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFloatsRoundTrip(t *testing.T) {
	p := Floats(10)
	if len(*p) != 10 || cap(*p) != 16 {
		t.Fatalf("len=%d cap=%d, want 10/16", len(*p), cap(*p))
	}
	for i := range *p {
		(*p)[i] = float64(i)
	}
	PutFloats(p)
	q := Floats(12)
	if len(*q) != 12 {
		t.Fatalf("len=%d, want 12", len(*q))
	}
	PutFloats(q)
}

func TestFloatsReuse(t *testing.T) {
	// Steady-state Get/Put of a pooled size must not allocate.
	p := Floats(64)
	PutFloats(p)
	allocs := testing.AllocsPerRun(200, func() {
		s := Floats(64)
		PutFloats(s)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Floats/PutFloats allocates %.1f/op, want 0", allocs)
	}
}

func TestOversizedBypassesPool(t *testing.T) {
	huge := (1 << maxBucket) + 1
	p := Floats(huge)
	if len(*p) != huge {
		t.Fatalf("len=%d, want %d", len(*p), huge)
	}
	PutFloats(p) // must not panic, must not pin
}

func TestIntsRoundTrip(t *testing.T) {
	p := Ints(5)
	if len(*p) != 5 {
		t.Fatalf("len=%d, want 5", len(*p))
	}
	PutInts(p)
}

func TestRowsCleared(t *testing.T) {
	p := Rows(4)
	(*p)[0] = []float64{1, 2}
	PutRows(p)
	q := Rows(3)
	for i, r := range *q {
		if r != nil {
			t.Fatalf("row %d not cleared after reuse", i)
		}
	}
	PutRows(q)
}
