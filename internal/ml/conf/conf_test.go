package conf

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromResidualsErrors(t *testing.T) {
	if _, err := FromResiduals(nil, 0.99); !errors.Is(err, ErrNoResiduals) {
		t.Fatalf("err = %v, want ErrNoResiduals", err)
	}
	if _, err := FromResiduals([]float64{1}, 0); err == nil {
		t.Fatal("want error for p = 0")
	}
	if _, err := FromResiduals([]float64{1}, 1.5); err == nil {
		t.Fatal("want error for p > 1")
	}
}

func TestFullConfidenceIsMaxAbs(t *testing.T) {
	iv, err := FromResiduals([]float64{-3, 1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if iv.HalfWidth != 3 {
		t.Fatalf("HalfWidth = %g, want 3", iv.HalfWidth)
	}
}

func TestMedianQuantile(t *testing.T) {
	iv, err := FromResiduals([]float64{1, 2, 3, 4}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if iv.HalfWidth != 2 {
		t.Fatalf("HalfWidth = %g, want 2", iv.HalfWidth)
	}
}

func TestBounds(t *testing.T) {
	iv := Interval{HalfWidth: 0.5, P: 0.99}
	if iv.Upper(2) != 2.5 || iv.Lower(2) != 1.5 {
		t.Fatalf("Upper/Lower wrong: %g, %g", iv.Upper(2), iv.Lower(2))
	}
	if !iv.Contains(2, 2.4) || iv.Contains(2, 2.6) {
		t.Fatal("Contains wrong")
	}
}

func TestCoverage(t *testing.T) {
	iv := Interval{HalfWidth: 1}
	cov, err := iv.Coverage([]float64{0, 0, 0, 0}, []float64{0.5, -0.5, 2, -2})
	if err != nil {
		t.Fatal(err)
	}
	if cov != 0.5 {
		t.Fatalf("Coverage = %g, want 0.5", cov)
	}
	if _, err := iv.Coverage([]float64{1}, nil); err == nil {
		t.Fatal("want length error")
	}
	empty, err := iv.Coverage(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(empty) {
		t.Fatal("empty coverage should be NaN")
	}
}

// Property: the band built at level p from a residual sample covers at
// least fraction p of that same sample.
func TestNominalCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(500)
		res := make([]float64, n)
		preds := make([]float64, n)
		truths := make([]float64, n)
		for i := 0; i < n; i++ {
			res[i] = rng.NormFloat64() * (1 + rng.Float64()*5)
			// preds stay zero so truth - pred is exactly the residual
			// (adding a random pred would perturb the boundary residual by
			// a ulp and flip exact quantile coverage).
			truths[i] = res[i]
		}
		for _, p := range []float64{0.5, 0.9, 0.99} {
			iv, err := FromResiduals(res, p)
			if err != nil {
				return false
			}
			cov, err := iv.Coverage(preds, truths)
			if err != nil || cov < p-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: HalfWidth is monotone in p.
func TestMonotoneInP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		res := make([]float64, n)
		for i := range res {
			res[i] = rng.NormFloat64()
		}
		prev := -1.0
		for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
			iv, err := FromResiduals(res, p)
			if err != nil {
				return false
			}
			if iv.HalfWidth < prev {
				return false
			}
			prev = iv.HalfWidth
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
