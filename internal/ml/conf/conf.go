// Package conf computes residual-based confidence intervals for fitted
// models, following the approach OPPROX adapts from Mitra et al. (PACT'15):
// if a model's prediction is Q and, over held-out data, a fraction p of
// absolute modeling errors stay within e, the true value is taken to lie in
// [Q-e, Q+e]. OPPROX then uses the pessimistic edge of that interval —
// upper for QoS degradation, lower for speedup — so the optimizer never
// banks on model optimism (paper §3.6).
package conf

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Interval is a symmetric confidence band around model predictions.
type Interval struct {
	// HalfWidth is e: the p-quantile of |residual|.
	HalfWidth float64
	// P is the confidence level the band was built at.
	P float64
}

// ErrNoResiduals reports an empty residual set.
var ErrNoResiduals = errors.New("conf: no residuals")

// FromResiduals builds the confidence band at level p (e.g. 0.99) from
// model residuals (truth - prediction).
func FromResiduals(residuals []float64, p float64) (Interval, error) {
	if len(residuals) == 0 {
		return Interval{}, ErrNoResiduals
	}
	if p <= 0 || p > 1 {
		return Interval{}, errors.New("conf: p must be in (0, 1]")
	}
	abs := make([]float64, len(residuals))
	for i, r := range residuals {
		abs[i] = math.Abs(r)
	}
	sort.Float64s(abs)
	// The smallest index k such that (k+1)/n >= p.
	k := int(math.Ceil(p*float64(len(abs)))) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(abs) {
		k = len(abs) - 1
	}
	return Interval{HalfWidth: abs[k], P: p}, nil
}

// Banded is a confidence band whose width depends on the predicted value:
// residuals are grouped into quantile bands of the prediction, and each
// band carries its own p-quantile half-width. Models of QoS degradation
// are strongly heteroscedastic — accurate near zero, noisy at aggressive
// settings — and a single global band would let the noisy region's tail
// veto the accurate region (Mitra et al., PACT'15 condition their error
// model the same way).
type Banded struct {
	// Edges are the upper prediction bounds of each band except the last
	// (len(Edges) == len(Bands)-1).
	Edges []float64
	Bands []Interval
	P     float64
}

// BandedFromResiduals builds a banded confidence interval at level p from
// (prediction, residual) pairs, using at most nBands equal-population
// bands. Bands with too few residuals are merged into their neighbor.
func BandedFromResiduals(preds, residuals []float64, p float64, nBands int) (Banded, error) {
	if len(preds) != len(residuals) {
		return Banded{}, errors.New("conf: preds/residuals length mismatch")
	}
	if len(residuals) == 0 {
		return Banded{}, ErrNoResiduals
	}
	const minPerBand = 25
	if nBands > len(residuals)/minPerBand {
		nBands = len(residuals) / minPerBand
	}
	if nBands < 1 {
		nBands = 1
	}
	type pair struct{ pred, res float64 }
	pairs := make([]pair, len(preds))
	for i := range preds {
		pairs[i] = pair{preds[i], residuals[i]}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].pred < pairs[j].pred })
	b := Banded{P: p}
	n := len(pairs)
	lo := 0
	for k := 0; k < nBands && lo < n; k++ {
		hi := (k + 1) * n / nBands
		if hi <= lo {
			hi = lo + 1
		}
		if k == nBands-1 {
			hi = n
		}
		// Advance the cut past runs of equal predictions. band() routes a
		// prediction with pred <= edge to the lower band, so a boundary
		// inside a tie run would send residuals that were calibrated into
		// the upper band to the lower one: construction and lookup must
		// split on strict prediction increases only.
		for hi < n && pairs[hi].pred == pairs[hi-1].pred {
			hi++
		}
		band := pairs[lo:hi]
		res := make([]float64, len(band))
		for i, pr := range band {
			res[i] = pr.res
		}
		iv, err := FromResiduals(res, p)
		if err != nil {
			return Banded{}, err
		}
		b.Bands = append(b.Bands, iv)
		if hi < n {
			b.Edges = append(b.Edges, pairs[hi-1].pred)
		}
		lo = hi
	}
	return b, nil
}

// Validate checks the structural invariants band() relies on: at least
// one band, one fewer edge than bands, and strictly increasing, non-NaN
// edges and non-negative half-widths. LoadTrained calls this on imported
// confidence bands so a truncated or hand-edited model file fails at load
// time instead of panicking inside the optimizer.
func (b Banded) Validate() error {
	if len(b.Bands) < 1 {
		return errors.New("conf: banded interval has no bands")
	}
	if len(b.Edges) != len(b.Bands)-1 {
		return fmt.Errorf("conf: banded interval has %d edges for %d bands (want %d)",
			len(b.Edges), len(b.Bands), len(b.Bands)-1)
	}
	for i, e := range b.Edges {
		if math.IsNaN(e) {
			return fmt.Errorf("conf: band edge %d is NaN", i)
		}
		if i > 0 && !(b.Edges[i-1] < e) {
			return fmt.Errorf("conf: band edges not strictly increasing (%g then %g)", b.Edges[i-1], e)
		}
	}
	for i, iv := range b.Bands {
		if math.IsNaN(iv.HalfWidth) || iv.HalfWidth < 0 {
			return fmt.Errorf("conf: band %d has invalid half-width %g", i, iv.HalfWidth)
		}
	}
	return nil
}

// band returns the interval whose prediction range contains pred.
func (b Banded) band(pred float64) Interval {
	for i, e := range b.Edges {
		if pred <= e {
			return b.Bands[i]
		}
	}
	return b.Bands[len(b.Bands)-1]
}

// Band returns the interval whose prediction range contains pred — the
// same lookup Upper/Lower apply, exposed so callers that compare realized
// values against the band (the serving feedback loop's drift detector)
// can read the half-width at a given prediction.
func (b Banded) Band(pred float64) Interval { return b.band(pred) }

// Upper returns the banded conservative upper bound for a prediction.
func (b Banded) Upper(pred float64) float64 { return b.band(pred).Upper(pred) }

// Lower returns the banded conservative lower bound for a prediction.
func (b Banded) Lower(pred float64) float64 { return b.band(pred).Lower(pred) }

// Upper returns the conservative upper bound for a prediction
// (used for QoS degradation, where overshooting the budget is the risk).
func (iv Interval) Upper(pred float64) float64 { return pred + iv.HalfWidth }

// Lower returns the conservative lower bound for a prediction
// (used for speedup, where over-promising benefit is the risk).
func (iv Interval) Lower(pred float64) float64 { return pred - iv.HalfWidth }

// Contains reports whether truth falls inside the band around pred.
func (iv Interval) Contains(pred, truth float64) bool {
	return math.Abs(truth-pred) <= iv.HalfWidth
}

// Coverage returns the fraction of (pred, truth) pairs the band contains —
// a direct empirical check that the band achieves its nominal level.
func (iv Interval) Coverage(preds, truths []float64) (float64, error) {
	if len(preds) != len(truths) {
		return 0, errors.New("conf: length mismatch")
	}
	if len(preds) == 0 {
		return math.NaN(), nil
	}
	in := 0
	for i := range preds {
		if iv.Contains(preds[i], truths[i]) {
			in++
		}
	}
	return float64(in) / float64(len(preds)), nil
}
