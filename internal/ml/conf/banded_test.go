package conf

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBandedErrors(t *testing.T) {
	if _, err := BandedFromResiduals([]float64{1}, []float64{1, 2}, 0.9, 2); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := BandedFromResiduals(nil, nil, 0.9, 2); !errors.Is(err, ErrNoResiduals) {
		t.Fatalf("err = %v, want ErrNoResiduals", err)
	}
}

func TestBandedSmallSampleCollapsesToOneBand(t *testing.T) {
	preds := []float64{1, 2, 3, 4, 5}
	res := []float64{0.1, -0.2, 0.3, -0.1, 0.2}
	b, err := BandedFromResiduals(preds, res, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Bands) != 1 {
		t.Fatalf("bands = %d, want 1 for tiny samples", len(b.Bands))
	}
	if b.Upper(3) != 3+0.3 {
		t.Fatalf("Upper = %g", b.Upper(3))
	}
}

func TestBandedHeteroscedastic(t *testing.T) {
	// Residual magnitude grows with the prediction: the low band must be
	// much tighter than the high band.
	rng := rand.New(rand.NewSource(1))
	var preds, res []float64
	for i := 0; i < 400; i++ {
		p := rng.Float64() * 10
		preds = append(preds, p)
		res = append(res, rng.NormFloat64()*(0.01+p*p/20))
	}
	b, err := BandedFromResiduals(preds, res, 0.95, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Bands) != 4 {
		t.Fatalf("bands = %d, want 4", len(b.Bands))
	}
	low := b.Upper(0.5) - 0.5
	high := b.Upper(9.5) - 9.5
	if low >= high {
		t.Fatalf("low-band width %g should be < high-band width %g", low, high)
	}
	if low > 1 {
		t.Fatalf("low band too wide: %g", low)
	}
}

func TestBandedLookupEdges(t *testing.T) {
	b := Banded{
		Edges: []float64{1, 2},
		Bands: []Interval{{HalfWidth: 0.1}, {HalfWidth: 0.2}, {HalfWidth: 0.3}},
	}
	if got := b.Upper(0.5) - 0.5; math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("band 0 width = %g", got)
	}
	if got := b.Upper(1.5) - 1.5; math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("band 1 width = %g", got)
	}
	if got := b.Lower(99) - 99; math.Abs(got+0.3) > 1e-12 {
		t.Fatalf("band 2 lower offset = %g", got)
	}
	// Exactly on an edge belongs to the lower band.
	if got := b.Upper(1.0) - 1.0; math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("edge case width = %g", got)
	}
}

// Regression: band cuts used to land inside runs of equal predictions, so
// a tied prediction straddling the boundary was calibrated into the upper
// band but routed by band()'s pred <= edge to the lower one. Construction
// must advance the cut past the tie run so lookup and construction agree.
func TestBandedTiedPredictionsAtBoundary(t *testing.T) {
	// 98 points at pred=1 with tiny residuals, then a run of 102 tied
	// points at pred=2 with huge residuals that straddles the naive
	// two-band cut at index 100. The old construction put 2 of the tied
	// points into the low band (too few to widen its 95% quantile) and set
	// the edge to 2.0, so lookup routed every pred=2 point to the tight
	// low band and the band stopped covering the very residuals it was
	// calibrated on.
	var preds, res []float64
	for i := 0; i < 98; i++ {
		preds = append(preds, 1)
		res = append(res, 0.1)
	}
	for i := 0; i < 102; i++ {
		preds = append(preds, 2)
		res = append(res, 10)
	}
	b, err := BandedFromResiduals(preds, res, 0.95, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("constructed band fails Validate: %v", err)
	}
	for i := range preds {
		truth := preds[i] + res[i]
		if truth > b.Upper(preds[i]) || truth < b.Lower(preds[i]) {
			t.Fatalf("calibration pair (pred=%g, res=%g) not covered: [%g, %g]",
				preds[i], res[i], b.Lower(preds[i]), b.Upper(preds[i]))
		}
	}
}

// All predictions identical: the tie run spans the whole input, so the
// bands collapse to one and no edge splits the run.
func TestBandedAllTiedCollapsesToOneBand(t *testing.T) {
	preds := make([]float64, 100)
	res := make([]float64, 100)
	for i := range preds {
		preds[i] = 3
		res[i] = float64(i%10) / 10
	}
	b, err := BandedFromResiduals(preds, res, 0.9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Bands) != 1 || len(b.Edges) != 0 {
		t.Fatalf("got %d bands / %d edges, want 1 / 0", len(b.Bands), len(b.Edges))
	}
}

// Property: construction/lookup agreement — for every calibration pair,
// the band band() routes the prediction to is the band the pair was built
// into. Tie-heavy inputs exercise the regression.
func TestBandedConstructionLookupAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(300)
		preds := make([]float64, n)
		res := make([]float64, n)
		for i := 0; i < n; i++ {
			// Coarse quantization forces many tied predictions.
			preds[i] = float64(rng.Intn(6))
			res[i] = rng.NormFloat64()
		}
		// At p=1 every band's half-width is the max |residual| built into
		// it, so full coverage of the calibration data holds iff lookup
		// routes each pair to the band it was constructed in. A tie run
		// split by an edge sends its upper-band pairs to a tighter band
		// and breaks this.
		b, err := BandedFromResiduals(preds, res, 1, 4)
		if err != nil {
			return false
		}
		if b.Validate() != nil {
			return false
		}
		for i := 0; i < n; i++ {
			truth := preds[i] + res[i]
			if truth > b.Upper(preds[i]) || truth < b.Lower(preds[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBandedValidate(t *testing.T) {
	good := Banded{Edges: []float64{1, 2}, Bands: []Interval{{HalfWidth: 1}, {HalfWidth: 2}, {HalfWidth: 3}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid band rejected: %v", err)
	}
	cases := map[string]Banded{
		"no bands":       {},
		"edge mismatch":  {Edges: []float64{1, 2}, Bands: []Interval{{}, {}}},
		"unsorted edges": {Edges: []float64{2, 1}, Bands: []Interval{{}, {}, {}}},
		"equal edges":    {Edges: []float64{1, 1}, Bands: []Interval{{}, {}, {}}},
		"nan edge":       {Edges: []float64{math.NaN()}, Bands: []Interval{{}, {}}},
		"negative width": {Edges: nil, Bands: []Interval{{HalfWidth: -1}}},
	}
	for name, b := range cases {
		if err := b.Validate(); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// Property: per-band coverage at level p holds on the calibration data.
func TestBandedCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 120 + rng.Intn(400)
		preds := make([]float64, n)
		res := make([]float64, n)
		for i := 0; i < n; i++ {
			preds[i] = rng.Float64() * 5
			res[i] = rng.NormFloat64() * (0.1 + preds[i])
		}
		p := 0.9
		b, err := BandedFromResiduals(preds, res, p, 3)
		if err != nil {
			return false
		}
		in := 0
		for i := 0; i < n; i++ {
			truth := preds[i] + res[i]
			if truth <= b.Upper(preds[i]) && truth >= b.Lower(preds[i]) {
				in++
			}
		}
		// Slack: band boundaries shift a little relative to per-band
		// calibration; allow 5 percentage points.
		return float64(in)/float64(n) >= p-0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
