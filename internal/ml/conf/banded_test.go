package conf

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBandedErrors(t *testing.T) {
	if _, err := BandedFromResiduals([]float64{1}, []float64{1, 2}, 0.9, 2); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := BandedFromResiduals(nil, nil, 0.9, 2); !errors.Is(err, ErrNoResiduals) {
		t.Fatalf("err = %v, want ErrNoResiduals", err)
	}
}

func TestBandedSmallSampleCollapsesToOneBand(t *testing.T) {
	preds := []float64{1, 2, 3, 4, 5}
	res := []float64{0.1, -0.2, 0.3, -0.1, 0.2}
	b, err := BandedFromResiduals(preds, res, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Bands) != 1 {
		t.Fatalf("bands = %d, want 1 for tiny samples", len(b.Bands))
	}
	if b.Upper(3) != 3+0.3 {
		t.Fatalf("Upper = %g", b.Upper(3))
	}
}

func TestBandedHeteroscedastic(t *testing.T) {
	// Residual magnitude grows with the prediction: the low band must be
	// much tighter than the high band.
	rng := rand.New(rand.NewSource(1))
	var preds, res []float64
	for i := 0; i < 400; i++ {
		p := rng.Float64() * 10
		preds = append(preds, p)
		res = append(res, rng.NormFloat64()*(0.01+p*p/20))
	}
	b, err := BandedFromResiduals(preds, res, 0.95, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Bands) != 4 {
		t.Fatalf("bands = %d, want 4", len(b.Bands))
	}
	low := b.Upper(0.5) - 0.5
	high := b.Upper(9.5) - 9.5
	if low >= high {
		t.Fatalf("low-band width %g should be < high-band width %g", low, high)
	}
	if low > 1 {
		t.Fatalf("low band too wide: %g", low)
	}
}

func TestBandedLookupEdges(t *testing.T) {
	b := Banded{
		Edges: []float64{1, 2},
		Bands: []Interval{{HalfWidth: 0.1}, {HalfWidth: 0.2}, {HalfWidth: 0.3}},
	}
	if got := b.Upper(0.5) - 0.5; math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("band 0 width = %g", got)
	}
	if got := b.Upper(1.5) - 1.5; math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("band 1 width = %g", got)
	}
	if got := b.Lower(99) - 99; math.Abs(got+0.3) > 1e-12 {
		t.Fatalf("band 2 lower offset = %g", got)
	}
	// Exactly on an edge belongs to the lower band.
	if got := b.Upper(1.0) - 1.0; math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("edge case width = %g", got)
	}
}

// Property: per-band coverage at level p holds on the calibration data.
func TestBandedCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 120 + rng.Intn(400)
		preds := make([]float64, n)
		res := make([]float64, n)
		for i := 0; i < n; i++ {
			preds[i] = rng.Float64() * 5
			res[i] = rng.NormFloat64() * (0.1 + preds[i])
		}
		p := 0.9
		b, err := BandedFromResiduals(preds, res, p, 3)
		if err != nil {
			return false
		}
		in := 0
		for i := 0; i < n; i++ {
			truth := preds[i] + res[i]
			if truth <= b.Upper(preds[i]) && truth >= b.Lower(preds[i]) {
				in++
			}
		}
		// Slack: band boundaries shift a little relative to per-band
		// calibration; allow 5 percentage points.
		return float64(in)/float64(n) >= p-0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
