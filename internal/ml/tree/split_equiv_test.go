package tree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// giniMap and bestSplitNaive are the pre-optimization implementations:
// string-keyed count maps rebuilt per feature, reduced over the sorted
// label list. They are the bit-for-bit oracle for the interned, arena-
// backed bestSplit.
func giniMap(counts map[string]int, labels []string, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, l := range labels {
		p := float64(counts[l]) / float64(total)
		g -= p * p
	}
	return g
}

func bestSplitNaive(xs [][]float64, labels []string, idx []int, minLeaf int) (feat int, thr, gain float64) {
	total := len(idx)
	parentCounts := map[string]int{}
	for _, i := range idx {
		parentCounts[labels[i]]++
	}
	classLabels := make([]string, 0, len(parentCounts))
	for l := range parentCounts {
		classLabels = append(classLabels, l)
	}
	sort.Strings(classLabels)
	parentGini := giniMap(parentCounts, classLabels, total)
	bestGain := 0.0
	bestFeat, bestThr := -1, 0.0
	nf := len(xs[idx[0]])
	order := make([]int, len(idx))
	for f := 0; f < nf; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return xs[order[a]][f] < xs[order[b]][f] })
		leftCounts := map[string]int{}
		rightCounts := map[string]int{}
		for l, n := range parentCounts {
			rightCounts[l] = n
		}
		for pos := 0; pos < total-1; pos++ {
			l := labels[order[pos]]
			leftCounts[l]++
			rightCounts[l]--
			nl, nr := pos+1, total-pos-1
			if xs[order[pos]][f] == xs[order[pos+1]][f] {
				continue
			}
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			g := parentGini -
				(float64(nl)*giniMap(leftCounts, classLabels, nl)+float64(nr)*giniMap(rightCounts, classLabels, nr))/float64(total)
			if g > bestGain {
				bestGain = g
				bestFeat = f
				bestThr = (xs[order[pos]][f] + xs[order[pos+1]][f]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return 0, 0, 0
	}
	return bestFeat, bestThr, bestGain
}

// TestBestSplitMatchesNaiveBitwise: interning labels to dense ids and
// sweeping flat count slices must choose the identical split — feature,
// threshold, and gain to the last bit — on every node shape.
func TestBestSplitMatchesNaiveBitwise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(150)
		nf := 1 + rng.Intn(4)
		nClasses := 2 + rng.Intn(4)
		xs := make([][]float64, n)
		labels := make([]string, n)
		for i := range xs {
			x := make([]float64, nf)
			for j := range x {
				if j%2 == 0 {
					x[j] = rng.NormFloat64()
				} else {
					x[j] = float64(rng.Intn(5)) // duplicates: equal-value skip path
				}
			}
			xs[i] = x
			labels[i] = fmt.Sprintf("class-%d", rng.Intn(nClasses))
		}
		// Use a subset of indices, as grow() does below the root.
		var idx []int
		for i := 0; i < n; i++ {
			if rng.Intn(4) != 0 {
				idx = append(idx, i)
			}
		}
		if len(idx) < 2 {
			return true
		}
		minLeaf := 1 + rng.Intn(3)
		wf, wt, wg := bestSplitNaive(xs, labels, idx, minLeaf)
		gf, gt, gg := bestSplit(xs, labels, idx, minLeaf)
		if gf != wf || gt != wt || gg != wg {
			t.Logf("seed %d: got (%d %x %x) want (%d %x %x)", seed, gf, gt, gg, wf, wt, wg)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFitDeterministicAcrossRuns: two fits of the same data must produce
// structurally identical trees (the arena-backed scratch is invisible).
func TestFitDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n, nf := 200, 3
	xs := make([][]float64, n)
	labels := make([]string, n)
	for i := range xs {
		x := make([]float64, nf)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		xs[i] = x
		if x[0]+x[1] > 0 {
			labels[i] = "hi"
		} else {
			labels[i] = "lo"
		}
	}
	a, err := Fit(xs, labels, Options{MaxDepth: 6, MinLeafSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(xs, labels, Options{MaxDepth: 6, MinLeafSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("tree structure differs between identical fits:\n%s\nvs\n%s", a, b)
	}
}
