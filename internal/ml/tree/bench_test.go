package tree

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchLabelled(n int, seed int64) ([][]float64, []string) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	labels := make([]string, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64()}
		xs[i] = x
		labels[i] = fmt.Sprint(int(x[0])/3, int(x[1])/5)
	}
	return xs, labels
}

func BenchmarkTreeFit(b *testing.B) {
	xs, labels := benchLabelled(600, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(xs, labels, Options{MinLeafSize: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreePredict(b *testing.B) {
	xs, labels := benchLabelled(600, 2)
	c, err := Fit(xs, labels, Options{MinLeafSize: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Predict(xs[i%len(xs)]); err != nil {
			b.Fatal(err)
		}
	}
}
