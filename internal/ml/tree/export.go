package tree

import "errors"

// NodeDTO is the serializable form of one tree node.
type NodeDTO struct {
	Feature   int      `json:"feature,omitempty"`
	Threshold float64  `json:"threshold,omitempty"`
	Leaf      bool     `json:"leaf,omitempty"`
	Label     string   `json:"label,omitempty"`
	Count     int      `json:"count,omitempty"`
	Left      *NodeDTO `json:"left,omitempty"`
	Right     *NodeDTO `json:"right,omitempty"`
}

// ClassifierDTO is the serializable form of a fitted classifier, suitable
// for JSON round-tripping (model persistence, paper §4.2).
type ClassifierDTO struct {
	NFeatures int      `json:"n_features"`
	Classes   []string `json:"classes"`
	Root      *NodeDTO `json:"root"`
}

// Export converts the classifier into its serializable form.
func (c *Classifier) Export() *ClassifierDTO {
	return &ClassifierDTO{
		NFeatures: c.nFeatures,
		Classes:   append([]string(nil), c.classes...),
		Root:      exportNode(c.root),
	}
}

func exportNode(n *node) *NodeDTO {
	if n == nil {
		return nil
	}
	return &NodeDTO{
		Feature:   n.feature,
		Threshold: n.threshold,
		Leaf:      n.leaf,
		Label:     n.label,
		Count:     n.count,
		Left:      exportNode(n.left),
		Right:     exportNode(n.right),
	}
}

// FromDTO rebuilds a classifier from its serializable form.
func FromDTO(d *ClassifierDTO) (*Classifier, error) {
	if d == nil || d.Root == nil {
		return nil, errors.New("tree: empty classifier export")
	}
	if d.NFeatures < 1 {
		return nil, errors.New("tree: exported classifier has no features")
	}
	root, err := importNode(d.Root)
	if err != nil {
		return nil, err
	}
	return &Classifier{
		root:      root,
		nFeatures: d.NFeatures,
		classes:   append([]string(nil), d.Classes...),
	}, nil
}

func importNode(d *NodeDTO) (*node, error) {
	n := &node{
		feature:   d.Feature,
		threshold: d.Threshold,
		leaf:      d.Leaf,
		label:     d.Label,
		count:     d.Count,
	}
	if n.leaf {
		return n, nil
	}
	if d.Left == nil || d.Right == nil {
		return nil, errors.New("tree: internal node missing a child")
	}
	var err error
	if n.left, err = importNode(d.Left); err != nil {
		return nil, err
	}
	if n.right, err = importNode(d.Right); err != nil {
		return nil, err
	}
	return n, nil
}
