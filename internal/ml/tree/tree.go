// Package tree implements a CART-style decision-tree classifier.
//
// OPPROX uses a decision tree to predict which control-flow path (sequence
// of approximable blocks) an application takes for a given combination of
// input parameters (paper §3.4). Features are continuous; labels are
// arbitrary strings (control-flow class identifiers).
package tree

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"opprox/internal/ml/arena"
)

// Classifier is a fitted decision tree.
type Classifier struct {
	root      *node
	nFeatures int
	classes   []string
}

type node struct {
	// Internal nodes split on feature < threshold.
	feature   int
	threshold float64
	left      *node
	right     *node
	// Leaves predict a label.
	leaf  bool
	label string
	count int // training samples that reached this leaf
}

// Options controls tree growth.
type Options struct {
	MaxDepth    int // 0 means unlimited
	MinLeafSize int // minimum samples per leaf; 0 means 1
}

// ErrNoData reports an empty training set.
var ErrNoData = errors.New("tree: no training samples")

// Fit grows a classification tree on (xs, labels) using Gini impurity.
func Fit(xs [][]float64, labels []string, opts Options) (*Classifier, error) {
	if len(xs) == 0 {
		return nil, ErrNoData
	}
	if len(xs) != len(labels) {
		return nil, fmt.Errorf("tree: %d inputs but %d labels", len(xs), len(labels))
	}
	nf := len(xs[0])
	for i, x := range xs {
		if len(x) != nf {
			return nil, fmt.Errorf("tree: sample %d has %d features, want %d", i, len(x), nf)
		}
	}
	if opts.MinLeafSize < 1 {
		opts.MinLeafSize = 1
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	c := &Classifier{nFeatures: nf, classes: uniqueLabels(labels)}
	c.root = grow(xs, labels, idx, opts, 0)
	return c, nil
}

func uniqueLabels(labels []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, l := range labels {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

func grow(xs [][]float64, labels []string, idx []int, opts Options, depth int) *node {
	maj, pure := majority(labels, idx)
	if pure || len(idx) < 2*opts.MinLeafSize || (opts.MaxDepth > 0 && depth >= opts.MaxDepth) {
		return &node{leaf: true, label: maj, count: len(idx)}
	}
	feat, thr, gain := bestSplit(xs, labels, idx, opts.MinLeafSize)
	if gain <= 1e-12 {
		// No immediate Gini gain, but the node is impure. Greedy CART is
		// blind to parity-style structure (e.g. XOR) whose first split has
		// zero gain, so fall back to a median split on any non-constant
		// feature and let deeper splits find the structure. Recursion
		// terminates because both children are strictly smaller.
		feat, thr = fallbackSplit(xs, idx, opts.MinLeafSize)
		if feat < 0 {
			return &node{leaf: true, label: maj, count: len(idx)}
		}
	}
	var li, ri []int
	for _, i := range idx {
		if xs[i][feat] < thr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &node{leaf: true, label: maj, count: len(idx)}
	}
	return &node{
		feature:   feat,
		threshold: thr,
		left:      grow(xs, labels, li, opts, depth+1),
		right:     grow(xs, labels, ri, opts, depth+1),
	}
}

// fallbackSplit picks a median equal-frequency split on the first feature
// with more than one distinct value such that both sides satisfy minLeaf.
// Returns feature -1 when no such split exists.
func fallbackSplit(xs [][]float64, idx []int, minLeaf int) (int, float64) {
	nf := len(xs[idx[0]])
	order := make([]int, len(idx))
	for f := 0; f < nf; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return xs[order[a]][f] < xs[order[b]][f] })
		// Try the most balanced valid cut point first, then widen out.
		mid := len(order) / 2
		for off := 0; off < len(order); off++ {
			for _, pos := range []int{mid + off, mid - off} {
				if pos < 1 || pos >= len(order) {
					continue
				}
				lo, hi := xs[order[pos-1]][f], xs[order[pos]][f]
				if lo == hi {
					continue
				}
				if pos < minLeaf || len(order)-pos < minLeaf {
					continue
				}
				return f, (lo + hi) / 2
			}
		}
	}
	return -1, 0
}

func majority(labels []string, idx []int) (string, bool) {
	counts := map[string]int{}
	for _, i := range idx {
		counts[labels[i]]++
	}
	best, bestN := "", -1
	for l, n := range counts {
		if n > bestN || (n == bestN && l < best) {
			best, bestN = l, n
		}
	}
	return best, len(counts) == 1
}

// giniCounts computes Gini impurity from slice-indexed class counts,
// reducing in index order. Class indices are assigned in sorted label
// order: float subtraction is not associative, so any other reduction
// order (the original implementation iterated a counts map keyed by label)
// could perturb the low bits of split scores — and with them, tie-breaks
// in bestSplit.
func giniCounts(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, n := range counts {
		p := float64(n) / float64(total)
		g -= p * p
	}
	return g
}

// bestSplit scans every feature and every midpoint between consecutive
// distinct values, maximizing Gini gain. Class labels are interned to
// dense integer ids once per node, so the inner sweep touches only flat
// int slices (drawn from the shared arena) — no map traffic per candidate
// threshold.
func bestSplit(xs [][]float64, labels []string, idx []int, minLeaf int) (feat int, thr, gain float64) {
	total := len(idx)
	id := make(map[string]int, 8)
	var classLabels []string
	for _, i := range idx {
		if _, ok := id[labels[i]]; !ok {
			id[labels[i]] = 0
			classLabels = append(classLabels, labels[i])
		}
	}
	sort.Strings(classLabels)
	for c, l := range classLabels {
		id[l] = c
	}
	nc := len(classLabels)

	countsp := arena.Ints(3 * nc)
	defer arena.PutInts(countsp)
	counts := (*countsp)[:3*nc]
	parentCounts, leftCounts, rightCounts := counts[:nc], counts[nc:2*nc], counts[2*nc:]
	for c := range parentCounts {
		parentCounts[c] = 0
	}

	clsp := arena.Ints(len(labels))
	defer arena.PutInts(clsp)
	cls := (*clsp)[:len(labels)]
	for _, i := range idx {
		c := id[labels[i]]
		cls[i] = c
		parentCounts[c]++
	}

	parentGini := giniCounts(parentCounts, total)
	bestGain := 0.0
	bestFeat, bestThr := -1, 0.0
	nf := len(xs[idx[0]])
	orderp := arena.Ints(total)
	defer arena.PutInts(orderp)
	order := (*orderp)[:total]
	for f := 0; f < nf; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return xs[order[a]][f] < xs[order[b]][f] })
		for c := 0; c < nc; c++ {
			leftCounts[c] = 0
			rightCounts[c] = parentCounts[c]
		}
		for pos := 0; pos < total-1; pos++ {
			c := cls[order[pos]]
			leftCounts[c]++
			rightCounts[c]--
			nl, nr := pos+1, total-pos-1
			if xs[order[pos]][f] == xs[order[pos+1]][f] {
				continue // can't split between equal values
			}
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			g := parentGini -
				(float64(nl)*giniCounts(leftCounts, nl)+float64(nr)*giniCounts(rightCounts, nr))/float64(total)
			if g > bestGain {
				bestGain = g
				bestFeat = f
				bestThr = (xs[order[pos]][f] + xs[order[pos+1]][f]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return 0, 0, 0
	}
	return bestFeat, bestThr, bestGain
}

// Predict returns the label for x.
func (c *Classifier) Predict(x []float64) (string, error) {
	if len(x) != c.nFeatures {
		return "", fmt.Errorf("tree: input has %d features, tree expects %d", len(x), c.nFeatures)
	}
	n := c.root
	for !n.leaf {
		if x[n.feature] < n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label, nil
}

// Classes returns the sorted set of labels seen at training time.
func (c *Classifier) Classes() []string {
	out := make([]string, len(c.classes))
	copy(out, c.classes)
	return out
}

// Accuracy scores the classifier on a labelled set.
func (c *Classifier) Accuracy(xs [][]float64, labels []string) (float64, error) {
	if len(xs) != len(labels) {
		return 0, fmt.Errorf("tree: %d inputs but %d labels", len(xs), len(labels))
	}
	if len(xs) == 0 {
		return math.NaN(), nil
	}
	hit := 0
	for i, x := range xs {
		got, err := c.Predict(x)
		if err != nil {
			return 0, err
		}
		if got == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(xs)), nil
}

// Depth returns the depth of the fitted tree (a single leaf has depth 0).
func (c *Classifier) Depth() int { return depthOf(c.root) }

func depthOf(n *node) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// String renders the tree structure for debugging.
func (c *Classifier) String() string {
	var sb strings.Builder
	var walk func(n *node, indent string)
	walk = func(n *node, indent string) {
		if n.leaf {
			fmt.Fprintf(&sb, "%sleaf %q (n=%d)\n", indent, n.label, n.count)
			return
		}
		fmt.Fprintf(&sb, "%sx%d < %.6g ?\n", indent, n.feature, n.threshold)
		walk(n.left, indent+"  ")
		walk(n.right, indent+"  ")
	}
	walk(c.root, "")
	return sb.String()
}
