package tree

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitEmpty(t *testing.T) {
	if _, err := Fit(nil, nil, Options{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

func TestFitMismatchedLengths(t *testing.T) {
	if _, err := Fit([][]float64{{1}}, []string{"a", "b"}, Options{}); err == nil {
		t.Fatal("want length mismatch error")
	}
}

func TestFitRagged(t *testing.T) {
	if _, err := Fit([][]float64{{1, 2}, {3}}, []string{"a", "b"}, Options{}); err == nil {
		t.Fatal("want ragged error")
	}
}

func TestSingleClass(t *testing.T) {
	c, err := Fit([][]float64{{1}, {2}, {3}}, []string{"a", "a", "a"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Predict([]float64{99})
	if err != nil {
		t.Fatal(err)
	}
	if got != "a" {
		t.Fatalf("Predict = %q, want a", got)
	}
	if c.Depth() != 0 {
		t.Fatalf("Depth = %d, want 0", c.Depth())
	}
}

func TestAxisAlignedSplit(t *testing.T) {
	// Perfectly separable on feature 0 at threshold 5.
	var xs [][]float64
	var labels []string
	for i := 0; i < 20; i++ {
		xs = append(xs, []float64{float64(i), 0})
		if i < 10 {
			labels = append(labels, "low")
		} else {
			labels = append(labels, "high")
		}
	}
	c, err := Fit(xs, labels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := c.Accuracy(xs, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("training accuracy = %g, want 1", acc)
	}
	if got, _ := c.Predict([]float64{3, 0}); got != "low" {
		t.Fatalf("Predict(3) = %q", got)
	}
	if got, _ := c.Predict([]float64{17, 0}); got != "high" {
		t.Fatalf("Predict(17) = %q", got)
	}
}

func TestXORNeedsDepthTwo(t *testing.T) {
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []string{"a", "b", "b", "a"}
	// Replicate so splits have mass.
	var XS [][]float64
	var LS []string
	for r := 0; r < 5; r++ {
		XS = append(XS, xs...)
		LS = append(LS, labels...)
	}
	c, err := Fit(XS, LS, Options{})
	if err != nil {
		t.Fatal(err)
	}
	acc, _ := c.Accuracy(XS, LS)
	if acc != 1 {
		t.Fatalf("XOR accuracy = %g, want 1", acc)
	}
	if c.Depth() < 2 {
		t.Fatalf("XOR depth = %d, want >= 2", c.Depth())
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var xs [][]float64
	var labels []string
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		xs = append(xs, x)
		if (x[0] > 0.5) != (x[1] > 0.5) {
			labels = append(labels, "a")
		} else {
			labels = append(labels, "b")
		}
	}
	c, err := Fit(xs, labels, Options{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Depth() > 1 {
		t.Fatalf("Depth = %d, want <= 1", c.Depth())
	}
}

func TestMinLeafSize(t *testing.T) {
	var xs [][]float64
	var labels []string
	for i := 0; i < 10; i++ {
		xs = append(xs, []float64{float64(i)})
		if i == 0 {
			labels = append(labels, "rare")
		} else {
			labels = append(labels, "common")
		}
	}
	c, err := Fit(xs, labels, Options{MinLeafSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The single "rare" sample cannot form its own leaf.
	if got, _ := c.Predict([]float64{0}); got != "common" {
		t.Fatalf("Predict(0) = %q, want common (min leaf size)", got)
	}
}

func TestPredictWrongWidth(t *testing.T) {
	c, err := Fit([][]float64{{1, 2}, {3, 4}}, []string{"a", "b"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Predict([]float64{1}); err == nil {
		t.Fatal("want width error")
	}
}

func TestClasses(t *testing.T) {
	c, err := Fit([][]float64{{1}, {2}, {3}}, []string{"b", "a", "b"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := c.Classes()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Classes = %v", got)
	}
	got[0] = "mutated"
	if c.Classes()[0] != "a" {
		t.Fatal("Classes must return a copy")
	}
}

func TestConstantFeatures(t *testing.T) {
	// All features identical: tree must not loop, predicts majority.
	xs := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	labels := []string{"a", "a", "b"}
	c, err := Fit(xs, labels, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Predict([]float64{1, 1}); got != "a" {
		t.Fatalf("Predict = %q, want majority a", got)
	}
}

func TestStringSmoke(t *testing.T) {
	c, _ := Fit([][]float64{{0}, {1}}, []string{"a", "b"}, Options{})
	if c.String() == "" {
		t.Fatal("String should render something")
	}
}

// Property: a tree fit on linearly separable data classifies its training
// set perfectly.
func TestSeparableProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		thr := rng.Float64()*10 - 5
		var xs [][]float64
		var labels []string
		for i := 0; i < 50; i++ {
			v := rng.Float64()*10 - 5
			if v == thr {
				continue
			}
			xs = append(xs, []float64{v, rng.NormFloat64()})
			if v < thr {
				labels = append(labels, "L")
			} else {
				labels = append(labels, "R")
			}
		}
		if len(xs) == 0 {
			return true
		}
		c, err := Fit(xs, labels, Options{})
		if err != nil {
			return false
		}
		acc, err := c.Accuracy(xs, labels)
		return err == nil && acc == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
