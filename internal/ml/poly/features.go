// Package poly implements polynomial regression in the style OPPROX uses
// (paper §3.6–3.7): full polynomial feature expansion with interaction
// terms, ordinary/ridge least squares, R² scoring, k-fold cross validation,
// and an automatic degree search that raises the degree until a target
// cross-validated R² is reached.
package poly

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"opprox/internal/ml/linalg"
)

// Term is one monomial in the expansion: Powers[i] is the exponent of input
// feature i. The constant term has all zero powers.
type Term struct {
	Powers []int
}

// Degree returns the total degree of the term.
func (t Term) Degree() int {
	d := 0
	for _, p := range t.Powers {
		d += p
	}
	return d
}

// String renders the term like "x0^2*x2".
func (t Term) String() string {
	var parts []string
	for i, p := range t.Powers {
		switch {
		case p == 1:
			parts = append(parts, fmt.Sprintf("x%d", i))
		case p > 1:
			parts = append(parts, fmt.Sprintf("x%d^%d", i, p))
		}
	}
	if len(parts) == 0 {
		return "1"
	}
	return strings.Join(parts, "*")
}

// Eval computes the term's value at x.
func (t Term) Eval(x []float64) float64 {
	v := 1.0
	for i, p := range t.Powers {
		for k := 0; k < p; k++ {
			v *= x[i]
		}
	}
	return v
}

// Expansion enumerates all monomials over nFeatures inputs with total
// degree <= degree, in a deterministic order: by total degree, then
// lexicographically by powers. The constant term comes first.
type Expansion struct {
	NFeatures int
	MaxDegree int
	Terms     []Term

	// compiled is the flat index/exponent program the fast paths evaluate.
	// It is built lazily (and exactly once) so expansions reconstructed
	// from persisted JSON — which never sees unexported fields — compile
	// themselves on first use.
	compileOnce sync.Once
	compiled    program
}

// prog returns the compiled form of the expansion, building it on first
// use. Safe for concurrent callers.
func (e *Expansion) prog() *program {
	e.compileOnce.Do(func() { e.compiled = compileTerms(e.Terms) })
	return &e.compiled
}

// NewExpansion builds the monomial basis for nFeatures inputs up to the
// given total degree.
func NewExpansion(nFeatures, degree int) (*Expansion, error) {
	return NewExpansionCapped(nFeatures, degree, nil)
}

// NewExpansionCapped is NewExpansion with per-feature exponent caps:
// powers[i] never exceeds caps[i] (a negative cap means unlimited). A
// feature that takes only k distinct values in the training data can
// constrain at most a degree k-1 polynomial along its axis — higher powers
// are collinear with lower ones at the sample points and oscillate freely
// between them, so callers cap exponents at k-1.
func NewExpansionCapped(nFeatures, degree int, caps []int) (*Expansion, error) {
	if nFeatures < 1 {
		return nil, fmt.Errorf("poly: need at least 1 feature, got %d", nFeatures)
	}
	if degree < 0 {
		return nil, fmt.Errorf("poly: negative degree %d", degree)
	}
	if caps != nil && len(caps) != nFeatures {
		return nil, fmt.Errorf("poly: %d caps for %d features", len(caps), nFeatures)
	}
	var terms []Term
	powers := make([]int, nFeatures)
	var gen func(idx, remaining int)
	gen = func(idx, remaining int) {
		if idx == nFeatures {
			t := Term{Powers: make([]int, nFeatures)}
			copy(t.Powers, powers)
			terms = append(terms, t)
			return
		}
		limit := remaining
		if caps != nil && caps[idx] >= 0 && caps[idx] < limit {
			limit = caps[idx]
		}
		for p := 0; p <= limit; p++ {
			powers[idx] = p
			gen(idx+1, remaining-p)
		}
		powers[idx] = 0
	}
	gen(0, degree)
	sort.Slice(terms, func(i, j int) bool {
		di, dj := terms[i].Degree(), terms[j].Degree()
		if di != dj {
			return di < dj
		}
		for k := range terms[i].Powers {
			if terms[i].Powers[k] != terms[j].Powers[k] {
				return terms[i].Powers[k] > terms[j].Powers[k]
			}
		}
		return false
	})
	return &Expansion{NFeatures: nFeatures, MaxDegree: degree, Terms: terms}, nil
}

// NumTerms returns the size of the expanded basis.
func (e *Expansion) NumTerms() int { return len(e.Terms) }

// Transform maps one input vector into the monomial basis.
func (e *Expansion) Transform(x []float64) ([]float64, error) {
	if len(x) != e.NFeatures {
		return nil, fmt.Errorf("poly: input has %d features, expansion expects %d", len(x), e.NFeatures)
	}
	out := make([]float64, len(e.Terms))
	for i, t := range e.Terms {
		out[i] = t.Eval(x)
	}
	return out, nil
}

// TransformAll maps every row of xs into the monomial basis, writing the
// flat row-major feature matrix into dst (reshaped in place, reusing its
// backing storage when possible). Rows are evaluated through the compiled
// program; the values are bit-for-bit those of Transform.
func (e *Expansion) TransformAll(dst *linalg.Matrix, xs [][]float64) error {
	p := e.prog()
	nt := len(e.Terms)
	dst.EnsureShape(len(xs), nt)
	for i, x := range xs {
		if len(x) != e.NFeatures {
			return fmt.Errorf("poly: input %d has %d features, expansion expects %d", i, len(x), e.NFeatures)
		}
		p.evalInto(dst.Data[i*nt:(i+1)*nt], x)
	}
	return nil
}
