package poly

import (
	"math/rand"
	"testing"

	"opprox/internal/ml/linalg"
)

func benchData(n, nf int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := make([]float64, nf)
		for j := range x {
			x[j] = rng.Float64() * 4
		}
		xs[i] = x
		ys[i] = x[0]*x[0] + 2*x[1] + rng.NormFloat64()*0.1
	}
	return xs, ys
}

func BenchmarkFitDegree2(b *testing.B) {
	xs, ys := benchData(300, 5, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(xs, ys, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitDegree3(b *testing.B) {
	xs, ys := benchData(400, 5, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(xs, ys, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	xs, ys := benchData(300, 5, 3)
	m, err := Fit(xs, ys, 3)
	if err != nil {
		b.Fatal(err)
	}
	probe := xs[17]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(probe)
	}
}

func BenchmarkPredictAll(b *testing.B) {
	xs, ys := benchData(300, 5, 3)
	m, err := Fit(xs, ys, 3)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictInto(dst, xs)
	}
}

func BenchmarkTransformAll(b *testing.B) {
	xs, _ := benchData(300, 5, 6)
	e, err := NewExpansion(5, 3)
	if err != nil {
		b.Fatal(err)
	}
	var dst linalg.Matrix
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.TransformAll(&dst, xs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrossValidateParallel(b *testing.B) {
	xs, ys := benchData(400, 4, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(8))
		if _, err := CrossValidateParallel(xs, ys, 2, 5, rng, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAutoFit(b *testing.B) {
	xs, ys := benchData(250, 4, 4)
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AutoFit(xs, ys, 0.9, 3, 5, rng); err != nil {
			b.Fatal(err)
		}
	}
}
