package poly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"opprox/internal/ml/linalg"
)

// This file pins the fast-path kernels bit-for-bit against the
// interpretive slow path the package shipped with. The slow path is still
// present (Term.Eval, Expansion.Transform), so every property is checked
// against live code, not a frozen fixture: compiled term programs,
// TransformAll, design-matrix prediction reuse, and parallel
// cross-validation must be pure loop reorderings — never arithmetic
// changes.

func randomDataset(rng *rand.Rand, n, nf int) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := make([]float64, nf)
		for j := range x {
			// A mix of continuous and small-integer features exercises the
			// distinct-value exponent caps.
			if j%2 == 0 {
				x[j] = rng.Float64()*4 - 2
			} else {
				x[j] = float64(rng.Intn(3))
			}
		}
		xs[i] = x
		ys[i] = x[0]*x[0] - 3*x[0] + rng.NormFloat64()*0.2
	}
	return xs, ys
}

// slowPredict is the pre-compilation Predict: a fresh standardization
// buffer and interpretive Term.Eval per term.
func slowPredict(m *Model, x []float64) float64 {
	buf := make([]float64, len(x))
	standardize(buf, x, m.Mean, m.Scale)
	s := 0.0
	for i, t := range m.Expansion.Terms {
		s += m.Coeffs[i] * t.Eval(buf)
	}
	return s
}

func TestCompiledTermsMatchEvalBitwise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nf := 1 + rng.Intn(5)
		deg := rng.Intn(5)
		e, err := NewExpansion(nf, deg)
		if err != nil {
			return false
		}
		p := e.prog()
		x := make([]float64, nf)
		for j := range x {
			x[j] = rng.NormFloat64() * 10
		}
		vals := make([]float64, e.NumTerms())
		p.evalInto(vals, x)
		for i, term := range e.Terms {
			if got, want := vals[i], term.Eval(x); got != want {
				t.Logf("seed %d term %d: compiled %x, Eval %x", seed, i, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformAllMatchesTransformBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		nf := 1 + rng.Intn(4)
		e, err := NewExpansion(nf, 1+rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		xs := make([][]float64, 5+rng.Intn(20))
		for i := range xs {
			x := make([]float64, nf)
			for j := range x {
				x[j] = rng.NormFloat64()
			}
			xs[i] = x
		}
		var m linalg.Matrix
		if err := e.TransformAll(&m, xs); err != nil {
			t.Fatal(err)
		}
		for i, x := range xs {
			row, err := e.Transform(x)
			if err != nil {
				t.Fatal(err)
			}
			for j, want := range row {
				if got := m.Data[i*m.Cols+j]; got != want {
					t.Fatalf("trial %d row %d col %d: %x != %x", trial, i, j, got, want)
				}
			}
		}
	}
}

func TestTransformAllBadRow(t *testing.T) {
	e, _ := NewExpansion(2, 2)
	var m linalg.Matrix
	if err := e.TransformAll(&m, [][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("want error for ragged row")
	}
}

// TestPredictMatchesSlowPathBitwise: the compiled, pooled Predict computes
// exactly the slow path's sum on fitted models.
func TestPredictMatchesSlowPathBitwise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs, ys := randomDataset(rng, 60+rng.Intn(60), 2+rng.Intn(3))
		m, err := Fit(xs, ys, 1+rng.Intn(3))
		if err != nil {
			return true // e.g. too few samples for the basis; not this test's concern
		}
		for trial := 0; trial < 10; trial++ {
			x := xs[rng.Intn(len(xs))]
			if m.Predict(x) != slowPredict(m, x) {
				return false
			}
		}
		// Batched prediction agrees with per-row prediction.
		batch := m.PredictAll(xs)
		for i, x := range xs {
			if batch[i] != slowPredict(m, x) {
				return false
			}
		}
		res := m.Residuals(xs, ys)
		for i := range res {
			if res[i] != ys[i]-batch[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFitTrainR2MatchesSlowPath: TrainR2 is now computed from the design
// matrix rows instead of re-expanding every sample; the value must be
// bit-for-bit what the slow path computed.
func TestFitTrainR2MatchesSlowPath(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		xs, ys := randomDataset(rng, 80, 3)
		m, err := Fit(xs, ys, 2)
		if err != nil {
			t.Fatal(err)
		}
		pred := make([]float64, len(xs))
		for i, x := range xs {
			pred[i] = slowPredict(m, x)
		}
		if want := R2(ys, pred); m.TrainR2 != want {
			t.Fatalf("seed %d: TrainR2 = %x, slow path %x", seed, m.TrainR2, want)
		}
	}
}

// slowCrossValidate is the original serial k-fold loop, kept as the oracle
// for the parallel implementation.
func slowCrossValidate(xs [][]float64, ys []float64, degree, k int, rng *rand.Rand) (float64, error) {
	n := len(xs)
	perm := rng.Perm(n)
	scores := make([]float64, 0, k)
	for fold := 0; fold < k; fold++ {
		var trX, teX [][]float64
		var trY, teY []float64
		for i, idx := range perm {
			if i%k == fold {
				teX = append(teX, xs[idx])
				teY = append(teY, ys[idx])
			} else {
				trX = append(trX, xs[idx])
				trY = append(trY, ys[idx])
			}
		}
		m, err := Fit(trX, trY, degree)
		if err != nil {
			return 0, err
		}
		scores = append(scores, R2(teY, m.PredictAll(teX)))
	}
	sum := 0.0
	for _, s := range scores {
		sum += s
	}
	return sum / float64(len(scores)), nil
}

// TestParallelCVMatchesSerialBitwise: every worker count from 1 to 8
// produces byte-identical scores to the serial reference loop.
func TestParallelCVMatchesSerialBitwise(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		xs, ys := randomDataset(rng, 90, 3)
		want, err := slowCrossValidate(xs, ys, 2, 5, rand.New(rand.NewSource(seed+100)))
		if err != nil {
			t.Fatal(err)
		}
		for workers := 1; workers <= 8; workers++ {
			got, err := CrossValidateParallel(xs, ys, 2, 5, rand.New(rand.NewSource(seed+100)), workers)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed %d workers %d: CV = %x, serial %x", seed, workers, got, want)
			}
		}
	}
}

// slowOutOfFoldResiduals is the original serial implementation, kept as
// the oracle for the fold-parallel one.
func slowOutOfFoldResiduals(xs [][]float64, ys []float64, degree, k int, rng *rand.Rand) ([]float64, error) {
	n := len(xs)
	perm := rng.Perm(n)
	res := make([]float64, n)
	for fold := 0; fold < k; fold++ {
		var trX [][]float64
		var trY []float64
		var teIdx []int
		for i, idx := range perm {
			if i%k == fold {
				teIdx = append(teIdx, idx)
			} else {
				trX = append(trX, xs[idx])
				trY = append(trY, ys[idx])
			}
		}
		m, err := Fit(trX, trY, degree)
		if err != nil {
			return nil, err
		}
		for _, idx := range teIdx {
			res[idx] = ys[idx] - slowPredict(m, xs[idx])
		}
	}
	return res, nil
}

func TestOutOfFoldResidualsMatchSerialBitwise(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		xs, ys := randomDataset(rng, 70, 2)
		want, err := slowOutOfFoldResiduals(xs, ys, 2, 5, rand.New(rand.NewSource(seed+7)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := OutOfFoldResiduals(xs, ys, 2, 5, rand.New(rand.NewSource(seed+7)))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d residual %d: %x != %x", seed, i, got[i], want[i])
			}
		}
	}
}

// TestAutoFitDeterministicAcrossRuns: AutoFit consumes the rng only for
// fold permutations, so identical seeds give identical models even though
// folds fit concurrently.
func TestAutoFitDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	xs, ys := randomDataset(rng, 120, 3)
	a, err := AutoFit(xs, ys, 0.9, 3, 5, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := AutoFit(xs, ys, 0.9, 3, 5, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Degree != b.Degree || a.CVScore != b.CVScore || a.Achieved != b.Achieved {
		t.Fatalf("run mismatch: (%d %x %v) vs (%d %x %v)", a.Degree, a.CVScore, a.Achieved, b.Degree, b.CVScore, b.Achieved)
	}
	for i := range a.Model.Coeffs {
		if a.Model.Coeffs[i] != b.Model.Coeffs[i] {
			t.Fatalf("coeff %d: %x != %x", i, a.Model.Coeffs[i], b.Model.Coeffs[i])
		}
	}
}

// TestPredictZeroAllocs asserts the headline number: steady-state Predict
// performs zero allocations.
func TestPredictZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs, ys := randomDataset(rng, 100, 4)
	m, err := Fit(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	probe := xs[11]
	m.Predict(probe) // compile + warm the pool outside the measurement
	allocs := testing.AllocsPerRun(200, func() { m.Predict(probe) })
	if allocs > 0 {
		t.Fatalf("Predict allocates %.2f/op, want 0", allocs)
	}
}

// TestPredictIntoZeroAllocs: batched prediction with caller-owned dst is
// allocation-free too.
func TestPredictIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs, ys := randomDataset(rng, 100, 4)
	m, err := Fit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, len(xs))
	m.PredictInto(dst, xs)
	allocs := testing.AllocsPerRun(100, func() { m.PredictInto(dst, xs) })
	if allocs > 0 {
		t.Fatalf("PredictInto allocates %.2f/op, want 0", allocs)
	}
}

func TestPredictIntoBadDst(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs, ys := randomDataset(rng, 40, 2)
	m, err := Fit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for dst length mismatch")
		}
	}()
	m.PredictInto(make([]float64, 3), xs)
}

// TestDistinctCapsMatchesMapSemantics: the linear-probe rewrite must agree
// with a map-based distinct count, including the NaN-never-equal corner.
func TestDistinctCapsMatchesMapSemantics(t *testing.T) {
	mapCaps := func(xs [][]float64, maxDiscrete int) []int {
		if len(xs) == 0 {
			return nil
		}
		nf := len(xs[0])
		caps := make([]int, nf)
		for j := 0; j < nf; j++ {
			seen := map[float64]bool{}
			for _, x := range xs {
				if j >= len(x) {
					continue
				}
				seen[x[j]] = true
				if len(seen) > maxDiscrete {
					break
				}
			}
			switch {
			case len(seen) == 0, len(seen) > maxDiscrete:
				caps[j] = -1
			default:
				caps[j] = len(seen) - 1
			}
		}
		return caps
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, nf := 1+rng.Intn(60), 1+rng.Intn(4)
		xs := make([][]float64, n)
		for i := range xs {
			x := make([]float64, nf)
			for j := range x {
				switch rng.Intn(4) {
				case 0:
					x[j] = float64(rng.Intn(3))
				case 1:
					x[j] = rng.NormFloat64()
				default:
					x[j] = float64(rng.Intn(20))
				}
			}
			xs[i] = x
		}
		md := 1 + rng.Intn(14)
		got, want := DistinctCaps(xs, md), mapCaps(xs, md)
		for j := range want {
			if got[j] != want[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
