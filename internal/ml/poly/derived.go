package poly

import "math"

// log1pAbs is the magnitude-compression transform of the derived
// feature space: symmetric in sign, 0 at 0, near-linear for small
// values, logarithmic for large ones.
func log1pAbs(v float64) float64 { return math.Log1p(math.Abs(v)) }

// SpaceExpansion derives interaction and shape features from a raw
// feature vector before MIC filtering and polynomial fitting (the
// expanded feature space of Nikkhah et al., PAPERS.md). Where the
// monomial Expansion operates after standardization and inside one
// model, SpaceExpansion widens the raw inputs themselves, so the MIC
// filter can keep a product or log term whose raw factors it would have
// dropped individually — the degree search then works over a basis that
// already contains the informative shapes.
//
// The derived layout is deterministic and depends only on NRaw:
//
//	[x_0 .. x_{n-1},  log1p|x_0| .. log1p|x_{n-1}|,  x_i*x_j for i<j]
//
// raw features first (so an expansion is always a superset of the raw
// space), then the log-compressed magnitudes (heavy-tailed sizes become
// near-linear), then the pairwise products in (i, j) lexicographic
// order.
type SpaceExpansion struct {
	// NRaw is the raw feature count the expansion derives from.
	NRaw int
}

// Dim returns the derived feature count: n raw + n logs + n(n-1)/2
// pairwise products.
func (e SpaceExpansion) Dim() int {
	return 2*e.NRaw + e.NRaw*(e.NRaw-1)/2
}

// ExpandInto appends the derived features of x to dst and returns it.
// len(x) must equal NRaw.
func (e SpaceExpansion) ExpandInto(dst, x []float64) []float64 {
	dst = append(dst, x...)
	for _, v := range x {
		dst = append(dst, log1pAbs(v))
	}
	for i := 0; i < e.NRaw; i++ {
		for j := i + 1; j < e.NRaw; j++ {
			dst = append(dst, x[i]*x[j])
		}
	}
	return dst
}

// Expand returns the derived features of x as a fresh slice.
func (e SpaceExpansion) Expand(x []float64) []float64 {
	return e.ExpandInto(make([]float64, 0, e.Dim()), x)
}

// ExpandRows expands every row of xs into fresh slices — the training
// path, whose design matrices retain the rows.
func (e SpaceExpansion) ExpandRows(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = e.Expand(x)
	}
	return out
}
