package poly

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"opprox/internal/ml/linalg"
)

// Model is a fitted polynomial regression model.
type Model struct {
	Expansion *Expansion
	Coeffs    []float64
	// Standardization applied to raw inputs before expansion. Fitting on
	// standardized features keeps high-degree expansions well conditioned.
	Mean, Scale []float64
	// TrainR2 is the coefficient of determination on the training set.
	TrainR2 float64
}

// ErrTooFewSamples reports that there are fewer samples than basis terms.
var ErrTooFewSamples = errors.New("poly: fewer samples than basis terms")

// Fit fits a polynomial of the given degree to (xs, ys) by least squares,
// falling back to a lightly regularized ridge solve when the expanded
// design matrix is rank deficient. Per-feature exponents are automatically
// capped at (#distinct values - 1) observed in xs — higher powers are
// collinear at the sample points and oscillate freely between them.
func Fit(xs [][]float64, ys []float64, degree int) (*Model, error) {
	return FitRidge(xs, ys, degree, 0)
}

// DistinctCaps returns, per feature column, the exponent cap
// (#distinct values - 1), with -1 (unlimited) for columns that look
// continuous (more than maxDiscrete distinct values).
func DistinctCaps(xs [][]float64, maxDiscrete int) []int {
	if len(xs) == 0 {
		return nil
	}
	nf := len(xs[0])
	caps := make([]int, nf)
	for j := 0; j < nf; j++ {
		seen := map[float64]bool{}
		for _, x := range xs {
			if j >= len(x) {
				continue // ragged row: Fit reports the error later
			}
			seen[x[j]] = true
			if len(seen) > maxDiscrete {
				break
			}
		}
		if len(seen) == 0 {
			caps[j] = -1
			continue
		}
		if len(seen) > maxDiscrete {
			caps[j] = -1
		} else {
			caps[j] = len(seen) - 1
		}
	}
	return caps
}

// FitRidge is Fit with an explicit ridge penalty lambda (0 = OLS first,
// ridge fallback).
func FitRidge(xs [][]float64, ys []float64, degree int, lambda float64) (*Model, error) {
	if len(xs) == 0 {
		return nil, errors.New("poly: no training samples")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("poly: %d inputs but %d targets", len(xs), len(ys))
	}
	nf := len(xs[0])
	exp, err := NewExpansionCapped(nf, degree, DistinctCaps(xs, 12))
	if err != nil {
		return nil, err
	}
	if len(xs) < exp.NumTerms() {
		return nil, fmt.Errorf("%w: %d samples for %d terms (degree %d, %d features)",
			ErrTooFewSamples, len(xs), exp.NumTerms(), degree, nf)
	}
	mean, scale := standardization(xs)
	design := linalg.NewMatrix(len(xs), exp.NumTerms())
	buf := make([]float64, nf)
	for i, x := range xs {
		if len(x) != nf {
			return nil, fmt.Errorf("poly: sample %d has %d features, want %d", i, len(x), nf)
		}
		standardize(buf, x, mean, scale)
		row, err := exp.Transform(buf)
		if err != nil {
			return nil, err
		}
		copy(design.Data[i*design.Cols:(i+1)*design.Cols], row)
	}
	var coeffs []float64
	if lambda > 0 {
		coeffs, err = linalg.RidgeSolve(design, ys, lambda)
	} else {
		coeffs, err = linalg.LeastSquares(design, ys)
		if errors.Is(err, linalg.ErrSingular) {
			coeffs, err = linalg.RidgeSolve(design, ys, 1e-8)
		}
	}
	if err != nil {
		return nil, err
	}
	m := &Model{Expansion: exp, Coeffs: coeffs, Mean: mean, Scale: scale}
	pred := make([]float64, len(xs))
	for i, x := range xs {
		pred[i] = m.Predict(x)
	}
	m.TrainR2 = R2(ys, pred)
	return m, nil
}

// Predict evaluates the model at x.
func (m *Model) Predict(x []float64) float64 {
	buf := make([]float64, len(x))
	standardize(buf, x, m.Mean, m.Scale)
	s := 0.0
	for i, t := range m.Expansion.Terms {
		s += m.Coeffs[i] * t.Eval(buf)
	}
	return s
}

// PredictAll evaluates the model at every row of xs.
func (m *Model) PredictAll(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = m.Predict(x)
	}
	return out
}

// Residuals returns y - prediction for every training pair supplied.
func (m *Model) Residuals(xs [][]float64, ys []float64) []float64 {
	res := make([]float64, len(xs))
	for i, x := range xs {
		res[i] = ys[i] - m.Predict(x)
	}
	return res
}

func standardization(xs [][]float64) (mean, scale []float64) {
	nf := len(xs[0])
	mean = make([]float64, nf)
	scale = make([]float64, nf)
	for _, x := range xs {
		for j, v := range x {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(xs))
	}
	for _, x := range xs {
		for j, v := range x {
			d := v - mean[j]
			scale[j] += d * d
		}
	}
	for j := range scale {
		scale[j] = math.Sqrt(scale[j] / float64(len(xs)))
		if scale[j] < 1e-12 {
			scale[j] = 1 // constant feature: leave centered at zero
		}
	}
	return mean, scale
}

func standardize(dst, x, mean, scale []float64) {
	for j, v := range x {
		dst[j] = (v - mean[j]) / scale[j]
	}
}

// R2 returns the coefficient of determination of pred against truth.
// A perfect prediction scores 1; predicting the mean scores 0. When the
// truth is constant, R2 returns 1 if predictions match it and 0 otherwise.
func R2(truth, pred []float64) float64 {
	if len(truth) != len(pred) || len(truth) == 0 {
		return math.NaN()
	}
	mean := 0.0
	for _, v := range truth {
		mean += v
	}
	mean /= float64(len(truth))
	ssRes, ssTot := 0.0, 0.0
	for i, v := range truth {
		d := v - pred[i]
		ssRes += d * d
		m := v - mean
		ssTot += m * m
	}
	if ssTot < 1e-30 {
		if ssRes < 1e-12 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// CrossValidate runs k-fold cross validation at the given degree and
// returns the mean out-of-fold R². Folds are assigned by a deterministic
// shuffle of the provided rng.
func CrossValidate(xs [][]float64, ys []float64, degree, k int, rng *rand.Rand) (float64, error) {
	if k < 2 {
		return 0, fmt.Errorf("poly: k-fold needs k >= 2, got %d", k)
	}
	n := len(xs)
	if n < k {
		return 0, fmt.Errorf("poly: %d samples for %d folds", n, k)
	}
	perm := rng.Perm(n)
	scores := make([]float64, 0, k)
	for fold := 0; fold < k; fold++ {
		var trX, teX [][]float64
		var trY, teY []float64
		for i, idx := range perm {
			if i%k == fold {
				teX = append(teX, xs[idx])
				teY = append(teY, ys[idx])
			} else {
				trX = append(trX, xs[idx])
				trY = append(trY, ys[idx])
			}
		}
		m, err := Fit(trX, trY, degree)
		if err != nil {
			return 0, err
		}
		scores = append(scores, R2(teY, m.PredictAll(teX)))
	}
	sum := 0.0
	for _, s := range scores {
		sum += s
	}
	return sum / float64(len(scores)), nil
}

// OutOfFoldResiduals returns one residual (truth - prediction) per sample,
// each computed by a model that did not train on that sample (k-fold).
// These are the honest residuals confidence intervals should be built from.
func OutOfFoldResiduals(xs [][]float64, ys []float64, degree, k int, rng *rand.Rand) ([]float64, error) {
	if k < 2 {
		return nil, fmt.Errorf("poly: k-fold needs k >= 2, got %d", k)
	}
	n := len(xs)
	if n < k {
		return nil, fmt.Errorf("poly: %d samples for %d folds", n, k)
	}
	perm := rng.Perm(n)
	res := make([]float64, n)
	for fold := 0; fold < k; fold++ {
		var trX [][]float64
		var trY []float64
		var teIdx []int
		for i, idx := range perm {
			if i%k == fold {
				teIdx = append(teIdx, idx)
			} else {
				trX = append(trX, xs[idx])
				trY = append(trY, ys[idx])
			}
		}
		m, err := Fit(trX, trY, degree)
		if err != nil {
			return nil, err
		}
		for _, idx := range teIdx {
			res[idx] = ys[idx] - m.Predict(xs[idx])
		}
	}
	return res, nil
}

// AutoFitResult reports what the degree search selected.
type AutoFitResult struct {
	Model    *Model
	Degree   int
	CVScore  float64
	Achieved bool // true when CVScore >= the requested target
}

// AutoFit raises the polynomial degree from 1 to maxDegree until k-fold
// cross validation reaches targetR2 (paper §3.7), then refits on all data
// at the chosen degree. If no degree reaches the target, the degree with
// the best CV score is used and Achieved is false.
func AutoFit(xs [][]float64, ys []float64, targetR2 float64, maxDegree, folds int, rng *rand.Rand) (*AutoFitResult, error) {
	if maxDegree < 1 {
		return nil, fmt.Errorf("poly: maxDegree must be >= 1, got %d", maxDegree)
	}
	bestDeg, bestScore := 0, math.Inf(-1)
	caps := DistinctCaps(xs, 12)
	for deg := 1; deg <= maxDegree; deg++ {
		exp, err := NewExpansionCapped(len(xs[0]), deg, caps)
		if err != nil {
			return nil, err
		}
		// Need enough samples in the training folds for this basis.
		trainSize := len(xs) - len(xs)/folds
		if trainSize < exp.NumTerms() {
			break
		}
		score, err := CrossValidate(xs, ys, deg, folds, rng)
		if err != nil {
			if errors.Is(err, ErrTooFewSamples) {
				break
			}
			return nil, err
		}
		if score > bestScore {
			bestScore, bestDeg = score, deg
		}
		if score >= targetR2 {
			m, err := Fit(xs, ys, deg)
			if err != nil {
				return nil, err
			}
			return &AutoFitResult{Model: m, Degree: deg, CVScore: score, Achieved: true}, nil
		}
	}
	if bestDeg == 0 {
		return nil, fmt.Errorf("poly: not enough samples (%d) to fit even degree 1", len(xs))
	}
	m, err := Fit(xs, ys, bestDeg)
	if err != nil {
		return nil, err
	}
	return &AutoFitResult{Model: m, Degree: bestDeg, CVScore: bestScore, Achieved: false}, nil
}
