package poly

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"opprox/internal/ml/arena"
	"opprox/internal/ml/linalg"
)

// Model is a fitted polynomial regression model.
type Model struct {
	Expansion *Expansion
	Coeffs    []float64
	// Standardization applied to raw inputs before expansion. Fitting on
	// standardized features keeps high-degree expansions well conditioned.
	Mean, Scale []float64
	// TrainR2 is the coefficient of determination on the training set.
	TrainR2 float64
}

// ErrTooFewSamples reports that there are fewer samples than basis terms.
var ErrTooFewSamples = errors.New("poly: fewer samples than basis terms")

// Fit fits a polynomial of the given degree to (xs, ys) by least squares,
// falling back to a lightly regularized ridge solve when the expanded
// design matrix is rank deficient. Per-feature exponents are automatically
// capped at (#distinct values - 1) observed in xs — higher powers are
// collinear at the sample points and oscillate freely between them.
func Fit(xs [][]float64, ys []float64, degree int) (*Model, error) {
	return FitRidge(xs, ys, degree, 0)
}

// DistinctCaps returns, per feature column, the exponent cap
// (#distinct values - 1), with -1 (unlimited) for columns that look
// continuous (more than maxDiscrete distinct values). The distinct scan is
// a linear probe over a small stack of seen values — the set is bounded by
// maxDiscrete+1 entries, where a map would cost an allocation per column
// per fit (and cross-validation refits per fold).
func DistinctCaps(xs [][]float64, maxDiscrete int) []int {
	if len(xs) == 0 {
		return nil
	}
	nf := len(xs[0])
	caps := make([]int, nf)
	seenBuf := arena.Floats(maxDiscrete + 1)
	defer arena.PutFloats(seenBuf)
	for j := 0; j < nf; j++ {
		seen := (*seenBuf)[:0]
		for _, x := range xs {
			if j >= len(x) {
				continue // ragged row: Fit reports the error later
			}
			v := x[j]
			dup := false
			for _, s := range seen {
				if s == v {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen = append(seen, v)
			if len(seen) > maxDiscrete {
				break
			}
		}
		switch {
		case len(seen) == 0, len(seen) > maxDiscrete:
			caps[j] = -1
		default:
			caps[j] = len(seen) - 1
		}
	}
	return caps
}

// designPool recycles design matrices across fits: cross-validation alone
// builds k of them per degree probed.
var designPool = sync.Pool{New: func() any { return new(linalg.Matrix) }}

// FitRidge is Fit with an explicit ridge penalty lambda (0 = OLS first,
// ridge fallback).
func FitRidge(xs [][]float64, ys []float64, degree int, lambda float64) (*Model, error) {
	if len(xs) == 0 {
		return nil, errors.New("poly: no training samples")
	}
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("poly: %d inputs but %d targets", len(xs), len(ys))
	}
	nf := len(xs[0])
	exp, err := NewExpansionCapped(nf, degree, DistinctCaps(xs, 12))
	if err != nil {
		return nil, err
	}
	nt := exp.NumTerms()
	if len(xs) < nt {
		return nil, fmt.Errorf("%w: %d samples for %d terms (degree %d, %d features)",
			ErrTooFewSamples, len(xs), nt, degree, nf)
	}
	mean, scale := standardization(xs)
	design := designPool.Get().(*linalg.Matrix)
	defer designPool.Put(design)
	design.EnsureShape(len(xs), nt)
	prog := exp.prog()
	bufp := arena.Floats(nf)
	defer arena.PutFloats(bufp)
	buf := *bufp
	for i, x := range xs {
		if len(x) != nf {
			return nil, fmt.Errorf("poly: sample %d has %d features, want %d", i, len(x), nf)
		}
		standardize(buf, x, mean, scale)
		prog.evalInto(design.Data[i*nt:(i+1)*nt], buf)
	}
	var coeffs []float64
	if lambda > 0 {
		coeffs, err = linalg.RidgeSolve(design, ys, lambda)
	} else {
		coeffs, err = linalg.LeastSquares(design, ys)
		if errors.Is(err, linalg.ErrSingular) {
			coeffs, err = linalg.RidgeSolve(design, ys, 1e-8)
		}
	}
	if err != nil {
		return nil, err
	}
	m := &Model{Expansion: exp, Coeffs: coeffs, Mean: mean, Scale: scale}
	// Training predictions fall out of the design matrix already in hand:
	// row i holds every term at sample i, so the prediction is the same
	// coefficient-weighted sum Predict would compute from scratch.
	predp := arena.Floats(len(xs))
	pred := *predp
	for i := range xs {
		row := design.Data[i*nt : (i+1)*nt]
		s := 0.0
		for t, c := range coeffs {
			s += c * row[t]
		}
		pred[i] = s
	}
	m.TrainR2 = R2(ys, pred)
	arena.PutFloats(predp)
	return m, nil
}

// Predict evaluates the model at x. The standardization buffer comes from
// the shared arena, so steady-state Predict performs zero allocations.
func (m *Model) Predict(x []float64) float64 {
	bufp := arena.Floats(len(x))
	s := m.PredictScratch(x, *bufp)
	arena.PutFloats(bufp)
	return s
}

// PredictScratch is Predict with a caller-provided standardization buffer
// (len(buf) >= len(x)): no allocations and no pool traffic at all. Tight
// prediction loops that already hold a scratch buffer use this to avoid
// nested arena round-trips.
func (m *Model) PredictScratch(x, buf []float64) float64 {
	buf = buf[:len(x)]
	standardize(buf, x, m.Mean, m.Scale)
	return m.Expansion.prog().dot(m.Coeffs, buf)
}

// PredictInto evaluates the model at every row of xs into dst, which must
// have length len(xs). One pooled standardization buffer is shared across
// the whole batch.
func (m *Model) PredictInto(dst []float64, xs [][]float64) {
	if len(dst) != len(xs) {
		panic(fmt.Sprintf("poly: PredictInto dst length %d for %d rows", len(dst), len(xs)))
	}
	prog := m.Expansion.prog()
	bufp := arena.Floats(m.Expansion.NFeatures)
	buf := *bufp
	for i, x := range xs {
		if len(x) > cap(buf) {
			arena.PutFloats(bufp)
			bufp = arena.Floats(len(x))
			buf = *bufp
		}
		b := buf[:len(x)]
		standardize(b, x, m.Mean, m.Scale)
		dst[i] = prog.dot(m.Coeffs, b)
	}
	arena.PutFloats(bufp)
}

// PredictBatch evaluates the model at every row of xs into dst (which
// must have length len(xs)) through one batched pass: every row is
// standardized into a shared row-major matrix, the whole matrix runs
// through the compiled expansion via TransformAll, and each prediction
// is the coefficient dot product over its design row, accumulated in
// term order. The arithmetic per row — standardize, termVal, ordered
// sum — is exactly PredictScratch's, so the batched predictions are
// bit-for-bit identical to the scalar path (equivalence tests pin
// this). The Pareto-front plan library uses it to evaluate a phase's
// whole configuration space in one pass.
func (m *Model) PredictBatch(dst []float64, xs [][]float64) error {
	if len(dst) != len(xs) {
		return fmt.Errorf("poly: PredictBatch dst length %d for %d rows", len(dst), len(xs))
	}
	if len(xs) == 0 {
		return nil
	}
	nf := m.Expansion.NFeatures
	stdp := arena.Floats(len(xs) * nf)
	defer arena.PutFloats(stdp)
	std := *stdp
	viewsp := arena.Rows(len(xs))
	defer arena.PutRows(viewsp)
	views := *viewsp
	for i, x := range xs {
		if len(x) != nf {
			return fmt.Errorf("poly: PredictBatch row %d has %d features, model expects %d", i, len(x), nf)
		}
		row := std[i*nf : (i+1)*nf]
		standardize(row, x, m.Mean, m.Scale)
		views[i] = row
	}
	design := designPool.Get().(*linalg.Matrix)
	defer designPool.Put(design)
	if err := m.Expansion.TransformAll(design, views); err != nil {
		return err
	}
	nt := m.Expansion.NumTerms()
	for i := range xs {
		row := design.Data[i*nt : (i+1)*nt]
		s := 0.0
		for t, c := range m.Coeffs {
			s += c * row[t]
		}
		dst[i] = s
	}
	return nil
}

// PredictAll evaluates the model at every row of xs.
func (m *Model) PredictAll(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	m.PredictInto(out, xs)
	return out
}

// ResidualsInto writes y - prediction for every pair into dst, which must
// have length len(xs), reusing one pooled scratch buffer.
func (m *Model) ResidualsInto(dst []float64, xs [][]float64, ys []float64) {
	m.PredictInto(dst, xs)
	for i, y := range ys {
		dst[i] = y - dst[i]
	}
}

// Residuals returns y - prediction for every training pair supplied.
func (m *Model) Residuals(xs [][]float64, ys []float64) []float64 {
	res := make([]float64, len(xs))
	m.ResidualsInto(res, xs, ys)
	return res
}

func standardization(xs [][]float64) (mean, scale []float64) {
	nf := len(xs[0])
	mean = make([]float64, nf)
	scale = make([]float64, nf)
	for _, x := range xs {
		for j, v := range x {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(xs))
	}
	for _, x := range xs {
		for j, v := range x {
			d := v - mean[j]
			scale[j] += d * d
		}
	}
	for j := range scale {
		scale[j] = math.Sqrt(scale[j] / float64(len(xs)))
		if scale[j] < 1e-12 {
			scale[j] = 1 // constant feature: leave centered at zero
		}
	}
	return mean, scale
}

func standardize(dst, x, mean, scale []float64) {
	for j, v := range x {
		dst[j] = (v - mean[j]) / scale[j]
	}
}

// R2 returns the coefficient of determination of pred against truth.
// A perfect prediction scores 1; predicting the mean scores 0. When the
// truth is constant, R2 returns 1 if predictions match it and 0 otherwise.
func R2(truth, pred []float64) float64 {
	if len(truth) != len(pred) || len(truth) == 0 {
		return math.NaN()
	}
	mean := 0.0
	for _, v := range truth {
		mean += v
	}
	mean /= float64(len(truth))
	ssRes, ssTot := 0.0, 0.0
	for i, v := range truth {
		d := v - pred[i]
		ssRes += d * d
		m := v - mean
		ssTot += m * m
	}
	if ssTot < 1e-30 {
		if ssRes < 1e-12 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// CrossValidate runs k-fold cross validation at the given degree and
// returns the mean out-of-fold R². Folds are assigned by a deterministic
// shuffle of the provided rng. Folds are fitted concurrently (one worker
// per CPU); see CrossValidateParallel for the determinism contract.
func CrossValidate(xs [][]float64, ys []float64, degree, k int, rng *rand.Rand) (float64, error) {
	return CrossValidateParallel(xs, ys, degree, k, rng, 0)
}

// CrossValidateParallel is CrossValidate with an explicit worker count
// (<= 0 means one per CPU). The rng is consumed once, up front, for the
// fold permutation; fold fits draw no randomness, each fold's score lands
// in its own slot, and the reduction runs in fold-index order — so the
// result is byte-identical at every parallelism level, including serial.
func CrossValidateParallel(xs [][]float64, ys []float64, degree, k int, rng *rand.Rand, workers int) (float64, error) {
	if k < 2 {
		return 0, fmt.Errorf("poly: k-fold needs k >= 2, got %d", k)
	}
	n := len(xs)
	if n < k {
		return 0, fmt.Errorf("poly: %d samples for %d folds", n, k)
	}
	perm := rng.Perm(n)
	scores := make([]float64, k)
	errs := make([]error, k)
	runFolds(k, workers, func(fold int) {
		trXp, teXp := arena.Rows(n), arena.Rows(n)
		trYp, teYp := arena.Floats(n), arena.Floats(n)
		trX, teX := (*trXp)[:0], (*teXp)[:0]
		trY, teY := (*trYp)[:0], (*teYp)[:0]
		for i, idx := range perm {
			if i%k == fold {
				teX = append(teX, xs[idx])
				teY = append(teY, ys[idx])
			} else {
				trX = append(trX, xs[idx])
				trY = append(trY, ys[idx])
			}
		}
		m, err := Fit(trX, trY, degree)
		if err != nil {
			errs[fold] = err
		} else {
			predp := arena.Floats(len(teX))
			m.PredictInto(*predp, teX)
			scores[fold] = R2(teY, *predp)
			arena.PutFloats(predp)
		}
		arena.PutRows(trXp)
		arena.PutRows(teXp)
		arena.PutFloats(trYp)
		arena.PutFloats(teYp)
	})
	for fold := 0; fold < k; fold++ {
		if errs[fold] != nil {
			return 0, errs[fold]
		}
	}
	sum := 0.0
	for _, s := range scores {
		sum += s
	}
	return sum / float64(k), nil
}

// runFolds executes run(0..k-1) on a worker pool, in the PR 1 experiment
// engine's feeder pattern. Each fold writes only its own result slot;
// callers reduce in fold order after the pool drains.
func runFolds(k, workers int, run func(fold int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	if workers <= 1 {
		for fold := 0; fold < k; fold++ {
			run(fold)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for fold := range next {
				run(fold)
			}
		}()
	}
	for fold := 0; fold < k; fold++ {
		next <- fold
	}
	close(next)
	wg.Wait()
}

// OutOfFoldResiduals returns one residual (truth - prediction) per sample,
// each computed by a model that did not train on that sample (k-fold).
// These are the honest residuals confidence intervals should be built from.
// Folds fit concurrently; each writes a disjoint slice of the result, so
// the output is identical to the serial computation.
func OutOfFoldResiduals(xs [][]float64, ys []float64, degree, k int, rng *rand.Rand) ([]float64, error) {
	if k < 2 {
		return nil, fmt.Errorf("poly: k-fold needs k >= 2, got %d", k)
	}
	n := len(xs)
	if n < k {
		return nil, fmt.Errorf("poly: %d samples for %d folds", n, k)
	}
	perm := rng.Perm(n)
	res := make([]float64, n)
	errs := make([]error, k)
	runFolds(k, 0, func(fold int) {
		trXp := arena.Rows(n)
		trYp := arena.Floats(n)
		teIdxp := arena.Ints(n)
		trX, trY, teIdx := (*trXp)[:0], (*trYp)[:0], (*teIdxp)[:0]
		for i, idx := range perm {
			if i%k == fold {
				teIdx = append(teIdx, idx)
			} else {
				trX = append(trX, xs[idx])
				trY = append(trY, ys[idx])
			}
		}
		m, err := Fit(trX, trY, degree)
		if err != nil {
			errs[fold] = err
		} else {
			for _, idx := range teIdx {
				res[idx] = ys[idx] - m.Predict(xs[idx])
			}
		}
		arena.PutRows(trXp)
		arena.PutFloats(trYp)
		arena.PutInts(teIdxp)
	})
	for fold := 0; fold < k; fold++ {
		if errs[fold] != nil {
			return nil, errs[fold]
		}
	}
	return res, nil
}

// AutoFitResult reports what the degree search selected.
type AutoFitResult struct {
	Model    *Model
	Degree   int
	CVScore  float64
	Achieved bool // true when CVScore >= the requested target
}

// AutoFit raises the polynomial degree from 1 to maxDegree until k-fold
// cross validation reaches targetR2 (paper §3.7), then refits on all data
// at the chosen degree. If no degree reaches the target, the degree with
// the best CV score is used and Achieved is false.
func AutoFit(xs [][]float64, ys []float64, targetR2 float64, maxDegree, folds int, rng *rand.Rand) (*AutoFitResult, error) {
	if maxDegree < 1 {
		return nil, fmt.Errorf("poly: maxDegree must be >= 1, got %d", maxDegree)
	}
	bestDeg, bestScore := 0, math.Inf(-1)
	caps := DistinctCaps(xs, 12)
	for deg := 1; deg <= maxDegree; deg++ {
		exp, err := NewExpansionCapped(len(xs[0]), deg, caps)
		if err != nil {
			return nil, err
		}
		// Need enough samples in the training folds for this basis.
		trainSize := len(xs) - len(xs)/folds
		if trainSize < exp.NumTerms() {
			break
		}
		score, err := CrossValidate(xs, ys, deg, folds, rng)
		if err != nil {
			if errors.Is(err, ErrTooFewSamples) {
				break
			}
			return nil, err
		}
		if score > bestScore {
			bestScore, bestDeg = score, deg
		}
		if score >= targetR2 {
			m, err := Fit(xs, ys, deg)
			if err != nil {
				return nil, err
			}
			return &AutoFitResult{Model: m, Degree: deg, CVScore: score, Achieved: true}, nil
		}
	}
	if bestDeg == 0 {
		return nil, fmt.Errorf("poly: not enough samples (%d) to fit even degree 1", len(xs))
	}
	m, err := Fit(xs, ys, bestDeg)
	if err != nil {
		return nil, err
	}
	return &AutoFitResult{Model: m, Degree: bestDeg, CVScore: bestScore, Achieved: false}, nil
}
