package poly

// A compiled expansion turns the Term slice into a flat (index, exponent)
// program evaluated with no per-term interface or map traffic: one
// contiguous op stream shared by every row of a fit and every Predict.
// Evaluation performs exactly the arithmetic of Term.Eval — the same
// repeated multiplications in the same order — so the compiled path is
// bit-for-bit identical to the interpretive one (the equivalence property
// tests pin this).

type progOp struct {
	idx int32 // input feature index
	pow int32 // exponent (> 0; zero-power factors compile away)
}

type program struct {
	ops    []progOp
	starts []int32 // term i uses ops[starts[i]:starts[i+1]]
}

func compileTerms(terms []Term) program {
	p := program{starts: make([]int32, len(terms)+1)}
	nops := 0
	for _, t := range terms {
		for _, pow := range t.Powers {
			if pow > 0 {
				nops++
			}
		}
	}
	p.ops = make([]progOp, 0, nops)
	for i, t := range terms {
		for idx, pow := range t.Powers {
			if pow > 0 {
				p.ops = append(p.ops, progOp{idx: int32(idx), pow: int32(pow)})
			}
		}
		p.starts[i+1] = int32(len(p.ops))
	}
	return p
}

// termVal evaluates ops (one term's slice of the program) at x, exactly
// like Term.Eval: factors in feature-index order, each expanded as
// repeated multiplication.
func termVal(ops []progOp, x []float64) float64 {
	v := 1.0
	for _, op := range ops {
		xi := x[op.idx]
		for k := int32(0); k < op.pow; k++ {
			v *= xi
		}
	}
	return v
}

// evalInto writes term_i(x) into dst[i] for every term.
func (p *program) evalInto(dst, x []float64) {
	starts := p.starts
	for i := 0; i < len(starts)-1; i++ {
		dst[i] = termVal(p.ops[starts[i]:starts[i+1]], x)
	}
}

// dot returns Σ coeffs[i]·term_i(x), accumulating in term order — the
// same sum Model.Predict has always computed.
func (p *program) dot(coeffs, x []float64) float64 {
	starts := p.starts
	s := 0.0
	for i := 0; i < len(starts)-1; i++ {
		s += coeffs[i] * termVal(p.ops[starts[i]:starts[i+1]], x)
	}
	return s
}
