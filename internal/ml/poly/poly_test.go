package poly

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExpansionTermCount(t *testing.T) {
	// C(n+d, d) terms for n features, degree d.
	cases := []struct{ n, d, want int }{
		{1, 2, 3},  // 1, x, x²
		{2, 2, 6},  // 1, x0, x1, x0², x0x1, x1²
		{3, 2, 10}, //
		{2, 3, 10},
		{2, 0, 1},
	}
	for _, c := range cases {
		e, err := NewExpansion(c.n, c.d)
		if err != nil {
			t.Fatal(err)
		}
		if e.NumTerms() != c.want {
			t.Errorf("n=%d d=%d: %d terms, want %d", c.n, c.d, e.NumTerms(), c.want)
		}
	}
}

func TestExpansionConstantFirst(t *testing.T) {
	e, _ := NewExpansion(3, 2)
	if e.Terms[0].Degree() != 0 {
		t.Fatalf("first term degree = %d, want 0", e.Terms[0].Degree())
	}
	if e.Terms[0].String() != "1" {
		t.Fatalf("first term = %q, want \"1\"", e.Terms[0].String())
	}
}

func TestExpansionBadArgs(t *testing.T) {
	if _, err := NewExpansion(0, 2); err == nil {
		t.Fatal("want error for 0 features")
	}
	if _, err := NewExpansion(2, -1); err == nil {
		t.Fatal("want error for negative degree")
	}
}

func TestTermEvalAndString(t *testing.T) {
	tm := Term{Powers: []int{2, 0, 1}}
	if got := tm.Eval([]float64{3, 5, 2}); got != 18 {
		t.Fatalf("Eval = %g, want 18", got)
	}
	if tm.String() != "x0^2*x2" {
		t.Fatalf("String = %q", tm.String())
	}
}

func TestTransformLengthMismatch(t *testing.T) {
	e, _ := NewExpansion(2, 2)
	if _, err := e.Transform([]float64{1}); err == nil {
		t.Fatal("want error for wrong input length")
	}
}

func TestFitRecoversQuadratic(t *testing.T) {
	// y = 3 + 2x0 - x1 + 0.5*x0*x1 + x0²
	f := func(x []float64) float64 { return 3 + 2*x[0] - x[1] + 0.5*x[0]*x[1] + x[0]*x[0] }
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 60; i++ {
		x := []float64{rng.Float64() * 4, rng.Float64() * 4}
		xs = append(xs, x)
		ys = append(ys, f(x))
	}
	m, err := Fit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.TrainR2 < 0.999999 {
		t.Fatalf("TrainR2 = %g, want ~1", m.TrainR2)
	}
	probe := []float64{1.5, 2.5}
	if got, want := m.Predict(probe), f(probe); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Predict = %g, want %g", got, want)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, 2); err == nil {
		t.Fatal("want error for no samples")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, 1); err == nil {
		t.Fatal("want error for length mismatch")
	}
	// 3 samples can't support a degree-2 basis over 2 features (6 terms).
	xs := [][]float64{{1, 2}, {2, 3}, {3, 4}}
	_, err := Fit(xs, []float64{1, 2, 3}, 2)
	if !errors.Is(err, ErrTooFewSamples) {
		t.Fatalf("err = %v, want ErrTooFewSamples", err)
	}
}

func TestFitRaggedSample(t *testing.T) {
	xs := [][]float64{{1, 2}, {2}}
	if _, err := Fit(xs, []float64{1, 2}, 1); err == nil {
		t.Fatal("want error for ragged samples")
	}
}

func TestFitConstantFeature(t *testing.T) {
	// One feature never varies; fit should still succeed (ridge fallback).
	var xs [][]float64
	var ys []float64
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		x := []float64{rng.Float64(), 5}
		xs = append(xs, x)
		ys = append(ys, 2*x[0]+1)
	}
	m, err := Fit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.TrainR2 < 0.999 {
		t.Fatalf("TrainR2 = %g", m.TrainR2)
	}
}

func TestR2Properties(t *testing.T) {
	truth := []float64{1, 2, 3, 4}
	if got := R2(truth, truth); got != 1 {
		t.Fatalf("perfect R2 = %g", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(truth, mean); math.Abs(got) > 1e-12 {
		t.Fatalf("mean-prediction R2 = %g, want 0", got)
	}
	if got := R2([]float64{5, 5}, []float64{5, 5}); got != 1 {
		t.Fatalf("constant truth matched: R2 = %g, want 1", got)
	}
	if got := R2([]float64{5, 5}, []float64{1, 9}); got != 0 {
		t.Fatalf("constant truth mismatched: R2 = %g, want 0", got)
	}
	if !math.IsNaN(R2(nil, nil)) {
		t.Fatal("empty R2 should be NaN")
	}
}

func TestCrossValidateHighForTrueModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64() * 2, rng.Float64() * 2}
		xs = append(xs, x)
		ys = append(ys, 1+x[0]+3*x[1]+0.01*rng.NormFloat64())
	}
	score, err := CrossValidate(xs, ys, 1, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0.99 {
		t.Fatalf("CV score = %g, want > 0.99", score)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}}
	ys := []float64{1, 2, 3}
	if _, err := CrossValidate(xs, ys, 1, 1, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("want error for k < 2")
	}
	if _, err := CrossValidate(xs, ys, 1, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("want error for n < k")
	}
}

func TestAutoFitPicksSufficientDegree(t *testing.T) {
	// Cubic target: degree search should land on >= 3 and achieve target.
	rng := rand.New(rand.NewSource(5))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64()*4 - 2}
		xs = append(xs, x)
		ys = append(ys, x[0]*x[0]*x[0]-2*x[0])
	}
	res, err := AutoFit(xs, ys, 0.95, 6, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Achieved {
		t.Fatalf("target not achieved: degree=%d score=%g", res.Degree, res.CVScore)
	}
	if res.Degree < 3 {
		t.Fatalf("degree = %d, want >= 3", res.Degree)
	}
}

func TestAutoFitUnachievableFallsBack(t *testing.T) {
	// Pure noise: no degree reaches 0.99; AutoFit must still return a model.
	rng := rand.New(rand.NewSource(11))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 80; i++ {
		xs = append(xs, []float64{rng.Float64()})
		ys = append(ys, rng.NormFloat64())
	}
	res, err := AutoFit(xs, ys, 0.99, 4, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Achieved {
		t.Fatal("noise fit should not achieve R2 target")
	}
	if res.Model == nil {
		t.Fatal("fallback model missing")
	}
}

func TestAutoFitBadDegree(t *testing.T) {
	if _, err := AutoFit([][]float64{{1}}, []float64{1}, 0.9, 0, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("want error for maxDegree < 1")
	}
}

func TestResiduals(t *testing.T) {
	xs := [][]float64{{0}, {1}, {2}, {3}}
	ys := []float64{1, 3, 5, 7} // y = 2x+1
	m, err := Fit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range m.Residuals(xs, ys) {
		if math.Abs(r) > 1e-9 {
			t.Fatalf("residual[%d] = %g, want ~0", i, r)
		}
	}
}

// Property: a model fit on noiseless samples from a random polynomial of
// degree <= 2 predicts held-out points of that polynomial.
func TestFitGeneralizationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(),
			rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		truth := func(x []float64) float64 {
			return c[0] + c[1]*x[0] + c[2]*x[1] + c[3]*x[0]*x[0] + c[4]*x[0]*x[1] + c[5]*x[1]*x[1]
		}
		var xs [][]float64
		var ys []float64
		for i := 0; i < 40; i++ {
			x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
			xs = append(xs, x)
			ys = append(ys, truth(x))
		}
		m, err := Fit(xs, ys, 2)
		if err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
			if math.Abs(m.Predict(x)-truth(x)) > 1e-5*(1+math.Abs(truth(x))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctCaps(t *testing.T) {
	xs := [][]float64{
		{1, 0.1, 5},
		{2, 0.2, 5},
		{1, 0.3, 5},
		{2, 0.4, 5},
	}
	caps := DistinctCaps(xs, 3)
	if caps[0] != 1 {
		t.Fatalf("two-valued column cap = %d, want 1", caps[0])
	}
	if caps[1] != -1 {
		t.Fatalf("four-valued column with maxDiscrete 3 should be unlimited, got %d", caps[1])
	}
	if caps[2] != 0 {
		t.Fatalf("constant column cap = %d, want 0", caps[2])
	}
	if DistinctCaps(nil, 3) != nil {
		t.Fatal("empty input should return nil")
	}
}

func TestCappedExpansionRespectsCaps(t *testing.T) {
	e, err := NewExpansionCapped(2, 3, []int{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range e.Terms {
		if term.Powers[0] > 1 {
			t.Fatalf("term %v exceeds cap on feature 0", term)
		}
	}
	// Feature 1 is unlimited: a pure x1^3 term must exist.
	found := false
	for _, term := range e.Terms {
		if term.Powers[0] == 0 && term.Powers[1] == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("uncapped feature lost its cubic term")
	}
	if _, err := NewExpansionCapped(2, 2, []int{1}); err == nil {
		t.Fatal("want error for cap length mismatch")
	}
}

func TestCapsPreventInterpolationBlowup(t *testing.T) {
	// A feature with only two training values must not grow wild
	// high-degree terms that explode at interpolated points.
	rng := rand.New(rand.NewSource(9))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 120; i++ {
		a := float64(10 + 10*(i%2)) // only ever 10 or 20
		b := rng.Float64() * 3
		xs = append(xs, []float64{a, b})
		ys = append(ys, a+b*b)
	}
	m, err := Fit(xs, ys, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Probe the midpoint of the discrete axis — uncapped degree-4 fits
	// oscillate wildly here.
	got := m.Predict([]float64{15, 1.5})
	want := 15 + 1.5*1.5
	if math.Abs(got-want) > 2 {
		t.Fatalf("interpolated prediction %g, want ≈%g", got, want)
	}
}
