package mic

import (
	"math/rand"
	"testing"
)

func BenchmarkScore500(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = xs[i]*xs[i] + rng.NormFloat64()*0.05
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Score(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}
