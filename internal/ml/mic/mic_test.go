package mic

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func samples(n int, rng *rand.Rand, f func(x float64) float64) (xs, ys []float64) {
	for i := 0; i < n; i++ {
		x := rng.Float64()*4 - 2
		xs = append(xs, x)
		ys = append(ys, f(x))
	}
	return xs, ys
}

func TestScoreErrors(t *testing.T) {
	if _, err := Score([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := Score([]float64{1, 2, 3}, []float64{1, 2, 3}); !errors.Is(err, ErrTooFewSamples) {
		t.Fatalf("err = %v, want ErrTooFewSamples", err)
	}
}

func TestConstantIsZero(t *testing.T) {
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	rng := rand.New(rand.NewSource(1))
	for i := range ys {
		ys[i] = rng.Float64()
		xs[i] = 7
	}
	s, err := Score(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Fatalf("constant feature score = %g, want 0", s)
	}
}

func TestLinearRelationHigh(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs, ys := samples(400, rng, func(x float64) float64 { return 3*x - 1 })
	s, err := Score(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9 {
		t.Fatalf("linear MIC = %g, want >= 0.9", s)
	}
}

func TestQuadraticRelationHigh(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs, ys := samples(400, rng, func(x float64) float64 { return x * x })
	s, err := Score(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.7 {
		t.Fatalf("quadratic MIC = %g, want >= 0.7", s)
	}
}

func TestIndependenceLow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 500
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	s, err := Score(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if s > 0.35 {
		t.Fatalf("independent MIC = %g, want small", s)
	}
}

func TestSignalBeatsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs, ys := samples(400, rng, math.Sin)
	sig, err := Score(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	noise := make([]float64, len(ys))
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	ind, err := Score(xs, noise)
	if err != nil {
		t.Fatal(err)
	}
	if sig <= ind {
		t.Fatalf("sin score %g <= noise score %g", sig, ind)
	}
}

func TestScoreInRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()*0.5 + xs[i]*float64(seed%3)
		}
		s, err := Score(xs, ys)
		return err == nil && s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreSymmetryLoose(t *testing.T) {
	// Equal-frequency binning is symmetric in roles, so Score(x,y) and
	// Score(y,x) should agree.
	rng := rand.New(rand.NewSource(6))
	xs, ys := samples(300, rng, func(x float64) float64 { return x*x*x - x })
	a, err := Score(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Score(ys, xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("asymmetric: %g vs %g", a, b)
	}
}

func TestFilterFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 300
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		rel := rng.Float64() * 2
		irr := rng.Float64()
		cst := 3.0
		xs[i] = []float64{rel, irr, cst}
		ys[i] = rel*rel + 1
	}
	keep, scores, err := FilterFeatures(xs, ys, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != 1 || keep[0] != 0 {
		t.Fatalf("keep = %v (scores %v), want [0]", keep, scores)
	}
	if scores[2] != 0 {
		t.Fatalf("constant feature score = %g, want 0", scores[2])
	}
}

func TestFilterKeepsBestWhenAllBelowThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 200
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = []float64{rng.Float64(), rng.Float64()}
		ys[i] = rng.Float64()
	}
	keep, _, err := FilterFeatures(xs, ys, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if len(keep) != 1 {
		t.Fatalf("keep = %v, want exactly one fallback feature", keep)
	}
}

func TestFilterNoSamples(t *testing.T) {
	if _, _, err := FilterFeatures(nil, nil, 0.5); err == nil {
		t.Fatal("want error for empty input")
	}
}
