// Package mic approximates the Maximal Information Coefficient of
// Reshef et al. (Science, 2011), which OPPROX uses to filter out input
// features that carry no association with the model target (paper §3.7).
//
// The exact MINE algorithm searches all grid partitions with x·y < B(n)
// cells, optimizing one axis by dynamic programming. This package uses the
// standard equicharacteristic approximation: for every grid shape (kx, ky)
// with kx·ky <= B(n), both axes are partitioned into equal-frequency bins
// and the normalized mutual information I(kx,ky)/log2(min(kx,ky)) is
// maximized over shapes. This keeps the two properties the OPPROX pipeline
// relies on: values near 0 for independent variables and near 1 for
// noiseless functional relationships, monotone in association strength.
package mic

import (
	"errors"
	"math"
	"sort"

	"opprox/internal/ml/arena"
)

// ErrTooFewSamples reports that MIC needs more data points.
var ErrTooFewSamples = errors.New("mic: need at least 4 samples")

// Score returns the approximate MIC of paired samples (xs, ys), in [0, 1].
//
// Each vector is sorted exactly once; the equal-frequency bin assignment
// for every grid size is derived from that one rank permutation, and the
// per-shape count tables come from a shared arena. The grid search visits
// shapes in the same order and with the same arithmetic as the original
// sort-per-shape implementation, so scores are bit-for-bit unchanged.
func Score(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("mic: length mismatch")
	}
	n := len(xs)
	if n < 4 {
		return 0, ErrTooFewSamples
	}
	if isConstant(xs) || isConstant(ys) {
		// A constant variable carries no information about anything.
		return 0, nil
	}
	// B(n) = n^0.6, the exponent recommended by Reshef et al.
	b := int(math.Pow(float64(n), 0.6))
	if b < 4 {
		b = 4
	}
	maxK := b / 2 // largest bin count either axis can use (the other needs >= 2)

	orderp := arena.Ints(n)
	defer arena.PutInts(orderp)
	order := (*orderp)[:n]

	// One sort of ys serves every ky: precompute the assignment row per size.
	yap := arena.Ints((maxK - 1) * n)
	defer arena.PutInts(yap)
	yaAll := (*yap)[:(maxK-1)*n]
	sortedOrder(order, ys)
	for ky := 2; ky <= maxK; ky++ {
		assignFromOrder(yaAll[(ky-2)*n:(ky-1)*n], order, ys, ky)
	}

	xap := arena.Ints(n)
	defer arena.PutInts(xap)
	xa := (*xap)[:n]
	sortedOrder(order, xs)

	// Count tables, reused across every grid shape: kx*ky <= b cells.
	jointp := arena.Ints(b)
	defer arena.PutInts(jointp)
	pxp := arena.Ints(maxK)
	defer arena.PutInts(pxp)
	pyp := arena.Ints(maxK)
	defer arena.PutInts(pyp)

	best := 0.0
	for kx := 2; kx <= maxK; kx++ {
		maxKy := b / kx
		if maxKy < 2 {
			break
		}
		assignFromOrder(xa, order, xs, kx)
		for ky := 2; ky <= maxKy; ky++ {
			ya := yaAll[(ky-2)*n : (ky-1)*n]
			mi := mutualInformationInto(xa, ya, kx, ky, (*jointp)[:kx*ky], (*pxp)[:kx], (*pyp)[:ky])
			norm := math.Log2(float64(min(kx, ky)))
			if norm <= 0 {
				continue
			}
			if v := mi / norm; v > best {
				best = v
			}
		}
	}
	if best > 1 {
		best = 1
	}
	return best, nil
}

func isConstant(v []float64) bool {
	for _, x := range v[1:] {
		if x != v[0] {
			return false
		}
	}
	return true
}

// sortedOrder fills order with the sample indices of v in ascending value
// order — the single rank permutation every bin count shares.
func sortedOrder(order []int, v []float64) {
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return v[order[a]] < v[order[b]] })
}

// assignFromOrder writes the k-bin equal-frequency assignment of v into
// bins, using a precomputed sort order. Ties share the bin of their sorted
// position's bucket, computed over a rank transform so duplicated values
// land in adjacent bins; runs of equal values then collapse to the bin of
// their first occurrence (otherwise ties would leak rank information).
func assignFromOrder(bins, order []int, v []float64, k int) {
	n := len(v)
	for rank, idx := range order {
		bins[idx] = rank * k / n
	}
	for i := 1; i < n; i++ {
		a, b := order[i-1], order[i]
		if v[a] == v[b] {
			bins[b] = bins[a]
		}
	}
}

// equiFreqAssign assigns each sample to one of k equal-frequency bins.
func equiFreqAssign(v []float64, k int) []int {
	n := len(v)
	order := make([]int, n)
	sortedOrder(order, v)
	bins := make([]int, n)
	assignFromOrder(bins, order, v, k)
	return bins
}

// mutualInformationInto computes I(xa; ya) over a kx×ky grid using
// caller-provided count tables (joint must hold kx*ky cells, px kx and
// py ky); the tables are cleared here.
func mutualInformationInto(xa, ya []int, kx, ky int, joint, px, py []int) float64 {
	n := len(xa)
	for i := range joint {
		joint[i] = 0
	}
	for i := range px {
		px[i] = 0
	}
	for i := range py {
		py[i] = 0
	}
	for i := 0; i < n; i++ {
		joint[xa[i]*ky+ya[i]]++
		px[xa[i]]++
		py[ya[i]]++
	}
	fn := float64(n)
	mi := 0.0
	for ix := 0; ix < kx; ix++ {
		for iy := 0; iy < ky; iy++ {
			c := joint[ix*ky+iy]
			if c == 0 {
				continue
			}
			pxy := float64(c) / fn
			mi += pxy * math.Log2(pxy/((float64(px[ix])/fn)*(float64(py[iy])/fn)))
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

func mutualInformation(xa, ya []int, kx, ky int) float64 {
	return mutualInformationInto(xa, ya, kx, ky, make([]int, kx*ky), make([]int, kx), make([]int, ky))
}

// FilterFeatures returns the indices of columns of xs whose MIC with ys is
// at least threshold. Column-constant features are always dropped.
// When every feature is filtered out, the single highest-scoring feature is
// retained so downstream regression always has at least one input.
func FilterFeatures(xs [][]float64, ys []float64, threshold float64) ([]int, []float64, error) {
	if len(xs) == 0 {
		return nil, nil, errors.New("mic: no samples")
	}
	nf := len(xs[0])
	colp := arena.Floats(len(xs))
	defer arena.PutFloats(colp)
	col := (*colp)[:len(xs)]
	var keep []int
	scores := make([]float64, nf)
	bestIdx, bestScore := -1, -1.0
	for j := 0; j < nf; j++ {
		for i, row := range xs {
			col[i] = row[j]
		}
		s, err := Score(col, ys)
		if err != nil {
			return nil, nil, err
		}
		scores[j] = s
		if s > bestScore {
			bestScore, bestIdx = s, j
		}
		if s >= threshold {
			keep = append(keep, j)
		}
	}
	if len(keep) == 0 && bestIdx >= 0 {
		keep = append(keep, bestIdx)
	}
	return keep, scores, nil
}

// FilterFeaturesTop is FilterFeatures with a cap on the kept set: when
// more than maxKeep columns clear the threshold, only the maxKeep
// highest-scoring survive. Ties on score are broken toward the lower
// column index, and the returned indices are ascending either way, so
// the selection is deterministic. The space-expanded feature path uses
// it: a quadratic derived basis can clear a fixed threshold wholesale,
// and an uncapped keep set would push the polynomial degree search past
// the sample budget.
func FilterFeaturesTop(xs [][]float64, ys []float64, threshold float64, maxKeep int) ([]int, []float64, error) {
	keep, scores, err := FilterFeatures(xs, ys, threshold)
	if err != nil {
		return nil, nil, err
	}
	if maxKeep <= 0 || len(keep) <= maxKeep {
		return keep, scores, nil
	}
	ranked := append([]int(nil), keep...)
	sort.SliceStable(ranked, func(a, b int) bool { return scores[ranked[a]] > scores[ranked[b]] })
	ranked = ranked[:maxKeep]
	sort.Ints(ranked)
	return ranked, scores, nil
}
