package mic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// scoreNaive is the pre-optimization Score: a fresh sort for every grid
// shape and freshly allocated count tables for every mutual-information
// evaluation. It is the bit-for-bit oracle for the hoisted-sort, pooled
// implementation.
func scoreNaive(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		panic("mic: length mismatch")
	}
	n := len(xs)
	if n < 4 {
		return 0, ErrTooFewSamples
	}
	if isConstant(xs) || isConstant(ys) {
		return 0, nil
	}
	b := int(math.Pow(float64(n), 0.6))
	if b < 4 {
		b = 4
	}
	best := 0.0
	for kx := 2; kx <= b/2; kx++ {
		maxKy := b / kx
		if maxKy < 2 {
			break
		}
		xa := equiFreqAssign(xs, kx)
		for ky := 2; ky <= maxKy; ky++ {
			ya := equiFreqAssign(ys, ky)
			mi := mutualInformation(xa, ya, kx, ky)
			norm := math.Log2(float64(min(kx, ky)))
			if norm <= 0 {
				continue
			}
			if v := mi / norm; v > best {
				best = v
			}
		}
	}
	if best > 1 {
		best = 1
	}
	return best, nil
}

func randomPairs(rng *rand.Rand, n int) ([]float64, []float64) {
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		switch rng.Intn(3) {
		case 0:
			ys[i] = xs[i]*xs[i] + rng.NormFloat64()*0.3
		case 1:
			ys[i] = rng.NormFloat64()
		default:
			ys[i] = float64(rng.Intn(4)) // duplicates exercise tie collapsing
		}
	}
	return xs, ys
}

// TestScoreMatchesNaiveBitwise: hoisting the sort out of the grid-shape
// loops and pooling the count tables must not change a single bit of any
// score.
func TestScoreMatchesNaiveBitwise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(400)
		xs, ys := randomPairs(rng, n)
		want, err := scoreNaive(xs, ys)
		if err != nil {
			return false
		}
		got, err := Score(xs, ys)
		if err != nil {
			return false
		}
		if got != want {
			t.Logf("seed %d n %d: Score %x, naive %x", seed, n, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFilterFeaturesMatchesNaive: the kept-feature sets (and the exact
// scores behind them) are unchanged by the kernel rewrite.
func TestFilterFeaturesMatchesNaive(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n, nf := 60+rng.Intn(120), 2+rng.Intn(4)
		xs := make([][]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			row := make([]float64, nf)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			row[0] = 3.5 // a constant column must always be dropped
			xs[i] = row
			ys[i] = rng.NormFloat64()
			if nf > 1 {
				ys[i] = xs[i][1] + rng.NormFloat64()*0.1
			}
		}
		for _, threshold := range []float64{0.2, 0.5, 0.99} {
			keep, scores, err := FilterFeatures(xs, ys, threshold)
			if err != nil {
				t.Fatal(err)
			}
			col := make([]float64, n)
			var wantKeep []int
			bestIdx, bestScore := -1, -1.0
			for j := 0; j < nf; j++ {
				for i, row := range xs {
					col[i] = row[j]
				}
				s, err := scoreNaive(col, ys)
				if err != nil {
					t.Fatal(err)
				}
				if s != scores[j] {
					t.Fatalf("seed %d feature %d: score %x, naive %x", seed, j, scores[j], s)
				}
				if s > bestScore {
					bestScore, bestIdx = s, j
				}
				if s >= threshold {
					wantKeep = append(wantKeep, j)
				}
			}
			if len(wantKeep) == 0 && bestIdx >= 0 {
				wantKeep = append(wantKeep, bestIdx)
			}
			if len(keep) != len(wantKeep) {
				t.Fatalf("seed %d thr %v: keep %v, want %v", seed, threshold, keep, wantKeep)
			}
			for i := range keep {
				if keep[i] != wantKeep[i] {
					t.Fatalf("seed %d thr %v: keep %v, want %v", seed, threshold, keep, wantKeep)
				}
			}
		}
	}
}

// TestScoreZeroSteadyStateAllocs: after warm-up, repeated scoring of the
// same-size inputs draws every buffer from the arena.
func TestScoreSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs, ys := randomPairs(rng, 300)
	if _, err := Score(xs, ys); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Score(xs, ys); err != nil {
			t.Fatal(err)
		}
	})
	// sort.Slice's closure and the pool round-trips cost a handful of
	// allocations; the point is that the O(grid-shapes) tables are gone.
	if allocs > 12 {
		t.Fatalf("Score allocates %.1f/op steady-state, want <= 12", allocs)
	}
}
