package linalg

import (
	"fmt"
	"math"

	"opprox/internal/ml/arena"
)

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// positive-definite matrix. Returns ErrSingular when A is not positive
// definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.Data[i*n+j]
			for k := 0; k < j; k++ {
				s -= l.Data[i*n+k] * l.Data[j*n+k]
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Data[i*n+i] = math.Sqrt(s)
			} else {
				l.Data[i*n+j] = s / l.Data[j*n+j]
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b given the Cholesky factor L of A.
func SolveCholesky(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Cholesky solve rhs length %d, want %d", len(b), n)
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.Data[i*n+k] * y[k]
		}
		y[i] = s / l.Data[i*n+i]
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.Data[k*n+i] * x[k]
		}
		x[i] = s / l.Data[i*n+i]
	}
	return x, nil
}

// RidgeSolve solves the ridge-regularized normal equations
// (AᵀA + λI)·x = Aᵀb. λ must be >= 0; with λ == 0 this is plain OLS via
// the normal equations (used as a fallback when QR reports rank
// deficiency, with a tiny λ supplied by the caller).
//
// AᵀA and Aᵀb are assembled from a pooled column-major copy of A, so each
// Gram entry is a dot product of two contiguous columns — the same sums in
// the same order as the old transpose-then-multiply path, without
// materializing Aᵀ.
func RidgeSolve(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: ridge rhs length %d, want %d", len(b), a.Rows)
	}
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: negative ridge lambda %g", lambda)
	}
	m, n := a.Rows, a.Cols
	colsBuf := arena.Floats(m * n)
	defer arena.PutFloats(colsBuf)
	cols := *colsBuf
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			cols[j*m+i] = v
		}
	}
	ata := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		ci := cols[i*m : (i+1)*m]
		for j := i; j < n; j++ {
			s := Dot(ci, cols[j*m:(j+1)*m])
			ata.Data[i*n+j] = s
			ata.Data[j*n+i] = s
		}
		ata.Data[i*n+i] += lambda
	}
	atb := make([]float64, n)
	for j := 0; j < n; j++ {
		atb[j] = Dot(cols[j*m:(j+1)*m], b)
	}
	l, err := Cholesky(ata)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, atb)
}
