package linalg

import (
	"math/rand"
	"testing"
)

func benchMatrix(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkQRFactor100x20(b *testing.B) {
	a := benchMatrix(100, 20, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FactorQR(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeastSquares200x30(b *testing.B) {
	a := benchMatrix(200, 30, 2)
	rhs := benchMatrix(200, 1, 3).Col(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFactorQRInto100x20(b *testing.B) {
	a := benchMatrix(100, 20, 1)
	var ws QRWorkspace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FactorQRInto(a, &ws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeastSquaresInto200x30(b *testing.B) {
	a := benchMatrix(200, 30, 2)
	rhs := benchMatrix(200, 1, 3).Col(0)
	var ws QRWorkspace
	dst := make([]float64, 30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := LeastSquaresInto(dst, a, rhs, &ws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholesky50(b *testing.B) {
	g := benchMatrix(60, 50, 4)
	a, _ := g.T().Mul(g)
	for i := 0; i < 50; i++ {
		a.Data[i*50+i] += 1
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul64(b *testing.B) {
	x := benchMatrix(64, 64, 5)
	y := benchMatrix(64, 64, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := x.Mul(y); err != nil {
			b.Fatal(err)
		}
	}
}
