package linalg

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization of an m×n matrix with m >= n.
// A = Q·R where Q is m×m orthogonal (stored implicitly as Householder
// reflectors) and R is n×n upper triangular.
type QR struct {
	qr   *Matrix   // packed reflectors below the diagonal, R on and above
	rdia []float64 // diagonal of R
}

// FactorQR computes the Householder QR factorization of a.
// a is not modified.
func FactorQR(a *Matrix) (*QR, error) {
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", a.Rows, a.Cols)
	}
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	rdia := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of the k-th column below (and including) the diagonal.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.Data[i*n+k])
		}
		if nrm == 0 {
			rdia[k] = 0
			continue
		}
		if qr.Data[k*n+k] < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Data[i*n+k] /= nrm
		}
		qr.Data[k*n+k]++
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.Data[i*n+k] * qr.Data[i*n+j]
			}
			s = -s / qr.Data[k*n+k]
			for i := k; i < m; i++ {
				qr.Data[i*n+j] += s * qr.Data[i*n+k]
			}
		}
		rdia[k] = -nrm
	}
	return &QR{qr: qr, rdia: rdia}, nil
}

// FullRank reports whether R has no (near-)zero diagonal entries.
func (f *QR) FullRank() bool {
	for _, d := range f.rdia {
		if math.Abs(d) < 1e-12 {
			return false
		}
	}
	return true
}

// Solve returns the least-squares solution x minimizing ||A·x - b||₂.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		return nil, fmt.Errorf("linalg: QR solve rhs length %d, want %d", len(b), m)
	}
	if !f.FullRank() {
		return nil, ErrSingular
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Qᵀ to b.
	for k := 0; k < n; k++ {
		if f.qr.Data[k*n+k] == 0 {
			continue
		}
		s := 0.0
		for i := k; i < m; i++ {
			s += f.qr.Data[i*n+k] * y[i]
		}
		s = -s / f.qr.Data[k*n+k]
		for i := k; i < m; i++ {
			y[i] += s * f.qr.Data[i*n+k]
		}
	}
	// Back-substitute R·x = y[:n].
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < n; j++ {
			s -= f.qr.Data[k*n+j] * x[j]
		}
		x[k] = s / f.rdia[k]
	}
	return x, nil
}

// LeastSquares solves min ||A·x - b||₂ via Householder QR.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Cholesky computes the lower-triangular L with A = L·Lᵀ for a symmetric
// positive-definite matrix. Returns ErrSingular when A is not positive
// definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.Data[i*n+j]
			for k := 0; k < j; k++ {
				s -= l.Data[i*n+k] * l.Data[j*n+k]
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Data[i*n+i] = math.Sqrt(s)
			} else {
				l.Data[i*n+j] = s / l.Data[j*n+j]
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b given the Cholesky factor L of A.
func SolveCholesky(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Cholesky solve rhs length %d, want %d", len(b), n)
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.Data[i*n+k] * y[k]
		}
		y[i] = s / l.Data[i*n+i]
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.Data[k*n+i] * x[k]
		}
		x[i] = s / l.Data[i*n+i]
	}
	return x, nil
}

// RidgeSolve solves the ridge-regularized normal equations
// (AᵀA + λI)·x = Aᵀb. λ must be >= 0; with λ == 0 this is plain OLS via
// the normal equations (used as a fallback when QR reports rank
// deficiency, with a tiny λ supplied by the caller).
func RidgeSolve(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: ridge rhs length %d, want %d", len(b), a.Rows)
	}
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: negative ridge lambda %g", lambda)
	}
	at := a.T()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ata.Rows; i++ {
		ata.Data[i*ata.Cols+i] += lambda
	}
	atb, err := at.MulVec(b)
	if err != nil {
		return nil, err
	}
	l, err := Cholesky(ata)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, atb)
}
