package linalg

import (
	"fmt"
	"sync"
)

// qrPanel is the panel width of the blocked factorization: reflectors are
// formed a panel at a time, then applied together to the trailing columns
// so each trailing column is streamed once per panel instead of once per
// reflector.
const qrPanel = 32

// QR holds a Householder QR factorization of an m×n matrix with m >= n.
// A = Q·R where Q is m×m orthogonal (stored implicitly as Householder
// reflectors) and R is n×n upper triangular.
//
// The factors are stored column-major (column j is a contiguous slice), so
// every inner loop of the factorization and of Solve runs over contiguous
// memory. A QR produced by FactorQRInto aliases its workspace and is only
// valid until the workspace is reused.
type QR struct {
	rows, cols int
	a          []float64 // column-major: column j at a[j*rows:(j+1)*rows];
	// packed reflectors below the diagonal, R strictly above
	rdia []float64 // diagonal of R
}

// QRWorkspace holds the reusable buffers of FactorQRInto and SolveInto.
// The zero value is ready to use; buffers grow on demand and are reused
// across factorizations.
type QRWorkspace struct {
	f QR
	y []float64 // Qᵀb scratch for SolveInto
}

// FactorQR computes the Householder QR factorization of a.
// a is not modified. The result owns its storage (fresh workspace).
func FactorQR(a *Matrix) (*QR, error) {
	return FactorQRInto(a, &QRWorkspace{})
}

// FactorQRInto is FactorQR with caller-owned workspace: the returned QR
// aliases ws and stays valid only until ws is passed to FactorQRInto
// again. With a reused workspace the factorization performs no
// allocations.
func FactorQRInto(a *Matrix, ws *QRWorkspace) (*QR, error) {
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", a.Rows, a.Cols)
	}
	m, n := a.Rows, a.Cols
	f := &ws.f
	f.rows, f.cols = m, n
	if cap(f.a) < m*n {
		f.a = make([]float64, m*n)
	} else {
		f.a = f.a[:m*n]
	}
	if cap(f.rdia) < n {
		f.rdia = make([]float64, n)
	} else {
		f.rdia = f.rdia[:n]
	}
	// Transpose the row-major input into contiguous columns.
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		for j, v := range row {
			f.a[j*m+i] = v
		}
	}
	for k0 := 0; k0 < n; k0 += qrPanel {
		kEnd := k0 + qrPanel
		if kEnd > n {
			kEnd = n
		}
		// Factor the panel: each new reflector is applied immediately to
		// the columns still inside the panel (they feed later reflectors).
		for k := k0; k < kEnd; k++ {
			ck := f.a[k*m : (k+1)*m]
			nrm := Norm2(ck[k:])
			if nrm == 0 {
				f.rdia[k] = 0
				continue
			}
			if ck[k] < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				ck[i] /= nrm
			}
			ck[k]++
			for j := k + 1; j < kEnd; j++ {
				applyReflector(ck[k:], f.a[j*m+k:(j+1)*m])
			}
			f.rdia[k] = -nrm
		}
		// Trailing update: sweep each column right of the panel once,
		// applying the panel's reflectors in order. Per (reflector, column)
		// pair the arithmetic is identical to the unblocked algorithm —
		// only the loop nest is reordered — so the factors are
		// bit-for-bit the same.
		for j := kEnd; j < n; j++ {
			cj := f.a[j*m : (j+1)*m]
			for k := k0; k < kEnd; k++ {
				if f.rdia[k] == 0 {
					continue // zero column: no reflector was formed
				}
				applyReflector(f.a[k*m+k:(k+1)*m], cj[k:])
			}
		}
	}
	return f, nil
}

// applyReflector applies the Householder reflector packed in v (v[0] is
// the shifted diagonal entry) to the column slice c: c += (-vᵀc / v[0])·v.
// Both slices are contiguous, start at the reflector's pivot row, and have
// equal length.
func applyReflector(v, c []float64) {
	c = c[:len(v)]
	s := 0.0
	for i, vi := range v {
		s += vi * c[i]
	}
	s = -s / v[0]
	for i, vi := range v {
		c[i] += s * vi
	}
}

// FullRank reports whether R has no (near-)zero diagonal entries.
func (f *QR) FullRank() bool {
	for _, d := range f.rdia {
		if d < 1e-12 && d > -1e-12 {
			return false
		}
	}
	return true
}

// Solve returns the least-squares solution x minimizing ||A·x - b||₂.
func (f *QR) Solve(b []float64) ([]float64, error) {
	x := make([]float64, f.cols)
	y := make([]float64, f.rows)
	if err := f.SolveInto(x, b, y); err != nil {
		return nil, err
	}
	return x, nil
}

// SolveInto solves min ||A·x - b||₂ into dst (length Cols) using y
// (length Rows) as scratch, without allocating.
func (f *QR) SolveInto(dst, b, y []float64) error {
	m, n := f.rows, f.cols
	if len(b) != m {
		return fmt.Errorf("linalg: QR solve rhs length %d, want %d", len(b), m)
	}
	if len(dst) != n {
		return fmt.Errorf("linalg: QR solve dst length %d, want %d", len(dst), n)
	}
	if len(y) != m {
		return fmt.Errorf("linalg: QR solve scratch length %d, want %d", len(y), m)
	}
	if !f.FullRank() {
		return ErrSingular
	}
	copy(y, b)
	// Apply Qᵀ to b: reflector columns are contiguous.
	for k := 0; k < n; k++ {
		if f.a[k*m+k] == 0 {
			continue
		}
		applyReflector(f.a[k*m+k:(k+1)*m], y[k:])
	}
	// Back-substitute R·x = y[:n]. R's strict upper triangle lives above
	// the diagonal of the packed columns: entry (k, j) is column j, row k.
	for k := n - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < n; j++ {
			s -= f.a[j*m+k] * dst[j]
		}
		dst[k] = s / f.rdia[k]
	}
	return nil
}

// qrWorkspaces recycles workspaces across LeastSquares calls, making the
// whole solve O(1) allocations (just the returned vector).
var qrWorkspaces = sync.Pool{New: func() any { return &QRWorkspace{} }}

// LeastSquares solves min ||A·x - b||₂ via blocked Householder QR.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	ws := qrWorkspaces.Get().(*QRWorkspace)
	defer qrWorkspaces.Put(ws)
	x := make([]float64, a.Cols)
	if err := LeastSquaresInto(x, a, b, ws); err != nil {
		return nil, err
	}
	return x, nil
}

// LeastSquaresInto solves min ||A·x - b||₂ into dst using ws for every
// intermediate buffer. With a warm workspace it performs no allocations.
func LeastSquaresInto(dst []float64, a *Matrix, b []float64, ws *QRWorkspace) error {
	f, err := FactorQRInto(a, ws)
	if err != nil {
		return err
	}
	if cap(ws.y) < f.rows {
		ws.y = make([]float64, f.rows)
	} else {
		ws.y = ws.y[:f.rows]
	}
	return f.SolveInto(dst, b, ws.y)
}
