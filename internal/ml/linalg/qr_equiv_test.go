package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// refQR is the pre-blocking Householder factorization: row-major packed
// storage, reflectors applied column-at-a-time, exactly the loop structure
// this package shipped with — except the column norm, which (like the fast
// path) is a single scaled sum-of-squares pass instead of a per-element
// math.Hypot chain. It exists only as the bit-for-bit oracle for the
// blocked, column-major, workspace-reusing implementation.
type refQR struct {
	qr   *Matrix
	rdia []float64
}

func factorQRReference(a *Matrix) *refQR {
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	rdia := make([]float64, n)
	col := make([]float64, m)
	for k := 0; k < n; k++ {
		for i := k; i < m; i++ {
			col[i] = qr.Data[i*n+k]
		}
		nrm := Norm2(col[k:m])
		if nrm == 0 {
			rdia[k] = 0
			continue
		}
		if qr.Data[k*n+k] < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Data[i*n+k] /= nrm
		}
		qr.Data[k*n+k]++
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.Data[i*n+k] * qr.Data[i*n+j]
			}
			s = -s / qr.Data[k*n+k]
			for i := k; i < m; i++ {
				qr.Data[i*n+j] += s * qr.Data[i*n+k]
			}
		}
		rdia[k] = -nrm
	}
	return &refQR{qr: qr, rdia: rdia}
}

func (f *refQR) solve(b []float64) []float64 {
	m, n := f.qr.Rows, f.qr.Cols
	y := make([]float64, m)
	copy(y, b)
	for k := 0; k < n; k++ {
		if f.qr.Data[k*n+k] == 0 {
			continue
		}
		s := 0.0
		for i := k; i < m; i++ {
			s += f.qr.Data[i*n+k] * y[i]
		}
		s = -s / f.qr.Data[k*n+k]
		for i := k; i < m; i++ {
			y[i] += s * f.qr.Data[i*n+k]
		}
	}
	x := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < n; j++ {
			s -= f.qr.Data[k*n+j] * x[j]
		}
		x[k] = s / f.rdia[k]
	}
	return x
}

// factorQRHypot is the seed implementation's norm: an O(m) math.Hypot
// chain per column. Kept to document how far the scaled sum-of-squares
// norm may drift from it (last-ulp rounding only).
func factorQRHypot(a *Matrix) *refQR {
	m, n := a.Rows, a.Cols
	qr := a.Clone()
	rdia := make([]float64, n)
	for k := 0; k < n; k++ {
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.Data[i*n+k])
		}
		if nrm == 0 {
			rdia[k] = 0
			continue
		}
		if qr.Data[k*n+k] < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Data[i*n+k] /= nrm
		}
		qr.Data[k*n+k]++
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.Data[i*n+k] * qr.Data[i*n+j]
			}
			s = -s / qr.Data[k*n+k]
			for i := k; i < m; i++ {
				qr.Data[i*n+j] += s * qr.Data[i*n+k]
			}
		}
		rdia[k] = -nrm
	}
	return &refQR{qr: qr, rdia: rdia}
}

// TestFactorQRBitwiseVsReference pins the blocked, column-major
// factorization bit-for-bit against the naive reference on fixed seeds:
// panel blocking and workspace reuse reorder loops, never arithmetic.
func TestFactorQRBitwiseVsReference(t *testing.T) {
	var ws QRWorkspace
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := 5 + rng.Intn(120)
		n := 1 + rng.Intn(40)
		if n > m {
			m, n = n, m
		}
		a := randomMatrix(rng, m, n)
		if seed%4 == 0 {
			// Exercise the zero-column path.
			zc := rng.Intn(n)
			for i := 0; i < m; i++ {
				a.Data[i*n+zc] = 0
			}
		}
		ref := factorQRReference(a)
		got, err := FactorQRInto(a, &ws) // reused workspace across seeds
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < n; k++ {
			if got.rdia[k] != ref.rdia[k] {
				t.Fatalf("seed %d: rdia[%d] = %x, ref %x", seed, k, got.rdia[k], ref.rdia[k])
			}
		}
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				g, r := got.a[j*m+i], ref.qr.Data[i*n+j]
				if g != r && !(math.IsNaN(g) && math.IsNaN(r)) {
					t.Fatalf("seed %d: packed(%d,%d) = %x, ref %x", seed, i, j, g, r)
				}
			}
		}
		if !got.FullRank() {
			continue
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := ref.solve(b)
		x, err := got.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if x[i] != want[i] {
				t.Fatalf("seed %d: solve[%d] = %x, ref %x", seed, i, x[i], want[i])
			}
		}
	}
}

// TestColumnNormVsHypot bounds the deliberate numerical change of this
// layer: replacing the per-element Hypot chain with one scaled
// sum-of-squares pass moves solutions by last-ulp rounding only.
func TestColumnNormVsHypot(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := 20 + rng.Intn(100)
		n := 2 + rng.Intn(20)
		a := randomMatrix(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		old := factorQRHypot(a)
		x, err := LeastSquares(a, b)
		if err == ErrSingular {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		want := old.solve(b)
		for i := range x {
			if !almostEqual(x[i], want[i], 1e-9*(1+math.Abs(want[i]))) {
				t.Fatalf("seed %d: x[%d] = %g, hypot-norm %g", seed, i, x[i], want[i])
			}
		}
	}
}

// TestNorm2ExtremeScales guards the overflow/underflow behavior the scaled
// pass exists for: a hypot chain survives these inputs and so must we.
func TestNorm2ExtremeScales(t *testing.T) {
	huge := []float64{1e200, 1e200, 1e200}
	if got, want := Norm2(huge), 1e200*math.Sqrt(3); !almostEqual(got, want, 1e185) {
		t.Fatalf("huge norm = %g, want %g", got, want)
	}
	if math.IsInf(Norm2(huge), 0) {
		t.Fatal("norm overflowed")
	}
	tiny := []float64{1e-200, 1e-200}
	if got, want := Norm2(tiny), 1e-200*math.Sqrt2; !almostEqual(got, want, 1e-210) {
		t.Fatalf("tiny norm = %g, want %g", got, want)
	}
	if Norm2(tiny) == 0 {
		t.Fatal("norm underflowed to zero")
	}
}

// TestFactorQRExtremeColumnScales runs the full factorization on columns
// that would overflow a naive sum of squares.
func TestFactorQRExtremeColumnScales(t *testing.T) {
	a, _ := FromRows([][]float64{
		{1e200, 1},
		{1e200, 2},
		{1e200, 3},
	})
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(f.rdia[0], 0) || math.IsNaN(f.rdia[0]) {
		t.Fatalf("rdia[0] = %g", f.rdia[0])
	}
	want := -1e200 * math.Sqrt(3)
	if !almostEqual(f.rdia[0], want, 1e186) {
		t.Fatalf("rdia[0] = %g, want %g", f.rdia[0], want)
	}
}

// TestLeastSquaresIntoNoAllocs asserts the warm-workspace promise: a full
// factor+solve with reused workspace and destination performs zero
// allocations.
func TestLeastSquaresIntoNoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randomMatrix(rng, 80, 12)
	b := make([]float64, 80)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	var ws QRWorkspace
	dst := make([]float64, 12)
	if err := LeastSquaresInto(dst, a, b, &ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := LeastSquaresInto(dst, a, b, &ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm LeastSquaresInto allocates %.1f/op, want 0", allocs)
	}
}

// TestFactorQRIntoReuseIsStable re-running a factorization through the
// same workspace must yield identical factors every time.
func TestFactorQRIntoReuseIsStable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 10+rng.Intn(40), 1+rng.Intn(8))
		first, err := FactorQR(a)
		if err != nil {
			return false
		}
		snap := append([]float64(nil), first.a...)
		var ws QRWorkspace
		for rep := 0; rep < 3; rep++ {
			g, err := FactorQRInto(a, &ws)
			if err != nil {
				return false
			}
			for i := range snap {
				if g.a[i] != snap[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
