// Package linalg provides the small dense linear-algebra kernel that the
// model-fitting packages are built on: matrices, Householder QR, least
// squares, and Cholesky factorization. It is deliberately minimal — just
// what polynomial regression and its cross-validation loops need — and
// written against float64 slices with no external dependencies.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero-valued rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: ragged rows: row 0 has %d cols, row %d has %d", cols, i, len(r))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.Rows, m.Cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// EnsureShape resizes m in place to rows×cols, reusing the backing slice
// when its capacity allows. The contents are unspecified afterward —
// callers are expected to overwrite every element (this is the reuse hook
// for per-fit design matrices).
func (m *Matrix) EnsureShape(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", rows, cols))
	}
	m.Rows, m.Cols = rows, cols
	if cap(m.Data) < rows*cols {
		m.Data = make([]float64, rows*cols)
	} else {
		m.Data = m.Data[:rows*cols]
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.Cols != len(x) {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d · vec(%d)", m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.6g", m.Data[i*m.Cols+j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ErrSingular reports that a linear system has no unique solution.
var ErrSingular = errors.New("linalg: matrix is singular or ill-conditioned")

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled to avoid overflow for large components.
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			ssq = 1 + ssq*(scale/a)*(scale/a)
			scale = a
		} else {
			ssq += (a / scale) * (a / scale)
		}
	}
	return scale * math.Sqrt(ssq)
}
