package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %g, want 0", i, v)
		}
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %g, want 6", m.At(2, 1))
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("want error for ragged rows")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("dims = %dx%d, want 0x0", m.Rows, m.Cols)
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 42)
	if got := m.At(1, 2); got != 42 {
		t.Fatalf("At(1,2) = %g, want 42", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for out-of-range index")
		}
	}()
	NewMatrix(2, 2).At(2, 0)
}

func TestRowColCopies(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row must return a copy")
	}
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col(1) = %v, want [2 4]", c)
	}
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Fatal("Col must return a copy")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T dims = %dx%d, want 3x2", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	p, err := m.Mul(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Data {
		if p.Data[i] != m.Data[i] {
			t.Fatalf("M·I != M at %d", i)
		}
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("(%d,%d) = %g, want %g", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("want dimension error")
	}
	if _, err := a.MulVec([]float64{1, 2}); err == nil {
		t.Fatal("want vec dimension error")
	}
}

func TestMulVecKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y, err := a.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", y)
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
	if Norm2(nil) != 0 {
		t.Fatal("Norm2(nil) should be 0")
	}
}

func TestNorm2Overflow(t *testing.T) {
	big := math.MaxFloat64 / 2
	got := Norm2([]float64{big, big})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Norm2 overflowed: %g", got)
	}
}

// Property: (Aᵀ)ᵀ == A.
func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 1+rng.Intn(6), 1+rng.Intn(6))
		tt := m.T().T()
		for i := range m.Data {
			if tt.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := randomMatrix(rng, m, k)
		b := randomMatrix(rng, k, n)
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		btat, err := b.T().Mul(a.T())
		if err != nil {
			return false
		}
		abt := ab.T()
		for i := range abt.Data {
			if !almostEqual(abt.Data[i], btat.Data[i], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}
