package linalg

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeastSquaresExact(t *testing.T) {
	// Square well-conditioned system: solution should be exact.
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := LeastSquares(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
	if !almostEqual(x[0], 1, 1e-10) || !almostEqual(x[1], 3, 1e-10) {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2t + 1 through noiseless points: exact recovery.
	ts := []float64{0, 1, 2, 3, 4}
	rows := make([][]float64, len(ts))
	b := make([]float64, len(ts))
	for i, tv := range ts {
		rows[i] = []float64{1, tv}
		b[i] = 1 + 2*tv
	}
	a, _ := FromRows(rows)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-10) || !almostEqual(x[1], 2, 1e-10) {
		t.Fatalf("x = %v, want [1 2]", x)
	}
}

func TestLeastSquaresSingular(t *testing.T) {
	// Duplicate columns → rank deficient.
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestQRUnderdetermined(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := FactorQR(a); err == nil {
		t.Fatal("want error for rows < cols")
	}
}

func TestQRSolveBadRHS(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	f, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve([]float64{1, 2}); err == nil {
		t.Fatal("want rhs length error")
	}
}

func TestCholeskyKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L = [[2,0],[1,sqrt(2)]]
	if !almostEqual(l.At(0, 0), 2, 1e-12) || !almostEqual(l.At(1, 0), 1, 1e-12) {
		t.Fatalf("L = %v", l)
	}
	x, err := SolveCholesky(l, []float64{10, 8})
	if err != nil {
		t.Fatal(err)
	}
	// Verify A·x = b.
	b, _ := a.MulVec(x)
	if !almostEqual(b[0], 10, 1e-10) || !almostEqual(b[1], 8, 1e-10) {
		t.Fatalf("A·x = %v, want [10 8]", b)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := Cholesky(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Fatal("want error for non-square matrix")
	}
}

func TestRidgeSolveShrinks(t *testing.T) {
	// Ridge with a huge lambda should shrink coefficients toward zero.
	a, _ := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	b := []float64{2, 2, 4}
	x0, err := RidgeSolve(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	xBig, err := RidgeSolve(a, b, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(xBig) >= Norm2(x0) {
		t.Fatalf("ridge did not shrink: |x0|=%g |xBig|=%g", Norm2(x0), Norm2(xBig))
	}
}

func TestRidgeSolveNegativeLambda(t *testing.T) {
	a := Identity(2)
	if _, err := RidgeSolve(a, []float64{1, 1}, -1); err == nil {
		t.Fatal("want error for negative lambda")
	}
}

func TestRidgeHandlesRankDeficiency(t *testing.T) {
	// Duplicate columns: OLS fails, ridge with small lambda succeeds.
	a, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	x, err := RidgeSolve(a, []float64{2, 4, 6}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Any x with x0+x1 ≈ 2 fits; prediction at row [1,1] should be ≈ 2.
	if !almostEqual(x[0]+x[1], 2, 1e-3) {
		t.Fatalf("x0+x1 = %g, want ≈2", x[0]+x[1])
	}
}

// Property: least squares on a consistent full-rank system reproduces b.
func TestLeastSquaresResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := n + rng.Intn(4)
		a := randomMatrix(rng, m, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		b, err := a.MulVec(xTrue)
		if err != nil {
			return false
		}
		x, err := LeastSquares(a, b)
		if errors.Is(err, ErrSingular) {
			return true // random matrix can be near-singular; skip
		}
		if err != nil {
			return false
		}
		got, err := a.MulVec(x)
		if err != nil {
			return false
		}
		for i := range b {
			if !almostEqual(got[i], b[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Cholesky factor satisfies L·Lᵀ == A for random SPD matrices.
func TestCholeskyReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		g := randomMatrix(rng, n+2, n)
		a, err := g.T().Mul(g) // GᵀG is SPD (a.s. full rank for m>n)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			a.Data[i*n+i] += 0.5 // guarantee positive definiteness
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		llt, err := l.Mul(l.T())
		if err != nil {
			return false
		}
		for i := range a.Data {
			if !almostEqual(llt.Data[i], a.Data[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
