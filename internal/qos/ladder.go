package qos

import (
	"fmt"
	"sync"
)

// This file is the control side of QoS: where the metrics above score
// how much accuracy an approximate output gave up, the Ladder decides
// how much accuracy the *serving layer* should give up as a function
// of load (Capri-style: output quality as a control variable). The
// serving layer feeds it a pressure scalar in [0, ~1+] derived from
// the admission gate (in-flight and queue occupancy, timeout rate) and
// reads back a degradation step:
//
//	step 0  full service   — compute fresh plans
//	step 1  coarse plans   — serve cache hits; compute misses at a
//	                         budget quantized onto a coarse grid so
//	                         distinct budgets share plans
//	step 2  exact fallback — serve cache hits; answer misses with the
//	                         deterministic all-accurate schedule
//	step 3  reject         — serve cache hits; 429 everything else
//
// Escalation is immediate (overload must be answered now); recovery is
// hysteretic: pressure must stay below the step's exit threshold —
// which sits strictly below its entry threshold — for Dwell
// consecutive updates before the ladder steps down one rung. The gap
// plus the dwell keeps the controller from flapping when load hovers
// at a boundary.

// LadderSteps is the number of degraded steps (the ladder runs 0..LadderSteps).
const LadderSteps = 3

// DefaultLadderDwell is the default number of consecutive below-exit
// updates required to step down one rung.
const DefaultLadderDwell = 3

// defaultEnter/defaultExit are the default pressure thresholds for
// entering and leaving each degraded step (index i governs step i+1).
var (
	defaultEnter = [LadderSteps]float64{0.50, 0.75, 0.90}
	defaultExit  = [LadderSteps]float64{0.35, 0.60, 0.80}
)

// LadderOptions tunes a Ladder. The zero value uses the defaults
// above.
type LadderOptions struct {
	// Enter[i] is the pressure at or above which the ladder escalates
	// from step i to step i+1. Must be non-decreasing.
	Enter []float64
	// Exit[i] is the pressure below which step i+1 may de-escalate to
	// step i (after Dwell consecutive such updates). Exit[i] must be
	// < Enter[i] — the hysteresis gap.
	Exit []float64
	// Dwell is the number of consecutive below-exit updates required
	// before stepping down (default DefaultLadderDwell; minimum 1).
	Dwell int
}

// Ladder is a concurrency-safe hysteresis controller over the
// degradation steps. It is clock-free: time enters only through the
// cadence of Update calls, so tests drive it deterministically.
type Ladder struct {
	enter [LadderSteps]float64
	exit  [LadderSteps]float64
	dwell int

	mu     sync.Mutex
	step   int
	calm   int // consecutive updates below the current step's exit threshold
	forced int // operator override; -1 when inactive
}

// NewLadder builds a Ladder, validating that the thresholds are
// ordered (enter non-decreasing, exit strictly below enter per step).
func NewLadder(opts LadderOptions) (*Ladder, error) {
	l := &Ladder{enter: defaultEnter, exit: defaultExit, dwell: DefaultLadderDwell, forced: -1}
	if opts.Enter != nil {
		if len(opts.Enter) != LadderSteps {
			return nil, fmt.Errorf("qos: ladder Enter needs %d thresholds, got %d", LadderSteps, len(opts.Enter))
		}
		copy(l.enter[:], opts.Enter)
	}
	if opts.Exit != nil {
		if len(opts.Exit) != LadderSteps {
			return nil, fmt.Errorf("qos: ladder Exit needs %d thresholds, got %d", LadderSteps, len(opts.Exit))
		}
		copy(l.exit[:], opts.Exit)
	}
	if opts.Dwell > 0 {
		l.dwell = opts.Dwell
	}
	for i := 0; i < LadderSteps; i++ {
		if i > 0 && l.enter[i] < l.enter[i-1] {
			return nil, fmt.Errorf("qos: ladder Enter must be non-decreasing (step %d: %g < %g)", i+1, l.enter[i], l.enter[i-1])
		}
		if l.exit[i] >= l.enter[i] {
			return nil, fmt.Errorf("qos: ladder Exit[%d] (%g) must be below Enter[%d] (%g) — no hysteresis gap", i, l.exit[i], i, l.enter[i])
		}
	}
	return l, nil
}

// Update feeds one pressure observation and returns the step to serve
// at. Escalation applies immediately and can jump multiple rungs in
// one update; de-escalation moves one rung after dwell consecutive
// below-exit observations. A forced step (Force) bypasses control
// entirely.
func (l *Ladder) Update(pressure float64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.forced >= 0 {
		return l.forced
	}
	if up := l.targetStep(pressure); up > l.step {
		l.step = up
		l.calm = 0
		return l.step
	}
	if l.step > 0 && pressure < l.exit[l.step-1] {
		l.calm++
		if l.calm >= l.dwell {
			l.step--
			l.calm = 0
		}
	} else {
		l.calm = 0
	}
	return l.step
}

// targetStep is the highest step whose entry threshold pressure meets.
func (l *Ladder) targetStep(pressure float64) int {
	step := 0
	for i := 0; i < LadderSteps; i++ {
		if pressure >= l.enter[i] {
			step = i + 1
		}
	}
	return step
}

// Step reports the current step without feeding an observation.
func (l *Ladder) Step() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.forced >= 0 {
		return l.forced
	}
	return l.step
}

// Force pins the ladder to a step (0..LadderSteps) regardless of
// pressure — the operator override, and the hook the overload smoke
// drill uses to walk the rungs deterministically. A negative step
// clears the override and resumes control from the pinned step.
func (l *Ladder) Force(step int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if step > LadderSteps {
		return fmt.Errorf("qos: ladder step %d out of range [0, %d]", step, LadderSteps)
	}
	if step < 0 {
		if l.forced >= 0 {
			// Resume control where the override left it; hysteresis
			// walks it back down as pressure allows.
			l.step = l.forced
			l.calm = 0
		}
		l.forced = -1
		return nil
	}
	l.forced = step
	return nil
}

// Forced reports the active override, or -1 when the controller is in
// charge.
func (l *Ladder) Forced() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forced
}

// RateWindow tracks the hit fraction over the last Size boolean
// outcomes — the serving layer records one outcome per dispatch
// (timed out or not) and reads back the timeout fraction as a
// pressure component. Rate reports 0 until Min outcomes accumulate,
// so a single slow request on an idle server cannot escalate the
// ladder.
type RateWindow struct {
	mu   sync.Mutex
	buf  []bool
	idx  int
	n    int
	hits int
	min  int
}

// DefaultRateWindowSize and DefaultRateWindowMin shape the serving
// layer's timeout window: 64 recent outcomes, at least 8 before the
// fraction is trusted.
const (
	DefaultRateWindowSize = 64
	DefaultRateWindowMin  = 8
)

// NewRateWindow builds a window over the last size outcomes requiring
// min samples (size < 1 and min < 1 use the defaults).
func NewRateWindow(size, min int) *RateWindow {
	if size < 1 {
		size = DefaultRateWindowSize
	}
	if min < 1 {
		min = DefaultRateWindowMin
	}
	if min > size {
		min = size
	}
	return &RateWindow{buf: make([]bool, size), min: min}
}

// Observe records one outcome.
func (w *RateWindow) Observe(hit bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == len(w.buf) {
		if w.buf[w.idx] {
			w.hits--
		}
	} else {
		w.n++
	}
	w.buf[w.idx] = hit
	if hit {
		w.hits++
	}
	w.idx = (w.idx + 1) % len(w.buf)
}

// Rate reports the hit fraction over the window, or 0 with fewer than
// min samples.
func (w *RateWindow) Rate() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n < w.min {
		return 0
	}
	return float64(w.hits) / float64(w.n)
}
