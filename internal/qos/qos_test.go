package qos

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistortionIdentical(t *testing.T) {
	x := []float64{1, -2, 3}
	d, err := Distortion(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("Distortion(x,x) = %g, want 0", d)
	}
}

func TestDistortionKnown(t *testing.T) {
	// exact {2, 4}: floor = 3; errors: |1-2|/max(2,3)=1/3, |4-4|=0 → mean 1/6 → 16.67%
	d, err := Distortion([]float64{2, 4}, []float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-100.0/6) > 1e-9 {
		t.Fatalf("Distortion = %g, want %g", d, 100.0/6)
	}
}

func TestDistortionErrors(t *testing.T) {
	if _, err := Distortion([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Distortion(nil, nil); !errors.Is(err, ErrEmptyOutput) {
		t.Fatalf("err = %v", err)
	}
}

func TestDistortionZeroExact(t *testing.T) {
	// All-zero exact output must not divide by zero.
	d, err := Distortion([]float64{0, 0}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(d) || math.IsInf(d, 0) {
		t.Fatalf("Distortion = %g", d)
	}
}

func TestWeightedVectorDistortion(t *testing.T) {
	// Σ|diff|/Σ|exact| = (1+1)/(10+2) → 16.67%
	d, err := WeightedVectorDistortion([]float64{10, 2}, []float64{11, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-100*2.0/12) > 1e-9 {
		t.Fatalf("WVD = %g", d)
	}
}

func TestWeightedVectorDistortionLargeComponentsDominate(t *testing.T) {
	exact := []float64{100, 1}
	offBig, _ := WeightedVectorDistortion(exact, []float64{110, 1})
	offSmall, _ := WeightedVectorDistortion(exact, []float64{100, 1.1})
	if offBig <= offSmall {
		t.Fatalf("large-component error (%g) should dominate small (%g)", offBig, offSmall)
	}
}

func TestWeightedVectorDistortionDegenerate(t *testing.T) {
	d, err := WeightedVectorDistortion([]float64{0, 0}, []float64{0, 0})
	if err != nil || d != 0 {
		t.Fatalf("d=%g err=%v", d, err)
	}
	d, err = WeightedVectorDistortion([]float64{0, 0}, []float64{1, 0})
	if err != nil || d != 100 {
		t.Fatalf("zero-exact nonzero-approx: d=%g err=%v", d, err)
	}
	if _, err := WeightedVectorDistortion([]float64{1}, []float64{}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatal("want length mismatch")
	}
	if _, err := WeightedVectorDistortion(nil, nil); !errors.Is(err, ErrEmptyOutput) {
		t.Fatal("want empty error")
	}
}

func TestPSNRIdenticalIsInf(t *testing.T) {
	x := []float64{10, 20, 30}
	p, err := PSNR(x, x, 255)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p, 1) {
		t.Fatalf("PSNR identical = %g, want +Inf", p)
	}
}

func TestPSNRKnown(t *testing.T) {
	// MSE = 1, peak 255 → 10*log10(65025) ≈ 48.13 dB.
	p, err := PSNR([]float64{0, 0}, []float64{1, -1}, 255)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-10*math.Log10(255*255)) > 1e-9 {
		t.Fatalf("PSNR = %g", p)
	}
}

func TestPSNRErrors(t *testing.T) {
	if _, err := PSNR([]float64{1}, []float64{1, 2}, 255); !errors.Is(err, ErrLengthMismatch) {
		t.Fatal("want mismatch error")
	}
	if _, err := PSNR(nil, nil, 255); !errors.Is(err, ErrEmptyOutput) {
		t.Fatal("want empty error")
	}
	if _, err := PSNR([]float64{1}, []float64{1}, 0); err == nil {
		t.Fatal("want peak error")
	}
}

func TestPSNRDegradationRoundTrip(t *testing.T) {
	if got := PSNRToDegradation(30, 50); got != 20 {
		t.Fatalf("deg = %g, want 20", got)
	}
	if got := PSNRToDegradation(60, 50); got != 0 {
		t.Fatalf("above-cap deg = %g, want 0", got)
	}
	if got := PSNRToDegradation(math.Inf(1), 50); got != 0 {
		t.Fatalf("inf deg = %g, want 0", got)
	}
	if got := DegradationToPSNR(20, 50); got != 30 {
		t.Fatalf("psnr = %g, want 30", got)
	}
	if got := DegradationToPSNR(0, 50); got != 50 {
		t.Fatalf("psnr = %g, want 50", got)
	}
}

// Property: distortion is non-negative and zero only for identical outputs
// (up to the metric's floor behavior).
func TestDistortionNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		exact := make([]float64, n)
		approx := make([]float64, n)
		for i := 0; i < n; i++ {
			exact[i] = rng.NormFloat64() * 10
			approx[i] = exact[i] + rng.NormFloat64()
		}
		d, err := Distortion(exact, approx)
		if err != nil || d < 0 || math.IsNaN(d) {
			return false
		}
		d0, err := Distortion(exact, exact)
		return err == nil && d0 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: PSNR decreases as noise amplitude increases.
func TestPSNRMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		exact := make([]float64, n)
		noise := make([]float64, n)
		for i := 0; i < n; i++ {
			exact[i] = rng.Float64() * 255
			noise[i] = rng.NormFloat64()
		}
		prev := math.Inf(1)
		for _, amp := range []float64{0.5, 1, 2, 4} {
			approx := make([]float64, n)
			for i := range approx {
				approx[i] = exact[i] + amp*noise[i]
			}
			p, err := PSNR(exact, approx, 255)
			if err != nil {
				return false
			}
			if p > prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
