package qos

import (
	"sync"
	"testing"
)

func mustLadder(t *testing.T, opts LadderOptions) *Ladder {
	t.Helper()
	l, err := NewLadder(opts)
	if err != nil {
		t.Fatalf("NewLadder: %v", err)
	}
	return l
}

func TestLadderEscalatesImmediately(t *testing.T) {
	l := mustLadder(t, LadderOptions{})
	if got := l.Update(0.1); got != 0 {
		t.Fatalf("idle step = %d, want 0", got)
	}
	if got := l.Update(0.55); got != 1 {
		t.Fatalf("step after 0.55 = %d, want 1", got)
	}
	// A spike jumps multiple rungs in one update.
	if got := l.Update(0.95); got != 3 {
		t.Fatalf("step after 0.95 = %d, want 3", got)
	}
	if got := l.Step(); got != 3 {
		t.Fatalf("Step() = %d, want 3", got)
	}
}

func TestLadderRecoversWithDwell(t *testing.T) {
	l := mustLadder(t, LadderOptions{Dwell: 3})
	l.Update(0.6) // step 1 (enter 0.50)
	// Below exit (0.35) but not for long enough: still step 1.
	if got := l.Update(0.1); got != 1 {
		t.Fatalf("step after 1 calm update = %d, want 1", got)
	}
	if got := l.Update(0.1); got != 1 {
		t.Fatalf("step after 2 calm updates = %d, want 1", got)
	}
	if got := l.Update(0.1); got != 0 {
		t.Fatalf("step after 3 calm updates = %d, want 0", got)
	}
	// Recovery is one rung at a time: from step 2, three calm updates
	// reach step 1, three more reach 0.
	l.Update(0.8) // step 2 (enter 0.75)
	for i := 0; i < 3; i++ {
		l.Update(0.0)
	}
	if got := l.Step(); got != 1 {
		t.Fatalf("step after first dwell from 2 = %d, want 1", got)
	}
	for i := 0; i < 3; i++ {
		l.Update(0.0)
	}
	if got := l.Step(); got != 0 {
		t.Fatalf("step after second dwell = %d, want 0", got)
	}
}

func TestLadderHysteresisNoFlap(t *testing.T) {
	l := mustLadder(t, LadderOptions{Dwell: 2})
	l.Update(0.55) // step 1
	// Pressure hovering in the gap (between exit 0.35 and enter 0.50)
	// holds the step forever — no flapping at the boundary.
	for i := 0; i < 50; i++ {
		if got := l.Update(0.40); got != 1 {
			t.Fatalf("update %d in hysteresis gap: step = %d, want 1", i, got)
		}
	}
	// A calm streak interrupted by one in-gap observation restarts the
	// dwell count.
	l.Update(0.1)                       // calm 1/2
	l.Update(0.40)                      // resets calm
	if got := l.Update(0.1); got != 1 { // calm 1/2 again
		t.Fatalf("step after interrupted streak = %d, want 1", got)
	}
	if got := l.Update(0.1); got != 0 {
		t.Fatalf("step after full streak = %d, want 0", got)
	}
}

func TestLadderForce(t *testing.T) {
	l := mustLadder(t, LadderOptions{})
	if err := l.Force(2); err != nil {
		t.Fatalf("Force(2): %v", err)
	}
	if got := l.Forced(); got != 2 {
		t.Fatalf("Forced() = %d, want 2", got)
	}
	// Pressure is ignored while forced.
	if got := l.Update(0.0); got != 2 {
		t.Fatalf("forced Update(0) = %d, want 2", got)
	}
	if got := l.Update(1.0); got != 2 {
		t.Fatalf("forced Update(1) = %d, want 2", got)
	}
	if err := l.Force(LadderSteps + 1); err == nil {
		t.Fatal("Force past LadderSteps succeeded")
	}
	// Clearing resumes control from the forced step; calm pressure
	// then walks it down.
	if err := l.Force(-1); err != nil {
		t.Fatalf("Force(-1): %v", err)
	}
	if got := l.Forced(); got != -1 {
		t.Fatalf("Forced() after clear = %d, want -1", got)
	}
	if got := l.Step(); got != 2 {
		t.Fatalf("Step() after clear = %d, want 2 (resume where forced)", got)
	}
	for i := 0; i < DefaultLadderDwell; i++ {
		l.Update(0.0)
	}
	if got := l.Step(); got != 1 {
		t.Fatalf("Step() after dwell = %d, want 1", got)
	}
}

func TestLadderOptionValidation(t *testing.T) {
	if _, err := NewLadder(LadderOptions{Enter: []float64{0.5, 0.4, 0.9}, Exit: []float64{0.3, 0.3, 0.8}}); err == nil {
		t.Fatal("decreasing Enter accepted")
	}
	if _, err := NewLadder(LadderOptions{Enter: []float64{0.5, 0.7, 0.9}, Exit: []float64{0.5, 0.6, 0.8}}); err == nil {
		t.Fatal("Exit >= Enter (no hysteresis gap) accepted")
	}
	if _, err := NewLadder(LadderOptions{Enter: []float64{0.5}}); err == nil {
		t.Fatal("short Enter accepted")
	}
	if l, err := NewLadder(LadderOptions{Enter: []float64{0.4, 0.6, 0.8}, Exit: []float64{0.2, 0.5, 0.7}, Dwell: 1}); err != nil || l == nil {
		t.Fatalf("valid custom options rejected: %v", err)
	}
}

func TestLadderConcurrent(t *testing.T) {
	l := mustLadder(t, LadderOptions{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Update(float64(g%4) * 0.3)
				l.Step()
				if i%50 == 0 {
					l.Force(g % 2)
					l.Force(-1)
				}
			}
		}(g)
	}
	wg.Wait()
	if s := l.Step(); s < 0 || s > LadderSteps {
		t.Fatalf("step out of range after churn: %d", s)
	}
}

func TestRateWindow(t *testing.T) {
	w := NewRateWindow(8, 4)
	// Below the sample floor the rate is pinned to 0.
	w.Observe(true)
	w.Observe(true)
	w.Observe(true)
	if got := w.Rate(); got != 0 {
		t.Fatalf("Rate() with 3 < min samples = %g, want 0", got)
	}
	w.Observe(true)
	if got := w.Rate(); got != 1 {
		t.Fatalf("Rate() = %g, want 1", got)
	}
	for i := 0; i < 4; i++ {
		w.Observe(false)
	}
	if got := w.Rate(); got != 0.5 {
		t.Fatalf("Rate() = %g, want 0.5", got)
	}
	// The window slides: 8 misses evict every hit.
	for i := 0; i < 4; i++ {
		w.Observe(false)
	}
	if got := w.Rate(); got != 0 {
		t.Fatalf("Rate() after sliding out hits = %g, want 0", got)
	}
}

func TestRateWindowConcurrent(t *testing.T) {
	w := NewRateWindow(64, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w.Observe(i%2 == 0)
				w.Rate()
			}
		}(g)
	}
	wg.Wait()
	if r := w.Rate(); r < 0 || r > 1 {
		t.Fatalf("rate out of range after churn: %g", r)
	}
}
