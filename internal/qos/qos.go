// Package qos implements the accuracy metrics the paper's benchmarks use
// (paper §3.1, §4.1): the default relative "distortion" of Rinard (ICS'06)
// for numerical outputs, PSNR for image/video outputs, and a
// magnitude-weighted vector distortion for Bodytrack-style pose vectors.
//
// All degradation metrics share the convention: 0 means the approximate
// output is identical to the exact output, larger is worse, and values are
// expressed in percent so they compose directly with error budgets like
// "5%". PSNR is the one higher-is-better metric and is kept in dB.
package qos

import (
	"errors"
	"math"
)

// ErrLengthMismatch reports differently sized exact/approximate outputs.
var ErrLengthMismatch = errors.New("qos: output length mismatch")

// ErrEmptyOutput reports empty outputs.
var ErrEmptyOutput = errors.New("qos: empty output")

// Distortion returns the mean relative scaled difference between the exact
// and approximate outputs, in percent:
//
//	100/n · Σ |approx_i - exact_i| / max(|exact_i|, floor)
//
// floor guards elements whose exact value is ~0 (where a relative error is
// meaningless); it is set to the mean absolute magnitude of the exact
// output, so near-zero elements are judged on the output's natural scale.
func Distortion(exact, approx []float64) (float64, error) {
	if len(exact) != len(approx) {
		return 0, ErrLengthMismatch
	}
	if len(exact) == 0 {
		return 0, ErrEmptyOutput
	}
	floor := 0.0
	for _, v := range exact {
		floor += math.Abs(v)
	}
	floor /= float64(len(exact))
	if floor < 1e-300 {
		floor = 1
	}
	sum := 0.0
	for i, e := range exact {
		den := math.Abs(e)
		if den < floor {
			den = floor
		}
		sum += math.Abs(approx[i]-e) / den
	}
	return 100 * sum / float64(len(exact)), nil
}

// WeightedVectorDistortion is the Bodytrack QoS metric (paper §4.1): the
// distortion of pose vectors where each component's weight is proportional
// to its magnitude, so large body parts influence the metric more. Returned
// in percent.
func WeightedVectorDistortion(exact, approx []float64) (float64, error) {
	if len(exact) != len(approx) {
		return 0, ErrLengthMismatch
	}
	if len(exact) == 0 {
		return 0, ErrEmptyOutput
	}
	// With weights proportional to component magnitude, the weighted mean
	// relative error collapses to Σ|approx-exact| / Σ|exact|: components
	// that represent larger body parts dominate, exactly as described.
	var totalMag, sum float64
	for i, e := range exact {
		totalMag += math.Abs(e)
		sum += math.Abs(approx[i] - e)
	}
	if totalMag < 1e-300 {
		if sum < 1e-300 {
			return 0, nil
		}
		return 100, nil
	}
	return 100 * sum / totalMag, nil
}

// PSNR returns the peak signal-to-noise ratio in dB between an exact and
// approximate signal, given the peak value of the signal's dynamic range
// (e.g. 255 for 8-bit frames). Identical signals return +Inf.
func PSNR(exact, approx []float64, peak float64) (float64, error) {
	if len(exact) != len(approx) {
		return 0, ErrLengthMismatch
	}
	if len(exact) == 0 {
		return 0, ErrEmptyOutput
	}
	if peak <= 0 {
		return 0, errors.New("qos: peak must be positive")
	}
	mse := 0.0
	for i, e := range exact {
		d := approx[i] - e
		mse += d * d
	}
	mse /= float64(len(exact))
	if mse == 0 {
		return math.Inf(1), nil
	}
	return 10 * math.Log10(peak*peak/mse), nil
}

// PSNRToDegradation converts a PSNR measurement (dB, higher better) into
// the uniform degradation scale (percent-like, lower better) used by the
// optimizer: degradation = max(0, cap - psnr). cap is the PSNR above which
// output is considered perfect (quantization-only noise). This mirrors the
// paper's use of target PSNR values as "budgets" for FFmpeg (§5.3).
func PSNRToDegradation(psnr, cap float64) float64 {
	if math.IsInf(psnr, 1) || psnr >= cap {
		return 0
	}
	return cap - psnr
}

// DegradationToPSNR inverts PSNRToDegradation.
func DegradationToPSNR(deg, cap float64) float64 {
	if deg <= 0 {
		return cap
	}
	return cap - deg
}
