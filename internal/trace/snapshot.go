package trace

// RecorderSnapshot is the JSON-stable export of a Recorder: everything a
// run's work accounting observed, in a form that persists and rehydrates
// without loss. Maps marshal with sorted keys under encoding/json, so two
// identical recorders produce identical bytes — the same property the obs
// registry snapshot relies on.
type RecorderSnapshot struct {
	// TotalWork is the total abstract work units recorded.
	TotalWork uint64 `json:"total_work"`
	// Iterations is the number of outer-loop iterations observed.
	Iterations int `json:"iterations"`
	// PerIteration is the work recorded during each outer iteration.
	PerIteration []uint64 `json:"per_iteration,omitempty"`
	// Context is the block-call sequence of the first outer iteration —
	// the run's control-flow signature, element per block call.
	Context []string `json:"context,omitempty"`
	// BlockWork is the total work attributed to each block.
	BlockWork map[string]uint64 `json:"block_work,omitempty"`
}

// Snapshot exports the recorder's state. The returned snapshot shares
// nothing with the recorder; mutating one never affects the other.
func (r *Recorder) Snapshot() RecorderSnapshot {
	s := RecorderSnapshot{
		TotalWork:  r.totalWork,
		Iterations: r.iters,
	}
	if len(r.perIter) > 0 {
		s.PerIteration = make([]uint64, len(r.perIter))
		copy(s.PerIteration, r.perIter)
	}
	if len(r.ctxOnce) > 0 {
		s.Context = make([]string, len(r.ctxOnce))
		copy(s.Context, r.ctxOnce)
	}
	if len(r.perBlock) > 0 {
		s.BlockWork = make(map[string]uint64, len(r.perBlock))
		for b, w := range r.perBlock {
			s.BlockWork[b] = w
		}
	}
	return s
}

// FromSnapshot rehydrates a Recorder whose accessors report exactly what
// the snapshotted recorder reported. The recorder shares nothing with the
// snapshot.
func FromSnapshot(s RecorderSnapshot) *Recorder {
	r := &Recorder{
		totalWork: s.TotalWork,
		iters:     s.Iterations,
	}
	if len(s.PerIteration) > 0 {
		r.perIter = make([]uint64, len(s.PerIteration))
		copy(r.perIter, s.PerIteration)
	}
	if len(s.Context) > 0 {
		r.ctxOnce = make([]string, len(s.Context))
		copy(r.ctxOnce, s.Context)
	}
	if len(s.BlockWork) > 0 {
		r.perBlock = make(map[string]uint64, len(s.BlockWork))
		for b, w := range s.BlockWork {
			r.perBlock[b] = w
		}
	}
	return r
}
