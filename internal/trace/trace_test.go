package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var r Recorder
	r.Call("a", 10) // before any iteration: still counted in totals
	if r.TotalWork() != 10 {
		t.Fatalf("TotalWork = %d, want 10", r.TotalWork())
	}
	if r.Iterations() != 0 {
		t.Fatalf("Iterations = %d, want 0", r.Iterations())
	}
}

func TestIterationAccounting(t *testing.T) {
	var r Recorder
	r.BeginIteration()
	r.Call("a", 5)
	r.Call("b", 7)
	r.BeginIteration()
	r.Call("a", 3)
	r.Overhead(2)
	if r.Iterations() != 2 {
		t.Fatalf("Iterations = %d, want 2", r.Iterations())
	}
	iw := r.IterationWork()
	if iw[0] != 12 || iw[1] != 5 {
		t.Fatalf("IterationWork = %v, want [12 5]", iw)
	}
	if r.TotalWork() != 17 {
		t.Fatalf("TotalWork = %d, want 17", r.TotalWork())
	}
	if r.BlockWork("a") != 8 || r.BlockWork("b") != 7 {
		t.Fatalf("BlockWork a=%d b=%d", r.BlockWork("a"), r.BlockWork("b"))
	}
}

func TestContextSignatureFirstIterationOnly(t *testing.T) {
	var r Recorder
	r.BeginIteration()
	r.Call("f", 1)
	r.Call("g", 1)
	r.BeginIteration()
	r.Call("h", 1) // second iteration must not extend the signature
	if got := r.ContextSignature(); got != "f>g" {
		t.Fatalf("ContextSignature = %q, want f>g", got)
	}
}

func TestIterationWorkIsCopy(t *testing.T) {
	var r Recorder
	r.BeginIteration()
	r.Call("a", 1)
	iw := r.IterationWork()
	iw[0] = 999
	if r.IterationWork()[0] != 1 {
		t.Fatal("IterationWork must return a copy")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(100, 50) != 2 {
		t.Fatal("Speedup(100,50) != 2")
	}
	if Speedup(100, 0) != 0 {
		t.Fatal("Speedup with zero observed should be 0")
	}
	if Speedup(100, 200) != 0.5 {
		t.Fatal("slowdown should be < 1")
	}
}

func TestWorkSavedPercent(t *testing.T) {
	if got := WorkSavedPercent(100, 80); math.Abs(got-20) > 1e-9 {
		t.Fatalf("WorkSaved = %g, want 20", got)
	}
	if got := WorkSavedPercent(100, 120); math.Abs(got+20) > 1e-9 {
		t.Fatalf("WorkSaved = %g, want -20", got)
	}
	if got := WorkSavedPercent(0, 50); got != 0 {
		t.Fatalf("WorkSaved with zero baseline = %g, want 0", got)
	}
}

func TestStringSmoke(t *testing.T) {
	var r Recorder
	r.BeginIteration()
	r.Call("x", 4)
	if r.String() == "" {
		t.Fatal("String is empty")
	}
}

// Property: total work equals the sum of per-iteration work when all work
// happens inside iterations.
func TestTotalMatchesPerIterSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var r Recorder
		var want uint64
		iters := 1 + rng.Intn(20)
		for i := 0; i < iters; i++ {
			r.BeginIteration()
			calls := rng.Intn(5)
			for c := 0; c < calls; c++ {
				w := uint64(rng.Intn(100))
				r.Call("b", w)
				want += w
			}
		}
		var sum uint64
		for _, w := range r.IterationWork() {
			sum += w
		}
		return r.TotalWork() == want && sum == want && r.Iterations() == iters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
