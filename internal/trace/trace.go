// Package trace provides the deterministic work accounting and
// call-context logging OPPROX needs from an instrumented application
// (paper §3.3). The paper measures "speedup" as a ratio of instruction
// counts collected from hardware counters; here each approximable block
// reports abstract work units for the inner iterations it actually
// executes, which preserves every relative comparison while making runs
// bit-for-bit reproducible.
package trace

import (
	"fmt"
	"strings"
)

// Recorder accumulates work units and the call-context sequence of one run.
// The zero value is ready to use. Recorder is not safe for concurrent use;
// each run owns its own Recorder.
type Recorder struct {
	totalWork uint64
	iters     int
	// perIter[i] is the work recorded during outer iteration i.
	perIter []uint64
	// ctxOnce is the block-call sequence observed during the first outer
	// iteration — OPPROX's control-flow signature for the run.
	ctxOnce  []string
	perBlock map[string]uint64
}

// BeginIteration marks the start of an outer-loop iteration.
func (r *Recorder) BeginIteration() {
	r.iters++
	r.perIter = append(r.perIter, 0)
}

// Call records that the named approximable block executed, performing the
// given number of abstract work units.
func (r *Recorder) Call(block string, work uint64) {
	r.totalWork += work
	if n := len(r.perIter); n > 0 {
		r.perIter[n-1] += work
	}
	if r.iters <= 1 {
		r.ctxOnce = append(r.ctxOnce, block)
	}
	if r.perBlock == nil {
		r.perBlock = make(map[string]uint64)
	}
	r.perBlock[block] += work
}

// Overhead records work performed outside any approximable block (loop
// control, reductions, output assembly).
func (r *Recorder) Overhead(work uint64) {
	r.totalWork += work
	if n := len(r.perIter); n > 0 {
		r.perIter[n-1] += work
	}
}

// TotalWork returns the total abstract work units recorded.
func (r *Recorder) TotalWork() uint64 { return r.totalWork }

// Iterations returns the number of outer-loop iterations observed.
func (r *Recorder) Iterations() int { return r.iters }

// IterationWork returns a copy of the per-iteration work profile.
func (r *Recorder) IterationWork() []uint64 {
	out := make([]uint64, len(r.perIter))
	copy(out, r.perIter)
	return out
}

// BlockWork returns the total work attributed to one block.
func (r *Recorder) BlockWork(block string) uint64 { return r.perBlock[block] }

// ContextSignature returns the control-flow signature: the ordered
// sequence of approximable blocks executed in the first outer iteration,
// e.g. "forces>positions>strain>timeconstraints". Input-dependent filter
// orderings and block subsets produce distinct signatures (paper §3.4).
func (r *Recorder) ContextSignature() string {
	return strings.Join(r.ctxOnce, ">")
}

// String summarizes the recorder for debugging.
func (r *Recorder) String() string {
	return fmt.Sprintf("trace{work=%d iters=%d ctx=%s}", r.totalWork, r.iters, r.ContextSignature())
}

// Speedup returns baseline work / observed work — the paper's definition
// of speedup (§3.6). Returns 0 when the observed work is 0.
func Speedup(baselineWork, observedWork uint64) float64 {
	if observedWork == 0 {
		return 0
	}
	return float64(baselineWork) / float64(observedWork)
}

// WorkSavedPercent returns 100·(1 - observed/baseline): the "% less work"
// formulation the abstract uses. Negative when approximation backfired and
// the run did more work than the baseline.
func WorkSavedPercent(baselineWork, observedWork uint64) float64 {
	if baselineWork == 0 {
		return 0
	}
	return 100 * (1 - float64(observedWork)/float64(baselineWork))
}
