package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// record builds a recorder with a known mixed history.
func record() *Recorder {
	var r Recorder
	r.BeginIteration()
	r.Call("forces", 120)
	r.Call("positions", 40)
	r.Overhead(3)
	r.BeginIteration()
	r.Call("forces", 110)
	r.Call("strain", 9)
	return &r
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := record()
	snap := r.Snapshot()

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded RecorderSnapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	back := FromSnapshot(decoded)

	if back.TotalWork() != r.TotalWork() {
		t.Errorf("TotalWork = %d, want %d", back.TotalWork(), r.TotalWork())
	}
	if back.Iterations() != r.Iterations() {
		t.Errorf("Iterations = %d, want %d", back.Iterations(), r.Iterations())
	}
	if !reflect.DeepEqual(back.IterationWork(), r.IterationWork()) {
		t.Errorf("IterationWork = %v, want %v", back.IterationWork(), r.IterationWork())
	}
	if back.ContextSignature() != r.ContextSignature() {
		t.Errorf("ContextSignature = %q, want %q", back.ContextSignature(), r.ContextSignature())
	}
	for _, block := range []string{"forces", "positions", "strain", "absent"} {
		if back.BlockWork(block) != r.BlockWork(block) {
			t.Errorf("BlockWork(%q) = %d, want %d", block, back.BlockWork(block), r.BlockWork(block))
		}
	}
	if !reflect.DeepEqual(back.Snapshot(), snap) {
		t.Errorf("re-snapshot differs:\n got %+v\nwant %+v", back.Snapshot(), snap)
	}
}

// TestSnapshotBytesDeterministic pins the byte-identical-encoding
// property the determinism story relies on: the same history always
// marshals to the same bytes.
func TestSnapshotBytesDeterministic(t *testing.T) {
	a, err := json.Marshal(record().Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for i := 0; i < 10; i++ {
		b, err := json.Marshal(record().Snapshot())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("encoding differs between identical recorders:\n%s\n%s", a, b)
		}
	}
}

// TestSnapshotIsolated verifies snapshot and recorder share no state.
func TestSnapshotIsolated(t *testing.T) {
	r := record()
	snap := r.Snapshot()
	r.BeginIteration()
	r.Call("late", 999)
	if snap.TotalWork != 282 || len(snap.PerIteration) != 2 || snap.BlockWork["late"] != 0 {
		t.Errorf("snapshot mutated by later recording: %+v", snap)
	}

	back := FromSnapshot(snap)
	snap.PerIteration[0] = 0
	snap.BlockWork["forces"] = 0
	if iw := back.IterationWork(); iw[0] != 163 {
		t.Errorf("rehydrated recorder shares PerIteration with snapshot: %v", iw)
	}
	if back.BlockWork("forces") != 230 {
		t.Errorf("rehydrated recorder shares BlockWork with snapshot: %d", back.BlockWork("forces"))
	}
}

func TestZeroRecorderSnapshot(t *testing.T) {
	var r Recorder
	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(data) != `{"total_work":0,"iterations":0}` {
		t.Errorf("zero snapshot = %s", data)
	}
	back := FromSnapshot(snap)
	if back.TotalWork() != 0 || back.Iterations() != 0 || back.ContextSignature() != "" {
		t.Errorf("zero round-trip not zero: %s", back)
	}
}
