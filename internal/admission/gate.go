package admission

import (
	"context"
	"sync/atomic"
)

// Gate bounds concurrent in-flight computations with a buffered-channel
// semaphore and counts how many callers are queued behind it. The
// serving layer acquires a slot *before* spawning a dispatch worker
// goroutine, so a burst of timed-out requests can abandon at most Cap
// running computations — the rest never start (the goroutine-leak fix,
// ISSUE 9) — and InFlight/Waiting become the load signals the
// degradation ladder steers by.
type Gate struct {
	sem     chan struct{}
	waiting atomic.Int64
}

// NewGate builds a gate admitting up to capacity concurrent holders
// (minimum 1).
func NewGate(capacity int) *Gate {
	if capacity < 1 {
		capacity = 1
	}
	return &Gate{sem: make(chan struct{}, capacity)}
}

// Acquire takes a slot, blocking until one frees or ctx is done (the
// queue wait is bounded by the request deadline). It returns ctx.Err()
// without a slot on timeout/cancel.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.sem <- struct{}{}:
		return nil
	default:
	}
	g.waiting.Add(1)
	defer g.waiting.Add(-1)
	select {
	case g.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TryAcquire takes a slot only if one is free right now.
func (g *Gate) TryAcquire() bool {
	select {
	case g.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot taken by Acquire/TryAcquire.
func (g *Gate) Release() { <-g.sem }

// InFlight reports current slot holders.
func (g *Gate) InFlight() int { return len(g.sem) }

// Waiting reports callers blocked in Acquire.
func (g *Gate) Waiting() int { return int(g.waiting.Load()) }

// Cap reports the gate's capacity.
func (g *Gate) Cap() int { return cap(g.sem) }
