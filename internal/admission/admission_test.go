package admission

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic limiter
// tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestLimiterClientBucket(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(Options{ClientRate: 1, ClientBurst: 2, Now: clk.Now})

	for i := 0; i < 2; i++ {
		if d := l.Allow("a"); !d.OK {
			t.Fatalf("burst request %d rejected: %+v", i, d)
		}
	}
	d := l.Allow("a")
	if d.OK {
		t.Fatal("third request within burst admitted")
	}
	if d.Reason != ReasonClientRate {
		t.Fatalf("reason = %q, want %q", d.Reason, ReasonClientRate)
	}
	if d.RetryAfter <= 0 || d.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 1s]", d.RetryAfter)
	}

	// An unrelated client has its own bucket.
	if d := l.Allow("b"); !d.OK {
		t.Fatalf("independent client rejected: %+v", d)
	}

	// One token refills after one second at rate 1.
	clk.Advance(time.Second)
	if d := l.Allow("a"); !d.OK {
		t.Fatalf("request after refill rejected: %+v", d)
	}
	if d := l.Allow("a"); d.OK {
		t.Fatal("second request after single-token refill admitted")
	}

	// Refill clamps at burst: a long idle period doesn't bank tokens.
	clk.Advance(time.Hour)
	for i := 0; i < 2; i++ {
		if d := l.Allow("a"); !d.OK {
			t.Fatalf("post-idle burst request %d rejected: %+v", i, d)
		}
	}
	if d := l.Allow("a"); d.OK {
		t.Fatal("idle period banked more than burst tokens")
	}
}

func TestLimiterGlobalBucket(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(Options{GlobalRate: 1, GlobalBurst: 3, Now: clk.Now})

	// Distinct clients all drain the one global bucket.
	for i := 0; i < 3; i++ {
		if d := l.Allow(fmt.Sprintf("c%d", i)); !d.OK {
			t.Fatalf("global burst request %d rejected: %+v", i, d)
		}
	}
	d := l.Allow("c9")
	if d.OK || d.Reason != ReasonGlobalRate {
		t.Fatalf("over-global decision = %+v, want global_rate rejection", d)
	}
	clk.Advance(time.Second)
	if d := l.Allow("c9"); !d.OK {
		t.Fatalf("request after global refill rejected: %+v", d)
	}
}

func TestLimiterGlobalRejectionKeepsClientToken(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(Options{
		ClientRate: 1, ClientBurst: 1,
		GlobalRate: 1, GlobalBurst: 1,
		Now: clk.Now,
	})
	if d := l.Allow("a"); !d.OK {
		t.Fatalf("first request rejected: %+v", d)
	}
	// Global bucket is empty; b's rejection must not burn b's token.
	if d := l.Allow("b"); d.OK || d.Reason != ReasonGlobalRate {
		t.Fatalf("decision = %+v, want global_rate rejection", d)
	}
	clk.Advance(time.Second)
	if d := l.Allow("b"); !d.OK {
		t.Fatalf("b rejected after global refill (token was burned): %+v", d)
	}
}

func TestLimiterFailureLockout(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(Options{
		FailureLimit:  3,
		FailureWindow: 10 * time.Second,
		Lockout:       30 * time.Second,
		Now:           clk.Now,
	})

	// Below the limit: still admitted.
	l.NoteFailure("a")
	l.NoteFailure("a")
	if d := l.Allow("a"); !d.OK {
		t.Fatalf("client below failure limit rejected: %+v", d)
	}
	l.NoteFailure("a")
	d := l.Allow("a")
	if d.OK || d.Reason != ReasonLockedOut {
		t.Fatalf("decision = %+v, want locked_out rejection", d)
	}
	if d.RetryAfter <= 0 || d.RetryAfter > 30*time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 30s]", d.RetryAfter)
	}
	if locked, left := l.LockedOut("a"); !locked || left <= 0 {
		t.Fatalf("LockedOut = %v, %v, want locked with time left", locked, left)
	}
	// Other clients are unaffected.
	if locked, _ := l.LockedOut("b"); locked {
		t.Fatal("unrelated client reported locked out")
	}
	if d := l.Allow("b"); !d.OK {
		t.Fatalf("unrelated client rejected: %+v", d)
	}

	// The lockout expires.
	clk.Advance(31 * time.Second)
	if locked, _ := l.LockedOut("a"); locked {
		t.Fatal("client still locked out after expiry")
	}
	if d := l.Allow("a"); !d.OK {
		t.Fatalf("client rejected after lockout expiry: %+v", d)
	}
}

func TestLimiterFailureWindowSlides(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(Options{
		FailureLimit:  3,
		FailureWindow: 10 * time.Second,
		Lockout:       30 * time.Second,
		Now:           clk.Now,
	})
	// Three failures spread wider than the window never lock.
	l.NoteFailure("a")
	clk.Advance(11 * time.Second)
	l.NoteFailure("a")
	clk.Advance(11 * time.Second)
	l.NoteFailure("a")
	if locked, _ := l.LockedOut("a"); locked {
		t.Fatal("failures outside the window locked the client")
	}
	// Three inside one window do.
	l.NoteFailure("a")
	l.NoteFailure("a")
	if locked, _ := l.LockedOut("a"); !locked {
		t.Fatal("three failures inside the window did not lock the client")
	}
}

func TestLimiterClientEviction(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(Options{ClientRate: 1, ClientBurst: 1, MaxClients: 2, Now: clk.Now})
	l.Allow("a")
	l.Allow("b")
	l.Allow("a") // refresh a: b becomes the eviction candidate
	l.Allow("c") // evicts b
	if n := l.Clients(); n != 2 {
		t.Fatalf("Clients() = %d, want 2", n)
	}
	// a was retained: its drained bucket survived the churn. b was
	// evicted: it returns as a fresh client with a full bucket (which
	// in turn evicts the LRU entry again — the bound holds).
	if d := l.Allow("a"); d.OK {
		t.Fatal("retained client's bucket was reset by eviction churn")
	}
	if d := l.Allow("b"); !d.OK {
		t.Fatalf("evicted client did not reset: %+v", d)
	}
	if n := l.Clients(); n != 2 {
		t.Fatalf("Clients() after re-adding = %d, want 2", n)
	}
}

func TestLimiterZeroOptionsAdmitsEverything(t *testing.T) {
	l := NewLimiter(Options{Now: newFakeClock().Now})
	for i := 0; i < 100; i++ {
		if d := l.Allow("a"); !d.OK {
			t.Fatalf("zero-options limiter rejected request %d: %+v", i, d)
		}
	}
	l.NoteFailure("a") // no-op with FailureLimit 0
	if locked, _ := l.LockedOut("a"); locked {
		t.Fatal("zero-options limiter locked a client out")
	}
}

func TestLimiterConcurrent(t *testing.T) {
	l := NewLimiter(Options{
		ClientRate: 1000, ClientBurst: 50,
		GlobalRate: 5000, GlobalBurst: 200,
		FailureLimit: 5, FailureWindow: time.Second, Lockout: time.Second,
		MaxClients: 8,
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("c%d", g%3)
			for i := 0; i < 500; i++ {
				l.Allow(key)
				if i%50 == 0 {
					l.NoteFailure(key)
					l.LockedOut(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := l.Clients(); n > 8 {
		t.Fatalf("Clients() = %d, want <= MaxClients 8", n)
	}
}

func TestGate(t *testing.T) {
	g := NewGate(2)
	if g.Cap() != 2 {
		t.Fatalf("Cap() = %d, want 2", g.Cap())
	}
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if !g.TryAcquire() {
		t.Fatal("TryAcquire with a free slot failed")
	}
	if g.InFlight() != 2 {
		t.Fatalf("InFlight() = %d, want 2", g.InFlight())
	}
	if g.TryAcquire() {
		t.Fatal("TryAcquire past capacity succeeded")
	}

	// A full gate blocks Acquire until the deadline, counting the
	// waiter, and returns ctx.Err() without a slot.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx) }()
	deadline := time.Now().Add(time.Second)
	for g.Waiting() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g.Waiting() != 1 {
		t.Fatalf("Waiting() = %d, want 1", g.Waiting())
	}
	if err := <-done; err != context.DeadlineExceeded {
		t.Fatalf("Acquire on full gate = %v, want DeadlineExceeded", err)
	}
	if g.Waiting() != 0 {
		t.Fatalf("Waiting() = %d after timeout, want 0", g.Waiting())
	}
	if g.InFlight() != 2 {
		t.Fatalf("InFlight() = %d after failed Acquire, want 2", g.InFlight())
	}

	// Releasing frees a slot for a blocked waiter.
	go func() { done <- g.Acquire(context.Background()) }()
	g.Release()
	if err := <-done; err != nil {
		t.Fatalf("Acquire after Release: %v", err)
	}
	g.Release()
	g.Release()
	if g.InFlight() != 0 {
		t.Fatalf("InFlight() = %d after draining, want 0", g.InFlight())
	}
}

func TestGateConcurrent(t *testing.T) {
	const capacity = 4
	g := NewGate(capacity)
	var wg sync.WaitGroup
	var peak, cur int64
	var mu sync.Mutex
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(context.Background()); err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			g.Release()
		}()
	}
	wg.Wait()
	if peak > capacity {
		t.Fatalf("observed %d concurrent holders, cap %d", peak, capacity)
	}
	if g.InFlight() != 0 || g.Waiting() != 0 {
		t.Fatalf("gate not drained: inflight %d waiting %d", g.InFlight(), g.Waiting())
	}
}
