package admission

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkLimiterAllow pins the steady-state admission hot path: an
// established client checked against both buckets. The acceptance bar
// is <= 1 alloc/op; the map-lookup + intrusive-LRU design achieves 0.
func BenchmarkLimiterAllow(b *testing.B) {
	l := NewLimiter(Options{
		ClientRate: 1e9, ClientBurst: 1e9,
		GlobalRate: 1e9, GlobalBurst: 1e9,
		FailureLimit: 5,
	})
	l.Allow("bench-client")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Allow("bench-client")
	}
}

// BenchmarkLimiterAllowRotating exercises the LRU move path: requests
// rotate over a working set of established clients.
func BenchmarkLimiterAllowRotating(b *testing.B) {
	l := NewLimiter(Options{ClientRate: 1e9, GlobalRate: 1e9})
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("client-%02d", i)
		l.Allow(keys[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Allow(keys[i&15])
	}
}

// BenchmarkLimiterRejected measures the rejection path (bucket empty):
// overload is exactly when this path must stay cheap.
func BenchmarkLimiterRejected(b *testing.B) {
	l := NewLimiter(Options{ClientRate: 1e-9, ClientBurst: 1})
	l.Allow("bench-client") // drain the single token
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Allow("bench-client")
	}
}

// BenchmarkGateAcquireRelease measures the uncontended in-flight gate
// cycle wrapped around every dispatch computation.
func BenchmarkGateAcquireRelease(b *testing.B) {
	g := NewGate(64)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Acquire(ctx); err != nil {
			b.Fatal(err)
		}
		g.Release()
	}
}
