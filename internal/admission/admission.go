// Package admission is the ingress gatekeeper for the serving layer: a
// stdlib-only token-bucket rate limiter (per-client and global) with a
// sliding-window failure lockout, plus a bounded in-flight gate whose
// occupancy doubles as the load signal for the degradation ladder
// (internal/qos.Ladder).
//
// The limiter ports the period-limit / failure-limit idiom from the
// clip limit package into plain stdlib: each client gets a lazily
// refilled token bucket (tokens = min(burst, tokens + elapsed*rate))
// and a sliding failure window; too many invalid requests inside the
// window lock the client out entirely for a configurable duration.
// A second, global bucket caps aggregate throughput across clients.
//
// Determinism note: admission decisions are load- and clock-dependent
// by design. They select *which* ladder rung serves a request; they
// never leak into response bodies, so the byte-determinism contract
// (DESIGN.md §8, §15) is preserved per (model version, request, rung).
//
// The steady-state Allow path performs zero heap allocations (pinned
// by BenchmarkLimiterAllow): client state is found by string map
// lookup, and LRU maintenance is pointer surgery on intrusive list
// nodes.
package admission

import (
	"sync"
	"time"
)

// Defaults. Rates are tokens per second; zero rates disable that
// bucket (unlimited).
const (
	DefaultMaxClients    = 4096
	DefaultFailureWindow = 10 * time.Second
	DefaultLockout       = 30 * time.Second
)

// Options configures a Limiter. The zero value disables every check
// (all requests admitted); set only the knobs you want.
type Options struct {
	// ClientRate/ClientBurst shape each client's token bucket.
	// ClientRate <= 0 disables per-client rate limiting.
	// ClientBurst <= 0 defaults to max(1, ClientRate).
	ClientRate  float64
	ClientBurst float64
	// GlobalRate/GlobalBurst shape the aggregate bucket across all
	// clients. GlobalRate <= 0 disables it.
	GlobalRate  float64
	GlobalBurst float64
	// FailureLimit locks a client out after this many recorded
	// failures (invalid bodies) inside FailureWindow. <= 0 disables
	// lockout.
	FailureLimit  int
	FailureWindow time.Duration
	// Lockout is how long a locked-out client stays rejected.
	Lockout time.Duration
	// MaxClients bounds tracked per-client state; the least recently
	// seen client is evicted when the bound is hit (an evicted
	// client's bucket and lockout reset). Default DefaultMaxClients.
	MaxClients int
	// Now is the clock (tests inject a fake). Default time.Now.
	Now func() time.Time
}

// Decision is the outcome of one admission check.
type Decision struct {
	// OK admits the request.
	OK bool
	// RetryAfter estimates how long until a retry could succeed
	// (lockout remaining, or time until one token refills). Zero when
	// OK.
	RetryAfter time.Duration
	// Reason classifies a rejection: "locked_out", "client_rate" or
	// "global_rate". Empty when OK.
	Reason string
}

// Rejection reasons.
const (
	ReasonLockedOut  = "locked_out"
	ReasonClientRate = "client_rate"
	ReasonGlobalRate = "global_rate"
)

// client is one tracked client's bucket, failure window and lockout,
// threaded on an intrusive LRU list (no container/list: its nodes
// would allocate on every move).
type client struct {
	key string

	tokens float64
	last   time.Time

	failures    int
	windowStart time.Time
	lockedUntil time.Time

	prev, next *client
}

// Limiter is a concurrency-safe admission limiter. One mutex guards
// everything: admission checks are tens of nanoseconds, so sharding
// the lock buys nothing at serving-layer request rates.
type Limiter struct {
	opts Options

	mu      sync.Mutex
	clients map[string]*client
	// LRU list: head = most recently seen, tail = eviction candidate.
	head, tail *client

	globalTokens float64
	globalLast   time.Time
}

// NewLimiter builds a Limiter. A nil-equivalent Options (all zero)
// admits everything.
func NewLimiter(opts Options) *Limiter {
	if opts.ClientRate > 0 && opts.ClientBurst <= 0 {
		opts.ClientBurst = opts.ClientRate
		if opts.ClientBurst < 1 {
			opts.ClientBurst = 1
		}
	}
	if opts.GlobalRate > 0 && opts.GlobalBurst <= 0 {
		opts.GlobalBurst = opts.GlobalRate
		if opts.GlobalBurst < 1 {
			opts.GlobalBurst = 1
		}
	}
	if opts.FailureLimit > 0 {
		if opts.FailureWindow <= 0 {
			opts.FailureWindow = DefaultFailureWindow
		}
		if opts.Lockout <= 0 {
			opts.Lockout = DefaultLockout
		}
	}
	if opts.MaxClients <= 0 {
		opts.MaxClients = DefaultMaxClients
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	l := &Limiter{opts: opts, clients: make(map[string]*client)}
	l.globalTokens = opts.GlobalBurst
	return l
}

// Allow decides admission for one request from key, charging one token
// from the client's bucket and one from the global bucket on success.
// Lockout is checked first and never charges tokens.
func (l *Limiter) Allow(key string) Decision {
	now := l.opts.Now()
	l.mu.Lock()
	defer l.mu.Unlock()

	c := l.touch(key, now)
	if until := c.lockedUntil; now.Before(until) {
		return Decision{RetryAfter: until.Sub(now), Reason: ReasonLockedOut}
	}
	if l.opts.ClientRate > 0 {
		refill(&c.tokens, &c.last, now, l.opts.ClientRate, l.opts.ClientBurst)
		if c.tokens < 1 {
			return Decision{RetryAfter: tokenWait(c.tokens, l.opts.ClientRate), Reason: ReasonClientRate}
		}
	}
	if l.opts.GlobalRate > 0 {
		refill(&l.globalTokens, &l.globalLast, now, l.opts.GlobalRate, l.opts.GlobalBurst)
		if l.globalTokens < 1 {
			return Decision{RetryAfter: tokenWait(l.globalTokens, l.opts.GlobalRate), Reason: ReasonGlobalRate}
		}
	}
	// Both buckets have capacity: charge them together so a global
	// rejection never burns the client's token.
	if l.opts.ClientRate > 0 {
		c.tokens--
	}
	if l.opts.GlobalRate > 0 {
		l.globalTokens--
	}
	return Decision{OK: true}
}

// NoteFailure records one invalid request from key (malformed or
// unvalidatable body). FailureLimit failures inside FailureWindow lock
// the client out for Lockout; the window slides by resetting when more
// than FailureWindow has passed since its first failure.
func (l *Limiter) NoteFailure(key string) {
	if l.opts.FailureLimit <= 0 {
		return
	}
	now := l.opts.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	c := l.touch(key, now)
	if c.failures == 0 || now.Sub(c.windowStart) > l.opts.FailureWindow {
		c.failures = 0
		c.windowStart = now
	}
	c.failures++
	if c.failures >= l.opts.FailureLimit {
		c.lockedUntil = now.Add(l.opts.Lockout)
		c.failures = 0
	}
}

// LockedOut reports whether key is currently locked out and, if so,
// for how much longer. It never charges tokens — a sharded ingress
// uses it to reject abusive clients before the proxy hop while leaving
// rate accounting to the owning replica.
func (l *Limiter) LockedOut(key string) (bool, time.Duration) {
	now := l.opts.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.clients[key]
	if !ok || !now.Before(c.lockedUntil) {
		return false, 0
	}
	return true, c.lockedUntil.Sub(now)
}

// Clients reports the number of tracked clients (bounded by
// MaxClients).
func (l *Limiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.clients)
}

// touch returns key's state, creating it (with a full bucket) on first
// sight, moving it to the LRU head, and evicting the tail past
// MaxClients. Caller holds l.mu.
func (l *Limiter) touch(key string, now time.Time) *client {
	c, ok := l.clients[key]
	if !ok {
		c = &client{key: key, tokens: l.opts.ClientBurst, last: now}
		l.clients[key] = c
		l.pushFront(c)
		if len(l.clients) > l.opts.MaxClients {
			ev := l.tail
			l.unlink(ev)
			delete(l.clients, ev.key)
		}
		return c
	}
	if l.head != c {
		l.unlink(c)
		l.pushFront(c)
	}
	return c
}

func (l *Limiter) pushFront(c *client) {
	c.prev = nil
	c.next = l.head
	if l.head != nil {
		l.head.prev = c
	}
	l.head = c
	if l.tail == nil {
		l.tail = c
	}
}

func (l *Limiter) unlink(c *client) {
	if c.prev != nil {
		c.prev.next = c.next
	} else {
		l.head = c.next
	}
	if c.next != nil {
		c.next.prev = c.prev
	} else {
		l.tail = c.prev
	}
	c.prev, c.next = nil, nil
}

// refill is the lazy token-bucket refill: tokens grows by
// elapsed*rate, clamped to burst. Negative elapsed (clock skew under a
// fake clock) is ignored.
func refill(tokens *float64, last *time.Time, now time.Time, rate, burst float64) {
	elapsed := now.Sub(*last).Seconds()
	if elapsed > 0 {
		*tokens += elapsed * rate
		if *tokens > burst {
			*tokens = burst
		}
	}
	*last = now
}

// tokenWait estimates the time until the bucket holds one token.
func tokenWait(tokens, rate float64) time.Duration {
	need := 1 - tokens
	if need < 0 {
		need = 0
	}
	d := time.Duration(need / rate * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}
