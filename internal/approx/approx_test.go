package approx

import (
	"math/rand"
	"testing"
	"testing/quick"
)

var testBlocks = []Block{
	{Name: "a", Technique: Perforation, MaxLevel: 5},
	{Name: "b", Technique: Memoization, MaxLevel: 3},
}

func TestTechniqueString(t *testing.T) {
	for _, tc := range []struct {
		tech Technique
		want string
	}{
		{Perforation, "loop perforation"},
		{Truncation, "loop truncation"},
		{Memoization, "memoization"},
		{ParamTuning, "parameter tuning"},
		{Technique(99), "Technique(99)"},
	} {
		if got := tc.tech.String(); got != tc.want {
			t.Errorf("String(%d) = %q, want %q", int(tc.tech), got, tc.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{1, 2}).Validate(testBlocks); err != nil {
		t.Fatal(err)
	}
	if err := (Config{1}).Validate(testBlocks); err == nil {
		t.Fatal("want length error")
	}
	if err := (Config{6, 0}).Validate(testBlocks); err == nil {
		t.Fatal("want range error (too high)")
	}
	if err := (Config{0, -1}).Validate(testBlocks); err == nil {
		t.Fatal("want range error (negative)")
	}
}

func TestConfigCloneIndependent(t *testing.T) {
	c := Config{1, 2}
	d := c.Clone()
	d[0] = 9
	if c[0] != 1 {
		t.Fatal("Clone must copy")
	}
}

func TestConfigIsAccurate(t *testing.T) {
	if !(Config{0, 0}).IsAccurate() {
		t.Fatal("zeros should be accurate")
	}
	if (Config{0, 1}).IsAccurate() {
		t.Fatal("nonzero should not be accurate")
	}
}

func TestNumConfigs(t *testing.T) {
	if got := NumConfigs(testBlocks); got != 24 {
		t.Fatalf("NumConfigs = %d, want 24", got)
	}
	if got := NumConfigs(nil); got != 1 {
		t.Fatalf("NumConfigs(nil) = %d, want 1", got)
	}
}

func TestEnumerateConfigs(t *testing.T) {
	var seen []string
	EnumerateConfigs(testBlocks, func(c Config) bool {
		seen = append(seen, c.String())
		return true
	})
	if len(seen) != 24 {
		t.Fatalf("enumerated %d configs, want 24", len(seen))
	}
	if seen[0] != "[0 0]" || seen[len(seen)-1] != "[5 3]" {
		t.Fatalf("order wrong: first %s last %s", seen[0], seen[len(seen)-1])
	}
	uniq := map[string]bool{}
	for _, s := range seen {
		if uniq[s] {
			t.Fatalf("duplicate config %s", s)
		}
		uniq[s] = true
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	n := 0
	EnumerateConfigs(testBlocks, func(Config) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("enumerated %d, want stop at 5", n)
	}
}

func TestUniformScheduleIndependentPhases(t *testing.T) {
	s := UniformSchedule(3, Config{1, 2})
	s.Levels[0][0] = 9
	if s.Levels[1][0] != 1 {
		t.Fatal("phases must not share backing config")
	}
}

func TestAccurateSchedule(t *testing.T) {
	s := AccurateSchedule(2)
	if !s.IsAccurate() || s.Phases != 1 {
		t.Fatalf("AccurateSchedule wrong: %v", s)
	}
}

func TestSinglePhaseSchedule(t *testing.T) {
	s := SinglePhaseSchedule(4, 2, Config{3, 1})
	for p := 0; p < 4; p++ {
		cfg := s.LevelsAt(p)
		if p == 2 {
			if cfg[0] != 3 || cfg[1] != 1 {
				t.Fatalf("phase 2 cfg = %v", cfg)
			}
		} else if !cfg.IsAccurate() {
			t.Fatalf("phase %d should be accurate, got %v", p, cfg)
		}
	}
}

func TestScheduleValidate(t *testing.T) {
	ok := UniformSchedule(2, Config{1, 1})
	if err := ok.Validate(testBlocks); err != nil {
		t.Fatal(err)
	}
	bad := Schedule{Phases: 0}
	if err := bad.Validate(testBlocks); err == nil {
		t.Fatal("want phase count error")
	}
	bad2 := Schedule{Phases: 2, Levels: []Config{{0, 0}}}
	if err := bad2.Validate(testBlocks); err == nil {
		t.Fatal("want levels length error")
	}
	bad3 := UniformSchedule(2, Config{9, 0})
	if err := bad3.Validate(testBlocks); err == nil {
		t.Fatal("want per-phase config error")
	}
}

func TestLevelsAtClamps(t *testing.T) {
	s := UniformSchedule(2, Config{1, 2})
	s.Levels[1] = Config{3, 3}
	if got := s.LevelsAt(-1); got[0] != 1 {
		t.Fatalf("LevelsAt(-1) = %v", got)
	}
	if got := s.LevelsAt(7); got[0] != 3 {
		t.Fatalf("LevelsAt(7) = %v, want clamped to last phase", got)
	}
	if s.Level(7, 1) != 3 {
		t.Fatal("Level should clamp too")
	}
}

func TestPhaseOf(t *testing.T) {
	// 10 iterations, 4 phases: size 2, remainder to last → sizes 2,2,2,4.
	want := []int{0, 0, 1, 1, 2, 2, 3, 3, 3, 3}
	for i, w := range want {
		if got := PhaseOf(i, 10, 4); got != w {
			t.Fatalf("PhaseOf(%d,10,4) = %d, want %d", i, got, w)
		}
	}
	// Iterations beyond the baseline belong to the final phase.
	if PhaseOf(25, 10, 4) != 3 {
		t.Fatal("overflow iteration should map to last phase")
	}
	if PhaseOf(5, 10, 1) != 0 {
		t.Fatal("single phase is always 0")
	}
	if PhaseOf(0, 0, 4) != 0 {
		t.Fatal("degenerate baseline should not panic")
	}
	if PhaseOf(1, 2, 4) != 1 {
		t.Fatal("baseline < phases should clamp sizes at 1")
	}
}

func TestPerforate(t *testing.T) {
	var idx []int
	n := Perforate(10, 0, func(i int) { idx = append(idx, i) })
	if n != 10 || len(idx) != 10 {
		t.Fatalf("level 0 ran %d, want 10", n)
	}
	idx = nil
	n = Perforate(10, 2, func(i int) { idx = append(idx, i) })
	if n != 4 {
		t.Fatalf("level 2 ran %d, want 4 (0,3,6,9)", n)
	}
	if idx[1] != 3 || idx[3] != 9 {
		t.Fatalf("indices = %v", idx)
	}
	if Perforate(0, 1, func(int) {}) != 0 {
		t.Fatal("empty loop should run 0")
	}
	if Perforate(5, -3, func(int) {}) != 5 {
		t.Fatal("negative level should clamp to accurate")
	}
}

func TestPerforatedCountMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		level := rng.Intn(8)
		ran := 0
		Perforate(n, level, func(int) { ran++ })
		return ran == PerforatedCount(n, level)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncate(t *testing.T) {
	ran := Truncate(100, 0, 5, func(int) {})
	if ran != 100 {
		t.Fatalf("level 0 ran %d, want 100", ran)
	}
	ran = Truncate(100, 5, 5, func(int) {})
	if ran != 50 {
		t.Fatalf("max level ran %d, want 50", ran)
	}
	ran = Truncate(100, 1, 5, func(int) {})
	if ran != 90 {
		t.Fatalf("level 1 ran %d, want 90", ran)
	}
	if Truncate(1, 5, 5, func(int) {}) != 1 {
		t.Fatal("must keep at least 1 iteration")
	}
	if Truncate(0, 2, 5, func(int) {}) != 0 {
		t.Fatal("empty loop")
	}
	if TruncatedCount(10, 9, 5) != TruncatedCount(10, 5, 5) {
		t.Fatal("level above max should clamp")
	}
}

func TestTruncateKeepsPrefix(t *testing.T) {
	var idx []int
	Truncate(10, 5, 5, func(i int) { idx = append(idx, i) })
	for k, v := range idx {
		if v != k {
			t.Fatalf("truncation must keep the prefix, got %v", idx)
		}
	}
}

func TestMemoize(t *testing.T) {
	var computes, reuses []int
	n := Memoize(7, 2, func(i int) { computes = append(computes, i) },
		func(i, from int) { reuses = append(reuses, from) })
	// period 3: compute at 0,3,6; reuse 1,2 (from 0), 4,5 (from 3).
	if n != 3 {
		t.Fatalf("computed %d, want 3", n)
	}
	if len(reuses) != 4 || reuses[0] != 0 || reuses[2] != 3 {
		t.Fatalf("reuses = %v", reuses)
	}
	// Level 0: all computed, nothing reused.
	computes, reuses = nil, nil
	Memoize(5, 0, func(i int) { computes = append(computes, i) },
		func(i, from int) { reuses = append(reuses, from) })
	if len(computes) != 5 || len(reuses) != 0 {
		t.Fatalf("level 0: computes=%v reuses=%v", computes, reuses)
	}
}

func TestMemoizedCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		level := rng.Intn(8)
		computed := Memoize(n, level, func(int) {}, func(int, int) {})
		return computed == MemoizedCount(n, level)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTunedValue(t *testing.T) {
	if got := TunedValue(100, 20, 0, 4); got != 100 {
		t.Fatalf("level 0 = %g, want accurate 100", got)
	}
	if got := TunedValue(100, 20, 4, 4); got != 20 {
		t.Fatalf("max level = %g, want aggressive 20", got)
	}
	if got := TunedValue(100, 20, 2, 4); got != 60 {
		t.Fatalf("midpoint = %g, want 60", got)
	}
	if got := TunedValue(100, 20, 9, 4); got != 20 {
		t.Fatalf("above max = %g, want clamp to 20", got)
	}
}

// Property: all loop executors do monotonically non-increasing work as the
// level rises.
func TestExecutorsMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		maxLevel := 1 + rng.Intn(7)
		prevP, prevT, prevM := 1<<30, 1<<30, 1<<30
		for l := 0; l <= maxLevel; l++ {
			p := PerforatedCount(n, l)
			tr := TruncatedCount(n, l, maxLevel)
			m := MemoizedCount(n, l)
			if p > prevP || tr > prevT || m > prevM {
				return false
			}
			prevP, prevT, prevM = p, tr, m
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
