// Package approx implements the four approximation techniques the paper
// evaluates (§3.2) — loop perforation, loop truncation, memoization, and
// parameter tuning — plus the configuration and per-phase schedule types
// that tie a technique's discrete approximation level (AL) knob to an
// application's approximable blocks (ABs).
//
// Every technique is the identity at level 0 (the accurate run) and
// degrades monotonically as the level rises to the block's MaxLevel.
package approx

import (
	"fmt"
	"strings"
)

// Technique identifies one of the paper's approximation transformations.
type Technique int

const (
	// Perforation skips loop iterations with stride level+1 (§3.2,
	// Sidiroglou et al. FSE'11): level 0 runs every iteration, level 1
	// every second, and so on. The result space is effectively sampled.
	Perforation Technique = iota
	// Truncation drops trailing loop iterations: at the block's maximum
	// level half of the loop is dropped, scaling linearly in between.
	Truncation
	// Memoization computes and caches the body every level+1 iterations
	// and reuses the cached result in between (Chaudhuri et al. FSE'11).
	Memoization
	// ParamTuning does not transform a loop; it maps the level onto an
	// accuracy-controlling input parameter (e.g. Bodytrack's
	// min-particles), interpolating from the accurate value at level 0 to
	// a most-aggressive value at MaxLevel (Hoffmann et al. ASPLOS'11).
	ParamTuning
)

// String returns the technique name used in reports.
func (t Technique) String() string {
	switch t {
	case Perforation:
		return "loop perforation"
	case Truncation:
		return "loop truncation"
	case Memoization:
		return "memoization"
	case ParamTuning:
		return "parameter tuning"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// Block describes one approximable block of an application.
type Block struct {
	Name      string
	Technique Technique
	// MaxLevel is the largest valid AL; valid levels are 0..MaxLevel.
	MaxLevel int
}

// Levels returns the number of valid approximation levels (MaxLevel+1).
func (b Block) Levels() int { return b.MaxLevel + 1 }

// Config assigns one approximation level to each block of an application,
// in block order.
type Config []int

// Clone returns a copy of the configuration.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// IsAccurate reports whether every level is 0.
func (c Config) IsAccurate() bool {
	for _, l := range c {
		if l != 0 {
			return false
		}
	}
	return true
}

// Validate checks the config against the block descriptors.
func (c Config) Validate(blocks []Block) error {
	if len(c) != len(blocks) {
		return fmt.Errorf("approx: config has %d levels for %d blocks", len(c), len(blocks))
	}
	for i, l := range c {
		if l < 0 || l > blocks[i].MaxLevel {
			return fmt.Errorf("approx: level %d out of range [0,%d] for block %q", l, blocks[i].MaxLevel, blocks[i].Name)
		}
	}
	return nil
}

// String renders the config like "[2 0 1 3]".
func (c Config) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = fmt.Sprint(l)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// NumConfigs returns the size of the AL search space over the given
// blocks: the product of per-block level counts.
func NumConfigs(blocks []Block) int {
	n := 1
	for _, b := range blocks {
		n *= b.Levels()
	}
	return n
}

// EnumerateConfigs calls fn for every AL configuration over blocks, in
// lexicographic order. fn returning false stops the enumeration early.
func EnumerateConfigs(blocks []Block, fn func(Config) bool) {
	cfg := make(Config, len(blocks))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(blocks) {
			return fn(cfg.Clone())
		}
		for l := 0; l <= blocks[i].MaxLevel; l++ {
			cfg[i] = l
			if !rec(i + 1) {
				return false
			}
		}
		cfg[i] = 0
		return true
	}
	rec(0)
}
