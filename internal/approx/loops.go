package approx

import "math"

// This file contains the executable forms of the loop-level techniques.
// Each executor is the identity at level 0, reduces work monotonically in
// the level, and reports how many body invocations actually ran so callers
// can charge the right amount of abstract work.

// Perforate runs body for i = 0, s, 2s, ... with stride s = level+1
// (paper §3.2's loop perforation with the accurate run at level 0).
// It returns the number of iterations executed.
func Perforate(n, level int, body func(i int)) int {
	if n <= 0 {
		return 0
	}
	if level < 0 {
		level = 0
	}
	stride := level + 1
	count := 0
	for i := 0; i < n; i += stride {
		body(i)
		count++
	}
	return count
}

// PerforateRotating is Perforate with a rotating offset: it executes the
// iterations where (i + offset) % (level+1) == 0. Rotating the offset from
// one outer-loop pass to the next spreads the skipped work evenly instead
// of starving the same indices forever — the interleaved variant of loop
// perforation from Sidiroglou et al. (FSE'11). Returns the number of
// iterations executed.
func PerforateRotating(n, level, offset int, body func(i int)) int {
	if n <= 0 {
		return 0
	}
	if level < 0 {
		level = 0
	}
	stride := level + 1
	first := ((-offset)%stride + stride) % stride
	count := 0
	for i := first; i < n; i += stride {
		body(i)
		count++
	}
	return count
}

// PerforatedCount returns the number of iterations Perforate(n, level)
// would execute, without running anything.
func PerforatedCount(n, level int) int {
	if n <= 0 {
		return 0
	}
	if level < 0 {
		level = 0
	}
	stride := level + 1
	return (n + stride - 1) / stride
}

// PerforateFraction is the rate-parameterized form of loop perforation:
// at level L out of maxLevel, the fraction L/(maxLevel+1) of iterations is
// skipped, spread evenly across the index space (iteration i is skipped
// when (i+offset) % (maxLevel+1) < L). Level 0 runs everything; the
// skipped fraction grows linearly in the level, which gives smoothly
// graded accuracy loss where stride-based perforation jumps straight to
// skipping half the loop at level 1. Returns the number of iterations
// executed.
func PerforateFraction(n, level, maxLevel, offset int, body func(i int)) int {
	if n <= 0 {
		return 0
	}
	if maxLevel < 1 {
		maxLevel = 1
	}
	if level < 0 {
		level = 0
	}
	if level > maxLevel {
		level = maxLevel
	}
	period := maxLevel + 1
	count := 0
	for i := 0; i < n; i++ {
		if m := ((i+offset)%period + period) % period; m < level {
			continue
		}
		body(i)
		count++
	}
	return count
}

// Truncate runs body for the first keep iterations where keep shrinks
// linearly from n at level 0 to n/2 at maxLevel (the paper drops "the last
// few iterations"; scaling by the level keeps the knob meaningful for
// loops of any trip count). Returns the number of iterations executed.
func Truncate(n, level, maxLevel int, body func(i int)) int {
	keep := TruncatedCount(n, level, maxLevel)
	for i := 0; i < keep; i++ {
		body(i)
	}
	return keep
}

// TruncatedCount returns the number of iterations Truncate would keep.
func TruncatedCount(n, level, maxLevel int) int {
	if n <= 0 {
		return 0
	}
	if level <= 0 || maxLevel <= 0 {
		return n
	}
	if level > maxLevel {
		level = maxLevel
	}
	drop := n * level / (2 * maxLevel)
	keep := n - drop
	if keep < 1 {
		keep = 1
	}
	return keep
}

// Memoize runs a loop of n iterations where compute is invoked only on
// iterations divisible by level+1 and reuse is invoked on the rest with
// the index of the most recent computed iteration (paper §3.2's
// memoization: cached results stand in for recomputation). Returns the
// number of compute invocations.
func Memoize(n, level int, compute func(i int), reuse func(i, cachedFrom int)) int {
	if n <= 0 {
		return 0
	}
	if level < 0 {
		level = 0
	}
	period := level + 1
	computed := 0
	last := -1
	for i := 0; i < n; i++ {
		if i%period == 0 {
			compute(i)
			last = i
			computed++
		} else {
			reuse(i, last)
		}
	}
	return computed
}

// MemoizedCount returns the number of compute invocations Memoize performs.
func MemoizedCount(n, level int) int {
	return PerforatedCount(n, level)
}

// TunedValue implements parameter tuning: it interpolates an
// accuracy-controlling parameter from its accurate value at level 0 to the
// most aggressive value at maxLevel.
func TunedValue(accurate, aggressive float64, level, maxLevel int) float64 {
	if level <= 0 || maxLevel <= 0 {
		return accurate
	}
	if level > maxLevel {
		level = maxLevel
	}
	f := float64(level) / float64(maxLevel)
	return accurate + (aggressive-accurate)*f
}

// ReducePrecision implements precision scaling, a fifth technique
// available to custom applications: it rounds v to a reduced-precision
// mantissa. Level 0 returns v unchanged; each level discards
// proportionally more of float64's 52 mantissa bits, down to 12 surviving
// bits at the maximum level (roughly half-precision arithmetic emulated on
// float64 storage). Approximate-computing hardware proposals expose
// exactly this knob; in software it models reduced-precision kernels.
func ReducePrecision(v float64, level, maxLevel int) float64 {
	if level <= 0 || maxLevel <= 0 {
		return v
	}
	if level > maxLevel {
		level = maxLevel
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	// Mantissa bits retained: 52 at level 0 down to 12 at maxLevel.
	keep := 52 - (40*level)/maxLevel
	drop := uint(52 - keep)
	bits := math.Float64bits(v)
	// Adding half a ULP of the reduced precision to the raw bit pattern
	// rounds to nearest, carrying into the exponent when the mantissa
	// overflows (the IEEE-754 bit layout makes the carry land exactly
	// where it should). Clearing the dropped bits then truncates.
	bits += uint64(1) << (drop - 1)
	bits &^= (uint64(1) << drop) - 1
	return math.Float64frombits(bits)
}
