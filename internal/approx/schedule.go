package approx

import (
	"fmt"
	"strings"
)

// Schedule is a phase-aware approximation plan: for each of Phases
// contiguous segments of the outer loop, one AL configuration.
// This is OPPROX's output artifact — the phase-specific approximation
// settings passed to the application (paper §4.2 passes them via
// environment variables; here they travel as a value).
type Schedule struct {
	Phases int
	// Levels[p] is the AL configuration active during phase p.
	Levels []Config
}

// UniformSchedule applies the same configuration in every phase — the
// phase-agnostic setting prior work uses.
func UniformSchedule(phases int, cfg Config) Schedule {
	levels := make([]Config, phases)
	for p := range levels {
		levels[p] = cfg.Clone()
	}
	return Schedule{Phases: phases, Levels: levels}
}

// AccurateSchedule is the all-zeros single-phase schedule (the exact run).
func AccurateSchedule(nBlocks int) Schedule {
	return UniformSchedule(1, make(Config, nBlocks))
}

// SinglePhaseSchedule approximates with cfg only in phase `active` out of
// `phases`, running every other phase accurately — the probe the paper
// uses to characterize per-phase sensitivity (§5.1).
func SinglePhaseSchedule(phases, active int, cfg Config) Schedule {
	levels := make([]Config, phases)
	for p := range levels {
		if p == active {
			levels[p] = cfg.Clone()
		} else {
			levels[p] = make(Config, len(cfg))
		}
	}
	return Schedule{Phases: phases, Levels: levels}
}

// Validate checks phase count and every per-phase config.
func (s Schedule) Validate(blocks []Block) error {
	if s.Phases < 1 {
		return fmt.Errorf("approx: schedule needs >= 1 phase, has %d", s.Phases)
	}
	if len(s.Levels) != s.Phases {
		return fmt.Errorf("approx: schedule has %d phase configs for %d phases", len(s.Levels), s.Phases)
	}
	for p, cfg := range s.Levels {
		if err := cfg.Validate(blocks); err != nil {
			return fmt.Errorf("phase %d: %w", p, err)
		}
	}
	return nil
}

// IsAccurate reports whether the schedule performs no approximation at all.
func (s Schedule) IsAccurate() bool {
	for _, cfg := range s.Levels {
		if !cfg.IsAccurate() {
			return false
		}
	}
	return true
}

// LevelsAt returns the configuration for phase p, clamping out-of-range
// phases to the nearest valid phase (a convergence loop may run longer
// than the baseline used to lay out the phases; extra iterations belong to
// the final phase).
func (s Schedule) LevelsAt(p int) Config {
	if p < 0 {
		p = 0
	}
	if p >= s.Phases {
		p = s.Phases - 1
	}
	return s.Levels[p]
}

// Level returns the AL of one block during one phase.
func (s Schedule) Level(phase, block int) int { return s.LevelsAt(phase)[block] }

// String renders like "p0=[0 0] p1=[2 1]".
func (s Schedule) String() string {
	parts := make([]string, s.Phases)
	for p, cfg := range s.Levels {
		parts[p] = fmt.Sprintf("p%d=%s", p, cfg)
	}
	return strings.Join(parts, " ")
}

// PhaseOf maps an outer-loop iteration index (0-based) to its phase, given
// the baseline (accurate-run) iteration count the phases were laid out
// over. Phases are equal blocks of baselineIters/phases iterations, with
// the remainder — and any iterations beyond the baseline — attributed to
// the final phase (paper §3.5, footnote 2).
func PhaseOf(iter, baselineIters, phases int) int {
	if phases <= 1 {
		return 0
	}
	if baselineIters < 1 {
		baselineIters = 1
	}
	size := baselineIters / phases
	if size < 1 {
		size = 1
	}
	p := iter / size
	if p >= phases {
		p = phases - 1
	}
	if p < 0 {
		p = 0
	}
	return p
}
