package approx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPerforateRotatingCoversAllIndicesOverCycle(t *testing.T) {
	// Over stride consecutive offsets, every index runs exactly once.
	n, level := 10, 2
	stride := level + 1
	counts := make([]int, n)
	for off := 0; off < stride; off++ {
		PerforateRotating(n, level, off, func(i int) { counts[i]++ })
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times over a full cycle, want 1", i, c)
		}
	}
}

func TestPerforateRotatingLevelZero(t *testing.T) {
	ran := 0
	if got := PerforateRotating(7, 0, 3, func(int) { ran++ }); got != 7 || ran != 7 {
		t.Fatalf("level 0 ran %d, want 7", ran)
	}
}

func TestPerforateRotatingNegativeOffset(t *testing.T) {
	var idx []int
	PerforateRotating(9, 2, -1, func(i int) { idx = append(idx, i) })
	// stride 3, offset -1 → first index with (i-1)%3==0 is 1.
	if len(idx) == 0 || idx[0] != 1 {
		t.Fatalf("indices = %v, want first 1", idx)
	}
}

func TestPerforateRotatingMatchesPlainAtOffsetZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, level := rng.Intn(100), rng.Intn(6)
		var a, b []int
		Perforate(n, level, func(i int) { a = append(a, i) })
		PerforateRotating(n, level, 0, func(i int) { b = append(b, i) })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPerforateFractionLevels(t *testing.T) {
	n, maxLevel := 70, 6
	prev := n + 1
	for level := 0; level <= maxLevel; level++ {
		ran := PerforateFraction(n, level, maxLevel, 0, func(int) {})
		if ran > prev {
			t.Fatalf("level %d ran %d > previous %d (not monotone)", level, ran, prev)
		}
		prev = ran
	}
	if got := PerforateFraction(n, 0, maxLevel, 5, func(int) {}); got != n {
		t.Fatalf("level 0 ran %d, want all %d", got, n)
	}
	// At level == maxLevel, 1/(maxLevel+1) of iterations survive.
	got := PerforateFraction(70, 6, 6, 0, func(int) {})
	if got != 10 {
		t.Fatalf("max level ran %d, want 10", got)
	}
}

func TestPerforateFractionSkipRate(t *testing.T) {
	// Fraction skipped should be level/(maxLevel+1) for aligned n.
	n, maxLevel := 700, 6
	for level := 0; level <= maxLevel; level++ {
		ran := PerforateFraction(n, level, maxLevel, 0, func(int) {})
		want := n - n*level/(maxLevel+1)
		if ran != want {
			t.Fatalf("level %d ran %d, want %d", level, ran, want)
		}
	}
}

func TestPerforateFractionClampsAndEdgeCases(t *testing.T) {
	if PerforateFraction(0, 3, 5, 0, func(int) {}) != 0 {
		t.Fatal("empty loop should run 0")
	}
	if PerforateFraction(10, -1, 5, 0, func(int) {}) != 10 {
		t.Fatal("negative level should clamp to accurate")
	}
	if PerforateFraction(12, 9, 5, 0, func(int) {}) != PerforateFraction(12, 5, 5, 0, func(int) {}) {
		t.Fatal("level above max should clamp")
	}
	// maxLevel < 1 must not panic or divide by zero.
	if PerforateFraction(10, 1, 0, 0, func(int) {}) < 1 {
		t.Fatal("degenerate maxLevel should still run something")
	}
}

func TestPerforateFractionOffsetRotation(t *testing.T) {
	// Across maxLevel+1 consecutive offsets every index is skipped the
	// same number of times.
	n, level, maxLevel := 14, 3, 6
	counts := make([]int, n)
	for off := 0; off <= maxLevel; off++ {
		PerforateFraction(n, level, maxLevel, off, func(i int) { counts[i]++ })
	}
	for i, c := range counts {
		if c != maxLevel+1-level {
			t.Fatalf("index %d ran %d times, want %d", i, c, maxLevel+1-level)
		}
	}
}

func TestReducePrecisionIdentityAtZero(t *testing.T) {
	for _, v := range []float64{0, 1, -3.14159, 1e-12, 1e20} {
		if got := ReducePrecision(v, 0, 5); got != v {
			t.Fatalf("level 0 changed %g to %g", v, got)
		}
	}
}

func TestReducePrecisionMonotoneError(t *testing.T) {
	v := 1.0/3.0 + 1e5 // plenty of mantissa content
	prev := 0.0
	for lv := 1; lv <= 5; lv++ {
		err := mathAbs(ReducePrecision(v, lv, 5) - v)
		if err+1e-18 < prev {
			t.Fatalf("error not monotone at level %d: %g < %g", lv, err, prev)
		}
		prev = err
	}
	if prev == 0 {
		t.Fatal("max level should introduce some rounding error")
	}
}

func TestReducePrecisionRelativeErrorBounded(t *testing.T) {
	// At max level 12 mantissa bits survive: relative error <= 2^-12ish.
	for _, v := range []float64{1.2345678, -9876.54321, 3.3e-7, 7.7e11} {
		got := ReducePrecision(v, 5, 5)
		rel := mathAbs(got-v) / mathAbs(v)
		if rel > 1.0/4096 {
			t.Fatalf("relative error %g for %g exceeds 2^-12", rel, v)
		}
	}
}

func TestReducePrecisionSpecials(t *testing.T) {
	if got := ReducePrecision(0, 5, 5); got != 0 {
		t.Fatalf("zero became %g", got)
	}
	if !mathIsNaN(ReducePrecision(mathNaN(), 3, 5)) {
		t.Fatal("NaN should pass through")
	}
	if got := ReducePrecision(mathInf(), 3, 5); !mathIsInf(got) {
		t.Fatalf("Inf became %g", got)
	}
	if got := ReducePrecision(1.5, 9, 5); got != ReducePrecision(1.5, 5, 5) {
		t.Fatal("level above max should clamp")
	}
}

// small math helpers to keep the test file stdlib-flat.
func mathAbs(v float64) float64 { return math.Abs(v) }
func mathNaN() float64          { return math.NaN() }
func mathInf() float64          { return math.Inf(1) }
func mathIsNaN(v float64) bool  { return math.IsNaN(v) }
func mathIsInf(v float64) bool  { return math.IsInf(v, 0) }
