// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) against the simulated substrates, as plain-text tables.
// Each generator corresponds to one artifact (Fig2 … Fig15, Table1,
// Table2) plus the ablations DESIGN.md calls out; cmd/opprox-experiments
// prints them all and bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one rendered experiment artifact.
type Table struct {
	// ID matches the paper artifact, e.g. "fig14" or "table2".
	ID string
	// Title describes what the artifact shows.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells (stringified).
	Rows [][]string
	// Notes carry caveats and observations to surface under the table.
	Notes []string
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case int:
			row[i] = fmt.Sprint(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v != v:
		return "NaN"
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%.0f", v)
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// RenderCSV emits the table as RFC-4180-ish CSV (header row first), for
// loading into plotting tools.
func (t *Table) RenderCSV() string {
	var sb strings.Builder
	writeCSVRow(&sb, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&sb, row)
	}
	return sb.String()
}

func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			sb.WriteByte('"')
			sb.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
			sb.WriteByte('"')
		} else {
			sb.WriteString(c)
		}
	}
	sb.WriteByte('\n')
}

// Render lays the table out as aligned plain text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", strings.ToUpper(t.ID), t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}
