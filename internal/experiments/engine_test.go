package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeExps builds n synthetic experiments whose Run sleeps so that later
// experiments finish before earlier ones — the worst case for the
// engine's ordering guarantee.
func fakeExps(n int, ran *atomic.Int64) []Experiment {
	exps := make([]Experiment, n)
	for i := range exps {
		i := i
		exps[i] = Experiment{
			ID: fmt.Sprintf("fake%d", i),
			Run: func(*Suite) (*Table, error) {
				// Earlier experiments sleep longer: completion order is the
				// reverse of presentation order.
				time.Sleep(time.Duration(n-i) * 2 * time.Millisecond)
				if ran != nil {
					ran.Add(1)
				}
				tab := &Table{ID: fmt.Sprintf("fake%d", i), Columns: []string{"v"}}
				tab.AddRow(i)
				return tab, nil
			},
		}
	}
	return exps
}

func TestRunAllPreservesOrder(t *testing.T) {
	exps := fakeExps(8, nil)
	var emitted []string
	err := RunAllFunc(context.Background(), nil, exps, 4, func(r RunResult) error {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		emitted = append(emitted, r.Table.ID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != len(exps) {
		t.Fatalf("emitted %d results, want %d", len(emitted), len(exps))
	}
	for i, id := range emitted {
		if want := fmt.Sprintf("fake%d", i); id != want {
			t.Fatalf("emit order broken at %d: got %s, want %s (full order %v)", i, id, want, emitted)
		}
	}
}

func TestRunAllCollectsAllResults(t *testing.T) {
	exps := fakeExps(5, nil)
	results, err := RunAll(context.Background(), nil, exps, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Experiment.ID != exps[i].ID || r.Table == nil || r.Duration <= 0 {
			t.Fatalf("result %d malformed: %+v", i, r)
		}
	}
}

func TestRunAllReportsFirstErrorInOrder(t *testing.T) {
	exps := fakeExps(6, nil)
	// Two failures; the one earlier in presentation order (2) finishes
	// *later* in wall-clock than (4) because of the reversed sleeps — the
	// engine must still report experiment 2 first.
	bang2 := errors.New("bang2")
	bang4 := errors.New("bang4")
	run2, run4 := exps[2].Run, exps[4].Run
	exps[2].Run = func(s *Suite) (*Table, error) { run2(s); return nil, bang2 }
	exps[4].Run = func(s *Suite) (*Table, error) { run4(s); return nil, bang4 }

	results, err := RunAll(context.Background(), nil, exps, 6)
	if !errors.Is(err, bang2) {
		t.Fatalf("err = %v, want the presentation-order-first failure %v", err, bang2)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d, want all 6 (errors must not drop results)", len(results))
	}
	if results[2].Err == nil || results[4].Err == nil {
		t.Fatal("per-result errors lost")
	}
	if results[3].Err != nil || results[3].Table == nil {
		t.Fatal("an unrelated experiment was polluted by the failures")
	}
}

func TestRunAllEmitErrorCancelsRemaining(t *testing.T) {
	var ran atomic.Int64
	exps := fakeExps(20, &ran)
	stop := errors.New("stop after first")
	err := RunAllFunc(context.Background(), nil, exps, 2, func(r RunResult) error {
		return stop
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want emit error", err)
	}
	if got := ran.Load(); got == 20 {
		t.Fatal("emit error did not cancel the remaining experiments")
	}
}

func TestRunAllContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	exps := []Experiment{
		{ID: "first", Run: func(*Suite) (*Table, error) {
			cancel() // cancel while the run is in flight
			<-release
			tab := &Table{ID: "first", Columns: []string{"v"}}
			tab.AddRow(1)
			return tab, nil
		}},
		{ID: "second", Run: func(*Suite) (*Table, error) {
			t.Error("second experiment must not start after cancellation")
			return nil, nil
		}},
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	results, err := RunAll(ctx, nil, exps, 1)
	if err == nil {
		t.Fatal("want a context error")
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// The in-flight experiment completes; the unstarted one carries the
	// context's error.
	if results[0].Err != nil || results[0].Table == nil {
		t.Fatalf("in-flight experiment should finish: %+v", results[0])
	}
	if !errors.Is(results[1].Err, context.Canceled) {
		t.Fatalf("unstarted experiment err = %v, want context.Canceled", results[1].Err)
	}
}

func TestRunAllEmpty(t *testing.T) {
	results, err := RunAll(context.Background(), nil, nil, 4)
	if err != nil || len(results) != 0 {
		t.Fatalf("empty run: %v, %d results", err, len(results))
	}
}

// TestRunAllDeterministicAcrossParallelism regenerates the cheap
// characterization artifacts on two fresh suites — serial and wide — and
// requires byte-identical renders. This is the engine's core contract:
// parallelism must never leak into artifact bytes.
func TestRunAllDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	ids := []string{"fig2", "fig3", "fig7", "table1", "ablation-phasesearch"}
	render := func(parallelism int) []string {
		s := NewSuite(1, true)
		var exps []Experiment
		for _, id := range ids {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s missing", id)
			}
			exps = append(exps, e)
		}
		results, err := RunAll(context.Background(), s, exps, parallelism)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(results))
		for i, r := range results {
			out[i] = r.Table.Render()
		}
		return out
	}
	serial := render(1)
	wide := render(4)
	for i := range serial {
		if serial[i] != wide[i] {
			t.Fatalf("%s differs between parallelism 1 and 4:\n--- serial ---\n%s\n--- parallel ---\n%s",
				ids[i], serial[i], wide[i])
		}
	}
}

// TestSuiteTrainedSingleflight hammers Suite.Trained for the same key
// from many goroutines: every caller must get the same *Trained (trained
// exactly once), with no data race. The suite's race regression test.
func TestSuiteTrainedSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	s := NewSuite(1, true)
	const goroutines = 12
	trs := make([]interface{}, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr, err := s.Trained("pso", 4)
			if err != nil {
				t.Error(err)
				return
			}
			trs[g] = tr
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if trs[g] != trs[0] {
			t.Fatalf("goroutine %d trained a second model — singleflight failed", g)
		}
	}
}

// TestOptimizePropertySuiteApps is the optimizer's property test over
// real suite applications: for a rising budget ladder, the predicted
// degradation never exceeds the budget, and the predicted speedup never
// decreases.
func TestOptimizePropertySuiteApps(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	s := NewSuite(1, true)
	for _, app := range []string{"pso", "vidpipe"} {
		tr, err := s.Trained(app, 4)
		if err != nil {
			t.Fatal(err)
		}
		runner := s.runner(app)
		p := make(map[string]float64)
		for _, spec := range runner.App.Params() {
			p[spec.Name] = spec.Default
		}
		prevSpeedup := 0.0
		for budget := 0.0; budget <= 24; budget += 2 {
			_, pred, err := tr.Optimize(p, budget)
			if err != nil {
				t.Fatalf("%s budget %g: %v", app, budget, err)
			}
			if pred.Degradation > budget+1e-9 {
				t.Fatalf("%s: predicted degradation %.4f exceeds budget %g", app, pred.Degradation, budget)
			}
			if pred.Speedup+1e-9 < prevSpeedup {
				t.Fatalf("%s: predicted speedup fell from %.6f to %.6f when budget rose to %g",
					app, prevSpeedup, pred.Speedup, budget)
			}
			prevSpeedup = pred.Speedup
		}
	}
}
