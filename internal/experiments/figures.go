package experiments

import (
	"fmt"
	"math/rand"

	"opprox/internal/approx"
	"opprox/internal/apps"
)

// Fig2 reproduces paper Fig. 2: LULESH speedup and QoS degradation as one
// block's approximation level rises, the other blocks accurate.
func (s *Suite) Fig2() (*Table, error) {
	t := &Table{
		ID:      "fig2",
		Title:   "LULESH: speedup and error rise with the approximation level of each block",
		Columns: []string{"block", "technique", "AL", "speedup", "QoS degradation"},
	}
	runner := s.runner("lulesh")
	p := apps.DefaultParams(runner.App)
	blocks := runner.App.Blocks()
	for bi, b := range blocks {
		for lv := 0; lv <= b.MaxLevel; lv++ {
			cfg := make(approx.Config, len(blocks))
			cfg[bi] = lv
			ev, err := runner.Evaluate(p, approx.UniformSchedule(1, cfg))
			if err != nil {
				return nil, err
			}
			t.AddRow(b.Name, b.Technique.String(), lv, ev.Speedup, fmt.Sprintf("%.2f%%", ev.Degradation))
		}
	}
	return t, nil
}

// Fig3 reproduces paper Fig. 3: the LULESH outer loop's iteration count
// varies with the approximation setting — it can shrink or grow.
func (s *Suite) Fig3() (*Table, error) {
	t := &Table{
		ID:      "fig3",
		Title:   "LULESH: outer-loop iteration count varies with the approximation setting",
		Columns: []string{"config [forces positions strain timeconstraints]", "outer-loop iterations", "vs accurate"},
	}
	runner := s.runner("lulesh")
	p := apps.DefaultParams(runner.App)
	g, err := runner.Golden(p)
	if err != nil {
		return nil, err
	}
	t.AddRow("[0 0 0 0] (accurate)", g.OuterIters, "1.00x")
	rng := rand.New(rand.NewSource(s.Seed + 3))
	minIt, maxIt := g.OuterIters, g.OuterIters
	for _, cfg := range sampleConfigs(runner.App.Blocks(), 16, rng) {
		ev, err := runner.Evaluate(p, approx.UniformSchedule(1, cfg))
		if err != nil {
			return nil, err
		}
		t.AddRow(cfg.String(), ev.OuterIters, fmt.Sprintf("%.2fx", float64(ev.OuterIters)/float64(g.OuterIters)))
		if ev.OuterIters < minIt {
			minIt = ev.OuterIters
		}
		if ev.OuterIters > maxIt {
			maxIt = ev.OuterIters
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("iteration count ranges %d..%d around the accurate %d — approximation can slow the program down (paper: 921 vs 965)", minIt, maxIt, g.OuterIters))
	return t, nil
}

// phaseFigure builds the per-phase QoS (deg=true) or speedup (deg=false)
// characterization for one app — the template behind Figs. 4, 5, 9, 10.
func (s *Suite) phaseFigure(id, app string, deg bool) (*Table, error) {
	kind := "speedup"
	if deg {
		kind = "QoS degradation"
	}
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("%s: phase-specific %s (4 phases; each row summarizes many approximation settings)", app, kind),
		Columns: []string{"segment", "min", "mean", "max", "iterations"},
	}
	runner := s.runner(app)
	p := apps.DefaultParams(runner.App)
	rng := rand.New(rand.NewSource(s.Seed + 9))
	cfgs := sampleConfigs(runner.App.Blocks(), 14, rng)
	segments := []int{0, 1, 2, 3, -1}
	for _, ph := range segments {
		st, err := s.measurePhase(app, p, 4, ph, cfgs)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("phase-%d", ph+1)
		if ph < 0 {
			label = "All"
		}
		if deg {
			t.AddRow(label, degLabel(app, st.minDeg), degLabel(app, st.meanDeg), degLabel(app, st.maxDeg),
				fmt.Sprintf("%d..%d", st.minIters, st.maxIters))
		} else {
			t.AddRow(label, st.minSpd, st.meanSpd, st.maxSpd,
				fmt.Sprintf("%d..%d", st.minIters, st.maxIters))
		}
	}
	return t, nil
}

// Fig4 reproduces paper Fig. 4: LULESH phase-specific QoS degradation.
func (s *Suite) Fig4() (*Table, error) { return s.phaseFigure("fig4", "lulesh", true) }

// Fig5 reproduces paper Fig. 5: LULESH phase-specific speedup.
func (s *Suite) Fig5() (*Table, error) { return s.phaseFigure("fig5", "lulesh", false) }

// Fig7 reproduces paper Fig. 7: swapping the order of the deflate and edge
// detection filters drastically changes the QoS degradation of the same
// approximation setting.
func (s *Suite) Fig7() (*Table, error) {
	t := &Table{
		ID:      "fig7",
		Title:   "vidpipe (FFmpeg): filter order changes both control flow and approximation error",
		Columns: []string{"filter order", "control flow", "config", "PSNR"},
	}
	runner := s.runner("vidpipe")
	for _, order := range []float64{0, 1} {
		p := apps.DefaultParams(runner.App)
		p["filterorder"] = order
		g, err := runner.Golden(p)
		if err != nil {
			return nil, err
		}
		name := "deflate -> edge"
		if order == 1 {
			name = "edge -> deflate"
		}
		for _, cfg := range []approx.Config{{2, 0, 0}, {0, 3, 0}, {3, 3, 1}} {
			ev, err := runner.Evaluate(p, approx.UniformSchedule(1, cfg))
			if err != nil {
				return nil, err
			}
			t.AddRow(name, g.CtxSig, cfg.String(), degLabel("vidpipe", ev.Degradation))
		}
	}
	t.Notes = append(t.Notes, "the control-flow signature differs per order; OPPROX's decision tree learns to predict it from the input parameters (paper Fig. 8)")
	return t, nil
}

// Fig9 reproduces paper Fig. 9: phase-specific QoS degradation for CoMD,
// PSO, Bodytrack (tracker), and FFmpeg (vidpipe).
func (s *Suite) Fig9() (*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "phase-specific QoS degradation (CoMD, PSO, Bodytrack/tracker, FFmpeg/vidpipe)",
		Columns: []string{"app", "segment", "min", "mean", "max"},
	}
	for _, app := range []string{"comd", "pso", "tracker", "vidpipe"} {
		sub, err := s.phaseFigure("", app, true)
		if err != nil {
			return nil, err
		}
		for _, row := range sub.Rows {
			t.AddRow(app, row[0], row[1], row[2], row[3])
		}
	}
	t.Notes = append(t.Notes, "vidpipe reports PSNR (higher is better), the others percent degradation (lower is better), as in the paper")
	return t, nil
}

// Fig10 reproduces paper Fig. 10: phase-specific speedup for the same apps.
func (s *Suite) Fig10() (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "phase-specific speedup (CoMD, PSO, Bodytrack/tracker, FFmpeg/vidpipe)",
		Columns: []string{"app", "segment", "min", "mean", "max", "iterations"},
	}
	for _, app := range []string{"comd", "pso", "tracker", "vidpipe"} {
		sub, err := s.phaseFigure("", app, false)
		if err != nil {
			return nil, err
		}
		for _, row := range sub.Rows {
			t.AddRow(app, row[0], row[1], row[2], row[3], row[4])
		}
	}
	return t, nil
}

// Fig11 reproduces paper Fig. 11: how the per-phase QoS degradation
// changes as the execution is divided into 2, 4, and 8 phases, for
// Bodytrack (tracker) and LULESH.
func (s *Suite) Fig11() (*Table, error) {
	t := &Table{
		ID:      "fig11",
		Title:   "QoS degradation at 2/4/8-phase granularity (tracker, lulesh)",
		Columns: []string{"app", "phases", "per-phase mean degradation (first..last)"},
	}
	rng := rand.New(rand.NewSource(s.Seed + 11))
	for _, app := range []string{"tracker", "lulesh"} {
		runner := s.runner(app)
		p := apps.DefaultParams(runner.App)
		cfgs := sampleConfigs(runner.App.Blocks(), 10, rng)
		for _, n := range []int{2, 4, 8} {
			line := ""
			for ph := 0; ph < n; ph++ {
				st, err := s.measurePhase(app, p, n, ph, cfgs)
				if err != nil {
					return nil, err
				}
				if ph > 0 {
					line += "  "
				}
				line += fmt.Sprintf("%.1f", st.meanDeg)
			}
			t.AddRow(app, n, line)
		}
	}
	t.Notes = append(t.Notes,
		"at 8 phases, neighboring late phases become hard to distinguish — the diminishing returns that motivate Algorithm 1's granularity search")
	return t, nil
}

// Fig15 reproduces paper Fig. 15: phase-specific behavior holds across
// input parameter combinations (tracker and lulesh, four input combos).
func (s *Suite) Fig15() (*Table, error) {
	t := &Table{
		ID:      "fig15",
		Title:   "phase behavior across input combinations (tracker, lulesh; 4 inputs each)",
		Columns: []string{"app", "input", "segment", "mean degradation", "mean speedup"},
	}
	rng := rand.New(rand.NewSource(s.Seed + 15))
	inputs := map[string][]apps.Params{
		"tracker": {
			{"layers": 3, "particles": 60, "frames": 8},
			{"layers": 3, "particles": 120, "frames": 16},
			{"layers": 5, "particles": 60, "frames": 16},
			{"layers": 5, "particles": 120, "frames": 8},
		},
		"lulesh": {
			{"mesh": 32, "regions": 2},
			{"mesh": 48, "regions": 4},
			{"mesh": 64, "regions": 2},
			{"mesh": 64, "regions": 4},
		},
	}
	for _, app := range []string{"tracker", "lulesh"} {
		runner := s.runner(app)
		cfgs := sampleConfigs(runner.App.Blocks(), 8, rng)
		for i, p := range inputs[app] {
			for ph := 0; ph < 4; ph++ {
				st, err := s.measurePhase(app, p, 4, ph, cfgs)
				if err != nil {
					return nil, err
				}
				t.AddRow(app, fmt.Sprintf("input-%d", i+1), fmt.Sprintf("phase-%d", ph+1),
					fmt.Sprintf("%.2f", st.meanDeg), st.meanSpd)
			}
		}
	}
	t.Notes = append(t.Notes, "the early-phases-are-costlier trend holds for every input combination: the benefit of phase-aware approximation is not tied to one input")
	return t, nil
}
