package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"opprox/internal/obs"
)

// RunResult is the outcome of one experiment executed by the engine.
type RunResult struct {
	Experiment Experiment
	// Table is the rendered artifact; nil when Err is set.
	Table *Table
	// Err is the experiment's failure, or the context error when the run
	// was canceled before this experiment finished.
	Err error
	// Duration is the experiment's wall-clock execution time (zero when
	// the experiment never started).
	Duration time.Duration
}

// RunAll executes the experiments on a worker pool of the given
// parallelism and returns their results in the order the experiments were
// given — the presentation order — no matter how execution interleaved.
//
// Every experiment seeds its own RNG from the suite seed and the shared
// caches (trained models, golden runs) are deduplicating and
// deterministic, so the tables RunAll produces are byte-identical to
// running the same experiments serially. The returned error is the first
// failure in presentation order (results still carries every outcome).
//
// Parallelism <= 0 means runtime.NumCPU().
func RunAll(ctx context.Context, s *Suite, exps []Experiment, parallelism int) ([]RunResult, error) {
	results := make([]RunResult, 0, len(exps))
	err := RunAllFunc(ctx, s, exps, parallelism, func(r RunResult) error {
		results = append(results, r)
		return nil
	})
	return results, err
}

// RunAllFunc is RunAll with streaming delivery: emit is called exactly
// once per experiment, in presentation order, as soon as the result is
// available (an experiment's result can only be emitted once every
// earlier experiment has been emitted). emit runs on the calling
// goroutine's side, never concurrently; returning a non-nil error stops
// the run and cancels the remaining experiments.
func RunAllFunc(ctx context.Context, s *Suite, exps []Experiment, parallelism int, emit func(RunResult) error) error {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	if parallelism > len(exps) {
		parallelism = len(exps)
	}
	if len(exps) == 0 {
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	obs.LogEvent("experiments.runall", "start: %d experiments, parallelism %d", len(exps), parallelism)
	runStart := time.Now()

	type slot struct {
		res  RunResult
		done chan struct{}
	}
	slots := make([]*slot, len(exps))
	for i := range slots {
		slots[i] = &slot{done: make(chan struct{})}
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				sl := slots[i]
				e := exps[i]
				sl.res.Experiment = e
				if err := ctx.Err(); err != nil {
					sl.res.Err = err
					close(sl.done)
					continue
				}
				obs.LogEvent("experiment.start", "%s", e.ID)
				t0 := time.Now()
				tab, err := e.Run(s)
				sl.res.Duration = time.Since(t0)
				sl.res.Table, sl.res.Err = tab, err
				obs.Inc("experiments.run")
				obs.Observe("experiments.duration", sl.res.Duration)
				if err != nil {
					obs.Inc("experiments.failed")
					obs.LogEvent("experiment.error", "%s: %v", e.ID, err)
				} else {
					obs.LogEvent("experiment.done", "%s in %s", e.ID, sl.res.Duration.Round(time.Millisecond))
				}
				close(sl.done)
			}
		}()
	}

	// Feed the pool without blocking the emitter: the feeder stops early
	// when the run is canceled (workers mark unfed slots via the ctx check
	// above; slots the feeder never reaches are marked here).
	go func() {
		defer close(next)
		for i := range exps {
			select {
			case next <- i:
			case <-ctx.Done():
				for j := i; j < len(exps); j++ {
					sl := slots[j]
					select {
					case <-sl.done:
					default:
						sl.res.Experiment = exps[j]
						sl.res.Err = ctx.Err()
						close(sl.done)
					}
				}
				return
			}
		}
	}()

	var firstErr error
	for i, sl := range slots {
		<-sl.done
		if sl.res.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", exps[i].ID, sl.res.Err)
		}
		if err := emit(sl.res); err != nil {
			cancel()
			// Drain the pool before returning so no worker touches slots
			// after the caller moved on.
			for _, rest := range slots[i+1:] {
				<-rest.done
			}
			wg.Wait()
			return err
		}
	}
	wg.Wait()
	obs.LogEvent("experiments.runall", "done: %d experiments in %s", len(exps), time.Since(runStart).Round(time.Millisecond))
	return firstErr
}
