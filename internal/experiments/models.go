package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"opprox/internal/apps"
	"opprox/internal/core"
	"opprox/internal/ml/poly"
)

// modelEval trains OPPROX's models on half of an app's training records
// and scores predictions on the held-out half (paper §5.2's methodology).
type modelEval struct {
	app                string
	n                  int
	spdR2, degR2       float64
	spdMAE, degMAE     float64 // mean absolute error, natural units
	worstSpd, worstDeg float64
	// skipped notes why the evaluation was impossible (e.g. a reduced
	// sampling run leaves a control-flow class with too few records to
	// refit on half the data).
	skipped string
}

func (s *Suite) evalModels(app string) (modelEval, error) {
	me := modelEval{app: app}
	full, err := s.Trained(app, 4)
	if err != nil {
		return me, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 12))
	train, test := splitRecords(full.Records, rng)
	half, err := core.FitRecords(s.runner(app).App, full.Phases, train, s.options(4), rng)
	if err != nil {
		// Reduced sampling can leave a class too small to refit on half
		// the records; report instead of failing the whole artifact.
		me.skipped = err.Error()
		return me, nil
	}
	// One flat backing array for all four series: the held-out size is
	// known up front, so the scoring loop appends without reallocating.
	flat := make([]float64, 4*len(test))
	spdTruth := flat[0:0:len(test)]
	spdPred := flat[len(test) : len(test) : 2*len(test)]
	degTruth := flat[2*len(test) : 2*len(test) : 3*len(test)]
	degPred := flat[3*len(test) : 3*len(test) : 4*len(test)]
	for _, r := range test {
		spd, deg, err := half.PredictPhase(r.Params, r.Phase, r.Levels, false)
		if err != nil {
			return me, err
		}
		spdTruth = append(spdTruth, r.Speedup)
		spdPred = append(spdPred, spd)
		degTruth = append(degTruth, r.Degradation)
		degPred = append(degPred, deg)
		me.spdMAE += math.Abs(spd - r.Speedup)
		me.degMAE += math.Abs(deg - r.Degradation)
		me.worstSpd = math.Max(me.worstSpd, math.Abs(spd-r.Speedup))
		me.worstDeg = math.Max(me.worstDeg, math.Abs(deg-r.Degradation))
	}
	me.n = len(test)
	me.spdMAE /= float64(me.n)
	me.degMAE /= float64(me.n)
	me.spdR2 = poly.R2(spdTruth, spdPred)
	me.degR2 = poly.R2(degTruth, degPred)
	return me, nil
}

// Fig12 reproduces paper Fig. 12: prediction accuracy of the QoS
// degradation models on held-out data.
func (s *Suite) Fig12() (*Table, error) {
	t := &Table{
		ID:      "fig12",
		Title:   "prediction of QoS degradation (50/50 train/test split)",
		Columns: []string{"app", "test samples", "R2", "mean abs err", "worst abs err"},
	}
	for _, app := range s.AppNames() {
		me, err := s.evalModels(app)
		if err != nil {
			return nil, err
		}
		if me.skipped != "" {
			t.AddRow(app, 0, "n/a", "n/a", "n/a")
			t.Notes = append(t.Notes, app+": skipped ("+me.skipped+")")
			continue
		}
		t.AddRow(app, me.n, me.degR2, me.degMAE, me.worstDeg)
	}
	t.Notes = append(t.Notes,
		"as in the paper, the degradation of the chaotic simulations (lulesh, comd, tracker) is harder to predict than vidpipe/pso-style structured error")
	return t, nil
}

// Fig13 reproduces paper Fig. 13: prediction accuracy of the speedup
// models on held-out data.
func (s *Suite) Fig13() (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "prediction of speedup (50/50 train/test split)",
		Columns: []string{"app", "test samples", "R2", "mean abs err", "worst abs err"},
	}
	for _, app := range s.AppNames() {
		me, err := s.evalModels(app)
		if err != nil {
			return nil, err
		}
		if me.skipped != "" {
			t.AddRow(app, 0, "n/a", "n/a", "n/a")
			continue
		}
		t.AddRow(app, me.n, me.spdR2, me.spdMAE, me.worstSpd)
	}
	return t, nil
}

// Fig14 reproduces the paper's headline comparison (Fig. 14): OPPROX's
// measured speedup versus the phase-agnostic exhaustive oracle, at three
// QoS budgets per application.
func (s *Suite) Fig14() (*Table, error) {
	t := &Table{
		ID:    "fig14",
		Title: "OPPROX vs phase-agnostic exhaustive oracle (measured; work saved %)",
		Columns: []string{"app", "budget", "opprox speedup", "opprox saved", "opprox deg",
			"oracle speedup", "oracle saved", "oracle deg"},
	}
	type cell struct{ opprox, oracle float64 }
	sums := map[string]*cell{}
	order := []string{}
	for _, app := range s.AppNames() {
		tr, err := s.Trained(app, 4)
		if err != nil {
			return nil, err
		}
		runner := s.runner(app)
		p := apps.DefaultParams(runner.App)
		for _, b := range budgetsFor(app) {
			sched, _, err := tr.Optimize(p, b.value)
			if err != nil {
				return nil, err
			}
			ev, err := runner.Evaluate(p, sched)
			if err != nil {
				return nil, err
			}
			or, err := core.PhaseAgnosticOracle(runner, p, b.value)
			if err != nil {
				return nil, err
			}
			label := b.label[:1] // s/m/l key for averaging
			if _, ok := sums[label]; !ok {
				sums[label] = &cell{}
				order = append(order, label)
			}
			sums[label].opprox += core.WorkSaved(ev.Speedup)
			sums[label].oracle += core.WorkSaved(or.Speedup)
			t.AddRow(app, b.label,
				ev.Speedup, fmt.Sprintf("%.1f%%", core.WorkSaved(ev.Speedup)), degLabel(app, ev.Degradation),
				or.Speedup, fmt.Sprintf("%.1f%%", core.WorkSaved(or.Speedup)), degLabel(app, or.Degradation))
		}
	}
	n := float64(len(s.AppNames()))
	for _, label := range order {
		name := map[string]string{"s": "small", "m": "medium", "l": "large"}[label]
		t.AddRow("MEAN", name, "", fmt.Sprintf("%.1f%%", sums[label].opprox/n), "",
			"", fmt.Sprintf("%.1f%%", sums[label].oracle/n), "")
	}
	t.Notes = append(t.Notes,
		"paper: 14% vs 2% mean work saved at the small budget, 42% vs 37% at the large; the direction (phase-aware wins under tight budgets) is the claim under test",
		"every OPPROX row's measured degradation must respect its budget — the oracle is allowed to consume the budget fully")
	return t, nil
}
