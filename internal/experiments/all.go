package experiments

// Experiment names one paper artifact and its generator.
type Experiment struct {
	ID  string
	Run func(*Suite) (*Table, error)
}

// All lists every experiment in presentation order: the paper's figures
// and tables, then the design-choice ablations.
func All() []Experiment {
	return []Experiment{
		{"fig2", (*Suite).Fig2},
		{"fig3", (*Suite).Fig3},
		{"fig4", (*Suite).Fig4},
		{"fig5", (*Suite).Fig5},
		{"fig7", (*Suite).Fig7},
		{"fig9", (*Suite).Fig9},
		{"fig10", (*Suite).Fig10},
		{"fig11", (*Suite).Fig11},
		{"fig12", (*Suite).Fig12},
		{"fig13", (*Suite).Fig13},
		{"fig14", (*Suite).Fig14},
		{"fig15", (*Suite).Fig15},
		{"table1", (*Suite).Table1},
		{"table2", (*Suite).Table2},
		{"ablation-budget", (*Suite).AblationBudgetPolicy},
		{"ablation-confidence", (*Suite).AblationConfidence},
		{"ablation-mic", (*Suite).AblationMIC},
		{"ablation-iter", (*Suite).AblationIterFeature},
		{"ablation-phasesearch", (*Suite).AblationPhaseSearch},
	}
}

// ByID returns the experiment with the given ID, or false.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
