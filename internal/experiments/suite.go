package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/apps/comd"
	"opprox/internal/apps/lulesh"
	"opprox/internal/apps/pso"
	"opprox/internal/apps/tracker"
	"opprox/internal/apps/vidpipe"
	"opprox/internal/core"
	"opprox/internal/flight"
	"opprox/internal/obs"
	"opprox/internal/qos"
)

// Budget levels per app. The paper uses 5/10/20% QoS degradation for the
// numeric apps and PSNR targets for FFmpeg; vidpipe's targets are
// recalibrated to its substrate (48×32 frames compress the PSNR range —
// see EXPERIMENTS.md).
type budgetSpec struct {
	label string
	value float64 // degradation budget (uniform scale)
}

func budgetsFor(appName string) []budgetSpec {
	if appName == "vidpipe" {
		// Degradation = PSNRCap - PSNR; targets 35/30/20 dB.
		return []budgetSpec{
			{"small (PSNR 35)", vidpipe.PSNRCap - 35},
			{"medium (PSNR 30)", vidpipe.PSNRCap - 30},
			{"large (PSNR 20)", vidpipe.PSNRCap - 20},
		}
	}
	return []budgetSpec{
		{"small (5%)", 5},
		{"medium (10%)", 10},
		{"large (20%)", 20},
	}
}

// Suite owns the runners and caches trained models so that experiments
// sharing a training run do not repeat it. It is safe for concurrent use
// by the parallel experiment engine: the runner map is immutable after
// NewSuite, and the trained-model cache deduplicates concurrent training
// requests for the same key into a single core.Train call.
type Suite struct {
	Seed int64
	// Quick shrinks sampling so benchmarks stay fast; the full artifacts
	// use Quick=false.
	Quick bool

	runners map[string]*apps.Runner

	trained flight.Group[*core.Trained]
}

// NewSuite builds a suite over the five benchmark applications.
func NewSuite(seed int64, quick bool) *Suite {
	s := &Suite{Seed: seed, Quick: quick, runners: map[string]*apps.Runner{}}
	for _, a := range []apps.App{lulesh.New(), comd.New(), vidpipe.New(), tracker.New(), pso.New()} {
		s.runners[a.Name()] = apps.NewRunner(a)
	}
	return s
}

// AppNames returns the benchmark names in the paper's order.
func (s *Suite) AppNames() []string {
	return []string{"lulesh", "comd", "vidpipe", "tracker", "pso"}
}

func (s *Suite) runner(name string) *apps.Runner {
	r, ok := s.runners[name]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown app %q", name))
	}
	return r
}

func (s *Suite) options(phases int) core.Options {
	o := core.DefaultOptions()
	o.Seed = s.Seed
	o.Phases = phases
	if s.Quick {
		o.JointSamplesPerPhase = 12
		o.MaxParamCombos = 6
		o.Folds = 5
	}
	return o
}

// Trained returns (and caches) the trained models for one app at a phase
// count. Concurrent callers needing the same models train them exactly
// once; the rest block until that training finishes.
func (s *Suite) Trained(app string, phases int) (*core.Trained, error) {
	key := fmt.Sprintf("%s/%d", app, phases)
	return s.train(key, func() (*core.Trained, error) {
		tr, err := core.Train(s.runner(app), s.options(phases))
		if err != nil {
			return nil, fmt.Errorf("train %s (%d phases): %w", app, phases, err)
		}
		return tr, nil
	})
}

// train is the singleflight core behind Trained and trainedWith: the
// first caller for a key runs fn, every other caller (concurrent or
// later) reuses its result. Errors stay cached — a training run that
// failed once fails the same way for every experiment that needs it.
func (s *Suite) train(key string, fn func() (*core.Trained, error)) (*core.Trained, error) {
	tr, err, hit := s.trained.Do(key, fn)
	if hit {
		obs.Inc("experiments.train.cached")
	} else {
		obs.Inc("experiments.train.miss")
	}
	return tr, err
}

// sampleConfigs returns a deterministic set of approximation settings used
// by the characterization figures: the per-block mid and max levels plus
// random joint configurations.
func sampleConfigs(blocks []approx.Block, n int, rng *rand.Rand) []approx.Config {
	var cfgs []approx.Config
	for bi, b := range blocks {
		for _, lv := range []int{(b.MaxLevel + 1) / 2, b.MaxLevel} {
			cfg := make(approx.Config, len(blocks))
			cfg[bi] = lv
			cfgs = append(cfgs, cfg)
		}
	}
	for len(cfgs) < n {
		cfg := make(approx.Config, len(blocks))
		nonzero := false
		for bi, b := range blocks {
			cfg[bi] = rng.Intn(b.MaxLevel + 1)
			nonzero = nonzero || cfg[bi] > 0
		}
		if nonzero {
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// phaseStats runs the sample configurations against one phase (or the
// whole run when phase < 0) and summarizes degradation and speedup.
type phaseStats struct {
	minDeg, meanDeg, maxDeg float64
	minSpd, meanSpd, maxSpd float64
	minIters, maxIters      int
}

func (s *Suite) measurePhase(app string, p apps.Params, phases, phase int, cfgs []approx.Config) (phaseStats, error) {
	runner := s.runner(app)
	st := phaseStats{minDeg: 1e18, minSpd: 1e18, minIters: 1 << 30}
	n := 0
	for _, cfg := range cfgs {
		var sched approx.Schedule
		if phase < 0 {
			sched = approx.UniformSchedule(1, cfg)
		} else {
			sched = approx.SinglePhaseSchedule(phases, phase, cfg)
		}
		ev, err := runner.Evaluate(p, sched)
		if err != nil {
			return st, err
		}
		st.meanDeg += ev.Degradation
		st.meanSpd += ev.Speedup
		if ev.Degradation < st.minDeg {
			st.minDeg = ev.Degradation
		}
		if ev.Degradation > st.maxDeg {
			st.maxDeg = ev.Degradation
		}
		if ev.Speedup < st.minSpd {
			st.minSpd = ev.Speedup
		}
		if ev.Speedup > st.maxSpd {
			st.maxSpd = ev.Speedup
		}
		if ev.OuterIters < st.minIters {
			st.minIters = ev.OuterIters
		}
		if ev.OuterIters > st.maxIters {
			st.maxIters = ev.OuterIters
		}
		n++
	}
	st.meanDeg /= float64(n)
	st.meanSpd /= float64(n)
	return st, nil
}

// degLabel renders a degradation in the app's natural unit: percent for
// the numeric apps, PSNR dB for vidpipe (paper Fig. 9d uses PSNR).
func degLabel(app string, deg float64) string {
	if app == "vidpipe" {
		return fmt.Sprintf("%.1f dB", qos.DegradationToPSNR(deg, vidpipe.PSNRCap))
	}
	return fmt.Sprintf("%.2f%%", deg)
}

// splitRecords partitions training records into halves for the model
// accuracy figures (paper §5.2 uses a 50/50 split).
func splitRecords(recs []core.Record, rng *rand.Rand) (train, test []core.Record) {
	idx := rng.Perm(len(recs))
	for i, j := range idx {
		if i%2 == 0 {
			train = append(train, recs[j])
		} else {
			test = append(test, recs[j])
		}
	}
	return train, test
}

// sortedKeys is a small helper for deterministic map iteration.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
