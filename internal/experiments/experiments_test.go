package experiments

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"opprox/internal/approx"
	"opprox/internal/core"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"hello"},
	}
	tab.AddRow("x", 1.5)
	tab.AddRow(2, "y")
	out := tab.Render()
	for _, want := range []string{"== T: demo ==", "a", "bb", "1.500", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:      "1",
		1.5:    "1.500",
		2000.7: "2001",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Fatalf("formatFloat(%g) = %q, want %q", in, got, want)
		}
	}
	if formatFloat(math.NaN()) != "NaN" {
		t.Fatal("NaN should render")
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig14"); !ok {
		t.Fatal("fig14 missing")
	}
	if _, ok := ByID("nonsense"); ok {
		t.Fatal("nonsense found")
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestBudgetsFor(t *testing.T) {
	v := budgetsFor("vidpipe")
	if len(v) != 3 || v[0].value >= v[2].value {
		t.Fatalf("vidpipe budgets wrong: %+v", v)
	}
	n := budgetsFor("lulesh")
	if n[0].value != 5 || n[2].value != 20 {
		t.Fatalf("numeric budgets wrong: %+v", n)
	}
}

// TestQuickExperimentsRun executes the fast characterization experiments
// end to end on a quick suite. Training-heavy experiments are covered by
// the benchmarks and cmd/opprox-experiments.
func TestQuickExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take seconds")
	}
	s := NewSuite(1, true)
	for _, id := range []string{"fig2", "fig3", "fig7", "table1", "ablation-phasesearch"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		tab, err := e.Run(s)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		if tab.Render() == "" {
			t.Fatalf("%s renders empty", id)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	tab.AddRow("plain", `with "quote", comma`)
	out := tab.RenderCSV()
	want := "a,b\nplain,\"with \"\"quote\"\", comma\"\n"
	if out != want {
		t.Fatalf("csv = %q, want %q", out, want)
	}
}

func TestSampleConfigs(t *testing.T) {
	blocks := []approx.Block{
		{Name: "a", MaxLevel: 4},
		{Name: "b", MaxLevel: 2},
	}
	rng := rand.New(rand.NewSource(1))
	cfgs := sampleConfigs(blocks, 10, rng)
	if len(cfgs) < 10 {
		t.Fatalf("got %d configs, want >= 10", len(cfgs))
	}
	// The per-block max configs must be present.
	foundMaxA, foundMaxB := false, false
	for _, c := range cfgs {
		if c[0] == 4 && c[1] == 0 {
			foundMaxA = true
		}
		if c[0] == 0 && c[1] == 2 {
			foundMaxB = true
		}
		if c.IsAccurate() {
			t.Fatal("sampleConfigs must not emit the accurate config")
		}
	}
	if !foundMaxA || !foundMaxB {
		t.Fatal("per-block max configs missing")
	}
	// Deterministic for a fixed seed.
	again := sampleConfigs(blocks, 10, rand.New(rand.NewSource(1)))
	for i := range cfgs {
		if cfgs[i].String() != again[i].String() {
			t.Fatal("sampleConfigs not deterministic")
		}
	}
}

func TestSplitRecords(t *testing.T) {
	recs := make([]core.Record, 11)
	for i := range recs {
		recs[i].Phase = i
	}
	train, test := splitRecords(recs, rand.New(rand.NewSource(2)))
	if len(train)+len(test) != len(recs) {
		t.Fatalf("split lost records: %d + %d != %d", len(train), len(test), len(recs))
	}
	if len(train) == 0 || len(test) == 0 {
		t.Fatal("degenerate split")
	}
	seen := map[int]bool{}
	for _, r := range append(append([]core.Record{}, train...), test...) {
		if seen[r.Phase] {
			t.Fatalf("record %d appears twice", r.Phase)
		}
		seen[r.Phase] = true
	}
}

func TestDegLabel(t *testing.T) {
	if got := degLabel("lulesh", 12.345); got != "12.35%" {
		t.Fatalf("degLabel percent = %q", got)
	}
	if got := degLabel("vidpipe", 20); got != "30.0 dB" {
		t.Fatalf("degLabel psnr = %q", got)
	}
}
