package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/core"
)

// Table1 reproduces paper Table 1: per application, the input parameters,
// the approximation techniques used, and the size of the approximation
// search space.
func (s *Suite) Table1() (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "applications: input parameters, techniques, search-space size",
		Columns: []string{"app", "input parameters", "approx. techniques", "blocks", "uniform configs", "4-phase settings"},
	}
	for _, app := range s.AppNames() {
		a := s.runner(app).App
		var params []string
		for _, spec := range a.Params() {
			params = append(params, spec.Name)
		}
		techSet := map[string]bool{}
		for _, b := range a.Blocks() {
			techSet[b.Technique.String()] = true
		}
		uniform := approx.NumConfigs(a.Blocks())
		// The per-run phase-aware space: one config per phase.
		phaseSpace := 1.0
		for i := 0; i < 4; i++ {
			phaseSpace *= float64(uniform)
		}
		t.AddRow(app, strings.Join(params, ", "), strings.Join(sortedKeys(techSet), ", "),
			len(a.Blocks()), uniform, fmt.Sprintf("%.3g", phaseSpace))
	}
	t.Notes = append(t.Notes, "the 4-phase column is the schedule space OPPROX's models search (uniform^4); the paper's Table 1 reports the analogous combinatorial counts for its C/C++ builds")
	return t, nil
}

// Table2 reproduces paper Table 2: training and optimization times as the
// phase granularity grows (1, 2, 4, 8 phases).
func (s *Suite) Table2() (*Table, error) {
	t := &Table{
		ID:      "table2",
		Title:   "training and optimization time vs phase granularity",
		Columns: []string{"app", "phases", "training", "optimization"},
	}
	phaseCounts := []int{1, 2, 4, 8}
	if s.Quick {
		phaseCounts = []int{1, 2, 4}
	}
	for _, app := range s.AppNames() {
		runner := s.runner(app)
		p := apps.DefaultParams(runner.App)
		for _, n := range phaseCounts {
			// The granularity sweep reports the cost *trend*, so it runs
			// with a capped input-combo set: full-sampling 8-phase
			// training is the whole table's cost multiplied out.
			opts := s.options(n)
			if opts.MaxParamCombos == 0 || opts.MaxParamCombos > 6 {
				opts.MaxParamCombos = 6
			}
			tr, err := s.trainedWith(app, opts)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, _, err := tr.Optimize(p, 10); err != nil {
				return nil, err
			}
			opt := time.Since(start)
			t.AddRow(app, n, tr.TrainTime.Round(time.Millisecond).String(), opt.Round(time.Microsecond).String())
		}
	}
	t.Notes = append(t.Notes,
		"training cost grows with the phase count (more per-phase samples and model fits), optimization with the per-phase enumeration — the paper's trade-off in Table 2",
		"the sweep trains on up to 6 input combos per app so the 8-phase column stays tractable; the trend, not the absolute seconds, is the artifact")
	return t, nil
}

// AblationBudgetPolicy compares the ROI budget split against a uniform
// split (DESIGN.md ablation 1).
func (s *Suite) AblationBudgetPolicy() (*Table, error) {
	t := &Table{
		ID:      "ablation-budget",
		Title:   "ablation: ROI-proportional vs uniform budget split (budget 10%)",
		Columns: []string{"app", "policy", "measured speedup", "measured degradation"},
	}
	for _, app := range s.AppNames() {
		runner := s.runner(app)
		p := apps.DefaultParams(runner.App)
		budget := budgetsFor(app)[1].value
		for _, policy := range []core.BudgetPolicy{core.BudgetPolicyROI, core.BudgetPolicyUniform} {
			opts := s.options(4)
			opts.BudgetPolicy = policy
			tr, err := s.trainedWith(app, opts)
			if err != nil {
				return nil, err
			}
			sched, _, err := tr.Optimize(p, budget)
			if err != nil {
				return nil, err
			}
			ev, err := runner.Evaluate(p, sched)
			if err != nil {
				return nil, err
			}
			t.AddRow(app, policy.String(), ev.Speedup, degLabel(app, ev.Degradation))
		}
	}
	return t, nil
}

// AblationConfidence measures what happens without the conservative
// confidence intervals (DESIGN.md ablation 2): more speedup, but budget
// violations appear.
func (s *Suite) AblationConfidence() (*Table, error) {
	t := &Table{
		ID:      "ablation-confidence",
		Title:   "ablation: conservative confidence intervals on/off (budget 10%)",
		Columns: []string{"app", "confidence", "measured speedup", "measured degradation", "within budget"},
	}
	for _, app := range s.AppNames() {
		runner := s.runner(app)
		p := apps.DefaultParams(runner.App)
		budget := budgetsFor(app)[1].value
		for _, useCI := range []bool{true, false} {
			opts := s.options(4)
			opts.UseConfidence = useCI
			tr, err := s.trainedWith(app, opts)
			if err != nil {
				return nil, err
			}
			sched, _, err := tr.Optimize(p, budget)
			if err != nil {
				return nil, err
			}
			ev, err := runner.Evaluate(p, sched)
			if err != nil {
				return nil, err
			}
			within := "yes"
			if ev.Degradation > budget {
				within = "NO"
			}
			t.AddRow(app, fmt.Sprint(useCI), ev.Speedup, degLabel(app, ev.Degradation), within)
		}
	}
	t.Notes = append(t.Notes, "without the conservative bound the optimizer promises more but risks overshooting the budget — the reason the paper uses the p=0.99 interval edge")
	return t, nil
}

// AblationMIC compares model quality and fit behavior with and without MIC
// feature filtering (DESIGN.md ablation 3).
func (s *Suite) AblationMIC() (*Table, error) {
	t := &Table{
		ID:      "ablation-mic",
		Title:   "ablation: MIC feature filtering on/off",
		Columns: []string{"app", "mic", "speedup R2", "degradation R2", "train time"},
	}
	for _, app := range s.AppNames() {
		for _, useMIC := range []bool{true, false} {
			opts := s.options(4)
			opts.UseMIC = useMIC
			tr, err := s.trainedWith(app, opts)
			if err != nil {
				return nil, err
			}
			sR2, dR2 := tr.ModelQuality()
			t.AddRow(app, fmt.Sprint(useMIC), sR2, dR2, tr.TrainTime.Round(time.Millisecond).String())
		}
	}
	return t, nil
}

// AblationIterFeature toggles the explicit iteration-count feature the
// paper feeds into the global models (§3.6; DESIGN.md ablation 4).
func (s *Suite) AblationIterFeature() (*Table, error) {
	t := &Table{
		ID:      "ablation-iter",
		Title:   "ablation: iteration-count estimate as an explicit model feature",
		Columns: []string{"app", "iter feature", "speedup R2", "degradation R2"},
	}
	// The apps whose outer loop reacts to approximation are where the
	// feature earns its keep.
	for _, app := range []string{"lulesh", "pso", "tracker"} {
		for _, useIter := range []bool{true, false} {
			opts := s.options(4)
			opts.UseIterFeature = useIter
			tr, err := s.trainedWith(app, opts)
			if err != nil {
				return nil, err
			}
			sR2, dR2 := tr.ModelQuality()
			t.AddRow(app, fmt.Sprint(useIter), sR2, dR2)
		}
	}
	return t, nil
}

// AblationPhaseSearch compares Algorithm 1's automatic phase-granularity
// choice against fixed phase counts (DESIGN.md ablation 5).
func (s *Suite) AblationPhaseSearch() (*Table, error) {
	t := &Table{
		ID:      "ablation-phasesearch",
		Title:   "ablation: Algorithm 1's phase count vs fixed granularities",
		Columns: []string{"app", "algorithm-1 phases", "notes"},
	}
	rng := rand.New(rand.NewSource(s.Seed + 21))
	for _, app := range s.AppNames() {
		runner := s.runner(app)
		n, err := core.FindPhaseGranularity(runner, apps.DefaultParams(runner.App), 2.0, 8, rng)
		if err != nil {
			return nil, err
		}
		note := "matches the evaluation's N=4"
		if n != 4 {
			note = fmt.Sprintf("prefers N=%d at threshold 2.0", n)
		}
		t.AddRow(app, n, note)
	}
	return t, nil
}

// trainedWith trains with explicit options, cached by a derived key. Like
// Trained, concurrent callers with the same key train exactly once.
func (s *Suite) trainedWith(app string, opts core.Options) (*core.Trained, error) {
	if opts == s.options(opts.Phases) {
		// Identical to the default configuration: share its cache entry.
		return s.Trained(app, opts.Phases)
	}
	key := fmt.Sprintf("%s/%d/mic=%v/ci=%v/iter=%v/pol=%v/combos=%d", app, opts.Phases, opts.UseMIC, opts.UseConfidence, opts.UseIterFeature, opts.BudgetPolicy, opts.MaxParamCombos)
	return s.train(key, func() (*core.Trained, error) {
		return core.Train(s.runner(app), opts)
	})
}
