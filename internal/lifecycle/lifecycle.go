// Package lifecycle is the model-lifecycle half of the closed serving
// loop: a versioned registry layered on the serving layer's model cache.
// Every model file gets a content-hash version; when the drift detector
// flags the live version, the manager builds a recalibrated **shadow**
// version (the canary-calibration correction, measured from production
// feedback instead of probe runs), dark-launches it — both versions are
// evaluated per dispatch, only the live one is returned, disagreement is
// recorded — and promotes it once its realized-error window beats the
// live version's, with one-step rollback.
//
// The package does not import internal/serve: it talks to the serving
// layer through two small interfaces (Registry, Publisher) that
// serve.Registry and serve.FileStore satisfy structurally, so the import
// edge runs serve -> lifecycle and the HTTP wiring stays in serve.
//
// Every decision here is a pure function of the dispatch + feedback
// sequence: versions are content hashes, promoted bytes are the
// deterministic serialized form of the recalibrated models, and the
// error windows are fixed-size rings reduced in index order. A promoted
// model file therefore reproduces byte-identical dispatches on a fresh
// server (the closed-loop e2e test pins this).
package lifecycle

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"

	"opprox/internal/approx"
	"opprox/internal/core"
	"opprox/internal/feedback"
	"opprox/internal/flight"
	"opprox/internal/obs"
)

// Registry is the byte-reading, model-caching surface the manager layers
// on — *serve.Registry satisfies it. ReadAll applies the registry's
// retry/backoff policy; Install and Forget keep the singleflight cache
// consistent with lifecycle swaps so a promote can never serve a stale
// cached model.
type Registry interface {
	ReadAll(ctx context.Context, name string) ([]byte, error)
	Install(name string, tr *core.Trained)
	Forget(name string)
}

// Publisher persists model bytes back into the store (atomic
// write-then-rename; serve.FileStore satisfies it). The manager writes
// each shadow under its versioned name and, on promote/rollback, the
// winning bytes under the base name — a fresh server started on the
// base name serves exactly the promoted model.
type Publisher interface {
	Put(name string, data []byte) error
}

// Options tunes the lifecycle manager. The zero value is usable.
type Options struct {
	// ErrWindow is the size of the realized-error rings the live and
	// shadow versions are compared over (default 32).
	ErrWindow int
	// MinShadowSamples is how many realized-error samples both windows
	// need before an auto-promotion comparison (default 8).
	MinShadowSamples int
	// DisableAutoPromote turns automatic promotion off; /v1/promote
	// still works.
	DisableAutoPromote bool
	// OnSwap, when set, is called with the base model name every time the
	// live version changes (promote, rollback, reload). The serving layer
	// hooks its dispatch-plan cache here so retired versions release their
	// cached plans immediately. Called with the model's state lock held —
	// the callback must not call back into the Manager.
	OnSwap func(name string)
	// OnLoad, when set, runs on every model the manager materializes —
	// first resolve, hot reload, and the recalibration clone — before it
	// can serve or shadow. The serving layer hooks per-model setup here
	// (-front-library builds the Pareto-front plan library). An error
	// fails the load; the last-good state keeps serving.
	OnLoad func(tr *core.Trained) error
}

func (o Options) withDefaults() Options {
	if o.ErrWindow <= 0 {
		o.ErrWindow = 32
	}
	if o.MinShadowSamples <= 0 {
		o.MinShadowSamples = 8
	}
	return o
}

// Version is the content-hash version of a model file's bytes.
func Version(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:6])
}

// VersionedName is the store name a specific model version is persisted
// under ("pso.json@3f2a...").
func VersionedName(name, version string) string {
	return name + "@" + version
}

// Lifecycle errors; the serving layer maps them onto its taxonomy.
var (
	// ErrNoShadow: promote was requested but no shadow version exists.
	ErrNoShadow = errors.New("lifecycle: no shadow version")
	// ErrNoPrevious: rollback was requested but no previous version exists.
	ErrNoPrevious = errors.New("lifecycle: no previous version")
	// ErrUnknownModel: the named model was never resolved by this manager.
	ErrUnknownModel = errors.New("lifecycle: unknown model")
	// ErrIdenticalToLive: a dark-launch candidate hashes to the version
	// already live — nothing to evaluate. Raced retrains hit this when a
	// promote lands between candidate selection and the dark-launch.
	ErrIdenticalToLive = errors.New("lifecycle: candidate is identical to live")
)

// errWindow is a fixed ring of realized-error samples reduced in index
// order (deterministic mean).
type errWindow struct {
	v      []float64
	next   int
	filled int
}

func (w *errWindow) push(size int, e float64) {
	if w.v == nil {
		w.v = make([]float64, size)
	}
	w.v[w.next] = e
	w.next = (w.next + 1) % size
	if w.filled < size {
		w.filled++
	}
}

func (w *errWindow) mean() float64 {
	if w.filled == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range w.v[:w.filled] {
		sum += e
	}
	return sum / float64(w.filled)
}

// shadowState is a dark-launched candidate version.
type shadowState struct {
	version string
	tr      *core.Trained
	raw     []byte

	disagree  int64
	liveErr   errWindow
	shadowErr errWindow
}

// modelState is the lifecycle view of one base model name.
type modelState struct {
	mu sync.Mutex

	name        string
	liveVersion string
	live        *core.Trained
	liveRaw     []byte

	prevVersion string
	prev        *core.Trained
	prevRaw     []byte

	shadow *shadowState
}

// Manager is the versioned model-lifecycle registry.
type Manager struct {
	reg  Registry
	pub  Publisher
	opts Options

	group flight.Group[*modelState]
}

// NewManager builds a lifecycle manager over a registry and a publisher.
// pub may be nil, in which case shadow and promoted versions live only
// in memory (tests; a production store should always persist).
func NewManager(reg Registry, pub Publisher, opts Options) *Manager {
	return &Manager{reg: reg, pub: pub, opts: opts.withDefaults()}
}

// state resolves (loading on first use, singleflight) the lifecycle
// state for a base model name.
func (m *Manager) state(ctx context.Context, name string) (*modelState, error) {
	st, err, _ := m.group.Do(name, func() (*modelState, error) {
		raw, err := m.reg.ReadAll(ctx, name)
		if err != nil {
			return nil, err
		}
		tr, err := core.LoadTrained(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("model %q: %w", name, err)
		}
		if err := m.afterLoad(tr); err != nil {
			return nil, fmt.Errorf("model %q: %w", name, err)
		}
		m.reg.Install(name, tr)
		return &modelState{
			name:        name,
			liveVersion: Version(raw),
			live:        tr,
			liveRaw:     raw,
		}, nil
	})
	if err != nil {
		// Never cache a failed load: the store may heal.
		m.group.Forget(name)
		return nil, err
	}
	return st, nil
}

// peek returns the state only if the model was already resolved
// successfully (non-blocking; never fabricates a slot).
func (m *Manager) peek(name string) (*modelState, bool) {
	return m.group.Peek(name)
}

// Live resolves the live version for a base model name: the trained
// models and their content-hash version.
func (m *Manager) Live(ctx context.Context, name string) (*core.Trained, string, error) {
	st, err := m.state(ctx, name)
	if err != nil {
		return nil, "", err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.live, st.liveVersion, nil
}

// LiveVersion returns the live version for an already-resolved model
// without loading anything (feedback paths must not trigger I/O).
func (m *Manager) LiveVersion(name string) (string, bool) {
	st, ok := m.peek(name)
	if !ok {
		return "", false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.liveVersion, true
}

// Shadow returns the dark-launched candidate for a model, if any.
func (m *Manager) Shadow(name string) (*core.Trained, string, bool) {
	st, ok := m.peek(name)
	if !ok {
		return nil, "", false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.shadow == nil {
		return nil, "", false
	}
	return st.shadow.tr, st.shadow.version, true
}

// NoteDisagreement records one dispatch where the shadow's schedule
// differed from the live one — the dark-launch signal operators watch
// before trusting a promotion.
func (m *Manager) NoteDisagreement(name string) {
	st, ok := m.peek(name)
	if !ok {
		return
	}
	st.mu.Lock()
	if st.shadow != nil {
		st.shadow.disagree++
	}
	st.mu.Unlock()
	obs.Inc("lifecycle.shadow.disagree")
}

// CreateShadow builds, persists and dark-launches a recalibrated shadow
// version of the live model: the per-phase additive shifts (typically
// the drift detector's median log-residuals) are folded into the live
// calibration exactly as CalibrateCanary would have installed them. A
// shadow already in flight is kept — repeated drift signals do not churn
// the candidate under evaluation.
func (m *Manager) CreateShadow(name string, addSpd, addDeg []float64) (string, error) {
	st, ok := m.peek(name)
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownModel, name)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.shadow != nil {
		return st.shadow.version, nil
	}
	zero := true
	for _, v := range addSpd {
		zero = zero && v == 0
	}
	for _, v := range addDeg {
		zero = zero && v == 0
	}
	if zero {
		// Behaviorally identical to live (even where the bytes would
		// differ, e.g. materializing an explicit zero calibration block).
		return "", fmt.Errorf("lifecycle: recalibration is a no-op for %s", name)
	}

	// Clone via the deterministic serialized form, then fold the new
	// correction into whatever calibration the live model already has.
	clone, err := core.LoadTrained(bytes.NewReader(st.liveRaw))
	if err != nil {
		return "", fmt.Errorf("lifecycle: cloning live model: %w", err)
	}
	if err := m.afterLoad(clone); err != nil {
		return "", fmt.Errorf("lifecycle: cloning live model: %w", err)
	}
	spd, deg, ok := clone.CalibrationShifts()
	if !ok {
		spd = make([]float64, clone.Phases)
		deg = make([]float64, clone.Phases)
	}
	if len(addSpd) != clone.Phases || len(addDeg) != clone.Phases {
		return "", fmt.Errorf("lifecycle: %d/%d correction phases for a %d-phase model",
			len(addSpd), len(addDeg), clone.Phases)
	}
	for ph := 0; ph < clone.Phases; ph++ {
		spd[ph] += addSpd[ph]
		deg[ph] += addDeg[ph]
	}
	if err := clone.SetCalibration(spd, deg); err != nil {
		return "", fmt.Errorf("lifecycle: recalibrating shadow: %w", err)
	}
	// The plan library (when OnLoad built one) was pruned under the OLD
	// calibration; re-prune the shifted phases so the persisted shadow's
	// survivor sets match its own calibration — incremental, only the
	// phases the correction moved.
	if _, err := clone.RefreshFrontLibrary(); err != nil {
		return "", fmt.Errorf("lifecycle: refreshing shadow plan library: %w", err)
	}
	var out bytes.Buffer
	if err := clone.Save(&out); err != nil {
		return "", fmt.Errorf("lifecycle: serializing shadow: %w", err)
	}
	raw := out.Bytes()
	ver := Version(raw)
	if ver == st.liveVersion {
		// A zero correction reproduces the live bytes; nothing to launch.
		return "", fmt.Errorf("lifecycle: recalibration is a no-op for %s", name)
	}
	if m.pub != nil {
		if err := m.pub.Put(VersionedName(name, ver), raw); err != nil {
			return "", fmt.Errorf("lifecycle: persisting shadow: %w", err)
		}
	}
	st.shadow = &shadowState{version: ver, tr: clone, raw: raw}
	obs.Inc("lifecycle.shadow.created")
	obs.LogEvent("lifecycle.shadow", "%s: shadow %s dark-launched next to live %s", name, ver, st.liveVersion)
	return ver, nil
}

// CreateShadowFromBytes dark-launches a fully built candidate model —
// the retrain pipeline's entry point: the caller (a retrain driver)
// hands over the serialized model and the manager validates, persists
// and installs it as the shadow. Unlike CreateShadow, an existing
// shadow is REPLACED (a retrained candidate supersedes a recalibrated
// one — it was fitted on strictly more information), except when the
// bytes hash to the version already shadowing, which keeps the
// in-flight evaluation windows. Candidates identical to the live
// version are rejected.
func (m *Manager) CreateShadowFromBytes(name string, raw []byte) (string, error) {
	st, ok := m.peek(name)
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownModel, name)
	}
	tr, err := core.LoadTrained(bytes.NewReader(raw))
	if err != nil {
		return "", fmt.Errorf("lifecycle: candidate model: %w", err)
	}
	if err := m.afterLoad(tr); err != nil {
		return "", fmt.Errorf("lifecycle: candidate model: %w", err)
	}
	ver := Version(raw)
	st.mu.Lock()
	defer st.mu.Unlock()
	if ver == st.liveVersion {
		return "", fmt.Errorf("%w: %s for %s", ErrIdenticalToLive, ver, name)
	}
	if st.shadow != nil && st.shadow.version == ver {
		return ver, nil
	}
	if m.pub != nil {
		if err := m.pub.Put(VersionedName(name, ver), raw); err != nil {
			return "", fmt.Errorf("lifecycle: persisting shadow: %w", err)
		}
	}
	st.shadow = &shadowState{version: ver, tr: tr, raw: append([]byte(nil), raw...)}
	obs.Inc("lifecycle.shadow.created")
	obs.LogEvent("lifecycle.shadow", "%s: retrained shadow %s dark-launched next to live %s", name, ver, st.liveVersion)
	return ver, nil
}

// LiveRaw returns the live version's serialized bytes and version for an
// already-resolved model — the retrain driver's starting point (it
// clones the live model from its deterministic serialized form, never
// from shared in-memory state).
func (m *Manager) LiveRaw(name string) ([]byte, string, bool) {
	st, ok := m.peek(name)
	if !ok {
		return nil, "", false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.liveRaw, st.liveVersion, true
}

// Feedback folds one feedback report's realized values into the
// live-vs-shadow error comparison and returns whether it auto-promoted
// the shadow. Reports for a version other than the current live one are
// ignored (the dispatch predates a swap). The per-phase error is the
// mean absolute residual across both targets on their training scales —
// the same quantity the confidence bands were calibrated on.
func (m *Manager) Feedback(rec *feedback.DispatchRecord, observations []feedback.PhaseObservation) (promoted bool, err error) {
	st, ok := m.peek(rec.Model)
	if !ok {
		return false, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if rec.Version != st.liveVersion || st.shadow == nil {
		return false, nil
	}
	sh := st.shadow
	for _, o := range observations {
		if o.Phase < 0 || o.Phase >= len(rec.Diags) || o.Phase >= len(rec.Levels) {
			continue
		}
		realS := core.SpeedupScale(o.Speedup)
		realD := core.DegradationScale(o.Degradation)
		liveDiag := rec.Diags[o.Phase]
		liveErr := (abs(realS-liveDiag.SpeedupRaw) + abs(realD-liveDiag.DegRaw)) / 2

		shDiag, derr := sh.tr.DiagnosePhase(rec.Params, o.Phase, approx.Config(rec.Levels[o.Phase]))
		if derr != nil {
			// The shadow cannot price this dispatch (should not happen:
			// same blocks, same phases); skip the sample for both windows
			// so the comparison stays apples to apples.
			continue
		}
		shadowErr := (abs(realS-shDiag.SpeedupRaw) + abs(realD-shDiag.DegRaw)) / 2
		sh.liveErr.push(m.opts.ErrWindow, liveErr)
		sh.shadowErr.push(m.opts.ErrWindow, shadowErr)
	}
	if m.opts.DisableAutoPromote {
		return false, nil
	}
	if sh.liveErr.filled < m.opts.MinShadowSamples || sh.shadowErr.filled < m.opts.MinShadowSamples {
		return false, nil
	}
	if sh.shadowErr.mean() >= sh.liveErr.mean() {
		return false, nil
	}
	if err := m.promoteLocked(st); err != nil {
		return false, err
	}
	obs.Inc("lifecycle.promote.auto")
	return true, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Promote makes the shadow version live: the previous live version is
// retained for one-step rollback, the promoted bytes are persisted under
// both the versioned and the base store name (atomic publish), and the
// serving cache is swapped in the same step.
func (m *Manager) Promote(name string) error {
	st, ok := m.peek(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownModel, name)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return m.promoteLocked(st)
}

func (m *Manager) promoteLocked(st *modelState) error {
	if st.shadow == nil {
		return fmt.Errorf("%w for %s", ErrNoShadow, st.name)
	}
	sh := st.shadow
	if m.pub != nil {
		// Keep the outgoing live version recoverable under its versioned
		// name before the base name is overwritten.
		if err := m.pub.Put(VersionedName(st.name, st.liveVersion), st.liveRaw); err != nil {
			return fmt.Errorf("lifecycle: preserving live version: %w", err)
		}
		if err := m.pub.Put(st.name, sh.raw); err != nil {
			return fmt.Errorf("lifecycle: publishing promoted version: %w", err)
		}
	}
	st.prevVersion, st.prev, st.prevRaw = st.liveVersion, st.live, st.liveRaw
	st.liveVersion, st.live, st.liveRaw = sh.version, sh.tr, sh.raw
	st.shadow = nil
	m.reg.Install(st.name, st.live)
	m.reg.Forget(VersionedName(st.name, st.prevVersion))
	m.noteSwap(st.name)
	obs.Inc("lifecycle.promote")
	obs.LogEvent("lifecycle.promote", "%s: %s promoted over %s", st.name, st.liveVersion, st.prevVersion)
	return nil
}

// Rollback restores the previous live version in one step. The rolled-
// back-from version becomes the new previous, so a mistaken rollback is
// itself reversible.
func (m *Manager) Rollback(name string) error {
	st, ok := m.peek(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownModel, name)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.prev == nil {
		return fmt.Errorf("%w for %s", ErrNoPrevious, name)
	}
	if m.pub != nil {
		if err := m.pub.Put(VersionedName(st.name, st.liveVersion), st.liveRaw); err != nil {
			return fmt.Errorf("lifecycle: preserving live version: %w", err)
		}
		if err := m.pub.Put(st.name, st.prevRaw); err != nil {
			return fmt.Errorf("lifecycle: publishing rollback: %w", err)
		}
	}
	st.liveVersion, st.prevVersion = st.prevVersion, st.liveVersion
	st.live, st.prev = st.prev, st.live
	st.liveRaw, st.prevRaw = st.prevRaw, st.liveRaw
	st.shadow = nil
	m.reg.Install(st.name, st.live)
	m.noteSwap(st.name)
	obs.Inc("lifecycle.rollback")
	obs.LogEvent("lifecycle.rollback", "%s: rolled back to %s (from %s)", st.name, st.liveVersion, st.prevVersion)
	return nil
}

// Reload re-reads the base model file and, when its content hash
// changed, installs it as the new live version (previous retained for
// rollback, shadow dropped). It returns whether the live version
// changed. A failed read or validation keeps the last-good state — the
// same contract as the registry's hot reload.
func (m *Manager) Reload(ctx context.Context, name string) (bool, error) {
	st, ok := m.peek(name)
	if !ok {
		// Never resolved: a plain resolve is the reload.
		_, err := m.state(ctx, name)
		return err == nil, err
	}
	raw, err := m.reg.ReadAll(ctx, name)
	if err != nil {
		return false, err
	}
	tr, err := core.LoadTrained(bytes.NewReader(raw))
	if err != nil {
		return false, fmt.Errorf("model %q: %w", name, err)
	}
	if err := m.afterLoad(tr); err != nil {
		return false, fmt.Errorf("model %q: %w", name, err)
	}
	ver := Version(raw)
	st.mu.Lock()
	defer st.mu.Unlock()
	if ver == st.liveVersion {
		return false, nil
	}
	st.prevVersion, st.prev, st.prevRaw = st.liveVersion, st.live, st.liveRaw
	st.liveVersion, st.live, st.liveRaw = ver, tr, raw
	st.shadow = nil
	m.reg.Install(name, tr)
	m.noteSwap(name)
	obs.Inc("lifecycle.reload")
	return true, nil
}

// afterLoad runs the OnLoad hook on a freshly materialized model.
func (m *Manager) afterLoad(tr *core.Trained) error {
	if m.opts.OnLoad == nil {
		return nil
	}
	return m.opts.OnLoad(tr)
}

// noteSwap fires the OnSwap hook after a live-version change.
func (m *Manager) noteSwap(name string) {
	if m.opts.OnSwap != nil {
		m.opts.OnSwap(name)
	}
}

// ShadowStatus is the dark-launch telemetry exposed per model.
type ShadowStatus struct {
	Version string `json:"version"`
	// Samples is how many realized-error samples the comparison windows
	// hold (both windows fill in lockstep).
	Samples int `json:"samples"`
	// LiveWindowErr and ShadowWindowErr are the mean absolute residuals
	// of the live and shadow predictions over the comparison window.
	LiveWindowErr   float64 `json:"live_window_err"`
	ShadowWindowErr float64 `json:"shadow_window_err"`
	// Disagreements counts dispatches whose shadow schedule differed.
	Disagreements int64 `json:"disagreements"`
}

// ModelStatus is one model's lifecycle view (GET /v1/models). Health is
// filled by the serving layer from the drift detector — the manager
// tracks versions, not drift.
type ModelStatus struct {
	Name            string        `json:"name"`
	LiveVersion     string        `json:"live_version"`
	PreviousVersion string        `json:"previous_version,omitempty"`
	Health          string        `json:"health"`
	Shadow          *ShadowStatus `json:"shadow,omitempty"`
}

// Snapshot lists every resolved model's lifecycle state, sorted by name.
func (m *Manager) Snapshot() []ModelStatus {
	names := m.group.Keys()
	sort.Strings(names)
	out := make([]ModelStatus, 0, len(names))
	for _, name := range names {
		st, ok := m.peek(name)
		if !ok {
			continue
		}
		st.mu.Lock()
		ms := ModelStatus{
			Name:            st.name,
			LiveVersion:     st.liveVersion,
			PreviousVersion: st.prevVersion,
		}
		if sh := st.shadow; sh != nil {
			ms.Shadow = &ShadowStatus{
				Version:         sh.version,
				Samples:         sh.shadowErr.filled,
				LiveWindowErr:   sh.liveErr.mean(),
				ShadowWindowErr: sh.shadowErr.mean(),
				Disagreements:   sh.disagree,
			}
		}
		st.mu.Unlock()
		out = append(out, ms)
	}
	return out
}
