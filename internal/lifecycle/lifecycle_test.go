package lifecycle

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/apps/pso"
	"opprox/internal/core"
	"opprox/internal/feedback"
)

var (
	modelOnce  sync.Once
	modelBytes []byte
)

// modelJSON trains one small real model (shared across tests) so version
// hashing, recalibration and diagnosis all run against genuine bytes.
func modelJSON(t *testing.T) []byte {
	t.Helper()
	modelOnce.Do(func() {
		opts := core.DefaultOptions()
		opts.Phases = 2
		opts.JointSamplesPerPhase = 6
		opts.MaxParamCombos = 3
		opts.Folds = 5
		tr, err := core.Train(apps.NewRunner(pso.New()), opts)
		if err != nil {
			panic(err)
		}
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			panic(err)
		}
		modelBytes = buf.Bytes()
	})
	return modelBytes
}

// fakeReg is an in-memory Registry that records Install/Forget calls so
// tests can assert the serving cache is kept consistent with swaps.
type fakeReg struct {
	mu        sync.Mutex
	files     map[string][]byte
	installed map[string]*core.Trained
	forgotten []string
}

func newFakeReg() *fakeReg {
	return &fakeReg{files: map[string][]byte{}, installed: map[string]*core.Trained{}}
}

func (r *fakeReg) ReadAll(_ context.Context, name string) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.files[name]
	if !ok {
		return nil, fmt.Errorf("fakeReg: no file %q", name)
	}
	return append([]byte(nil), b...), nil
}

func (r *fakeReg) Install(name string, tr *core.Trained) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.installed[name] = tr
}

func (r *fakeReg) Forget(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.forgotten = append(r.forgotten, name)
}

func (r *fakeReg) installedModel(name string) *core.Trained {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.installed[name]
}

// fakePub is an in-memory Publisher.
type fakePub struct {
	mu    sync.Mutex
	files map[string][]byte
}

func newFakePub() *fakePub { return &fakePub{files: map[string][]byte{}} }

func (p *fakePub) Put(name string, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.files[name] = append([]byte(nil), data...)
	return nil
}

func (p *fakePub) get(name string) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.files[name]
	return b, ok
}

func newTestManager(t *testing.T, opts Options) (*Manager, *fakeReg, *fakePub) {
	t.Helper()
	reg := newFakeReg()
	reg.files["pso.json"] = modelJSON(t)
	pub := newFakePub()
	return NewManager(reg, pub, opts), reg, pub
}

func TestLiveResolvesAndVersions(t *testing.T) {
	m, reg, _ := newTestManager(t, Options{})
	tr, ver, err := m.Live(context.Background(), "pso.json")
	if err != nil {
		t.Fatal(err)
	}
	if want := Version(modelJSON(t)); ver != want {
		t.Fatalf("live version %q, want content hash %q", ver, want)
	}
	if tr == nil || reg.installedModel("pso.json") != tr {
		t.Fatal("live model not installed into the serving cache")
	}

	// Unknown models error on the mutating surface and stay invisible on
	// the read surface — no state is fabricated.
	if _, _, err := m.Live(context.Background(), "missing.json"); err == nil {
		t.Fatal("missing model resolved")
	}
	if _, _, ok := m.Shadow("missing.json"); ok {
		t.Fatal("Shadow invented state for an unresolved model")
	}
	if _, err := m.CreateShadow("missing.json", nil, nil); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("CreateShadow err = %v, want ErrUnknownModel", err)
	}
	if err := m.Promote("missing.json"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("Promote err = %v, want ErrUnknownModel", err)
	}
	if err := m.Rollback("missing.json"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("Rollback err = %v, want ErrUnknownModel", err)
	}
	// The failed resolve must not leave a poisoned slot behind.
	if _, _, err := m.Live(context.Background(), "pso.json"); err != nil {
		t.Fatalf("healthy model unresolvable after a failed neighbor: %v", err)
	}
}

func shifts(phases int, v float64) ([]float64, []float64) {
	spd := make([]float64, phases)
	deg := make([]float64, phases)
	for i := range spd {
		spd[i] = v
		deg[i] = -v / 2
	}
	return spd, deg
}

func TestCreateShadowPromoteRollback(t *testing.T) {
	m, reg, pub := newTestManager(t, Options{})
	_, liveVer, err := m.Live(context.Background(), "pso.json")
	if err != nil {
		t.Fatal(err)
	}

	spd, deg := shifts(2, 0.05)
	shVer, err := m.CreateShadow("pso.json", spd, deg)
	if err != nil {
		t.Fatal(err)
	}
	if shVer == liveVer {
		t.Fatal("shadow version equals live version")
	}
	if _, ok := pub.get(VersionedName("pso.json", shVer)); !ok {
		t.Fatal("shadow bytes not persisted under the versioned name")
	}
	// A second drift signal keeps the candidate under evaluation.
	again, err := m.CreateShadow("pso.json", spd, deg)
	if err != nil || again != shVer {
		t.Fatalf("repeated CreateShadow = (%q, %v), want existing %q", again, err, shVer)
	}
	shTr, gotVer, ok := m.Shadow("pso.json")
	if !ok || gotVer != shVer || shTr == nil {
		t.Fatalf("Shadow() = (%v, %q, %v)", shTr, gotVer, ok)
	}

	// Promote: shadow becomes live, old live is kept for rollback, the
	// base store name now holds the promoted bytes.
	if err := m.Promote("pso.json"); err != nil {
		t.Fatal(err)
	}
	_, nowVer, err := m.Live(context.Background(), "pso.json")
	if err != nil {
		t.Fatal(err)
	}
	if nowVer != shVer {
		t.Fatalf("live after promote = %q, want shadow %q", nowVer, shVer)
	}
	base, ok := pub.get("pso.json")
	if !ok || Version(base) != shVer {
		t.Fatal("base store name does not hold the promoted bytes")
	}
	if prev, ok := pub.get(VersionedName("pso.json", liveVer)); !ok || Version(prev) != liveVer {
		t.Fatal("outgoing live version not preserved under its versioned name")
	}
	if reg.installedModel("pso.json") == nil {
		t.Fatal("promoted model not installed into the serving cache")
	}
	snap := m.Snapshot()
	if len(snap) != 1 || snap[0].LiveVersion != shVer ||
		snap[0].PreviousVersion != liveVer || snap[0].Shadow != nil {
		t.Fatalf("snapshot after promote: %+v", snap)
	}
	if err := m.Promote("pso.json"); !errors.Is(err, ErrNoShadow) {
		t.Fatalf("promote without shadow err = %v, want ErrNoShadow", err)
	}

	// Rollback restores the prior version in one step, and is itself
	// reversible (the rolled-back-from version becomes previous).
	if err := m.Rollback("pso.json"); err != nil {
		t.Fatal(err)
	}
	_, backVer, _ := m.Live(context.Background(), "pso.json")
	if backVer != liveVer {
		t.Fatalf("live after rollback = %q, want original %q", backVer, liveVer)
	}
	if base, _ := pub.get("pso.json"); Version(base) != liveVer {
		t.Fatal("rollback did not republish the base name")
	}
	if err := m.Rollback("pso.json"); err != nil {
		t.Fatal(err)
	}
	_, forwardVer, _ := m.Live(context.Background(), "pso.json")
	if forwardVer != shVer {
		t.Fatalf("second rollback = %q, want %q (reversal)", forwardVer, shVer)
	}
}

func TestCreateShadowRejectsBadCorrections(t *testing.T) {
	m, _, _ := newTestManager(t, Options{})
	if _, _, err := m.Live(context.Background(), "pso.json"); err != nil {
		t.Fatal(err)
	}
	// Zero correction reproduces the live bytes: nothing to dark-launch.
	if _, err := m.CreateShadow("pso.json", []float64{0, 0}, []float64{0, 0}); err == nil {
		t.Fatal("no-op recalibration accepted")
	}
	// Phase-count mismatch.
	if _, err := m.CreateShadow("pso.json", []float64{0.1}, []float64{0.1}); err == nil {
		t.Fatal("phase-count mismatch accepted")
	}
	// Rollback with no previous version.
	if err := m.Rollback("pso.json"); !errors.Is(err, ErrNoPrevious) {
		t.Fatalf("rollback err = %v, want ErrNoPrevious", err)
	}
}

// driftedRecord builds a DispatchRecord for the live model plus feedback
// observations whose realized values sit exactly `shift` above the live
// raw predictions — the world the shadow's calibration was built for.
func driftedRecord(t *testing.T, m *Manager, shiftSpd, shiftDeg float64) (*feedback.DispatchRecord, []feedback.PhaseObservation) {
	t.Helper()
	live, ver, err := m.Live(context.Background(), "pso.json")
	if err != nil {
		t.Fatal(err)
	}
	params := apps.DefaultParams(pso.New())
	levels := make([][]int, live.Phases)
	diags := make([]core.PhaseDiag, live.Phases)
	obsv := make([]feedback.PhaseObservation, live.Phases)
	for ph := 0; ph < live.Phases; ph++ {
		levels[ph] = make([]int, len(live.Blocks))
		d, err := live.DiagnosePhase(params, ph, approx.Config(levels[ph]))
		if err != nil {
			t.Fatal(err)
		}
		diags[ph] = d
		obsv[ph] = feedback.PhaseObservation{
			Phase:       ph,
			Speedup:     core.SpeedupFromScale(d.SpeedupRaw + shiftSpd),
			Degradation: core.DegradationFromScale(d.DegRaw + shiftDeg),
		}
	}
	rec := &feedback.DispatchRecord{
		ID: "d1", Model: "pso.json", Version: ver, App: "pso",
		Params: params, Phases: live.Phases, Levels: levels, Diags: diags,
	}
	return rec, obsv
}

func TestFeedbackAutoPromote(t *testing.T) {
	m, _, _ := newTestManager(t, Options{ErrWindow: 8, MinShadowSamples: 4})
	const shift = 0.2
	rec, obsv := driftedRecord(t, m, shift, shift)

	// The shadow carries exactly the correction the drifted world needs,
	// so its realized error is ~0 while the live error is ~shift.
	spd := []float64{shift, shift}
	deg := []float64{shift, shift}
	shVer, err := m.CreateShadow("pso.json", spd, deg)
	if err != nil {
		t.Fatal(err)
	}

	var promoted bool
	for i := 0; i < 4 && !promoted; i++ {
		promoted, err = m.Feedback(rec, obsv)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !promoted {
		t.Fatal("shadow with strictly better realized error never auto-promoted")
	}
	_, ver, _ := m.Live(context.Background(), "pso.json")
	if ver != shVer {
		t.Fatalf("live after auto-promote = %q, want %q", ver, shVer)
	}
}

func TestFeedbackRespectsGates(t *testing.T) {
	// Auto-promotion disabled: windows fill, state is visible, no swap.
	m, _, _ := newTestManager(t, Options{ErrWindow: 8, MinShadowSamples: 2, DisableAutoPromote: true})
	const shift = 0.2
	rec, obsv := driftedRecord(t, m, shift, shift)
	if _, err := m.CreateShadow("pso.json", []float64{shift, shift}, []float64{shift, shift}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if promoted, err := m.Feedback(rec, obsv); err != nil || promoted {
			t.Fatalf("Feedback = (%v, %v) with auto-promote disabled", promoted, err)
		}
	}
	snap := m.Snapshot()
	if len(snap) != 1 || snap[0].Shadow == nil {
		t.Fatalf("snapshot lost the shadow: %+v", snap)
	}
	sh := snap[0].Shadow
	if sh.Samples == 0 || sh.ShadowWindowErr >= sh.LiveWindowErr {
		t.Fatalf("comparison windows wrong: %+v", sh)
	}
	m.NoteDisagreement("pso.json")
	if got := m.Snapshot()[0].Shadow.Disagreements; got != 1 {
		t.Fatalf("disagreements = %d, want 1", got)
	}

	// A worse shadow never auto-promotes.
	m2, _, _ := newTestManager(t, Options{ErrWindow: 8, MinShadowSamples: 2})
	rec2, obsv2 := driftedRecord(t, m2, 0, 0) // reality matches live exactly
	if _, err := m2.CreateShadow("pso.json", []float64{0.3, 0.3}, []float64{0.3, 0.3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if promoted, err := m2.Feedback(rec2, obsv2); err != nil || promoted {
			t.Fatalf("worse shadow auto-promoted (iteration %d)", i)
		}
	}

	// Feedback for a stale version (dispatch predates a swap) is ignored.
	m3, _, _ := newTestManager(t, Options{ErrWindow: 8, MinShadowSamples: 1})
	rec3, obsv3 := driftedRecord(t, m3, shift, shift)
	if _, err := m3.CreateShadow("pso.json", []float64{shift, shift}, []float64{shift, shift}); err != nil {
		t.Fatal(err)
	}
	rec3.Version = "stale0stale0"
	for i := 0; i < 4; i++ {
		if promoted, err := m3.Feedback(rec3, obsv3); err != nil || promoted {
			t.Fatal("stale-version feedback influenced promotion")
		}
	}
	if m3.Snapshot()[0].Shadow.Samples != 0 {
		t.Fatal("stale-version feedback filled the comparison windows")
	}
}

func TestReload(t *testing.T) {
	m, reg, _ := newTestManager(t, Options{})
	ctx := context.Background()
	_, liveVer, err := m.Live(ctx, "pso.json")
	if err != nil {
		t.Fatal(err)
	}
	// Same bytes: no change.
	changed, err := m.Reload(ctx, "pso.json")
	if err != nil || changed {
		t.Fatalf("Reload of identical bytes = (%v, %v)", changed, err)
	}

	// New bytes behind the same name: reload installs them as live and
	// retains the old version for rollback.
	tr, err := core.LoadTrained(bytes.NewReader(modelJSON(t)))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetCalibration([]float64{0.01, 0.02}, []float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	reg.mu.Lock()
	reg.files["pso.json"] = buf.Bytes()
	reg.mu.Unlock()

	changed, err = m.Reload(ctx, "pso.json")
	if err != nil || !changed {
		t.Fatalf("Reload of new bytes = (%v, %v)", changed, err)
	}
	_, nowVer, _ := m.Live(ctx, "pso.json")
	if nowVer != Version(buf.Bytes()) || nowVer == liveVer {
		t.Fatalf("reloaded version %q", nowVer)
	}
	snap := m.Snapshot()
	if snap[0].PreviousVersion != liveVer {
		t.Fatalf("reload lost the rollback version: %+v", snap)
	}
	if err := m.Rollback("pso.json"); err != nil {
		t.Fatal(err)
	}
	if _, backVer, _ := m.Live(ctx, "pso.json"); backVer != liveVer {
		t.Fatalf("rollback after reload = %q, want %q", backVer, liveVer)
	}

	// Reload of a never-resolved name is a plain resolve.
	reg.mu.Lock()
	reg.files["other.json"] = modelJSON(t)
	reg.mu.Unlock()
	if changed, err := m.Reload(ctx, "other.json"); err != nil || !changed {
		t.Fatalf("first-resolve Reload = (%v, %v)", changed, err)
	}
}

// TestSnapshotDeterministic pins that the lifecycle view is a pure
// function of the operation sequence: same operations, same snapshot —
// including order (sorted by name, not map order).
func TestSnapshotDeterministic(t *testing.T) {
	build := func() []ModelStatus {
		reg := newFakeReg()
		reg.files["b.json"] = modelJSON(t)
		reg.files["a.json"] = modelJSON(t)
		m := NewManager(reg, newFakePub(), Options{ErrWindow: 4, MinShadowSamples: 2})
		ctx := context.Background()
		for _, name := range []string{"b.json", "a.json"} {
			if _, _, err := m.Live(ctx, name); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := m.CreateShadow("a.json", []float64{0.1, 0.1}, []float64{0.1, 0.1}); err != nil {
			t.Fatal(err)
		}
		if _, err := m.CreateShadow("b.json", []float64{0.2, 0.2}, []float64{0.2, 0.2}); err != nil {
			t.Fatal(err)
		}
		if err := m.Promote("b.json"); err != nil {
			t.Fatal(err)
		}
		return m.Snapshot()
	}
	s1, s2 := build(), build()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ:\n%+v\n%+v", s1, s2)
	}
	if len(s1) != 2 || s1[0].Name != "a.json" || s1[1].Name != "b.json" {
		t.Fatalf("snapshot not sorted by name: %+v", s1)
	}
}

// TestConcurrentLifecycle exercises resolve/peek/feedback/snapshot under
// parallel load; the race detector is the assertion.
func TestConcurrentLifecycle(t *testing.T) {
	m, _, _ := newTestManager(t, Options{ErrWindow: 8, MinShadowSamples: 1 << 30})
	rec, obsv := driftedRecord(t, m, 0.1, 0.1)
	if _, err := m.CreateShadow("pso.json", []float64{0.1, 0.1}, []float64{0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, _, err := m.Live(context.Background(), "pso.json"); err != nil {
					t.Error(err)
					return
				}
				m.Shadow("pso.json")
				if _, err := m.Feedback(rec, obsv); err != nil {
					t.Error(err)
					return
				}
				m.NoteDisagreement("pso.json")
				m.Snapshot()
			}
		}()
	}
	wg.Wait()
}
