package launch

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/apps/pso"
	"opprox/internal/core"
)

var testBlocks = []approx.Block{
	{Name: "forces", Technique: approx.Perforation, MaxLevel: 5},
	{Name: "time-constraints", Technique: approx.Truncation, MaxLevel: 5},
}

func TestParseJobConfig(t *testing.T) {
	cfg, err := ParseJobConfig(strings.NewReader(`{
		"app": "lulesh",
		"budget": 10,
		"params": {"mesh": 64},
		"model_path": "/models/lulesh.json"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.App != "lulesh" || cfg.Budget != 10 || cfg.Params["mesh"] != 64 {
		t.Fatalf("parsed %+v", cfg)
	}
}

func TestParseJobConfigErrors(t *testing.T) {
	cases := map[string]string{
		"not json":       "x",
		"missing app":    `{"budget": 5, "model_path": "m"}`,
		"missing models": `{"app": "a", "budget": 5}`,
		"negative":       `{"app": "a", "budget": -1, "model_path": "m"}`,
		"unknown field":  `{"app": "a", "budget": 5, "model_path": "m", "bogus": 1}`,
	}
	for name, body := range cases {
		if _, err := ParseJobConfig(strings.NewReader(body)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestEncodeEnv(t *testing.T) {
	sched := approx.Schedule{
		Phases: 2,
		Levels: []approx.Config{{1, 0}, {3, 5}},
	}
	env, err := EncodeEnv(sched, testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"OPPROX_PHASES=2",
		"OPPROX_P1_FORCES=1",
		"OPPROX_P1_TIME_CONSTRAINTS=0",
		"OPPROX_P2_FORCES=3",
		"OPPROX_P2_TIME_CONSTRAINTS=5",
	}
	if len(env) != len(want) {
		t.Fatalf("env = %v", env)
	}
	for i := range want {
		if env[i] != want[i] {
			t.Fatalf("env[%d] = %q, want %q", i, env[i], want[i])
		}
	}
}

func TestEncodeEnvRejectsInvalid(t *testing.T) {
	bad := approx.UniformSchedule(1, approx.Config{9, 0})
	if _, err := EncodeEnv(bad, testBlocks); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}

func TestDecodeEnvRoundTrip(t *testing.T) {
	sched := approx.Schedule{
		Phases: 4,
		Levels: []approx.Config{{0, 0}, {1, 2}, {5, 0}, {2, 5}},
	}
	env, err := EncodeEnv(sched, testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEnv(env, testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != sched.String() {
		t.Fatalf("round trip changed the schedule:\n%s\n%s", got, sched)
	}
}

func TestDecodeEnvDefaults(t *testing.T) {
	// No OPPROX variables at all → single accurate phase.
	sched, err := DecodeEnv([]string{"PATH=/bin", "HOME=/root"}, testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if !sched.IsAccurate() || sched.Phases != 1 {
		t.Fatalf("default schedule = %s", sched)
	}
	// Partial assignment: missing cells stay accurate.
	sched, err = DecodeEnv([]string{"OPPROX_PHASES=2", "OPPROX_P2_FORCES=3"}, testBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Levels[0][0] != 0 || sched.Levels[1][0] != 3 {
		t.Fatalf("partial schedule = %s", sched)
	}
}

func TestDecodeEnvErrors(t *testing.T) {
	cases := [][]string{
		{"OPPROX_PHASES=zero"},
		{"OPPROX_PHASES=0"},
		{"OPPROX_PHASES=1", "OPPROX_P1_FORCES=lots"},
		{"OPPROX_PHASES=1", "OPPROX_P1_TYPO=1"},
		{"OPPROX_PHASES=1", "OPPROX_P1_FORCES=99"}, // out of range
		{"malformed"},
	}
	for i, env := range cases {
		if _, err := DecodeEnv(env, testBlocks); err == nil {
			t.Fatalf("case %d: accepted %v", i, env)
		}
	}
}

func TestEnvKeySanitizesNames(t *testing.T) {
	if got := envKey(0, "time-constraints"); got != "OPPROX_P1_TIME_CONSTRAINTS" {
		t.Fatalf("envKey = %q", got)
	}
	if got := envKey(2, "blockA1"); got != "OPPROX_P3_BLOCKA1" {
		t.Fatalf("envKey = %q", got)
	}
}

// Regression: "blur-x" and "blur_x" sanitize to the same OPPROX_P1_BLUR_X
// key. Before collision detection, EncodeEnv emitted duplicate assignments
// and DecodeEnv handed the value to the first block while the second
// silently fell back to level 0.
func TestEnvKeyCollisionRejected(t *testing.T) {
	colliding := []approx.Block{
		{Name: "blur-x", Technique: approx.Perforation, MaxLevel: 3},
		{Name: "blur_x", Technique: approx.Truncation, MaxLevel: 3},
	}
	sched := approx.UniformSchedule(1, approx.Config{1, 2})
	if _, err := EncodeEnv(sched, colliding); err == nil {
		t.Fatal("EncodeEnv accepted colliding block names")
	} else if !strings.Contains(err.Error(), "blur-x") || !strings.Contains(err.Error(), "blur_x") {
		t.Fatalf("collision error should name both blocks: %v", err)
	}
	if _, err := DecodeEnv([]string{"OPPROX_PHASES=1"}, colliding); err == nil {
		t.Fatal("DecodeEnv accepted colliding block names")
	}
	// Case-folding collisions are collisions too.
	if err := CheckEnvKeys([]approx.Block{{Name: "Forces"}, {Name: "forces"}}); err == nil {
		t.Fatal("CheckEnvKeys accepted case-folded duplicate")
	}
	if err := CheckEnvKeys(testBlocks); err != nil {
		t.Fatalf("CheckEnvKeys rejected distinct blocks: %v", err)
	}
}

func TestDispatchEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped with -short")
	}
	app := pso.New()
	opts := core.DefaultOptions()
	opts.Phases = 2
	opts.JointSamplesPerPhase = 6
	opts.MaxParamCombos = 3
	opts.Folds = 5
	tr, err := core.Train(apps.NewRunner(app), opts)
	if err != nil {
		t.Fatal(err)
	}
	var models bytes.Buffer
	if err := tr.Save(&models); err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseJobConfig(strings.NewReader(`{
		"app": "pso", "budget": 10, "params": {"swarm": 16, "dim": 4},
		"model_path": "unused-in-test"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Dispatch(cfg, &models)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Pred.Degradation > 10 {
		t.Fatalf("plan predicts %.2f%% over the 10%% budget", plan.Pred.Degradation)
	}
	// The environment must decode back to the exact schedule the app will
	// see.
	sched, err := DecodeEnv(plan.Env, app.Blocks())
	if err != nil {
		t.Fatal(err)
	}
	if sched.String() != plan.Schedule.String() {
		t.Fatalf("env round trip changed the schedule")
	}
}

// Property: every valid schedule round-trips through the environment.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		phases := 1 + rng.Intn(8)
		sched := approx.UniformSchedule(phases, make(approx.Config, len(testBlocks)))
		for ph := 0; ph < phases; ph++ {
			for bi, b := range testBlocks {
				sched.Levels[ph][bi] = rng.Intn(b.MaxLevel + 1)
			}
		}
		env, err := EncodeEnv(sched, testBlocks)
		if err != nil {
			return false
		}
		got, err := DecodeEnv(env, testBlocks)
		if err != nil {
			return false
		}
		return got.String() == sched.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
