// Package launch implements the paper's runtime flow (§4.2): "User
// submits the job with a target error budget in a configuration-file.
// Then a runtime-script loads the corresponding models and finds the best
// phase-specific approximation settings for that error budget ... The
// phase-specific approximation settings are passed to the job via
// environment variables; specifying the approximation level for each AB
// during each phase of the execution."
//
// The SLURM scheduler itself is out of scope; this package provides the
// three pieces around it: the job configuration file, the environment
// encoding of a schedule, and the app-side decoder that turns the
// environment back into a Schedule.
package launch

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"opprox/internal/approx"
	"opprox/internal/apps"
	"opprox/internal/core"
)

// JobConfig is the configuration file a user submits with a job.
type JobConfig struct {
	// App names the application (must match the trained models).
	App string `json:"app"`
	// Budget is the QoS-degradation budget.
	Budget float64 `json:"budget"`
	// Params are the production input parameters.
	Params apps.Params `json:"params,omitempty"`
	// ModelPath locates the stored models ("designated location").
	ModelPath string `json:"model_path"`
}

// ParseJobConfig reads and validates a job configuration.
func ParseJobConfig(r io.Reader) (*JobConfig, error) {
	var cfg JobConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("launch: decoding job config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// Validate checks the semantic constraints on a job configuration
// (ParseJobConfig applies it after decoding; services that build a
// JobConfig from their own request type apply it directly).
func (c *JobConfig) Validate() error {
	if c.App == "" {
		return fmt.Errorf("launch: job config missing \"app\"")
	}
	if c.Budget < 0 {
		return fmt.Errorf("launch: negative budget %g", c.Budget)
	}
	if c.ModelPath == "" {
		return fmt.Errorf("launch: job config missing \"model_path\"")
	}
	return nil
}

// envPrefix namespaces the schedule variables.
const envPrefix = "OPPROX"

// envKey builds the variable name for one (phase, block) cell:
// OPPROX_P<phase>_<BLOCK>.
func envKey(phase int, block string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z':
			return r - 'a' + 'A'
		case r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, block)
	return fmt.Sprintf("%s_P%d_%s", envPrefix, phase+1, clean)
}

// CheckEnvKeys verifies that every block maps to a distinct environment
// key. Sanitization is lossy — "blur-x" and "blur_x" both become
// OPPROX_P<n>_BLUR_X — and a collision silently corrupts the schedule:
// EncodeEnv emits duplicate assignments and DecodeEnv hands the value to
// the first block while the second falls back to level 0. Both sides of
// the contract therefore refuse colliding block sets.
func CheckEnvKeys(blocks []approx.Block) error {
	seen := make(map[string]string, len(blocks))
	for _, b := range blocks {
		k := envKey(0, b.Name)
		if prev, ok := seen[k]; ok {
			return fmt.Errorf("launch: block names %q and %q both map to environment key %s; rename one",
				prev, b.Name, k)
		}
		seen[k] = b.Name
	}
	return nil
}

// EncodeEnv renders a schedule as environment-variable assignments, one
// per (phase, block), plus OPPROX_PHASES with the phase count. The order
// is deterministic: phases outer, blocks inner.
func EncodeEnv(sched approx.Schedule, blocks []approx.Block) ([]string, error) {
	if err := sched.Validate(blocks); err != nil {
		return nil, err
	}
	if err := CheckEnvKeys(blocks); err != nil {
		return nil, err
	}
	out := []string{fmt.Sprintf("%s_PHASES=%d", envPrefix, sched.Phases)}
	for ph := 0; ph < sched.Phases; ph++ {
		for bi, b := range blocks {
			out = append(out, fmt.Sprintf("%s=%d", envKey(ph, b.Name), sched.Levels[ph][bi]))
		}
	}
	return out, nil
}

// DecodeEnv reconstructs a schedule from environment assignments (the
// app-side half of the contract). Missing variables default to level 0 —
// an instrumented application run without OPPROX degenerates to the exact
// program. Unknown OPPROX_ variables are rejected so typos fail loudly.
func DecodeEnv(env []string, blocks []approx.Block) (approx.Schedule, error) {
	if err := CheckEnvKeys(blocks); err != nil {
		return approx.Schedule{}, err
	}
	vars := map[string]string{}
	for _, kv := range env {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return approx.Schedule{}, fmt.Errorf("launch: malformed assignment %q", kv)
		}
		if strings.HasPrefix(parts[0], envPrefix+"_") {
			vars[parts[0]] = parts[1]
		}
	}
	phases := 1
	if v, ok := vars[envPrefix+"_PHASES"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return approx.Schedule{}, fmt.Errorf("launch: bad %s_PHASES=%q", envPrefix, v)
		}
		phases = n
		delete(vars, envPrefix+"_PHASES")
	}
	sched := approx.UniformSchedule(phases, make(approx.Config, len(blocks)))
	for ph := 0; ph < phases; ph++ {
		for bi, b := range blocks {
			key := envKey(ph, b.Name)
			v, ok := vars[key]
			if !ok {
				continue // defaults to the accurate level
			}
			delete(vars, key)
			lv, err := strconv.Atoi(v)
			if err != nil {
				return approx.Schedule{}, fmt.Errorf("launch: bad %s=%q", key, v)
			}
			sched.Levels[ph][bi] = lv
		}
	}
	if len(vars) > 0 {
		keys := make([]string, 0, len(vars))
		for k := range vars {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return approx.Schedule{}, fmt.Errorf("launch: unknown schedule variables: %s", strings.Join(keys, ", "))
	}
	if err := sched.Validate(blocks); err != nil {
		return approx.Schedule{}, err
	}
	return sched, nil
}

// Plan is the launch decision for one job.
type Plan struct {
	Config   *JobConfig
	Schedule approx.Schedule
	Pred     core.Prediction
	Env      []string
}

// Dispatch runs the full runtime flow for a job: load the models, optimize
// for the configured budget and parameters, and render the schedule as the
// environment the scheduler should launch the job with.
func Dispatch(cfg *JobConfig, models io.Reader) (*Plan, error) {
	tr, err := core.LoadTrained(models)
	if err != nil {
		return nil, err
	}
	return DispatchTrained(cfg, tr)
}

// DispatchTrained is the model-in-hand half of Dispatch: optimize the job
// against already-loaded models and render the environment. Long-lived
// services (opprox-serve) that cache models in a registry call this per
// request instead of re-reading and re-validating the model file.
func DispatchTrained(cfg *JobConfig, tr *core.Trained) (*Plan, error) {
	params := cfg.Params
	if params == nil {
		params = apps.Params{}
	}
	sched, pred, err := tr.Optimize(params, cfg.Budget)
	if err != nil {
		return nil, err
	}
	env, err := EncodeEnv(sched, tr.Blocks)
	if err != nil {
		return nil, err
	}
	return &Plan{Config: cfg, Schedule: sched, Pred: pred, Env: env}, nil
}
