package launch

import (
	"math/rand"
	"strings"
	"testing"

	"opprox/internal/approx"
)

// FuzzEnvRoundTrip drives EncodeEnv→DecodeEnv with arbitrary schedules:
// the fuzzer picks a phase count and raw level bytes, which are clamped
// into a valid schedule over testBlocks; the decode of the encode must
// reproduce the schedule exactly.
func FuzzEnvRoundTrip(f *testing.F) {
	f.Add(uint8(1), []byte{0, 0})
	f.Add(uint8(4), []byte{5, 3, 0, 1, 2, 4, 5, 5})
	f.Add(uint8(8), []byte{1})
	f.Fuzz(func(t *testing.T, phasesRaw uint8, levelBytes []byte) {
		phases := int(phasesRaw)%8 + 1
		sched := approx.UniformSchedule(phases, make(approx.Config, len(testBlocks)))
		i := 0
		for ph := 0; ph < phases; ph++ {
			cfg := make(approx.Config, len(testBlocks))
			for bi, b := range testBlocks {
				if len(levelBytes) > 0 {
					cfg[bi] = int(levelBytes[i%len(levelBytes)]) % (b.MaxLevel + 1)
					i++
				}
			}
			sched.Levels[ph] = cfg
		}

		env, err := EncodeEnv(sched, testBlocks)
		if err != nil {
			t.Fatalf("encode of a valid schedule failed: %v", err)
		}
		got, err := DecodeEnv(env, testBlocks)
		if err != nil {
			t.Fatalf("decode of encoded env failed: %v\nenv: %v", err, env)
		}
		if got.Phases != sched.Phases {
			t.Fatalf("phases: got %d, want %d", got.Phases, sched.Phases)
		}
		for ph := 0; ph < phases; ph++ {
			for bi := range testBlocks {
				if got.Levels[ph][bi] != sched.Levels[ph][bi] {
					t.Fatalf("phase %d block %d: got %d, want %d\nenv: %v",
						ph, bi, got.Levels[ph][bi], sched.Levels[ph][bi], env)
				}
			}
		}
	})
}

// nameAlphabet deliberately mixes characters that survive env-key
// sanitization with ones that collapse to '_' — the raw material for
// collisions ("blur-x" vs "blur_x") and case folds ("Forces" vs
// "forces").
const nameAlphabet = "abcXYZ09-_. #é"

// FuzzEnvRoundTripRandomBlocks extends the round trip to randomized block
// sets: names are drawn from a collision-prone alphabet, so the fuzzer
// constantly produces block sets whose sanitized keys collide. The
// contract: colliding sets are rejected by BOTH EncodeEnv and DecodeEnv
// (the silent-corruption regression), and every accepted set round-trips
// exactly. No input may panic.
func FuzzEnvRoundTripRandomBlocks(f *testing.F) {
	for _, seed := range []int64{1, 2, 7, 42, 1337, -9} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))

		nBlocks := 1 + rng.Intn(5)
		blocks := make([]approx.Block, nBlocks)
		for i := range blocks {
			n := 1 + rng.Intn(8)
			var sb strings.Builder
			for j := 0; j < n; j++ {
				sb.WriteByte(nameAlphabet[rng.Intn(len(nameAlphabet))])
			}
			blocks[i] = approx.Block{
				Name:      sb.String(),
				Technique: approx.Technique(rng.Intn(4)),
				MaxLevel:  1 + rng.Intn(5),
			}
		}
		phases := 1 + rng.Intn(5)
		sched := approx.UniformSchedule(phases, make(approx.Config, nBlocks))
		for ph := 0; ph < phases; ph++ {
			for bi, b := range blocks {
				sched.Levels[ph][bi] = rng.Intn(b.MaxLevel + 1)
			}
		}

		collides := CheckEnvKeys(blocks) != nil
		env, err := EncodeEnv(sched, blocks)
		if collides {
			if err == nil {
				t.Fatalf("EncodeEnv accepted colliding block set %v", blocks)
			}
			if _, derr := DecodeEnv([]string{"OPPROX_PHASES=1"}, blocks); derr == nil {
				t.Fatalf("DecodeEnv accepted colliding block set %v", blocks)
			}
			return
		}
		if err != nil {
			t.Fatalf("EncodeEnv rejected a valid schedule over %v: %v", blocks, err)
		}
		got, err := DecodeEnv(env, blocks)
		if err != nil {
			t.Fatalf("DecodeEnv rejected EncodeEnv output %v: %v", env, err)
		}
		if got.Phases != sched.Phases {
			t.Fatalf("phase count changed: %d -> %d", sched.Phases, got.Phases)
		}
		for ph := range sched.Levels {
			for bi := range sched.Levels[ph] {
				if got.Levels[ph][bi] != sched.Levels[ph][bi] {
					t.Fatalf("level (%d,%d) changed: %d -> %d (env %v)",
						ph, bi, sched.Levels[ph][bi], got.Levels[ph][bi], env)
				}
			}
		}
	})
}

// TestDispatchCorruptModels is the dispatch-side half of the corrupt
// model-file corpus (core's TestLoadCorruptModelCorpus covers LoadTrained
// directly): a job against a broken model reader must error, never panic.
func TestDispatchCorruptModels(t *testing.T) {
	cfg := &JobConfig{App: "pso", Budget: 5, ModelPath: "irrelevant"}
	cases := map[string]string{
		"empty":          "",
		"not json":       "pickle rick",
		"truncated":      `{"version": 1, "phases": 2, "blo`,
		"wrong shape":    `[]`,
		"null":           `null`,
		"version skew":   `{"version": 2}`,
		"negative phase": `{"version": 1, "phases": -1}`,
	}
	for name, body := range cases {
		if _, err := Dispatch(cfg, strings.NewReader(body)); err == nil {
			t.Fatalf("%s: Dispatch accepted a corrupt model file", name)
		}
	}
}

// FuzzDecodeEnv throws arbitrary assignment lists at DecodeEnv: it must
// never panic, and whatever schedule it accepts must validate against the
// blocks it was decoded for.
func FuzzDecodeEnv(f *testing.F) {
	f.Add("OPPROX_PHASES=2\nOPPROX_P1_FORCES=3")
	f.Add("OPPROX_PHASES=x")
	f.Add("OPPROX_P1_FORCES=1\nnoequals")
	f.Add("PATH=/bin\nOPPROX_TYPO=1")
	f.Add("OPPROX_PHASES=1\nOPPROX_P1_TIME_CONSTRAINTS=-2")
	f.Fuzz(func(t *testing.T, raw string) {
		var env []string
		if raw != "" {
			env = strings.Split(raw, "\n")
		}
		sched, err := DecodeEnv(env, testBlocks)
		if err != nil {
			return // rejecting bad input is fine; panicking is not
		}
		if err := sched.Validate(testBlocks); err != nil {
			t.Fatalf("DecodeEnv accepted an invalid schedule %v: %v\nenv: %v", sched, err, env)
		}
	})
}
