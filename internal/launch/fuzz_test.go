package launch

import (
	"strings"
	"testing"

	"opprox/internal/approx"
)

// FuzzEnvRoundTrip drives EncodeEnv→DecodeEnv with arbitrary schedules:
// the fuzzer picks a phase count and raw level bytes, which are clamped
// into a valid schedule over testBlocks; the decode of the encode must
// reproduce the schedule exactly.
func FuzzEnvRoundTrip(f *testing.F) {
	f.Add(uint8(1), []byte{0, 0})
	f.Add(uint8(4), []byte{5, 3, 0, 1, 2, 4, 5, 5})
	f.Add(uint8(8), []byte{1})
	f.Fuzz(func(t *testing.T, phasesRaw uint8, levelBytes []byte) {
		phases := int(phasesRaw)%8 + 1
		sched := approx.UniformSchedule(phases, make(approx.Config, len(testBlocks)))
		i := 0
		for ph := 0; ph < phases; ph++ {
			cfg := make(approx.Config, len(testBlocks))
			for bi, b := range testBlocks {
				if len(levelBytes) > 0 {
					cfg[bi] = int(levelBytes[i%len(levelBytes)]) % (b.MaxLevel + 1)
					i++
				}
			}
			sched.Levels[ph] = cfg
		}

		env, err := EncodeEnv(sched, testBlocks)
		if err != nil {
			t.Fatalf("encode of a valid schedule failed: %v", err)
		}
		got, err := DecodeEnv(env, testBlocks)
		if err != nil {
			t.Fatalf("decode of encoded env failed: %v\nenv: %v", err, env)
		}
		if got.Phases != sched.Phases {
			t.Fatalf("phases: got %d, want %d", got.Phases, sched.Phases)
		}
		for ph := 0; ph < phases; ph++ {
			for bi := range testBlocks {
				if got.Levels[ph][bi] != sched.Levels[ph][bi] {
					t.Fatalf("phase %d block %d: got %d, want %d\nenv: %v",
						ph, bi, got.Levels[ph][bi], sched.Levels[ph][bi], env)
				}
			}
		}
	})
}

// FuzzDecodeEnv throws arbitrary assignment lists at DecodeEnv: it must
// never panic, and whatever schedule it accepts must validate against the
// blocks it was decoded for.
func FuzzDecodeEnv(f *testing.F) {
	f.Add("OPPROX_PHASES=2\nOPPROX_P1_FORCES=3")
	f.Add("OPPROX_PHASES=x")
	f.Add("OPPROX_P1_FORCES=1\nnoequals")
	f.Add("PATH=/bin\nOPPROX_TYPO=1")
	f.Add("OPPROX_PHASES=1\nOPPROX_P1_TIME_CONSTRAINTS=-2")
	f.Fuzz(func(t *testing.T, raw string) {
		var env []string
		if raw != "" {
			env = strings.Split(raw, "\n")
		}
		sched, err := DecodeEnv(env, testBlocks)
		if err != nil {
			return // rejecting bad input is fine; panicking is not
		}
		if err := sched.Validate(testBlocks); err != nil {
			t.Fatalf("DecodeEnv accepted an invalid schedule %v: %v\nenv: %v", sched, err, env)
		}
	})
}
