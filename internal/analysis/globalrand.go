package analysis

import (
	"go/ast"
)

// Globalrand flags the process-global math/rand source: top-level
// convenience functions (rand.Intn, rand.Float64, rand.Shuffle, ...) and
// sources seeded from the wall clock. Every random stream in OPPROX must
// come from an explicitly seeded *rand.Rand so that a (app, seed) pair
// replays byte-identically; the global source is shared across goroutines
// and seeded per-process, which breaks both replay and the parallel ==
// serial guarantee. Test files are not analyzed.
var Globalrand = &Analyzer{
	Name:     "globalrand",
	Doc:      "math/rand top-level functions or wall-clock-seeded sources; use rand.New(rand.NewSource(seed)) with a run-derived seed",
	Severity: Error,
	Run:      runGlobalrand,
}

func init() { Register(Globalrand) }

// randConstructors are the math/rand functions that build an explicit
// generator rather than using the global one; they are allowed unless
// seeded from the wall clock.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func runGlobalrand(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgCall(pass.Info, call)
			if !ok || (path != "math/rand" && path != "math/rand/v2") {
				return true
			}
			if !randConstructors[name] {
				pass.Reportf(call.Pos(), "%s.%s uses the process-global random source; draw from an explicitly seeded *rand.Rand so runs replay byte-identically", path, name)
				return true
			}
			for _, arg := range call.Args {
				if callsInto(pass.Info, arg, "time", "Now") {
					pass.Reportf(call.Pos(), "%s.%s seeded from the wall clock; derive the seed from run configuration so runs replay byte-identically", path, name)
					// One finding per constructor chain: don't re-flag a
					// nested NewSource inside an already-flagged New.
					return false
				}
			}
			return true
		})
	}
}
