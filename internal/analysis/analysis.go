// Package analysis is OPPROX's in-tree static-analysis framework: a
// stdlib-only driver over go/parser, go/ast, go/types and go/token (no
// golang.org/x/tools dependency) plus a registry of analyzers that
// enforce the repo's determinism and concurrency invariants (DESIGN.md
// §8). The `opprox-vet` CLI and the tier-1 gate run every registered
// analyzer over the module and fail on unsuppressed findings.
//
// A finding that is a false positive is silenced in place with a
// suppression comment on the flagged line or the line above it:
//
//	//opprox:vet-ignore <analyzer>[,<analyzer>...]
//
// `//opprox:vet-ignore all` silences every analyzer for that line.
// Suppressed diagnostics still appear in the JSON report, marked
// Suppressed, so the gate can count them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Severity ranks a diagnostic. The gate's -severity flag is a threshold:
// findings at or above it fail the build.
type Severity int

const (
	// Info is advisory: surfaced in reports, never fails the gate.
	Info Severity = iota
	// Warning marks code that risks nondeterminism under plausible change.
	Warning
	// Error marks a determinism or concurrency invariant violation.
	Error
)

var severityNames = [...]string{Info: "info", Warning: "warning", Error: "error"}

func (s Severity) String() string {
	if s < Info || s > Error {
		return fmt.Sprintf("severity(%d)", int(s))
	}
	return severityNames[s]
}

// MarshalJSON encodes the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes a lowercase severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	v, err := ParseSeverity(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// ParseSeverity maps a name ("info", "warning", "error") to a Severity.
func ParseSeverity(name string) (Severity, error) {
	for s, n := range severityNames {
		if n == name {
			return Severity(s), nil
		}
	}
	return Info, fmt.Errorf("analysis: unknown severity %q (want info, warning or error)", name)
}

// Diagnostic is one position-annotated finding.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string `json:"analyzer"`
	// Severity ranks the finding (see Severity).
	Severity Severity `json:"severity"`
	// File is the module-relative path of the flagged file.
	File string `json:"file"`
	// Line and Col are the 1-based position of the finding.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message explains the finding and names the fix.
	Message string `json:"message"`
	// Suppressed reports that an //opprox:vet-ignore comment covers the
	// finding; suppressed diagnostics never fail the gate.
	Suppressed bool `json:"suppressed,omitempty"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]", d.File, d.Line, d.Col, d.Severity, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the analyzer this pass runs.
	Analyzer *Analyzer
	// Fset resolves token.Pos values for every file in the load.
	Fset *token.FileSet
	// Files are the package's parsed source files (tests excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression and identifier facts.
	Info *types.Info
	// relFile maps an absolute filename to its module-relative form.
	relFile func(string) string
	report  func(Diagnostic)
}

// Reportf records a finding at pos with the analyzer's default severity.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.ReportSeverityf(p.Analyzer.Severity, pos, format, args...)
}

// ReportSeverityf records a finding at pos with an explicit severity.
func (p *Pass) ReportSeverityf(sev Severity, pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Severity: sev,
		File:     p.relFile(position.Filename),
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one registered check.
type Analyzer struct {
	// Name is the analyzer's registry key and its suppression token.
	Name string
	// Doc is a one-paragraph description shown by `opprox-vet -list`.
	Doc string
	// Severity is the default severity of the analyzer's findings.
	Severity Severity
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

var registry = map[string]*Analyzer{}

// Register adds an analyzer to the global registry. It panics on a
// duplicate or empty name — registration happens in init and a bad
// registry is a programming error.
func Register(a *Analyzer) {
	if a.Name == "" {
		panic("analysis: Register with empty name")
	}
	if _, dup := registry[a.Name]; dup {
		panic("analysis: duplicate analyzer " + a.Name)
	}
	if a.Run == nil {
		panic("analysis: analyzer " + a.Name + " has no Run")
	}
	registry[a.Name] = a
}

// All returns every registered analyzer, sorted by name so runs are
// reproducible.
func All() []*Analyzer {
	out := make([]*Analyzer, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the named analyzer, or nil.
func Lookup(name string) *Analyzer { return registry[name] }
